// concord_asm — assemble, verify and disassemble policy programs offline.
//
// The developer loop for writing a policy: edit the .casm file, run this
// tool against the target hook, read the verifier's verdict before going
// anywhere near a lock.
//
// Usage:
//   concord_asm <hook> <file.casm>       assemble + verify + disassemble
//   concord_asm --verify <hook> <file.casm>
//                                        ... and print the verifier log:
//                                        states explored, proven loop trip
//                                        bounds, R0 exit range, helpers
//   concord_asm --jit-dump <hook> <file.casm>
//                                        ... then JIT-compile and hex-dump
//                                        the native x86-64 code
//   concord_asm --cost <hook> <file.casm>
//                                        ... and print the certified WCET
//                                        bound per execution tier
//   concord_asm --races <hook> <file.casm>
//                                        ... and print the shared-map race
//                                        classification per map
//   concord_asm --hooks                  list hook names and context layouts
//
// `<hook>` is one of the Table-1 names (cmp_node, skip_shuffle,
// schedule_waiter, lock_acquire, lock_contended, lock_acquired,
// lock_release) or rw_mode. Programs that reference maps get a scratch
// 8-byte array map bound at index 0 (matching the `mov r1, 0` convention the
// policy library uses).

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "src/bpf/analysis/race.h"
#include "src/bpf/analysis/wcet.h"
#include "src/bpf/assembler.h"
#include "src/bpf/jit/jit.h"
#include "src/bpf/maps.h"
#include "src/bpf/verifier.h"
#include "src/concord/hooks.h"

namespace concord {
namespace {

const HookKind kAllHooks[] = {
    HookKind::kCmpNode,      HookKind::kSkipShuffle, HookKind::kScheduleWaiter,
    HookKind::kLockAcquire,  HookKind::kLockContended, HookKind::kLockAcquired,
    HookKind::kLockRelease,  HookKind::kRwMode,
};

bool ParseHook(const std::string& name, HookKind* out) {
  for (HookKind kind : kAllHooks) {
    if (name == HookKindName(kind)) {
      *out = kind;
      return true;
    }
  }
  return false;
}

void PrintHooks() {
  std::printf("hook             granted capabilities         context fields\n");
  for (HookKind kind : kAllHooks) {
    const ContextDescriptor& desc = DescriptorFor(kind);
    const std::uint32_t caps = CapabilitiesFor(kind);
    std::string cap_names;
    if (caps & kCapRead) cap_names += "read ";
    if (caps & kCapMapRead) cap_names += "map-read ";
    if (caps & kCapMapWrite) cap_names += "map-write ";
    if (caps & kCapTrace) cap_names += "trace ";
    if (caps & kCapLockMutate) cap_names += "lock-mutate ";
    std::printf("%-16s %-28s ctx '%s' (%u bytes)\n", HookKindName(kind),
                cap_names.c_str(), desc.name().c_str(), desc.size());
    for (const ContextField& field : desc.fields()) {
      std::printf("%-16s %-28s   +%-3u %s%s (%u bytes)\n", "", "", field.offset,
                  field.name.c_str(), field.writable ? " [rw]" : "", field.width);
    }
  }
}

int Run(int argc, char** argv) {
  if (argc == 2 && std::string(argv[1]) == "--hooks") {
    PrintHooks();
    return 0;
  }
  bool jit_dump = false;
  bool verify_log = false;
  bool show_cost = false;
  bool show_races = false;
  int arg = 1;
  while (arg < argc) {
    const std::string flag = argv[arg];
    if (flag == "--jit-dump") {
      jit_dump = true;
      ++arg;
    } else if (flag == "--verify") {
      verify_log = true;
      ++arg;
    } else if (flag == "--cost") {
      show_cost = true;
      ++arg;
    } else if (flag == "--races") {
      show_races = true;
      ++arg;
    } else {
      break;
    }
  }
  if (argc - arg != 2) {
    std::fprintf(stderr,
                 "usage: %s [--verify] [--jit-dump] [--cost] [--races] "
                 "<hook> <file.casm>\n"
                 "       %s --hooks\n",
                 argv[0], argv[0]);
    return 2;
  }

  HookKind kind;
  if (!ParseHook(argv[arg], &kind)) {
    std::fprintf(stderr, "unknown hook '%s' (try --hooks)\n", argv[arg]);
    return 2;
  }

  std::ifstream in(argv[arg + 1]);
  if (!in) {
    std::fprintf(stderr, "cannot open '%s'\n", argv[arg + 1]);
    return 2;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();

  // Sources with `.map` directives own the whole map table (their indices
  // start at 0); legacy sources get the scratch knob array at index 0.
  ArrayMap scratch("scratch", 8, 8);
  std::vector<BpfMap*> caller_maps;
  if (!SourceDeclaresMaps(buffer.str())) {
    caller_maps.push_back(&scratch);
  }
  std::vector<std::shared_ptr<BpfMap>> declared_maps;
  auto program = AssembleProgram(argv[arg + 1], buffer.str(),
                                 &DescriptorFor(kind), std::move(caller_maps),
                                 &declared_maps);
  if (!program.ok()) {
    std::fprintf(stderr, "assembly failed: %s\n",
                 program.status().ToString().c_str());
    return 1;
  }
  std::printf("assembled %zu instructions against hook '%s'\n",
              program->insns.size(), HookKindName(kind));

  Verifier::Options options;
  options.allowed_capabilities = CapabilitiesFor(kind);
  Verifier::Analysis analysis;
  Status verdict = Verifier::Verify(*program, options, &analysis);
  if (!verdict.ok()) {
    std::printf("VERIFIER REJECTED: %s\n", verdict.ToString().c_str());
    return 1;
  }
  std::printf("verifier: OK (capabilities used: 0x%x)\n",
              program->used_capabilities);
  if (verify_log) {
    std::printf("verifier log:\n");
    std::printf("  abstract states explored: %zu\n", analysis.states_processed);
    if (analysis.loops.empty()) {
      std::printf("  loops: none\n");
    }
    for (const auto& loop : analysis.loops) {
      std::printf("  loop: back edge at insn %zu -> header %zu, proven bound "
                  "%llu trips\n",
                  loop.back_edge_pc, loop.header_pc,
                  static_cast<unsigned long long>(loop.max_trips));
    }
    if (analysis.has_exit) {
      std::printf("  r0 at exit: %s\n", analysis.r0_exit.ToString().c_str());
    }
    for (std::uint32_t id : analysis.helpers_called) {
      const HelperDef* helper = HelperRegistry::Global().Find(id);
      std::printf("  helper called: %u (%s)\n", id,
                  helper != nullptr ? helper->name.c_str() : "?");
    }
    std::printf("  writes map: %s, writes ctx: %s\n",
                analysis.writes_map ? "yes" : "no",
                analysis.writes_ctx ? "yes" : "no");
    for (std::size_t pc : analysis.ctx_ptr_across_call_pcs) {
      std::printf("  note: context pointer held across helper call at insn "
                  "%zu\n",
                  pc);
    }
  }
  if (show_cost) {
    const WcetReport wcet = ComputeWcet(*program, analysis);
    std::printf("cost model:\n");
    std::printf("  certified worst case: %llu ns (interpreter %llu ns, jit "
                "%llu ns)\n",
                static_cast<unsigned long long>(wcet.certified_ns),
                static_cast<unsigned long long>(wcet.interp_ns),
                static_cast<unsigned long long>(wcet.jit_ns));
    std::printf("  executed instructions: <= %llu\n",
                static_cast<unsigned long long>(wcet.max_insns));
    std::printf("  dominated by insn %zu (`%s`) x %llu executions (%llu ns)\n",
                wcet.hottest_pc,
                DisassembleInsn(program->insns[wcet.hottest_pc]).c_str(),
                static_cast<unsigned long long>(wcet.hottest_multiplier),
                static_cast<unsigned long long>(wcet.hottest_pc_ns));
  }
  if (show_races) {
    const RaceReport races = AnalyzeRaces(*program, analysis);
    std::printf("race analysis:\n");
    if (races.map_classes.empty()) {
      std::printf("  no maps referenced\n");
    }
    for (std::size_t i = 0; i < races.map_classes.size(); ++i) {
      const BpfMap* map = program->maps[i];
      std::printf("  map %zu ('%s', %s): %s\n", i,
                  map != nullptr ? map->name().c_str() : "?",
                  map != nullptr ? MapTypeName(map->type()) : "?",
                  MapAccessClassName(races.map_classes[i]));
    }
    for (const auto& finding : races.findings) {
      std::printf("  [%s] %s\n", finding.rule.c_str(),
                  finding.message.c_str());
    }
    if (races.ok()) {
      std::printf("  no shared-map races\n");
    }
  }
  std::printf("\n");
  for (std::size_t pc = 0; pc < program->insns.size(); ++pc) {
    std::printf("%4zu: %s\n", pc, DisassembleInsn(program->insns[pc]).c_str());
  }

  if (jit_dump) {
    if (!Jit::Supported()) {
      std::fprintf(stderr, "\njit: no backend on this platform/build\n");
      return 1;
    }
    auto compiled = Jit::Compile(*program);
    if (!compiled.ok()) {
      std::fprintf(stderr, "\njit: compile failed: %s\n",
                   compiled.status().ToString().c_str());
      return 1;
    }
    std::printf("\njit: %zu bytes of x86-64 code\n%s",
                compiled.value()->code_size(),
                compiled.value()->HexDump().c_str());
  }
  return 0;
}

}  // namespace
}  // namespace concord

int main(int argc, char** argv) { return concord::Run(argc, argv); }
