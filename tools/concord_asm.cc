// concord_asm — assemble, verify and disassemble policy programs offline.
//
// The developer loop for writing a policy: edit the .casm file, run this
// tool against the target hook, read the verifier's verdict before going
// anywhere near a lock.
//
// Usage:
//   concord_asm <hook> <file.casm>       assemble + verify + disassemble
//   concord_asm --jit-dump <hook> <file.casm>
//                                        ... then JIT-compile and hex-dump
//                                        the native x86-64 code
//   concord_asm --hooks                  list hook names and context layouts
//
// `<hook>` is one of the Table-1 names (cmp_node, skip_shuffle,
// schedule_waiter, lock_acquire, lock_contended, lock_acquired,
// lock_release) or rw_mode. Programs that reference maps get a scratch
// 8-byte array map bound at index 0 (matching the `mov r1, 0` convention the
// policy library uses).

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "src/bpf/assembler.h"
#include "src/bpf/jit/jit.h"
#include "src/bpf/maps.h"
#include "src/bpf/verifier.h"
#include "src/concord/hooks.h"

namespace concord {
namespace {

const HookKind kAllHooks[] = {
    HookKind::kCmpNode,      HookKind::kSkipShuffle, HookKind::kScheduleWaiter,
    HookKind::kLockAcquire,  HookKind::kLockContended, HookKind::kLockAcquired,
    HookKind::kLockRelease,  HookKind::kRwMode,
};

bool ParseHook(const std::string& name, HookKind* out) {
  for (HookKind kind : kAllHooks) {
    if (name == HookKindName(kind)) {
      *out = kind;
      return true;
    }
  }
  return false;
}

void PrintHooks() {
  std::printf("hook             granted capabilities         context fields\n");
  for (HookKind kind : kAllHooks) {
    const ContextDescriptor& desc = DescriptorFor(kind);
    const std::uint32_t caps = CapabilitiesFor(kind);
    std::string cap_names;
    if (caps & kCapRead) cap_names += "read ";
    if (caps & kCapMapRead) cap_names += "map-read ";
    if (caps & kCapMapWrite) cap_names += "map-write ";
    if (caps & kCapTrace) cap_names += "trace ";
    if (caps & kCapLockMutate) cap_names += "lock-mutate ";
    std::printf("%-16s %-28s ctx '%s' (%u bytes)\n", HookKindName(kind),
                cap_names.c_str(), desc.name().c_str(), desc.size());
    for (const ContextField& field : desc.fields()) {
      std::printf("%-16s %-28s   +%-3u %s%s (%u bytes)\n", "", "", field.offset,
                  field.name.c_str(), field.writable ? " [rw]" : "", field.width);
    }
  }
}

int Run(int argc, char** argv) {
  if (argc == 2 && std::string(argv[1]) == "--hooks") {
    PrintHooks();
    return 0;
  }
  bool jit_dump = false;
  int arg = 1;
  if (argc >= 2 && std::string(argv[1]) == "--jit-dump") {
    jit_dump = true;
    arg = 2;
  }
  if (argc - arg != 2) {
    std::fprintf(stderr,
                 "usage: %s [--jit-dump] <hook> <file.casm>\n       %s --hooks\n",
                 argv[0], argv[0]);
    return 2;
  }

  HookKind kind;
  if (!ParseHook(argv[arg], &kind)) {
    std::fprintf(stderr, "unknown hook '%s' (try --hooks)\n", argv[arg]);
    return 2;
  }

  std::ifstream in(argv[arg + 1]);
  if (!in) {
    std::fprintf(stderr, "cannot open '%s'\n", argv[arg + 1]);
    return 2;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();

  ArrayMap scratch("scratch", 8, 8);
  auto program = AssembleProgram(argv[arg + 1], buffer.str(),
                                 &DescriptorFor(kind), {&scratch});
  if (!program.ok()) {
    std::fprintf(stderr, "assembly failed: %s\n",
                 program.status().ToString().c_str());
    return 1;
  }
  std::printf("assembled %zu instructions against hook '%s'\n",
              program->insns.size(), HookKindName(kind));

  Verifier::Options options;
  options.allowed_capabilities = CapabilitiesFor(kind);
  Status verdict = Verifier::Verify(*program, options);
  if (!verdict.ok()) {
    std::printf("VERIFIER REJECTED: %s\n", verdict.ToString().c_str());
    return 1;
  }
  std::printf("verifier: OK (capabilities used: 0x%x)\n\n",
              program->used_capabilities);
  for (std::size_t pc = 0; pc < program->insns.size(); ++pc) {
    std::printf("%4zu: %s\n", pc, DisassembleInsn(program->insns[pc]).c_str());
  }

  if (jit_dump) {
    if (!Jit::Supported()) {
      std::fprintf(stderr, "\njit: no backend on this platform/build\n");
      return 1;
    }
    auto compiled = Jit::Compile(*program);
    if (!compiled.ok()) {
      std::fprintf(stderr, "\njit: compile failed: %s\n",
                   compiled.status().ToString().c_str());
      return 1;
    }
    std::printf("\njit: %zu bytes of x86-64 code\n%s",
                compiled.value()->code_size(),
                compiled.value()->HexDump().c_str());
  }
  return 0;
}

}  // namespace
}  // namespace concord

int main(int argc, char** argv) { return concord::Run(argc, argv); }
