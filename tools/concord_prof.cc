// concord_prof: the observability layer's CLI.
//
// The repo is a userspace reproduction, so there is no foreign process to
// attach to; the tool drives a contended demo workload (N ShflLocks, skewed
// so lock 0 is hot) through the Concord facade with profiling and the flight
// recorder enabled, then renders what the observability layer saw:
//
//   concord_prof top    [--locks N] [--threads N] [--ms N]
//       top-style most-contended-locks table (sorted by total wait time)
//   concord_prof trace  [--locks N] [--threads N] [--ms N] [--out FILE]
//       record and write a Chrome trace-event file (load in Perfetto or
//       chrome://tracing); defaults to concord_trace.json
//   concord_prof stats  [--locks N] [--threads N] [--ms N]
//       per-lock stats JSON (Concord::StatsJson) on stdout
//   concord_prof autotune [--locks N] [--threads N] [--ms N]
//       run the workload under the adaptive policy controller (threads
//       spread over virtual sockets so the hot lock shows NUMA skew) and
//       print AutotuneStatusJson: per-lock regime, incumbent policy and the
//       controller's event log
//   concord_prof status --socket PATH
//       fetch the `status` verb from a running control-plane RPC server
//       (docs/OPERATIONS.md) and print the result; exits nonzero with a
//       clear stderr message on connect or parse failure
//
// Any workload mode additionally accepts --serve PATH to expose the
// control-plane RPC server on that unix socket for the duration of the run,
// so an operator (or the CI smoke job) can drive concordctl against a live
// workload.
//
// Multi-process deployment (docs/OPERATIONS.md §multi-process): --shm PATH
// exports the profiler into a shared-memory segment, and --agent SOCKET
// additionally registers this process with a concord_agent daemon so the
// fleet agent can observe it and push policies back through --serve. --agent
// requires both --shm and --serve.

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "src/base/time.h"
#include "src/concord/agent/worker_export.h"
#include "src/concord/autotune/controller.h"
#include "src/concord/concord.h"
#include "src/concord/rpc/client.h"
#include "src/concord/rpc/server.h"
#include "src/concord/trace_export.h"
#include "src/sync/shfllock.h"
#include "src/topology/thread_context.h"
#include "src/topology/topology.h"

namespace concord {
namespace {

struct Options {
  std::string mode;
  int locks = 4;
  int threads = 4;
  int ms = 200;
  std::string out = "concord_trace.json";
  std::string socket;  // status mode: RPC socket to query
  std::string serve;   // workload modes: expose the RPC server here
  std::string shm;     // workload modes: export profiler to this segment
  std::string agent;   // workload modes: register with this agent socket
};

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <top|trace|stats|autotune> [--locks N] [--threads N] "
               "[--ms N] [--out FILE] [--serve SOCKET] [--shm PATH] "
               "[--agent SOCKET]\n"
               "       %s status --socket SOCKET\n",
               argv0, argv0);
  return 2;
}

bool ParseOptions(int argc, char** argv, Options& opts) {
  if (argc < 2) {
    return false;
  }
  opts.mode = argv[1];
  if (opts.mode != "top" && opts.mode != "trace" && opts.mode != "stats" &&
      opts.mode != "autotune" && opts.mode != "status") {
    return false;
  }
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--locks" && has_value) {
      opts.locks = std::atoi(argv[++i]);
    } else if (arg == "--threads" && has_value) {
      opts.threads = std::atoi(argv[++i]);
    } else if (arg == "--ms" && has_value) {
      opts.ms = std::atoi(argv[++i]);
    } else if (arg == "--out" && has_value) {
      opts.out = argv[++i];
    } else if (arg == "--socket" && has_value) {
      opts.socket = argv[++i];
    } else if (arg == "--serve" && has_value) {
      opts.serve = argv[++i];
    } else if (arg == "--shm" && has_value) {
      opts.shm = argv[++i];
    } else if (arg == "--agent" && has_value) {
      opts.agent = argv[++i];
    } else {
      std::fprintf(stderr, "unknown or incomplete flag: %s\n", arg.c_str());
      return false;
    }
  }
  if (opts.mode == "status") {
    if (opts.socket.empty()) {
      std::fprintf(stderr, "status mode requires --socket PATH\n");
      return false;
    }
    return true;
  }
  if (opts.locks < 1 || opts.locks > 64 || opts.threads < 1 ||
      opts.threads > 256 || opts.ms < 1) {
    std::fprintf(stderr, "flag out of range\n");
    return false;
  }
  if (!opts.agent.empty() && (opts.shm.empty() || opts.serve.empty())) {
    std::fprintf(stderr, "--agent requires --shm and --serve\n");
    return false;
  }
  return true;
}

// status mode: one read-only RPC against a live server. Every failure mode —
// no socket, connect refused, deadline, garbled reply — exits nonzero with a
// message naming the stage, never 0 with partial output.
int RunStatusClient(const Options& opts) {
  RpcClientOptions client_options;
  client_options.socket_path = opts.socket;
  RpcClient client(client_options);
  auto response = client.Call("status", "", /*idempotent=*/true);
  if (!response.ok()) {
    std::fprintf(stderr, "concord_prof: status query failed: %s\n",
                 response.status().ToString().c_str());
    return 1;
  }
  if (!response->ok) {
    std::fprintf(stderr, "concord_prof: server error: %s: %s\n",
                 response->error_code.c_str(),
                 response->error_message.c_str());
    return 1;
  }
  std::printf("%s\n", response->result.c_str());
  return 0;
}

// Runs the demo workload: every thread loops over the locks with a skew that
// makes lock 0 by far the hottest, holding each lock briefly.
void RunWorkload(std::vector<ShflLock>& locks, const Options& opts) {
  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  const std::uint32_t cores_per_socket =
      MachineTopology::Global().config().cores_per_socket;
  for (int t = 0; t < opts.threads; ++t) {
    workers.emplace_back([&, t] {
      if (opts.mode == "autotune") {
        // Alternate threads between two virtual sockets so the hot lock's
        // contended handoffs cross sockets — the NUMA-skew signal.
        const std::uint32_t vcpu =
            static_cast<std::uint32_t>(t % 2) * cores_per_socket +
            static_cast<std::uint32_t>(t / 2) % cores_per_socket;
        ThreadRegistry::Global().RegisterCurrent(vcpu);
      }
      std::uint64_t n = static_cast<std::uint64_t>(t);
      while (!stop.load(std::memory_order_relaxed)) {
        // 2-in-3 iterations hit lock 0; the rest spread over the others.
        n = n * 6364136223846793005ull + 1442695040888963407ull;
        const std::size_t victim =
            (n % 3 != 0 || locks.size() == 1) ? 0 : 1 + (n >> 8) % (locks.size() - 1);
        locks[victim].Lock();
        BurnNs(victim == 0 ? 2'000 : 500);
        locks[victim].Unlock();
      }
    });
  }
  const std::uint64_t deadline =
      MonotonicNowNs() + static_cast<std::uint64_t>(opts.ms) * 1'000'000ull;
  while (MonotonicNowNs() < deadline) {
    timespec ts{0, 5'000'000};
    nanosleep(&ts, nullptr);
  }
  stop.store(true);
  for (auto& worker : workers) {
    worker.join();
  }
}

int Run(const Options& opts) {
  if (opts.mode == "status") {
    return RunStatusClient(opts);
  }

  Concord& concord = Concord::Global();

  RpcServerOptions server_options;
  server_options.socket_path = opts.serve;
  RpcServer rpc_server(server_options);
  if (!opts.serve.empty()) {
    const Status started = rpc_server.Start();
    if (!started.ok()) {
      std::fprintf(stderr, "concord_prof: cannot serve RPC on %s: %s\n",
                   opts.serve.c_str(), started.ToString().c_str());
      return 1;
    }
  }

  std::vector<ShflLock> locks(static_cast<std::size_t>(opts.locks));
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < opts.locks; ++i) {
    const std::string name = i == 0 ? "hot" : "cold" + std::to_string(i);
    const std::uint64_t id =
        concord.RegisterShflLock(locks[static_cast<std::size_t>(i)], name,
                                 "demo");
    if (!concord.EnableProfiling(id).ok()) {
      std::fprintf(stderr, "EnableProfiling(%llu) failed\n",
                   static_cast<unsigned long long>(id));
      return 1;
    }
    const Status traced = concord.EnableTracing(id);
    if (!traced.ok() && opts.mode != "stats" && opts.mode != "autotune") {
      std::fprintf(stderr, "EnableTracing: %s\n", traced.ToString().c_str());
      return 1;
    }
    ids.push_back(id);
  }

  // Multi-process deployment: export the profiler over shared memory and
  // (optionally) hand this worker to a fleet agent.
  std::unique_ptr<ShmExporter> exporter;
  if (!opts.shm.empty()) {
    ShmExporterOptions exporter_options;
    exporter_options.shm_path = opts.shm;
    auto created = ShmExporter::Create(exporter_options);
    if (!created.ok()) {
      std::fprintf(stderr, "concord_prof: shm export on %s: %s\n",
                   opts.shm.c_str(), created.status().ToString().c_str());
      return 1;
    }
    exporter = std::move(*created);
    const Status started = exporter->Start();
    if (!started.ok()) {
      std::fprintf(stderr, "concord_prof: shm exporter: %s\n",
                   started.ToString().c_str());
      return 1;
    }
  }
  if (!opts.agent.empty()) {
    const Status registered = RegisterWithAgent(
        opts.agent, static_cast<std::uint64_t>(getpid()), opts.shm, opts.serve);
    if (!registered.ok()) {
      std::fprintf(stderr, "concord_prof: agent registration on %s: %s\n",
                   opts.agent.c_str(), registered.ToString().c_str());
      return 1;
    }
  }

  if (opts.mode == "autotune") {
    AutotuneConfig config;
    // Sized so a short demo run still sees several decision windows.
    config.window_ns = static_cast<std::uint64_t>(opts.ms) * 1'000'000ull / 20;
    if (config.window_ns < 1'000'000ull) {
      config.window_ns = 1'000'000ull;
    }
    config.min_window_acquisitions = 16;
    const Status enabled = concord.EnableAutotune("class:demo", config);
    if (!enabled.ok()) {
      std::fprintf(stderr, "EnableAutotune: %s\n", enabled.ToString().c_str());
      return 1;
    }
  }

  RunWorkload(locks, opts);

  int rc = 0;
  if (opts.mode == "top") {
    const auto events = concord.TraceEvents();
    const auto summaries = SummarizeTrace(events);
    std::printf("%-10s %-8s %10s %10s %12s %12s %12s %8s\n", "lock", "id",
                "acquires", "contended", "wait_total", "wait_max", "hold_total",
                "parks");
    for (const TraceLockSummary& s : summaries) {
      std::string name = "lock" + std::to_string(s.lock_id);
      for (std::size_t i = 0; i < ids.size(); ++i) {
        if (ids[i] == s.lock_id) {
          name = i == 0 ? "hot" : "cold" + std::to_string(i);
        }
      }
      std::printf("%-10s %-8llu %10llu %10llu %10lluus %10lluus %10lluus %8llu\n",
                  name.c_str(), static_cast<unsigned long long>(s.lock_id),
                  static_cast<unsigned long long>(s.acquisitions),
                  static_cast<unsigned long long>(s.contentions),
                  static_cast<unsigned long long>(s.total_wait_ns / 1000),
                  static_cast<unsigned long long>(s.max_wait_ns / 1000),
                  static_cast<unsigned long long>(s.total_hold_ns / 1000),
                  static_cast<unsigned long long>(s.parks));
    }
    std::printf("(%zu events in ring snapshot; profiler view below)\n\n",
                events.size());
    std::printf("%s", concord.ProfileReport("*").c_str());
  } else if (opts.mode == "trace") {
    const std::string json = concord.TraceChromeJson();
    std::FILE* file = std::fopen(opts.out.c_str(), "w");
    if (file == nullptr ||
        std::fwrite(json.data(), 1, json.size(), file) != json.size()) {
      std::fprintf(stderr, "cannot write %s\n", opts.out.c_str());
      rc = 1;
    } else {
      std::printf("wrote %s (%zu bytes) — load it in Perfetto or "
                  "chrome://tracing\n",
                  opts.out.c_str(), json.size());
    }
    if (file != nullptr) {
      std::fclose(file);
    }
  } else if (opts.mode == "autotune") {
    (void)concord.DisableAutotune();
    std::printf("%s\n", concord.AutotuneStatusJson().c_str());
  } else {  // stats
    std::printf("%s\n", concord.StatsJson("*").c_str());
  }

  if (!opts.agent.empty()) {
    (void)LeaveAgent(opts.agent, static_cast<std::uint64_t>(getpid()));
  }
  if (exporter != nullptr) {
    exporter->Stop();
  }
  for (const std::uint64_t id : ids) {
    (void)concord.DisableTracing(id);
    (void)concord.Unregister(id);
  }
  return rc;
}

}  // namespace
}  // namespace concord

int main(int argc, char** argv) {
  concord::Options opts;
  if (!concord::ParseOptions(argc, argv, opts)) {
    return concord::Usage(argv[0]);
  }
  return concord::Run(opts);
}
