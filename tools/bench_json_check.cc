// bench_json_check: validates BENCH_*.json artifacts against schema_version 1
// (see bench/bench_report.h). CI runs this over every file the smoke-bench
// job produces; a schema drift fails the build instead of silently breaking
// whatever consumes the artifacts.
//
// usage: bench_json_check FILE...
// exit: 0 if every file validates, 1 otherwise.

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "src/base/json.h"

namespace concord {
namespace {

struct Checker {
  const char* path;
  std::vector<std::string> errors;

  void Fail(const std::string& message) { errors.push_back(message); }

  const JsonValue* Require(const JsonValue& root, const char* key,
                           JsonValue::Type type, const char* type_name) {
    const JsonValue* value = root.Find(key);
    if (value == nullptr) {
      Fail(std::string("missing key \"") + key + "\"");
      return nullptr;
    }
    if (value->type != type) {
      Fail(std::string("\"") + key + "\" must be a " + type_name);
      return nullptr;
    }
    return value;
  }

  void CheckFiniteNumber(const JsonValue& value, const std::string& where) {
    if (!value.IsNumber() || !std::isfinite(value.number_value)) {
      Fail(where + " must be a finite number");
    }
  }

  void CheckMetric(const JsonValue& metric, std::size_t index) {
    const std::string where = "metrics[" + std::to_string(index) + "]";
    if (!metric.IsObject()) {
      Fail(where + " must be an object");
      return;
    }
    const JsonValue* name = metric.Find("name");
    if (name == nullptr || !name->IsString() || name->string_value.empty()) {
      Fail(where + ".name must be a non-empty string");
    }
    const JsonValue* unit = metric.Find("unit");
    if (unit == nullptr || !unit->IsString()) {
      Fail(where + ".unit must be a string");
    }
    const JsonValue* value = metric.Find("value");
    if (value == nullptr) {
      Fail(where + ".value is missing");
    } else {
      CheckFiniteNumber(*value, where + ".value");
    }
    const JsonValue* labels = metric.Find("labels");
    if (labels == nullptr || !labels->IsObject()) {
      Fail(where + ".labels must be an object");
    } else {
      for (const auto& [key, label] : labels->object) {
        if (!label.IsString()) {
          Fail(where + ".labels[\"" + key + "\"] must be a string");
        }
      }
    }
  }

  void CheckRoot(const JsonValue& root) {
    if (!root.IsObject()) {
      Fail("top level must be an object");
      return;
    }
    const JsonValue* version = root.Find("schema_version");
    if (version == nullptr || !version->IsNumber() ||
        version->number_value != 1.0) {
      Fail("schema_version must be the number 1");
    }
    const JsonValue* bench =
        Require(root, "bench", JsonValue::Type::kString, "string");
    if (bench != nullptr && bench->string_value.empty()) {
      Fail("\"bench\" must be non-empty");
    }
    Require(root, "git_sha", JsonValue::Type::kString, "string");
    const JsonValue* timestamp = root.Find("timestamp_unix");
    if (timestamp == nullptr) {
      Fail("missing key \"timestamp_unix\"");
    } else {
      CheckFiniteNumber(*timestamp, "timestamp_unix");
    }
    const JsonValue* config =
        Require(root, "config", JsonValue::Type::kObject, "object");
    if (config != nullptr) {
      for (const auto& [key, value] : config->object) {
        if (!value.IsString() && !value.IsNumber()) {
          Fail("config[\"" + key + "\"] must be a string or number");
        }
      }
    }
    const JsonValue* metrics =
        Require(root, "metrics", JsonValue::Type::kArray, "array");
    if (metrics != nullptr) {
      if (metrics->array.empty()) {
        Fail("metrics must not be empty");
      }
      for (std::size_t i = 0; i < metrics->array.size(); ++i) {
        CheckMetric(metrics->array[i], i);
      }
    }
  }
};

bool CheckFile(const char* path) {
  std::FILE* file = std::fopen(path, "rb");
  if (file == nullptr) {
    std::fprintf(stderr, "%s: cannot open\n", path);
    return false;
  }
  std::string text;
  char buffer[4096];
  std::size_t got;
  while ((got = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    text.append(buffer, got);
  }
  std::fclose(file);

  Checker checker{path, {}};
  const auto parsed = ParseJson(text);
  if (!parsed.ok()) {
    checker.Fail("not valid JSON: " + parsed.status().ToString());
  } else {
    checker.CheckRoot(*parsed);
  }
  if (checker.errors.empty()) {
    std::printf("%s: OK\n", path);
    return true;
  }
  for (const std::string& error : checker.errors) {
    std::fprintf(stderr, "%s: %s\n", path, error.c_str());
  }
  return false;
}

}  // namespace
}  // namespace concord

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s FILE...\n", argv[0]);
    return 2;
  }
  bool all_ok = true;
  for (int i = 1; i < argc; ++i) {
    all_ok = concord::CheckFile(argv[i]) && all_ok;
  }
  return all_ok ? 0 : 1;
}
