// bench_trend: compares two sets of BENCH_*.json artifacts (bench_report.h
// schema v1) and reports per-metric deltas, so CI can catch performance
// drift between a baseline run and the current run.
//
// usage: bench_trend --baseline DIR --current DIR [--threshold PCT] [--strict]
//
// Metrics are matched by (bench, name, unit, labels). Direction comes from
// the unit: rates ("*_per_msec", "*_per_sec") are higher-is-better,
// durations ("ns", "us", "ms") and "percent" are lower-is-better; counts,
// booleans and grant positions are informational only.
//
// Exit code: 1 when any tail-latency metric (name or a label containing
// "p99") regresses by more than the threshold (default 10%); with --strict,
// any directional metric regressing past the threshold fails. Everything
// else is printed but advisory — CI wires this as a continue-on-error step.

#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "src/base/json.h"

namespace concord {
namespace {

enum class Direction { kHigherBetter, kLowerBetter, kInfoOnly };

Direction DirectionForUnit(const std::string& unit) {
  if (unit.find("per_msec") != std::string::npos ||
      unit.find("per_sec") != std::string::npos) {
    return Direction::kHigherBetter;
  }
  if (unit == "ns" || unit == "us" || unit == "ms" || unit == "percent") {
    return Direction::kLowerBetter;
  }
  return Direction::kInfoOnly;
}

struct MetricKey {
  std::string bench;
  std::string name;
  std::string unit;
  std::string labels;  // canonical "k=v,k=v" form (std::map order)

  bool operator<(const MetricKey& other) const {
    if (bench != other.bench) return bench < other.bench;
    if (name != other.name) return name < other.name;
    if (unit != other.unit) return unit < other.unit;
    return labels < other.labels;
  }

  std::string ToString() const {
    std::string out = bench + ":" + name;
    if (!labels.empty()) {
      out += "{" + labels + "}";
    }
    return out + " (" + unit + ")";
  }

  bool IsTailLatency() const {
    return name.find("p99") != std::string::npos ||
           labels.find("p99") != std::string::npos;
  }
};

bool LoadSet(const std::string& dir, std::map<MetricKey, double>& out) {
  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec);
  if (ec) {
    std::fprintf(stderr, "bench_trend: cannot read %s: %s\n", dir.c_str(),
                 ec.message().c_str());
    return false;
  }
  bool any = false;
  for (const auto& entry : it) {
    const std::string filename = entry.path().filename().string();
    if (!entry.is_regular_file() || filename.rfind("BENCH_", 0) != 0 ||
        entry.path().extension() != ".json") {
      continue;
    }
    std::ifstream file(entry.path());
    std::stringstream buffer;
    buffer << file.rdbuf();
    const auto parsed = ParseJson(buffer.str());
    if (!parsed.ok() || !parsed->IsObject()) {
      std::fprintf(stderr, "bench_trend: skipping unparseable %s\n",
                   filename.c_str());
      continue;
    }
    const JsonValue* bench = parsed->Find("bench");
    const JsonValue* metrics = parsed->Find("metrics");
    if (bench == nullptr || !bench->IsString() || metrics == nullptr ||
        !metrics->IsArray()) {
      continue;
    }
    for (const JsonValue& metric : metrics->array) {
      if (!metric.IsObject()) {
        continue;
      }
      const JsonValue* name = metric.Find("name");
      const JsonValue* unit = metric.Find("unit");
      const JsonValue* value = metric.Find("value");
      if (name == nullptr || !name->IsString() || unit == nullptr ||
          !unit->IsString() || value == nullptr || !value->IsNumber()) {
        continue;
      }
      std::string labels;
      const JsonValue* label_obj = metric.Find("labels");
      if (label_obj != nullptr && label_obj->IsObject()) {
        for (const auto& [key, label] : label_obj->object) {
          if (!labels.empty()) {
            labels += ",";
          }
          labels += key + "=" +
                    (label.IsString() ? label.string_value : "?");
        }
      }
      out[{bench->string_value, name->string_value, unit->string_value,
           labels}] = value->number_value;
      any = true;
    }
  }
  return any;
}

int Usage() {
  std::fprintf(stderr,
               "usage: bench_trend --baseline DIR --current DIR "
               "[--threshold PCT] [--strict]\n");
  return 2;
}

}  // namespace
}  // namespace concord

int main(int argc, char** argv) {
  using concord::Direction;
  std::string baseline_dir;
  std::string current_dir;
  double threshold_pct = 10.0;
  bool strict = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--baseline" && has_value) {
      baseline_dir = argv[++i];
    } else if (arg == "--current" && has_value) {
      current_dir = argv[++i];
    } else if (arg == "--threshold" && has_value) {
      threshold_pct = std::atof(argv[++i]);
    } else if (arg == "--strict") {
      strict = true;
    } else {
      return concord::Usage();
    }
  }
  if (baseline_dir.empty() || current_dir.empty() || threshold_pct <= 0.0) {
    return concord::Usage();
  }

  std::map<concord::MetricKey, double> baseline;
  std::map<concord::MetricKey, double> current;
  if (!concord::LoadSet(baseline_dir, baseline)) {
    // A missing baseline is normal on the first run of a new branch; report
    // success so an advisory CI step stays green and seeds the cache.
    std::fprintf(stderr,
                 "bench_trend: no baseline metrics in %s, nothing to "
                 "compare\n",
                 baseline_dir.c_str());
    return 0;
  }
  if (!concord::LoadSet(current_dir, current)) {
    std::fprintf(stderr, "bench_trend: no current metrics in %s\n",
                 current_dir.c_str());
    return 2;
  }

  int compared = 0;
  int regressions = 0;
  int failures = 0;
  std::printf("%-70s %14s %14s %9s\n", "metric", "baseline", "current",
              "delta");
  for (const auto& [key, now] : current) {
    const auto base_it = baseline.find(key);
    if (base_it == baseline.end()) {
      continue;
    }
    const Direction direction = concord::DirectionForUnit(key.unit);
    if (direction == Direction::kInfoOnly) {
      continue;
    }
    const double base = base_it->second;
    if (!std::isfinite(base) || !std::isfinite(now) || base == 0.0) {
      continue;
    }
    ++compared;
    const double delta_pct = (now - base) / std::fabs(base) * 100.0;
    const double regression_pct =
        direction == Direction::kHigherBetter ? -delta_pct : delta_pct;
    const bool regressed = regression_pct > threshold_pct;
    std::printf("%-70s %14.2f %14.2f %+8.1f%%%s\n", key.ToString().c_str(),
                base, now, delta_pct, regressed ? "  << REGRESSION" : "");
    if (regressed) {
      ++regressions;
      if (strict || key.IsTailLatency()) {
        ++failures;
      }
    }
  }
  std::printf(
      "\nbench_trend: %d metrics compared, %d regressions beyond %.1f%%, "
      "%d failing (%s)\n",
      compared, regressions, threshold_pct, failures,
      strict ? "strict" : "p99 gate only");
  return failures > 0 ? 1 : 0;
}
