// policy_cert_check — CI validator for `concord_check --json` reports.
//
// Reads the JSON report produced by `concord_check --cost --races --json`
// over a policy corpus and enforces the certification contract:
//   - the document is an array of per-file objects with the expected schema
//     (file/hook/ok plus, for verified programs, cost{} and races{} facts),
//   - every file passed all stages (ok == true),
//   - every file is certified (certified == true, cost numbers present and
//     consistent: certified_ns == max(interp_ns, jit_ns), within budget when
//     one is set, no race findings).
//
// Usage: policy_cert_check <report.json>
// Exits 0 when every entry certifies; prints one line per violation
// otherwise. Schema violations are failures too — a report that drops the
// cost block would otherwise pass CI while gating nothing.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "src/base/json.h"

namespace concord {
namespace {

int g_failures = 0;

void Fail(const std::string& where, const std::string& what) {
  std::fprintf(stderr, "policy_cert_check: %s: %s\n", where.c_str(),
               what.c_str());
  ++g_failures;
}

const JsonValue* RequireMember(const JsonValue& entry, const std::string& where,
                               const char* key, JsonValue::Type type) {
  const JsonValue* value = entry.Find(key);
  if (value == nullptr || value->type != type) {
    Fail(where, std::string("missing or mistyped member '") + key + "'");
    return nullptr;
  }
  return value;
}

std::uint64_t NumberOr(const JsonValue* value, std::uint64_t fallback) {
  return value != nullptr && value->IsNumber()
             ? static_cast<std::uint64_t>(value->number_value)
             : fallback;
}

void CheckEntry(const JsonValue& entry, std::size_t index) {
  std::string where = "entry " + std::to_string(index);
  if (!entry.IsObject()) {
    Fail(where, "not an object");
    return;
  }
  const JsonValue* file =
      RequireMember(entry, where, "file", JsonValue::Type::kString);
  if (file != nullptr) {
    where = file->string_value;
  }
  RequireMember(entry, where, "hook", JsonValue::Type::kString);
  const JsonValue* ok =
      RequireMember(entry, where, "ok", JsonValue::Type::kBool);
  if (ok == nullptr) {
    return;
  }
  if (!ok->bool_value) {
    const JsonValue* stage = entry.Find("stage");
    const JsonValue* error = entry.Find("error");
    Fail(where,
         "not certified (stage " +
             (stage != nullptr ? stage->string_value : "?") + ": " +
             (error != nullptr ? error->string_value : "see findings") + ")");
    return;
  }

  const JsonValue* certified =
      RequireMember(entry, where, "certified", JsonValue::Type::kBool);
  if (certified != nullptr && !certified->bool_value) {
    Fail(where, "ok but certified == false (gate inconsistency)");
  }

  const JsonValue* cost =
      RequireMember(entry, where, "cost", JsonValue::Type::kObject);
  if (cost != nullptr) {
    const std::uint64_t interp = NumberOr(cost->Find("interp_ns"), 0);
    const std::uint64_t jit = NumberOr(cost->Find("jit_ns"), 0);
    const std::uint64_t cert_ns = NumberOr(cost->Find("certified_ns"), 0);
    const std::uint64_t budget = NumberOr(cost->Find("budget_ns"), 0);
    if (cost->Find("interp_ns") == nullptr ||
        cost->Find("jit_ns") == nullptr ||
        cost->Find("certified_ns") == nullptr ||
        cost->Find("max_insns") == nullptr) {
      Fail(where, "cost block is missing wcet members");
    } else if (cert_ns != (interp > jit ? interp : jit)) {
      Fail(where, "certified_ns != max(interp_ns, jit_ns)");
    } else if (cert_ns == 0) {
      Fail(where, "certified_ns == 0 (a nonempty program costs something)");
    } else if (budget != 0 && cert_ns > budget) {
      Fail(where, "certified_ns exceeds budget_ns yet entry passed");
    }
  }

  const JsonValue* races =
      RequireMember(entry, where, "races", JsonValue::Type::kObject);
  if (races != nullptr) {
    const JsonValue* maps = races->Find("maps");
    const JsonValue* findings = races->Find("findings");
    if (maps == nullptr || !maps->IsArray() || findings == nullptr ||
        !findings->IsArray()) {
      Fail(where, "races block is missing maps/findings arrays");
    } else if (!findings->array.empty()) {
      Fail(where, "race findings present yet entry passed");
    }
  }
}

int Run(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <concord_check --json report>\n", argv[0]);
    return 2;
  }
  std::ifstream in(argv[1]);
  if (!in) {
    std::fprintf(stderr, "cannot open '%s'\n", argv[1]);
    return 2;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();

  auto doc = ParseJson(buffer.str());
  if (!doc.ok()) {
    std::fprintf(stderr, "invalid JSON: %s\n",
                 doc.status().ToString().c_str());
    return 1;
  }
  if (!doc->IsArray()) {
    std::fprintf(stderr, "report root must be an array of file entries\n");
    return 1;
  }
  if (doc->array.empty()) {
    std::fprintf(stderr, "report is empty — no policies were checked\n");
    return 1;
  }
  for (std::size_t i = 0; i < doc->array.size(); ++i) {
    CheckEntry(doc->array[i], i);
  }
  if (g_failures == 0) {
    std::printf("policy_cert_check: %zu file(s), all certified\n",
                doc->array.size());
    return 0;
  }
  return 1;
}

}  // namespace
}  // namespace concord

int main(int argc, char** argv) { return concord::Run(argc, argv); }
