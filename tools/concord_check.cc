// concord_check — static analysis gate for lock policies.
//
// Assembles each .casm file, runs the range-tracking verifier under the
// target hook's capability mask, applies the lock-invariant lint rules
// (src/concord/policy_lint.h), then certifies the program
// (src/bpf/analysis/certify.h): shared-map race findings always reject;
// the WCET bound additionally rejects when a budget is known (from a
// `; budget_ns: <N>` directive or --budget-ns). Intended for CI: exits 0
// only when every file passes all four stages.
//
// Usage:
//   concord_check [--json] [--cost] [--races] [--hook <name>]
//                 [--budget-ns <N>] <file.casm>...
//   concord_check --list-hooks
//
// The hook is taken from a `; hook: <name>` comment directive in the file
// (conventionally the first line); `--hook` overrides it for every file. A
// malformed or unknown directive is reported with its line number. --cost
// and --races print the certification detail in human output; the --json
// report always carries both.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/base/json.h"
#include "src/bpf/analysis/certify.h"
#include "src/bpf/assembler.h"
#include "src/bpf/maps.h"
#include "src/bpf/verifier.h"
#include "src/concord/hooks.h"
#include "src/concord/policy_lint.h"
#include "src/concord/policy_source.h"

namespace concord {
namespace {

struct FileResult {
  std::string file;
  std::string hook;
  int hook_line = 0;  // 1-based source line of the hook directive; 0 = --hook
  bool ok = false;
  // Failing stage: "read", "hook", "assemble", "verify", "lint", "certify".
  std::string stage;
  std::string error;  // verifier/assembler/certifier message when stage is set
  LintReport lint;
  Verifier::Analysis analysis;
  CertificationReport cert;
  std::uint64_t budget_ns = 0;
  std::size_t insns = 0;
};

FileResult CheckFile(const std::string& path, const std::string& hook_override,
                     std::uint64_t budget_override) {
  FileResult result;
  result.file = path;

  std::ifstream in(path);
  if (!in) {
    result.stage = "read";
    result.error = "cannot open file";
    return result;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string source = buffer.str();

  HookKind kind;
  if (!hook_override.empty()) {
    result.hook = hook_override;
    if (!ParseHookKindName(hook_override, &kind)) {
      result.stage = "hook";
      result.error = "unknown hook '" + hook_override + "'";
      return result;
    }
  } else {
    auto resolved = ResolveHookDirective(source, &result.hook_line);
    if (!resolved.ok()) {
      result.stage = "hook";
      result.error =
          resolved.status().code() == StatusCode::kNotFound
              ? "no `; hook: <name>` directive and no --hook given"
              : resolved.status().message();
      return result;
    }
    kind = *resolved;
    result.hook = HookKindName(kind);
  }

  result.budget_ns = budget_override;
  if (budget_override == 0) {
    auto budget = ResolveBudgetDirective(source);
    if (budget.ok()) {
      result.budget_ns = *budget;
    } else if (budget.status().code() != StatusCode::kNotFound) {
      result.stage = "hook";
      result.error = budget.status().message();
      return result;
    }
  }

  // Sources with `.map` directives own the whole map table (their indices
  // start at 0); legacy sources get the scratch knob array at index 0.
  ArrayMap scratch("scratch", 8, 8);
  std::vector<BpfMap*> caller_maps;
  if (!SourceDeclaresMaps(source)) {
    caller_maps.push_back(&scratch);
  }
  std::vector<std::shared_ptr<BpfMap>> declared_maps;
  auto program = AssembleProgram(path, source, &DescriptorFor(kind),
                                 std::move(caller_maps), &declared_maps);
  if (!program.ok()) {
    result.stage = "assemble";
    result.error = program.status().ToString();
    return result;
  }
  result.insns = program->insns.size();

  Verifier::Options options;
  options.allowed_capabilities = CapabilitiesFor(kind);
  Status verdict = Verifier::Verify(*program, options, &result.analysis);
  if (!verdict.ok()) {
    result.stage = "verify";
    result.error = verdict.ToString();
    return result;
  }

  result.lint = LintPolicyProgram(kind, result.analysis);
  if (!result.lint.ok()) {
    result.stage = "lint";
    return result;
  }

  Status certified = CertifyProgram(*program, result.analysis,
                                    result.budget_ns, &result.cert);
  if (!certified.ok()) {
    result.stage = "certify";
    result.error = certified.ToString();
    return result;
  }

  result.ok = true;
  return result;
}

void PrintCost(const FileResult& r) {
  std::printf(
      "  cost: wcet %llu ns (interp %llu, jit %llu), <= %llu insns",
      static_cast<unsigned long long>(r.cert.wcet.certified_ns),
      static_cast<unsigned long long>(r.cert.wcet.interp_ns),
      static_cast<unsigned long long>(r.cert.wcet.jit_ns),
      static_cast<unsigned long long>(r.cert.wcet.max_insns));
  if (r.budget_ns != 0) {
    std::printf(", budget %llu ns",
                static_cast<unsigned long long>(r.budget_ns));
  }
  std::printf("\n");
}

void PrintRaces(const FileResult& r) {
  std::printf("  races: ");
  if (r.cert.races.map_classes.empty()) {
    std::printf("no maps");
  }
  for (std::size_t i = 0; i < r.cert.races.map_classes.size(); ++i) {
    std::printf("%smap[%zu] %s", i == 0 ? "" : ", ", i,
                MapAccessClassName(r.cert.races.map_classes[i]));
  }
  std::printf("\n");
  for (const auto& finding : r.cert.races.findings) {
    std::printf("  [%s] %s\n", finding.rule.c_str(), finding.message.c_str());
  }
}

void PrintHuman(const FileResult& r, bool show_cost, bool show_races) {
  if (r.ok) {
    std::printf("%s: OK (hook %s, %zu insns, %zu states", r.file.c_str(),
                r.hook.c_str(), r.insns, r.analysis.states_processed);
    for (const auto& loop : r.analysis.loops) {
      std::printf(", loop@%zu<=%llu trips", loop.back_edge_pc,
                  static_cast<unsigned long long>(loop.max_trips));
    }
    std::printf(")\n");
    if (show_cost) {
      PrintCost(r);
    }
    if (show_races) {
      PrintRaces(r);
    }
    return;
  }
  if (r.stage == "lint") {
    std::printf("%s: LINT FAILED (hook %s)\n", r.file.c_str(), r.hook.c_str());
    for (const auto& finding : r.lint.findings) {
      std::printf("  [%s] %s\n", finding.rule.c_str(), finding.message.c_str());
    }
    return;
  }
  std::printf("%s: %s FAILED: %s\n", r.file.c_str(), r.stage.c_str(),
              r.error.c_str());
  if (r.stage == "certify") {
    if (show_cost) {
      PrintCost(r);
    }
    if (show_races) {
      PrintRaces(r);
    }
  }
}

void EmitJson(JsonWriter& json, const FileResult& r) {
  json.BeginObject();
  json.Field("file", r.file);
  json.Field("hook", r.hook);
  if (r.hook_line != 0) {
    json.NumberField("hook_line", static_cast<std::int64_t>(r.hook_line));
  }
  json.Key("ok").Bool(r.ok);
  if (!r.ok) {
    json.Field("stage", r.stage);
    if (!r.error.empty()) {
      json.Field("error", r.error);
    }
  }
  json.Key("findings").BeginArray();
  for (const auto& finding : r.lint.findings) {
    json.BeginObject();
    json.Field("rule", finding.rule);
    json.Field("message", finding.message);
    json.EndObject();
  }
  json.EndArray();
  // Verifier facts plus certification facts for every program that reached
  // those stages (i.e. verified; "lint" and "certify" failures still carry
  // them — CI consumers want the numbers that drove the rejection).
  if (r.stage.empty() || r.stage == "lint" || r.stage == "certify") {
    json.Key("analysis").BeginObject();
    json.NumberField("insns", static_cast<std::uint64_t>(r.insns));
    json.NumberField("states",
                     static_cast<std::uint64_t>(r.analysis.states_processed));
    json.Key("loops").BeginArray();
    for (const auto& loop : r.analysis.loops) {
      json.BeginObject();
      json.NumberField("back_edge_pc",
                       static_cast<std::uint64_t>(loop.back_edge_pc));
      json.NumberField("header_pc", static_cast<std::uint64_t>(loop.header_pc));
      json.NumberField("max_trips", loop.max_trips);
      json.EndObject();
    }
    json.EndArray();
    json.Key("helpers").BeginArray();
    for (std::uint32_t id : r.analysis.helpers_called) {
      json.Number(static_cast<std::uint64_t>(id));
    }
    json.EndArray();
    json.Key("writes_map").Bool(r.analysis.writes_map);
    json.Key("writes_ctx").Bool(r.analysis.writes_ctx);
    if (r.analysis.has_exit) {
      json.Key("r0").BeginObject();
      json.NumberField("umin", r.analysis.r0_exit.umin);
      json.NumberField("umax", r.analysis.r0_exit.umax);
      json.EndObject();
    }
    json.EndObject();

    json.Key("certified").Bool(r.cert.certified);
    json.Key("cost").BeginObject();
    json.NumberField("interp_ns", r.cert.wcet.interp_ns);
    json.NumberField("jit_ns", r.cert.wcet.jit_ns);
    json.NumberField("certified_ns", r.cert.wcet.certified_ns);
    json.NumberField("max_insns", r.cert.wcet.max_insns);
    json.NumberField("budget_ns", r.budget_ns);
    json.EndObject();
    json.Key("races").BeginObject();
    json.Key("maps").BeginArray();
    for (const MapAccessClass cls : r.cert.races.map_classes) {
      json.String(MapAccessClassName(cls));
    }
    json.EndArray();
    json.Key("findings").BeginArray();
    for (const auto& finding : r.cert.races.findings) {
      json.BeginObject();
      json.Field("rule", finding.rule);
      json.NumberField("pc", static_cast<std::uint64_t>(finding.pc));
      json.NumberField("map_index",
                       static_cast<std::uint64_t>(finding.map_index));
      json.Field("message", finding.message);
      json.EndObject();
    }
    json.EndArray();
    json.EndObject();
  }
  json.EndObject();
}

void ListHooks() {
  for (int i = 0; i < kNumHookKinds; ++i) {
    const auto kind = static_cast<HookKind>(i);
    std::printf("%-16s ctx %s (%u bytes)\n", HookKindName(kind),
                DescriptorFor(kind).name().c_str(), DescriptorFor(kind).size());
  }
}

int Run(int argc, char** argv) {
  bool as_json = false;
  bool show_cost = false;
  bool show_races = false;
  std::string hook_override;
  std::uint64_t budget_override = 0;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      as_json = true;
    } else if (arg == "--cost") {
      show_cost = true;
    } else if (arg == "--races") {
      show_races = true;
    } else if (arg == "--list-hooks") {
      ListHooks();
      return 0;
    } else if (arg == "--hook") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--hook needs an argument\n");
        return 2;
      }
      hook_override = argv[++i];
    } else if (arg == "--budget-ns") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--budget-ns needs an argument\n");
        return 2;
      }
      char* end = nullptr;
      budget_override = std::strtoull(argv[++i], &end, 10);
      if (end == nullptr || *end != '\0') {
        std::fprintf(stderr, "--budget-ns wants a decimal nanosecond count\n");
        return 2;
      }
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown flag '%s'\n", arg.c_str());
      return 2;
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty()) {
    std::fprintf(stderr,
                 "usage: %s [--json] [--cost] [--races] [--hook <name>] "
                 "[--budget-ns <N>] <file.casm>...\n"
                 "       %s --list-hooks\n"
                 "hook names: cmp_node skip_shuffle schedule_waiter "
                 "lock_acquire lock_contended lock_acquired lock_release "
                 "rw_mode\n",
                 argv[0], argv[0]);
    return 2;
  }
  if (!hook_override.empty()) {
    HookKind kind;
    if (!ParseHookKindName(hook_override, &kind)) {
      std::fprintf(stderr, "unknown hook '%s'\n", hook_override.c_str());
      return 2;
    }
  }

  JsonWriter json;
  json.BeginArray();
  int failures = 0;
  for (const std::string& file : files) {
    const FileResult result = CheckFile(file, hook_override, budget_override);
    if (!result.ok) {
      ++failures;
    }
    if (as_json) {
      EmitJson(json, result);
    } else {
      PrintHuman(result, show_cost, show_races);
    }
  }
  json.EndArray();
  if (as_json) {
    std::printf("%s\n", json.str().c_str());
  } else if (failures > 0) {
    std::printf("%d of %zu file(s) failed\n", failures, files.size());
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace concord

int main(int argc, char** argv) { return concord::Run(argc, argv); }
