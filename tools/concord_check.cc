// concord_check — static analysis gate for lock policies.
//
// Assembles each .casm file, runs the range-tracking verifier under the
// target hook's capability mask, then applies the lock-invariant lint rules
// (src/concord/policy_lint.h). Intended for CI: exits 0 only when every file
// passes all three stages.
//
// Usage:
//   concord_check [--json] [--hook <name>] <file.casm>...
//
// The hook is taken from a `; hook: <name>` comment directive in the file
// (conventionally the first line); `--hook` overrides it for every file.
// With --json the report is a machine-readable array on stdout, one element
// per file, including the verifier's analysis facts for accepted programs.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/base/json.h"
#include "src/bpf/assembler.h"
#include "src/bpf/maps.h"
#include "src/bpf/verifier.h"
#include "src/concord/hooks.h"
#include "src/concord/policy_lint.h"

namespace concord {
namespace {

const HookKind kAllHooks[] = {
    HookKind::kCmpNode,      HookKind::kSkipShuffle, HookKind::kScheduleWaiter,
    HookKind::kLockAcquire,  HookKind::kLockContended, HookKind::kLockAcquired,
    HookKind::kLockRelease,  HookKind::kRwMode,
};

bool ParseHook(const std::string& name, HookKind* out) {
  for (HookKind kind : kAllHooks) {
    if (name == HookKindName(kind)) {
      *out = kind;
      return true;
    }
  }
  return false;
}

// Scans the source for a `; hook: <name>` comment directive.
bool FindHookDirective(const std::string& source, std::string* out) {
  std::istringstream lines(source);
  std::string line;
  while (std::getline(lines, line)) {
    const std::size_t semi = line.find(';');
    if (semi == std::string::npos) {
      continue;
    }
    std::size_t pos = line.find("hook:", semi);
    if (pos == std::string::npos) {
      continue;
    }
    pos += 5;
    while (pos < line.size() && (line[pos] == ' ' || line[pos] == '\t')) {
      ++pos;
    }
    std::size_t end = pos;
    while (end < line.size() && line[end] != ' ' && line[end] != '\t' &&
           line[end] != '\r') {
      ++end;
    }
    if (end > pos) {
      *out = line.substr(pos, end - pos);
      return true;
    }
  }
  return false;
}

struct FileResult {
  std::string file;
  std::string hook;
  bool ok = false;
  std::string stage;  // failing stage: "read", "hook", "assemble", "verify", "lint"
  std::string error;  // verifier/assembler message when stage is set
  LintReport lint;
  Verifier::Analysis analysis;
  std::size_t insns = 0;
};

FileResult CheckFile(const std::string& path, const std::string& hook_override) {
  FileResult result;
  result.file = path;

  std::ifstream in(path);
  if (!in) {
    result.stage = "read";
    result.error = "cannot open file";
    return result;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string source = buffer.str();

  std::string hook_name = hook_override;
  if (hook_name.empty() && !FindHookDirective(source, &hook_name)) {
    result.stage = "hook";
    result.error = "no `; hook: <name>` directive and no --hook given";
    return result;
  }
  result.hook = hook_name;
  HookKind kind;
  if (!ParseHook(hook_name, &kind)) {
    result.stage = "hook";
    result.error = "unknown hook '" + hook_name + "'";
    return result;
  }

  // Sources with `.map` directives own the whole map table (their indices
  // start at 0); legacy sources get the scratch knob array at index 0.
  ArrayMap scratch("scratch", 8, 8);
  std::vector<BpfMap*> caller_maps;
  if (!SourceDeclaresMaps(source)) {
    caller_maps.push_back(&scratch);
  }
  std::vector<std::shared_ptr<BpfMap>> declared_maps;
  auto program = AssembleProgram(path, source, &DescriptorFor(kind),
                                 std::move(caller_maps), &declared_maps);
  if (!program.ok()) {
    result.stage = "assemble";
    result.error = program.status().ToString();
    return result;
  }
  result.insns = program->insns.size();

  Verifier::Options options;
  options.allowed_capabilities = CapabilitiesFor(kind);
  Status verdict = Verifier::Verify(*program, options, &result.analysis);
  if (!verdict.ok()) {
    result.stage = "verify";
    result.error = verdict.ToString();
    return result;
  }

  result.lint = LintPolicyProgram(kind, result.analysis);
  if (!result.lint.ok()) {
    result.stage = "lint";
    return result;
  }

  result.ok = true;
  return result;
}

void PrintHuman(const FileResult& r) {
  if (r.ok) {
    std::printf("%s: OK (hook %s, %zu insns, %zu states", r.file.c_str(),
                r.hook.c_str(), r.insns, r.analysis.states_processed);
    for (const auto& loop : r.analysis.loops) {
      std::printf(", loop@%zu<=%llu trips", loop.back_edge_pc,
                  static_cast<unsigned long long>(loop.max_trips));
    }
    std::printf(")\n");
    return;
  }
  if (r.stage == "lint") {
    std::printf("%s: LINT FAILED (hook %s)\n", r.file.c_str(), r.hook.c_str());
    for (const auto& finding : r.lint.findings) {
      std::printf("  [%s] %s\n", finding.rule.c_str(), finding.message.c_str());
    }
    return;
  }
  std::printf("%s: %s FAILED: %s\n", r.file.c_str(), r.stage.c_str(),
              r.error.c_str());
}

void EmitJson(JsonWriter& json, const FileResult& r) {
  json.BeginObject();
  json.Field("file", r.file);
  json.Field("hook", r.hook);
  json.Key("ok").Bool(r.ok);
  if (!r.ok) {
    json.Field("stage", r.stage);
    if (!r.error.empty()) {
      json.Field("error", r.error);
    }
  }
  json.Key("findings").BeginArray();
  for (const auto& finding : r.lint.findings) {
    json.BeginObject();
    json.Field("rule", finding.rule);
    json.Field("message", finding.message);
    json.EndObject();
  }
  json.EndArray();
  if (r.stage.empty() || r.stage == "lint") {
    json.Key("analysis").BeginObject();
    json.NumberField("insns", static_cast<std::uint64_t>(r.insns));
    json.NumberField("states",
                     static_cast<std::uint64_t>(r.analysis.states_processed));
    json.Key("loops").BeginArray();
    for (const auto& loop : r.analysis.loops) {
      json.BeginObject();
      json.NumberField("back_edge_pc",
                       static_cast<std::uint64_t>(loop.back_edge_pc));
      json.NumberField("header_pc", static_cast<std::uint64_t>(loop.header_pc));
      json.NumberField("max_trips", loop.max_trips);
      json.EndObject();
    }
    json.EndArray();
    json.Key("helpers").BeginArray();
    for (std::uint32_t id : r.analysis.helpers_called) {
      json.Number(static_cast<std::uint64_t>(id));
    }
    json.EndArray();
    json.Key("writes_map").Bool(r.analysis.writes_map);
    json.Key("writes_ctx").Bool(r.analysis.writes_ctx);
    if (r.analysis.has_exit) {
      json.Key("r0").BeginObject();
      json.NumberField("umin", r.analysis.r0_exit.umin);
      json.NumberField("umax", r.analysis.r0_exit.umax);
      json.EndObject();
    }
    json.EndObject();
  }
  json.EndObject();
}

int Run(int argc, char** argv) {
  bool as_json = false;
  std::string hook_override;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      as_json = true;
    } else if (arg == "--hook") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--hook needs an argument\n");
        return 2;
      }
      hook_override = argv[++i];
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown flag '%s'\n", arg.c_str());
      return 2;
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty()) {
    std::fprintf(stderr,
                 "usage: %s [--json] [--hook <name>] <file.casm>...\n"
                 "hook names: cmp_node skip_shuffle schedule_waiter "
                 "lock_acquire lock_contended lock_acquired lock_release "
                 "rw_mode\n",
                 argv[0]);
    return 2;
  }
  if (!hook_override.empty()) {
    HookKind kind;
    if (!ParseHook(hook_override, &kind)) {
      std::fprintf(stderr, "unknown hook '%s'\n", hook_override.c_str());
      return 2;
    }
  }

  JsonWriter json;
  json.BeginArray();
  int failures = 0;
  for (const std::string& file : files) {
    const FileResult result = CheckFile(file, hook_override);
    if (!result.ok) {
      ++failures;
    }
    if (as_json) {
      EmitJson(json, result);
    } else {
      PrintHuman(result);
    }
  }
  json.EndArray();
  if (as_json) {
    std::printf("%s\n", json.str().c_str());
  } else if (failures > 0) {
    std::printf("%d of %zu file(s) failed\n", failures, files.size());
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace concord

int main(int argc, char** argv) { return concord::Run(argc, argv); }
