// concord_agent: the host-level multi-process autotune agent daemon
// (docs/OPERATIONS.md §multi-process deployment).
//
// Runs a FleetAgent (src/concord/agent/fleet.h) behind a control-plane RPC
// socket. Workers register over that socket (agent.register), the agent
// samples their shared-memory profiler segments, merges the fleet-wide
// windows, and pushes winning policies back through each worker's own
// certifier-gated policy.attach verb. `agent.status` against the same socket
// (e.g. `concordctl --socket ... agent.status`) renders the live fleet view.
//
//   concord_agent --socket PATH [--window-ms N] [--policy-dir DIR] [--ms N]
//
//   --socket PATH      unix socket to serve (required)
//   --window-ms N      tick period / merged sampling window (default 100)
//   --policy-dir DIR   seed fleet candidates from every .casm in DIR
//   --ms N             run for N ms then exit (default: until SIGINT/SIGTERM)
//
// Prints the final agent status JSON on stdout at shutdown.

#include <signal.h>
#include <time.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/base/time.h"
#include "src/concord/agent/fleet.h"
#include "src/concord/rpc/server.h"

namespace concord {
namespace {

std::atomic<bool> g_stop{false};

void HandleSignal(int) { g_stop.store(true, std::memory_order_relaxed); }

struct Options {
  std::string socket;
  std::string policy_dir;
  int window_ms = 100;
  int ms = 0;  // 0 = run until signalled
};

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --socket PATH [--window-ms N] [--policy-dir DIR] "
               "[--ms N]\n",
               argv0);
  return 2;
}

bool ParseOptions(int argc, char** argv, Options& opts) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--socket" && has_value) {
      opts.socket = argv[++i];
    } else if (arg == "--policy-dir" && has_value) {
      opts.policy_dir = argv[++i];
    } else if (arg == "--window-ms" && has_value) {
      opts.window_ms = std::atoi(argv[++i]);
    } else if (arg == "--ms" && has_value) {
      opts.ms = std::atoi(argv[++i]);
    } else {
      std::fprintf(stderr, "unknown or incomplete flag: %s\n", arg.c_str());
      return false;
    }
  }
  if (opts.socket.empty() || opts.window_ms < 1 || opts.ms < 0) {
    return false;
  }
  return true;
}

int Run(const Options& opts) {
  FleetAgent& agent = FleetAgent::Global();

  FleetAgentConfig config;
  config.window_ns = static_cast<std::uint64_t>(opts.window_ms) * 1'000'000ull;
  config.policy_dir = opts.policy_dir;
  const Status configured = agent.Configure(config);
  if (!configured.ok()) {
    std::fprintf(stderr, "concord_agent: configure: %s\n",
                 configured.ToString().c_str());
    return 1;
  }
  if (!opts.policy_dir.empty() && agent.CandidateNames().empty()) {
    std::fprintf(stderr,
                 "concord_agent: warning: no admissible .casm candidates "
                 "under %s — the fleet can only run plain\n",
                 opts.policy_dir.c_str());
  }

  RpcServerOptions server_options;
  server_options.socket_path = opts.socket;
  RpcServer server(server_options);
  const Status served = server.Start();
  if (!served.ok()) {
    std::fprintf(stderr, "concord_agent: cannot serve on %s: %s\n",
                 opts.socket.c_str(), served.ToString().c_str());
    return 1;
  }

  const Status started = agent.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "concord_agent: start: %s\n",
                 started.ToString().c_str());
    server.Stop();
    return 1;
  }

  signal(SIGINT, HandleSignal);
  signal(SIGTERM, HandleSignal);
  std::fprintf(stderr, "concord_agent: serving on %s (window %dms)\n",
               opts.socket.c_str(), opts.window_ms);

  const std::uint64_t deadline_ns =
      opts.ms > 0
          ? MonotonicNowNs() + static_cast<std::uint64_t>(opts.ms) * 1'000'000ull
          : 0;
  while (!g_stop.load(std::memory_order_relaxed)) {
    if (deadline_ns != 0 && MonotonicNowNs() >= deadline_ns) {
      break;
    }
    timespec ts{0, 20'000'000};  // 20ms
    nanosleep(&ts, nullptr);
  }

  agent.Stop();
  server.Stop();
  std::printf("%s\n", agent.StatusJson().c_str());
  return 0;
}

}  // namespace
}  // namespace concord

int main(int argc, char** argv) {
  concord::Options opts;
  if (!concord::ParseOptions(argc, argv, opts)) {
    return concord::Usage(argv[0]);
  }
  return concord::Run(opts);
}
