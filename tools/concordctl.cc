// concordctl — operator CLI for the Concord control-plane RPC socket
// (docs/OPERATIONS.md).
//
//   concordctl --socket PATH [--timeout-ms N] [--attempts N]
//              [--backoff-ms N] <method> [key=value ...]
//
// Examples:
//   concordctl --socket /tmp/concord.sock status
//   concordctl --socket /tmp/concord.sock autotune.enable selector=class:demo
//   concordctl --socket /tmp/concord.sock policy.attach selector=hot
//       file=examples/policies/numa_cmp_node.casm
//   concordctl --socket /tmp/concord.sock faults.arm directive=rpc.read=1in3
//
// key=value pairs become string params (split at the first '=', so values
// may themselves contain '='). Read-only verbs are retried with bounded
// exponential backoff + jitter on transport failures and `busy` sheds;
// mutating verbs get exactly one attempt — a lost response may mean the
// mutation was applied, and resending is not safe.
//
// Exit codes: 0 success; 1 RPC or transport error; 2 usage.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/base/json.h"
#include "src/concord/rpc/client.h"
#include "src/concord/rpc/dispatch.h"

namespace concord {
namespace {

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --socket PATH [--timeout-ms N] [--attempts N]\n"
      "       [--backoff-ms N] <method> [key=value ...]\n\nverbs:\n",
      argv0);
  RpcDispatcher dispatcher;
  for (const std::string& method : dispatcher.Methods()) {
    std::fprintf(stderr, "  %-20s %s\n", method.c_str(),
                 dispatcher.IsReadOnly(method) ? "(read-only, retried)"
                                               : "(mutating, no retry)");
  }
  return 2;
}

bool ParseU64(const char* text, std::uint64_t* out) {
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0') {
    return false;
  }
  *out = value;
  return true;
}

int Run(int argc, char** argv) {
  RpcClientOptions options;
  std::string method;
  std::vector<std::pair<std::string, std::string>> params;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    std::uint64_t value = 0;
    if (arg == "--socket" && has_value) {
      options.socket_path = argv[++i];
    } else if (arg == "--timeout-ms" && has_value && ParseU64(argv[++i], &value)) {
      options.timeout_ms = value;
    } else if (arg == "--attempts" && has_value && ParseU64(argv[++i], &value)) {
      options.max_attempts = static_cast<std::uint32_t>(value);
    } else if (arg == "--backoff-ms" && has_value && ParseU64(argv[++i], &value)) {
      options.backoff_initial_ms = value;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "concordctl: bad or incomplete flag '%s'\n",
                   arg.c_str());
      return Usage(argv[0]);
    } else if (method.empty()) {
      method = arg;
    } else {
      const std::size_t eq = arg.find('=');
      if (eq == std::string::npos || eq == 0) {
        std::fprintf(stderr, "concordctl: param '%s' is not key=value\n",
                     arg.c_str());
        return Usage(argv[0]);
      }
      params.emplace_back(arg.substr(0, eq), arg.substr(eq + 1));
    }
  }
  if (method.empty() || options.socket_path.empty()) {
    return Usage(argv[0]);
  }

  std::string params_json;
  if (!params.empty()) {
    JsonWriter writer;
    writer.BeginObject();
    for (const auto& [key, value] : params) {
      writer.Field(key, value);
    }
    writer.EndObject();
    params_json = writer.TakeString();
  }

  // The verb table is the single source of truth for retry safety. Verbs
  // this build doesn't know (an older ctl against a newer server) are
  // conservatively treated as mutating.
  RpcDispatcher dispatcher;
  const bool idempotent = dispatcher.IsReadOnly(method);

  RpcClient client(options);
  auto response = client.Call(method, params_json, idempotent);
  if (!response.ok()) {
    std::fprintf(stderr, "concordctl: %s\n",
                 response.status().ToString().c_str());
    return 1;
  }
  if (!response->ok) {
    std::fprintf(stderr, "concordctl: %s: %s\n", response->error_code.c_str(),
                 response->error_message.c_str());
    return 1;
  }
  std::printf("%s\n", response->result.c_str());
  return 0;
}

}  // namespace
}  // namespace concord

int main(int argc, char** argv) { return concord::Run(argc, argv); }
