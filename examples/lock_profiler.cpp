// Dynamic lock profiling at selectable granularity (§3.2).
//
// Three "kernel" locks exist: two in the vm class, one in the vfs class.
// Unlike lockstat — all locks or nothing — Concord profiles exactly what you
// select: first one instance, then a class, with per-lock wait/hold
// histograms.
//
//   build/examples/lock_profiler

#include <cstdio>
#include <thread>
#include <vector>

#include "src/base/time.h"
#include "src/concord/concord.h"
#include "src/sync/shfllock.h"

using namespace concord;

namespace {

ShflLock g_page_lock;    // vm
ShflLock g_vma_lock;     // vm
ShflLock g_rename_lock;  // vfs

void HammerLock(ShflLock& lock, int iterations, std::uint64_t hold_ns) {
  for (int i = 0; i < iterations; ++i) {
    ShflGuard guard(lock);
    BurnNs(hold_ns);
  }
}

void RunWorkload() {
  std::vector<std::thread> threads;
  threads.emplace_back(HammerLock, std::ref(g_page_lock), 2000, 5'000);
  threads.emplace_back(HammerLock, std::ref(g_page_lock), 2000, 5'000);
  threads.emplace_back(HammerLock, std::ref(g_vma_lock), 3000, 1'000);
  threads.emplace_back(HammerLock, std::ref(g_rename_lock), 500, 20'000);
  for (auto& thread : threads) {
    thread.join();
  }
}

}  // namespace

int main() {
  Concord& concord = Concord::Global();
  const std::uint64_t page_id =
      concord.RegisterShflLock(g_page_lock, "page_lock", "vm");
  concord.RegisterShflLock(g_vma_lock, "vma_lock", "vm");
  concord.RegisterShflLock(g_rename_lock, "rename_lock", "vfs");

  // Pass 1: profile a single instance.
  CONCORD_CHECK(concord.EnableProfiling(page_id).ok());
  RunWorkload();
  std::printf("--- profiling one instance (page_lock) ---\n%s\n",
              concord.ProfileReport("*").c_str());

  // Pass 2: widen to the whole vm class; vfs stays unprofiled (and carries
  // zero overhead — no hook table is installed on it at all).
  CONCORD_CHECK(concord.EnableProfilingBySelector("class:vm").ok());
  RunWorkload();
  std::printf("--- profiling class:vm ---\n%s\n",
              concord.ProfileReport("class:vm").c_str());
  std::printf("rename_lock hook table installed: %s\n",
              g_rename_lock.CurrentHooks() != nullptr ? "yes" : "no (zero cost)");

  // Detailed histograms for the hot lock.
  const ShardedLockProfileStats* stats = concord.Stats(page_id);
  std::printf("\npage_lock hold-time histogram (ns buckets):\n%s",
              stats->HoldNs().ToString().c_str());
  if (stats->WaitNs().TotalCount() > 0) {
    std::printf("\npage_lock wait-time histogram (ns buckets):\n%s",
                stats->WaitNs().ToString().c_str());
  }

  for (std::uint64_t id : concord.Select("*")) {
    CONCORD_CHECK(concord.Unregister(id).ok());
  }
  return 0;
}
