// Unifying locking designs by switching regimes on the fly (§3.1.1(iii)).
//
// The Btrfs pattern the paper describes: a non-blocking lock plus hand-rolled
// wait-event code for the cases that should sleep. C3's answer is to make
// blocking-ness itself a policy: the same ShflLock runs as an rwlock-style
// spinner during short-CS phases and as an rwsem-style sleeper during long-CS
// phases, switched live by attaching a policy (set_blocking + a tunable
// adaptive-parking program).
//
//   build/examples/blocking_switch

#include <atomic>
#include <cstdio>
#include <thread>
#include <time.h>
#include <vector>

#include "src/base/time.h"
#include "src/concord/concord.h"
#include "src/concord/policies.h"
#include "src/sync/shfllock.h"

using namespace concord;

namespace {

ShflLock g_lock;
std::atomic<std::uint64_t> g_ops{0};
std::atomic<std::uint64_t> g_cs_ns{500};  // live-tunable critical section

void SleepMs(long ms) {
  timespec ts{ms / 1000, (ms % 1000) * 1'000'000};
  nanosleep(&ts, nullptr);
}

struct PhaseStats {
  double ops_per_ms;
  std::uint64_t parks;
};

PhaseStats RunPhase(std::uint64_t ms) {
  const std::uint64_t ops_before = g_ops.load();
  const std::uint64_t parks_before = g_lock.parks();
  SleepMs(static_cast<long>(ms));
  return {static_cast<double>(g_ops.load() - ops_before) / static_cast<double>(ms),
          g_lock.parks() - parks_before};
}

}  // namespace

int main() {
  Concord& concord = Concord::Global();
  const std::uint64_t id = concord.RegisterShflLock(g_lock, "extent_lock", "fs");

  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  for (int t = 0; t < 3; ++t) {
    workers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        ShflGuard guard(g_lock);
        BurnNs(g_cs_ns.load(std::memory_order_relaxed));
        g_ops.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  std::printf("%-42s %12s %10s\n", "phase", "ops/msec", "parks");

  // Phase 1: short critical sections, spin regime (stock behaviour).
  {
    const PhaseStats stats = RunPhase(300);
    std::printf("%-42s %12.1f %10llu\n", "short CS, spin regime (rwlock-like)",
                stats.ops_per_ms, static_cast<unsigned long long>(stats.parks));
  }

  // Phase 2: the workload shifts to long critical sections. Spinning now
  // burns cycles other threads need; attach a policy that turns the same
  // lock into a sleeper with an aggressive park threshold.
  g_cs_ns.store(200'000);  // 200us holds
  {
    auto parking = MakeAdaptiveParkingPolicy();
    CONCORD_CHECK(parking.ok());
    CONCORD_CHECK(parking->SetKnob(0, 64).ok());  // park after 64 spins
    parking->spec.set_blocking = true;            // rwsem regime
    CONCORD_CHECK(concord.Attach(id, std::move(parking->spec)).ok());
    const PhaseStats stats = RunPhase(300);
    std::printf("%-42s %12.1f %10llu\n",
                "long CS, blocking regime (rwsem-like)", stats.ops_per_ms,
                static_cast<unsigned long long>(stats.parks));
  }

  // Phase 3: back to short sections; detach and revert to spinning — the
  // ad-hoc wait-event code Btrfs would carry simply does not exist here.
  g_cs_ns.store(500);
  {
    CONCORD_CHECK(concord.Detach(id).ok());
    g_lock.SetBlocking(false);
    const PhaseStats stats = RunPhase(300);
    std::printf("%-42s %12.1f %10llu\n", "short CS again, spin regime",
                stats.ops_per_ms, static_cast<unsigned long long>(stats.parks));
  }

  stop.store(true);
  for (auto& worker : workers) {
    worker.join();
  }
  CONCORD_CHECK(concord.Unregister(id).ok());
  std::printf("\none lock, three regimes, zero recompiles.\n");
  return 0;
}
