// Live lock switching (§3.1.1): a readers-writer lock changes flavour while
// a workload is running, driven entirely by a userspace map write — the
// moral equivalent of retuning a kernel lock without rebooting, recompiling
// or even pausing the application.
//
//   build/examples/live_switching

#include <atomic>
#include <cstdio>
#include <thread>
#include <time.h>
#include <vector>

#include "src/concord/concord.h"
#include "src/concord/policies.h"
#include "src/sync/bravo.h"

using namespace concord;

namespace {

BravoLock<NeutralRwLock> g_lock;
std::uint64_t g_shared_value = 0;

void SleepMs(long ms) {
  timespec ts{ms / 1000, (ms % 1000) * 1'000'000};
  nanosleep(&ts, nullptr);
}

}  // namespace

int main() {
  Concord& concord = Concord::Global();
  const std::uint64_t id = concord.RegisterRwLock(g_lock, "table_lock", "db");

  // The rw_switch policy reads the desired mode from its map on every
  // acquisition — so changing the map changes the lock.
  auto policy = MakeRwSwitchPolicy(RwMode::kNeutral);
  CONCORD_CHECK(policy.ok());
  auto knob = policy->knobs;
  CONCORD_CHECK(concord.Attach(id, std::move(policy->spec)).ok());

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> reads{0};
  std::atomic<std::uint64_t> writes{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < 3; ++t) {
    workers.emplace_back([&, t] {
      int i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        if (t == 0 && ++i % 200 == 0) {
          g_lock.WriteLock();
          g_shared_value += 1;
          g_lock.WriteUnlock();
          writes.fetch_add(1, std::memory_order_relaxed);
        } else {
          g_lock.ReadLock();
          volatile std::uint64_t sink = g_shared_value;
          (void)sink;
          g_lock.ReadUnlock();
          reads.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  struct Phase {
    const char* description;
    RwMode mode;
  };
  const Phase phases[] = {
      {"neutral rw lock (balanced mix)", RwMode::kNeutral},
      {"reader-biased BRAVO (read-mostly phase)", RwMode::kReaderBias},
      {"writer-only (bulk-load phase)", RwMode::kWriterOnly},
      {"back to reader bias", RwMode::kReaderBias},
  };
  std::printf("%-44s %12s %12s %12s\n", "phase", "reads/ms", "fast-path",
              "revocations");
  for (const Phase& phase : phases) {
    CONCORD_CHECK(knob->UpdateTyped(std::uint32_t{0},
                                    static_cast<std::uint64_t>(phase.mode))
                      .ok());
    const std::uint64_t reads_before = reads.load();
    const std::uint64_t fast_before = g_lock.fast_reads();
    const std::uint64_t revoke_before = g_lock.revocations();
    SleepMs(250);
    std::printf("%-44s %12.1f %12llu %12llu\n", phase.description,
                static_cast<double>(reads.load() - reads_before) / 250.0,
                static_cast<unsigned long long>(g_lock.fast_reads() - fast_before),
                static_cast<unsigned long long>(g_lock.revocations() -
                                                revoke_before));
  }

  stop.store(true);
  for (auto& worker : workers) {
    worker.join();
  }
  std::printf("\nfinal value: %llu (reads=%llu writes=%llu)\n",
              static_cast<unsigned long long>(g_shared_value),
              static_cast<unsigned long long>(reads.load()),
              static_cast<unsigned long long>(writes.load()));
  CONCORD_CHECK(concord.Unregister(id).ok());
  return 0;
}
