// Quickstart: register a kernel-style lock with Concord, attach a NUMA
// shuffling policy written in BPF, run a contended workload, and read the
// per-lock profile — the full C3 loop in ~100 lines.
//
//   build/examples/quickstart

#include <cstdio>
#include <thread>
#include <vector>

#include "src/concord/concord.h"
#include "src/concord/policies.h"
#include "src/sync/shfllock.h"

using namespace concord;

namespace {

ShflLock g_lock;  // the "kernel lock" a subsystem would own
std::uint64_t g_protected_counter = 0;

void Worker(int iterations) {
  for (int i = 0; i < iterations; ++i) {
    ShflGuard guard(g_lock);
    g_protected_counter += 1;
  }
}

}  // namespace

int main() {
  Concord& concord = Concord::Global();

  // 1. The subsystem registers its lock (a kernel would do this at boot).
  const std::uint64_t lock_id =
      concord.RegisterShflLock(g_lock, "demo_lock", "demo");
  std::printf("registered '%s' as lock id %llu\n",
              concord.NameOf(lock_id).c_str(),
              static_cast<unsigned long long>(lock_id));

  // 2. Userspace picks a policy — here the stock NUMA-grouping policy, a
  //    7-instruction BPF program — and attaches it. Attach verifies the
  //    program against the cmp_node context descriptor and capability mask
  //    before the lock ever sees it.
  auto policy = MakeNumaGroupingPolicy();
  CONCORD_CHECK(policy.ok());
  Status status = concord.Attach(lock_id, std::move(policy->spec));
  std::printf("attach NUMA policy: %s\n", status.ToString().c_str());

  // 3. Profile just this lock (not every lock in the system).
  CONCORD_CHECK(concord.EnableProfiling(lock_id).ok());

  // 4. Run a contended workload.
  constexpr int kThreads = 4;
  constexpr int kIters = 50'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back(Worker, kIters);
  }
  for (auto& thread : threads) {
    thread.join();
  }
  std::printf("counter = %llu (expected %llu)\n",
              static_cast<unsigned long long>(g_protected_counter),
              static_cast<unsigned long long>(kThreads) * kIters);
  std::printf("shuffle rounds: %llu, waiters regrouped: %llu\n",
              static_cast<unsigned long long>(g_lock.shuffle_rounds()),
              static_cast<unsigned long long>(g_lock.shuffle_moves()));

  // 5. Read the profile, then revert the lock to stock behaviour.
  std::printf("\nprofile:\n%s", concord.ProfileReport("demo_lock").c_str());
  CONCORD_CHECK(concord.Unregister(lock_id).ok());
  std::printf("lock unpatched and unregistered; back to stock FIFO.\n");
  return 0;
}
