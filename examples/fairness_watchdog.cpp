// Safety in depth (§4.2/§6): the verifier proves a policy is memory-safe and
// terminating, but a *verified* policy can still be unfair. This example
// attaches a deliberately unfair policy — "boost everyone from socket 0" on
// a machine where one victim thread sits on socket 7 — and lets the fairness
// watchdog catch the starvation and revert the lock to stock FIFO, live.
//
//   build/examples/fairness_watchdog

#include <atomic>
#include <cstdio>
#include <thread>
#include <time.h>
#include <vector>

#include "src/base/time.h"
#include "src/bpf/assembler.h"
#include "src/concord/concord.h"
#include "src/concord/safety.h"
#include "src/sync/shfllock.h"
#include "src/topology/thread_context.h"

using namespace concord;

namespace {

ShflLock g_lock;

void SleepMs(long ms) {
  timespec ts{ms / 1000, (ms % 1000) * 1'000'000};
  nanosleep(&ts, nullptr);
}

}  // namespace

int main() {
  Concord& concord = Concord::Global();
  const std::uint64_t id = concord.RegisterShflLock(g_lock, "victim_lock", "demo");

  // The unfair policy: boost any waiter from socket 0, starving others.
  const char* kSocketZeroFirst = R"(
      ldxw r2, [r1+56]   ; curr.socket
      jeq  r2, 0, yes
      mov  r0, 0
      exit
    yes:
      mov  r0, 1
      exit
  )";
  auto program = AssembleProgram("socket_zero_first", kSocketZeroFirst,
                                 &DescriptorFor(HookKind::kCmpNode));
  CONCORD_CHECK(program.ok());
  PolicySpec spec;
  spec.name = "unfair_socket_preference";
  CONCORD_CHECK(spec.AddProgram(HookKind::kCmpNode, std::move(*program)).ok());
  CONCORD_CHECK(concord.Attach(id, std::move(spec)).ok());
  std::printf("attached '%s' (verified: memory-safe, terminating, UNFAIR)\n",
              "unfair_socket_preference");

  // Arm the watchdog: anything that waits > 50ms is starvation.
  WatchdogConfig config;
  config.max_wait_ns = 50'000'000;
  config.auto_detach = true;
  config.poll_interval_ms = 5;
  FairnessWatchdog watchdog(config);
  CONCORD_CHECK(watchdog.Watch(id).ok());
  watchdog.Start();

  // Manufacture a starved waiter deterministically: hold the lock for 80ms
  // while a socket-7 victim waits.
  std::atomic<bool> victim_served{false};
  g_lock.Lock();
  std::thread victim([&] {
    ThreadRegistry::Global().RegisterCurrent(70);  // socket 7
    g_lock.Lock();
    victim_served.store(true);
    g_lock.Unlock();
  });
  const ShardedLockProfileStats* stats = concord.Stats(id);
  while (stats->Contentions() == 0) {
    SleepMs(1);
  }
  SleepMs(80);  // the victim is starving...
  g_lock.Unlock();
  victim.join();
  std::printf("victim served after an 80ms wait\n");

  // The watchdog saw it.
  const std::uint64_t deadline = MonotonicNowNs() + 5'000'000'000ull;
  while (watchdog.violations().empty() && MonotonicNowNs() < deadline) {
    SleepMs(5);
  }
  watchdog.Stop();

  for (const auto& violation : watchdog.violations()) {
    std::printf("VIOLATION on '%s': waiter stuck %.1f ms (limit 50.0) -> %s\n",
                concord.NameOf(violation.lock_id).c_str(),
                static_cast<double>(violation.observed_ns) / 1e6,
                violation.detached ? "policy detached" : "reported only");
  }
  std::printf("lock hooks now: %s\n",
              g_lock.CurrentHooks() == nullptr
                  ? "none — reverted to stock FIFO"
                  : "still attached (profiling only)");

  CONCORD_CHECK(concord.Unregister(id).ok());
  return 0;
}
