// Writing a custom lock policy from scratch.
//
// The policy below implements "deadline-ish boosting": any waiter that has
// already waited more than a threshold (stored in a map, tunable live from
// userspace) gets pulled into the shuffler's group. The example also shows
// the verifier doing its job: a buggy variant that dereferences the map
// value without a null check is rejected at attach time.
//
//   build/examples/custom_policy

#include <cstdio>
#include <thread>
#include <vector>

#include "src/bpf/assembler.h"
#include "src/concord/concord.h"
#include "src/concord/hooks.h"
#include "src/sync/shfllock.h"

using namespace concord;

int main() {
  Concord& concord = Concord::Global();
  static ShflLock lock;
  const std::uint64_t lock_id = concord.RegisterShflLock(lock, "svc_lock", "svc");

  // Tuning map: slot 0 holds the wait threshold in nanoseconds.
  auto threshold = std::make_shared<ArrayMap>("wait_threshold", 8, 1);
  CONCORD_CHECK(threshold->UpdateTyped(std::uint32_t{0},
                                       std::uint64_t{2'000'000}).ok());

  // The policy, in Concord's BPF assembly. Context layout for cmp_node:
  // shuffler view at +0, candidate ("curr") view at +40; wait_ns is the
  // first field of each view.
  const char* kBoostLongWaiters = R"(
      mov   r6, r1            ; save ctx across the helper call
      stw   [r10-4], 0        ; key = 0
      mov   r1, 0             ; map index 0 (the threshold map)
      mov   r2, r10
      add   r2, -4
      call  map_lookup_elem
      jeq   r0, 0, no         ; defensive: map slot missing
      ldxdw r3, [r0+0]        ; r3 = threshold_ns
      ldxdw r4, [r6+40]       ; r4 = curr.wait_ns
      jgt   r4, r3, yes       ; waited past the deadline => boost
    no:
      mov   r0, 0
      exit
    yes:
      mov   r0, 1
      exit
  )";

  auto program = AssembleProgram("boost_long_waiters", kBoostLongWaiters,
                                 &DescriptorFor(HookKind::kCmpNode),
                                 {threshold.get()});
  CONCORD_CHECK(program.ok());
  std::printf("assembled %zu instructions\n", program->insns.size());

  PolicySpec spec;
  spec.name = "deadline_boost";
  spec.maps.push_back(threshold);
  CONCORD_CHECK(spec.AddProgram(HookKind::kCmpNode, std::move(*program)).ok());
  Status status = concord.Attach(lock_id, std::move(spec));
  std::printf("attach: %s\n", status.ToString().c_str());

  // Retune the live policy from userspace: tighten the deadline to 100us.
  CONCORD_CHECK(threshold->UpdateTyped(std::uint32_t{0},
                                       std::uint64_t{100'000}).ok());
  std::printf("threshold retuned to 100us without re-attaching\n");

  // Exercise the lock under the policy.
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < 20'000; ++i) {
        ShflGuard guard(lock);
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  std::printf("workload done; shuffle rounds = %llu\n",
              static_cast<unsigned long long>(lock.shuffle_rounds()));

  // --- the buggy variant: no null check on the map lookup -------------------
  const char* kBuggy = R"(
      stw   [r10-4], 0
      mov   r1, 0
      mov   r2, r10
      add   r2, -4
      call  map_lookup_elem
      ldxdw r0, [r0+0]        ; BUG: r0 may be NULL here
      exit
  )";
  auto buggy = AssembleProgram("buggy", kBuggy,
                               &DescriptorFor(HookKind::kCmpNode),
                               {threshold.get()});
  CONCORD_CHECK(buggy.ok());
  PolicySpec bad_spec;
  bad_spec.name = "buggy_policy";
  bad_spec.maps.push_back(threshold);
  CONCORD_CHECK(bad_spec.AddProgram(HookKind::kCmpNode, std::move(*buggy)).ok());
  Status rejected = concord.Attach(lock_id, std::move(bad_spec));
  std::printf("\nbuggy policy attach (expected to fail):\n  %s\n",
              rejected.ToString().c_str());
  CONCORD_CHECK(!rejected.ok());
  // Verification runs before anything touches the lock, so the previously
  // attached (verified) policy is still in place:
  std::printf("lock hooks after failed attach: %s\n",
              lock.CurrentHooks() != nullptr ? "previous policy still active"
                                             : "none");
  CONCORD_CHECK(lock.CurrentHooks() != nullptr);

  CONCORD_CHECK(concord.Unregister(lock_id).ok());
  return 0;
}
