// Figure 2(a): page_fault2 — ops/msec vs thread count for
// Stock / BRAVO / Concord-BRAVO.
//
// Part 1 regenerates the paper's 1-80-thread curves on the simulated
// 8-socket machine (see src/sim). Part 2 measures the same three
// configurations with real threads on the host's mini-VM subsystem
// (src/kernelsim/address_space.h) — absolute numbers are host-dependent,
// but the Concord-vs-precompiled *ratio* (the paper's claim: negligible
// overhead) is host-independent.

#include <cstdio>
#include <thread>
#include <vector>

#include "bench/common.h"
#include "src/concord/concord.h"
#include "src/concord/policies.h"
#include "src/kernelsim/address_space.h"
#include "src/sim/workloads.h"
#include "src/sync/bravo.h"

namespace concord {
namespace {

void RunSimPart() {
  auto rw_switch = MakeRwSwitchPolicy(RwMode::kReaderBias);
  CONCORD_CHECK(rw_switch.ok());
  CONCORD_CHECK(rw_switch->spec.VerifyAll().ok());
  const Program* mode_program =
      &rw_switch->spec.ChainFor(HookKind::kRwMode).programs.front();

  bench::PrintHeader("Fig 2(a) page_fault2 [simulated 8x10 machine, ops/msec]",
                     {"Stock", "BRAVO", "Concord-BRAVO"});
  for (std::uint32_t threads : bench::PaperThreadSweep()) {
    PageFaultParams params;
    params.threads = threads;
    params.duration_ns = 3'000'000;
    params.mode_program = mode_program;
    const double stock =
        SimPageFault(PageFaultFlavor::kStockNeutral, params).ops_per_msec;
    const double bravo = SimPageFault(PageFaultFlavor::kBravo, params).ops_per_msec;
    const double concord =
        SimPageFault(PageFaultFlavor::kConcordBravo, params).ops_per_msec;
    bench::PrintRow(threads, {stock, bravo, concord});
  }
}

// One page_fault2 iteration against the host address space.
template <typename AS>
void PageFaultIteration(AS& aspace, std::uint64_t pages) {
  const std::uint64_t addr = aspace.Mmap(pages * kPageSize);
  for (std::uint64_t p = 0; p < pages; ++p) {
    CONCORD_CHECK(aspace.HandlePageFault(addr + p * kPageSize).ok());
  }
  CONCORD_CHECK(aspace.Munmap(addr).ok());
}

template <typename AS>
double RunRealWorkload(AS& aspace, std::uint32_t threads, std::uint64_t ms) {
  std::atomic<std::uint64_t> ops{0};
  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  for (std::uint32_t t = 0; t < threads; ++t) {
    workers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        PageFaultIteration(aspace, 32);
        ops.fetch_add(32, std::memory_order_relaxed);
      }
    });
  }
  bench::SleepMs(ms);
  stop.store(true);
  for (auto& worker : workers) {
    worker.join();
  }
  return static_cast<double>(ops.load()) / static_cast<double>(ms);
}

void RunRealPart() {
  constexpr std::uint64_t kMs = 400;
  bench::PrintHeader("Fig 2(a) page_fault2 [real threads on host, faults/msec]",
                     {"Stock", "BRAVO", "Concord-BRAVO"});
  for (std::uint32_t threads : {1u, 2u, 4u}) {
    AddressSpace<NeutralRwLock> stock_as;
    const double stock = RunRealWorkload(stock_as, threads, kMs);

    AddressSpace<BravoLock<NeutralRwLock>> bravo_as;
    bravo_as.mmap_sem().SetDefaultMode(RwMode::kReaderBias);
    const double bravo = RunRealWorkload(bravo_as, threads, kMs);

    AddressSpace<BravoLock<NeutralRwLock>> concord_as;
    Concord& concord = Concord::Global();
    const std::uint64_t id =
        concord.RegisterRwLock(concord_as.mmap_sem(), "mmap_sem", "vm");
    auto policy = MakeRwSwitchPolicy(RwMode::kReaderBias);
    CONCORD_CHECK(policy.ok());
    CONCORD_CHECK(concord.Attach(id, std::move(policy->spec)).ok());
    const double concord_bravo = RunRealWorkload(concord_as, threads, kMs);
    CONCORD_CHECK(concord.Unregister(id).ok());

    bench::PrintRow(threads, {stock, bravo, concord_bravo});
  }
  std::printf("(ratio Concord-BRAVO / BRAVO is the paper's overhead claim)\n");
}

}  // namespace
}  // namespace concord

int main() {
  concord::bench::ReportInit("fig2a_pagefault");
  concord::RunSimPart();
  concord::RunRealPart();
  concord::bench::ReportWrite();
  return 0;
}
