// A3: lock inheritance (§3.1.1) — a waiter that already holds another lock
// (a rename-style nested acquirer) should be granted earlier so it stops
// blocking its own lock's queue.
//
// Deterministic grant-order probe: eight waiters arrive in a known order;
// waiter "renamer" (holding a second lock) arrives 6th. FIFO grants it 6th;
// the inheritance policy must pull it to the front group.

#include <cstdio>

#include "bench/common.h"
#include "src/concord/concord.h"
#include "src/concord/policies.h"

namespace concord {
namespace {

std::vector<bench::WaiterSpec> MakeSpecs() {
  std::vector<bench::WaiterSpec> specs;
  for (int i = 0; i < 5; ++i) {
    specs.push_back({.group = "plain", .vcpu = static_cast<std::uint32_t>(i)});
  }
  specs.push_back({.group = "renamer", .vcpu = 5, .holds_other_lock = true});
  specs.push_back({.group = "plain", .vcpu = 6});
  specs.push_back({.group = "plain", .vcpu = 7});  // tail padding
  return specs;
}

void Run() {
  Concord& concord = Concord::Global();
  static ShflLock lock;  // static: outlives registry teardown
  const std::uint64_t id = concord.RegisterShflLock(lock, "a3_lock", "bench");
  CONCORD_CHECK(concord.EnableProfiling(id).ok());
  auto contended = [&concord, id] {
    return concord.Stats(id)->Contentions();
  };

  constexpr int kRounds = 3;
  auto fifo = bench::MeasureGrantOrder(lock, MakeSpecs(), kRounds, contended);

  auto policy = MakeLockInheritancePolicy();
  CONCORD_CHECK(policy.ok());
  CONCORD_CHECK(concord.Attach(id, std::move(policy->spec)).ok());
  auto boosted = bench::MeasureGrantOrder(lock, MakeSpecs(), kRounds, contended);
  CONCORD_CHECK(concord.Unregister(id).ok());

  std::printf("\n=== A3: lock inheritance [grant position of the nested "
              "acquirer, 8 waiters] ===\n");
  std::printf("%24s %12.1f\n", "FIFO (no policy)", fifo.mean_position["renamer"]);
  std::printf("%24s %12.1f\n", "inheritance policy",
              boosted.mean_position["renamer"]);
  std::printf("(lower is earlier; arrival position was 6)\n");
  bench::ReportMetric("renamer_grant_position", "position",
                      fifo.mean_position["renamer"], {{"policy", "fifo"}});
  bench::ReportMetric("renamer_grant_position", "position",
                      boosted.mean_position["renamer"],
                      {{"policy", "inheritance"}});
}

}  // namespace
}  // namespace concord

int main() {
  concord::bench::ReportInit("a3_lock_inheritance");
  concord::bench::ReportConfig("waiters", 8.0);
  concord::bench::ReportConfig("arrival_position", 6.0);
  concord::Run();
  concord::bench::ReportWrite();
  return 0;
}
