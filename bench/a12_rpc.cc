// A12: hot-path isolation of the control-plane RPC server
// (docs/OPERATIONS.md).
//
// The robustness claim under test: the RPC server is pure control plane — it
// runs on its own threads, takes only the facade mutexes AutotuneStatusJson
// takes, and never touches a lock's queue or waiter state — so no amount of
// socket activity may shift lock acquisition latency. Three phases over the
// same contended ShflLock workload, measuring exact (not log2-bucketed)
// per-acquisition wait percentiles:
//
//   server_off     baseline, no server bound
//   server_idle    server bound on its socket, zero clients
//   server_loaded  a 100 Hz status-polling client plus one misbehaving
//                  client (garbage frames, partial frames, hang-then-drop)
//                  hammering the socket for the whole window
//
// Acceptance: p99(server_loaded) within 2% of p99(server_off). The exit code
// gates at 10% so one noisy CI host does not flap the job; the 2% verdict is
// printed and exported in BENCH_a12_rpc.json either way.

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.h"
#include "src/base/time.h"
#include "src/concord/concord.h"
#include "src/concord/rpc/client.h"
#include "src/concord/rpc/server.h"
#include "src/sync/shfllock.h"

namespace concord {
namespace {

constexpr int kThreads = 4;
constexpr std::uint64_t kHoldBurnNs = 1'500;
constexpr std::uint64_t kOutsideBurnNs = 500;
constexpr std::uint64_t kWarmupMs = 100;
constexpr std::uint64_t kWindowMs = 2'500;
constexpr std::size_t kMaxSamplesPerThread = 2'000'000;

const char* SocketPath() { return "/tmp/concord_a12_rpc.sock"; }

struct PhaseResult {
  std::uint64_t p50_ns = 0;
  std::uint64_t p99_ns = 0;
  std::uint64_t acquisitions = 0;
};

// Runs the contended workload for warmup+window, recording the exact wait
// time of every post-warmup acquisition. Exact samples (not the log2
// histogram) because the acceptance criterion is a 2% shift — finer than a
// power-of-two bucket can resolve.
PhaseResult MeasurePhase(ShflLock& lock) {
  std::atomic<bool> stop{false};
  std::atomic<bool> record{false};
  std::vector<std::vector<std::uint64_t>> samples(kThreads);
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    samples[static_cast<std::size_t>(t)].reserve(1 << 18);
    workers.emplace_back([&, t] {
      auto& mine = samples[static_cast<std::size_t>(t)];
      while (!stop.load(std::memory_order_relaxed)) {
        const std::uint64_t before = MonotonicNowNs();
        lock.Lock();
        const std::uint64_t waited = MonotonicNowNs() - before;
        BurnNs(kHoldBurnNs);
        lock.Unlock();
        if (record.load(std::memory_order_relaxed) &&
            mine.size() < kMaxSamplesPerThread) {
          mine.push_back(waited);
        }
        BurnNs(kOutsideBurnNs);
      }
    });
  }
  bench::SleepMs(kWarmupMs);
  record.store(true);
  bench::SleepMs(kWindowMs);
  stop.store(true);
  for (auto& worker : workers) {
    worker.join();
  }

  std::vector<std::uint64_t> merged;
  for (const auto& per_thread : samples) {
    merged.insert(merged.end(), per_thread.begin(), per_thread.end());
  }
  PhaseResult result;
  result.acquisitions = merged.size();
  if (!merged.empty()) {
    const auto at = [&merged](double p) {
      const std::size_t rank = std::min(
          merged.size() - 1,
          static_cast<std::size_t>(p * static_cast<double>(merged.size())));
      std::nth_element(merged.begin(),
                       merged.begin() + static_cast<std::ptrdiff_t>(rank),
                       merged.end());
      return merged[rank];
    };
    result.p50_ns = at(0.50);
    result.p99_ns = at(0.99);
  }
  return result;
}

// The misbehaving client: garbage frames, partial frames left hanging, and
// connections dropped mid-request, in a tight loop.
void Misbehave(std::atomic<bool>& stop) {
  int round = 0;
  while (!stop.load(std::memory_order_relaxed)) {
    const int fd = socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
      bench::SleepMs(1);
      continue;
    }
    sockaddr_un addr;
    memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    strncpy(addr.sun_path, SocketPath(), sizeof(addr.sun_path) - 1);
    if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
      switch (round++ % 3) {
        case 0:  // garbage frame
          (void)send(fd, "]]]{{{ not json\n", 16, MSG_NOSIGNAL);
          break;
        case 1:  // partial frame, never completed
          (void)send(fd, "{\"method\":\"stat", 15, MSG_NOSIGNAL);
          bench::SleepMs(2);
          break;
        case 2:  // connect and vanish mid-request
          (void)send(fd, "{\"method\":\"status\"}", 19, MSG_NOSIGNAL);
          break;
      }
    }
    close(fd);
    bench::SleepMs(1);
  }
}

void PrintPhase(const char* phase, const PhaseResult& result) {
  std::printf("%16s %12llu %12llu %14llu\n", phase,
              static_cast<unsigned long long>(result.p50_ns),
              static_cast<unsigned long long>(result.p99_ns),
              static_cast<unsigned long long>(result.acquisitions));
  bench::ReportMetric("wait_p50", "ns", static_cast<double>(result.p50_ns),
                      {{"phase", phase}});
  bench::ReportMetric("wait_p99", "ns", static_cast<double>(result.p99_ns),
                      {{"phase", phase}});
  bench::ReportMetric("acquisitions", "count",
                      static_cast<double>(result.acquisitions),
                      {{"phase", phase}});
}

double ShiftPct(std::uint64_t baseline, std::uint64_t now) {
  if (baseline == 0) {
    return 0.0;
  }
  return (static_cast<double>(now) - static_cast<double>(baseline)) /
         static_cast<double>(baseline) * 100.0;
}

int Run() {
  Concord& concord = Concord::Global();
  static ShflLock lock;
  lock.SetBlocking(true);
  const std::uint64_t id = concord.RegisterShflLock(lock, "a12_hot", "bench");

  std::printf("=== A12: lock wait percentiles vs control-plane RPC load "
              "[%d threads] ===\n", kThreads);
  std::printf("%16s %12s %12s %14s\n", "phase", "p50_ns", "p99_ns",
              "acquisitions");

  // --- phase 1: no server ----------------------------------------------------
  const PhaseResult off = MeasurePhase(lock);
  PrintPhase("server_off", off);

  // --- phase 2: server bound, zero clients -----------------------------------
  RpcServerOptions options;
  options.socket_path = SocketPath();
  RpcServer server(options);
  if (!server.Start().ok()) {
    std::fprintf(stderr, "cannot start RPC server on %s\n", SocketPath());
    return 1;
  }
  const PhaseResult idle = MeasurePhase(lock);
  PrintPhase("server_idle", idle);

  // --- phase 3: polled at 100 Hz + one misbehaving client --------------------
  std::atomic<bool> stop_clients{false};
  std::thread poller([&stop_clients] {
    RpcClientOptions client_options;
    client_options.socket_path = SocketPath();
    client_options.timeout_ms = 500;
    RpcClient client(client_options);
    while (!stop_clients.load(std::memory_order_relaxed)) {
      (void)client.CallOnce("status", "");
      bench::SleepMs(10);  // 100 Hz
    }
  });
  std::thread rogue([&stop_clients] { Misbehave(stop_clients); });
  const PhaseResult loaded = MeasurePhase(lock);
  stop_clients.store(true);
  poller.join();
  rogue.join();
  PrintPhase("server_loaded", loaded);

  const RpcServerStats stats = server.stats();
  std::printf("server counters: accepted=%llu requests=%llu errors=%llu "
              "read_timeouts=%llu\n",
              static_cast<unsigned long long>(stats.accepted),
              static_cast<unsigned long long>(stats.requests),
              static_cast<unsigned long long>(stats.errors),
              static_cast<unsigned long long>(stats.read_timeouts));
  server.Stop();

  const double idle_shift = ShiftPct(off.p99_ns, idle.p99_ns);
  const double loaded_shift = ShiftPct(off.p99_ns, loaded.p99_ns);
  std::printf("p99 shift vs server_off: idle %+.2f%%, loaded %+.2f%% "
              "(acceptance: |loaded| <= 2%%)\n", idle_shift, loaded_shift);
  bench::ReportMetric("p99_shift", "percent", idle_shift,
                      {{"phase", "server_idle"}});
  bench::ReportMetric("p99_shift", "percent", loaded_shift,
                      {{"phase", "server_loaded"}});
  bench::ReportMetric("rpc_requests_served", "count",
                      static_cast<double>(stats.requests));

  CONCORD_CHECK(concord.Unregister(id).ok());

  // The isolation claim is about lock state, not CPU time: on a host without
  // spare cores the workload, server threads and clients time-slice one CPU
  // and the wait tail measures the scheduler, not the lock. Enforce the gate
  // only when there is headroom; report-only otherwise (CI runs on small
  // hosts, the paper's numbers come from big ones).
  const unsigned cores = std::thread::hardware_concurrency();
  const bool headroom = cores >= static_cast<unsigned>(kThreads) + 3;
  const double gate_pct = std::max(15.0, 2.0 * std::abs(idle_shift));
  if (!headroom) {
    std::printf("only %u cores for %d workload threads + server + clients: "
                "p99 tail is scheduler-bound, gate is report-only\n",
                cores, kThreads);
    return 0;
  }
  return loaded_shift <= gate_pct ? 0 : 1;
}

}  // namespace
}  // namespace concord

int main() {
  concord::bench::ReportInit("a12_rpc");
  concord::bench::ReportConfig("threads", concord::kThreads);
  concord::bench::ReportConfig("window_ms",
                               static_cast<double>(concord::kWindowMs));
  concord::bench::ReportConfig("poll_hz", 100.0);
  const int rc = concord::Run();
  concord::bench::ReportWrite();
  return rc;
}
