// Machine-readable benchmark results.
//
// Every bench binary writes BENCH_<name>.json next to its stdout table so CI
// (and the paper's plotting scripts) never scrape formatted text. The file
// goes to $BENCH_JSON_DIR when set, else the working directory, and follows
// schema_version 1, validated by tools/bench_json_check:
//
//   {
//     "schema_version": 1,
//     "bench": "<binary name>",
//     "git_sha": "<build-time sha or 'unknown'>",
//     "timestamp_unix": <seconds>,
//     "config": {"<key>": <string|number>, ...},
//     "metrics": [
//       {"name": "...", "unit": "...", "value": <number>,
//        "labels": {"<key>": "<value>", ...}},
//       ...
//     ]
//   }
//
// The sweep helpers in bench/common.h feed every PrintRow() cell in here
// automatically; benches that print free-form tables call AddMetric()
// directly.

#ifndef BENCH_BENCH_REPORT_H_
#define BENCH_BENCH_REPORT_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/base/json.h"

#ifndef CONCORD_GIT_SHA
#define CONCORD_GIT_SHA "unknown"
#endif

namespace concord {
namespace bench {

struct BenchMetric {
  std::string name;
  std::string unit;
  double value = 0.0;
  std::map<std::string, std::string> labels;
};

class BenchReport {
 public:
  static BenchReport& Global() {
    static BenchReport* report = new BenchReport();
    return *report;
  }

  void SetBench(std::string name) { bench_ = std::move(name); }
  const std::string& bench() const { return bench_; }

  void SetConfig(const std::string& key, const std::string& value) {
    config_strings_[key] = value;
  }
  void SetConfig(const std::string& key, double value) {
    config_numbers_[key] = value;
  }

  void AddMetric(std::string name, std::string unit, double value,
                 std::map<std::string, std::string> labels = {}) {
    metrics_.push_back(
        {std::move(name), std::move(unit), value, std::move(labels)});
  }

  std::string ToJson() const {
    JsonWriter writer;
    writer.BeginObject();
    writer.NumberField("schema_version", 1);
    writer.Field("bench", bench_);
    writer.Field("git_sha", CONCORD_GIT_SHA);
    writer.NumberField("timestamp_unix",
                       static_cast<std::int64_t>(std::time(nullptr)));
    writer.Key("config").BeginObject();
    for (const auto& [key, value] : config_strings_) {
      writer.Field(key, value);
    }
    for (const auto& [key, value] : config_numbers_) {
      writer.NumberField(key, value);
    }
    writer.EndObject();
    writer.Key("metrics").BeginArray();
    for (const BenchMetric& metric : metrics_) {
      writer.BeginObject();
      writer.Field("name", metric.name);
      writer.Field("unit", metric.unit);
      writer.NumberField("value", metric.value);
      writer.Key("labels").BeginObject();
      for (const auto& [key, value] : metric.labels) {
        writer.Field(key, value);
      }
      writer.EndObject();
      writer.EndObject();
    }
    writer.EndArray();
    writer.EndObject();
    return writer.TakeString();
  }

  // Writes BENCH_<bench>.json; returns the path, or "" on failure (which is
  // also reported on stderr so CI logs show it).
  std::string WriteFile() const {
    if (bench_.empty()) {
      std::fprintf(stderr, "bench_report: no bench name set, not writing\n");
      return "";
    }
    const char* dir = std::getenv("BENCH_JSON_DIR");
    std::string path = (dir != nullptr && dir[0] != '\0')
                           ? std::string(dir) + "/BENCH_" + bench_ + ".json"
                           : "BENCH_" + bench_ + ".json";
    std::FILE* file = std::fopen(path.c_str(), "w");
    if (file == nullptr) {
      std::fprintf(stderr, "bench_report: cannot open %s\n", path.c_str());
      return "";
    }
    const std::string json = ToJson();
    const bool ok = std::fwrite(json.data(), 1, json.size(), file) ==
                        json.size() &&
                    std::fputc('\n', file) != EOF;
    std::fclose(file);
    if (!ok) {
      std::fprintf(stderr, "bench_report: short write to %s\n", path.c_str());
      return "";
    }
    std::fprintf(stderr, "bench_report: wrote %s\n", path.c_str());
    return path;
  }

 private:
  BenchReport() = default;

  std::string bench_;
  std::map<std::string, std::string> config_strings_;
  std::map<std::string, double> config_numbers_;
  std::vector<BenchMetric> metrics_;
};

// Convenience wrappers so bench mains read as a checklist.
inline void ReportInit(const std::string& bench_name) {
  BenchReport::Global().SetBench(bench_name);
}
inline void ReportConfig(const std::string& key, const std::string& value) {
  BenchReport::Global().SetConfig(key, value);
}
inline void ReportConfig(const std::string& key, double value) {
  BenchReport::Global().SetConfig(key, value);
}
inline void ReportMetric(std::string name, std::string unit, double value,
                         std::map<std::string, std::string> labels = {}) {
  BenchReport::Global().AddMetric(std::move(name), std::move(unit), value,
                                  std::move(labels));
}
inline std::string ReportWrite() { return BenchReport::Global().WriteFile(); }

}  // namespace bench
}  // namespace concord

#endif  // BENCH_BENCH_REPORT_H_
