// A5: scheduler-cooperative locking (§3.1.2) — waiters with short critical
// sections are boosted past lock hogs, bounding scheduler subversion.

#include <cstdio>

#include "bench/common.h"
#include "src/concord/concord.h"
#include "src/concord/policies.h"

namespace concord {
namespace {

std::vector<bench::WaiterSpec> MakeSpecs() {
  std::vector<bench::WaiterSpec> specs;
  // Three hogs arrive first (50ms CS EWMA), then three quick tasks (10us).
  for (int i = 0; i < 3; ++i) {
    specs.push_back({.group = "hog",
                     .vcpu = static_cast<std::uint32_t>(i),
                     .preset_cs_ewma_ns = 50'000'000});
  }
  for (int i = 0; i < 3; ++i) {
    specs.push_back({.group = "quick",
                     .vcpu = static_cast<std::uint32_t>(3 + i),
                     .preset_cs_ewma_ns = 10'000});
  }
  specs.push_back({.group = "hog", .vcpu = 7,
                   .preset_cs_ewma_ns = 50'000'000});  // tail padding
  return specs;
}

void Run() {
  Concord& concord = Concord::Global();
  static ShflLock lock;
  const std::uint64_t id = concord.RegisterShflLock(lock, "a5_lock", "bench");
  CONCORD_CHECK(concord.EnableProfiling(id).ok());
  auto contended = [&concord, id] {
    return concord.Stats(id)->Contentions();
  };

  constexpr int kRounds = 3;
  auto fifo = bench::MeasureGrantOrder(lock, MakeSpecs(), kRounds, contended);

  auto policy = MakeSclPolicy();  // boost cs_ewma < 1ms
  CONCORD_CHECK(policy.ok());
  CONCORD_CHECK(concord.Attach(id, std::move(policy->spec)).ok());
  auto scl = bench::MeasureGrantOrder(lock, MakeSpecs(), kRounds, contended);
  CONCORD_CHECK(concord.Unregister(id).ok());

  std::printf("\n=== A5: scheduler-cooperative lock [mean grant position by "
              "group, 7 waiters] ===\n");
  std::printf("%16s %12s %12s\n", "", "hogs", "quick");
  std::printf("%16s %12.1f %12.1f\n", "FIFO", fifo.mean_position["hog"],
              fifo.mean_position["quick"]);
  std::printf("%16s %12.1f %12.1f\n", "SCL policy", scl.mean_position["hog"],
              scl.mean_position["quick"]);
  std::printf("(quick tasks arrived at positions 4-6; SCL must pull them "
              "forward)\n");
  bench::ReportMetric("hog_grant_position", "position",
                      fifo.mean_position["hog"], {{"policy", "fifo"}});
  bench::ReportMetric("quick_grant_position", "position",
                      fifo.mean_position["quick"], {{"policy", "fifo"}});
  bench::ReportMetric("hog_grant_position", "position",
                      scl.mean_position["hog"], {{"policy", "scl"}});
  bench::ReportMetric("quick_grant_position", "position",
                      scl.mean_position["quick"], {{"policy", "scl"}});
}

}  // namespace
}  // namespace concord

int main() {
  concord::bench::ReportInit("a5_scl");
  concord::bench::ReportConfig("waiters", 7.0);
  concord::Run();
  concord::bench::ReportWrite();
  return 0;
}
