// A13: per-CPU policy maps under contention.
//
// Two identical counter policies tap kLockAcquired and count acquisitions
// keyed by the holder's task class. The tap fires *while the lock is held*,
// so the counter update is part of the serialized handoff path. One policy
// counts into a *shared* hash map — each acquisition xadds a value cache
// line the previous holder (usually another CPU) just wrote, so every
// critical section eats a cross-CPU cache miss — the other counts into a
// per-CPU hash map where the holder increments its own CPU's lane. The
// table reports throughput and p99 lock wait per flavour; both census
// totals are cross-checked against the profiler's acquisition count so the
// cheap flavour is provably counting the same events.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/common.h"
#include "src/bpf/assembler.h"
#include "src/bpf/maps.h"
#include "src/concord/concord.h"
#include "src/concord/policies.h"
#include "src/topology/thread_context.h"
#include "src/topology/topology.h"

namespace concord {
namespace {

// Same program shape MakeLockCensusPolicy uses: count acquisitions keyed by
// task class. Against a plain hash map every xadd contends on the shared
// value; against a per-CPU hash map each CPU increments its own slot.
constexpr char kCensusSource[] = R"(
  call get_task_class
  stxdw [r10-8], r0     ; key = task_class
  mov r1, 0
  mov r2, r10
  add r2, -8
  call map_lookup_elem
  jeq r0, 0, miss
  mov r2, 1
  xadddw [r0+0], r2
  mov r0, 0
  exit
miss:
  stdw [r10-16], 1
  mov r1, 0
  mov r2, r10
  add r2, -8
  mov r3, r10
  add r3, -16
  call map_update_elem
  mov r0, 0
  exit
)";

// Binds the census program to `census` (a HashMap or PerCpuHashMap) on the
// lock_acquired tap, so the count happens inside the hold window.
PolicySpec MakeCensusSpec(const char* flavor,
                          std::shared_ptr<BpfMap> census) {
  auto program =
      AssembleProgram(std::string("census_acquired_") + flavor, kCensusSource,
                      &DescriptorFor(HookKind::kLockAcquired), {census.get()});
  CONCORD_CHECK(program.ok());
  PolicySpec spec;
  spec.name = std::string("lock_census_") + flavor;
  spec.maps.push_back(std::move(census));
  CONCORD_CHECK(
      spec.AddProgram(HookKind::kLockAcquired, std::move(*program)).ok());
  return spec;
}

struct FlavorResult {
  double ops_per_msec = 0.0;
  double p99_wait_ns = 0.0;
  std::uint64_t census_total = 0;  // cross-CPU sum over all classes
  std::uint64_t acquisitions = 0;  // profiler ground truth
};

FlavorResult RunFlavor(PolicySpec spec, std::uint32_t threads,
                       const std::function<std::uint64_t()>& census_total) {
  static ShflLock lock;
  // Pure spinning: the host has plenty of CPUs for ≤ 16 workers, and parked
  // waiters' wake latency (≈ 1 ms) would drown the handoff-path difference
  // this bench exists to measure.
  lock.SetBlocking(false);
  Concord& concord = Concord::Global();
  const std::uint64_t id = concord.RegisterShflLock(lock, "a13", "bench");
  CONCORD_CHECK(concord.EnableProfiling(id).ok());
  CONCORD_CHECK(concord.Attach(id, std::move(spec)).ok());

  std::atomic<bool> stop{false};
  std::atomic<std::uint32_t> ready{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> workers;
  const std::uint32_t cpus = MachineTopology::Global().total_cpus();
  for (std::uint32_t t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      ThreadContext& ctx = ThreadRegistry::Global().RegisterCurrent(t % cpus);
      // Spread threads over all four task classes so the census has several
      // keys (several contended cache lines in the shared flavour).
      ctx.task_class.store(static_cast<std::uint8_t>(t % 4),
                           std::memory_order_relaxed);
      ready.fetch_add(1);
      while (!go.load(std::memory_order_acquire)) {
      }
      while (!stop.load(std::memory_order_relaxed)) {
        for (int i = 0; i < 16; ++i) {
          ShflGuard guard(lock);
        }
      }
    });
  }
  CONCORD_CHECK(bench::AwaitCondition([&] { return ready.load() == threads; }));

  constexpr std::uint64_t kRunMs = 300;
  go.store(true, std::memory_order_release);
  bench::SleepMs(kRunMs);
  stop.store(true, std::memory_order_relaxed);
  for (auto& worker : workers) {
    worker.join();
  }

  FlavorResult result;
  const auto* stats = concord.Stats(id);
  CONCORD_CHECK(stats != nullptr);
  const LockProfileSnapshot snapshot = stats->Snapshot();
  result.acquisitions = snapshot.acquisitions;
  result.ops_per_msec =
      static_cast<double>(snapshot.acquisitions) / static_cast<double>(kRunMs);
  result.p99_wait_ns = static_cast<double>(snapshot.wait_ns.Percentile(99));
  result.census_total = census_total();
  CONCORD_CHECK(concord.Unregister(id).ok());
  return result;
}

// One 300 ms sample is noisy on a busy host; take the median of
// `kRepetitions` runs per flavour (fresh spec each run — Attach consumes it).
constexpr int kRepetitions = 3;

FlavorResult RunFlavorMedian(const std::function<PolicySpec()>& make_spec,
                             std::uint32_t threads,
                             const std::function<std::uint64_t()>& total,
                             const std::function<void()>& reset_census) {
  std::vector<FlavorResult> runs;
  for (int rep = 0; rep < kRepetitions; ++rep) {
    reset_census();
    runs.push_back(RunFlavor(make_spec(), threads, total));
    // Every rep must have counted exactly what the profiler saw — the
    // per-CPU flavour is not allowed to be fast by dropping counts.
    CONCORD_CHECK(runs.back().census_total == runs.back().acquisitions);
  }
  std::sort(runs.begin(), runs.end(),
            [](const FlavorResult& a, const FlavorResult& b) {
              return a.p99_wait_ns < b.p99_wait_ns;
            });
  FlavorResult median = runs[runs.size() / 2];
  // Throughput medians independently of p99 — they need not co-rank.
  std::vector<double> ops;
  for (const FlavorResult& run : runs) {
    ops.push_back(run.ops_per_msec);
  }
  std::sort(ops.begin(), ops.end());
  median.ops_per_msec = ops[ops.size() / 2];
  return median;
}

void RunSweep() {
  const std::uint32_t cpus = MachineTopology::Global().total_cpus();
  bench::PrintHeader("A13: census counter policy, shared vs per-CPU map",
                     {"shared ops/ms", "percpu ops/ms", "shared p99ns",
                      "percpu p99ns"},
                     "mixed");
  for (std::uint32_t threads : {2u, 4u, 8u, 16u}) {
    auto shared_census = std::make_shared<HashMap>(
        "class_census", sizeof(std::uint64_t), sizeof(std::uint64_t), 64);
    auto percpu_census = std::make_shared<PerCpuHashMap>(
        "class_census", sizeof(std::uint64_t), sizeof(std::uint64_t), 64,
        cpus);
    // Pre-seeding the four class keys (and re-zeroing between reps) keeps
    // every worker off the racy first-insert miss path: every count is then
    // an exact atomic add.
    const auto reset_shared = [&] {
      for (std::uint64_t cls = 0; cls < 4; ++cls) {
        CONCORD_CHECK(shared_census->UpdateTyped(cls, std::uint64_t{0}).ok());
      }
    };
    const auto reset_percpu = [&] {
      for (std::uint64_t cls = 0; cls < 4; ++cls) {
        CONCORD_CHECK(percpu_census->UpdateTyped(cls, std::uint64_t{0}).ok());
      }
    };

    FlavorResult shared = RunFlavorMedian(
        [&] { return MakeCensusSpec("shared", shared_census); }, threads,
        [&] {
          std::uint64_t total = 0;
          shared_census->ForEach([&](const void*, const void* value) {
            total += __atomic_load_n(
                reinterpret_cast<const std::uint64_t*>(value),
                __ATOMIC_RELAXED);
          });
          return total;
        },
        reset_shared);

    FlavorResult percpu = RunFlavorMedian(
        [&] { return MakeCensusSpec("percpu", percpu_census); }, threads,
        [&] {
          std::uint64_t total = 0;
          for (std::uint64_t cls = 0; cls < 4; ++cls) {
            total += percpu_census->AggregateU64(&cls);
          }
          return total;
        },
        reset_percpu);

    bench::PrintRow(threads, {shared.ops_per_msec, percpu.ops_per_msec,
                              shared.p99_wait_ns, percpu.p99_wait_ns});
    const std::map<std::string, std::string> labels = {
        {"threads", std::to_string(threads)}};
    bench::ReportMetric("a13_shared_p99_wait", "ns", shared.p99_wait_ns, labels);
    bench::ReportMetric("a13_percpu_p99_wait", "ns", percpu.p99_wait_ns, labels);
  }
  std::printf("(host: %u cpus; per-CPU census keeps one value lane per CPU)\n",
              cpus);
}

}  // namespace
}  // namespace concord

int main() {
  concord::bench::ReportInit("a13_percpu_maps");
  concord::bench::ReportConfig("run_ms", 300.0);
  concord::RunSweep();
  concord::bench::ReportWrite();
  return 0;
}
