// A1: what does NUMA-aware shuffling buy over FIFO queueing?
// Simulated sweep: ticket (centralized), MCS (FIFO queue), ShflLock with the
// NUMA grouping policy. The gap between MCS and ShflLock isolates the value
// of *reordering* (both already avoid the centralized-line collapse).

#include <cstdio>

#include "bench/common.h"
#include "src/sim/workloads.h"

namespace concord {
namespace {

void Run() {
  bench::PrintHeader("A1: NUMA strategies vs FIFO [simulated, ops/msec]",
                     {"Ticket", "MCS(FIFO)", "CNA", "ShflLock(NUMA)"});
  for (std::uint32_t threads : bench::PaperThreadSweep()) {
    Lock2Params params;
    params.threads = threads;
    params.duration_ns = 3'000'000;
    const double ticket = SimLock2(Lock2Flavor::kStockTicket, params).ops_per_msec;
    const double mcs = SimLock2(Lock2Flavor::kMcs, params).ops_per_msec;
    const double cna = SimLock2(Lock2Flavor::kCna, params).ops_per_msec;
    const double shfl = SimLock2(Lock2Flavor::kShflLock, params).ops_per_msec;
    bench::PrintRow(threads, {ticket, mcs, cna, shfl});
  }
  std::printf("(MCS vs CNA/ShflLock isolates queue-reordering value; the NUMA\n"
              " pair should converge at scale, by different mechanisms)\n");
}

}  // namespace
}  // namespace concord

int main() {
  concord::bench::ReportInit("a1_numa_policy");
  concord::bench::ReportConfig("duration_ns", 3'000'000.0);
  concord::Run();
  concord::bench::ReportWrite();
  return 0;
}
