// A6: asymmetric multicore (§3.1.2) — on an AMP machine, waiters on fast
// cores are granted first so slow cores do not gate lock handoff.

#include <cstdio>

#include "bench/common.h"
#include "src/concord/concord.h"
#include "src/concord/policies.h"
#include "src/sim/workloads.h"

namespace concord {
namespace {

std::vector<bench::WaiterSpec> MakeSpecs() {
  // vcpus 0-3 are "fast" cores (the policy default knob); slow waiters
  // arrive first, fast waiters later.
  std::vector<bench::WaiterSpec> specs;
  for (int i = 0; i < 4; ++i) {
    specs.push_back({.group = "slow",
                     .vcpu = static_cast<std::uint32_t>(8 + i)});
  }
  for (int i = 0; i < 3; ++i) {
    specs.push_back({.group = "fast", .vcpu = static_cast<std::uint32_t>(i)});
  }
  specs.push_back({.group = "slow", .vcpu = 15});  // tail padding
  return specs;
}

void Run() {
  Concord& concord = Concord::Global();
  static ShflLock lock;
  const std::uint64_t id = concord.RegisterShflLock(lock, "a6_lock", "bench");
  CONCORD_CHECK(concord.EnableProfiling(id).ok());
  auto contended = [&concord, id] {
    return concord.Stats(id)->Contentions();
  };

  constexpr int kRounds = 3;
  auto fifo = bench::MeasureGrantOrder(lock, MakeSpecs(), kRounds, contended);

  auto policy = MakeAmpFastCorePolicy();  // boost vcpu < 4
  CONCORD_CHECK(policy.ok());
  CONCORD_CHECK(concord.Attach(id, std::move(policy->spec)).ok());
  auto amp = bench::MeasureGrantOrder(lock, MakeSpecs(), kRounds, contended);
  CONCORD_CHECK(concord.Unregister(id).ok());

  std::printf("\n=== A6: AMP fast-core preference [mean grant position by "
              "group, 8 waiters] ===\n");
  std::printf("%16s %12s %12s\n", "", "slow cores", "fast cores");
  std::printf("%16s %12.1f %12.1f\n", "FIFO", fifo.mean_position["slow"],
              fifo.mean_position["fast"]);
  std::printf("%16s %12.1f %12.1f\n", "AMP policy", amp.mean_position["slow"],
              amp.mean_position["fast"]);
  std::printf("(fast-core waiters arrived at positions 5-7)\n");
  bench::ReportMetric("slow_grant_position", "position",
                      fifo.mean_position["slow"], {{"policy", "fifo"}});
  bench::ReportMetric("fast_grant_position", "position",
                      fifo.mean_position["fast"], {{"policy", "fifo"}});
  bench::ReportMetric("slow_grant_position", "position",
                      amp.mean_position["slow"], {{"policy", "amp"}});
  bench::ReportMetric("fast_grant_position", "position",
                      amp.mean_position["fast"], {{"policy", "amp"}});
}

void RunSimPart() {
  std::printf("\n=== A6 (sim): throughput on an AMP machine [16 threads, 8 "
              "fast cores, slow cores 4x] ===\n");
  std::printf("%16s %14s %14s %14s\n", "", "total ops/ms", "fast ops",
              "slow ops");
  AmpParams params;
  const AmpResult fifo = SimAmp(AmpFlavor::kFifo, params);
  const AmpResult amp = SimAmp(AmpFlavor::kAmpPolicy, params);
  std::printf("%16s %14.1f %14llu %14llu\n", "FIFO",
              fifo.total.ops_per_msec,
              static_cast<unsigned long long>(fifo.fast_ops),
              static_cast<unsigned long long>(fifo.slow_ops));
  std::printf("%16s %14.1f %14llu %14llu\n", "AMP policy",
              amp.total.ops_per_msec,
              static_cast<unsigned long long>(amp.fast_ops),
              static_cast<unsigned long long>(amp.slow_ops));
  std::printf("(the policy trades slow-core share for total throughput)\n");
  for (const auto& [policy, result] :
       {std::pair<const char*, const AmpResult&>{"fifo", fifo},
        {"amp", amp}}) {
    const std::map<std::string, std::string> labels = {{"policy", policy}};
    bench::ReportMetric("sim_total", "ops_per_msec", result.total.ops_per_msec,
                        labels);
    bench::ReportMetric("sim_fast_ops", "ops",
                        static_cast<double>(result.fast_ops), labels);
    bench::ReportMetric("sim_slow_ops", "ops",
                        static_cast<double>(result.slow_ops), labels);
  }
}

}  // namespace
}  // namespace concord

int main() {
  concord::bench::ReportInit("a6_amp");
  concord::bench::ReportConfig("waiters", 8.0);
  concord::Run();
  concord::RunSimPart();
  concord::bench::ReportWrite();
  return 0;
}
