// google-benchmark adapter for the BENCH_<name>.json artifact.
//
// CONCORD_GBENCH_MAIN(name) replaces BENCHMARK_MAIN(): it runs the registered
// benchmarks through a reporter that mirrors every per-iteration run (and its
// user counters) into the bench report, then writes BENCH_<name>.json.

#ifndef BENCH_GBENCH_JSON_H_
#define BENCH_GBENCH_JSON_H_

#include <benchmark/benchmark.h>

#include <map>
#include <string>
#include <vector>

#include "bench/bench_report.h"

namespace concord {
namespace bench {

class JsonRecordingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& report) override {
    for (const Run& run : report) {
      if (run.run_type == Run::RT_Aggregate || run.error_occurred) {
        continue;  // aggregates restate per-iteration runs; errors have no data
      }
      const double iters = static_cast<double>(run.iterations);
      const double ns_per_op =
          run.iterations > 0 ? run.real_accumulated_time / iters * 1e9 : 0.0;
      const std::map<std::string, std::string> labels = {
          {"iterations", std::to_string(run.iterations)}};
      ReportMetric(run.benchmark_name(), "ns_per_op", ns_per_op, labels);
      for (const auto& [counter_name, counter] : run.counters) {
        ReportMetric(run.benchmark_name() + "/" + counter_name, "counter",
                     counter.value, labels);
      }
    }
    ConsoleReporter::ReportRuns(report);
  }
};

inline int RunGbenchWithJson(const std::string& bench_name, int argc,
                             char** argv) {
  ReportInit(bench_name);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  JsonRecordingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  ReportWrite();
  return 0;
}

}  // namespace bench
}  // namespace concord

#define CONCORD_GBENCH_MAIN(bench_name)                              \
  int main(int argc, char** argv) {                                  \
    return ::concord::bench::RunGbenchWithJson(bench_name, argc, argv); \
  }

#endif  // BENCH_GBENCH_JSON_H_
