// A11: the adaptive policy control plane end to end (docs/AUTOTUNE.md).
//
// The workload models the paper's NUMA motivation directly: the critical
// section touches data that must "migrate" when the lock hops sockets, so a
// cross-socket handoff pays a large burn and a same-socket handoff a small
// one. With worker threads pinned alternately to two virtual sockets the
// lock ping-pongs and wait times are dominated by migration cost — exactly
// the regime the NUMA grouping policy fixes by granting same-socket waiters
// consecutively.
//
// Three experiments:
//  1. Convergence: start skewed, enable autotune, and wait for the
//     controller to classify the lock NUMA-skewed, canary numa_grouping and
//     promote it on a measured p50/p99 win. Reports time-to-promote and
//     throughput before/after.
//  2. Reversion: move every thread onto one socket (skew gone) and wait for
//     the controller to fall back to plain.
//  3. Overhead: steady-state single-thread throughput with the controller
//     running vs stopped — the control plane must be free when it has
//     nothing to do (target: <=2%).

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.h"
#include "src/base/time.h"
#include "src/concord/autotune/controller.h"
#include "src/concord/concord.h"
#include "src/sync/shfllock.h"
#include "src/topology/thread_context.h"
#include "src/topology/topology.h"

namespace concord {
namespace {

constexpr int kThreads = 8;
constexpr std::uint64_t kLocalBurnNs = 1'000;
constexpr std::uint64_t kMigrateBurnNs = 20'000;
constexpr std::uint64_t kOutsideBurnNs = 4'000;
constexpr std::uint64_t kPhaseTimeoutNs = 20'000'000'000ull;  // 20s

struct Workload {
  ShflLock* lock = nullptr;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> ops{0};
  // Socket of the previous lock holder; a handoff that crosses sockets pays
  // the migration burn inside the critical section.
  std::atomic<std::uint32_t> last_socket{0};
  std::atomic<std::uint64_t> migrations{0};
  std::vector<std::thread> workers;

  // `socket_of(t)` pins worker t's virtual socket.
  void Start(std::uint32_t (*socket_of)(int), int threads = kThreads) {
    const std::uint32_t cores =
        MachineTopology::Global().config().cores_per_socket;
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back([this, t, cores, socket_of] {
        const std::uint32_t socket = socket_of(t);
        ThreadRegistry::Global().RegisterCurrent(
            socket * cores + static_cast<std::uint32_t>(t) % cores);
        while (!stop.load(std::memory_order_relaxed)) {
          lock->Lock();
          const std::uint32_t prev =
              last_socket.exchange(socket, std::memory_order_relaxed);
          if (prev != socket) {
            BurnNs(kMigrateBurnNs);
            migrations.fetch_add(1, std::memory_order_relaxed);
          } else {
            BurnNs(kLocalBurnNs);
          }
          lock->Unlock();
          ops.fetch_add(1, std::memory_order_relaxed);
          BurnNs(kOutsideBurnNs);
        }
      });
    }
  }

  void Stop() {
    stop.store(true);
    for (auto& worker : workers) {
      worker.join();
    }
    workers.clear();
    stop.store(false);
  }
};

// ops/msec over a sampling interval.
double MeasureRate(const Workload& load, int ms) {
  const std::uint64_t before = load.ops.load();
  bench::SleepMs(ms);
  return static_cast<double>(load.ops.load() - before) /
         static_cast<double>(ms);
}

// Waits until the controller's event log shows `kind` for `candidate` (empty
// = any). Returns elapsed ns, or 0 on timeout.
std::uint64_t AwaitEvent(AutotuneEventKind kind, const std::string& candidate) {
  const std::uint64_t start = MonotonicNowNs();
  while (MonotonicNowNs() - start < kPhaseTimeoutNs) {
    for (const AutotuneEvent& event :
         AutotuneController::Global().RecentEvents(256)) {
      if (event.kind == kind &&
          (candidate.empty() || event.candidate == candidate) &&
          event.ts_ns != 0) {
        return MonotonicNowNs() - start;
      }
    }
    bench::SleepMs(10);
  }
  return 0;
}

int Run() {
  Concord& concord = Concord::Global();
  static ShflLock lock;
  lock.SetBlocking(true);
  const std::uint64_t id = concord.RegisterShflLock(lock, "a11_hot", "bench");

  AutotuneConfig config;
  config.window_ns = 50'000'000;  // 50ms
  config.hysteresis_windows = 2;
  config.canary_windows = 3;
  config.cooldown_windows = 2;
  config.min_window_acquisitions = 32;
  config.promote_margin = 0.05;
  // Retry a rolled-back canary quickly: one noisy baseline window can sink a
  // genuinely better candidate, and this bench is about convergence time.
  config.failed_candidate_backoff_windows = 6;
  // This host-threaded workload saturates the lock by design; keep the
  // pathological regime for genuine starvation so the NUMA signal can win.
  config.classifier.pathological_min_rate = 1.01;
  config.classifier.pathological_wait_p99_ns = 500'000'000;

  Workload load;
  load.lock = &lock;

  // --- 1. convergence under NUMA skew ---------------------------------------
  load.Start(+[](int t) { return static_cast<std::uint32_t>(t % 2); });
  bench::SleepMs(100);  // let contention establish before sampling starts
  const double skewed_before = MeasureRate(load, 400);

  CONCORD_CHECK(concord.EnableAutotune("a11_hot", config).ok());
  const std::uint64_t promote_ns =
      AwaitEvent(AutotuneEventKind::kPromote, "numa_grouping");
  const bool converged = promote_ns != 0;
  double skewed_after = 0.0;
  if (converged) {
    bench::SleepMs(100);
    skewed_after = MeasureRate(load, 400);
  }
  load.Stop();

  std::printf("\n=== A11.1: convergence to numa_grouping under socket skew "
              "[%d threads, 2 sockets] ===\n", kThreads);
  std::printf("%24s %14s\n", "", "ops/msec");
  std::printf("%24s %14.1f\n", "plain (skewed)", skewed_before);
  if (converged) {
    std::printf("%24s %14.1f  (promoted after %.0f ms)\n",
                "numa_grouping", skewed_after,
                static_cast<double>(promote_ns) / 1e6);
  } else {
    std::printf("%24s %14s\n", "numa_grouping", "NOT PROMOTED");
    std::printf("controller status: %s\n",
                AutotuneController::Global().StatusJson().c_str());
  }
  bench::ReportMetric("converged", "bool", converged ? 1.0 : 0.0,
                      {{"phase", "skewed"}});
  bench::ReportMetric("time_to_promote", "ms",
                      static_cast<double>(promote_ns) / 1e6,
                      {{"candidate", "numa_grouping"}});
  bench::ReportMetric("throughput", "ops_per_msec", skewed_before,
                      {{"phase", "skewed"}, {"policy", "plain"}});
  bench::ReportMetric("throughput", "ops_per_msec", skewed_after,
                      {{"phase", "skewed"}, {"policy", "numa_grouping"}});

  // --- 2. reversion when the skew disappears ---------------------------------
  load.Start(+[](int) { return std::uint32_t{0}; });
  const std::uint64_t revert_ns =
      AwaitEvent(AutotuneEventKind::kPromote, kPlainCandidateName);
  const bool reverted = revert_ns != 0;
  load.Stop();

  std::printf("\n=== A11.2: reversion to plain when skew is removed ===\n");
  if (reverted) {
    std::printf("%24s after %.0f ms\n", "reverted to plain",
                static_cast<double>(revert_ns) / 1e6);
  } else {
    std::printf("%24s\n", "NOT REVERTED");
  }
  bench::ReportMetric("reverted", "bool", reverted ? 1.0 : 0.0,
                      {{"phase", "unskewed"}});
  bench::ReportMetric("time_to_revert", "ms",
                      static_cast<double>(revert_ns) / 1e6,
                      {{"candidate", "plain"}});

  // --- 3. steady-state overhead ----------------------------------------------
  // Controller running but with nothing to change: a single uncontended
  // thread, the cheapest regime and the least noisy measurement. Compare
  // against the controller stopped.
  load.Start(+[](int) { return std::uint32_t{0}; }, /*threads=*/1);
  bench::SleepMs(200);
  const double with_controller = MeasureRate(load, 500);
  CONCORD_CHECK(concord.DisableAutotune().ok());
  bench::SleepMs(100);
  const double without_controller = MeasureRate(load, 500);
  load.Stop();

  const double overhead_pct =
      without_controller <= 0.0
          ? 0.0
          : (without_controller - with_controller) / without_controller * 100.0;
  std::printf("\n=== A11.3: steady-state controller overhead ===\n");
  std::printf("%24s %14.1f ops/msec\n", "controller running", with_controller);
  std::printf("%24s %14.1f ops/msec\n", "controller stopped",
              without_controller);
  std::printf("%24s %14.2f %% (target <= 2%%)\n", "overhead", overhead_pct);
  bench::ReportMetric("throughput", "ops_per_msec", with_controller,
                      {{"phase", "steady"}, {"controller", "on"}});
  bench::ReportMetric("throughput", "ops_per_msec", without_controller,
                      {{"phase", "steady"}, {"controller", "off"}});
  bench::ReportMetric("steady_state_overhead", "percent", overhead_pct);

  CONCORD_CHECK(concord.Unregister(id).ok());
  return (converged && reverted) ? 0 : 1;
}

}  // namespace
}  // namespace concord

int main() {
  concord::bench::ReportInit("a11_autotune");
  concord::bench::ReportConfig("threads", concord::kThreads);
  concord::bench::ReportConfig("migrate_burn_ns",
                               static_cast<double>(concord::kMigrateBurnNs));
  concord::bench::ReportConfig("local_burn_ns",
                               static_cast<double>(concord::kLocalBurnNs));
  const int rc = concord::Run();
  concord::bench::ReportWrite();
  return rc;
}
