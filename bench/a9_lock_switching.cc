// A9: live lock switching (§3.1.1) — two experiments:
//  1. BravoLock readers run continuously while userspace flips the attached
//     rw_mode policy's knob between reader-bias, neutral and writer-only;
//     the fast/slow path counters show the lock actually changing flavour
//     mid-flight, with throughput per phase.
//  2. A ShflLock is attach/detach-churned while writers hammer it; the
//     throughput cost of a patch cycle (RCU swap + grace period) is
//     reported per switch.

#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/common.h"
#include "src/concord/concord.h"
#include "src/concord/policies.h"
#include "src/sync/bravo.h"

namespace concord {
namespace {

void RunRwSwitchExperiment() {
  static BravoLock<NeutralRwLock> lock;
  Concord& concord = Concord::Global();
  const std::uint64_t id = concord.RegisterRwLock(lock, "a9_rw", "bench");
  auto policy = MakeRwSwitchPolicy(RwMode::kNeutral);
  CONCORD_CHECK(policy.ok());
  auto knobs = policy->knobs;
  CONCORD_CHECK(concord.Attach(id, std::move(policy->spec)).ok());

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> reads{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        for (int i = 0; i < 64; ++i) {
          lock.ReadLock();
          lock.ReadUnlock();
        }
        reads.fetch_add(64, std::memory_order_relaxed);
      }
    });
  }

  std::printf("\n=== A9.1: live rw-mode switching [3 reader threads] ===\n");
  std::printf("%14s %14s %14s %14s\n", "phase", "reads/msec", "fast reads",
              "slow reads");
  struct Phase {
    const char* name;
    RwMode mode;
  };
  const Phase phases[] = {{"neutral", RwMode::kNeutral},
                          {"reader-bias", RwMode::kReaderBias},
                          {"neutral", RwMode::kNeutral},
                          {"reader-bias", RwMode::kReaderBias},
                          {"writer-only", RwMode::kWriterOnly}};
  int phase_index = 0;
  for (const Phase& phase : phases) {
    CONCORD_CHECK(
        knobs->UpdateTyped(std::uint32_t{0},
                           static_cast<std::uint64_t>(phase.mode))
            .ok());
    const std::uint64_t reads_before = reads.load();
    const std::uint64_t fast_before = lock.fast_reads();
    const std::uint64_t slow_before = lock.slow_reads();
    bench::SleepMs(200);
    const double rate =
        static_cast<double>(reads.load() - reads_before) / 200.0;
    const std::uint64_t fast = lock.fast_reads() - fast_before;
    const std::uint64_t slow = lock.slow_reads() - slow_before;
    std::printf("%14s %14.1f %14llu %14llu\n", phase.name, rate,
                static_cast<unsigned long long>(fast),
                static_cast<unsigned long long>(slow));
    const std::map<std::string, std::string> labels = {
        {"phase", std::to_string(phase_index)}, {"mode", phase.name}};
    bench::ReportMetric("rw_switch_reads", "reads_per_msec", rate, labels);
    bench::ReportMetric("rw_switch_fast_reads", "reads",
                        static_cast<double>(fast), labels);
    bench::ReportMetric("rw_switch_slow_reads", "reads",
                        static_cast<double>(slow), labels);
    ++phase_index;
  }

  stop.store(true);
  for (auto& reader : readers) {
    reader.join();
  }
  CONCORD_CHECK(concord.Unregister(id).ok());
}

void RunAttachChurnExperiment() {
  static ShflLock lock;
  lock.SetBlocking(true);  // spin-then-park: sane under host oversubscription
  Concord& concord = Concord::Global();
  const std::uint64_t id = concord.RegisterShflLock(lock, "a9_shfl", "bench");

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> ops{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < 3; ++t) {
    workers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        for (int i = 0; i < 64; ++i) {
          ShflGuard guard(lock);
        }
        ops.fetch_add(64, std::memory_order_relaxed);
      }
    });
  }

  // Phase A: no switching.
  const std::uint64_t quiet_before = ops.load();
  bench::SleepMs(300);
  const double quiet_rate = static_cast<double>(ops.load() - quiet_before) / 300.0;

  // Control: the same 10ms wake-up pattern without any patching, so
  // scheduler perturbation from the control thread is attributed separately
  // from the patch cycles themselves.
  const std::uint64_t control_before = ops.load();
  const std::uint64_t control_start = MonotonicNowNs();
  while (MonotonicNowNs() - control_start < 300'000'000ull) {
    bench::SleepMs(10);
  }
  const double control_ms =
      static_cast<double>(MonotonicNowNs() - control_start) / 1'000'000.0;
  const double control_rate =
      static_cast<double>(ops.load() - control_before) / control_ms;

  // Phase B: live re-tuning at a realistic rate (one patch cycle / 10ms).
  // Each Attach/Detach includes verification, the RCU pointer swap and a
  // full grace period; per-cycle latency is reported alongside throughput.
  std::uint64_t switches = 0;
  std::uint64_t switch_ns_total = 0;
  const std::uint64_t churn_before = ops.load();
  const std::uint64_t churn_start = MonotonicNowNs();
  while (MonotonicNowNs() - churn_start < 300'000'000ull) {
    const std::uint64_t t0 = MonotonicNowNs();
    auto policy = MakeNumaGroupingPolicy();
    CONCORD_CHECK(policy.ok());
    CONCORD_CHECK(concord.Attach(id, std::move(policy->spec)).ok());
    CONCORD_CHECK(concord.Detach(id).ok());
    switch_ns_total += MonotonicNowNs() - t0;
    switches += 2;
    bench::SleepMs(10);
  }
  const double churn_ms =
      static_cast<double>(MonotonicNowNs() - churn_start) / 1'000'000.0;
  const double churn_rate =
      static_cast<double>(ops.load() - churn_before) / churn_ms;

  stop.store(true);
  for (auto& worker : workers) {
    worker.join();
  }
  CONCORD_CHECK(concord.Unregister(id).ok());

  std::printf("\n=== A9.2: live re-patching under load [3 writer threads, one "
              "attach+detach per 10ms] ===\n");
  std::printf("%24s %14.1f ops/msec\n", "no switching", quiet_rate);
  std::printf("%24s %14.1f ops/msec (10ms wakeups, no patching)\n",
              "control", control_rate);
  const double us_per_patch_cycle =
      switches == 0 ? 0.0
                    : static_cast<double>(switch_ns_total) / 1000.0 /
                          static_cast<double>(switches / 2);
  std::printf("%24s %14.1f ops/msec (%llu switches, %.1f us per patch "
              "cycle incl. grace period)\n",
              "live re-patching", churn_rate,
              static_cast<unsigned long long>(switches), us_per_patch_cycle);
  bench::ReportMetric("churn_ops", "ops_per_msec", quiet_rate,
                      {{"phase", "no_switching"}});
  bench::ReportMetric("churn_ops", "ops_per_msec", control_rate,
                      {{"phase", "control"}});
  bench::ReportMetric("churn_ops", "ops_per_msec", churn_rate,
                      {{"phase", "live_repatching"}});
  bench::ReportMetric("patch_cycle", "us", us_per_patch_cycle,
                      {{"switches", std::to_string(switches)}});
}

}  // namespace
}  // namespace concord

int main() {
  concord::bench::ReportInit("a9_lock_switching");
  concord::bench::ReportConfig("reader_threads", 3.0);
  concord::bench::ReportConfig("phase_ms", 200.0);
  concord::RunRwSwitchExperiment();
  concord::RunAttachChurnExperiment();
  concord::bench::ReportWrite();
  return 0;
}
