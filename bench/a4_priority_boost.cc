// A4: priority boosting (§3.1.1) — an annotated high-priority task arriving
// late in the queue should be granted near the front when the priority
// policy is attached.

#include <cstdio>

#include "bench/common.h"
#include "src/concord/concord.h"
#include "src/concord/policies.h"

namespace concord {
namespace {

std::vector<bench::WaiterSpec> MakeSpecs() {
  std::vector<bench::WaiterSpec> specs;
  for (int i = 0; i < 6; ++i) {
    specs.push_back({.group = "besteffort", .vcpu = static_cast<std::uint32_t>(i)});
  }
  specs.push_back({.group = "vip", .vcpu = 6, .priority = 10});
  specs.push_back({.group = "besteffort", .vcpu = 7});  // tail padding
  return specs;
}

void Run() {
  Concord& concord = Concord::Global();
  static ShflLock lock;
  const std::uint64_t id = concord.RegisterShflLock(lock, "a4_lock", "bench");
  CONCORD_CHECK(concord.EnableProfiling(id).ok());
  auto contended = [&concord, id] {
    return concord.Stats(id)->Contentions();
  };

  constexpr int kRounds = 3;
  auto fifo = bench::MeasureGrantOrder(lock, MakeSpecs(), kRounds, contended);

  auto policy = MakePriorityBoostPolicy();
  CONCORD_CHECK(policy.ok());
  CONCORD_CHECK(policy->SetKnob(0, 5).ok());  // boost priority >= 5
  CONCORD_CHECK(concord.Attach(id, std::move(policy->spec)).ok());
  auto boosted = bench::MeasureGrantOrder(lock, MakeSpecs(), kRounds, contended);
  CONCORD_CHECK(concord.Unregister(id).ok());

  std::printf("\n=== A4: priority boosting [grant position of the priority "
              "waiter, 8 waiters] ===\n");
  std::printf("%24s %12.1f\n", "FIFO (no policy)", fifo.mean_position["vip"]);
  std::printf("%24s %12.1f\n", "priority policy", boosted.mean_position["vip"]);
  std::printf("(lower is earlier; arrival position was 7)\n");
  bench::ReportMetric("vip_grant_position", "position",
                      fifo.mean_position["vip"], {{"policy", "fifo"}});
  bench::ReportMetric("vip_grant_position", "position",
                      boosted.mean_position["vip"], {{"policy", "priority"}});
}

}  // namespace
}  // namespace concord

int main() {
  concord::bench::ReportInit("a4_priority_boost");
  concord::bench::ReportConfig("waiters", 8.0);
  concord::bench::ReportConfig("arrival_position", 7.0);
  concord::Run();
  concord::bench::ReportWrite();
  return 0;
}
