// Figure 2(b): lock2 — ops/msec vs thread count for
// Stock / ShflLock / Concord-ShflLock (writer-heavy file-lock path).

#include <cstdio>
#include <thread>
#include <vector>

#include "bench/common.h"
#include "src/concord/concord.h"
#include "src/concord/policies.h"
#include "src/kernelsim/proc_locks.h"
#include "src/sim/workloads.h"
#include "src/sync/ticket_lock.h"

namespace concord {
namespace {

void RunSimPart() {
  auto numa = MakeNumaGroupingPolicy();
  CONCORD_CHECK(numa.ok());
  CONCORD_CHECK(numa->spec.VerifyAll().ok());
  const Program* cmp = &numa->spec.ChainFor(HookKind::kCmpNode).programs.front();

  bench::PrintHeader("Fig 2(b) lock2 [simulated 8x10 machine, ops/msec]",
                     {"Stock", "ShflLock", "Concord-ShflLock"});
  for (std::uint32_t threads : bench::PaperThreadSweep()) {
    Lock2Params params;
    params.threads = threads;
    params.duration_ns = 3'000'000;
    params.cmp_program = cmp;
    const double stock = SimLock2(Lock2Flavor::kStockTicket, params).ops_per_msec;
    const double shfl = SimLock2(Lock2Flavor::kShflLock, params).ops_per_msec;
    const double concord =
        SimLock2(Lock2Flavor::kConcordShflLock, params).ops_per_msec;
    bench::PrintRow(threads, {stock, shfl, concord});
  }
}

template <typename LockT>
double RunRealWorkload(ProcLockTable<LockT>& table, std::uint32_t threads,
                       std::uint64_t ms) {
  std::atomic<std::uint64_t> ops{0};
  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  for (std::uint32_t t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      while (!stop.load(std::memory_order_relaxed)) {
        for (int i = 0; i < 64; ++i) {
          table.LockUnlockCycle(t, t);
        }
        ops.fetch_add(64, std::memory_order_relaxed);
      }
    });
  }
  bench::SleepMs(ms);
  stop.store(true);
  for (auto& worker : workers) {
    worker.join();
  }
  return static_cast<double>(ops.load()) / static_cast<double>(ms);
}

void RunRealPart() {
  constexpr std::uint64_t kMs = 400;
  bench::PrintHeader("Fig 2(b) lock2 [real threads on host, ops/msec]",
                     {"Stock", "ShflLock", "Concord-ShflLock"});
  for (std::uint32_t threads : {1u, 2u, 4u}) {
    ProcLockTable<TicketLock> stock_table;
    const double stock = RunRealWorkload(stock_table, threads, kMs);

    // ShflLock with the NUMA policy precompiled (native hooks). Blocking
    // (spin-then-park) mode: spinning under host oversubscription is
    // pathological, and lock2's contended path blocks in real kernels too.
    ProcLockTable<ShflLock> shfl_table;
    shfl_table.global_lock().SetBlocking(true);
    {
      ShflHooks native;
      native.cmp_node = [](void*, const ShflWaiterView& s,
                           const ShflWaiterView& c) { return s.socket == c.socket; };
      shfl_table.global_lock().InstallHooks(&native);
      // Keep `native` alive for the run: block scope below.
      const double shfl = RunRealWorkload(shfl_table, threads, kMs);
      shfl_table.global_lock().InstallHooks(nullptr);
      Rcu::Global().Synchronize();

      // Concord path: same policy as verified BPF, attached via the facade.
      ProcLockTable<ShflLock> concord_table;
      concord_table.global_lock().SetBlocking(true);
      Concord& concord = Concord::Global();
      const std::uint64_t id = concord.RegisterShflLock(
          concord_table.global_lock(), "file_lock_lock", "fs");
      auto policy = MakeNumaGroupingPolicy();
      CONCORD_CHECK(policy.ok());
      CONCORD_CHECK(concord.Attach(id, std::move(policy->spec)).ok());
      const double concord_shfl = RunRealWorkload(concord_table, threads, kMs);
      CONCORD_CHECK(concord.Unregister(id).ok());

      bench::PrintRow(threads, {stock, shfl, concord_shfl});
    }
  }
  std::printf("(ratio Concord-ShflLock / ShflLock is the paper's overhead claim)\n");
}

}  // namespace
}  // namespace concord

int main() {
  concord::bench::ReportInit("fig2b_lock2");
  concord::bench::ReportConfig("sim_duration_ns", 3'000'000.0);
  concord::bench::ReportConfig("real_duration_ms", 400.0);
  concord::RunSimPart();
  concord::RunRealPart();
  concord::bench::ReportWrite();
  return 0;
}
