// A2: where does BRAVO's reader bias stop paying off?
// Fixed 40 simulated threads; sweep the write fraction. Reader bias wins for
// read-mostly mixes and loses once revocation cost dominates — the crossover
// is exactly why the paper wants the rw mode switchable from userspace
// (§3.1.1 lock switching) instead of hard-coded.

#include <cstdio>

#include "bench/common.h"
#include "src/sim/workloads.h"

namespace concord {
namespace {

void Run() {
  std::printf("\n=== A2: BRAVO crossover vs write fraction "
              "[simulated, 40 threads, ops/msec] ===\n");
  std::printf("%16s %16s %16s %16s %10s\n", "writes/1024", "Stock",
              "BRAVO(adaptive)", "BRAVO(fixed)", "winner");
  for (std::uint32_t writes : {0u, 1u, 2u, 4u, 8u, 16u, 32u, 64u, 128u, 256u}) {
    PageFaultParams params;
    params.threads = 40;
    params.duration_ns = 5'000'000;
    params.writes_per_1024 = writes;
    const double stock =
        SimPageFault(PageFaultFlavor::kStockNeutral, params).ops_per_msec;
    const double adaptive =
        SimPageFault(PageFaultFlavor::kBravo, params).ops_per_msec;
    const double fixed =
        SimPageFault(PageFaultFlavor::kBravoFixedBias, params).ops_per_msec;
    std::printf("%16u %16.1f %16.1f %16.1f %10s\n", writes, stock, adaptive,
                fixed, adaptive >= stock ? "BRAVO" : "Stock");
    const std::map<std::string, std::string> labels = {
        {"writes_per_1024", std::to_string(writes)}};
    bench::ReportMetric("Stock", "ops_per_msec", stock, labels);
    bench::ReportMetric("BRAVO_adaptive", "ops_per_msec", adaptive, labels);
    bench::ReportMetric("BRAVO_fixed", "ops_per_msec", fixed, labels);
  }
  std::printf("(fixed bias shows the crossover the adaptive inhibit window — "
              "and a Concord rw_mode policy — exists to avoid)\n");
}

}  // namespace
}  // namespace concord

int main() {
  concord::bench::ReportInit("a2_bravo_crossover");
  concord::bench::ReportConfig("threads", 40.0);
  concord::bench::ReportConfig("duration_ns", 5'000'000.0);
  concord::Run();
  concord::bench::ReportWrite();
  return 0;
}
