// A10: hook runtime-budget accounting cost (google-benchmark). The
// containment layer (docs/SAFETY.md) times every policy invocation against
// its budget; this quantifies what that accounting adds to the dispatch
// path:
//   - Stock:       no policy, no accounting.
//   - BudgetOff:   null native release tap, hook_budget_ns = 0 — the
//                  DispatchScope skips both clock reads, so this is the
//                  policy-dispatch baseline.
//   - BudgetOn:    same tap with a budget that never trips — adds two
//                  ClockNowNs() reads plus the per-hook counters, the full
//                  accounting cost.
//
// The uncontended pair exposes the absolute per-dispatch cost (dominated by
// the two clock reads). The acceptance criterion — accounting adds <= 2%
// when enabled — is on the *contended* path, where each acquisition pays a
// queue handoff plus the critical section: the Contended_* pair holds the
// lock for ~2us of real work with 4 hammering threads so the denominator is
// a realistic contended op, not an empty lock/unlock. Rebuilding with
// -DCONCORD_ENABLE_HOOK_BUDGETS=OFF empties DispatchScope entirely; in that
// build BudgetOn collapses into BudgetOff (accounting compiles out).

#include <benchmark/benchmark.h>

#include "bench/gbench_json.h"

#include <mutex>

#include "src/base/time.h"
#include "src/concord/concord.h"
#include "src/sync/shfllock.h"

namespace concord {
namespace {

// The cheapest possible policy: measures the dispatch/accounting machinery,
// not the policy body.
void NullReleaseTap(void*, std::uint64_t) {}

// Registers `lock` once per process and attaches the null tap with the given
// budget. Benchmarks re-enter for estimation runs and per-thread instances;
// call_once keeps the registration idempotent.
void AttachOnce(ShflLock& lock, std::once_flag& once, std::uint64_t& id,
                const char* name, std::uint64_t budget_ns) {
  std::call_once(once, [&] {
    Concord& concord = Concord::Global();
    id = concord.RegisterShflLock(lock, name, "bench");
    ShflHooks hooks;
    hooks.lock_release = NullReleaseTap;
    hooks.hook_budget_ns = budget_ns;
    hooks.hook_budget_trip = ~0u;  // never trip during the run
    CONCORD_CHECK(concord.AttachNative(id, hooks, "a10-null-tap").ok());
  });
}

void ReportBudgetCounters(benchmark::State& state, std::uint64_t id) {
#if CONCORD_HOOK_BUDGETS
  if (state.thread_index() == 0) {
    if (const HookBudgetState* budget = Concord::Global().BudgetState(id)) {
      state.counters["dispatches"] = static_cast<double>(budget->TotalCalls());
      state.counters["spent_ns"] = static_cast<double>(budget->TotalSpentNs());
    }
  }
#else
  (void)state;
  (void)id;
#endif
}

// --- uncontended: absolute per-dispatch accounting cost ----------------------

void BM_LockUnlock_Stock(benchmark::State& state) {
  static ShflLock lock;
  for (auto _ : state) {
    lock.Lock();
    lock.Unlock();
  }
}
BENCHMARK(BM_LockUnlock_Stock);

void BM_LockUnlock_BudgetOff(benchmark::State& state) {
  static ShflLock lock;
  static std::once_flag once;
  static std::uint64_t id;
  AttachOnce(lock, once, id, "a10_off", 0);
  for (auto _ : state) {
    lock.Lock();
    lock.Unlock();
  }
}
BENCHMARK(BM_LockUnlock_BudgetOff);

void BM_LockUnlock_BudgetOn(benchmark::State& state) {
  static ShflLock lock;
  static std::once_flag once;
  static std::uint64_t id;
  AttachOnce(lock, once, id, "a10_on", 1'000'000'000);
  for (auto _ : state) {
    lock.Lock();
    lock.Unlock();
  }
  ReportBudgetCounters(state, id);
}
BENCHMARK(BM_LockUnlock_BudgetOn);

// --- contended: the acceptance comparison ------------------------------------
// 4 threads, ~2us critical sections. Per-op cost is handoff + CS (microsecond
// scale), so the accounting delta must stay within the <= 2% budget.

constexpr std::uint64_t kCriticalSectionNs = 2'000;

void BM_Contended_BudgetOff(benchmark::State& state) {
  static ShflLock lock;
  static std::once_flag once;
  static std::uint64_t id;
  AttachOnce(lock, once, id, "a10_contended_off", 0);
  for (auto _ : state) {
    lock.Lock();
    BurnNs(kCriticalSectionNs);
    lock.Unlock();
  }
}
BENCHMARK(BM_Contended_BudgetOff)->Threads(4)->UseRealTime();

void BM_Contended_BudgetOn(benchmark::State& state) {
  static ShflLock lock;
  static std::once_flag once;
  static std::uint64_t id;
  AttachOnce(lock, once, id, "a10_contended_on", 1'000'000'000);
  for (auto _ : state) {
    lock.Lock();
    BurnNs(kCriticalSectionNs);
    lock.Unlock();
  }
  ReportBudgetCounters(state, id);
}
BENCHMARK(BM_Contended_BudgetOn)->Threads(4)->UseRealTime();

}  // namespace
}  // namespace concord

CONCORD_GBENCH_MAIN("a10_containment");
