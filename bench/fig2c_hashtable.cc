// Figure 2(c): global-lock hash table — normalized throughput of
// Concord-ShflLock relative to ShflLock (the paper's worst case: tiny
// critical sections make hook overhead maximally visible; the paper reports
// up to ~20% slowdown with no userspace code executing).

#include <cstdio>
#include <thread>
#include <vector>

#include "bench/common.h"
#include "src/base/rng.h"
#include "src/concord/concord.h"
#include "src/concord/policies.h"
#include "src/kernelsim/hashtable.h"
#include "src/sim/workloads.h"

namespace concord {
namespace {

void RunSimPart() {
  auto numa = MakeNumaGroupingPolicy();
  CONCORD_CHECK(numa.ok());
  CONCORD_CHECK(numa->spec.VerifyAll().ok());
  const Program* cmp = &numa->spec.ChainFor(HookKind::kCmpNode).programs.front();

  auto profiler = MakeBpfProfilerPolicy();
  CONCORD_CHECK(profiler.ok());
  CONCORD_CHECK(profiler->spec.VerifyAll().ok());
  const Program* tap =
      &profiler->spec.ChainFor(HookKind::kLockAcquire).programs.front();

  bench::PrintHeader(
      "Fig 2(c) hashtable [simulated, normalized throughput vs ShflLock]",
      {"Concord(empty)", "Concord(BPF taps)"}, "ratio");
  for (std::uint32_t threads : bench::PaperThreadSweep()) {
    HashParams params;
    params.threads = threads;
    params.duration_ns = 3'000'000;
    params.cmp_program = cmp;
    params.tap_program = tap;
    const double base = SimHashTable(HashFlavor::kShflLock, params).ops_per_msec;
    const double empty =
        SimHashTable(HashFlavor::kConcordEmptyHooks, params).ops_per_msec;
    const double bpf =
        SimHashTable(HashFlavor::kConcordBpfProfiler, params).ops_per_msec;
    bench::PrintRow(threads, {empty / base, bpf / base});
  }
}

double RunRealWorkload(GlobalLockHashTable<ShflLock>& table, std::uint32_t threads,
                       std::uint64_t ms) {
  std::atomic<std::uint64_t> ops{0};
  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  for (std::uint32_t t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      Xoshiro256 rng(t + 1);
      while (!stop.load(std::memory_order_relaxed)) {
        for (int i = 0; i < 32; ++i) {
          const std::uint64_t key = rng.NextBounded(1 << 16);
          const std::uint64_t dice = rng.NextBounded(100);
          if (dice < 80) {
            table.Lookup(key, nullptr);
          } else if (dice < 90) {
            table.Insert(key, key);
          } else {
            table.Erase(key);
          }
        }
        ops.fetch_add(32, std::memory_order_relaxed);
      }
    });
  }
  bench::SleepMs(ms);
  stop.store(true);
  for (auto& worker : workers) {
    worker.join();
  }
  return static_cast<double>(ops.load()) / static_cast<double>(ms);
}

void RunRealPart() {
  constexpr std::uint64_t kMs = 400;
  bench::PrintHeader(
      "Fig 2(c) hashtable [real threads, normalized throughput vs ShflLock]",
      {"Concord(policy)", "Concord(+profiler)"}, "ratio");
  for (std::uint32_t threads : {1u, 2u, 4u}) {
    GlobalLockHashTable<ShflLock> base_table;
    base_table.global_lock().SetBlocking(true);
    const double base = RunRealWorkload(base_table, threads, kMs);

    GlobalLockHashTable<ShflLock> policy_table;
    policy_table.global_lock().SetBlocking(true);
    Concord& concord = Concord::Global();
    const std::uint64_t policy_id =
        concord.RegisterShflLock(policy_table.global_lock(), "ht_lock_p", "ht");
    auto numa = MakeNumaGroupingPolicy();
    CONCORD_CHECK(numa.ok());
    CONCORD_CHECK(concord.Attach(policy_id, std::move(numa->spec)).ok());
    const double with_policy = RunRealWorkload(policy_table, threads, kMs);
    CONCORD_CHECK(concord.Unregister(policy_id).ok());

    GlobalLockHashTable<ShflLock> prof_table;
    prof_table.global_lock().SetBlocking(true);
    const std::uint64_t prof_id =
        concord.RegisterShflLock(prof_table.global_lock(), "ht_lock_f", "ht");
    auto numa2 = MakeNumaGroupingPolicy();
    CONCORD_CHECK(numa2.ok());
    CONCORD_CHECK(concord.Attach(prof_id, std::move(numa2->spec)).ok());
    CONCORD_CHECK(concord.EnableProfiling(prof_id).ok());
    const double with_profiler = RunRealWorkload(prof_table, threads, kMs);
    CONCORD_CHECK(concord.Unregister(prof_id).ok());

    bench::PrintRow(threads, {with_policy / base, with_profiler / base});
  }
}

}  // namespace
}  // namespace concord

int main() {
  concord::bench::ReportInit("fig2c_hashtable");
  concord::RunSimPart();
  concord::RunRealPart();
  concord::bench::ReportWrite();
  return 0;
}
