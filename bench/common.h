// Shared helpers for the benchmark binaries.
//
// Two kinds of measurement live here:
//  - Sweep printing: paper-style tables (#threads vs ops/msec per flavour).
//  - Grant-order probe: a deterministic harness that builds a known waiter
//    queue on a real ShflLock and records the order in which the lock was
//    granted. Queue-order policies (priority boost, lock inheritance, SCL,
//    AMP) are about *who runs first*, which on a 1-core host is far better
//    observed directly than through noisy throughput numbers.

#ifndef BENCH_COMMON_H_
#define BENCH_COMMON_H_

#include <cinttypes>
#include <cstdio>
#include <ctime>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_report.h"
#include "src/base/time.h"
#include "src/sync/shfllock.h"
#include "src/topology/thread_context.h"

namespace concord {
namespace bench {

inline const std::vector<std::uint32_t>& PaperThreadSweep() {
  static const std::vector<std::uint32_t> sweep = {1,  2,  4,  8,  10, 20,
                                                   30, 40, 50, 60, 70, 80};
  return sweep;
}

// Sweep-table state: PrintRow() records every cell into the bench report
// under the table PrintHeader() opened, so the JSON artifact mirrors the
// printed tables without per-bench plumbing.
struct SweepTableState {
  std::string title;
  std::vector<std::string> cols;
  std::string unit;
};
inline SweepTableState& CurrentSweepTable() {
  static SweepTableState state;
  return state;
}

inline void PrintHeader(const char* title, const std::vector<std::string>& cols,
                        const char* unit = "ops_per_msec") {
  std::printf("\n=== %s ===\n", title);
  std::printf("%8s", "threads");
  for (const auto& col : cols) {
    std::printf(" %16s", col.c_str());
  }
  std::printf("\n");
  CurrentSweepTable() = {title, cols, unit};
}

inline void PrintRow(std::uint32_t threads, const std::vector<double>& values) {
  std::printf("%8u", threads);
  for (double v : values) {
    std::printf(" %16.1f", v);
  }
  std::printf("\n");
  const SweepTableState& table = CurrentSweepTable();
  for (std::size_t i = 0; i < values.size(); ++i) {
    const std::string col =
        i < table.cols.size() ? table.cols[i] : "col" + std::to_string(i);
    ReportMetric(col, table.unit, values[i],
                 {{"table", table.title}, {"threads", std::to_string(threads)}});
  }
}

inline void SleepMs(std::uint64_t ms) {
  timespec ts;
  ts.tv_sec = static_cast<time_t>(ms / 1000);
  ts.tv_nsec = static_cast<long>((ms % 1000) * 1'000'000);
  nanosleep(&ts, nullptr);
}

// Waits (sleeping) until `pred` holds or ~20s elapse.
template <typename Pred>
bool AwaitCondition(Pred pred) {
  const std::uint64_t deadline = MonotonicNowNs() + 20'000'000'000ull;
  while (!pred()) {
    if (MonotonicNowNs() > deadline) {
      return false;
    }
    SleepMs(1);
  }
  return true;
}

// --- grant-order probe --------------------------------------------------------

struct WaiterSpec {
  std::string group;          // reported bucket
  std::uint32_t vcpu = 0;     // virtual CPU to register on
  std::int32_t priority = 0;  // ThreadContext priority annotation
  std::uint64_t preset_cs_ewma_ns = 0;  // seed for SCL-style policies
  bool holds_other_lock = false;        // acquire a second lock first
};

struct GrantOrderResult {
  // Mean 1-based grant position per group, across rounds.
  std::map<std::string, double> mean_position;
  std::vector<std::vector<std::string>> orders;  // raw per-round grant order
};

// Builds the queue deterministically each round: the probe thread holds
// `lock`, waiters arrive in spec order (serialized by contended-count), the
// queue head gets time to shuffle, then the lock is released and the grant
// order recorded.
// `contended_count` must report how many waiters have hit the lock's slow
// path so far (e.g. Concord profiling stats); it serializes queue arrivals.
inline GrantOrderResult MeasureGrantOrder(
    ShflLock& lock, const std::vector<WaiterSpec>& specs, int rounds,
    const std::function<std::uint64_t()>& contended_count) {
  GrantOrderResult result;
  std::map<std::string, double> position_sum;
  std::map<std::string, int> position_count;

  for (int round = 0; round < rounds; ++round) {
    std::vector<std::string> order;
    std::mutex order_mu;
    ShflLock other_lock;  // for holds_other_lock waiters

    const std::uint64_t contended_base = contended_count();
    lock.Lock();
    std::vector<std::thread> threads;
    std::uint64_t expected = 0;
    for (const WaiterSpec& spec : specs) {
      threads.emplace_back([&, spec] {
        ThreadContext& ctx = ThreadRegistry::Global().RegisterCurrent(spec.vcpu);
        ctx.priority.store(spec.priority, std::memory_order_relaxed);
        if (spec.preset_cs_ewma_ns != 0) {
          ctx.cs_length_ewma_ns.store(spec.preset_cs_ewma_ns,
                                      std::memory_order_relaxed);
        }
        if (spec.holds_other_lock) {
          other_lock.Lock();
        }
        lock.Lock();
        {
          std::lock_guard<std::mutex> guard(order_mu);
          order.push_back(spec.group);
        }
        lock.Unlock();
        if (spec.holds_other_lock) {
          other_lock.Unlock();
        }
      });
      ++expected;
      AwaitCondition(
          [&] { return contended_count() >= contended_base + expected; });
      SleepMs(2);  // let the tapped thread finish enqueueing
    }
    SleepMs(30);  // head shuffles while we hold the lock
    lock.Unlock();
    for (auto& thread : threads) {
      thread.join();
    }
    for (std::size_t i = 0; i < order.size(); ++i) {
      position_sum[order[i]] += static_cast<double>(i + 1);
      position_count[order[i]] += 1;
    }
    result.orders.push_back(std::move(order));
  }

  for (const auto& [group, sum] : position_sum) {
    result.mean_position[group] = sum / position_count[group];
  }
  return result;
}

}  // namespace bench
}  // namespace concord

#endif  // BENCH_COMMON_H_
