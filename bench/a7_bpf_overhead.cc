// A7: what does a policy invocation cost? (google-benchmark)
// Breaks the "Concord overhead" down into its parts: BPF interpretation per
// program, hook-table dispatch, and the end-to-end uncontended lock/unlock
// with nothing / native hooks / BPF hooks attached.

#include <benchmark/benchmark.h>

#include "src/bpf/vm.h"
#include "src/concord/concord.h"
#include "src/concord/policies.h"
#include "src/sync/shfllock.h"

namespace concord {
namespace {

void BM_BpfRunNumaCmp(benchmark::State& state) {
  auto policy = MakeNumaGroupingPolicy();
  CONCORD_CHECK(policy.ok());
  CONCORD_CHECK(policy->spec.VerifyAll().ok());
  const Program& program =
      policy->spec.ChainFor(HookKind::kCmpNode).programs.front();
  CmpNodeCtx ctx{};
  ctx.shuffler.socket = 1;
  ctx.curr.socket = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(BpfVm::Run(program, &ctx));
  }
  state.SetLabel(std::to_string(program.insns.size()) + " insns");
}
BENCHMARK(BM_BpfRunNumaCmp);

void BM_BpfRunMapLookupPolicy(benchmark::State& state) {
  auto policy = MakePriorityBoostPolicy();  // prologue does a map lookup
  CONCORD_CHECK(policy.ok());
  CONCORD_CHECK(policy->spec.VerifyAll().ok());
  const Program& program =
      policy->spec.ChainFor(HookKind::kCmpNode).programs.front();
  CmpNodeCtx ctx{};
  ctx.curr.priority = 3;
  for (auto _ : state) {
    benchmark::DoNotOptimize(BpfVm::Run(program, &ctx));
  }
  state.SetLabel(std::to_string(program.insns.size()) + " insns + map lookup");
}
BENCHMARK(BM_BpfRunMapLookupPolicy);

void BM_UncontendedLock_NoHooks(benchmark::State& state) {
  ShflLock lock;
  for (auto _ : state) {
    lock.Lock();
    lock.Unlock();
  }
}
BENCHMARK(BM_UncontendedLock_NoHooks);

void BM_UncontendedLock_NativeHooks(benchmark::State& state) {
  ShflLock lock;
  ShflHooks hooks;
  hooks.cmp_node = [](void*, const ShflWaiterView& s, const ShflWaiterView& c) {
    return s.socket == c.socket;
  };
  lock.InstallHooks(&hooks);
  for (auto _ : state) {
    lock.Lock();
    lock.Unlock();
  }
  lock.InstallHooks(nullptr);
  Rcu::Global().Synchronize();
}
BENCHMARK(BM_UncontendedLock_NativeHooks);

void BM_UncontendedLock_BpfPolicy(benchmark::State& state) {
  static ShflLock lock;
  Concord& concord = Concord::Global();
  const std::uint64_t id = concord.RegisterShflLock(lock, "a7_lock", "bench");
  auto policy = MakeNumaGroupingPolicy();
  CONCORD_CHECK(policy.ok());
  CONCORD_CHECK(concord.Attach(id, std::move(policy->spec)).ok());
  for (auto _ : state) {
    lock.Lock();
    lock.Unlock();
  }
  CONCORD_CHECK(concord.Unregister(id).ok());
}
BENCHMARK(BM_UncontendedLock_BpfPolicy);

void BM_RwModeDecision_Bpf(benchmark::State& state) {
  auto policy = MakeRwSwitchPolicy(RwMode::kReaderBias);
  CONCORD_CHECK(policy.ok());
  CONCORD_CHECK(policy->spec.VerifyAll().ok());
  const Program& program =
      policy->spec.ChainFor(HookKind::kRwMode).programs.front();
  RwModeCtx ctx{1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(BpfVm::Run(program, &ctx));
  }
}
BENCHMARK(BM_RwModeDecision_Bpf);

}  // namespace
}  // namespace concord

BENCHMARK_MAIN();
