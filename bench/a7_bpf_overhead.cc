// A7: what does a policy invocation cost? (google-benchmark)
// Breaks the "Concord overhead" down into its parts: BPF execution per
// program (interpreted and JIT-compiled), hook-table dispatch, and the
// end-to-end uncontended lock/unlock with nothing / native hooks /
// interpreted BPF hooks / JIT'd BPF hooks attached.
//
// Every BM_Bpf* case has a BM_Jit* counterpart running the same program as
// native code; the ratio between the pair is the JIT speedup the ISSUE's
// acceptance criterion asks about (>= 3x for the NUMA cmp_node program).

#include <benchmark/benchmark.h>

#include "bench/gbench_json.h"

#include "src/bpf/jit/jit.h"
#include "src/bpf/vm.h"
#include "src/concord/concord.h"
#include "src/concord/policies.h"
#include "src/sync/shfllock.h"

namespace concord {
namespace {

// Verifies a freshly built policy and returns it; the caller keeps it alive
// for as long as it references programs inside (programs hold raw pointers
// to the policy's maps).
TunablePolicy VerifiedPolicy(StatusOr<TunablePolicy> policy) {
  CONCORD_CHECK(policy.ok());
  CONCORD_CHECK(policy->spec.VerifyAll().ok());
  return std::move(policy.value());
}

std::shared_ptr<const JitProgram> CompileOrSkip(benchmark::State& state,
                                                const Program& program) {
  if (!Jit::Supported()) {
    state.SkipWithError("no JIT backend on this platform/build");
    return nullptr;
  }
  auto compiled = Jit::Compile(program);
  CONCORD_CHECK(compiled.ok());
  return std::move(compiled.value());
}

void BM_BpfRunNumaCmp(benchmark::State& state) {
  const TunablePolicy policy = VerifiedPolicy(MakeNumaGroupingPolicy());
  const Program& program = policy.spec.ChainFor(HookKind::kCmpNode).programs.front();
  CmpNodeCtx ctx{};
  ctx.shuffler.socket = 1;
  ctx.curr.socket = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(BpfVm::Run(program, &ctx));
  }
  state.SetLabel(std::to_string(program.insns.size()) + " insns");
}
BENCHMARK(BM_BpfRunNumaCmp);

void BM_JitRunNumaCmp(benchmark::State& state) {
  const TunablePolicy policy = VerifiedPolicy(MakeNumaGroupingPolicy());
  const Program& program = policy.spec.ChainFor(HookKind::kCmpNode).programs.front();
  auto jit = CompileOrSkip(state, program);
  if (jit == nullptr) return;
  CmpNodeCtx ctx{};
  ctx.shuffler.socket = 1;
  ctx.curr.socket = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(jit->Run(program, &ctx));
  }
  state.SetLabel(std::to_string(program.insns.size()) + " insns, " +
                 std::to_string(jit->code_size()) + "B native");
}
BENCHMARK(BM_JitRunNumaCmp);

void BM_BpfRunMapLookupPolicy(benchmark::State& state) {
  // The priority-boost prologue does a map lookup.
  const TunablePolicy policy = VerifiedPolicy(MakePriorityBoostPolicy());
  const Program& program = policy.spec.ChainFor(HookKind::kCmpNode).programs.front();
  CmpNodeCtx ctx{};
  ctx.curr.priority = 3;
  for (auto _ : state) {
    benchmark::DoNotOptimize(BpfVm::Run(program, &ctx));
  }
  state.SetLabel(std::to_string(program.insns.size()) + " insns + map lookup");
}
BENCHMARK(BM_BpfRunMapLookupPolicy);

void BM_JitRunMapLookupPolicy(benchmark::State& state) {
  const TunablePolicy policy = VerifiedPolicy(MakePriorityBoostPolicy());
  const Program& program = policy.spec.ChainFor(HookKind::kCmpNode).programs.front();
  auto jit = CompileOrSkip(state, program);
  if (jit == nullptr) return;
  CmpNodeCtx ctx{};
  ctx.curr.priority = 3;
  for (auto _ : state) {
    benchmark::DoNotOptimize(jit->Run(program, &ctx));
  }
  state.SetLabel(std::to_string(program.insns.size()) + " insns + map lookup");
}
BENCHMARK(BM_JitRunMapLookupPolicy);

void BM_UncontendedLock_NoHooks(benchmark::State& state) {
  ShflLock lock;
  for (auto _ : state) {
    lock.Lock();
    lock.Unlock();
  }
}
BENCHMARK(BM_UncontendedLock_NoHooks);

void BM_UncontendedLock_NativeHooks(benchmark::State& state) {
  ShflLock lock;
  ShflHooks hooks;
  hooks.cmp_node = [](void*, const ShflWaiterView& s, const ShflWaiterView& c) {
    return s.socket == c.socket;
  };
  lock.InstallHooks(&hooks);
  for (auto _ : state) {
    lock.Lock();
    lock.Unlock();
  }
  lock.InstallHooks(nullptr);
  Rcu::Global().Synchronize();
}
BENCHMARK(BM_UncontendedLock_NativeHooks);

// Attach-time JIT mode decides which tier the installed hooks run on; pin it
// explicitly so the two lock/unlock benches measure what their names say
// regardless of CONCORD_JIT in the environment.
void UncontendedLockBpfPolicy(benchmark::State& state, bool jit) {
  ScopedJitMode mode(jit);
  if (jit && !Jit::Supported()) {
    state.SkipWithError("no JIT backend on this platform/build");
    return;
  }
  static ShflLock lock;
  Concord& concord = Concord::Global();
  const std::uint64_t id = concord.RegisterShflLock(lock, "a7_lock", "bench");
  auto policy = MakeNumaGroupingPolicy();
  CONCORD_CHECK(policy.ok());
  CONCORD_CHECK(concord.Attach(id, std::move(policy->spec)).ok());
  for (auto _ : state) {
    lock.Lock();
    lock.Unlock();
  }
  CONCORD_CHECK(concord.Unregister(id).ok());
}

void BM_UncontendedLock_BpfPolicy(benchmark::State& state) {
  UncontendedLockBpfPolicy(state, /*jit=*/false);
}
BENCHMARK(BM_UncontendedLock_BpfPolicy);

void BM_UncontendedLock_JitBpfPolicy(benchmark::State& state) {
  UncontendedLockBpfPolicy(state, /*jit=*/true);
}
BENCHMARK(BM_UncontendedLock_JitBpfPolicy);

void BM_RwModeDecision_Bpf(benchmark::State& state) {
  const TunablePolicy policy = VerifiedPolicy(MakeRwSwitchPolicy(RwMode::kReaderBias));
  const Program& program = policy.spec.ChainFor(HookKind::kRwMode).programs.front();
  RwModeCtx ctx{1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(BpfVm::Run(program, &ctx));
  }
}
BENCHMARK(BM_RwModeDecision_Bpf);

void BM_RwModeDecision_Jit(benchmark::State& state) {
  const TunablePolicy policy = VerifiedPolicy(MakeRwSwitchPolicy(RwMode::kReaderBias));
  const Program& program = policy.spec.ChainFor(HookKind::kRwMode).programs.front();
  auto jit = CompileOrSkip(state, program);
  if (jit == nullptr) return;
  RwModeCtx ctx{1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(jit->Run(program, &ctx));
  }
}
BENCHMARK(BM_RwModeDecision_Jit);

}  // namespace
}  // namespace concord

CONCORD_GBENCH_MAIN("a7_bpf_overhead");
