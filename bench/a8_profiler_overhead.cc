// A8: profiling-tap cost (google-benchmark). Table 1's hazard column for the
// four profiling hooks is "increase critical section" — this quantifies it:
// uncontended lock/unlock with no profiling, the built-in native profiler,
// and the all-BPF per-CPU-map profiler.
//
// Also the flight recorder's overhead budget: TraceRuntimeOff measures a
// registered lock with the recorder compiled in but not enabled (the
// always-paid gate branch; compare against a -DCONCORD_ENABLE_TRACE=OFF
// build of BM_LockUnlock_NoProfiling for the compile-out delta), and
// TraceEnabled measures full per-event recording.

#include <benchmark/benchmark.h>

#include "bench/gbench_json.h"
#include "src/base/trace.h"
#include "src/concord/concord.h"
#include "src/concord/policies.h"
#include "src/sync/shfllock.h"

namespace concord {
namespace {

void BM_LockUnlock_NoProfiling(benchmark::State& state) {
  ShflLock lock;
  for (auto _ : state) {
    lock.Lock();
    lock.Unlock();
  }
}
BENCHMARK(BM_LockUnlock_NoProfiling);

void BM_LockUnlock_NativeProfiler(benchmark::State& state) {
  static ShflLock lock;
  Concord& concord = Concord::Global();
  const std::uint64_t id = concord.RegisterShflLock(lock, "a8_native", "bench");
  CONCORD_CHECK(concord.EnableProfiling(id).ok());
  for (auto _ : state) {
    lock.Lock();
    lock.Unlock();
  }
  state.counters["acquisitions"] = static_cast<double>(
      concord.Stats(id)->Acquisitions());
  CONCORD_CHECK(concord.Unregister(id).ok());
}
BENCHMARK(BM_LockUnlock_NativeProfiler);

void BM_LockUnlock_BpfProfiler(benchmark::State& state) {
  static ShflLock lock;
  Concord& concord = Concord::Global();
  const std::uint64_t id = concord.RegisterShflLock(lock, "a8_bpf", "bench");
  auto profiler = MakeBpfProfilerPolicy();
  CONCORD_CHECK(profiler.ok());
  auto counters = profiler->counters;  // keep alive across the Attach move
  CONCORD_CHECK(concord.Attach(id, std::move(profiler->spec)).ok());
  for (auto _ : state) {
    lock.Lock();
    lock.Unlock();
  }
  state.counters["bpf_acquires"] =
      static_cast<double>(counters->SumU64(0));
  CONCORD_CHECK(concord.Unregister(id).ok());
}
BENCHMARK(BM_LockUnlock_BpfProfiler);

void BM_LockUnlock_TraceRuntimeOff(benchmark::State& state) {
  static ShflLock lock;
  Concord& concord = Concord::Global();
  const std::uint64_t id = concord.RegisterShflLock(lock, "a8_troff", "bench");
  // Registered (nonzero lock id, so the gate really indexes the bitmap) but
  // tracing never enabled: this is the cost production pays for carrying the
  // recorder.
  for (auto _ : state) {
    lock.Lock();
    lock.Unlock();
  }
  CONCORD_CHECK(concord.Unregister(id).ok());
}
BENCHMARK(BM_LockUnlock_TraceRuntimeOff);

#if CONCORD_TRACE
void BM_LockUnlock_TraceEnabled(benchmark::State& state) {
  static ShflLock lock;
  Concord& concord = Concord::Global();
  const std::uint64_t id = concord.RegisterShflLock(lock, "a8_tron", "bench");
  CONCORD_CHECK(concord.EnableTracing(id).ok());
  for (auto _ : state) {
    lock.Lock();
    lock.Unlock();
  }
  state.counters["trace_events"] = static_cast<double>(
      TraceRegistry::Global().Collect().size());
  CONCORD_CHECK(concord.DisableTracing(id).ok());
  CONCORD_CHECK(concord.Unregister(id).ok());
}
BENCHMARK(BM_LockUnlock_TraceEnabled);
#endif

}  // namespace
}  // namespace concord

CONCORD_GBENCH_MAIN("a8_profiler_overhead");
