// A8: profiling-tap cost (google-benchmark). Table 1's hazard column for the
// four profiling hooks is "increase critical section" — this quantifies it:
// uncontended lock/unlock with no profiling, the built-in native profiler,
// and the all-BPF per-CPU-map profiler.

#include <benchmark/benchmark.h>

#include "src/concord/concord.h"
#include "src/concord/policies.h"
#include "src/sync/shfllock.h"

namespace concord {
namespace {

void BM_LockUnlock_NoProfiling(benchmark::State& state) {
  ShflLock lock;
  for (auto _ : state) {
    lock.Lock();
    lock.Unlock();
  }
}
BENCHMARK(BM_LockUnlock_NoProfiling);

void BM_LockUnlock_NativeProfiler(benchmark::State& state) {
  static ShflLock lock;
  Concord& concord = Concord::Global();
  const std::uint64_t id = concord.RegisterShflLock(lock, "a8_native", "bench");
  CONCORD_CHECK(concord.EnableProfiling(id).ok());
  for (auto _ : state) {
    lock.Lock();
    lock.Unlock();
  }
  state.counters["acquisitions"] = static_cast<double>(
      concord.Stats(id)->acquisitions.load(std::memory_order_relaxed));
  CONCORD_CHECK(concord.Unregister(id).ok());
}
BENCHMARK(BM_LockUnlock_NativeProfiler);

void BM_LockUnlock_BpfProfiler(benchmark::State& state) {
  static ShflLock lock;
  Concord& concord = Concord::Global();
  const std::uint64_t id = concord.RegisterShflLock(lock, "a8_bpf", "bench");
  auto profiler = MakeBpfProfilerPolicy();
  CONCORD_CHECK(profiler.ok());
  auto counters = profiler->counters;  // keep alive across the Attach move
  CONCORD_CHECK(concord.Attach(id, std::move(profiler->spec)).ok());
  for (auto _ : state) {
    lock.Lock();
    lock.Unlock();
  }
  state.counters["bpf_acquires"] =
      static_cast<double>(counters->SumU64(0));
  CONCORD_CHECK(concord.Unregister(id).ok());
}
BENCHMARK(BM_LockUnlock_BpfProfiler);

}  // namespace
}  // namespace concord

BENCHMARK_MAIN();
