file(REMOVE_RECURSE
  "CMakeFiles/a6_amp.dir/a6_amp.cc.o"
  "CMakeFiles/a6_amp.dir/a6_amp.cc.o.d"
  "a6_amp"
  "a6_amp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/a6_amp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
