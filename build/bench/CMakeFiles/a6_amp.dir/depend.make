# Empty dependencies file for a6_amp.
# This may be replaced when dependencies are built.
