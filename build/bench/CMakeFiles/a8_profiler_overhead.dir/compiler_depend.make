# Empty compiler generated dependencies file for a8_profiler_overhead.
# This may be replaced when dependencies are built.
