file(REMOVE_RECURSE
  "CMakeFiles/a8_profiler_overhead.dir/a8_profiler_overhead.cc.o"
  "CMakeFiles/a8_profiler_overhead.dir/a8_profiler_overhead.cc.o.d"
  "a8_profiler_overhead"
  "a8_profiler_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/a8_profiler_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
