file(REMOVE_RECURSE
  "CMakeFiles/fig2b_lock2.dir/fig2b_lock2.cc.o"
  "CMakeFiles/fig2b_lock2.dir/fig2b_lock2.cc.o.d"
  "fig2b_lock2"
  "fig2b_lock2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2b_lock2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
