# Empty compiler generated dependencies file for fig2b_lock2.
# This may be replaced when dependencies are built.
