file(REMOVE_RECURSE
  "CMakeFiles/a3_lock_inheritance.dir/a3_lock_inheritance.cc.o"
  "CMakeFiles/a3_lock_inheritance.dir/a3_lock_inheritance.cc.o.d"
  "a3_lock_inheritance"
  "a3_lock_inheritance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/a3_lock_inheritance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
