# Empty compiler generated dependencies file for a3_lock_inheritance.
# This may be replaced when dependencies are built.
