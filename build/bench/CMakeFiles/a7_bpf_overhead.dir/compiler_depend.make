# Empty compiler generated dependencies file for a7_bpf_overhead.
# This may be replaced when dependencies are built.
