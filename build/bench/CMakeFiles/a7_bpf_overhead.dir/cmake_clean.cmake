file(REMOVE_RECURSE
  "CMakeFiles/a7_bpf_overhead.dir/a7_bpf_overhead.cc.o"
  "CMakeFiles/a7_bpf_overhead.dir/a7_bpf_overhead.cc.o.d"
  "a7_bpf_overhead"
  "a7_bpf_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/a7_bpf_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
