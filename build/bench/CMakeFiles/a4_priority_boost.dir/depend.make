# Empty dependencies file for a4_priority_boost.
# This may be replaced when dependencies are built.
