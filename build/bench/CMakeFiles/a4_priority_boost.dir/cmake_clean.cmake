file(REMOVE_RECURSE
  "CMakeFiles/a4_priority_boost.dir/a4_priority_boost.cc.o"
  "CMakeFiles/a4_priority_boost.dir/a4_priority_boost.cc.o.d"
  "a4_priority_boost"
  "a4_priority_boost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/a4_priority_boost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
