# Empty dependencies file for a9_lock_switching.
# This may be replaced when dependencies are built.
