file(REMOVE_RECURSE
  "CMakeFiles/a9_lock_switching.dir/a9_lock_switching.cc.o"
  "CMakeFiles/a9_lock_switching.dir/a9_lock_switching.cc.o.d"
  "a9_lock_switching"
  "a9_lock_switching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/a9_lock_switching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
