file(REMOVE_RECURSE
  "CMakeFiles/a1_numa_policy.dir/a1_numa_policy.cc.o"
  "CMakeFiles/a1_numa_policy.dir/a1_numa_policy.cc.o.d"
  "a1_numa_policy"
  "a1_numa_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/a1_numa_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
