# Empty dependencies file for a1_numa_policy.
# This may be replaced when dependencies are built.
