file(REMOVE_RECURSE
  "CMakeFiles/a5_scl.dir/a5_scl.cc.o"
  "CMakeFiles/a5_scl.dir/a5_scl.cc.o.d"
  "a5_scl"
  "a5_scl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/a5_scl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
