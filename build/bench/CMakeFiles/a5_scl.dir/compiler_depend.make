# Empty compiler generated dependencies file for a5_scl.
# This may be replaced when dependencies are built.
