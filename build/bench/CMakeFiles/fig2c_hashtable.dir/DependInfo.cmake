
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig2c_hashtable.cc" "bench/CMakeFiles/fig2c_hashtable.dir/fig2c_hashtable.cc.o" "gcc" "bench/CMakeFiles/fig2c_hashtable.dir/fig2c_hashtable.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/concord_kernelsim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/concord_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/concord_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/concord_bpf.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/concord_sync.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/concord_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/concord_rcu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/concord_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
