file(REMOVE_RECURSE
  "CMakeFiles/fig2c_hashtable.dir/fig2c_hashtable.cc.o"
  "CMakeFiles/fig2c_hashtable.dir/fig2c_hashtable.cc.o.d"
  "fig2c_hashtable"
  "fig2c_hashtable.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2c_hashtable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
