# Empty dependencies file for fig2c_hashtable.
# This may be replaced when dependencies are built.
