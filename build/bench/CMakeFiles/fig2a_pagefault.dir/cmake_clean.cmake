file(REMOVE_RECURSE
  "CMakeFiles/fig2a_pagefault.dir/fig2a_pagefault.cc.o"
  "CMakeFiles/fig2a_pagefault.dir/fig2a_pagefault.cc.o.d"
  "fig2a_pagefault"
  "fig2a_pagefault.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2a_pagefault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
