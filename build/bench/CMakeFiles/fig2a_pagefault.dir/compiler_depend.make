# Empty compiler generated dependencies file for fig2a_pagefault.
# This may be replaced when dependencies are built.
