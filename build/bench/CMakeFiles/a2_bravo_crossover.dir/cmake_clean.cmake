file(REMOVE_RECURSE
  "CMakeFiles/a2_bravo_crossover.dir/a2_bravo_crossover.cc.o"
  "CMakeFiles/a2_bravo_crossover.dir/a2_bravo_crossover.cc.o.d"
  "a2_bravo_crossover"
  "a2_bravo_crossover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/a2_bravo_crossover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
