# Empty compiler generated dependencies file for a2_bravo_crossover.
# This may be replaced when dependencies are built.
