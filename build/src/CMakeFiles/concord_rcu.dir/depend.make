# Empty dependencies file for concord_rcu.
# This may be replaced when dependencies are built.
