file(REMOVE_RECURSE
  "libconcord_rcu.a"
)
