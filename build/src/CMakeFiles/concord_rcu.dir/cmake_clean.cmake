file(REMOVE_RECURSE
  "CMakeFiles/concord_rcu.dir/rcu/rcu.cc.o"
  "CMakeFiles/concord_rcu.dir/rcu/rcu.cc.o.d"
  "libconcord_rcu.a"
  "libconcord_rcu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/concord_rcu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
