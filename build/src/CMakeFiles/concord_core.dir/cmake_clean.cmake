file(REMOVE_RECURSE
  "CMakeFiles/concord_core.dir/concord/concord.cc.o"
  "CMakeFiles/concord_core.dir/concord/concord.cc.o.d"
  "CMakeFiles/concord_core.dir/concord/hooks.cc.o"
  "CMakeFiles/concord_core.dir/concord/hooks.cc.o.d"
  "CMakeFiles/concord_core.dir/concord/policies.cc.o"
  "CMakeFiles/concord_core.dir/concord/policies.cc.o.d"
  "CMakeFiles/concord_core.dir/concord/policy.cc.o"
  "CMakeFiles/concord_core.dir/concord/policy.cc.o.d"
  "CMakeFiles/concord_core.dir/concord/profiler.cc.o"
  "CMakeFiles/concord_core.dir/concord/profiler.cc.o.d"
  "CMakeFiles/concord_core.dir/concord/safety.cc.o"
  "CMakeFiles/concord_core.dir/concord/safety.cc.o.d"
  "libconcord_core.a"
  "libconcord_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/concord_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
