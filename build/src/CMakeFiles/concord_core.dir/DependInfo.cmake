
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/concord/concord.cc" "src/CMakeFiles/concord_core.dir/concord/concord.cc.o" "gcc" "src/CMakeFiles/concord_core.dir/concord/concord.cc.o.d"
  "/root/repo/src/concord/hooks.cc" "src/CMakeFiles/concord_core.dir/concord/hooks.cc.o" "gcc" "src/CMakeFiles/concord_core.dir/concord/hooks.cc.o.d"
  "/root/repo/src/concord/policies.cc" "src/CMakeFiles/concord_core.dir/concord/policies.cc.o" "gcc" "src/CMakeFiles/concord_core.dir/concord/policies.cc.o.d"
  "/root/repo/src/concord/policy.cc" "src/CMakeFiles/concord_core.dir/concord/policy.cc.o" "gcc" "src/CMakeFiles/concord_core.dir/concord/policy.cc.o.d"
  "/root/repo/src/concord/profiler.cc" "src/CMakeFiles/concord_core.dir/concord/profiler.cc.o" "gcc" "src/CMakeFiles/concord_core.dir/concord/profiler.cc.o.d"
  "/root/repo/src/concord/safety.cc" "src/CMakeFiles/concord_core.dir/concord/safety.cc.o" "gcc" "src/CMakeFiles/concord_core.dir/concord/safety.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/concord_bpf.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/concord_sync.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/concord_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/concord_rcu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/concord_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
