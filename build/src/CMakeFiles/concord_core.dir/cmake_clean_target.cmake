file(REMOVE_RECURSE
  "libconcord_core.a"
)
