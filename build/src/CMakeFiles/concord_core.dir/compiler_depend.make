# Empty compiler generated dependencies file for concord_core.
# This may be replaced when dependencies are built.
