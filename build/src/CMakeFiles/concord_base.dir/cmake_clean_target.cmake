file(REMOVE_RECURSE
  "libconcord_base.a"
)
