# Empty dependencies file for concord_base.
# This may be replaced when dependencies are built.
