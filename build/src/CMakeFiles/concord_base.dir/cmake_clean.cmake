file(REMOVE_RECURSE
  "CMakeFiles/concord_base.dir/base/histogram.cc.o"
  "CMakeFiles/concord_base.dir/base/histogram.cc.o.d"
  "CMakeFiles/concord_base.dir/base/spinwait.cc.o"
  "CMakeFiles/concord_base.dir/base/spinwait.cc.o.d"
  "CMakeFiles/concord_base.dir/base/status.cc.o"
  "CMakeFiles/concord_base.dir/base/status.cc.o.d"
  "CMakeFiles/concord_base.dir/base/time.cc.o"
  "CMakeFiles/concord_base.dir/base/time.cc.o.d"
  "libconcord_base.a"
  "libconcord_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/concord_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
