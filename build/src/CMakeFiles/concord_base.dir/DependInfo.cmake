
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/base/histogram.cc" "src/CMakeFiles/concord_base.dir/base/histogram.cc.o" "gcc" "src/CMakeFiles/concord_base.dir/base/histogram.cc.o.d"
  "/root/repo/src/base/spinwait.cc" "src/CMakeFiles/concord_base.dir/base/spinwait.cc.o" "gcc" "src/CMakeFiles/concord_base.dir/base/spinwait.cc.o.d"
  "/root/repo/src/base/status.cc" "src/CMakeFiles/concord_base.dir/base/status.cc.o" "gcc" "src/CMakeFiles/concord_base.dir/base/status.cc.o.d"
  "/root/repo/src/base/time.cc" "src/CMakeFiles/concord_base.dir/base/time.cc.o" "gcc" "src/CMakeFiles/concord_base.dir/base/time.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
