
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sync/cna_lock.cc" "src/CMakeFiles/concord_sync.dir/sync/cna_lock.cc.o" "gcc" "src/CMakeFiles/concord_sync.dir/sync/cna_lock.cc.o.d"
  "/root/repo/src/sync/mcs_lock.cc" "src/CMakeFiles/concord_sync.dir/sync/mcs_lock.cc.o" "gcc" "src/CMakeFiles/concord_sync.dir/sync/mcs_lock.cc.o.d"
  "/root/repo/src/sync/parking_lot.cc" "src/CMakeFiles/concord_sync.dir/sync/parking_lot.cc.o" "gcc" "src/CMakeFiles/concord_sync.dir/sync/parking_lot.cc.o.d"
  "/root/repo/src/sync/shfllock.cc" "src/CMakeFiles/concord_sync.dir/sync/shfllock.cc.o" "gcc" "src/CMakeFiles/concord_sync.dir/sync/shfllock.cc.o.d"
  "/root/repo/src/sync/wait_event.cc" "src/CMakeFiles/concord_sync.dir/sync/wait_event.cc.o" "gcc" "src/CMakeFiles/concord_sync.dir/sync/wait_event.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/concord_base.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/concord_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/concord_rcu.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
