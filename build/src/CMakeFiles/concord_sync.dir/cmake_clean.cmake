file(REMOVE_RECURSE
  "CMakeFiles/concord_sync.dir/sync/cna_lock.cc.o"
  "CMakeFiles/concord_sync.dir/sync/cna_lock.cc.o.d"
  "CMakeFiles/concord_sync.dir/sync/mcs_lock.cc.o"
  "CMakeFiles/concord_sync.dir/sync/mcs_lock.cc.o.d"
  "CMakeFiles/concord_sync.dir/sync/parking_lot.cc.o"
  "CMakeFiles/concord_sync.dir/sync/parking_lot.cc.o.d"
  "CMakeFiles/concord_sync.dir/sync/shfllock.cc.o"
  "CMakeFiles/concord_sync.dir/sync/shfllock.cc.o.d"
  "CMakeFiles/concord_sync.dir/sync/wait_event.cc.o"
  "CMakeFiles/concord_sync.dir/sync/wait_event.cc.o.d"
  "libconcord_sync.a"
  "libconcord_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/concord_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
