file(REMOVE_RECURSE
  "libconcord_sync.a"
)
