# Empty dependencies file for concord_sync.
# This may be replaced when dependencies are built.
