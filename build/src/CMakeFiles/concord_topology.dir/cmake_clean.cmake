file(REMOVE_RECURSE
  "CMakeFiles/concord_topology.dir/topology/thread_context.cc.o"
  "CMakeFiles/concord_topology.dir/topology/thread_context.cc.o.d"
  "CMakeFiles/concord_topology.dir/topology/topology.cc.o"
  "CMakeFiles/concord_topology.dir/topology/topology.cc.o.d"
  "libconcord_topology.a"
  "libconcord_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/concord_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
