# Empty compiler generated dependencies file for concord_topology.
# This may be replaced when dependencies are built.
