file(REMOVE_RECURSE
  "libconcord_topology.a"
)
