file(REMOVE_RECURSE
  "CMakeFiles/concord_bpf.dir/bpf/assembler.cc.o"
  "CMakeFiles/concord_bpf.dir/bpf/assembler.cc.o.d"
  "CMakeFiles/concord_bpf.dir/bpf/disasm.cc.o"
  "CMakeFiles/concord_bpf.dir/bpf/disasm.cc.o.d"
  "CMakeFiles/concord_bpf.dir/bpf/helpers.cc.o"
  "CMakeFiles/concord_bpf.dir/bpf/helpers.cc.o.d"
  "CMakeFiles/concord_bpf.dir/bpf/maps.cc.o"
  "CMakeFiles/concord_bpf.dir/bpf/maps.cc.o.d"
  "CMakeFiles/concord_bpf.dir/bpf/verifier.cc.o"
  "CMakeFiles/concord_bpf.dir/bpf/verifier.cc.o.d"
  "CMakeFiles/concord_bpf.dir/bpf/vm.cc.o"
  "CMakeFiles/concord_bpf.dir/bpf/vm.cc.o.d"
  "libconcord_bpf.a"
  "libconcord_bpf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/concord_bpf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
