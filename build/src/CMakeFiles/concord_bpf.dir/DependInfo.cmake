
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bpf/assembler.cc" "src/CMakeFiles/concord_bpf.dir/bpf/assembler.cc.o" "gcc" "src/CMakeFiles/concord_bpf.dir/bpf/assembler.cc.o.d"
  "/root/repo/src/bpf/disasm.cc" "src/CMakeFiles/concord_bpf.dir/bpf/disasm.cc.o" "gcc" "src/CMakeFiles/concord_bpf.dir/bpf/disasm.cc.o.d"
  "/root/repo/src/bpf/helpers.cc" "src/CMakeFiles/concord_bpf.dir/bpf/helpers.cc.o" "gcc" "src/CMakeFiles/concord_bpf.dir/bpf/helpers.cc.o.d"
  "/root/repo/src/bpf/maps.cc" "src/CMakeFiles/concord_bpf.dir/bpf/maps.cc.o" "gcc" "src/CMakeFiles/concord_bpf.dir/bpf/maps.cc.o.d"
  "/root/repo/src/bpf/verifier.cc" "src/CMakeFiles/concord_bpf.dir/bpf/verifier.cc.o" "gcc" "src/CMakeFiles/concord_bpf.dir/bpf/verifier.cc.o.d"
  "/root/repo/src/bpf/vm.cc" "src/CMakeFiles/concord_bpf.dir/bpf/vm.cc.o" "gcc" "src/CMakeFiles/concord_bpf.dir/bpf/vm.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/concord_base.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/concord_topology.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
