file(REMOVE_RECURSE
  "libconcord_bpf.a"
)
