# Empty compiler generated dependencies file for concord_bpf.
# This may be replaced when dependencies are built.
