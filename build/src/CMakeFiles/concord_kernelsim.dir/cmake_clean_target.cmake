file(REMOVE_RECURSE
  "libconcord_kernelsim.a"
)
