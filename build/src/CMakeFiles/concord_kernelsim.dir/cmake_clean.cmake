file(REMOVE_RECURSE
  "CMakeFiles/concord_kernelsim.dir/kernelsim/vfs.cc.o"
  "CMakeFiles/concord_kernelsim.dir/kernelsim/vfs.cc.o.d"
  "libconcord_kernelsim.a"
  "libconcord_kernelsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/concord_kernelsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
