# Empty dependencies file for concord_kernelsim.
# This may be replaced when dependencies are built.
