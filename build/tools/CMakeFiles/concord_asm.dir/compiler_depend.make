# Empty compiler generated dependencies file for concord_asm.
# This may be replaced when dependencies are built.
