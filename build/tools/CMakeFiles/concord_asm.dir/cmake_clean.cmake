file(REMOVE_RECURSE
  "CMakeFiles/concord_asm.dir/concord_asm.cc.o"
  "CMakeFiles/concord_asm.dir/concord_asm.cc.o.d"
  "concord_asm"
  "concord_asm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/concord_asm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
