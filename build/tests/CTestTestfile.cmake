# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/base_test[1]_include.cmake")
include("/root/repo/build/tests/topology_test[1]_include.cmake")
include("/root/repo/build/tests/rcu_test[1]_include.cmake")
include("/root/repo/build/tests/sync_test[1]_include.cmake")
include("/root/repo/build/tests/concord_test[1]_include.cmake")
include("/root/repo/build/tests/kernelsim_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/bpf_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
