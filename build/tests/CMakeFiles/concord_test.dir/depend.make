# Empty dependencies file for concord_test.
# This may be replaced when dependencies are built.
