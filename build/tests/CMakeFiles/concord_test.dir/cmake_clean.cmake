file(REMOVE_RECURSE
  "CMakeFiles/concord_test.dir/concord/composition_test.cc.o"
  "CMakeFiles/concord_test.dir/concord/composition_test.cc.o.d"
  "CMakeFiles/concord_test.dir/concord/concord_test.cc.o"
  "CMakeFiles/concord_test.dir/concord/concord_test.cc.o.d"
  "CMakeFiles/concord_test.dir/concord/policies_test.cc.o"
  "CMakeFiles/concord_test.dir/concord/policies_test.cc.o.d"
  "CMakeFiles/concord_test.dir/concord/profiler_test.cc.o"
  "CMakeFiles/concord_test.dir/concord/profiler_test.cc.o.d"
  "CMakeFiles/concord_test.dir/concord/rw_attach_test.cc.o"
  "CMakeFiles/concord_test.dir/concord/rw_attach_test.cc.o.d"
  "CMakeFiles/concord_test.dir/concord/safety_test.cc.o"
  "CMakeFiles/concord_test.dir/concord/safety_test.cc.o.d"
  "concord_test"
  "concord_test.pdb"
  "concord_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/concord_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
