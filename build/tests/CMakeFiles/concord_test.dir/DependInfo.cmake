
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/concord/composition_test.cc" "tests/CMakeFiles/concord_test.dir/concord/composition_test.cc.o" "gcc" "tests/CMakeFiles/concord_test.dir/concord/composition_test.cc.o.d"
  "/root/repo/tests/concord/concord_test.cc" "tests/CMakeFiles/concord_test.dir/concord/concord_test.cc.o" "gcc" "tests/CMakeFiles/concord_test.dir/concord/concord_test.cc.o.d"
  "/root/repo/tests/concord/policies_test.cc" "tests/CMakeFiles/concord_test.dir/concord/policies_test.cc.o" "gcc" "tests/CMakeFiles/concord_test.dir/concord/policies_test.cc.o.d"
  "/root/repo/tests/concord/profiler_test.cc" "tests/CMakeFiles/concord_test.dir/concord/profiler_test.cc.o" "gcc" "tests/CMakeFiles/concord_test.dir/concord/profiler_test.cc.o.d"
  "/root/repo/tests/concord/rw_attach_test.cc" "tests/CMakeFiles/concord_test.dir/concord/rw_attach_test.cc.o" "gcc" "tests/CMakeFiles/concord_test.dir/concord/rw_attach_test.cc.o.d"
  "/root/repo/tests/concord/safety_test.cc" "tests/CMakeFiles/concord_test.dir/concord/safety_test.cc.o" "gcc" "tests/CMakeFiles/concord_test.dir/concord/safety_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/concord_kernelsim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/concord_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/concord_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/concord_bpf.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/concord_sync.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/concord_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/concord_rcu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/concord_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
