file(REMOVE_RECURSE
  "CMakeFiles/bpf_test.dir/bpf/assembler_test.cc.o"
  "CMakeFiles/bpf_test.dir/bpf/assembler_test.cc.o.d"
  "CMakeFiles/bpf_test.dir/bpf/disasm_test.cc.o"
  "CMakeFiles/bpf_test.dir/bpf/disasm_test.cc.o.d"
  "CMakeFiles/bpf_test.dir/bpf/maps_test.cc.o"
  "CMakeFiles/bpf_test.dir/bpf/maps_test.cc.o.d"
  "CMakeFiles/bpf_test.dir/bpf/verifier_fuzz_test.cc.o"
  "CMakeFiles/bpf_test.dir/bpf/verifier_fuzz_test.cc.o.d"
  "CMakeFiles/bpf_test.dir/bpf/verifier_test.cc.o"
  "CMakeFiles/bpf_test.dir/bpf/verifier_test.cc.o.d"
  "CMakeFiles/bpf_test.dir/bpf/vm_property_test.cc.o"
  "CMakeFiles/bpf_test.dir/bpf/vm_property_test.cc.o.d"
  "CMakeFiles/bpf_test.dir/bpf/vm_test.cc.o"
  "CMakeFiles/bpf_test.dir/bpf/vm_test.cc.o.d"
  "bpf_test"
  "bpf_test.pdb"
  "bpf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bpf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
