# Empty dependencies file for rcu_test.
# This may be replaced when dependencies are built.
