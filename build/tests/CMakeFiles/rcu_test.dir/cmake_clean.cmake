file(REMOVE_RECURSE
  "CMakeFiles/rcu_test.dir/rcu/rcu_test.cc.o"
  "CMakeFiles/rcu_test.dir/rcu/rcu_test.cc.o.d"
  "rcu_test"
  "rcu_test.pdb"
  "rcu_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcu_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
