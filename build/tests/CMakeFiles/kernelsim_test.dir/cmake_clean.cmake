file(REMOVE_RECURSE
  "CMakeFiles/kernelsim_test.dir/kernelsim/address_space_test.cc.o"
  "CMakeFiles/kernelsim_test.dir/kernelsim/address_space_test.cc.o.d"
  "CMakeFiles/kernelsim_test.dir/kernelsim/vfs_test.cc.o"
  "CMakeFiles/kernelsim_test.dir/kernelsim/vfs_test.cc.o.d"
  "CMakeFiles/kernelsim_test.dir/kernelsim/workloads_test.cc.o"
  "CMakeFiles/kernelsim_test.dir/kernelsim/workloads_test.cc.o.d"
  "kernelsim_test"
  "kernelsim_test.pdb"
  "kernelsim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernelsim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
