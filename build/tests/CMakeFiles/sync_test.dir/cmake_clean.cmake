file(REMOVE_RECURSE
  "CMakeFiles/sync_test.dir/sync/bravo_test.cc.o"
  "CMakeFiles/sync_test.dir/sync/bravo_test.cc.o.d"
  "CMakeFiles/sync_test.dir/sync/mutual_exclusion_test.cc.o"
  "CMakeFiles/sync_test.dir/sync/mutual_exclusion_test.cc.o.d"
  "CMakeFiles/sync_test.dir/sync/numa_locks_test.cc.o"
  "CMakeFiles/sync_test.dir/sync/numa_locks_test.cc.o.d"
  "CMakeFiles/sync_test.dir/sync/parking_lot_test.cc.o"
  "CMakeFiles/sync_test.dir/sync/parking_lot_test.cc.o.d"
  "CMakeFiles/sync_test.dir/sync/phase_fair_test.cc.o"
  "CMakeFiles/sync_test.dir/sync/phase_fair_test.cc.o.d"
  "CMakeFiles/sync_test.dir/sync/rw_lock_test.cc.o"
  "CMakeFiles/sync_test.dir/sync/rw_lock_test.cc.o.d"
  "CMakeFiles/sync_test.dir/sync/seqlock_test.cc.o"
  "CMakeFiles/sync_test.dir/sync/seqlock_test.cc.o.d"
  "CMakeFiles/sync_test.dir/sync/shfllock_test.cc.o"
  "CMakeFiles/sync_test.dir/sync/shfllock_test.cc.o.d"
  "CMakeFiles/sync_test.dir/sync/torture_test.cc.o"
  "CMakeFiles/sync_test.dir/sync/torture_test.cc.o.d"
  "CMakeFiles/sync_test.dir/sync/wait_event_test.cc.o"
  "CMakeFiles/sync_test.dir/sync/wait_event_test.cc.o.d"
  "sync_test"
  "sync_test.pdb"
  "sync_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sync_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
