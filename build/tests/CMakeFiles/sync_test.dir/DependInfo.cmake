
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sync/bravo_test.cc" "tests/CMakeFiles/sync_test.dir/sync/bravo_test.cc.o" "gcc" "tests/CMakeFiles/sync_test.dir/sync/bravo_test.cc.o.d"
  "/root/repo/tests/sync/mutual_exclusion_test.cc" "tests/CMakeFiles/sync_test.dir/sync/mutual_exclusion_test.cc.o" "gcc" "tests/CMakeFiles/sync_test.dir/sync/mutual_exclusion_test.cc.o.d"
  "/root/repo/tests/sync/numa_locks_test.cc" "tests/CMakeFiles/sync_test.dir/sync/numa_locks_test.cc.o" "gcc" "tests/CMakeFiles/sync_test.dir/sync/numa_locks_test.cc.o.d"
  "/root/repo/tests/sync/parking_lot_test.cc" "tests/CMakeFiles/sync_test.dir/sync/parking_lot_test.cc.o" "gcc" "tests/CMakeFiles/sync_test.dir/sync/parking_lot_test.cc.o.d"
  "/root/repo/tests/sync/phase_fair_test.cc" "tests/CMakeFiles/sync_test.dir/sync/phase_fair_test.cc.o" "gcc" "tests/CMakeFiles/sync_test.dir/sync/phase_fair_test.cc.o.d"
  "/root/repo/tests/sync/rw_lock_test.cc" "tests/CMakeFiles/sync_test.dir/sync/rw_lock_test.cc.o" "gcc" "tests/CMakeFiles/sync_test.dir/sync/rw_lock_test.cc.o.d"
  "/root/repo/tests/sync/seqlock_test.cc" "tests/CMakeFiles/sync_test.dir/sync/seqlock_test.cc.o" "gcc" "tests/CMakeFiles/sync_test.dir/sync/seqlock_test.cc.o.d"
  "/root/repo/tests/sync/shfllock_test.cc" "tests/CMakeFiles/sync_test.dir/sync/shfllock_test.cc.o" "gcc" "tests/CMakeFiles/sync_test.dir/sync/shfllock_test.cc.o.d"
  "/root/repo/tests/sync/torture_test.cc" "tests/CMakeFiles/sync_test.dir/sync/torture_test.cc.o" "gcc" "tests/CMakeFiles/sync_test.dir/sync/torture_test.cc.o.d"
  "/root/repo/tests/sync/wait_event_test.cc" "tests/CMakeFiles/sync_test.dir/sync/wait_event_test.cc.o" "gcc" "tests/CMakeFiles/sync_test.dir/sync/wait_event_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/concord_kernelsim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/concord_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/concord_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/concord_bpf.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/concord_sync.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/concord_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/concord_rcu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/concord_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
