file(REMOVE_RECURSE
  "CMakeFiles/live_switching.dir/live_switching.cpp.o"
  "CMakeFiles/live_switching.dir/live_switching.cpp.o.d"
  "live_switching"
  "live_switching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/live_switching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
