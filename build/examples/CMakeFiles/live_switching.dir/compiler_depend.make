# Empty compiler generated dependencies file for live_switching.
# This may be replaced when dependencies are built.
