# Empty dependencies file for fairness_watchdog.
# This may be replaced when dependencies are built.
