file(REMOVE_RECURSE
  "CMakeFiles/fairness_watchdog.dir/fairness_watchdog.cpp.o"
  "CMakeFiles/fairness_watchdog.dir/fairness_watchdog.cpp.o.d"
  "fairness_watchdog"
  "fairness_watchdog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fairness_watchdog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
