# Empty dependencies file for lock_profiler.
# This may be replaced when dependencies are built.
