file(REMOVE_RECURSE
  "CMakeFiles/lock_profiler.dir/lock_profiler.cpp.o"
  "CMakeFiles/lock_profiler.dir/lock_profiler.cpp.o.d"
  "lock_profiler"
  "lock_profiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lock_profiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
