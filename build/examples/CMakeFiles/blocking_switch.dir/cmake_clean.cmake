file(REMOVE_RECURSE
  "CMakeFiles/blocking_switch.dir/blocking_switch.cpp.o"
  "CMakeFiles/blocking_switch.dir/blocking_switch.cpp.o.d"
  "blocking_switch"
  "blocking_switch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blocking_switch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
