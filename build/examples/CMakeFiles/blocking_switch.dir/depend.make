# Empty dependencies file for blocking_switch.
# This may be replaced when dependencies are built.
