// Fuzz-style robustness tests for the verifier/VM pair.
//
// The safety contract: the verifier never crashes on arbitrary input, and
// any program it admits terminates within the instruction budget without
// touching memory outside its sandbox. We drive both with deterministic
// pseudo-random instruction streams.

#include <gtest/gtest.h>

#include "src/base/rng.h"
#include "src/bpf/jit/jit.h"
#include "src/bpf/verifier.h"
#include "src/bpf/vm.h"

namespace concord {
namespace {

struct FuzzCtx {
  std::uint64_t a;
  std::uint64_t b;
  std::uint32_t rw;
  std::uint32_t pad;
};

const ContextDescriptor& Desc() {
  static const ContextDescriptor desc("fuzz_ctx", sizeof(FuzzCtx),
                                      {{"a", 0, 8, false},
                                       {"b", 8, 8, false},
                                       {"rw", 16, 4, true}});
  return desc;
}

Insn RandomInsn(Xoshiro256& rng) {
  Insn insn;
  insn.opcode = static_cast<std::uint8_t>(rng.NextBounded(256));
  insn.dst = static_cast<std::uint8_t>(rng.NextBounded(16));
  insn.src = static_cast<std::uint8_t>(rng.NextBounded(16));
  insn.off = static_cast<std::int16_t>(rng.Next());
  insn.imm = static_cast<std::int32_t>(rng.Next());
  return insn;
}

TEST(VerifierFuzzTest, SingleInstructionSweepNeverCrashes) {
  // Every possible opcode byte as a one-instruction program (plus exit).
  for (int opcode = 0; opcode < 256; ++opcode) {
    for (int variant = 0; variant < 4; ++variant) {
      Program program;
      program.name = "sweep";
      program.ctx_desc = &Desc();
      Insn insn;
      insn.opcode = static_cast<std::uint8_t>(opcode);
      insn.dst = static_cast<std::uint8_t>(variant * 3 % 11);
      insn.src = static_cast<std::uint8_t>(variant * 7 % 11);
      insn.off = static_cast<std::int16_t>(variant - 2);
      insn.imm = variant * 1000 - 1500;
      program.insns = {MovImm(0, 0), insn, Exit()};
      Verifier::Verify(program);  // must not crash; outcome is irrelevant
    }
  }
  SUCCEED();
}

TEST(VerifierFuzzTest, RandomProgramsNeverCrashVerifier) {
  Xoshiro256 rng(0xfadedbee);
  int accepted = 0;
  for (int round = 0; round < 3000; ++round) {
    Program program;
    program.name = "fuzz";
    program.ctx_desc = &Desc();
    const std::size_t length = 1 + rng.NextBounded(24);
    for (std::size_t i = 0; i < length; ++i) {
      program.insns.push_back(RandomInsn(rng));
    }
    program.insns.push_back(Exit());
    if (Verifier::Verify(program).ok()) {
      ++accepted;
      // Anything admitted must run to completion safely.
      FuzzCtx ctx{rng.Next(), rng.Next(), 0, 0};
      BpfVm::Run(program, &ctx);
    }
  }
  // Random bytes overwhelmingly fail verification; a handful of trivial
  // ALU-only programs may pass. Both extremes (0 accepted, all crash-free)
  // are acceptable; the assertion is simply that we got here.
  SUCCEED();
  (void)accepted;
}

TEST(VerifierFuzzTest, BiasedRandomProgramsAcceptedOnesAreSafe) {
  // Bias generation toward plausible instructions so a meaningful fraction
  // verifies; every accepted program must terminate and leave the context's
  // read-only fields untouched.
  Xoshiro256 rng(0x5eed);
  int accepted = 0;
  for (int round = 0; round < 3000; ++round) {
    Program program;
    program.name = "biased";
    program.ctx_desc = &Desc();
    const std::size_t length = 1 + rng.NextBounded(12);
    for (std::size_t i = 0; i < length; ++i) {
      switch (rng.NextBounded(6)) {
        case 0:
          program.insns.push_back(
              MovImm(static_cast<std::uint8_t>(rng.NextBounded(10)),
                     static_cast<std::int32_t>(rng.Next())));
          break;
        case 1:
          program.insns.push_back(
              AluImm(static_cast<std::uint8_t>(rng.NextBounded(13)) << 4,
                     static_cast<std::uint8_t>(rng.NextBounded(10)),
                     static_cast<std::int32_t>(rng.NextBounded(1000)) + 1));
          break;
        case 2:
          program.insns.push_back(
              AluReg(static_cast<std::uint8_t>(rng.NextBounded(13)) << 4,
                     static_cast<std::uint8_t>(rng.NextBounded(10)),
                     static_cast<std::uint8_t>(rng.NextBounded(10))));
          break;
        case 3:
          program.insns.push_back(
              LoadMem(kBpfSizeDw, static_cast<std::uint8_t>(rng.NextBounded(10)),
                      1, static_cast<std::int16_t>(rng.NextBounded(3) * 8)));
          break;
        case 4:
          program.insns.push_back(JmpImm(
              kBpfJeq, static_cast<std::uint8_t>(rng.NextBounded(10)),
              static_cast<std::int32_t>(rng.NextBounded(4)),
              static_cast<std::int16_t>(rng.NextBounded(3))));
          break;
        case 5:
          program.insns.push_back(
              StoreMemImm(kBpfSizeDw, 10,
                          -8 * (1 + static_cast<std::int16_t>(rng.NextBounded(8))),
                          static_cast<std::int32_t>(rng.Next())));
          break;
      }
    }
    program.insns.push_back(MovImm(0, 7));
    program.insns.push_back(Exit());

    if (!Verifier::Verify(program).ok()) {
      continue;
    }
    ++accepted;
    FuzzCtx ctx{rng.Next(), rng.Next(), 0, 0};
    const FuzzCtx before = ctx;
    BpfVm::Run(program, &ctx);
    // Read-only fields must never change; rw is the only writable field and
    // none of the generated stores target the context.
    EXPECT_EQ(ctx.a, before.a);
    EXPECT_EQ(ctx.b, before.b);
  }
  // The bias should produce a healthy acceptance rate.
  EXPECT_GT(accepted, 100);
}

TEST(VerifierFuzzTest, LoopMutatorAcceptedProgramsTerminateAndMatchJit) {
  // Loop-generating mutator: every program is a counted loop around a random
  // body; mutations sometimes drop the counter increment (unbounded — must be
  // rejected, never crash). The differential invariant for accepted programs:
  // the interpreter terminates within its instruction budget without a trap,
  // and the JIT computes bit-identical results.
  Xoshiro256 rng(0x100b5);
  // A tight trip budget keeps the unbounded mutants cheap to reject; every
  // generated bound stays below it.
  Verifier::Options options;
  options.max_loop_trips = 256;
  int accepted = 0;
  int rejected = 0;
  for (int round = 0; round < 600; ++round) {
    Program program;
    program.name = "loopfuzz";
    program.ctx_desc = &Desc();
    auto& insns = program.insns;
    insns.push_back(MovImm(0, 0));
    insns.push_back(MovImm(2, 0));  // loop counter
    insns.push_back(MovImm(4, static_cast<std::int32_t>(rng.NextBounded(64))));
    insns.push_back(LoadMem(kBpfSizeDw, 3, 1,
                            static_cast<std::int16_t>(rng.NextBounded(2) * 8)));
    const std::size_t body_start = insns.size();
    const std::size_t body_len = 1 + rng.NextBounded(5);
    for (std::size_t i = 0; i < body_len; ++i) {
      switch (rng.NextBounded(6)) {
        case 0:
          insns.push_back(AluImm(
              kBpfAdd, static_cast<std::uint8_t>(rng.NextBounded(2) * 4),
              static_cast<std::int32_t>(rng.NextBounded(1000)) - 500));
          break;
        case 1:
          insns.push_back(AluReg(kBpfAdd, 0, 3));
          break;
        case 2:
          insns.push_back(AluReg(kBpfXor, 0, 4));
          break;
        case 3:
          insns.push_back(AluImm(
              kBpfAnd, 3, static_cast<std::int32_t>(rng.NextBounded(255)) + 1));
          break;
        case 4:
          insns.push_back(StoreMemImm(
              kBpfSizeDw, 10,
              static_cast<std::int16_t>(-8 * (1 + rng.NextBounded(4))),
              static_cast<std::int32_t>(rng.Next())));
          break;
        case 5:
          // Forward skip on a constant: folds in the verifier, real at
          // runtime.
          insns.push_back(
              JmpImm(kBpfJeq, 4, static_cast<std::int32_t>(rng.NextBounded(64)),
                     1));
          break;
      }
    }
    // Mutation: one round in ten drops the increment — the loop makes no
    // progress toward the bound and must be rejected.
    if (rng.NextBounded(10) != 0) {
      insns.push_back(AluImm(
          kBpfAdd, 2, static_cast<std::int32_t>(rng.NextBounded(3)) + 1));
    }
    const std::size_t jmp_pc = insns.size();
    insns.push_back(JmpImm(
        kBpfJlt, 2, static_cast<std::int32_t>(rng.NextBounded(200)) + 1,
        static_cast<std::int16_t>(static_cast<std::int64_t>(body_start) -
                                  static_cast<std::int64_t>(jmp_pc) - 1)));
    insns.push_back(Exit());

    if (!Verifier::Verify(program, options).ok()) {
      ++rejected;
      continue;
    }
    ++accepted;
    FuzzCtx ctx{rng.Next(), rng.Next(), 0, 0};
    const std::uint64_t vm_result = BpfVm::Run(program, &ctx);
    if (Jit::Supported()) {
      auto compiled = Jit::Compile(program);
      ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
      EXPECT_EQ(compiled.value()->Run(program, &ctx), vm_result)
          << "JIT diverged from interpreter on a looped program (round "
          << round << ")";
    }
  }
  // The mutator must exercise both outcomes: plenty of admitted loops and
  // every increment-dropping mutation rejected.
  EXPECT_GT(accepted, 150);
  EXPECT_GT(rejected, 40);
}

}  // namespace
}  // namespace concord
