// Fuzz-style robustness tests for the verifier/VM pair.
//
// The safety contract: the verifier never crashes on arbitrary input, and
// any program it admits terminates within the instruction budget without
// touching memory outside its sandbox. We drive both with deterministic
// pseudo-random instruction streams.

#include <gtest/gtest.h>

#include "src/base/rng.h"
#include "src/bpf/verifier.h"
#include "src/bpf/vm.h"

namespace concord {
namespace {

struct FuzzCtx {
  std::uint64_t a;
  std::uint64_t b;
  std::uint32_t rw;
  std::uint32_t pad;
};

const ContextDescriptor& Desc() {
  static const ContextDescriptor desc("fuzz_ctx", sizeof(FuzzCtx),
                                      {{"a", 0, 8, false},
                                       {"b", 8, 8, false},
                                       {"rw", 16, 4, true}});
  return desc;
}

Insn RandomInsn(Xoshiro256& rng) {
  Insn insn;
  insn.opcode = static_cast<std::uint8_t>(rng.NextBounded(256));
  insn.dst = static_cast<std::uint8_t>(rng.NextBounded(16));
  insn.src = static_cast<std::uint8_t>(rng.NextBounded(16));
  insn.off = static_cast<std::int16_t>(rng.Next());
  insn.imm = static_cast<std::int32_t>(rng.Next());
  return insn;
}

TEST(VerifierFuzzTest, SingleInstructionSweepNeverCrashes) {
  // Every possible opcode byte as a one-instruction program (plus exit).
  for (int opcode = 0; opcode < 256; ++opcode) {
    for (int variant = 0; variant < 4; ++variant) {
      Program program;
      program.name = "sweep";
      program.ctx_desc = &Desc();
      Insn insn;
      insn.opcode = static_cast<std::uint8_t>(opcode);
      insn.dst = static_cast<std::uint8_t>(variant * 3 % 11);
      insn.src = static_cast<std::uint8_t>(variant * 7 % 11);
      insn.off = static_cast<std::int16_t>(variant - 2);
      insn.imm = variant * 1000 - 1500;
      program.insns = {MovImm(0, 0), insn, Exit()};
      Verifier::Verify(program);  // must not crash; outcome is irrelevant
    }
  }
  SUCCEED();
}

TEST(VerifierFuzzTest, RandomProgramsNeverCrashVerifier) {
  Xoshiro256 rng(0xfadedbee);
  int accepted = 0;
  for (int round = 0; round < 3000; ++round) {
    Program program;
    program.name = "fuzz";
    program.ctx_desc = &Desc();
    const std::size_t length = 1 + rng.NextBounded(24);
    for (std::size_t i = 0; i < length; ++i) {
      program.insns.push_back(RandomInsn(rng));
    }
    program.insns.push_back(Exit());
    if (Verifier::Verify(program).ok()) {
      ++accepted;
      // Anything admitted must run to completion safely.
      FuzzCtx ctx{rng.Next(), rng.Next(), 0, 0};
      BpfVm::Run(program, &ctx);
    }
  }
  // Random bytes overwhelmingly fail verification; a handful of trivial
  // ALU-only programs may pass. Both extremes (0 accepted, all crash-free)
  // are acceptable; the assertion is simply that we got here.
  SUCCEED();
  (void)accepted;
}

TEST(VerifierFuzzTest, BiasedRandomProgramsAcceptedOnesAreSafe) {
  // Bias generation toward plausible instructions so a meaningful fraction
  // verifies; every accepted program must terminate and leave the context's
  // read-only fields untouched.
  Xoshiro256 rng(0x5eed);
  int accepted = 0;
  for (int round = 0; round < 3000; ++round) {
    Program program;
    program.name = "biased";
    program.ctx_desc = &Desc();
    const std::size_t length = 1 + rng.NextBounded(12);
    for (std::size_t i = 0; i < length; ++i) {
      switch (rng.NextBounded(6)) {
        case 0:
          program.insns.push_back(
              MovImm(static_cast<std::uint8_t>(rng.NextBounded(10)),
                     static_cast<std::int32_t>(rng.Next())));
          break;
        case 1:
          program.insns.push_back(
              AluImm(static_cast<std::uint8_t>(rng.NextBounded(13)) << 4,
                     static_cast<std::uint8_t>(rng.NextBounded(10)),
                     static_cast<std::int32_t>(rng.NextBounded(1000)) + 1));
          break;
        case 2:
          program.insns.push_back(
              AluReg(static_cast<std::uint8_t>(rng.NextBounded(13)) << 4,
                     static_cast<std::uint8_t>(rng.NextBounded(10)),
                     static_cast<std::uint8_t>(rng.NextBounded(10))));
          break;
        case 3:
          program.insns.push_back(
              LoadMem(kBpfSizeDw, static_cast<std::uint8_t>(rng.NextBounded(10)),
                      1, static_cast<std::int16_t>(rng.NextBounded(3) * 8)));
          break;
        case 4:
          program.insns.push_back(JmpImm(
              kBpfJeq, static_cast<std::uint8_t>(rng.NextBounded(10)),
              static_cast<std::int32_t>(rng.NextBounded(4)),
              static_cast<std::int16_t>(rng.NextBounded(3))));
          break;
        case 5:
          program.insns.push_back(
              StoreMemImm(kBpfSizeDw, 10,
                          -8 * (1 + static_cast<std::int16_t>(rng.NextBounded(8))),
                          static_cast<std::int32_t>(rng.Next())));
          break;
      }
    }
    program.insns.push_back(MovImm(0, 7));
    program.insns.push_back(Exit());

    if (!Verifier::Verify(program).ok()) {
      continue;
    }
    ++accepted;
    FuzzCtx ctx{rng.Next(), rng.Next(), 0, 0};
    const FuzzCtx before = ctx;
    BpfVm::Run(program, &ctx);
    // Read-only fields must never change; rw is the only writable field and
    // none of the generated stores target the context.
    EXPECT_EQ(ctx.a, before.a);
    EXPECT_EQ(ctx.b, before.b);
  }
  // The bias should produce a healthy acceptance rate.
  EXPECT_GT(accepted, 100);
}

}  // namespace
}  // namespace concord
