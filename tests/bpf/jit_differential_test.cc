// Differential fuzzing: JIT vs interpreter on random verified programs.
//
// The JIT's correctness contract is "bit-for-bit the interpreter, faster".
// These tests generate thousands of pseudo-random programs — straight-line
// ALU soup, forward-branchy programs, helper-calling programs, map-touching
// programs — verify them, and require both execution tiers to agree on R0,
// on context bytes, and (for maps) on the full map contents. Stack effects
// are folded into R0 by a fixed epilogue so divergence in any store surfaces
// as an R0 mismatch. Finally, every shipped policy program from
// src/concord/policies.cc is run through both tiers on randomized contexts.
//
// Only deterministic helpers (the Self()-reading id/topology getters) are
// generated; ktime_get_ns would trivially diverge between two runs.

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "src/base/rng.h"
#include "src/bpf/analysis/wcet.h"
#include "src/bpf/jit/jit.h"
#include "src/bpf/maps.h"
#include "src/bpf/verifier.h"
#include "src/bpf/vm.h"
#include "src/concord/policies.h"

namespace concord {
namespace {

struct DiffCtx {
  std::uint64_t a;
  std::uint64_t b;
};

const ContextDescriptor& Desc() {
  static const ContextDescriptor desc("jit_diff_ctx", sizeof(DiffCtx),
                                      {{"a", 0, 8, false},
                                       {"b", 8, 8, false}});
  return desc;
}

constexpr std::uint8_t kBinaryAluOps[] = {
    kBpfAdd, kBpfSub, kBpfMul, kBpfDiv, kBpfOr,  kBpfAnd,
    kBpfLsh, kBpfRsh, kBpfMod, kBpfXor, kBpfMov, kBpfArsh,
};
constexpr std::uint8_t kCondJmpOps[] = {
    kBpfJeq, kBpfJgt,  kBpfJge,  kBpfJset, kBpfJne, kBpfJsgt,
    kBpfJsge, kBpfJlt, kBpfJle,  kBpfJslt, kBpfJsle,
};
// Deterministic no-argument helpers (same thread => same result).
constexpr std::uint32_t kDeterministicHelpers[] = {
    kHelperGetSmpProcessorId, kHelperGetNumaNodeId, kHelperGetCurrentTaskId,
    kHelperGetTaskPriority,   kHelperGetTaskClass,  kHelperGetLocksHeld,
    kHelperGetCsEwmaNs,
};

// Tracks which registers are initialized on *every* path. After the first
// (forward) jump, conservatively stop admitting new registers: a register
// initialized only on the fall-through path is uninitialized on the taken
// path and the verifier would reject its use.
class InitTracker {
 public:
  InitTracker() {
    for (std::uint8_t r : {0, 2, 3, 4, 5}) {
      init_[r] = true;  // set by the generator prologue
    }
  }
  void MarkJump() { frozen_ = true; }
  void MarkWrite(std::uint8_t reg) {
    if (!frozen_) {
      init_[reg] = true;
    }
  }
  void MarkHelperCall() {
    // r0 gets the result; r1-r5 are clobbered on every path.
    init_[0] = true;  // safe even when frozen: true on both paths already
    for (int r = 1; r <= 5; ++r) {
      init_[r] = false;
    }
  }
  // A random initialized register usable as an ALU/store operand (never r1,
  // which holds the context pointer until the first call clobbers it).
  std::uint8_t Pick(Xoshiro256& rng) const {
    std::uint8_t candidates[11];
    int n = 0;
    for (std::uint8_t r = 0; r < 10; ++r) {
      if (r != 1 && init_[r]) {
        candidates[n++] = r;
      }
    }
    return candidates[rng.NextBounded(static_cast<std::uint64_t>(n))];
  }

 private:
  bool init_[11] = {};
  bool frozen_ = false;
};

// One aligned random (size, offset) pair inside the two prologue-initialized
// stack double-words at [r10-8] and [r10-16].
std::int16_t RandomSlotOffset(Xoshiro256& rng, int width) {
  const std::int16_t base = rng.NextBounded(2) == 0 ? -8 : -16;
  const std::int16_t lanes = static_cast<std::int16_t>(8 / width);
  return static_cast<std::int16_t>(
      base + width * static_cast<std::int16_t>(rng.NextBounded(lanes)));
}

std::uint8_t RandomWidth(Xoshiro256& rng, int* width_bytes) {
  switch (rng.NextBounded(4)) {
    case 0:
      *width_bytes = 1;
      return kBpfSizeB;
    case 1:
      *width_bytes = 2;
      return kBpfSizeH;
    case 2:
      *width_bytes = 4;
      return kBpfSizeW;
    default:
      *width_bytes = 8;
      return kBpfSizeDw;
  }
}

// Generates one random program: fixed prologue (ctx loads + register and
// stack-slot seeds), `body_len` random single-slot instructions, and a fixed
// epilogue folding both stack slots into R0.
Program GenerateProgram(Xoshiro256& rng, bool with_helpers) {
  std::vector<Insn> insns;
  insns.push_back(LoadMem(kBpfSizeDw, 2, 1, 0));  // r2 = ctx.a
  insns.push_back(LoadMem(kBpfSizeDw, 3, 1, 8));  // r3 = ctx.b
  insns.push_back(MovImm(0, static_cast<std::int32_t>(rng.Next())));
  insns.push_back(MovImm(4, static_cast<std::int32_t>(rng.Next())));
  insns.push_back(MovImm(5, static_cast<std::int32_t>(rng.Next())));
  insns.push_back(
      StoreMemImm(kBpfSizeDw, 10, -8, static_cast<std::int32_t>(rng.Next())));
  insns.push_back(
      StoreMemImm(kBpfSizeDw, 10, -16, static_cast<std::int32_t>(rng.Next())));

  InitTracker init;
  const std::size_t body_len = 8 + rng.NextBounded(40);
  for (std::size_t i = 0; i < body_len; ++i) {
    const bool is64 = rng.NextBounded(2) == 0;
    if (with_helpers && rng.NextBounded(6) == 0) {
      insns.push_back(Call(static_cast<std::int32_t>(
          kDeterministicHelpers[rng.NextBounded(
              std::size(kDeterministicHelpers))])));
      init.MarkHelperCall();
      continue;
    }
    switch (rng.NextBounded(10)) {
      case 0:
      case 1:
      case 2: {  // ALU reg
        const std::uint8_t op = kBinaryAluOps[rng.NextBounded(
            std::size(kBinaryAluOps))];
        const std::uint8_t dst = init.Pick(rng);
        insns.push_back(AluReg(op, dst, init.Pick(rng), is64));
        init.MarkWrite(dst);
        break;
      }
      case 3:
      case 4: {  // ALU imm
        const std::uint8_t op = kBinaryAluOps[rng.NextBounded(
            std::size(kBinaryAluOps))];
        std::int32_t imm = static_cast<std::int32_t>(rng.Next());
        if (op == kBpfDiv || op == kBpfMod) {
          imm |= 1;  // the verifier rejects constant-zero divisors
        } else if (op == kBpfLsh || op == kBpfRsh || op == kBpfArsh) {
          imm &= is64 ? 63 : 31;
        }
        const std::uint8_t dst = init.Pick(rng);
        insns.push_back(AluImm(op, dst, imm, is64));
        init.MarkWrite(dst);
        break;
      }
      case 5: {  // neg
        const std::uint8_t dst = init.Pick(rng);
        insns.push_back(AluImm(kBpfNeg, dst, 0, is64));
        init.MarkWrite(dst);
        break;
      }
      case 6: {  // forward jump (conditional, or unconditional for JMP64)
        const std::int16_t off =
            static_cast<std::int16_t>(rng.NextBounded(body_len - i));
        if (is64 && rng.NextBounded(8) == 0) {
          insns.push_back(Jump(off));
        } else {
          const std::uint8_t op = kCondJmpOps[rng.NextBounded(
              std::size(kCondJmpOps))];
          if (rng.NextBounded(2) == 0) {
            insns.push_back(
                JmpReg(op, init.Pick(rng), init.Pick(rng), off, is64));
          } else {
            insns.push_back(JmpImm(op, init.Pick(rng),
                                   static_cast<std::int32_t>(rng.Next()), off,
                                   is64));
          }
        }
        init.MarkJump();
        break;
      }
      case 7: {  // stack store (register)
        int width = 0;
        const std::uint8_t size = RandomWidth(rng, &width);
        insns.push_back(
            StoreMemReg(size, 10, init.Pick(rng), RandomSlotOffset(rng, width)));
        break;
      }
      case 8: {  // stack load
        int width = 0;
        const std::uint8_t size = RandomWidth(rng, &width);
        const std::uint8_t dst = init.Pick(rng);
        insns.push_back(LoadMem(size, dst, 10, RandomSlotOffset(rng, width)));
        init.MarkWrite(dst);
        break;
      }
      default: {  // atomic add (word or double-word)
        const bool dw = rng.NextBounded(2) == 0;
        insns.push_back(AtomicAdd(dw ? kBpfSizeDw : kBpfSizeW, 10,
                                  init.Pick(rng),
                                  RandomSlotOffset(rng, dw ? 8 : 4)));
        break;
      }
    }
  }
  // Epilogue: every jump targets at most this point; fold the stack into r0
  // so any divergent store shows up in the result.
  insns.push_back(LoadMem(kBpfSizeDw, 6, 10, -8));
  insns.push_back(AluReg(kBpfXor, 0, 6));
  insns.push_back(LoadMem(kBpfSizeDw, 7, 10, -16));
  insns.push_back(AluReg(kBpfXor, 0, 7));
  insns.push_back(Exit());

  Program program;
  program.name = "jit_diff";
  program.ctx_desc = &Desc();
  program.insns = std::move(insns);
  return program;
}

// Runs `rounds` random programs through both tiers. Programs the verifier
// rejects (e.g. a div by a register it proved zero, or a jump-shadowed
// init) are skipped; the acceptance rate must stay high enough for the test
// to mean something.
void RunDifferentialRounds(std::uint64_t seed, int rounds, bool with_helpers) {
  Xoshiro256 rng(seed);
  int accepted = 0;
  for (int round = 0; round < rounds; ++round) {
    Program program = GenerateProgram(rng, with_helpers);
    Verifier::Analysis analysis;
    if (!Verifier::Verify(program, Verifier::Options{}, &analysis).ok()) {
      continue;
    }
    ++accepted;

    // The certifier's instruction-count bound must dominate every actual
    // execution — the WCET gate is only sound if no verified program can
    // out-run its static bound.
    const WcetReport wcet = ComputeWcet(program, analysis);

    auto compiled = Jit::Compile(program);
    ASSERT_TRUE(compiled.ok())
        << "round " << round << ": " << compiled.status().ToString();

    for (int input = 0; input < 3; ++input) {
      DiffCtx ctx{rng.Next(), rng.Next()};
      DiffCtx interp_ctx = ctx;
      DiffCtx jit_ctx = ctx;
      std::uint64_t steps = 0;
      const std::uint64_t want = BpfVm::Run(program, &interp_ctx, nullptr,
                                            &steps);
      const std::uint64_t got = compiled.value()->Run(program, &jit_ctx);
      ASSERT_EQ(want, got) << "round " << round << " input " << input
                           << " a=" << ctx.a << " b=" << ctx.b;
      ASSERT_EQ(std::memcmp(&interp_ctx, &jit_ctx, sizeof(DiffCtx)), 0);
      ASSERT_LE(steps, wcet.max_insns)
          << "round " << round << " input " << input
          << ": measured execution exceeds the certified bound";
    }
  }
  EXPECT_GT(accepted, rounds / 2) << "generator acceptance collapsed";
}

TEST(JitDifferentialTest, RandomAluAndBranchProgramsAgree) {
  if (!Jit::Supported()) GTEST_SKIP() << "no JIT backend";
  RunDifferentialRounds(0x1157c0de, 2500, /*with_helpers=*/false);
}

TEST(JitDifferentialTest, RandomHelperCallingProgramsAgree) {
  if (!Jit::Supported()) GTEST_SKIP() << "no JIT backend";
  RunDifferentialRounds(0xca11ab1e, 1500, /*with_helpers=*/true);
}

TEST(JitDifferentialTest, RandomMapProgramsAgreeIncludingMapState) {
  if (!Jit::Supported()) GTEST_SKIP() << "no JIT backend";
  // Each round: identical 4-slot array maps, a random read-modify-write
  // program; interp mutates one map, native code the other. R0 and all four
  // slots must agree afterwards.
  Xoshiro256 rng(0x3a9c0de5);
  constexpr std::uint8_t kValueOps[] = {kBpfAdd, kBpfSub, kBpfXor,
                                        kBpfOr,  kBpfAnd, kBpfMul};
  for (int round = 0; round < 300; ++round) {
    ArrayMap map_interp("m_interp", 8, 4);
    ArrayMap map_jit("m_jit", 8, 4);
    for (std::uint32_t slot = 0; slot < 4; ++slot) {
      const std::uint64_t seed_value = rng.Next();
      ASSERT_TRUE(map_interp.UpdateTyped(slot, seed_value).ok());
      ASSERT_TRUE(map_jit.UpdateTyped(slot, seed_value).ok());
    }

    const std::int32_t key = static_cast<std::int32_t>(rng.NextBounded(4));
    const std::uint8_t op = kValueOps[rng.NextBounded(std::size(kValueOps))];
    const std::int32_t delta = static_cast<std::int32_t>(rng.Next());

    Program interp_prog;
    interp_prog.name = "jit_diff_map";
    interp_prog.ctx_desc = &Desc();
    interp_prog.maps = {&map_interp};
    interp_prog.insns = {
        StoreMemImm(kBpfSizeW, 10, -4, key),
        MovImm(1, 0),  // map index
        MovReg(2, 10),
        AluImm(kBpfAdd, 2, -4),
        Call(kHelperMapLookupElem),
        JmpImm(kBpfJne, 0, 0, 2),
        MovImm(0, 0),
        Exit(),
        LoadMem(kBpfSizeDw, 3, 0, 0),
        AluImm(op, 3, delta),
        StoreMemReg(kBpfSizeDw, 0, 3, 0),
        MovReg(0, 3),
        Exit(),
    };
    ASSERT_TRUE(Verifier::Verify(interp_prog).ok());

    Program jit_prog = interp_prog;
    jit_prog.maps = {&map_jit};
    auto compiled = Jit::Compile(jit_prog);
    ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();

    DiffCtx ctx{0, 0};
    const std::uint64_t want = BpfVm::Run(interp_prog, &ctx);
    const std::uint64_t got = compiled.value()->Run(jit_prog, &ctx);
    ASSERT_EQ(want, got) << "round " << round;
    for (std::uint32_t slot = 0; slot < 4; ++slot) {
      std::uint64_t via_interp = 0;
      std::uint64_t via_jit = 0;
      ASSERT_TRUE(map_interp.LookupTyped(slot, &via_interp));
      ASSERT_TRUE(map_jit.LookupTyped(slot, &via_jit));
      ASSERT_EQ(via_interp, via_jit) << "round " << round << " slot " << slot;
    }
  }
}

TEST(JitDifferentialTest, PerCpuArrayProgramsAgreeIncludingMapState) {
  if (!Jit::Supported()) GTEST_SKIP() << "no JIT backend";
  // The per-CPU array lookup is the one helper the JIT inlines (constant
  // index -> direct slot address). Twin per-CPU maps, random read-modify-
  // write programs, keys both in and out of range: R0 and every (cpu, slot)
  // lane must match the interpreter bit for bit.
  Xoshiro256 rng(0x9e7cc0de);
  constexpr std::uint8_t kValueOps[] = {kBpfAdd, kBpfSub, kBpfXor,
                                        kBpfOr,  kBpfAnd, kBpfMul};
  constexpr std::uint32_t kCpus = 4;
  for (int round = 0; round < 300; ++round) {
    PerCpuArrayMap map_interp("p_interp", 8, 4, kCpus);
    PerCpuArrayMap map_jit("p_jit", 8, 4, kCpus);
    for (std::uint32_t cpu = 0; cpu < kCpus; ++cpu) {
      for (std::uint32_t slot = 0; slot < 4; ++slot) {
        const std::uint64_t seed_value = rng.Next();
        std::memcpy(map_interp.SlotAt(cpu, slot), &seed_value,
                    sizeof(seed_value));
        std::memcpy(map_jit.SlotAt(cpu, slot), &seed_value,
                    sizeof(seed_value));
      }
    }

    // Every 4th round uses an out-of-range key: both tiers must miss.
    const std::int32_t key = static_cast<std::int32_t>(rng.NextBounded(6));
    const std::uint8_t op = kValueOps[rng.NextBounded(std::size(kValueOps))];
    const std::int32_t delta = static_cast<std::int32_t>(rng.Next());

    Program interp_prog;
    interp_prog.name = "jit_diff_percpu";
    interp_prog.ctx_desc = &Desc();
    interp_prog.maps = {&map_interp};
    interp_prog.insns = {
        StoreMemImm(kBpfSizeW, 10, -4, key),
        MovImm(1, 0),  // map index
        MovReg(2, 10),
        AluImm(kBpfAdd, 2, -4),
        Call(kHelperMapLookupElem),
        JmpImm(kBpfJne, 0, 0, 2),
        MovImm(0, 0),
        Exit(),
        LoadMem(kBpfSizeDw, 3, 0, 0),
        AluImm(op, 3, delta),
        StoreMemReg(kBpfSizeDw, 0, 3, 0),
        MovReg(0, 3),
        Exit(),
    };
    ASSERT_TRUE(Verifier::Verify(interp_prog).ok());
    // The verifier must have resolved the lookup site for the JIT to inline.
    ASSERT_EQ(interp_prog.map_lookup_sites[4], 0);

    Program jit_prog = interp_prog;
    jit_prog.maps = {&map_jit};
    auto compiled = Jit::Compile(jit_prog);
    ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();

    DiffCtx ctx{0, 0};
    const std::uint64_t want = BpfVm::Run(interp_prog, &ctx);
    const std::uint64_t got = compiled.value()->Run(jit_prog, &ctx);
    ASSERT_EQ(want, got) << "round " << round << " key " << key;
    for (std::uint32_t cpu = 0; cpu < kCpus; ++cpu) {
      for (std::uint32_t slot = 0; slot < 4; ++slot) {
        std::uint64_t via_interp = 0;
        std::uint64_t via_jit = 0;
        std::memcpy(&via_interp, map_interp.SlotAt(cpu, slot),
                    sizeof(via_interp));
        std::memcpy(&via_jit, map_jit.SlotAt(cpu, slot), sizeof(via_jit));
        ASSERT_EQ(via_interp, via_jit)
            << "round " << round << " cpu " << cpu << " slot " << slot;
      }
    }
  }
}

// Every policy program this repo ships must execute identically on both
// tiers — this is the ISSUE's acceptance bar for the JIT.
TEST(JitDifferentialTest, BoundedLoopProgramsAgree) {
  if (!Jit::Supported()) GTEST_SKIP() << "no JIT backend";
  // Back edges reach the JIT as backward rel32 fixups; exercise them with a
  // data-dependent loop: (b & 31) + 1 iterations folding a and the counter
  // into r0.
  Program program;
  program.name = "loop_diff";
  program.ctx_desc = &Desc();
  program.insns = {
      LoadMem(kBpfSizeDw, 2, 1, 0),  // r2 = a
      LoadMem(kBpfSizeDw, 3, 1, 8),  // r3 = b
      AluImm(kBpfAnd, 3, 31),
      AluImm(kBpfAdd, 3, 1),  // trips = (b & 31) + 1
      MovImm(0, 0),
      MovImm(4, 0),            // counter
      AluReg(kBpfAdd, 0, 2),   // 6: loop body
      AluReg(kBpfXor, 0, 4),
      AluImm(kBpfAdd, 4, 1),
      JmpReg(kBpfJlt, 4, 3, -4),  // while (counter < trips)
      Exit(),
  };
  Verifier::Analysis analysis;
  ASSERT_TRUE(Verifier::Verify(program, Verifier::Options{}, &analysis).ok());
  const WcetReport wcet = ComputeWcet(program, analysis);
  auto compiled = Jit::Compile(program);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();

  Xoshiro256 rng(0x10071ed);
  for (int round = 0; round < 256; ++round) {
    DiffCtx ctx{rng.Next(), rng.Next()};
    DiffCtx jit_ctx = ctx;
    std::uint64_t steps = 0;
    const std::uint64_t want = BpfVm::Run(program, &ctx, nullptr, &steps);
    const std::uint64_t got = compiled.value()->Run(program, &jit_ctx);
    ASSERT_EQ(want, got) << "round " << round;
    // Data-dependent trip counts (1..32) all stay under the static bound.
    ASSERT_LE(steps, wcet.max_insns) << "round " << round;
  }
}

TEST(JitDifferentialTest, ShippedPoliciesAgreeOnRandomContexts) {
  if (!Jit::Supported()) GTEST_SKIP() << "no JIT backend";
  Xoshiro256 rng(0x90110c1e);

  std::vector<std::pair<std::string, PolicySpec>> specs;
  auto add_tunable = [&specs](const char* label,
                              StatusOr<TunablePolicy> policy) {
    ASSERT_TRUE(policy.ok()) << label << ": " << policy.status().ToString();
    specs.emplace_back(label, std::move(policy.value().spec));
  };
  add_tunable("numa_grouping", MakeNumaGroupingPolicy());
  add_tunable("priority_boost", MakePriorityBoostPolicy());
  add_tunable("lock_inheritance", MakeLockInheritancePolicy());
  add_tunable("scl", MakeSclPolicy());
  add_tunable("amp_fast_core", MakeAmpFastCorePolicy());
  add_tunable("vcpu_preemption", MakeVcpuPreemptionPolicy());
  add_tunable("adaptive_parking", MakeAdaptiveParkingPolicy());
  add_tunable("shuffle_fairness_guard", MakeShuffleFairnessGuard());
  add_tunable("rw_switch", MakeRwSwitchPolicy(RwMode::kNeutral));
  {
    auto profiler = MakeBpfProfilerPolicy();
    ASSERT_TRUE(profiler.ok()) << profiler.status().ToString();
    specs.emplace_back("bpf_profiler", std::move(profiler.value().spec));
  }
  {
    auto census = MakeLockCensusPolicy();
    ASSERT_TRUE(census.ok()) << census.status().ToString();
    specs.emplace_back("lock_census", std::move(census.value().spec));
  }

  int programs_checked = 0;
  for (auto& [label, spec] : specs) {
    ASSERT_TRUE(spec.VerifyAll().ok()) << label;
    for (int k = 0; k < kNumHookKinds; ++k) {
      const auto kind = static_cast<HookKind>(k);
      for (const Program& program : spec.ChainFor(kind).programs) {
        ++programs_checked;
        auto compiled = Jit::Compile(program);
        ASSERT_TRUE(compiled.ok())
            << label << "/" << program.name << ": "
            << compiled.status().ToString();

        const std::uint32_t ctx_size = program.ctx_desc->size();
        const std::size_t words = (ctx_size + 7) / 8;
        for (int round = 0; round < 64; ++round) {
          std::vector<std::uint64_t> ctx(words);
          for (std::uint64_t& word : ctx) {
            word = rng.Next();
          }
          std::vector<std::uint64_t> interp_ctx = ctx;
          std::vector<std::uint64_t> jit_ctx = ctx;
          const std::uint64_t want = BpfVm::Run(program, interp_ctx.data());
          const std::uint64_t got =
              compiled.value()->Run(program, jit_ctx.data());
          ASSERT_EQ(want, got)
              << label << "/" << program.name << " round " << round;
          ASSERT_EQ(std::memcmp(interp_ctx.data(), jit_ctx.data(), ctx_size),
                    0)
              << label << "/" << program.name << " round " << round;
        }
      }
    }
  }
  EXPECT_GT(programs_checked, 0) << "no shipped policy programs were tested";
}

}  // namespace
}  // namespace concord
