#include "src/bpf/maps.h"

#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

namespace concord {
namespace {

TEST(ArrayMapTest, SlotsStartZeroed) {
  ArrayMap map("m", sizeof(std::uint64_t), 4);
  std::uint64_t value = 1;
  ASSERT_TRUE(map.LookupTyped(std::uint32_t{0}, &value));
  EXPECT_EQ(value, 0u);
}

TEST(ArrayMapTest, UpdateLookupRoundTrip) {
  ArrayMap map("m", sizeof(std::uint64_t), 4);
  ASSERT_TRUE(map.UpdateTyped(std::uint32_t{2}, std::uint64_t{99}).ok());
  std::uint64_t value = 0;
  ASSERT_TRUE(map.LookupTyped(std::uint32_t{2}, &value));
  EXPECT_EQ(value, 99u);
}

TEST(ArrayMapTest, OutOfRangeLookupReturnsNull) {
  ArrayMap map("m", 8, 4);
  std::uint32_t key = 4;
  EXPECT_EQ(map.Lookup(&key), nullptr);
}

TEST(ArrayMapTest, OutOfRangeUpdateFails) {
  ArrayMap map("m", 8, 4);
  EXPECT_FALSE(map.UpdateTyped(std::uint32_t{100}, std::uint64_t{1}).ok());
}

TEST(ArrayMapTest, DeleteZeroesSlot) {
  ArrayMap map("m", sizeof(std::uint64_t), 4);
  ASSERT_TRUE(map.UpdateTyped(std::uint32_t{1}, std::uint64_t{5}).ok());
  std::uint32_t key = 1;
  ASSERT_TRUE(map.Delete(&key).ok());
  std::uint64_t value = 7;
  ASSERT_TRUE(map.LookupTyped(std::uint32_t{1}, &value));
  EXPECT_EQ(value, 0u);
}

TEST(ArrayMapTest, LookupPointerIsStable) {
  ArrayMap map("m", 8, 4);
  std::uint32_t key = 3;
  void* first = map.Lookup(&key);
  ASSERT_TRUE(map.UpdateTyped(std::uint32_t{3}, std::uint64_t{1}).ok());
  EXPECT_EQ(map.Lookup(&key), first);
}

TEST(HashMapTest, MissingKeyReturnsNull) {
  HashMap map("h", sizeof(std::uint64_t), sizeof(std::uint64_t), 16);
  std::uint64_t key = 42;
  EXPECT_EQ(map.Lookup(&key), nullptr);
}

TEST(HashMapTest, InsertLookupDelete) {
  HashMap map("h", sizeof(std::uint64_t), sizeof(std::uint64_t), 16);
  ASSERT_TRUE(map.UpdateTyped(std::uint64_t{42}, std::uint64_t{7}).ok());
  EXPECT_EQ(map.Size(), 1u);
  std::uint64_t value = 0;
  ASSERT_TRUE(map.LookupTyped(std::uint64_t{42}, &value));
  EXPECT_EQ(value, 7u);
  std::uint64_t key = 42;
  ASSERT_TRUE(map.Delete(&key).ok());
  EXPECT_EQ(map.Size(), 0u);
  EXPECT_EQ(map.Lookup(&key), nullptr);
}

TEST(HashMapTest, UpdateOverwritesExisting) {
  HashMap map("h", 8, 8, 16);
  ASSERT_TRUE(map.UpdateTyped(std::uint64_t{1}, std::uint64_t{10}).ok());
  ASSERT_TRUE(map.UpdateTyped(std::uint64_t{1}, std::uint64_t{20}).ok());
  EXPECT_EQ(map.Size(), 1u);
  std::uint64_t value = 0;
  ASSERT_TRUE(map.LookupTyped(std::uint64_t{1}, &value));
  EXPECT_EQ(value, 20u);
}

TEST(HashMapTest, FillsToCapacityThenRejects) {
  HashMap map("h", 8, 8, 4);
  for (std::uint64_t k = 0; k < 4; ++k) {
    ASSERT_TRUE(map.UpdateTyped(k, k * 10).ok());
  }
  Status full = map.UpdateTyped(std::uint64_t{99}, std::uint64_t{0});
  EXPECT_EQ(full.code(), StatusCode::kResourceExhausted);
  // Deleting frees capacity again.
  std::uint64_t key = 0;
  ASSERT_TRUE(map.Delete(&key).ok());
  EXPECT_TRUE(map.UpdateTyped(std::uint64_t{99}, std::uint64_t{0}).ok());
}

TEST(HashMapTest, DeleteMissingKeyIsNotFound) {
  HashMap map("h", 8, 8, 4);
  std::uint64_t key = 5;
  EXPECT_EQ(map.Delete(&key).code(), StatusCode::kNotFound);
}

TEST(HashMapTest, ManyKeysAllRetrievable) {
  HashMap map("h", 8, 8, 512);
  for (std::uint64_t k = 0; k < 512; ++k) {
    ASSERT_TRUE(map.UpdateTyped(k, k ^ 0xabcd).ok());
  }
  for (std::uint64_t k = 0; k < 512; ++k) {
    std::uint64_t value = 0;
    ASSERT_TRUE(map.LookupTyped(k, &value));
    EXPECT_EQ(value, k ^ 0xabcd);
  }
}

TEST(HashMapTest, StructKeysCompareByBytes) {
  struct Key {
    std::uint32_t a;
    std::uint32_t b;
  };
  HashMap map("h", sizeof(Key), 8, 16);
  ASSERT_TRUE(map.UpdateTyped(Key{1, 2}, std::uint64_t{12}).ok());
  ASSERT_TRUE(map.UpdateTyped(Key{2, 1}, std::uint64_t{21}).ok());
  std::uint64_t value = 0;
  ASSERT_TRUE(map.LookupTyped(Key{1, 2}, &value));
  EXPECT_EQ(value, 12u);
  ASSERT_TRUE(map.LookupTyped(Key{2, 1}, &value));
  EXPECT_EQ(value, 21u);
}

TEST(HashMapTest, ConcurrentMixedOpsKeepInvariant) {
  HashMap map("h", 8, 8, 1024);
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&map, t] {
      for (std::uint64_t i = 0; i < 500; ++i) {
        const std::uint64_t key = t * 1000 + (i % 100);
        ASSERT_TRUE(map.UpdateTyped(key, i).ok());
        std::uint64_t value = 0;
        ASSERT_TRUE(map.LookupTyped(key, &value));
        if (i % 3 == 0) {
          map.Delete(&key);
        }
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_LE(map.Size(), 1024u);
}

TEST(PerCpuArrayMapTest, SlotsIsolatedPerCpu) {
  PerCpuArrayMap map("p", sizeof(std::uint64_t), 2, /*num_cpus=*/4);
  // Write directly into distinct CPU slots.
  std::uint64_t v1 = 10;
  std::uint64_t v2 = 32;
  std::memcpy(map.SlotAt(0, 0), &v1, sizeof(v1));
  std::memcpy(map.SlotAt(3, 0), &v2, sizeof(v2));
  EXPECT_EQ(map.SumU64(0), 42u);
  EXPECT_EQ(map.SumU64(1), 0u);
}

TEST(PerCpuArrayMapTest, LookupUsesCurrentVcpu) {
  PerCpuArrayMap map("p", sizeof(std::uint64_t), 1, /*num_cpus=*/80);
  // Program-side update: only the calling CPU's slot takes the value.
  const std::uint32_t key = 0;
  const std::uint64_t five = 5;
  ASSERT_TRUE(map.UpdateThisCpu(&key, &five).ok());
  std::uint64_t value = 0;
  ASSERT_TRUE(map.LookupTyped(std::uint32_t{0}, &value));
  EXPECT_EQ(value, 5u);
  EXPECT_EQ(map.SumU64(0), 5u);  // exactly one CPU slot written
}

TEST(PerCpuArrayMapTest, ControlPlaneUpdateWritesAllCpus) {
  // Userspace Update follows the kernel contract: the value lands in every
  // CPU's slot, not just the calling thread's.
  PerCpuArrayMap map("p", sizeof(std::uint64_t), 2, /*num_cpus=*/4);
  ASSERT_TRUE(map.UpdateTyped(std::uint32_t{1}, std::uint64_t{7}).ok());
  for (std::uint32_t cpu = 0; cpu < 4; ++cpu) {
    std::uint64_t v = 0;
    std::memcpy(&v, map.SlotAt(cpu, 1), sizeof(v));
    EXPECT_EQ(v, 7u) << "cpu " << cpu;
  }
  EXPECT_EQ(map.SumU64(1), 28u);
  // Delete likewise clears every CPU's slot.
  std::uint32_t key = 1;
  ASSERT_TRUE(map.Delete(&key).ok());
  EXPECT_EQ(map.SumU64(1), 0u);
}

TEST(PerCpuArrayMapTest, ForEachVisitsEveryCpuSlot) {
  PerCpuArrayMap map("p", sizeof(std::uint64_t), 2, /*num_cpus=*/3);
  for (std::uint32_t cpu = 0; cpu < 3; ++cpu) {
    for (std::uint32_t index = 0; index < 2; ++index) {
      const std::uint64_t v = 100 * cpu + index;
      std::memcpy(map.SlotAt(cpu, index), &v, sizeof(v));
    }
  }
  // Contract: every (key, cpu) pair, same key num_cpus() consecutive times
  // in CPU order. AppendMapDumpJson's key grouping depends on this.
  std::vector<std::uint32_t> keys;
  std::vector<std::uint64_t> values;
  map.ForEach([&](const void* key, const void* value) {
    std::uint32_t k;
    std::uint64_t v;
    std::memcpy(&k, key, sizeof(k));
    std::memcpy(&v, value, sizeof(v));
    keys.push_back(k);
    values.push_back(v);
  });
  EXPECT_EQ(keys, (std::vector<std::uint32_t>{0, 0, 0, 1, 1, 1}));
  EXPECT_EQ(values, (std::vector<std::uint64_t>{0, 100, 200, 1, 101, 201}));
}

TEST(PerCpuArrayMapTest, AggregateAndDumpAllCpus) {
  PerCpuArrayMap map("p", sizeof(std::uint64_t), 1, /*num_cpus=*/4);
  for (std::uint32_t cpu = 0; cpu < 4; ++cpu) {
    const std::uint64_t v = cpu + 1;
    std::memcpy(map.SlotAt(cpu, 0), &v, sizeof(v));
  }
  EXPECT_EQ(map.AggregateU64(0), 1u + 2 + 3 + 4);
  std::vector<std::uint64_t> lanes;
  map.DumpAllCpus(0, [&](std::uint32_t cpu, const void* value) {
    std::uint64_t v;
    std::memcpy(&v, value, sizeof(v));
    EXPECT_EQ(cpu, lanes.size());
    lanes.push_back(v);
  });
  EXPECT_EQ(lanes, (std::vector<std::uint64_t>{1, 2, 3, 4}));
}

// TSan regression for the torn-read fix: per-CPU counter lanes are written
// with atomic adds (the xadd the census policy uses) and stores while a
// reader loops cross-CPU aggregation. Pre-fix, SumU64 did plain 64-bit loads
// racing the writers — a data race under TSan and a torn read on paper.
TEST(PerCpuArrayMapTest, ConcurrentAggregationIsRaceFree) {
  PerCpuArrayMap map("p", sizeof(std::uint64_t), 1, /*num_cpus=*/4);
  constexpr int kWriters = 4;
  constexpr std::uint64_t kIncrements = 20'000;
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&map, w] {
      auto* lane = reinterpret_cast<std::uint64_t*>(
          map.SlotAt(static_cast<std::uint32_t>(w), 0));
      for (std::uint64_t i = 0; i < kIncrements; ++i) {
        __atomic_fetch_add(lane, 1, __ATOMIC_RELAXED);
      }
    });
  }
  std::thread reader([&map] {
    std::uint64_t last = 0;
    for (int i = 0; i < 1000; ++i) {
      const std::uint64_t sum = map.SumU64(0);
      EXPECT_GE(sum, last);  // counters only grow
      last = sum;
    }
  });
  for (auto& writer : writers) {
    writer.join();
  }
  reader.join();
  EXPECT_EQ(map.SumU64(0), kWriters * kIncrements);
}

TEST(PerCpuHashMapTest, ControlPlaneUpdateWritesAllCpus) {
  PerCpuHashMap map("ph", sizeof(std::uint64_t), sizeof(std::uint64_t), 16,
                    /*num_cpus=*/4);
  ASSERT_TRUE(map.UpdateTyped(std::uint64_t{42}, std::uint64_t{3}).ok());
  EXPECT_EQ(map.Size(), 1u);
  std::uint64_t key = 42;
  EXPECT_EQ(map.AggregateU64(&key), 12u);  // 3 in each of 4 CPU slots
}

TEST(PerCpuHashMapTest, UpdateThisCpuWritesOneSlot) {
  PerCpuHashMap map("ph", sizeof(std::uint64_t), sizeof(std::uint64_t), 16,
                    /*num_cpus=*/4);
  const std::uint64_t key = 7;
  const std::uint64_t value = 5;
  ASSERT_TRUE(map.UpdateThisCpu(&key, &value).ok());
  EXPECT_EQ(map.AggregateU64(&key), 5u);  // other CPU slots stayed zero
  EXPECT_NE(map.Lookup(&key), nullptr);   // this thread sees its own slot
}

TEST(PerCpuHashMapTest, DumpAllCpusAndDelete) {
  PerCpuHashMap map("ph", sizeof(std::uint64_t), sizeof(std::uint64_t), 16,
                    /*num_cpus=*/3);
  ASSERT_TRUE(map.UpdateTyped(std::uint64_t{1}, std::uint64_t{9}).ok());
  std::uint64_t key = 1;
  std::vector<std::uint64_t> lanes;
  EXPECT_TRUE(map.DumpAllCpus(&key, [&](std::uint32_t cpu, const void* value) {
    std::uint64_t v;
    std::memcpy(&v, value, sizeof(v));
    EXPECT_EQ(cpu, lanes.size());
    lanes.push_back(v);
  }));
  EXPECT_EQ(lanes, (std::vector<std::uint64_t>{9, 9, 9}));
  std::uint64_t missing = 2;
  EXPECT_FALSE(map.DumpAllCpus(&missing, [](std::uint32_t, const void*) {}));
  ASSERT_TRUE(map.Delete(&key).ok());
  EXPECT_EQ(map.Size(), 0u);
  EXPECT_EQ(map.AggregateU64(&key), 0u);
}

TEST(PerCpuHashMapTest, ForEachVisitsEveryKeyCpuPair) {
  PerCpuHashMap map("ph", sizeof(std::uint64_t), sizeof(std::uint64_t), 16,
                    /*num_cpus=*/2);
  ASSERT_TRUE(map.UpdateTyped(std::uint64_t{10}, std::uint64_t{1}).ok());
  ASSERT_TRUE(map.UpdateTyped(std::uint64_t{20}, std::uint64_t{2}).ok());
  std::vector<std::uint64_t> keys;
  map.ForEach([&](const void* key, const void*) {
    std::uint64_t k;
    std::memcpy(&k, key, sizeof(k));
    keys.push_back(k);
  });
  ASSERT_EQ(keys.size(), 4u);  // 2 keys x 2 cpus
  // Same key appears num_cpus() times consecutively (order of keys is
  // bucket order, unspecified — only the grouping is contractual).
  EXPECT_EQ(keys[0], keys[1]);
  EXPECT_EQ(keys[2], keys[3]);
  EXPECT_NE(keys[0], keys[2]);
}

TEST(PerCpuHashMapTest, RecycledEntriesStartZeroed) {
  PerCpuHashMap map("ph", sizeof(std::uint64_t), sizeof(std::uint64_t), 2,
                    /*num_cpus=*/4);
  const std::uint64_t key = 5;
  const std::uint64_t one = 1;
  ASSERT_TRUE(map.UpdateThisCpu(&key, &one).ok());
  ASSERT_TRUE(map.Delete(&key).ok());
  // Re-inserting through the program path must not resurrect the old
  // counts in *other* CPUs' slots from the recycled pooled entry.
  ASSERT_TRUE(map.UpdateThisCpu(&key, &one).ok());
  EXPECT_EQ(map.AggregateU64(&key), 1u);
}

// The alignment fix: with key_size % 8 != 0 the value region must still be
// 8-byte aligned, otherwise per-CPU u64 lanes fault on strict-alignment
// targets and tear under atomics. Pre-fix the value sat at data+key_size.
TEST(HashMapTest, OddKeySizeKeepsValuesAligned) {
  struct Key {
    std::uint32_t a;
    std::uint32_t b;
    std::uint32_t c;
  };
  static_assert(sizeof(Key) == 12, "key chosen to break 8-byte alignment");
  HashMap map("h", sizeof(Key), sizeof(std::uint64_t), 16);
  ASSERT_TRUE(map.UpdateTyped(Key{1, 2, 3}, std::uint64_t{42}).ok());
  const Key key{1, 2, 3};
  void* value = map.Lookup(&key);
  ASSERT_NE(value, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(value) % 8, 0u);
  std::uint64_t v = 0;
  ASSERT_TRUE(map.LookupTyped(key, &v));
  EXPECT_EQ(v, 42u);

  PerCpuHashMap percpu("ph", sizeof(Key), sizeof(std::uint64_t), 16,
                       /*num_cpus=*/3);
  ASSERT_TRUE(percpu.UpdateTyped(Key{4, 5, 6}, std::uint64_t{1}).ok());
  const Key key2{4, 5, 6};
  percpu.DumpAllCpus(&key2, [](std::uint32_t, const void* lane) {
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(lane) % 8, 0u);
  });
  EXPECT_EQ(percpu.AggregateU64(&key2), 3u);
}

TEST(ArrayMapTest, ForEachVisitsAllSlots) {
  ArrayMap map("m", sizeof(std::uint64_t), 4);
  ASSERT_TRUE(map.UpdateTyped(std::uint32_t{1}, std::uint64_t{10}).ok());
  ASSERT_TRUE(map.UpdateTyped(std::uint32_t{3}, std::uint64_t{30}).ok());
  std::uint64_t sum = 0;
  int visits = 0;
  map.ForEach([&](const void*, const void* value) {
    std::uint64_t v;
    std::memcpy(&v, value, sizeof(v));
    sum += v;
    ++visits;
  });
  EXPECT_EQ(visits, 4);
  EXPECT_EQ(sum, 40u);
}

TEST(HashMapTest, ForEachVisitsLiveEntriesOnly) {
  HashMap map("h", 8, 8, 16);
  for (std::uint64_t k = 0; k < 6; ++k) {
    ASSERT_TRUE(map.UpdateTyped(k, k * 10).ok());
  }
  std::uint64_t key3 = 3;
  ASSERT_TRUE(map.Delete(&key3).ok());
  std::uint64_t key_sum = 0;
  int visits = 0;
  map.ForEach([&](const void* key, const void*) {
    std::uint64_t k;
    std::memcpy(&k, key, sizeof(k));
    key_sum += k;
    ++visits;
  });
  EXPECT_EQ(visits, 5);
  EXPECT_EQ(key_sum, 0u + 1 + 2 + 4 + 5);
}

TEST(CreateMapTest, ValidatesParameters) {
  EXPECT_FALSE(CreateMap(MapType::kArray, "m", 8, 8, 4, 1).ok());   // bad key size
  EXPECT_FALSE(CreateMap(MapType::kArray, "m", 4, 0, 4, 1).ok());   // zero value
  EXPECT_FALSE(CreateMap(MapType::kHash, "m", 0, 8, 4, 1).ok());    // zero key
  EXPECT_FALSE(CreateMap(MapType::kPerCpuArray, "m", 4, 8, 4, 0).ok());  // no cpus
  EXPECT_FALSE(CreateMap(MapType::kPerCpuHash, "m", 8, 8, 4, 0).ok());   // no cpus
  auto ok = CreateMap(MapType::kHash, "m", 8, 8, 4, 1);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ((*ok)->type(), MapType::kHash);
}

TEST(CreateMapTest, PerCpuHashRoundTrip) {
  auto map = CreateMap(MapType::kPerCpuHash, "m", 8, 8, 4, 2);
  ASSERT_TRUE(map.ok());
  EXPECT_EQ((*map)->type(), MapType::kPerCpuHash);
  EXPECT_TRUE((*map)->is_per_cpu());
  EXPECT_EQ((*map)->num_cpus(), 2u);
}

TEST(MapTypeTest, NamesRoundTrip) {
  for (MapType type : {MapType::kArray, MapType::kPerCpuArray, MapType::kHash,
                       MapType::kPerCpuHash}) {
    MapType parsed;
    ASSERT_TRUE(MapTypeFromName(MapTypeName(type), &parsed))
        << MapTypeName(type);
    EXPECT_EQ(parsed, type);
  }
  MapType parsed;
  EXPECT_FALSE(MapTypeFromName("bogus", &parsed));
}

}  // namespace
}  // namespace concord
