#include "src/bpf/maps.h"

#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

namespace concord {
namespace {

TEST(ArrayMapTest, SlotsStartZeroed) {
  ArrayMap map("m", sizeof(std::uint64_t), 4);
  std::uint64_t value = 1;
  ASSERT_TRUE(map.LookupTyped(std::uint32_t{0}, &value));
  EXPECT_EQ(value, 0u);
}

TEST(ArrayMapTest, UpdateLookupRoundTrip) {
  ArrayMap map("m", sizeof(std::uint64_t), 4);
  ASSERT_TRUE(map.UpdateTyped(std::uint32_t{2}, std::uint64_t{99}).ok());
  std::uint64_t value = 0;
  ASSERT_TRUE(map.LookupTyped(std::uint32_t{2}, &value));
  EXPECT_EQ(value, 99u);
}

TEST(ArrayMapTest, OutOfRangeLookupReturnsNull) {
  ArrayMap map("m", 8, 4);
  std::uint32_t key = 4;
  EXPECT_EQ(map.Lookup(&key), nullptr);
}

TEST(ArrayMapTest, OutOfRangeUpdateFails) {
  ArrayMap map("m", 8, 4);
  EXPECT_FALSE(map.UpdateTyped(std::uint32_t{100}, std::uint64_t{1}).ok());
}

TEST(ArrayMapTest, DeleteZeroesSlot) {
  ArrayMap map("m", sizeof(std::uint64_t), 4);
  ASSERT_TRUE(map.UpdateTyped(std::uint32_t{1}, std::uint64_t{5}).ok());
  std::uint32_t key = 1;
  ASSERT_TRUE(map.Delete(&key).ok());
  std::uint64_t value = 7;
  ASSERT_TRUE(map.LookupTyped(std::uint32_t{1}, &value));
  EXPECT_EQ(value, 0u);
}

TEST(ArrayMapTest, LookupPointerIsStable) {
  ArrayMap map("m", 8, 4);
  std::uint32_t key = 3;
  void* first = map.Lookup(&key);
  ASSERT_TRUE(map.UpdateTyped(std::uint32_t{3}, std::uint64_t{1}).ok());
  EXPECT_EQ(map.Lookup(&key), first);
}

TEST(HashMapTest, MissingKeyReturnsNull) {
  HashMap map("h", sizeof(std::uint64_t), sizeof(std::uint64_t), 16);
  std::uint64_t key = 42;
  EXPECT_EQ(map.Lookup(&key), nullptr);
}

TEST(HashMapTest, InsertLookupDelete) {
  HashMap map("h", sizeof(std::uint64_t), sizeof(std::uint64_t), 16);
  ASSERT_TRUE(map.UpdateTyped(std::uint64_t{42}, std::uint64_t{7}).ok());
  EXPECT_EQ(map.Size(), 1u);
  std::uint64_t value = 0;
  ASSERT_TRUE(map.LookupTyped(std::uint64_t{42}, &value));
  EXPECT_EQ(value, 7u);
  std::uint64_t key = 42;
  ASSERT_TRUE(map.Delete(&key).ok());
  EXPECT_EQ(map.Size(), 0u);
  EXPECT_EQ(map.Lookup(&key), nullptr);
}

TEST(HashMapTest, UpdateOverwritesExisting) {
  HashMap map("h", 8, 8, 16);
  ASSERT_TRUE(map.UpdateTyped(std::uint64_t{1}, std::uint64_t{10}).ok());
  ASSERT_TRUE(map.UpdateTyped(std::uint64_t{1}, std::uint64_t{20}).ok());
  EXPECT_EQ(map.Size(), 1u);
  std::uint64_t value = 0;
  ASSERT_TRUE(map.LookupTyped(std::uint64_t{1}, &value));
  EXPECT_EQ(value, 20u);
}

TEST(HashMapTest, FillsToCapacityThenRejects) {
  HashMap map("h", 8, 8, 4);
  for (std::uint64_t k = 0; k < 4; ++k) {
    ASSERT_TRUE(map.UpdateTyped(k, k * 10).ok());
  }
  Status full = map.UpdateTyped(std::uint64_t{99}, std::uint64_t{0});
  EXPECT_EQ(full.code(), StatusCode::kResourceExhausted);
  // Deleting frees capacity again.
  std::uint64_t key = 0;
  ASSERT_TRUE(map.Delete(&key).ok());
  EXPECT_TRUE(map.UpdateTyped(std::uint64_t{99}, std::uint64_t{0}).ok());
}

TEST(HashMapTest, DeleteMissingKeyIsNotFound) {
  HashMap map("h", 8, 8, 4);
  std::uint64_t key = 5;
  EXPECT_EQ(map.Delete(&key).code(), StatusCode::kNotFound);
}

TEST(HashMapTest, ManyKeysAllRetrievable) {
  HashMap map("h", 8, 8, 512);
  for (std::uint64_t k = 0; k < 512; ++k) {
    ASSERT_TRUE(map.UpdateTyped(k, k ^ 0xabcd).ok());
  }
  for (std::uint64_t k = 0; k < 512; ++k) {
    std::uint64_t value = 0;
    ASSERT_TRUE(map.LookupTyped(k, &value));
    EXPECT_EQ(value, k ^ 0xabcd);
  }
}

TEST(HashMapTest, StructKeysCompareByBytes) {
  struct Key {
    std::uint32_t a;
    std::uint32_t b;
  };
  HashMap map("h", sizeof(Key), 8, 16);
  ASSERT_TRUE(map.UpdateTyped(Key{1, 2}, std::uint64_t{12}).ok());
  ASSERT_TRUE(map.UpdateTyped(Key{2, 1}, std::uint64_t{21}).ok());
  std::uint64_t value = 0;
  ASSERT_TRUE(map.LookupTyped(Key{1, 2}, &value));
  EXPECT_EQ(value, 12u);
  ASSERT_TRUE(map.LookupTyped(Key{2, 1}, &value));
  EXPECT_EQ(value, 21u);
}

TEST(HashMapTest, ConcurrentMixedOpsKeepInvariant) {
  HashMap map("h", 8, 8, 1024);
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&map, t] {
      for (std::uint64_t i = 0; i < 500; ++i) {
        const std::uint64_t key = t * 1000 + (i % 100);
        ASSERT_TRUE(map.UpdateTyped(key, i).ok());
        std::uint64_t value = 0;
        ASSERT_TRUE(map.LookupTyped(key, &value));
        if (i % 3 == 0) {
          map.Delete(&key);
        }
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_LE(map.Size(), 1024u);
}

TEST(PerCpuArrayMapTest, SlotsIsolatedPerCpu) {
  PerCpuArrayMap map("p", sizeof(std::uint64_t), 2, /*num_cpus=*/4);
  // Write directly into distinct CPU slots.
  std::uint64_t v1 = 10;
  std::uint64_t v2 = 32;
  std::memcpy(map.SlotAt(0, 0), &v1, sizeof(v1));
  std::memcpy(map.SlotAt(3, 0), &v2, sizeof(v2));
  EXPECT_EQ(map.SumU64(0), 42u);
  EXPECT_EQ(map.SumU64(1), 0u);
}

TEST(PerCpuArrayMapTest, LookupUsesCurrentVcpu) {
  PerCpuArrayMap map("p", sizeof(std::uint64_t), 1, /*num_cpus=*/80);
  ASSERT_TRUE(map.UpdateTyped(std::uint32_t{0}, std::uint64_t{5}).ok());
  std::uint64_t value = 0;
  ASSERT_TRUE(map.LookupTyped(std::uint32_t{0}, &value));
  EXPECT_EQ(value, 5u);
  EXPECT_EQ(map.SumU64(0), 5u);  // exactly one CPU slot written
}

TEST(ArrayMapTest, ForEachVisitsAllSlots) {
  ArrayMap map("m", sizeof(std::uint64_t), 4);
  ASSERT_TRUE(map.UpdateTyped(std::uint32_t{1}, std::uint64_t{10}).ok());
  ASSERT_TRUE(map.UpdateTyped(std::uint32_t{3}, std::uint64_t{30}).ok());
  std::uint64_t sum = 0;
  int visits = 0;
  map.ForEach([&](const void*, const void* value) {
    std::uint64_t v;
    std::memcpy(&v, value, sizeof(v));
    sum += v;
    ++visits;
  });
  EXPECT_EQ(visits, 4);
  EXPECT_EQ(sum, 40u);
}

TEST(HashMapTest, ForEachVisitsLiveEntriesOnly) {
  HashMap map("h", 8, 8, 16);
  for (std::uint64_t k = 0; k < 6; ++k) {
    ASSERT_TRUE(map.UpdateTyped(k, k * 10).ok());
  }
  std::uint64_t key3 = 3;
  ASSERT_TRUE(map.Delete(&key3).ok());
  std::uint64_t key_sum = 0;
  int visits = 0;
  map.ForEach([&](const void* key, const void*) {
    std::uint64_t k;
    std::memcpy(&k, key, sizeof(k));
    key_sum += k;
    ++visits;
  });
  EXPECT_EQ(visits, 5);
  EXPECT_EQ(key_sum, 0u + 1 + 2 + 4 + 5);
}

TEST(CreateMapTest, ValidatesParameters) {
  EXPECT_FALSE(CreateMap(MapType::kArray, "m", 8, 8, 4, 1).ok());   // bad key size
  EXPECT_FALSE(CreateMap(MapType::kArray, "m", 4, 0, 4, 1).ok());   // zero value
  EXPECT_FALSE(CreateMap(MapType::kHash, "m", 0, 8, 4, 1).ok());    // zero key
  EXPECT_FALSE(CreateMap(MapType::kPerCpuArray, "m", 4, 8, 4, 0).ok());  // no cpus
  auto ok = CreateMap(MapType::kHash, "m", 8, 8, 4, 1);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ((*ok)->type(), MapType::kHash);
}

}  // namespace
}  // namespace concord
