// WCET cost-model coverage: the certified bound composes per-instruction
// costs with verifier-proven loop trips, dominates measured execution on
// both tiers, and resolves helper costs by map kind.

#include <gtest/gtest.h>

#include "src/bpf/analysis/wcet.h"
#include "src/bpf/builder.h"
#include "src/bpf/helpers.h"
#include "src/bpf/maps.h"
#include "src/bpf/verifier.h"
#include "src/bpf/vm.h"

namespace concord {
namespace {

struct WCtx {
  std::uint64_t in;
};

const ContextDescriptor& Desc() {
  static const ContextDescriptor desc("wctx", sizeof(WCtx),
                                      {{"in", 0, 8, false}});
  return desc;
}

WcetReport WcetOf(Program& program, Verifier::Analysis* analysis_out = nullptr) {
  Verifier::Analysis analysis;
  Status verdict = Verifier::Verify(program, Verifier::Options{}, &analysis);
  EXPECT_TRUE(verdict.ok()) << verdict.ToString();
  if (analysis_out != nullptr) {
    *analysis_out = analysis;
  }
  return ComputeWcet(program, analysis);
}

TEST(WcetTest, StraightLineCountsEveryInsnOnce) {
  ProgramBuilder b("straight", &Desc());
  b.Mov(0, 1).Add(0, 2).And(0, 3);
  b.Ret();
  auto program = b.Build();
  ASSERT_TRUE(program.ok());

  const WcetReport wcet = WcetOf(*program);
  EXPECT_EQ(wcet.max_insns, 4u);  // 3 ALU + exit
  EXPECT_GT(wcet.interp_ns, 0u);
  EXPECT_GT(wcet.jit_ns, 0u);
  // The interpreter's dispatch loop makes it the slower tier everywhere, so
  // it is what certification gates on.
  EXPECT_GT(wcet.interp_ns, wcet.jit_ns);
  EXPECT_EQ(wcet.certified_ns, wcet.interp_ns);
}

TEST(WcetTest, LddwPairChargedOnce) {
  ProgramBuilder b("lddw", &Desc());
  b.Mov64(0, 0x1234567890abcdefull);  // two slots
  b.And(0, 1);
  b.Ret();
  auto program = b.Build();
  ASSERT_TRUE(program.ok());

  const WcetReport wcet = WcetOf(*program);
  EXPECT_EQ(wcet.max_insns, 3u);  // lddw (once) + and + exit

  // The interpreter's step counter uses the same convention, so the bound
  // and the measurement are comparable.
  ASSERT_TRUE(program->verified);
  WCtx ctx{0};
  std::uint64_t steps = 0;
  BpfVm::Run(*program, &ctx, nullptr, &steps);
  EXPECT_EQ(steps, 3u);
}

TEST(WcetTest, LoopMultiplierBoundsMeasuredSteps) {
  // r0 = 0; for (r2 = 0; r2 < 10; ++r2) r0 += 2;
  ProgramBuilder b("counted", &Desc());
  auto loop = b.NewLabel();
  b.Mov(0, 0).Mov(2, 0).Bind(loop).Add(0, 2).Add(2, 1).JmpIf(kBpfJlt, 2, 10,
                                                             loop);
  b.Ret();
  auto program = b.Build();
  ASSERT_TRUE(program.ok());

  Verifier::Analysis analysis;
  const WcetReport wcet = WcetOf(*program, &analysis);
  ASSERT_EQ(analysis.loops.size(), 1u);
  EXPECT_EQ(analysis.loops[0].max_trips, 9u);

  // 2 setup insns + exit run once; the 3 loop-body insns run 1 + 9 times.
  EXPECT_EQ(wcet.max_insns, 3u + 3u * 10u);

  WCtx ctx{0};
  std::uint64_t steps = 0;
  EXPECT_EQ(BpfVm::Run(*program, &ctx, nullptr, &steps), 20u);
  EXPECT_LE(steps, wcet.max_insns);

  // The hottest instruction sits inside the loop with the full multiplier.
  EXPECT_GE(wcet.hottest_pc, analysis.loops[0].header_pc);
  EXPECT_LE(wcet.hottest_pc, analysis.loops[0].back_edge_pc);
  EXPECT_EQ(wcet.hottest_multiplier, 10u);
}

TEST(WcetTest, LoopInflatesBoundProportionally) {
  auto build = [](std::int32_t trips) {
    ProgramBuilder b("scaled", &Desc());
    auto loop = b.NewLabel();
    b.Mov(0, 0).Mov(2, 0).Bind(loop).Add(0, 1).Add(2, 1).JmpIf(kBpfJlt, 2,
                                                               trips, loop);
    b.Ret();
    return b.Build();
  };
  auto small = build(8);
  auto large = build(800);
  ASSERT_TRUE(small.ok() && large.ok());
  const WcetReport small_wcet = WcetOf(*small);
  const WcetReport large_wcet = WcetOf(*large);
  // ~100x the trips means roughly 100x the bound — well over 10x even with
  // the once-only prologue amortized in.
  EXPECT_GT(large_wcet.certified_ns, small_wcet.certified_ns * 10);
  EXPECT_GT(large_wcet.max_insns, small_wcet.max_insns * 10);
}

TEST(WcetTest, HelperCostResolvesMapKind) {
  auto build = [](BpfMap* map) {
    ProgramBuilder b("lookup", &Desc());
    const std::uint32_t idx = b.DeclareMap(map);
    auto out = b.NewLabel();
    b.StoreImm(kBpfSizeW, 10, -4, 0);
    b.Mov(1, static_cast<std::int32_t>(idx));
    b.MovR(2, 10).Add(2, -4);
    b.CallHelper(kHelperMapLookupElem);
    b.JmpIf(kBpfJeq, 0, 0, out);
    b.Bind(out).Return(0);
    return b.Build();
  };
  ArrayMap array("a", 8, 4);
  HashMap hash("h", 4, 8, 4);
  auto array_prog = build(&array);
  auto hash_prog = build(&hash);
  ASSERT_TRUE(array_prog.ok() && hash_prog.ok());
  const WcetReport array_wcet = WcetOf(*array_prog);
  const WcetReport hash_wcet = WcetOf(*hash_prog);
  // Same instructions, but the hash probe (bucket lock, chain walk) is
  // costed well above the array index check.
  EXPECT_EQ(array_wcet.max_insns, hash_wcet.max_insns);
  EXPECT_GT(hash_wcet.certified_ns, array_wcet.certified_ns + 50);
}

TEST(WcetTest, CostModelOrdersInsnClasses) {
  // Sanity-pin the model's shape rather than its constants: atomics cost
  // more than plain stores, which cost more than ALU, on both tiers.
  const Insn alu = AluImm(kBpfAdd, 0, 1);
  const Insn store = StoreMemReg(kBpfSizeDw, 0, 2, 0);
  const Insn atomic = AtomicAdd(kBpfSizeDw, 0, 2, 0);
  for (const ExecTier tier : {ExecTier::kInterpreter, ExecTier::kJit}) {
    EXPECT_LT(InsnCostNs(alu, tier), InsnCostNs(store, tier));
    EXPECT_LT(InsnCostNs(store, tier), InsnCostNs(atomic, tier));
  }
}

}  // namespace
}  // namespace concord
