// Deterministic edge-case tests for the x86-64 policy-program JIT.
//
// Each case builds a small verified program, runs it through both execution
// tiers — BpfVm::Run (the reference semantics) and Jit::Compile'd native
// code — on identical inputs, and requires identical R0 and identical memory
// side effects. The cases target exactly the spots where x86-64 and BPF
// semantics diverge and the backend must paper over the difference: 32-bit
// zero-extension (especially zero-count shifts), div/mod by zero, CL-based
// shift counts aliasing rcx, sign-extended immediates, and sub-word stores
// of rdi/rsi-mapped registers. Random coverage lives in
// jit_differential_test.cc.

#include "src/bpf/jit/jit.h"

#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

#include "src/bpf/maps.h"
#include "src/bpf/verifier.h"
#include "src/bpf/vm.h"
#include "src/concord/concord.h"
#include "src/concord/policies.h"
#include "src/sync/shfllock.h"

namespace concord {
namespace {

struct TestCtx {
  std::uint64_t a;
  std::uint64_t b;
  std::uint32_t c;
  std::uint32_t out;  // only writable field
};

const ContextDescriptor& TestDesc() {
  static const ContextDescriptor desc("jit_test_ctx", sizeof(TestCtx),
                                      {{"a", 0, 8, false},
                                       {"b", 8, 8, false},
                                       {"c", 16, 4, false},
                                       {"out", 20, 4, true}});
  return desc;
}

Program MakeVerified(std::vector<Insn> insns,
                     std::vector<BpfMap*> maps = {}) {
  Program program;
  program.name = "jit_case";
  program.ctx_desc = &TestDesc();
  program.insns = std::move(insns);
  program.maps = std::move(maps);
  const Status status = Verifier::Verify(program);
  EXPECT_TRUE(status.ok()) << status.ToString();
  return program;
}

// Runs `program` through interpreter and JIT on identical context copies and
// checks R0 and the context bytes agree. Returns the (shared) R0.
std::uint64_t RunBoth(const Program& program, TestCtx ctx = TestCtx{}) {
  TestCtx interp_ctx = ctx;
  TestCtx jit_ctx = ctx;
  const std::uint64_t interp = BpfVm::Run(program, &interp_ctx);

  auto compiled = Jit::Compile(program);
  EXPECT_TRUE(compiled.ok()) << compiled.status().ToString();
  if (!compiled.ok()) {
    return interp;
  }
  const std::uint64_t native = compiled.value()->Run(program, &jit_ctx);
  EXPECT_EQ(interp, native) << "program: " << program.name;
  EXPECT_EQ(std::memcmp(&interp_ctx, &jit_ctx, sizeof(TestCtx)), 0)
      << "context side effects diverge";
  return interp;
}

// Operand values straddling every width/sign boundary the templates care
// about.
constexpr std::uint64_t kEdgeValues[] = {
    0,
    1,
    2,
    0x7f,
    0x80000000ull,
    0xffffffffull,
    0x100000000ull,
    0x7fffffffffffffffull,
    0x8000000000000000ull,
    0xffffffffffffffffull,
};

constexpr std::uint8_t kBinaryAluOps[] = {
    kBpfAdd, kBpfSub, kBpfMul, kBpfDiv, kBpfOr,  kBpfAnd,
    kBpfLsh, kBpfRsh, kBpfMod, kBpfXor, kBpfMov, kBpfArsh,
};

TEST(JitTest, SupportedOnThisPlatform) {
  // The rest of the suite skips when unsupported; this documents that the
  // x86-64 CI legs really exercise the backend.
#if defined(__x86_64__) && CONCORD_ENABLE_JIT
  EXPECT_TRUE(Jit::Supported());
#else
  EXPECT_FALSE(Jit::Supported());
#endif
}

TEST(JitTest, AluRegisterFormsMatchInterpreter) {
  if (!Jit::Supported()) GTEST_SKIP() << "no JIT backend";
  // Operands come from the context so the verifier cannot constant-fold
  // them (it rejects provably-zero divisors; we want the runtime path).
  for (std::uint8_t op : kBinaryAluOps) {
    for (bool is64 : {true, false}) {
      const Program program = MakeVerified({
          LoadMem(kBpfSizeDw, 2, 1, 0),  // r2 = ctx.a
          LoadMem(kBpfSizeDw, 3, 1, 8),  // r3 = ctx.b
          AluReg(op, 2, 3, is64),
          MovReg(0, 2),
          Exit(),
      });
      for (std::uint64_t a : kEdgeValues) {
        for (std::uint64_t b : kEdgeValues) {
          TestCtx ctx{};
          ctx.a = a;
          ctx.b = b;
          RunBoth(program, ctx);
        }
      }
    }
  }
}

TEST(JitTest, AluImmediateFormsMatchInterpreter) {
  if (!Jit::Supported()) GTEST_SKIP() << "no JIT backend";
  constexpr std::int32_t kImms[] = {-2147483647 - 1, -1,        1,
                                    0x7fffffff,      0,         1000,
                                    -7,              0x40000000};
  for (std::uint8_t op : kBinaryAluOps) {
    for (bool is64 : {true, false}) {
      for (std::int32_t imm : kImms) {
        if ((op == kBpfDiv || op == kBpfMod) && imm == 0) {
          continue;  // constant-zero divisor is a verifier error
        }
        std::int32_t used = imm;
        if (op == kBpfLsh || op == kBpfRsh || op == kBpfArsh) {
          used = imm & (is64 ? 63 : 31);  // out-of-range shift imm rejected
        }
        const Program program = MakeVerified({
            LoadMem(kBpfSizeDw, 2, 1, 0),
            AluImm(op, 2, used, is64),
            MovReg(0, 2),
            Exit(),
        });
        for (std::uint64_t a : kEdgeValues) {
          TestCtx ctx{};
          ctx.a = a;
          RunBoth(program, ctx);
        }
      }
    }
  }
}

TEST(JitTest, NegMatchesInterpreter) {
  if (!Jit::Supported()) GTEST_SKIP() << "no JIT backend";
  for (bool is64 : {true, false}) {
    const Program program = MakeVerified({
        LoadMem(kBpfSizeDw, 2, 1, 0),
        AluImm(kBpfNeg, 2, 0, is64),
        MovReg(0, 2),
        Exit(),
    });
    for (std::uint64_t a : kEdgeValues) {
      TestCtx ctx{};
      ctx.a = a;
      RunBoth(program, ctx);
    }
  }
}

TEST(JitTest, ShiftByRegisterCoversRcxAliasing) {
  if (!Jit::Supported()) GTEST_SKIP() << "no JIT backend";
  // BPF r4 maps to rcx, the mandatory x86 shift-count register; exercise
  // every aliasing shape: src==r4, dst==r4, dst==src==r4, neither.
  struct Shape {
    std::uint8_t dst, src;
  };
  constexpr Shape kShapes[] = {{2, 4}, {4, 2}, {4, 4}, {2, 3}};
  constexpr std::uint64_t kCounts[] = {0, 1, 31, 32, 63, 64, 65, 255};
  for (std::uint8_t op : {kBpfLsh, kBpfRsh, kBpfArsh}) {
    for (bool is64 : {true, false}) {
      for (const Shape& shape : kShapes) {
        const Program program = MakeVerified({
            LoadMem(kBpfSizeDw, shape.dst, 1, 0),  // value = ctx.a
            LoadMem(kBpfSizeDw, shape.src, 1, 8),  // count = ctx.b
            AluReg(op, shape.dst, shape.src, is64),
            MovReg(0, shape.dst),
            Exit(),
        });
        for (std::uint64_t count : kCounts) {
          TestCtx ctx{};
          ctx.a = 0xdeadbeefcafebabeull;
          ctx.b = count;
          RunBoth(program, ctx);
        }
      }
    }
  }
}

TEST(JitTest, ZeroCountShift32StillZeroExtends) {
  if (!Jit::Supported()) GTEST_SKIP() << "no JIT backend";
  // x86 skips the register write when the masked count is 0; BPF still
  // requires dst = (u32)dst. ctx.b = 32 masks to count 0 at 32-bit width.
  const Program program = MakeVerified({
      LoadMem(kBpfSizeDw, 2, 1, 0),
      LoadMem(kBpfSizeDw, 3, 1, 8),
      AluReg(kBpfLsh, 2, 3, /*is64=*/false),
      MovReg(0, 2),
      Exit(),
  });
  TestCtx ctx{};
  ctx.a = 0xffffffff00000005ull;
  ctx.b = 32;
  EXPECT_EQ(RunBoth(program, ctx), 5u);
}

TEST(JitTest, DivModByZeroAtRuntime) {
  if (!Jit::Supported()) GTEST_SKIP() << "no JIT backend";
  // div by 0 -> 0; mod by 0 -> dst (32-bit view for ALU32). The 64-bit
  // cases are covered by the ALU matrix; pin the 32-bit mod upper-bits rule.
  const Program program = MakeVerified({
      LoadMem(kBpfSizeDw, 2, 1, 0),
      LoadMem(kBpfSizeDw, 3, 1, 8),
      AluReg(kBpfMod, 2, 3, /*is64=*/false),
      MovReg(0, 2),
      Exit(),
  });
  TestCtx ctx{};
  ctx.a = 0xdeadbeef00000005ull;
  ctx.b = 0;
  EXPECT_EQ(RunBoth(program, ctx), 5u);  // upper 32 bits cleared
}

TEST(JitTest, JumpConditionsMatchInterpreter) {
  if (!Jit::Supported()) GTEST_SKIP() << "no JIT backend";
  constexpr std::uint8_t kJmpOps[] = {kBpfJeq,  kBpfJgt,  kBpfJge, kBpfJset,
                                      kBpfJne,  kBpfJsgt, kBpfJsge, kBpfJlt,
                                      kBpfJle,  kBpfJslt, kBpfJsle};
  for (std::uint8_t op : kJmpOps) {
    for (bool is64 : {true, false}) {
      const Program program = MakeVerified({
          LoadMem(kBpfSizeDw, 2, 1, 0),
          LoadMem(kBpfSizeDw, 3, 1, 8),
          JmpReg(op, 2, 3, 2, is64),  // taken -> r0 = 1
          MovImm(0, 0),
          Exit(),
          MovImm(0, 1),
          Exit(),
      });
      for (std::uint64_t a : kEdgeValues) {
        for (std::uint64_t b : kEdgeValues) {
          TestCtx ctx{};
          ctx.a = a;
          ctx.b = b;
          RunBoth(program, ctx);
        }
      }
    }
  }
}

TEST(JitTest, JumpImmediateFormsSignExtend) {
  if (!Jit::Supported()) GTEST_SKIP() << "no JIT backend";
  constexpr std::uint8_t kJmpOps[] = {kBpfJeq,  kBpfJgt,  kBpfJge, kBpfJset,
                                      kBpfJne,  kBpfJsgt, kBpfJsge, kBpfJlt,
                                      kBpfJle,  kBpfJslt, kBpfJsle};
  constexpr std::int32_t kImms[] = {-2147483647 - 1, -1, 0, 1, 0x7fffffff};
  for (std::uint8_t op : kJmpOps) {
    for (bool is64 : {true, false}) {
      for (std::int32_t imm : kImms) {
        const Program program = MakeVerified({
            LoadMem(kBpfSizeDw, 2, 1, 0),
            JmpImm(op, 2, imm, 2, is64),
            MovImm(0, 0),
            Exit(),
            MovImm(0, 1),
            Exit(),
        });
        for (std::uint64_t a : kEdgeValues) {
          TestCtx ctx{};
          ctx.a = a;
          RunBoth(program, ctx);
        }
      }
    }
  }
}

TEST(JitTest, LoadStoreEveryWidth) {
  if (!Jit::Supported()) GTEST_SKIP() << "no JIT backend";
  // Register stores of r2 (maps to rsi — the byte form needs the forced REX
  // prefix) bounced through the stack, reloaded zero-extended.
  for (std::uint8_t size : {kBpfSizeB, kBpfSizeH, kBpfSizeW, kBpfSizeDw}) {
    const Program program = MakeVerified({
        LoadMem(kBpfSizeDw, 2, 1, 0),
        StoreMemReg(size, 10, 2, -8),
        LoadMem(size, 0, 10, -8),
        Exit(),
    });
    TestCtx ctx{};
    ctx.a = 0xf1f2f3f4f5f6f7f8ull;
    RunBoth(program, ctx);
  }
}

TEST(JitTest, StoreImmediateEveryWidth) {
  if (!Jit::Supported()) GTEST_SKIP() << "no JIT backend";
  // Negative immediate: the dw form must store it sign-extended.
  for (std::uint8_t size : {kBpfSizeB, kBpfSizeH, kBpfSizeW, kBpfSizeDw}) {
    for (std::int32_t imm : {-2, 0x7654321, -2147483647 - 1}) {
      const Program program = MakeVerified({
          StoreMemImm(size, 10, -8, imm),
          LoadMem(size, 0, 10, -8),
          Exit(),
      });
      RunBoth(program);
    }
  }
}

TEST(JitTest, ContextWritesMatch) {
  if (!Jit::Supported()) GTEST_SKIP() << "no JIT backend";
  // Write the writable ctx field; RunBoth compares the full context bytes.
  const Program program = MakeVerified({
      LoadMem(kBpfSizeW, 2, 1, 16),       // r2 = ctx.c
      AluImm(kBpfAdd, 2, 13),
      StoreMemReg(kBpfSizeW, 1, 2, 20),   // ctx.out = r2
      MovImm(0, 0),
      Exit(),
  });
  TestCtx ctx{};
  ctx.c = 1000;
  RunBoth(program, ctx);
}

TEST(JitTest, AtomicAddMatches) {
  if (!Jit::Supported()) GTEST_SKIP() << "no JIT backend";
  for (bool dw : {true, false}) {
    const std::uint8_t size = dw ? kBpfSizeDw : kBpfSizeW;
    const Program program = MakeVerified({
        StoreMemImm(kBpfSizeDw, 10, -8, 1000),
        LoadMem(kBpfSizeDw, 2, 1, 0),
        AtomicAdd(size, 10, 2, -8),
        LoadMem(kBpfSizeDw, 0, 10, -8),
        Exit(),
    });
    const std::uint64_t addends[] = {7, 0xffffffffffffffffull,
                                     0x100000001ull};
    for (std::uint64_t a : addends) {
      TestCtx ctx{};
      ctx.a = a;
      RunBoth(program, ctx);
    }
  }
}

TEST(JitTest, LoadImm64Constants) {
  if (!Jit::Supported()) GTEST_SKIP() << "no JIT backend";
  // Cover all three encodings MovImm64 picks: u32, sign-extended s32, full.
  const std::uint64_t values[] = {0,
                                  0x7fffffff,
                                  0xffffffffull,
                                  0xffffffff80000000ull,
                                  0x100000000ull,
                                  0xdeadbeefcafebabeull,
                                  0xffffffffffffffffull};
  for (std::uint64_t value : values) {
    const Program program = MakeVerified({
        LoadImm64First(0, value),
        LoadImm64Second(value),
        Exit(),
    });
    EXPECT_EQ(RunBoth(program), value);
  }
}

TEST(JitTest, HelperCallsMatch) {
  if (!Jit::Supported()) GTEST_SKIP() << "no JIT backend";
  // Deterministic helpers reading the calling thread's context; both tiers
  // run on this thread, so results must agree. Two calls back-to-back also
  // exercise r6 (callee-saved rbx) surviving the native call.
  const Program program = MakeVerified({
      Call(kHelperGetSmpProcessorId),
      MovReg(6, 0),
      Call(kHelperGetNumaNodeId),
      AluReg(kBpfLsh, 0, 0, true),  // harmless: r0 <<= r0 & 63
      AluReg(kBpfAdd, 0, 6),
      Exit(),
  });
  RunBoth(program);
}

TEST(JitTest, MapLookupAndWriteThroughValuePointer) {
  if (!Jit::Supported()) GTEST_SKIP() << "no JIT backend";
  // Identical programs against two identically-initialized maps: interp
  // mutates map A, JIT mutates map B; r0 and the map contents must agree.
  // (Compiled code reaches maps through VmEnv -> program -> maps, so the
  // same native code serves both program copies.)
  ArrayMap map_interp("m_interp", 8, 4);
  ArrayMap map_jit("m_jit", 8, 4);
  const std::uint64_t initial = 100;
  ASSERT_TRUE(map_interp.UpdateTyped(std::uint32_t{0}, initial).ok());
  ASSERT_TRUE(map_jit.UpdateTyped(std::uint32_t{0}, initial).ok());

  Program interp_prog = MakeVerified(
      {
          StoreMemImm(kBpfSizeW, 10, -4, 0),  // key = 0
          MovImm(1, 0),                       // map index
          MovReg(2, 10),
          AluImm(kBpfAdd, 2, -4),             // key ptr
          Call(kHelperMapLookupElem),
          JmpImm(kBpfJne, 0, 0, 2),
          MovImm(0, 0),
          Exit(),
          LoadMem(kBpfSizeDw, 3, 0, 0),       // r3 = *value
          AluImm(kBpfAdd, 3, 7),
          StoreMemReg(kBpfSizeDw, 0, 3, 0),   // *value += 7
          MovReg(0, 3),
          Exit(),
      },
      {&map_interp});
  ASSERT_TRUE(interp_prog.verified);

  Program jit_prog = interp_prog;  // same bytecode, other map
  jit_prog.maps = {&map_jit};

  auto compiled = Jit::Compile(jit_prog);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();

  TestCtx ctx{};
  const std::uint64_t interp = BpfVm::Run(interp_prog, &ctx);
  const std::uint64_t native = compiled.value()->Run(jit_prog, &ctx);
  EXPECT_EQ(interp, native);
  EXPECT_EQ(interp, initial + 7);

  std::uint64_t via_interp = 0;
  std::uint64_t via_jit = 0;
  ASSERT_TRUE(map_interp.LookupTyped(std::uint32_t{0}, &via_interp));
  ASSERT_TRUE(map_jit.LookupTyped(std::uint32_t{0}, &via_jit));
  EXPECT_EQ(via_interp, via_jit);
  EXPECT_EQ(via_jit, initial + 7);
}

TEST(JitTest, CodeCachePublishesSealedCode) {
  if (!Jit::Supported()) GTEST_SKIP() << "no JIT backend";
  const auto before = jit::CodeCache::Global().stats();
  const Program program = MakeVerified({MovImm(0, 3), Exit()});
  auto compiled = Jit::Compile(program);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  const auto after = jit::CodeCache::Global().stats();
  EXPECT_EQ(after.programs_published, before.programs_published + 1);
  EXPECT_GT(after.code_bytes, before.code_bytes);
  EXPECT_GE(after.mapped_bytes - before.mapped_bytes,
            after.code_bytes - before.code_bytes);
  EXPECT_GT(compiled.value()->code_size(), 0u);
  EXPECT_FALSE(compiled.value()->HexDump().empty());
  EXPECT_EQ(compiled.value()->Run(program, nullptr), 3u);
}

TEST(JitTest, EnabledOverrideAndScopedMode) {
  const bool env_default = Jit::Enabled();
  {
    ScopedJitMode off(false);
    EXPECT_FALSE(Jit::Enabled());
    {
      ScopedJitMode on(true);
      EXPECT_EQ(Jit::Enabled(), Jit::Supported());
    }
    EXPECT_FALSE(Jit::Enabled());
  }
  EXPECT_EQ(Jit::Enabled(), env_default);
}

TEST(JitTest, JitCompileAllHonorsEnabledAndFallsBackCleanly) {
  auto policy = MakeNumaGroupingPolicy();
  ASSERT_TRUE(policy.ok()) << policy.status().ToString();
  PolicySpec& spec = policy.value().spec;
  ASSERT_TRUE(spec.VerifyAll().ok());

  {
    ScopedJitMode off(false);
    spec.JitCompileAll();
    for (const Program& p :
         spec.ChainFor(HookKind::kCmpNode).programs) {
      EXPECT_EQ(p.jit, nullptr);
    }
  }
  {
    ScopedJitMode on(true);
    spec.JitCompileAll();
    for (const Program& p :
         spec.ChainFor(HookKind::kCmpNode).programs) {
      if (Jit::Supported()) {
        EXPECT_NE(p.jit, nullptr);
      } else {
        EXPECT_EQ(p.jit, nullptr);  // silent interpreter fallback
      }
    }
  }
}

TEST(JitTest, RunPolicyProgramDispatchesByHandle) {
  const Program interp_only = MakeVerified({MovImm(0, 11), Exit()});
  EXPECT_EQ(RunPolicyProgram(interp_only, nullptr), 11u);

  if (!Jit::Supported()) {
    return;
  }
  Program jitted = MakeVerified({MovImm(0, 22), Exit()});
  auto compiled = Jit::Compile(jitted);
  ASSERT_TRUE(compiled.ok());
  jitted.jit = std::move(compiled.value());
  EXPECT_EQ(RunPolicyProgram(jitted, nullptr), 22u);
}

// End-to-end: attach a real policy with the JIT forced on and hammer the
// lock from a few threads; decisions run through the native tier.
TEST(JitTest, AttachedPolicyRunsNativeEndToEnd) {
  if (!Jit::Supported()) GTEST_SKIP() << "no JIT backend";
  ScopedJitMode on(true);

  static ShflLock lock;  // outlives unregistration below
  Concord& concord = Concord::Global();
  const std::uint64_t id =
      concord.RegisterShflLock(lock, "jit_e2e_lock", "jit_test");

  auto policy = MakeNumaGroupingPolicy();
  ASSERT_TRUE(policy.ok());
  ASSERT_TRUE(concord.Attach(id, std::move(policy.value().spec)).ok());

  std::uint64_t counter = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < 500; ++i) {
        lock.Lock();
        ++counter;
        lock.Unlock();
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  EXPECT_EQ(counter, 4u * 500u);
  EXPECT_TRUE(concord.Unregister(id).ok());
}

}  // namespace
}  // namespace concord
