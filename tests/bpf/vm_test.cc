#include "src/bpf/vm.h"

#include <gtest/gtest.h>

#include "src/bpf/builder.h"
#include "src/bpf/verifier.h"

namespace concord {
namespace {

// Context used across VM tests: two u64 inputs, one u32 input, one writable
// u32 output field.
struct TestCtx {
  std::uint64_t a;
  std::uint64_t b;
  std::uint32_t c;
  std::uint32_t out;
};

const ContextDescriptor& TestDesc() {
  static const ContextDescriptor desc("test_ctx", sizeof(TestCtx),
                                      {{"a", 0, 8, false},
                                       {"b", 8, 8, false},
                                       {"c", 16, 4, false},
                                       {"out", 20, 4, true}});
  return desc;
}

Program MustBuild(ProgramBuilder& builder) {
  auto result = builder.Build();
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  Program program = std::move(result.value());
  Status status = Verifier::Verify(program);
  EXPECT_TRUE(status.ok()) << status.ToString();
  return program;
}

std::uint64_t RunOn(const Program& program, TestCtx& ctx) {
  return BpfVm::Run(program, &ctx);
}

TEST(BpfVmTest, ReturnsImmediate) {
  ProgramBuilder b("ret42", &TestDesc());
  b.Return(42);
  Program p = MustBuild(b);
  TestCtx ctx{};
  EXPECT_EQ(RunOn(p, ctx), 42u);
}

TEST(BpfVmTest, Arithmetic64) {
  // r0 = ((7 + 5) * 3 - 6) / 2 % 7 = 30 / 2 % 7 = 15 % 7 = 1
  ProgramBuilder b("arith", &TestDesc());
  b.Mov(0, 7)
      .Alu(kBpfAdd, 0, 5)
      .Alu(kBpfMul, 0, 3)
      .Alu(kBpfSub, 0, 6)
      .Alu(kBpfDiv, 0, 2)
      .Alu(kBpfMod, 0, 7)
      .Ret();
  Program p = MustBuild(b);
  TestCtx ctx{};
  EXPECT_EQ(RunOn(p, ctx), 1u);
}

TEST(BpfVmTest, BitwiseAndShifts) {
  // r0 = ((0xff << 8) | 0x0f) ^ 0xf0 ; then >> 4
  ProgramBuilder b("bits", &TestDesc());
  b.Mov(0, 0xff)
      .Alu(kBpfLsh, 0, 8)
      .Alu(kBpfOr, 0, 0x0f)
      .Alu(kBpfXor, 0, 0xf0)
      .Alu(kBpfRsh, 0, 4)
      .Ret();
  Program p = MustBuild(b);
  TestCtx ctx{};
  EXPECT_EQ(RunOn(p, ctx), ((((0xffull << 8) | 0x0f) ^ 0xf0) >> 4));
}

TEST(BpfVmTest, SignedArithmeticShiftAndNeg) {
  ProgramBuilder b("signed", &TestDesc());
  b.Mov(0, 16)
      .Alu(kBpfNeg, 0, 0)   // r0 = -16
      .Alu(kBpfArsh, 0, 2)  // r0 = -4
      .Ret();
  Program p = MustBuild(b);
  TestCtx ctx{};
  EXPECT_EQ(static_cast<std::int64_t>(RunOn(p, ctx)), -4);
}

TEST(BpfVmTest, Alu32ZeroExtends) {
  // mov r0, -1 (64-bit, all ones); add32 r0, 0 truncates to 32 bits.
  ProgramBuilder b("alu32", &TestDesc());
  b.Mov(0, -1).Emit(AluImm(kBpfAdd, 0, 0, /*is64=*/false)).Ret();
  Program p = MustBuild(b);
  TestCtx ctx{};
  EXPECT_EQ(RunOn(p, ctx), 0xffffffffull);
}

TEST(BpfVmTest, DivisionByZeroRegisterYieldsZero) {
  ProgramBuilder b("div0", &TestDesc());
  b.Mov(0, 100).Mov(2, 0).AluR(kBpfDiv, 0, 2).Ret();
  Program p = MustBuild(b);
  TestCtx ctx{};
  EXPECT_EQ(RunOn(p, ctx), 0u);
}

TEST(BpfVmTest, ModuloByZeroRegisterKeepsDividend) {
  ProgramBuilder b("mod0", &TestDesc());
  b.Mov(0, 100).Mov(2, 0).AluR(kBpfMod, 0, 2).Ret();
  Program p = MustBuild(b);
  TestCtx ctx{};
  EXPECT_EQ(RunOn(p, ctx), 100u);
}

TEST(BpfVmTest, LoadImm64) {
  ProgramBuilder b("lddw", &TestDesc());
  b.Mov64(0, 0x1234567890abcdefull).Ret();
  Program p = MustBuild(b);
  TestCtx ctx{};
  EXPECT_EQ(RunOn(p, ctx), 0x1234567890abcdefull);
}

TEST(BpfVmTest, ContextLoads) {
  // r0 = ctx->a + ctx->b + ctx->c
  ProgramBuilder b("ctxload", &TestDesc());
  b.Load(kBpfSizeDw, 2, 1, 0)
      .Load(kBpfSizeDw, 3, 1, 8)
      .Load(kBpfSizeW, 4, 1, 16)
      .MovR(0, 2)
      .AluR(kBpfAdd, 0, 3)
      .AluR(kBpfAdd, 0, 4)
      .Ret();
  Program p = MustBuild(b);
  TestCtx ctx{100, 200, 30, 0};
  EXPECT_EQ(RunOn(p, ctx), 330u);
}

TEST(BpfVmTest, ContextStoreToWritableField) {
  ProgramBuilder b("ctxstore", &TestDesc());
  b.Mov(2, 99).Store(kBpfSizeW, 1, 20, 2).Return(0);
  Program p = MustBuild(b);
  TestCtx ctx{};
  RunOn(p, ctx);
  EXPECT_EQ(ctx.out, 99u);
}

TEST(BpfVmTest, StackRoundTrip) {
  // Store a value at fp-8, load it back with byte/half/word/dword views.
  ProgramBuilder b("stack", &TestDesc());
  b.Mov64(2, 0x1122334455667788ull)
      .Store(kBpfSizeDw, 10, -8, 2)
      .Load(kBpfSizeB, 0, 10, -8)   // 0x88 (little endian)
      .Load(kBpfSizeH, 3, 10, -8)   // 0x7788
      .AluR(kBpfAdd, 0, 3)
      .Load(kBpfSizeW, 4, 10, -8)   // 0x55667788
      .AluR(kBpfAdd, 0, 4)
      .Ret();
  Program p = MustBuild(b);
  TestCtx ctx{};
  EXPECT_EQ(RunOn(p, ctx), 0x88ull + 0x7788ull + 0x55667788ull);
}

TEST(BpfVmTest, BranchesTakenAndNotTaken) {
  // r0 = (ctx->a > ctx->b) ? 1 : 2
  ProgramBuilder b("branch", &TestDesc());
  auto gt = b.NewLabel();
  b.Load(kBpfSizeDw, 2, 1, 0)
      .Load(kBpfSizeDw, 3, 1, 8)
      .JmpIfR(kBpfJgt, 2, 3, gt)
      .Return(2)
      .Bind(gt)
      .Return(1);
  Program p = MustBuild(b);
  TestCtx hi{10, 5, 0, 0};
  TestCtx lo{5, 10, 0, 0};
  EXPECT_EQ(RunOn(p, hi), 1u);
  EXPECT_EQ(RunOn(p, lo), 2u);
}

TEST(BpfVmTest, SignedComparisonBranches) {
  // r0 = ((s64)ctx->a < 0) ? 7 : 8
  ProgramBuilder b("signedcmp", &TestDesc());
  auto neg = b.NewLabel();
  b.Load(kBpfSizeDw, 2, 1, 0).JmpIf(kBpfJslt, 2, 0, neg).Return(8).Bind(neg).Return(7);
  Program p = MustBuild(b);
  TestCtx minus{static_cast<std::uint64_t>(-5), 0, 0, 0};
  TestCtx plus{5, 0, 0, 0};
  EXPECT_EQ(RunOn(p, minus), 7u);
  EXPECT_EQ(RunOn(p, plus), 8u);
}

TEST(BpfVmTest, JsetTestsBits) {
  ProgramBuilder b("jset", &TestDesc());
  auto set = b.NewLabel();
  b.Load(kBpfSizeDw, 2, 1, 0).JmpIf(kBpfJset, 2, 0x4, set).Return(0).Bind(set).Return(1);
  Program p = MustBuild(b);
  TestCtx with{0b0100, 0, 0, 0};
  TestCtx without{0b0011, 0, 0, 0};
  EXPECT_EQ(RunOn(p, with), 1u);
  EXPECT_EQ(RunOn(p, without), 0u);
}

TEST(BpfVmTest, HelperCallReturnsValue) {
  ProgramBuilder b("helper", &TestDesc());
  b.CallByName("get_numa_node_id").Ret();
  Program p = MustBuild(b);
  TestCtx ctx{};
  const std::uint64_t socket = RunOn(p, ctx);
  EXPECT_LT(socket, 8u);
}

TEST(BpfVmTest, HelperClobbersArgRegisters) {
  // After a call, r1-r5 are clobbered to 0 by our VM; using r6 preserves.
  ProgramBuilder b("clobber", &TestDesc());
  b.Mov(6, 55).CallByName("ktime_get_ns").MovR(0, 6).Ret();
  Program p = MustBuild(b);
  TestCtx ctx{};
  EXPECT_EQ(RunOn(p, ctx), 55u);
}

TEST(BpfVmTest, MapLookupUpdateRoundTrip) {
  ArrayMap map("vals", sizeof(std::uint64_t), 4);
  ProgramBuilder b("mapruntrip", &TestDesc());
  const std::uint32_t map_index = b.DeclareMap(&map);

  // key = 2 on stack; value = 777 on stack; map_update(map, &key, &value);
  // then r0 = *map_lookup(map, &key).
  auto miss = b.NewLabel();
  b.StoreImm(kBpfSizeW, 10, -4, 2)       // key
      .StoreImm(kBpfSizeDw, 10, -16, 777)  // value
      .Mov(1, static_cast<std::int32_t>(map_index))
      .MovR(2, 10)
      .Add(2, -4)
      .MovR(3, 10)
      .Add(3, -16)
      .CallByName("map_update_elem")
      .Mov(1, static_cast<std::int32_t>(map_index))
      .MovR(2, 10)
      .Add(2, -4)
      .CallByName("map_lookup_elem")
      .JmpIf(kBpfJeq, 0, 0, miss)
      .Load(kBpfSizeDw, 0, 0, 0)
      .Ret()
      .Bind(miss)
      .Return(0);
  Program p = MustBuild(b);
  TestCtx ctx{};
  EXPECT_EQ(RunOn(p, ctx), 777u);

  // The update is visible to userspace control code too.
  std::uint64_t value = 0;
  ASSERT_TRUE(map.LookupTyped(std::uint32_t{2}, &value));
  EXPECT_EQ(value, 777u);
}

TEST(BpfVmTest, AtomicAddOnStack) {
  ProgramBuilder b("xadd_stack", &TestDesc());
  b.StoreImm(kBpfSizeDw, 10, -8, 40)
      .Mov(2, 2)
      .Emit(AtomicAdd(kBpfSizeDw, 10, 2, -8))
      .Load(kBpfSizeDw, 0, 10, -8)
      .Ret();
  Program p = MustBuild(b);
  TestCtx ctx{};
  EXPECT_EQ(RunOn(p, ctx), 42u);
}

TEST(BpfVmTest, AtomicAddOnMapValue) {
  ArrayMap map("vals", sizeof(std::uint64_t), 1);
  ASSERT_TRUE(map.UpdateTyped(std::uint32_t{0}, std::uint64_t{100}).ok());
  ProgramBuilder b("xadd_map", &TestDesc());
  const std::uint32_t idx = b.DeclareMap(&map);
  auto miss = b.NewLabel();
  b.StoreImm(kBpfSizeW, 10, -4, 0)
      .Mov(1, static_cast<std::int32_t>(idx))
      .MovR(2, 10)
      .Add(2, -4)
      .CallByName("map_lookup_elem")
      .JmpIf(kBpfJeq, 0, 0, miss)
      .Mov(2, 5)
      .Emit(AtomicAdd(kBpfSizeDw, 0, 2, 0))
      .Load(kBpfSizeDw, 0, 0, 0)
      .Ret()
      .Bind(miss)
      .Return(0);
  Program p = MustBuild(b);
  TestCtx ctx{};
  EXPECT_EQ(RunOn(p, ctx), 105u);
  std::uint64_t value = 0;
  ASSERT_TRUE(map.LookupTyped(std::uint32_t{0}, &value));
  EXPECT_EQ(value, 105u);
}

TEST(BpfVmTest, RunRefusesUnverifiedProgram) {
  ProgramBuilder b("unverified", &TestDesc());
  b.Return(0);
  auto result = b.Build();
  ASSERT_TRUE(result.ok());
  TestCtx ctx{};
  EXPECT_DEATH(BpfVm::Run(*result, &ctx), "verified");
}

}  // namespace
}  // namespace concord
