// Verifier v2 coverage: bounded loops, range/tnum refinement,
// variable-offset pointers, path-carrying diagnostics, and the analysis
// artifact consumed by the lint layer.

#include <gtest/gtest.h>

#include "src/bpf/builder.h"
#include "src/bpf/helpers.h"
#include "src/bpf/jit/jit.h"
#include "src/bpf/maps.h"
#include "src/bpf/verifier.h"
#include "src/bpf/vm.h"

namespace concord {
namespace {

struct VCtx {
  std::uint64_t in;
  std::uint32_t rw;
};

const ContextDescriptor& Desc() {
  static const ContextDescriptor desc(
      "vctx", sizeof(VCtx), {{"in", 0, 8, false}, {"rw", 8, 4, true}});
  return desc;
}

Status VerifyBuilt(ProgramBuilder& builder,
                   const Verifier::Options& options = Verifier::Options{},
                   Verifier::Analysis* analysis = nullptr) {
  auto result = builder.Build();
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return Verifier::Verify(*result, options, analysis);
}

// ---------- bounded loops ---------------------------------------------------

TEST(VerifierV2Test, AcceptsCountedLoopAndRunsOnBothTiers) {
  // r0 = 0; for (r2 = 0; r2 < 10; ++r2) r0 += 2;  =>  r0 == 20.
  // Rejected outright by the v1 no-back-edge rule; verifier v2 proves the
  // counter folds the loop branch after 10 abstract iterations.
  ProgramBuilder b("counted", &Desc());
  auto loop = b.NewLabel();
  b.Mov(0, 0).Mov(2, 0).Bind(loop).Add(0, 2).Add(2, 1).JmpIf(kBpfJlt, 2, 10,
                                                             loop);
  b.Ret();
  auto program = b.Build();
  ASSERT_TRUE(program.ok());

  Verifier::Analysis analysis;
  ASSERT_TRUE(
      Verifier::Verify(*program, Verifier::Options{}, &analysis).ok());
  ASSERT_EQ(analysis.loops.size(), 1u);
  EXPECT_EQ(analysis.loops[0].max_trips, 9u);
  EXPECT_TRUE(analysis.has_exit);
  EXPECT_EQ(analysis.r0_exit.umin, 20u);
  EXPECT_EQ(analysis.r0_exit.umax, 20u);

  VCtx ctx{0, 0};
  EXPECT_EQ(BpfVm::Run(*program, &ctx), 20u);
  if (Jit::Supported()) {
    auto compiled = Jit::Compile(*program);
    ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
    VCtx jit_ctx{0, 0};
    EXPECT_EQ(compiled.value()->Run(*program, &jit_ctx), 20u);
  }
}

TEST(VerifierV2Test, AcceptsCountdownLoop) {
  ProgramBuilder b("countdown", &Desc());
  auto loop = b.NewLabel();
  b.Mov(0, 0).Mov(2, 8).Bind(loop).Add(0, 1).Sub(2, 1).JmpIf(kBpfJne, 2, 0,
                                                             loop);
  b.Ret();
  auto program = b.Build();
  ASSERT_TRUE(program.ok());
  ASSERT_TRUE(Verifier::Verify(*program).ok());
  VCtx ctx{0, 0};
  EXPECT_EQ(BpfVm::Run(*program, &ctx), 8u);
}

TEST(VerifierV2Test, Accepts32BitCountedLoop) {
  ProgramBuilder b("counted32", &Desc());
  auto loop = b.NewLabel();
  b.Mov(0, 0)
      .Emit(AluImm(kBpfMov, 2, 0, /*is64=*/false))
      .Bind(loop)
      .Add(0, 3)
      .Emit(AluImm(kBpfAdd, 2, 1, /*is64=*/false))
      .Emit(JmpImm(kBpfJlt, 2, 5, 0, /*is64=*/false));
  // Patch the JMP32 displacement back to the loop head by hand: the builder
  // label API targets 64-bit jumps only in this direction.
  auto program = b.Ret().Build();
  ASSERT_TRUE(program.ok());
  program->insns[4].off = -3;  // jlt32 -> loop body start (insn 2)
  ASSERT_TRUE(Verifier::Verify(*program).ok());
  VCtx ctx{0, 0};
  EXPECT_EQ(BpfVm::Run(*program, &ctx), 15u);
}

TEST(VerifierV2Test, AcceptsLoopWithRuntimeBoundBelowConstant) {
  // The trip count comes from the context but is clamped by the verifier's
  // branch refinement: r3 = ctx.in & 7 bounds the loop at 8 trips.
  ProgramBuilder b("runtime_bound", &Desc());
  auto loop = b.NewLabel();
  auto done = b.NewLabel();
  b.Load(kBpfSizeDw, 3, 1, 0)
      .And(3, 7)
      .Mov(0, 0)
      .Mov(2, 0)
      .JmpIfR(kBpfJge, 2, 3, done)
      .Bind(loop)
      .Add(0, 1)
      .Add(2, 1)
      .JmpIfR(kBpfJlt, 2, 3, loop)
      .Bind(done)
      .Ret();
  Verifier::Analysis analysis;
  ASSERT_TRUE(VerifyBuilt(b, Verifier::Options{}, &analysis).ok());
  ASSERT_EQ(analysis.loops.size(), 1u);
  EXPECT_LE(analysis.loops[0].max_trips, 8u);
}

TEST(VerifierV2Test, RejectsInfiniteLoopWithPath) {
  // No exit condition and no state change: the abstract state repeats at the
  // loop header.
  ProgramBuilder b("spin", &Desc());
  auto loop = b.NewLabel();
  b.Mov(0, 0).Bind(loop).Jmp(loop);
  Status s = VerifyBuilt(b);
  EXPECT_EQ(s.code(), StatusCode::kPermissionDenied);
  EXPECT_NE(s.message().find("infinite loop"), std::string::npos);
  EXPECT_NE(s.message().find("path:"), std::string::npos);
}

TEST(VerifierV2Test, RejectsLoopExceedingTripBudget) {
  // A counter that does make progress, but toward a bound beyond the trip
  // budget: rejected with the back edge, the budget, and the path.
  ProgramBuilder b("slowloop", &Desc());
  auto loop = b.NewLabel();
  b.Mov(0, 0).Mov(2, 0).Bind(loop).Add(2, 1).JmpIf(kBpfJlt, 2, 100, loop);
  b.Ret();
  Verifier::Options opts;
  opts.max_loop_trips = 16;
  Status s = VerifyBuilt(b, opts);
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(s.message().find("loop exceeded 16 iterations"), std::string::npos);
  EXPECT_NE(s.message().find("back edge to insn"), std::string::npos);
  EXPECT_NE(s.message().find("path:"), std::string::npos);
}

TEST(VerifierV2Test, StateBudgetMessageBlamesTheHotLoop) {
  // A loop whose body forks on an unknown bit every iteration; under a small
  // state budget the rejection must attribute the blowup to the loop header.
  ProgramBuilder b("hotloop", &Desc());
  auto loop = b.NewLabel();
  auto skip = b.NewLabel();
  b.Mov(2, 0)
      .Load(kBpfSizeDw, 3, 1, 0)
      .Bind(loop)
      .JmpIf(kBpfJset, 3, 1, skip)
      .Bind(skip)
      .Add(2, 1)
      .JmpIf(kBpfJlt, 2, 100, loop);
  b.Return(0);
  Verifier::Options opts;
  opts.max_states = 150;
  Status s = VerifyBuilt(b, opts);
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(s.message().find("abstract states"), std::string::npos);
  EXPECT_NE(s.message().find("hottest loop header at insn"), std::string::npos);
}

// ---------- range and tnum refinement ---------------------------------------

TEST(VerifierV2Test, TracksReturnRangeThroughMasking) {
  ProgramBuilder b("masked", &Desc());
  b.Load(kBpfSizeDw, 2, 1, 0).And(2, 1).MovR(0, 2).Ret();
  Verifier::Analysis analysis;
  ASSERT_TRUE(VerifyBuilt(b, Verifier::Options{}, &analysis).ok());
  ASSERT_TRUE(analysis.has_exit);
  EXPECT_EQ(analysis.r0_exit.umin, 0u);
  EXPECT_EQ(analysis.r0_exit.umax, 1u);
}

TEST(VerifierV2Test, BranchRefinementUnionsExitRange) {
  // if (ctx.in > 100) return 7; else return 3;  =>  r0 in {3, 7}.
  ProgramBuilder b("branches", &Desc());
  auto big = b.NewLabel();
  b.Load(kBpfSizeDw, 2, 1, 0)
      .JmpIf(kBpfJgt, 2, 100, big)
      .Return(3)
      .Bind(big)
      .Return(7);
  Verifier::Analysis analysis;
  ASSERT_TRUE(VerifyBuilt(b, Verifier::Options{}, &analysis).ok());
  EXPECT_EQ(analysis.r0_exit.umin, 3u);
  EXPECT_EQ(analysis.r0_exit.umax, 7u);
}

TEST(VerifierV2Test, DeadArmFromRefinementIsNotExplored) {
  // After `r2 &= 3`, the branch `r2 > 7` is provably never taken; its arm
  // would otherwise trip on an uninitialized r0 at exit.
  ProgramBuilder b("deadarm", &Desc());
  auto dead = b.NewLabel();
  b.Load(kBpfSizeDw, 2, 1, 0)
      .And(2, 3)
      .JmpIf(kBpfJgt, 2, 7, dead)
      .Return(0)
      .Bind(dead)
      .Ret();  // exit with uninitialized r0 — must be unreachable
  EXPECT_TRUE(VerifyBuilt(b).ok());
}

// ---------- variable-offset pointers ----------------------------------------

TEST(VerifierV2Test, AcceptsVariableStackOffsetProvenInBounds) {
  // Eight initialized stack dwords, then an index derived from the context,
  // masked to 0..7 and scaled by 8: every access lands in [-64, 0).
  ProgramBuilder b("varstack", &Desc());
  for (int i = 1; i <= 8; ++i) {
    b.StoreImm(kBpfSizeDw, 10, static_cast<std::int16_t>(-8 * i), i);
  }
  b.Load(kBpfSizeDw, 2, 1, 0)
      .And(2, 7)
      .Alu(kBpfLsh, 2, 3)
      .MovR(3, 10)
      .Add(3, -64)
      .AddR(3, 2)
      .Load(kBpfSizeDw, 0, 3, 0)
      .Ret();
  auto program = b.Build();
  ASSERT_TRUE(program.ok());
  ASSERT_TRUE(Verifier::Verify(*program).ok());

  // ctx.in = 5 => slot index 5 counting up from -64, which holds value 3.
  VCtx ctx{5, 0};
  EXPECT_EQ(BpfVm::Run(*program, &ctx), 3u);
}

TEST(VerifierV2Test, RejectsVariableStackOffsetOutOfBounds) {
  // Mask 15 allows indices past the eight initialized slots.
  ProgramBuilder b("varstack_oob", &Desc());
  for (int i = 1; i <= 8; ++i) {
    b.StoreImm(kBpfSizeDw, 10, static_cast<std::int16_t>(-8 * i), i);
  }
  b.Load(kBpfSizeDw, 2, 1, 0)
      .And(2, 15)
      .Alu(kBpfLsh, 2, 3)
      .MovR(3, 10)
      .Add(3, -64)
      .AddR(3, 2)
      .Load(kBpfSizeDw, 0, 3, 0)
      .Ret();
  Status s = VerifyBuilt(b);
  EXPECT_EQ(s.code(), StatusCode::kPermissionDenied);
  EXPECT_NE(s.message().find("stack access out of bounds"), std::string::npos);
}

TEST(VerifierV2Test, RejectsMisalignedVariableStackOffset) {
  // The variable part has unknown low bits: alignment cannot be proven.
  ProgramBuilder b("varstack_align", &Desc());
  b.StoreImm(kBpfSizeDw, 10, -8, 1)
      .Load(kBpfSizeDw, 2, 1, 0)
      .And(2, 7)
      .MovR(3, 10)
      .Add(3, -8)
      .AddR(3, 2)
      .Load(kBpfSizeDw, 0, 3, 0)
      .Ret();
  Status s = VerifyBuilt(b);
  EXPECT_EQ(s.code(), StatusCode::kPermissionDenied);
  EXPECT_NE(s.message().find("misaligned stack access"), std::string::npos);
}

TEST(VerifierV2Test, RejectsUnboundedVariableStackOffset) {
  ProgramBuilder b("varstack_unbounded", &Desc());
  b.StoreImm(kBpfSizeDw, 10, -8, 1)
      .Load(kBpfSizeDw, 2, 1, 0)  // unknown, unbounded
      .MovR(3, 10)
      .AddR(3, 2)
      .Load(kBpfSizeDw, 0, 3, 0)
      .Ret();
  Status s = VerifyBuilt(b);
  EXPECT_EQ(s.code(), StatusCode::kPermissionDenied);
  EXPECT_NE(s.message().find("variable offset"), std::string::npos);
}

TEST(VerifierV2Test, AcceptsVariableMapValueOffset) {
  ProgramBuilder b("varmapval", &Desc());
  ArrayMap map("m", 64, 1);  // one 64-byte value: eight dword lanes
  const auto idx = b.DeclareMap(&map);
  auto miss = b.NewLabel();
  b.StoreImm(kBpfSizeW, 10, -4, 0)
      .Mov(1, static_cast<std::int32_t>(idx))
      .MovR(2, 10)
      .Add(2, -4)
      .CallByName("map_lookup_elem")
      .JmpIf(kBpfJeq, 0, 0, miss)
      .Load(kBpfSizeDw, 3, 0, 0)  // lane selector from map value itself
      .And(3, 7)
      .Alu(kBpfLsh, 3, 3)
      .AddR(0, 3)
      .Load(kBpfSizeDw, 0, 0, 0)
      .Ret()
      .Bind(miss)
      .Return(0);
  EXPECT_TRUE(VerifyBuilt(b).ok());
}

TEST(VerifierV2Test, RejectsVariableMapValueOffsetBeyondValueSize) {
  ProgramBuilder b("varmapval_oob", &Desc());
  ArrayMap map("m", 64, 1);
  const auto idx = b.DeclareMap(&map);
  auto miss = b.NewLabel();
  b.StoreImm(kBpfSizeW, 10, -4, 0)
      .Mov(1, static_cast<std::int32_t>(idx))
      .MovR(2, 10)
      .Add(2, -4)
      .CallByName("map_lookup_elem")
      .JmpIf(kBpfJeq, 0, 0, miss)
      .Load(kBpfSizeDw, 3, 0, 0)
      .And(3, 15)  // lanes 8..15 are beyond the 64-byte value
      .Alu(kBpfLsh, 3, 3)
      .AddR(0, 3)
      .Load(kBpfSizeDw, 0, 0, 0)
      .Ret()
      .Bind(miss)
      .Return(0);
  Status s = VerifyBuilt(b);
  EXPECT_EQ(s.code(), StatusCode::kPermissionDenied);
  EXPECT_NE(s.message().find("map value access out of bounds"),
            std::string::npos);
}

TEST(VerifierV2Test, ContextOffsetsMustStayConstant) {
  ProgramBuilder b("ctxvar", &Desc());
  b.Load(kBpfSizeDw, 2, 1, 0)
      .And(2, 7)
      .MovR(3, 1)
      .AddR(3, 2)
      .Load(kBpfSizeW, 0, 3, 8)
      .Ret();
  Status s = VerifyBuilt(b);
  EXPECT_EQ(s.code(), StatusCode::kPermissionDenied);
  EXPECT_NE(s.message().find("compile-time constant"), std::string::npos);
}

// ---------- path-carrying diagnostics (regression: satellite #1) ------------

TEST(VerifierV2Test, RejectionMessageCarriesBranchHistory) {
  // Taken arm of the branch at insn 1 jumps straight to the bad exit at
  // insn 5; the fall-through arm is fine. The rejection must name the taken
  // path, not just the instruction.
  Program p;
  p.name = "pathy";
  p.ctx_desc = &Desc();
  p.insns = {
      LoadMem(kBpfSizeDw, 2, 1, 0),  // 0
      JmpImm(kBpfJeq, 2, 5, 3),      // 1: if (r2 == 5) goto 5
      MovImm(0, 0),                  // 2
      Exit(),                        // 3
      MovImm(0, 0),                  // 4 (unreachable)
      Exit(),                        // 5: r0 uninitialized here
  };
  Status s = Verifier::Verify(p);
  EXPECT_EQ(s.code(), StatusCode::kPermissionDenied);
  EXPECT_NE(s.message().find("exit with uninitialized r0"), std::string::npos);
  EXPECT_NE(s.message().find("path: 0 -> 5"), std::string::npos);
}

// ---------- analysis artifact ------------------------------------------------

TEST(VerifierV2Test, AnalysisReportsCtxPointerHeldAcrossCall) {
  ProgramBuilder b("ctx_across_call", &Desc());
  b.MovR(6, 1)  // stash the ctx pointer in a callee-saved register
      .CallByName("ktime_get_ns")
      .Load(kBpfSizeDw, 0, 6, 0)
      .Ret();
  Verifier::Analysis analysis;
  ASSERT_TRUE(VerifyBuilt(b, Verifier::Options{}, &analysis).ok());
  ASSERT_EQ(analysis.ctx_ptr_across_call_pcs.size(), 1u);
  EXPECT_EQ(analysis.ctx_ptr_across_call_pcs[0], 1u);
}

TEST(VerifierV2Test, AnalysisReportsMapWrites) {
  ProgramBuilder b("mapwrite", &Desc());
  ArrayMap map("m", 8, 1);
  const auto idx = b.DeclareMap(&map);
  b.StoreImm(kBpfSizeW, 10, -4, 0)
      .StoreImm(kBpfSizeDw, 10, -16, 1)
      .Mov(1, static_cast<std::int32_t>(idx))
      .MovR(2, 10)
      .Add(2, -4)
      .MovR(3, 10)
      .Add(3, -16)
      .CallByName("map_update_elem")
      .Return(0);
  Verifier::Analysis analysis;
  ASSERT_TRUE(VerifyBuilt(b, Verifier::Options{}, &analysis).ok());
  EXPECT_TRUE(analysis.writes_map);
  EXPECT_FALSE(analysis.writes_ctx);
}

}  // namespace
}  // namespace concord
