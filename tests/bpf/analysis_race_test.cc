// Shared-map race analyzer coverage: access classification per map, the
// shared-vs-per-CPU rejection rule, and the certification gate that composes
// races with the WCET budget.

#include <gtest/gtest.h>

#include "src/bpf/analysis/certify.h"
#include "src/bpf/analysis/race.h"
#include "src/bpf/builder.h"
#include "src/bpf/helpers.h"
#include "src/bpf/maps.h"
#include "src/bpf/verifier.h"

namespace concord {
namespace {

struct RCtx {
  std::uint64_t in;
};

const ContextDescriptor& Desc() {
  static const ContextDescriptor desc("rctx", sizeof(RCtx),
                                      {{"in", 0, 8, false}});
  return desc;
}

enum class Access { kLoad, kPlainStore, kAtomicAdd, kLoadThenStore };

// lookup slot 0 of `map`, null-check, then perform `access` through the
// map-value pointer in r0.
StatusOr<Program> BuildMapProgram(BpfMap* map, Access access) {
  ProgramBuilder b("map_access", &Desc());
  const std::uint32_t idx = b.DeclareMap(map);
  auto out = b.NewLabel();
  b.StoreImm(kBpfSizeW, 10, -4, 0);
  b.Mov(1, static_cast<std::int32_t>(idx));
  b.MovR(2, 10).Add(2, -4);
  b.CallHelper(kHelperMapLookupElem);
  b.JmpIf(kBpfJeq, 0, 0, out);
  switch (access) {
    case Access::kLoad:
      b.Load(kBpfSizeDw, 2, 0, 0);
      break;
    case Access::kPlainStore:
      b.Mov(2, 1).Store(kBpfSizeDw, 0, 0, 2);
      break;
    case Access::kAtomicAdd:
      b.Mov(2, 1).Emit(AtomicAdd(kBpfSizeDw, 0, 2, 0));
      break;
    case Access::kLoadThenStore:
      b.Load(kBpfSizeDw, 2, 0, 0).Add(2, 1).Store(kBpfSizeDw, 0, 0, 2);
      break;
  }
  b.Bind(out).Return(0);
  return b.Build();
}

RaceReport AnalyzeBuilt(Program& program) {
  Verifier::Analysis analysis;
  Status verdict = Verifier::Verify(program, Verifier::Options{}, &analysis);
  EXPECT_TRUE(verdict.ok()) << verdict.ToString();
  return AnalyzeRaces(program, analysis);
}

TEST(RaceTest, ReadOnlyAccessIsClean) {
  ArrayMap map("stats", 8, 4);
  auto program = BuildMapProgram(&map, Access::kLoad);
  ASSERT_TRUE(program.ok());
  const RaceReport report = AnalyzeBuilt(*program);
  ASSERT_EQ(report.map_classes.size(), 1u);
  EXPECT_EQ(report.map_classes[0], MapAccessClass::kReadOnly);
  EXPECT_TRUE(report.ok());
}

TEST(RaceTest, AtomicAddOnSharedMapIsClean) {
  ArrayMap map("counter", 8, 4);
  auto program = BuildMapProgram(&map, Access::kAtomicAdd);
  ASSERT_TRUE(program.ok());
  const RaceReport report = AnalyzeBuilt(*program);
  ASSERT_EQ(report.map_classes.size(), 1u);
  EXPECT_EQ(report.map_classes[0], MapAccessClass::kAtomic);
  EXPECT_TRUE(report.ok());
}

TEST(RaceTest, PlainStoreIntoSharedMapIsFlagged) {
  ArrayMap map("counter", 8, 4);
  auto program = BuildMapProgram(&map, Access::kLoadThenStore);
  ASSERT_TRUE(program.ok());
  const RaceReport report = AnalyzeBuilt(*program);
  ASSERT_EQ(report.map_classes.size(), 1u);
  EXPECT_EQ(report.map_classes[0], MapAccessClass::kMutates);
  ASSERT_EQ(report.findings.size(), 1u);
  const RaceFinding& finding = report.findings[0];
  EXPECT_EQ(finding.rule, "shared-map-rmw");
  EXPECT_EQ(finding.map_index, 0u);
  // The diagnostic names the map site and carries the migration hint.
  EXPECT_NE(finding.message.find("'counter'"), std::string::npos)
      << finding.message;
  EXPECT_NE(finding.message.find("read-modify-write"), std::string::npos)
      << finding.message;
  EXPECT_NE(finding.message.find("percpu_array"), std::string::npos)
      << finding.message;
  // The pc points at the store instruction.
  EXPECT_EQ(program->insns[finding.pc].Class(), kBpfClassStx);
}

TEST(RaceTest, BlindStoreDistinguishedFromRmw) {
  ArrayMap map("flag", 8, 4);
  auto program = BuildMapProgram(&map, Access::kPlainStore);
  ASSERT_TRUE(program.ok());
  const RaceReport report = AnalyzeBuilt(*program);
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_NE(report.findings[0].message.find("store into"), std::string::npos)
      << report.findings[0].message;
}

TEST(RaceTest, PlainStoreIntoPerCpuMapIsAllowed) {
  PerCpuArrayMap map("rounds", 8, 4, /*num_cpus=*/4);
  auto program = BuildMapProgram(&map, Access::kLoadThenStore);
  ASSERT_TRUE(program.ok());
  const RaceReport report = AnalyzeBuilt(*program);
  ASSERT_EQ(report.map_classes.size(), 1u);
  // The classification still says "mutates" — the *rule* is what exempts
  // per-CPU maps, not the bookkeeping.
  EXPECT_EQ(report.map_classes[0], MapAccessClass::kMutates);
  EXPECT_TRUE(report.ok());
}

TEST(RaceTest, HelperMediatedUpdateIsNotFlagged) {
  // map_update_elem goes through the map's own synchronization; only direct
  // value-pointer stores are the analyzer's business.
  ArrayMap map("knobs", 8, 4);
  ProgramBuilder b("helper_update", &Desc());
  const std::uint32_t idx = b.DeclareMap(&map);
  b.StoreImm(kBpfSizeW, 10, -4, 0);       // key
  b.StoreImm(kBpfSizeDw, 10, -16, 42);    // value
  b.Mov(1, static_cast<std::int32_t>(idx));
  b.MovR(2, 10).Add(2, -4);
  b.MovR(3, 10).Add(3, -16);
  b.CallHelper(kHelperMapUpdateElem);
  b.Return(0);
  auto program = b.Build();
  ASSERT_TRUE(program.ok());
  const RaceReport report = AnalyzeBuilt(*program);
  ASSERT_EQ(report.map_classes.size(), 1u);
  EXPECT_EQ(report.map_classes[0], MapAccessClass::kNone);
  EXPECT_TRUE(report.ok());
}

// --- certification gate ------------------------------------------------------

TEST(CertifyTest, RacyProgramRejectedRegardlessOfBudget) {
  ArrayMap map("counter", 8, 4);
  auto program = BuildMapProgram(&map, Access::kLoadThenStore);
  ASSERT_TRUE(program.ok());
  Verifier::Analysis analysis;
  ASSERT_TRUE(Verifier::Verify(*program, Verifier::Options{}, &analysis).ok());

  CertificationReport report;
  Status status = CertifyProgram(*program, analysis, /*budget_ns=*/0, &report);
  EXPECT_EQ(status.code(), StatusCode::kPermissionDenied);
  EXPECT_NE(status.message().find("'counter'"), std::string::npos)
      << status.message();
  EXPECT_FALSE(report.certified);
}

TEST(CertifyTest, OverBudgetLoopRejectedWithLoopDiagnostic) {
  ProgramBuilder b("hot_loop", &Desc());
  auto loop = b.NewLabel();
  b.Mov(0, 0).Mov(2, 0).Bind(loop).Add(0, 2).Add(2, 1).JmpIf(kBpfJlt, 2, 1000,
                                                             loop);
  b.Ret();
  auto program = b.Build();
  ASSERT_TRUE(program.ok());
  Verifier::Analysis analysis;
  ASSERT_TRUE(Verifier::Verify(*program, Verifier::Options{}, &analysis).ok());

  CertificationReport report;
  Status status =
      CertifyProgram(*program, analysis, /*budget_ns=*/100, &report);
  EXPECT_EQ(status.code(), StatusCode::kPermissionDenied);
  // Path-carrying diagnostic: the dominant instruction, its execution-count
  // bound, and the loop that produces it.
  EXPECT_NE(status.message().find("dominated by insn"), std::string::npos)
      << status.message();
  EXPECT_NE(status.message().find("loop: header"), std::string::npos)
      << status.message();
  EXPECT_FALSE(report.certified);
  EXPECT_GT(report.wcet.certified_ns, 100u);

  // The same program certifies under a budget its bound fits.
  Status roomy = CertifyProgram(*program, analysis,
                                report.wcet.certified_ns + 1, &report);
  EXPECT_TRUE(roomy.ok()) << roomy.ToString();
  EXPECT_TRUE(report.certified);
}

TEST(CertifyTest, NoBudgetStillComputesWcetAndPasses) {
  ProgramBuilder b("tiny", &Desc());
  b.Return(1);
  auto program = b.Build();
  ASSERT_TRUE(program.ok());
  Verifier::Analysis analysis;
  ASSERT_TRUE(Verifier::Verify(*program, Verifier::Options{}, &analysis).ok());
  CertificationReport report;
  EXPECT_TRUE(CertifyProgram(*program, analysis, 0, &report).ok());
  EXPECT_TRUE(report.certified);
  EXPECT_GT(report.wcet.certified_ns, 0u);
  EXPECT_EQ(report.budget_ns, 0u);
}

}  // namespace
}  // namespace concord
