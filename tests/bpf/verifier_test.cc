#include "src/bpf/verifier.h"

#include <gtest/gtest.h>

#include "src/bpf/builder.h"
#include "src/bpf/helpers.h"

namespace concord {
namespace {

struct VCtx {
  std::uint64_t in;
  std::uint32_t rw;
};

const ContextDescriptor& Desc() {
  static const ContextDescriptor desc(
      "vctx", sizeof(VCtx), {{"in", 0, 8, false}, {"rw", 8, 4, true}});
  return desc;
}

Status VerifyBuilt(ProgramBuilder& builder,
                   const Verifier::Options& options = Verifier::Options{}) {
  auto result = builder.Build();
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return Verifier::Verify(*result, options);
}

// ---------- acceptance ------------------------------------------------------

TEST(VerifierTest, AcceptsMinimalProgram) {
  ProgramBuilder b("ok", &Desc());
  b.Return(0);
  EXPECT_TRUE(VerifyBuilt(b).ok());
}

TEST(VerifierTest, AcceptsDiamondControlFlow) {
  ProgramBuilder b("diamond", &Desc());
  auto left = b.NewLabel();
  auto join = b.NewLabel();
  b.Load(kBpfSizeDw, 2, 1, 0)
      .JmpIf(kBpfJeq, 2, 0, left)
      .Mov(0, 1)
      .Jmp(join)
      .Bind(left)
      .Mov(0, 2)
      .Bind(join)
      .Ret();
  EXPECT_TRUE(VerifyBuilt(b).ok());
}

TEST(VerifierTest, VerifySetsUsedCapabilities) {
  ProgramBuilder b("caps", &Desc());
  b.CallByName("ktime_get_ns").Ret();
  auto result = b.Build();
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(Verifier::Verify(*result).ok());
  EXPECT_TRUE(result->verified);
  EXPECT_EQ(result->used_capabilities, kCapRead);
}

// ---------- structural rejections -------------------------------------------

TEST(VerifierTest, RejectsEmptyProgram) {
  Program p;
  p.name = "empty";
  p.ctx_desc = &Desc();
  EXPECT_EQ(Verifier::Verify(p).code(), StatusCode::kInvalidArgument);
}

TEST(VerifierTest, RejectsMissingContextDescriptor) {
  Program p;
  p.name = "noctx";
  p.insns = {MovImm(0, 0), Exit()};
  EXPECT_FALSE(Verifier::Verify(p).ok());
}

TEST(VerifierTest, RejectsOverlongProgram) {
  Program p;
  p.name = "long";
  p.ctx_desc = &Desc();
  p.insns.assign(kMaxProgramInsns + 1, MovImm(0, 0));
  p.insns.back() = Exit();
  EXPECT_EQ(Verifier::Verify(p).code(), StatusCode::kResourceExhausted);
}

TEST(VerifierTest, RejectsInfiniteLoop) {
  // 0: mov r0, 0 ; 1: ja -2. Verifier v2 admits the back edge but the
  // abstract state repeats at the loop header with no progress — rejected as
  // an infinite loop, with the path that got there.
  Program p;
  p.name = "loop";
  p.ctx_desc = &Desc();
  p.insns = {MovImm(0, 0), Jump(-2), Exit()};
  Status s = Verifier::Verify(p);
  EXPECT_EQ(s.code(), StatusCode::kPermissionDenied);
  EXPECT_NE(s.message().find("infinite loop"), std::string::npos);
  EXPECT_NE(s.message().find("path:"), std::string::npos);
}

TEST(VerifierTest, RejectsJumpOutOfBounds) {
  Program p;
  p.name = "oob";
  p.ctx_desc = &Desc();
  p.insns = {Jump(100), Exit()};
  EXPECT_FALSE(Verifier::Verify(p).ok());
}

TEST(VerifierTest, RejectsFallOffEnd) {
  Program p;
  p.name = "falloff";
  p.ctx_desc = &Desc();
  p.insns = {MovImm(0, 0), MovImm(2, 1)};  // no exit
  Status s = Verifier::Verify(p);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("falls off"), std::string::npos);
}

TEST(VerifierTest, RejectsJumpIntoLddwSecondSlot) {
  Program p;
  p.name = "midlddw";
  p.ctx_desc = &Desc();
  p.insns = {Jump(1),  // jumps to the pseudo slot of the lddw below
             LoadImm64First(0, 0), LoadImm64Second(0), Exit()};
  EXPECT_FALSE(Verifier::Verify(p).ok());
}

TEST(VerifierTest, RejectsTruncatedLddw) {
  Program p;
  p.name = "trunc";
  p.ctx_desc = &Desc();
  p.insns = {LoadImm64First(0, 0)};
  EXPECT_FALSE(Verifier::Verify(p).ok());
}

TEST(VerifierTest, RejectsWriteToFramePointer) {
  Program p;
  p.name = "fpwrite";
  p.ctx_desc = &Desc();
  p.insns = {MovImm(kBpfReg10, 0), Exit()};
  EXPECT_EQ(Verifier::Verify(p).code(), StatusCode::kPermissionDenied);
}

TEST(VerifierTest, RejectsDivisionByConstantZero) {
  Program p;
  p.name = "div0";
  p.ctx_desc = &Desc();
  p.insns = {MovImm(0, 1), AluImm(kBpfDiv, 0, 0), Exit()};
  EXPECT_FALSE(Verifier::Verify(p).ok());
}

// ---------- data-flow rejections --------------------------------------------

TEST(VerifierTest, RejectsReadOfUninitializedRegister) {
  ProgramBuilder b("uninit", &Desc());
  b.MovR(0, 5).Ret();  // r5 never written
  Status s = VerifyBuilt(b);
  EXPECT_EQ(s.code(), StatusCode::kPermissionDenied);
  EXPECT_NE(s.message().find("uninitialized"), std::string::npos);
}

TEST(VerifierTest, RejectsExitWithUninitializedR0) {
  ProgramBuilder b("nor0", &Desc());
  b.Ret();
  EXPECT_FALSE(VerifyBuilt(b).ok());
}

TEST(VerifierTest, RejectsReturningPointer) {
  ProgramBuilder b("retptr", &Desc());
  b.MovR(0, 1).Ret();  // r1 = ctx pointer
  Status s = VerifyBuilt(b);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("pointer"), std::string::npos);
}

TEST(VerifierTest, RejectsUninitializedStackRead) {
  ProgramBuilder b("stackread", &Desc());
  b.Load(kBpfSizeDw, 0, 10, -8).Ret();
  Status s = VerifyBuilt(b);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("uninitialized stack"), std::string::npos);
}

TEST(VerifierTest, RejectsPartiallyInitializedStackRead) {
  ProgramBuilder b("partial", &Desc());
  b.StoreImm(kBpfSizeW, 10, -8, 1)       // bytes [-8,-4) initialized
      .Load(kBpfSizeDw, 0, 10, -8)       // reads [-8,0): upper half uninit
      .Ret();
  EXPECT_FALSE(VerifyBuilt(b).ok());
}

TEST(VerifierTest, RejectsStackOverflowAccess) {
  ProgramBuilder b("stackoob", &Desc());
  b.StoreImm(kBpfSizeDw, 10, -520, 1).Return(0);
  Status s = VerifyBuilt(b);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("out of bounds"), std::string::npos);
}

TEST(VerifierTest, RejectsStackAccessAboveFramePointer) {
  ProgramBuilder b("above", &Desc());
  b.StoreImm(kBpfSizeDw, 10, 8, 1).Return(0);
  EXPECT_FALSE(VerifyBuilt(b).ok());
}

TEST(VerifierTest, RejectsMisalignedStackAccess) {
  ProgramBuilder b("misalign", &Desc());
  b.StoreImm(kBpfSizeDw, 10, -12, 1).Return(0);  // 8-byte store at -12
  Status s = VerifyBuilt(b);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("misaligned"), std::string::npos);
}

TEST(VerifierTest, RejectsContextLoadOutsideFields) {
  ProgramBuilder b("ctxoob", &Desc());
  b.Load(kBpfSizeDw, 0, 1, 16).Ret();  // past end of VCtx
  EXPECT_FALSE(VerifyBuilt(b).ok());
}

TEST(VerifierTest, RejectsContextLoadWithWrongWidth) {
  ProgramBuilder b("ctxwidth", &Desc());
  b.Load(kBpfSizeW, 0, 1, 0).Ret();  // field "in" is 8 bytes, load is 4
  EXPECT_FALSE(VerifyBuilt(b).ok());
}

TEST(VerifierTest, RejectsStoreToReadOnlyContextField) {
  ProgramBuilder b("ctxro", &Desc());
  b.Mov(2, 1).Store(kBpfSizeDw, 1, 0, 2).Return(0);
  Status s = VerifyBuilt(b);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("read-only"), std::string::npos);
}

TEST(VerifierTest, AcceptsStoreToWritableContextField) {
  ProgramBuilder b("ctxwr", &Desc());
  b.Mov(2, 1).Store(kBpfSizeW, 1, 8, 2).Return(0);
  EXPECT_TRUE(VerifyBuilt(b).ok());
}

TEST(VerifierTest, RejectsLoadFromScalar) {
  ProgramBuilder b("scalarload", &Desc());
  b.Mov(2, 1234).Load(kBpfSizeDw, 0, 2, 0).Ret();
  EXPECT_FALSE(VerifyBuilt(b).ok());
}

TEST(VerifierTest, RejectsPointerArithmeticWithUnknownScalar) {
  ProgramBuilder b("ptrmath", &Desc());
  b.Load(kBpfSizeDw, 2, 1, 0)   // unknown scalar
      .MovR(3, 1)
      .AluR(kBpfAdd, 3, 2)      // ctx + unknown
      .Load(kBpfSizeDw, 0, 3, 0)
      .Ret();
  Status s = VerifyBuilt(b);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("compile-time constant"), std::string::npos);
}

TEST(VerifierTest, AcceptsPointerPlusConstant) {
  ProgramBuilder b("ptrconst", &Desc());
  b.MovR(2, 1).Add(2, 8).Load(kBpfSizeW, 0, 2, 0).Ret();  // ctx+8 = field rw
  EXPECT_TRUE(VerifyBuilt(b).ok());
}

TEST(VerifierTest, RejectsPointerMultiplication) {
  ProgramBuilder b("ptrmul", &Desc());
  b.MovR(2, 1).Alu(kBpfMul, 2, 2).Return(0);
  EXPECT_FALSE(VerifyBuilt(b).ok());
}

TEST(VerifierTest, Rejects32BitAluOnPointer) {
  ProgramBuilder b("ptr32", &Desc());
  b.MovR(2, 1).Emit(AluImm(kBpfAdd, 2, 4, /*is64=*/false)).Return(0);
  EXPECT_FALSE(VerifyBuilt(b).ok());
}

TEST(VerifierTest, RejectsPointerComparison) {
  ProgramBuilder b("ptrcmp", &Desc());
  auto l = b.NewLabel();
  b.MovR(2, 1).JmpIf(kBpfJgt, 2, 100, l).Return(0).Bind(l).Return(1);
  EXPECT_FALSE(VerifyBuilt(b).ok());
}

TEST(VerifierTest, RejectsPointerSpillToStack) {
  ProgramBuilder b("spill", &Desc());
  b.Store(kBpfSizeDw, 10, -8, 1).Return(0);  // store ctx pointer
  Status s = VerifyBuilt(b);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("spill"), std::string::npos);
}

TEST(VerifierTest, RejectsBranchOnUninitializedRegister) {
  ProgramBuilder b("branchuninit", &Desc());
  auto l = b.NewLabel();
  b.JmpIf(kBpfJeq, 7, 0, l).Return(0).Bind(l).Return(1);
  EXPECT_FALSE(VerifyBuilt(b).ok());
}

TEST(VerifierTest, TracksBothBranchArms) {
  // r2 initialized only on one arm; the join uses it -> must be rejected.
  ProgramBuilder b("armjoin", &Desc());
  auto skip = b.NewLabel();
  auto join = b.NewLabel();
  b.Load(kBpfSizeDw, 3, 1, 0)
      .JmpIf(kBpfJeq, 3, 0, skip)
      .Mov(2, 1)
      .Jmp(join)
      .Bind(skip)   // r2 not written on this arm
      .Bind(join)
      .MovR(0, 2)
      .Ret();
  EXPECT_FALSE(VerifyBuilt(b).ok());
}

// ---------- helper call checks -----------------------------------------------

TEST(VerifierTest, RejectsUnknownHelper) {
  ProgramBuilder b("nohelper", &Desc());
  b.CallHelper(9999).Ret();
  Status s = VerifyBuilt(b);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("unknown helper"), std::string::npos);
}

TEST(VerifierTest, RejectsHelperOutsideCapabilityMask) {
  ProgramBuilder b("capdenied", &Desc());
  ArrayMap map("m", 8, 1);
  const auto idx = b.DeclareMap(&map);
  b.StoreImm(kBpfSizeW, 10, -4, 0)
      .StoreImm(kBpfSizeDw, 10, -16, 1)
      .Mov(1, static_cast<std::int32_t>(idx))
      .MovR(2, 10)
      .Add(2, -4)
      .MovR(3, 10)
      .Add(3, -16)
      .CallByName("map_update_elem")
      .Return(0);
  Verifier::Options read_only;
  read_only.allowed_capabilities = kCapRead | kCapMapRead;  // no kCapMapWrite
  Status s = VerifyBuilt(b, read_only);
  EXPECT_EQ(s.code(), StatusCode::kPermissionDenied);
  EXPECT_NE(s.message().find("not permitted"), std::string::npos);
}

TEST(VerifierTest, RejectsNonConstantMapIndex) {
  ProgramBuilder b("varmap", &Desc());
  ArrayMap map("m", 8, 1);
  b.DeclareMap(&map);
  b.Load(kBpfSizeDw, 1, 1, 0)  // runtime value as map index
      .StoreImm(kBpfSizeW, 10, -4, 0)
      .MovR(2, 10)
      .Add(2, -4)
      .CallByName("map_lookup_elem")
      .Return(0);
  Status s = VerifyBuilt(b);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("compile-time constant"), std::string::npos);
}

TEST(VerifierTest, RejectsMapIndexOutOfRange) {
  ProgramBuilder b("mapoob", &Desc());
  b.Mov(1, 3)  // program declares no maps
      .StoreImm(kBpfSizeW, 10, -4, 0)
      .MovR(2, 10)
      .Add(2, -4)
      .CallByName("map_lookup_elem")
      .Return(0);
  EXPECT_FALSE(VerifyBuilt(b).ok());
}

TEST(VerifierTest, RejectsUninitializedMapKey) {
  ProgramBuilder b("badkey", &Desc());
  ArrayMap map("m", 8, 1);
  const auto idx = b.DeclareMap(&map);
  b.Mov(1, static_cast<std::int32_t>(idx))
      .MovR(2, 10)
      .Add(2, -4)  // key bytes never written
      .CallByName("map_lookup_elem")
      .Return(0);
  EXPECT_FALSE(VerifyBuilt(b).ok());
}

TEST(VerifierTest, RejectsDerefOfUncheckedMapValue) {
  ProgramBuilder b("nullable", &Desc());
  ArrayMap map("m", 8, 1);
  const auto idx = b.DeclareMap(&map);
  b.StoreImm(kBpfSizeW, 10, -4, 0)
      .Mov(1, static_cast<std::int32_t>(idx))
      .MovR(2, 10)
      .Add(2, -4)
      .CallByName("map_lookup_elem")
      .Load(kBpfSizeDw, 0, 0, 0)  // no null check!
      .Ret();
  Status s = VerifyBuilt(b);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("null-check"), std::string::npos);
}

TEST(VerifierTest, AcceptsDerefAfterNullCheck) {
  ProgramBuilder b("checked", &Desc());
  ArrayMap map("m", 8, 1);
  const auto idx = b.DeclareMap(&map);
  auto miss = b.NewLabel();
  b.StoreImm(kBpfSizeW, 10, -4, 0)
      .Mov(1, static_cast<std::int32_t>(idx))
      .MovR(2, 10)
      .Add(2, -4)
      .CallByName("map_lookup_elem")
      .JmpIf(kBpfJeq, 0, 0, miss)
      .Load(kBpfSizeDw, 0, 0, 0)
      .Ret()
      .Bind(miss)
      .Return(0);
  EXPECT_TRUE(VerifyBuilt(b).ok());
}

TEST(VerifierTest, RejectsMapValueAccessBeyondValueSize) {
  ProgramBuilder b("valoob", &Desc());
  ArrayMap map("m", 8, 1);  // value is 8 bytes
  const auto idx = b.DeclareMap(&map);
  auto miss = b.NewLabel();
  b.StoreImm(kBpfSizeW, 10, -4, 0)
      .Mov(1, static_cast<std::int32_t>(idx))
      .MovR(2, 10)
      .Add(2, -4)
      .CallByName("map_lookup_elem")
      .JmpIf(kBpfJeq, 0, 0, miss)
      .Load(kBpfSizeDw, 0, 0, 8)  // offset 8 is out of bounds
      .Ret()
      .Bind(miss)
      .Return(0);
  EXPECT_FALSE(VerifyBuilt(b).ok());
}

TEST(VerifierTest, RecordsMapLookupSites) {
  ProgramBuilder b("sites", &Desc());
  ArrayMap m0("m0", 8, 1);
  PerCpuArrayMap m1("m1", 8, 1, /*num_cpus=*/2);
  b.DeclareMap(&m0);
  const auto idx1 = b.DeclareMap(&m1);
  auto miss = b.NewLabel();
  b.StoreImm(kBpfSizeW, 10, -4, 0)
      .Mov(1, static_cast<std::int32_t>(idx1))
      .MovR(2, 10)
      .Add(2, -4)
      .CallByName("map_lookup_elem")  // pc 4
      .JmpIf(kBpfJeq, 0, 0, miss)
      .Load(kBpfSizeDw, 0, 0, 0)
      .Ret()
      .Bind(miss)
      .Return(0);
  auto result = b.Build();
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(Verifier::Verify(*result).ok());
  ASSERT_EQ(result->map_lookup_sites.size(), result->insns.size());
  EXPECT_EQ(result->map_lookup_sites[4], static_cast<std::int32_t>(idx1));
  for (std::size_t pc = 0; pc < result->map_lookup_sites.size(); ++pc) {
    if (pc != 4) {
      EXPECT_EQ(result->map_lookup_sites[pc], Program::kNoMapSite) << pc;
    }
  }
}

TEST(VerifierTest, MarksPolymorphicMapLookupSites) {
  // Two verified paths reach the same lookup with different map indexes;
  // the site must degrade to kPolymorphicMapSite so the JIT never inlines a
  // single map's address there.
  ProgramBuilder b("poly", &Desc());
  ArrayMap m0("m0", 8, 1);
  ArrayMap m1("m1", 8, 1);
  b.DeclareMap(&m0);
  b.DeclareMap(&m1);
  auto call = b.NewLabel();
  auto miss = b.NewLabel();
  b.Load(kBpfSizeDw, 3, 1, 0)  // r3 = ctx.in
      .StoreImm(kBpfSizeW, 10, -4, 0)
      .Mov(1, 0)
      .JmpIf(kBpfJeq, 3, 0, call)
      .Mov(1, 1)
      .Bind(call)
      .MovR(2, 10)
      .Add(2, -4)
      .CallByName("map_lookup_elem")  // pc 7, r1 is 0 or 1 here
      .JmpIf(kBpfJeq, 0, 0, miss)
      .Load(kBpfSizeDw, 0, 0, 0)
      .Ret()
      .Bind(miss)
      .Return(0);
  auto result = b.Build();
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(Verifier::Verify(*result).ok());
  ASSERT_EQ(result->map_lookup_sites.size(), result->insns.size());
  EXPECT_EQ(result->map_lookup_sites[7], Program::kPolymorphicMapSite);
}

TEST(VerifierTest, PerCpuMapValueBoundsUseValueSize) {
  // A per-CPU lookup yields a pointer to one CPU's value instance: accesses
  // stay bounded by value_size, not the map's full per-CPU footprint.
  ProgramBuilder b("percpu_bounds", &Desc());
  PerCpuArrayMap map("p", 8, 1, /*num_cpus=*/4);
  const auto idx = b.DeclareMap(&map);
  auto miss = b.NewLabel();
  b.StoreImm(kBpfSizeW, 10, -4, 0)
      .Mov(1, static_cast<std::int32_t>(idx))
      .MovR(2, 10)
      .Add(2, -4)
      .CallByName("map_lookup_elem")
      .JmpIf(kBpfJeq, 0, 0, miss)
      .Load(kBpfSizeDw, 0, 0, 8)  // next CPU's lane — must be rejected
      .Ret()
      .Bind(miss)
      .Return(0);
  EXPECT_FALSE(VerifyBuilt(b).ok());
}

TEST(VerifierTest, RegistersClobberedAcrossCalls) {
  // Using r1 (clobbered by the call) afterwards must be rejected.
  ProgramBuilder b("clobbered", &Desc());
  b.CallByName("ktime_get_ns").MovR(0, 1).Ret();
  EXPECT_FALSE(VerifyBuilt(b).ok());
}

// ---------- atomic add ------------------------------------------------------

TEST(VerifierTest, RejectsAtomicAddToUninitializedStack) {
  ProgramBuilder b("xadd_uninit", &Desc());
  b.Mov(2, 1).Emit(AtomicAdd(kBpfSizeDw, 10, 2, -8)).Return(0);
  Status s = VerifyBuilt(b);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("uninitialized stack"), std::string::npos);
}

TEST(VerifierTest, RejectsByteSizedAtomicAdd) {
  ProgramBuilder b("xadd_byte", &Desc());
  b.StoreImm(kBpfSizeB, 10, -1, 0)
      .Mov(2, 1)
      .Emit(AtomicAdd(kBpfSizeB, 10, 2, -1))
      .Return(0);
  Status s = VerifyBuilt(b);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("word or dword"), std::string::npos);
}

TEST(VerifierTest, RejectsAtomicAddToContext) {
  ProgramBuilder b("xadd_ctx", &Desc());
  b.Mov(2, 1).Emit(AtomicAdd(kBpfSizeW, 1, 2, 8)).Return(0);  // ctx field rw
  Status s = VerifyBuilt(b);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("atomic add to context"), std::string::npos);
}

TEST(VerifierTest, AcceptsAtomicAddToInitializedStack) {
  ProgramBuilder b("xadd_ok", &Desc());
  b.StoreImm(kBpfSizeDw, 10, -8, 1)
      .Mov(2, 1)
      .Emit(AtomicAdd(kBpfSizeDw, 10, 2, -8))
      .Return(0);
  EXPECT_TRUE(VerifyBuilt(b).ok());
}

// ---------- complexity -----------------------------------------------------

TEST(VerifierTest, RejectsStateExplosion) {
  // 40 consecutive branches on distinct unknown bits = 2^40 genuinely
  // distinct paths; must hit max_states. (Equality tests against constants
  // no longer explode: range refinement constant-folds the later branches.)
  ProgramBuilder b("explode", &Desc());
  b.Load(kBpfSizeDw, 2, 1, 0);
  for (int i = 0; i < 40; ++i) {
    auto l = b.NewLabel();
    b.JmpIf(kBpfJset, 2, 1 << (i % 30), l).Bind(l);
  }
  b.Return(0);
  Verifier::Options small;
  small.max_states = 1000;
  Status s = VerifyBuilt(b, small);
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(s.message().find("abstract states"), std::string::npos);
  EXPECT_NE(s.message().find("branch explosion"), std::string::npos);
}

TEST(VerifierTest, ConstantFoldingPrunesDeadBranches) {
  // Branches on known constants don't fork: the same 40-branch chain with
  // constant conditions verifies under a tiny state budget.
  ProgramBuilder b("folded", &Desc());
  b.Mov(2, 123);
  for (int i = 0; i < 40; ++i) {
    auto l = b.NewLabel();
    b.JmpIf(kBpfJeq, 2, 123, l).Return(7).Bind(l);
  }
  b.Return(0);
  Verifier::Options small;
  small.max_states = 100;
  EXPECT_TRUE(VerifyBuilt(b, small).ok());
}

}  // namespace
}  // namespace concord
