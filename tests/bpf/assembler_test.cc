#include "src/bpf/assembler.h"

#include <gtest/gtest.h>

#include "src/bpf/verifier.h"
#include "src/bpf/vm.h"

namespace concord {
namespace {

struct ACtx {
  std::uint64_t x;
  std::uint64_t y;
};

const ContextDescriptor& Desc() {
  static const ContextDescriptor desc("actx", sizeof(ACtx),
                                      {{"x", 0, 8, false}, {"y", 8, 8, false}});
  return desc;
}

std::uint64_t AssembleVerifyRun(const std::string& source, ACtx ctx) {
  auto program = AssembleProgram("t", source, &Desc());
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  Status status = Verifier::Verify(*program);
  EXPECT_TRUE(status.ok()) << status.ToString();
  return BpfVm::Run(*program, &ctx);
}

TEST(AssemblerTest, MinimalProgram) {
  EXPECT_EQ(AssembleVerifyRun("mov r0, 5\nexit\n", {}), 5u);
}

TEST(AssemblerTest, CommentsAndBlankLinesIgnored) {
  const char* source = R"(
    ; a comment-only line

    mov r0, 7   ; trailing comment
    exit
  )";
  EXPECT_EQ(AssembleVerifyRun(source, {}), 7u);
}

TEST(AssemblerTest, RegisterAluForms) {
  const char* source = R"(
    mov r2, 6
    mov r3, 7
    mov r0, r2
    mul r0, r3
    exit
  )";
  EXPECT_EQ(AssembleVerifyRun(source, {}), 42u);
}

TEST(AssemblerTest, Alu32Suffix) {
  const char* source = R"(
    mov r0, -1
    add32 r0, 0
    exit
  )";
  EXPECT_EQ(AssembleVerifyRun(source, {}), 0xffffffffull);
}

TEST(AssemblerTest, NegSingleOperand) {
  const char* source = R"(
    mov r0, 5
    neg r0
    exit
  )";
  EXPECT_EQ(static_cast<std::int64_t>(AssembleVerifyRun(source, {})), -5);
}

TEST(AssemblerTest, ContextLoadsWithOffsets) {
  const char* source = R"(
    ldxdw r2, [r1+0]
    ldxdw r3, [r1+8]
    mov r0, r2
    add r0, r3
    exit
  )";
  EXPECT_EQ(AssembleVerifyRun(source, {11, 31}), 42u);
}

TEST(AssemblerTest, LabelsAndBranches) {
  const char* source = R"(
    ldxdw r2, [r1+0]
    jeq r2, 0, zero
    mov r0, 1
    exit
  zero:
    mov r0, 2
    exit
  )";
  EXPECT_EQ(AssembleVerifyRun(source, {0, 0}), 2u);
  EXPECT_EQ(AssembleVerifyRun(source, {9, 0}), 1u);
}

TEST(AssemblerTest, JaUnconditional) {
  const char* source = R"(
    ja done
    mov r0, 1
    exit
  done:
    mov r0, 9
    exit
  )";
  EXPECT_EQ(AssembleVerifyRun(source, {}), 9u);
}

TEST(AssemblerTest, StackStoreAndLoad) {
  const char* source = R"(
    stdw [r10-8], 1234
    ldxdw r0, [r10-8]
    exit
  )";
  EXPECT_EQ(AssembleVerifyRun(source, {}), 1234u);
}

TEST(AssemblerTest, StxForm) {
  const char* source = R"(
    mov r2, 55
    stxdw [r10-16], r2
    ldxdw r0, [r10-16]
    exit
  )";
  EXPECT_EQ(AssembleVerifyRun(source, {}), 55u);
}

TEST(AssemblerTest, Lddw64BitImmediate) {
  const char* source = R"(
    lddw r0, 0x123456789abcdef0
    exit
  )";
  EXPECT_EQ(AssembleVerifyRun(source, {}), 0x123456789abcdef0ull);
}

TEST(AssemblerTest, CallByHelperName) {
  const char* source = R"(
    call get_numa_node_id
    exit
  )";
  EXPECT_LT(AssembleVerifyRun(source, {}), 8u);
}

TEST(AssemblerTest, CallByNumericId) {
  const char* source = R"(
    call 3   ; get_numa_node_id
    exit
  )";
  EXPECT_LT(AssembleVerifyRun(source, {}), 8u);
}

TEST(AssemblerTest, Jmp32Forms) {
  // Same low word, different high word: jeq32 takes, jeq does not.
  const char* source = R"(
    lddw r2, 0x100000001
    lddw r3, 0x200000001
    jeq32 r2, r3, same_lo
    mov r0, 0
    exit
  same_lo:
    jeq r2, r3, same_full
    mov r0, 1
    exit
  same_full:
    mov r0, 2
    exit
  )";
  EXPECT_EQ(AssembleVerifyRun(source, {}), 1u);
}

TEST(AssemblerTest, XaddForm) {
  const char* source = R"(
    stdw [r10-8], 40
    mov r2, 2
    xadddw [r10-8], r2
    ldxdw r0, [r10-8]
    exit
  )";
  EXPECT_EQ(AssembleVerifyRun(source, {}), 42u);
}

TEST(AssemblerTest, XaddRejectsNarrowWidths) {
  auto result =
      AssembleProgram("t", "xaddb [r10-1], r2\nexit\n", &Desc());
  EXPECT_FALSE(result.ok());
}

TEST(AssemblerTest, RejectsUnknownMnemonic) {
  auto result = AssembleProgram("t", "frobnicate r0, 1\nexit\n", &Desc());
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("unknown mnemonic"), std::string::npos);
}

TEST(AssemblerTest, RejectsUndefinedLabel) {
  auto result = AssembleProgram("t", "ja nowhere\nexit\n", &Desc());
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("undefined label"), std::string::npos);
}

TEST(AssemblerTest, RejectsDuplicateLabel) {
  auto result =
      AssembleProgram("t", "a:\nmov r0, 1\na:\nexit\n", &Desc());
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("duplicate label"), std::string::npos);
}

TEST(AssemblerTest, RejectsBadRegister) {
  auto result = AssembleProgram("t", "mov r11, 1\nexit\n", &Desc());
  EXPECT_FALSE(result.ok());
}

TEST(AssemblerTest, RejectsUnknownHelperName) {
  auto result = AssembleProgram("t", "call does_not_exist\nexit\n", &Desc());
  EXPECT_FALSE(result.ok());
}

TEST(AssemblerTest, ErrorsCarryLineNumbers) {
  auto result = AssembleProgram("t", "mov r0, 0\nbogus\nexit\n", &Desc());
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("line 2"), std::string::npos);
}

TEST(AssemblerTest, NegativeOffsetsInBrackets) {
  const char* source = R"(
    stdw [r10-32], 5
    ldxdw r0, [r10-32]
    exit
  )";
  EXPECT_EQ(AssembleVerifyRun(source, {}), 5u);
}

}  // namespace
}  // namespace concord
