#include "src/bpf/assembler.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/bpf/maps.h"
#include "src/bpf/verifier.h"
#include "src/bpf/vm.h"

namespace concord {
namespace {

struct ACtx {
  std::uint64_t x;
  std::uint64_t y;
};

const ContextDescriptor& Desc() {
  static const ContextDescriptor desc("actx", sizeof(ACtx),
                                      {{"x", 0, 8, false}, {"y", 8, 8, false}});
  return desc;
}

std::uint64_t AssembleVerifyRun(const std::string& source, ACtx ctx) {
  auto program = AssembleProgram("t", source, &Desc());
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  Status status = Verifier::Verify(*program);
  EXPECT_TRUE(status.ok()) << status.ToString();
  return BpfVm::Run(*program, &ctx);
}

TEST(AssemblerTest, MinimalProgram) {
  EXPECT_EQ(AssembleVerifyRun("mov r0, 5\nexit\n", {}), 5u);
}

TEST(AssemblerTest, CommentsAndBlankLinesIgnored) {
  const char* source = R"(
    ; a comment-only line

    mov r0, 7   ; trailing comment
    exit
  )";
  EXPECT_EQ(AssembleVerifyRun(source, {}), 7u);
}

TEST(AssemblerTest, RegisterAluForms) {
  const char* source = R"(
    mov r2, 6
    mov r3, 7
    mov r0, r2
    mul r0, r3
    exit
  )";
  EXPECT_EQ(AssembleVerifyRun(source, {}), 42u);
}

TEST(AssemblerTest, Alu32Suffix) {
  const char* source = R"(
    mov r0, -1
    add32 r0, 0
    exit
  )";
  EXPECT_EQ(AssembleVerifyRun(source, {}), 0xffffffffull);
}

TEST(AssemblerTest, NegSingleOperand) {
  const char* source = R"(
    mov r0, 5
    neg r0
    exit
  )";
  EXPECT_EQ(static_cast<std::int64_t>(AssembleVerifyRun(source, {})), -5);
}

TEST(AssemblerTest, ContextLoadsWithOffsets) {
  const char* source = R"(
    ldxdw r2, [r1+0]
    ldxdw r3, [r1+8]
    mov r0, r2
    add r0, r3
    exit
  )";
  EXPECT_EQ(AssembleVerifyRun(source, {11, 31}), 42u);
}

TEST(AssemblerTest, LabelsAndBranches) {
  const char* source = R"(
    ldxdw r2, [r1+0]
    jeq r2, 0, zero
    mov r0, 1
    exit
  zero:
    mov r0, 2
    exit
  )";
  EXPECT_EQ(AssembleVerifyRun(source, {0, 0}), 2u);
  EXPECT_EQ(AssembleVerifyRun(source, {9, 0}), 1u);
}

TEST(AssemblerTest, JaUnconditional) {
  const char* source = R"(
    ja done
    mov r0, 1
    exit
  done:
    mov r0, 9
    exit
  )";
  EXPECT_EQ(AssembleVerifyRun(source, {}), 9u);
}

TEST(AssemblerTest, StackStoreAndLoad) {
  const char* source = R"(
    stdw [r10-8], 1234
    ldxdw r0, [r10-8]
    exit
  )";
  EXPECT_EQ(AssembleVerifyRun(source, {}), 1234u);
}

TEST(AssemblerTest, StxForm) {
  const char* source = R"(
    mov r2, 55
    stxdw [r10-16], r2
    ldxdw r0, [r10-16]
    exit
  )";
  EXPECT_EQ(AssembleVerifyRun(source, {}), 55u);
}

TEST(AssemblerTest, Lddw64BitImmediate) {
  const char* source = R"(
    lddw r0, 0x123456789abcdef0
    exit
  )";
  EXPECT_EQ(AssembleVerifyRun(source, {}), 0x123456789abcdef0ull);
}

TEST(AssemblerTest, CallByHelperName) {
  const char* source = R"(
    call get_numa_node_id
    exit
  )";
  EXPECT_LT(AssembleVerifyRun(source, {}), 8u);
}

TEST(AssemblerTest, CallByNumericId) {
  const char* source = R"(
    call 3   ; get_numa_node_id
    exit
  )";
  EXPECT_LT(AssembleVerifyRun(source, {}), 8u);
}

TEST(AssemblerTest, Jmp32Forms) {
  // Same low word, different high word: jeq32 takes, jeq does not.
  const char* source = R"(
    lddw r2, 0x100000001
    lddw r3, 0x200000001
    jeq32 r2, r3, same_lo
    mov r0, 0
    exit
  same_lo:
    jeq r2, r3, same_full
    mov r0, 1
    exit
  same_full:
    mov r0, 2
    exit
  )";
  EXPECT_EQ(AssembleVerifyRun(source, {}), 1u);
}

TEST(AssemblerTest, XaddForm) {
  const char* source = R"(
    stdw [r10-8], 40
    mov r2, 2
    xadddw [r10-8], r2
    ldxdw r0, [r10-8]
    exit
  )";
  EXPECT_EQ(AssembleVerifyRun(source, {}), 42u);
}

TEST(AssemblerTest, XaddRejectsNarrowWidths) {
  auto result =
      AssembleProgram("t", "xaddb [r10-1], r2\nexit\n", &Desc());
  EXPECT_FALSE(result.ok());
}

TEST(AssemblerTest, RejectsUnknownMnemonic) {
  auto result = AssembleProgram("t", "frobnicate r0, 1\nexit\n", &Desc());
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("unknown mnemonic"), std::string::npos);
}

TEST(AssemblerTest, RejectsUndefinedLabel) {
  auto result = AssembleProgram("t", "ja nowhere\nexit\n", &Desc());
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("undefined label"), std::string::npos);
}

TEST(AssemblerTest, RejectsDuplicateLabel) {
  auto result =
      AssembleProgram("t", "a:\nmov r0, 1\na:\nexit\n", &Desc());
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("duplicate label"), std::string::npos);
}

TEST(AssemblerTest, RejectsBadRegister) {
  auto result = AssembleProgram("t", "mov r11, 1\nexit\n", &Desc());
  EXPECT_FALSE(result.ok());
}

TEST(AssemblerTest, RejectsUnknownHelperName) {
  auto result = AssembleProgram("t", "call does_not_exist\nexit\n", &Desc());
  EXPECT_FALSE(result.ok());
}

TEST(AssemblerTest, ErrorsCarryLineNumbers) {
  auto result = AssembleProgram("t", "mov r0, 0\nbogus\nexit\n", &Desc());
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("line 2"), std::string::npos);
}

TEST(AssemblerTest, NegativeOffsetsInBrackets) {
  const char* source = R"(
    stdw [r10-32], 5
    ldxdw r0, [r10-32]
    exit
  )";
  EXPECT_EQ(AssembleVerifyRun(source, {}), 5u);
}

// ---------- .map directives -------------------------------------------------

TEST(AssemblerTest, MapDirectiveDeclaresAllKinds) {
  const char* source = R"(
    .map knobs, array, 8, 4
    .map counters, percpu_array, 8, 4
    .map census, hash, 8, 8, 16
    .map percensus, percpu_hash, 8, 8, 16
    mov r0, 0
    exit
  )";
  std::vector<std::shared_ptr<BpfMap>> declared;
  auto program = AssembleProgram("t", source, &Desc(), {}, &declared);
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  ASSERT_EQ(declared.size(), 4u);
  EXPECT_EQ(declared[0]->type(), MapType::kArray);
  EXPECT_EQ(declared[1]->type(), MapType::kPerCpuArray);
  EXPECT_EQ(declared[2]->type(), MapType::kHash);
  EXPECT_EQ(declared[3]->type(), MapType::kPerCpuHash);
  EXPECT_EQ(declared[1]->name(), "counters");
  EXPECT_TRUE(declared[1]->is_per_cpu());
  EXPECT_TRUE(declared[3]->is_per_cpu());
  EXPECT_GE(declared[1]->num_cpus(), 1u);
  // Declared maps are addressable by index after any caller-passed maps.
  ASSERT_EQ(program->maps.size(), 4u);
  EXPECT_EQ(program->maps[2], declared[2].get());
}

TEST(AssemblerTest, MapDirectiveUsableFromProgram) {
  const char* source = R"(
    .map counters, percpu_array, 8, 4
    stw [r10-4], 0
    mov r1, 0
    mov r2, r10
    add r2, -4
    call map_lookup_elem
    jeq r0, 0, miss
    ldxdw r0, [r0+0]
    exit
  miss:
    mov r0, 0
    exit
  )";
  std::vector<std::shared_ptr<BpfMap>> declared;
  auto program = AssembleProgram("t", source, &Desc(), {}, &declared);
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  ASSERT_TRUE(Verifier::Verify(*program).ok());
  ACtx ctx{};
  EXPECT_EQ(BpfVm::Run(*program, &ctx), 0u);
}

TEST(AssemblerTest, MapDirectiveRejectedWithoutSink) {
  auto result =
      AssembleProgram("t", ".map m, array, 8, 4\nexit\n", &Desc());
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("not accepted"), std::string::npos);
}

TEST(AssemblerTest, MapDirectiveRejectsDuplicateName) {
  const char* source = R"(
    .map m, array, 8, 4
    .map m, hash, 8, 8, 4
    exit
  )";
  std::vector<std::shared_ptr<BpfMap>> declared;
  auto result = AssembleProgram("t", source, &Desc(), {}, &declared);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("duplicate map"), std::string::npos);
}

TEST(AssemblerTest, MapDirectiveRejectsBadDimsAndType) {
  std::vector<std::shared_ptr<BpfMap>> declared;
  EXPECT_FALSE(
      AssembleProgram("t", ".map m, bogus_kind, 8, 4\nexit\n", &Desc(), {},
                      &declared)
          .ok());
  EXPECT_FALSE(
      AssembleProgram("t", ".map m, array, 8\nexit\n", &Desc(), {}, &declared)
          .ok());  // missing max_entries
  EXPECT_FALSE(
      AssembleProgram("t", ".map m, hash, 8, 8\nexit\n", &Desc(), {}, &declared)
          .ok());  // hash needs key, value, max
  EXPECT_FALSE(AssembleProgram("t", ".map m, array, 0, 4\nexit\n", &Desc(), {},
                               &declared)
                   .ok());  // zero value size
}

}  // namespace
}  // namespace concord
