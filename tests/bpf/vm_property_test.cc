// Property tests: the interpreter's ALU/JMP semantics must match host
// arithmetic for randomized operands, across every opcode — parameterized
// sweeps rather than hand-picked cases.

#include <gtest/gtest.h>

#include "src/base/rng.h"
#include "src/bpf/builder.h"
#include "src/bpf/verifier.h"
#include "src/bpf/vm.h"

namespace concord {
namespace {

struct PropCtx {
  std::uint64_t x;
  std::uint64_t y;
};

const ContextDescriptor& Desc() {
  static const ContextDescriptor desc("prop_ctx", sizeof(PropCtx),
                                      {{"x", 0, 8, false}, {"y", 8, 8, false}});
  return desc;
}

// Builds r0 = x <op> y (64-bit register form), verified.
Program BuildAluProgram(std::uint8_t op, bool is64) {
  ProgramBuilder b("prop", &Desc());
  b.Load(kBpfSizeDw, 2, 1, 0)
      .Load(kBpfSizeDw, 3, 1, 8)
      .MovR(0, 2)
      .Emit(AluReg(op, 0, 3, is64))
      .Ret();
  auto program = b.Build();
  EXPECT_TRUE(program.ok());
  EXPECT_TRUE(Verifier::Verify(*program).ok()) << "op " << int(op);
  return std::move(*program);
}

std::uint64_t HostAlu64(std::uint8_t op, std::uint64_t x, std::uint64_t y) {
  switch (op) {
    case kBpfAdd:
      return x + y;
    case kBpfSub:
      return x - y;
    case kBpfMul:
      return x * y;
    case kBpfDiv:
      return y == 0 ? 0 : x / y;
    case kBpfOr:
      return x | y;
    case kBpfAnd:
      return x & y;
    case kBpfLsh:
      return x << (y & 63);
    case kBpfRsh:
      return x >> (y & 63);
    case kBpfMod:
      return y == 0 ? x : x % y;
    case kBpfXor:
      return x ^ y;
    case kBpfMov:
      return y;
    case kBpfArsh:
      return static_cast<std::uint64_t>(static_cast<std::int64_t>(x) >> (y & 63));
    default:
      return 0;
  }
}

class AluOpProperty : public ::testing::TestWithParam<std::uint8_t> {};

TEST_P(AluOpProperty, Vm64BitMatchesHost) {
  const std::uint8_t op = GetParam();
  Program program = BuildAluProgram(op, /*is64=*/true);
  Xoshiro256 rng(op * 1000003 + 17);
  for (int i = 0; i < 500; ++i) {
    PropCtx ctx{rng.Next(), rng.Next()};
    // Include tricky operands regularly.
    if (i % 7 == 0) {
      ctx.y = 0;
    }
    if (i % 11 == 0) {
      ctx.x = ~0ull;
    }
    if (i % 13 == 0) {
      ctx.y = 63;
    }
    EXPECT_EQ(BpfVm::Run(program, &ctx), HostAlu64(op, ctx.x, ctx.y))
        << "op=" << int(op) << " x=" << ctx.x << " y=" << ctx.y;
  }
}

TEST_P(AluOpProperty, Vm32BitMatchesTruncatedHost) {
  const std::uint8_t op = GetParam();
  Program program = BuildAluProgram(op, /*is64=*/false);
  Xoshiro256 rng(op * 999331 + 3);
  for (int i = 0; i < 500; ++i) {
    PropCtx ctx{rng.Next(), rng.Next()};
    if (i % 5 == 0) {
      ctx.y = 0;
    }
    const std::uint64_t x32 = ctx.x & 0xffffffffull;
    const std::uint64_t y32 = ctx.y & 0xffffffffull;
    std::uint64_t expected;
    switch (op) {
      case kBpfLsh:
        expected = (x32 << (y32 & 31)) & 0xffffffffull;
        break;
      case kBpfRsh:
        expected = (x32 >> (y32 & 31)) & 0xffffffffull;
        break;
      case kBpfArsh:
        expected = static_cast<std::uint64_t>(static_cast<std::uint64_t>(
                       static_cast<std::int32_t>(x32) >> (y32 & 31))) &
                   0xffffffffull;
        break;
      default:
        expected = HostAlu64(op, x32, y32) & 0xffffffffull;
        break;
    }
    EXPECT_EQ(BpfVm::Run(program, &ctx), expected)
        << "op=" << int(op) << " x=" << ctx.x << " y=" << ctx.y;
  }
}

INSTANTIATE_TEST_SUITE_P(AllAluOps, AluOpProperty,
                         ::testing::Values(kBpfAdd, kBpfSub, kBpfMul, kBpfDiv,
                                           kBpfOr, kBpfAnd, kBpfLsh, kBpfRsh,
                                           kBpfMod, kBpfXor, kBpfMov, kBpfArsh));

// --- conditional jumps -------------------------------------------------------

bool HostJmp(std::uint8_t op, std::uint64_t x, std::uint64_t y) {
  const auto sx = static_cast<std::int64_t>(x);
  const auto sy = static_cast<std::int64_t>(y);
  switch (op) {
    case kBpfJeq:
      return x == y;
    case kBpfJne:
      return x != y;
    case kBpfJgt:
      return x > y;
    case kBpfJge:
      return x >= y;
    case kBpfJlt:
      return x < y;
    case kBpfJle:
      return x <= y;
    case kBpfJsgt:
      return sx > sy;
    case kBpfJsge:
      return sx >= sy;
    case kBpfJslt:
      return sx < sy;
    case kBpfJsle:
      return sx <= sy;
    case kBpfJset:
      return (x & y) != 0;
    default:
      return false;
  }
}

class JmpOpProperty : public ::testing::TestWithParam<std::uint8_t> {};

TEST_P(JmpOpProperty, VmBranchMatchesHost) {
  const std::uint8_t op = GetParam();
  ProgramBuilder b("jprop", &Desc());
  auto taken = b.NewLabel();
  b.Load(kBpfSizeDw, 2, 1, 0)
      .Load(kBpfSizeDw, 3, 1, 8)
      .JmpIfR(op, 2, 3, taken)
      .Return(0)
      .Bind(taken)
      .Return(1);
  auto program = b.Build();
  ASSERT_TRUE(program.ok());
  ASSERT_TRUE(Verifier::Verify(*program).ok());

  Xoshiro256 rng(op * 31337 + 5);
  for (int i = 0; i < 500; ++i) {
    PropCtx ctx{rng.Next(), rng.Next()};
    if (i % 3 == 0) {
      ctx.y = ctx.x;  // exercise equality edges frequently
    }
    if (i % 9 == 0) {
      ctx.x = static_cast<std::uint64_t>(-static_cast<std::int64_t>(ctx.x));
    }
    EXPECT_EQ(BpfVm::Run(*program, &ctx), HostJmp(op, ctx.x, ctx.y) ? 1u : 0u)
        << "op=" << int(op) << " x=" << ctx.x << " y=" << ctx.y;
  }
}

INSTANTIATE_TEST_SUITE_P(AllJmpOps, JmpOpProperty,
                         ::testing::Values(kBpfJeq, kBpfJne, kBpfJgt, kBpfJge,
                                           kBpfJlt, kBpfJle, kBpfJsgt, kBpfJsge,
                                           kBpfJslt, kBpfJsle, kBpfJset));

bool HostJmp32(std::uint8_t op, std::uint64_t x, std::uint64_t y) {
  const std::uint32_t x32 = static_cast<std::uint32_t>(x);
  const std::uint32_t y32 = static_cast<std::uint32_t>(y);
  const auto sx = static_cast<std::int32_t>(x32);
  const auto sy = static_cast<std::int32_t>(y32);
  switch (op) {
    case kBpfJeq:
      return x32 == y32;
    case kBpfJne:
      return x32 != y32;
    case kBpfJgt:
      return x32 > y32;
    case kBpfJge:
      return x32 >= y32;
    case kBpfJlt:
      return x32 < y32;
    case kBpfJle:
      return x32 <= y32;
    case kBpfJsgt:
      return sx > sy;
    case kBpfJsge:
      return sx >= sy;
    case kBpfJslt:
      return sx < sy;
    case kBpfJsle:
      return sx <= sy;
    case kBpfJset:
      return (x32 & y32) != 0;
    default:
      return false;
  }
}

class Jmp32OpProperty : public ::testing::TestWithParam<std::uint8_t> {};

TEST_P(Jmp32OpProperty, VmBranch32MatchesHost) {
  const std::uint8_t op = GetParam();
  ProgramBuilder b("j32prop", &Desc());
  auto taken = b.NewLabel();
  b.Load(kBpfSizeDw, 2, 1, 0)
      .Load(kBpfSizeDw, 3, 1, 8)
      .Emit(JmpReg(op, 2, 3, 0, /*is64=*/false))
      .Return(0)
      .Bind(taken)
      .Return(1);
  // Patch the jmp32 displacement to the `taken` label by rebuilding via
  // JmpIfR-equivalent: easiest is to construct manually.
  auto program = b.Build();
  ASSERT_TRUE(program.ok());
  // Find the jmp32 insn and point it at the last Return(1) (2 insns from end).
  for (auto& insn : program->insns) {
    if (insn.Class() == kBpfClassJmp32) {
      insn.off = 2;  // skip mov r0,0 + exit
    }
  }
  ASSERT_TRUE(Verifier::Verify(*program).ok());

  Xoshiro256 rng(op * 7151 + 9);
  for (int i = 0; i < 500; ++i) {
    PropCtx ctx{rng.Next(), rng.Next()};
    if (i % 3 == 0) {
      // Same low 32 bits, different high bits: the discriminating case.
      ctx.y = (ctx.x & 0xffffffffull) | (rng.Next() << 32);
    }
    EXPECT_EQ(BpfVm::Run(*program, &ctx), HostJmp32(op, ctx.x, ctx.y) ? 1u : 0u)
        << "op=" << int(op) << " x=" << ctx.x << " y=" << ctx.y;
  }
}

INSTANTIATE_TEST_SUITE_P(AllJmp32Ops, Jmp32OpProperty,
                         ::testing::Values(kBpfJeq, kBpfJne, kBpfJgt, kBpfJge,
                                           kBpfJlt, kBpfJle, kBpfJsgt, kBpfJsge,
                                           kBpfJslt, kBpfJsle, kBpfJset));

// --- stack width matrix ------------------------------------------------------

class StackWidthProperty
    : public ::testing::TestWithParam<std::pair<std::uint8_t, std::uint64_t>> {};

TEST_P(StackWidthProperty, StoreLoadRoundTripsWithTruncation) {
  const auto [size, mask] = GetParam();
  ProgramBuilder b("stackw", &Desc());
  b.Load(kBpfSizeDw, 2, 1, 0)
      .Store(size, 10, -8, 2)
      .Load(size, 0, 10, -8)
      .Ret();
  auto program = b.Build();
  ASSERT_TRUE(program.ok());
  ASSERT_TRUE(Verifier::Verify(*program).ok());
  Xoshiro256 rng(size + 99);
  for (int i = 0; i < 200; ++i) {
    PropCtx ctx{rng.Next(), 0};
    EXPECT_EQ(BpfVm::Run(*program, &ctx), ctx.x & mask);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllWidths, StackWidthProperty,
    ::testing::Values(std::pair<std::uint8_t, std::uint64_t>{kBpfSizeB, 0xffull},
                      std::pair<std::uint8_t, std::uint64_t>{kBpfSizeH, 0xffffull},
                      std::pair<std::uint8_t, std::uint64_t>{kBpfSizeW,
                                                             0xffffffffull},
                      std::pair<std::uint8_t, std::uint64_t>{kBpfSizeDw,
                                                             ~0ull}));

}  // namespace
}  // namespace concord
