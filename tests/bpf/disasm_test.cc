#include <gtest/gtest.h>

#include "src/bpf/insn.h"

namespace concord {
namespace {

TEST(DisasmTest, AluImmediateForms) {
  EXPECT_EQ(DisassembleInsn(MovImm(3, 42)), "mov r3, 42");
  EXPECT_EQ(DisassembleInsn(AluImm(kBpfAdd, 1, -5)), "add r1, -5");
  EXPECT_EQ(DisassembleInsn(AluImm(kBpfXor, 2, 0xff)), "xor r2, 255");
}

TEST(DisasmTest, AluRegisterForms) {
  EXPECT_EQ(DisassembleInsn(MovReg(0, 6)), "mov r0, r6");
  EXPECT_EQ(DisassembleInsn(AluReg(kBpfMul, 4, 5)), "mul r4, r5");
}

TEST(DisasmTest, Alu32Suffix) {
  EXPECT_EQ(DisassembleInsn(AluImm(kBpfAdd, 1, 2, /*is64=*/false)),
            "add32 r1, 2");
}

TEST(DisasmTest, Jumps) {
  EXPECT_EQ(DisassembleInsn(Jump(5)), "ja +5");
  EXPECT_EQ(DisassembleInsn(JmpImm(kBpfJeq, 2, 0, 3)), "jeq r2, 0, +3");
  EXPECT_EQ(DisassembleInsn(JmpReg(kBpfJsgt, 1, 2, -4)), "jsgt r1, r2, -4");
  EXPECT_EQ(DisassembleInsn(Exit()), "exit");
  EXPECT_EQ(DisassembleInsn(Call(7)), "call 7");
}

TEST(DisasmTest, MemoryForms) {
  EXPECT_EQ(DisassembleInsn(LoadMem(kBpfSizeDw, 2, 1, 8)), "ldxdw r2, [r1+8]");
  EXPECT_EQ(DisassembleInsn(LoadMem(kBpfSizeW, 0, 10, -4)), "ldxw r0, [r10-4]");
  EXPECT_EQ(DisassembleInsn(StoreMemReg(kBpfSizeH, 10, 3, -16)),
            "stxh [r10-16], r3");
  EXPECT_EQ(DisassembleInsn(StoreMemImm(kBpfSizeB, 10, -1, 7)),
            "stb [r10-1], 7");
}

TEST(DisasmTest, Jmp32Suffix) {
  EXPECT_EQ(DisassembleInsn(JmpImm(kBpfJgt, 2, 7, 3, /*is64=*/false)),
            "jgt32 r2, 7, +3");
  EXPECT_EQ(DisassembleInsn(JmpReg(kBpfJslt, 1, 2, -1, /*is64=*/false)),
            "jslt32 r1, r2, -1");
}

TEST(DisasmTest, XaddForm) {
  EXPECT_EQ(DisassembleInsn(AtomicAdd(kBpfSizeDw, 0, 2, 8)),
            "xadddw [r0+8], r2");
}

TEST(InsnTest, EncodingIsEightBytes) {
  EXPECT_EQ(sizeof(Insn), 8u);
}

TEST(InsnTest, FieldAccessors) {
  const Insn insn = JmpReg(kBpfJge, 3, 4, 10);
  EXPECT_EQ(insn.Class(), kBpfClassJmp);
  EXPECT_EQ(insn.JmpOp(), kBpfJge);
  EXPECT_TRUE(insn.UsesSrcReg());
  EXPECT_EQ(insn.dst, 3);
  EXPECT_EQ(insn.src, 4);
  EXPECT_EQ(insn.off, 10);

  const Insn load = LoadMem(kBpfSizeH, 1, 2, -8);
  EXPECT_EQ(load.Class(), kBpfClassLdx);
  EXPECT_EQ(load.Size(), kBpfSizeH);
  EXPECT_EQ(ByteWidth(load.Size()), 2);
  EXPECT_EQ(load.Mode(), kBpfModeMem);
}

TEST(InsnTest, ByteWidths) {
  EXPECT_EQ(ByteWidth(kBpfSizeB), 1);
  EXPECT_EQ(ByteWidth(kBpfSizeH), 2);
  EXPECT_EQ(ByteWidth(kBpfSizeW), 4);
  EXPECT_EQ(ByteWidth(kBpfSizeDw), 8);
}

TEST(InsnTest, LoadImm64SplitsValue) {
  const std::uint64_t value = 0xdeadbeefcafebabeull;
  const Insn first = LoadImm64First(5, value);
  const Insn second = LoadImm64Second(value);
  EXPECT_EQ(static_cast<std::uint32_t>(first.imm), 0xcafebabeu);
  EXPECT_EQ(static_cast<std::uint32_t>(second.imm), 0xdeadbeefu);
  EXPECT_EQ(first.dst, 5);
  EXPECT_EQ(second.opcode, 0);
}

}  // namespace
}  // namespace concord
