#include "src/topology/topology.h"

#include <gtest/gtest.h>

namespace concord {
namespace {

TEST(TopologyTest, DefaultShapeIsPaperMachine) {
  // The default virtual machine mirrors the paper's testbed: 8 sockets,
  // 10 cores each.
  MachineTopology& topo = MachineTopology::Global();
  EXPECT_EQ(topo.num_sockets(), 8u);
  EXPECT_EQ(topo.total_cpus(), 80u);
}

TEST(TopologyTest, SocketArithmetic) {
  MachineTopology& topo = MachineTopology::Global();
  EXPECT_EQ(topo.SocketOfCpu(0), 0u);
  EXPECT_EQ(topo.SocketOfCpu(9), 0u);
  EXPECT_EQ(topo.SocketOfCpu(10), 1u);
  EXPECT_EQ(topo.SocketOfCpu(79), 7u);
  EXPECT_EQ(topo.CoreInSocket(25), 5u);
}

TEST(TopologyTest, ConfigChangesShape) {
  MachineTopology& topo = MachineTopology::Global();
  topo.ResetForTest();
  topo.Configure({.num_sockets = 2, .cores_per_socket = 4});
  EXPECT_EQ(topo.total_cpus(), 8u);
  EXPECT_EQ(topo.SocketOfCpu(4), 1u);
  // Restore the paper default for other tests in this binary.
  topo.ResetForTest();
  topo.Configure({.num_sockets = 8, .cores_per_socket = 10});
}

TEST(TopologyTest, AssignNextCpuRoundRobinsAndWraps) {
  MachineTopology& topo = MachineTopology::Global();
  topo.ResetForTest();
  topo.Configure({.num_sockets = 2, .cores_per_socket = 2});
  EXPECT_EQ(topo.AssignNextCpu(), 0u);
  EXPECT_EQ(topo.AssignNextCpu(), 1u);
  EXPECT_EQ(topo.AssignNextCpu(), 2u);
  EXPECT_EQ(topo.AssignNextCpu(), 3u);
  EXPECT_EQ(topo.AssignNextCpu(), 0u);  // wraps
  topo.ResetForTest();
  topo.Configure({.num_sockets = 8, .cores_per_socket = 10});
}

}  // namespace
}  // namespace concord
