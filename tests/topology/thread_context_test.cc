#include "src/topology/thread_context.h"

#include <gtest/gtest.h>

#include <mutex>
#include <set>
#include <thread>
#include <vector>

namespace concord {
namespace {

TEST(ThreadContextTest, CurrentRegistersLazily) {
  ThreadContext& ctx = Self();
  EXPECT_TRUE(ThreadRegistry::Global().IsCurrentRegistered());
  // Same context on repeated calls.
  EXPECT_EQ(&ctx, &Self());
}

TEST(ThreadContextTest, SocketDerivedFromVcpu) {
  ThreadContext& ctx = Self();
  EXPECT_EQ(ctx.socket, MachineTopology::Global().SocketOfCpu(ctx.vcpu));
}

TEST(ThreadContextTest, DistinctThreadsGetDistinctIds) {
  std::set<std::uint32_t> ids;
  std::mutex mu;
  std::vector<std::thread> threads;
  for (int i = 0; i < 8; ++i) {
    threads.emplace_back([&] {
      ThreadContext& ctx = Self();
      std::lock_guard<std::mutex> guard(mu);
      ids.insert(ctx.task_id);
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(ids.size(), 8u);
}

TEST(ThreadContextTest, ExplicitRegistrationPinsVcpu) {
  std::thread t([] {
    ThreadContext& ctx = ThreadRegistry::Global().RegisterCurrent(42);
    EXPECT_EQ(ctx.vcpu, 42u);
    EXPECT_EQ(ctx.socket, 4u);  // 42 / 10 with the 8x10 default topology
  });
  t.join();
}

TEST(ThreadContextTest, EwmaConvergesTowardSamples) {
  std::thread t([] {
    ThreadContext& ctx = Self();
    for (int i = 0; i < 200; ++i) {
      ctx.UpdateCsEwma(800);
    }
    const std::uint64_t ewma = ctx.cs_length_ewma_ns.load(std::memory_order_relaxed);
    // Fixed-point EWMA converges just below the sample value.
    EXPECT_GT(ewma, 700u);
    EXPECT_LE(ewma, 800u);
  });
  t.join();
}

TEST(ThreadContextTest, AnnotationsAreVisible) {
  std::thread t([] {
    ThreadContext& ctx = Self();
    ctx.priority.store(7, std::memory_order_relaxed);
    ctx.task_class.store(static_cast<std::uint8_t>(TaskClass::kLatencyCritical),
                         std::memory_order_relaxed);
    EXPECT_EQ(ctx.priority.load(std::memory_order_relaxed), 7);
    EXPECT_EQ(ctx.Class(), TaskClass::kLatencyCritical);
  });
  t.join();
}

TEST(ThreadContextTest, RegistryIndexedAccess) {
  ThreadContext& ctx = Self();
  ThreadContext& same = ThreadRegistry::Global().Get(ctx.task_id);
  EXPECT_EQ(&ctx, &same);
}

}  // namespace
}  // namespace concord
