#include "src/sim/locks.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "src/concord/policies.h"
#include "src/sim/workloads.h"

namespace concord {
namespace {

// Generic mutual-exclusion probe: N vthreads hammer lock/unlock around a
// non-atomic counter and an inside-flag.
template <typename LockT, typename LockFn, typename UnlockFn>
void RunExclusionProbe(SimEngine& engine, LockT& lock, LockFn do_lock,
                       UnlockFn do_unlock, int threads, int iters,
                       std::uint64_t* counter, bool* violated) {
  auto worker = [](SimEngine& eng, LockT& l, LockFn lk, UnlockFn ul, int n,
                   std::uint64_t* c, bool* bad, int* inside) -> SimTask<> {
    for (int i = 0; i < n; ++i) {
      auto token = co_await lk(l);
      if (++*inside != 1) {
        *bad = true;
      }
      co_await eng.Delay(20);
      --*inside;
      *c += 1;
      co_await ul(l, token);
      co_await eng.Delay(10);
    }
  };
  auto inside = std::make_unique<int>(0);
  for (int t = 0; t < threads; ++t) {
    engine.Spawn(t, worker(engine, lock, do_lock, do_unlock, iters, counter,
                           violated, inside.get()));
  }
  engine.Run(~0ull >> 1);
}

TEST(SimLockTest, TicketLockMutualExclusion) {
  SimEngine engine;
  SimTicketLock lock(engine);
  std::uint64_t counter = 0;
  bool violated = false;
  RunExclusionProbe(
      engine, lock,
      [](SimTicketLock& l) -> SimTask<std::uint64_t> {
        co_await l.Lock();
        co_return 0;
      },
      [](SimTicketLock& l, std::uint64_t) -> SimTask<> { co_await l.Unlock(); },
      8, 50, &counter, &violated);
  EXPECT_EQ(counter, 8u * 50u);
  EXPECT_FALSE(violated);
}

TEST(SimLockTest, McsLockMutualExclusion) {
  SimEngine engine;
  SimMcsLock lock(engine);
  std::uint64_t counter = 0;
  bool violated = false;
  RunExclusionProbe(
      engine, lock,
      [](SimMcsLock& l) -> SimTask<std::uint64_t> { co_return co_await l.Lock(); },
      [](SimMcsLock& l, std::uint64_t token) -> SimTask<> {
        co_await l.Unlock(token);
      },
      8, 50, &counter, &violated);
  EXPECT_EQ(counter, 8u * 50u);
  EXPECT_FALSE(violated);
}

TEST(SimLockTest, CnaLockMutualExclusion) {
  SimEngine engine;
  SimCnaLock lock(engine);
  std::uint64_t counter = 0;
  bool violated = false;
  RunExclusionProbe(
      engine, lock,
      [](SimCnaLock& l) -> SimTask<std::uint64_t> { co_return co_await l.Lock(); },
      [](SimCnaLock& l, std::uint64_t token) -> SimTask<> {
        co_await l.Unlock(token);
      },
      8, 50, &counter, &violated);
  EXPECT_EQ(counter, 8u * 50u);
  EXPECT_FALSE(violated);
}

TEST(SimLockTest, CnaCrossSocketExclusionAndCompletion) {
  // 16 vthreads scattered over 4 sockets; every op must complete (no waiter
  // stranded on the secondary queue).
  SimEngine engine;
  SimCnaLock lock(engine);
  std::uint64_t counter = 0;
  auto worker = [](SimEngine& eng, SimCnaLock& l, std::uint64_t* c) -> SimTask<> {
    for (int i = 0; i < 50; ++i) {
      const std::uint64_t token = co_await l.Lock();
      co_await eng.Delay(30);
      *c += 1;
      co_await l.Unlock(token);
      co_await eng.Delay(10);
    }
  };
  for (int t = 0; t < 16; ++t) {
    engine.Spawn((t % 4) * 10 + t / 4, worker(engine, lock, &counter));
  }
  engine.Run(~0ull >> 1);
  EXPECT_EQ(counter, 16u * 50u);
}

TEST(SimLockTest, ShflLockMutualExclusion) {
  SimEngine engine;
  SimShflLock lock(engine, SimPolicy::Builtin());
  std::uint64_t counter = 0;
  bool violated = false;
  RunExclusionProbe(
      engine, lock,
      [](SimShflLock& l) -> SimTask<std::uint64_t> {
        co_await l.Lock();
        co_return 0;
      },
      [](SimShflLock& l, std::uint64_t) -> SimTask<> { co_await l.Unlock(); },
      8, 50, &counter, &violated);
  EXPECT_EQ(counter, 8u * 50u);
  EXPECT_FALSE(violated);
}

TEST(SimLockTest, ShflLockShufflesAcrossSockets) {
  SimEngine engine;
  SimShflLock lock(engine, SimPolicy::Builtin());
  std::uint64_t counter = 0;
  bool violated = false;
  // 16 threads across sockets 0 and 1 (cpus 0..7 and 10..17).
  auto worker = [](SimEngine& eng, SimShflLock& l, std::uint64_t* c,
                   bool* bad) -> SimTask<> {
    (void)bad;
    for (int i = 0; i < 40; ++i) {
      co_await l.Lock();
      co_await eng.Delay(50);
      *c += 1;
      co_await l.Unlock();
      co_await eng.Delay(10);
    }
  };
  for (int t = 0; t < 16; ++t) {
    const std::uint32_t cpu = (t % 2 == 0) ? t / 2 : 10 + t / 2;
    engine.Spawn(cpu, worker(engine, lock, &counter, &violated));
  }
  engine.Run(~0ull >> 1);
  EXPECT_EQ(counter, 16u * 40u);
  EXPECT_GT(lock.shuffle_moves(), 0u);
}

TEST(SimLockTest, NeutralRwReadersShareWritersExclude) {
  SimEngine engine;
  SimNeutralRwLock lock(engine);
  int readers_inside = 0;
  int max_readers = 0;
  bool violated = false;

  auto reader = [](SimEngine& eng, SimNeutralRwLock& l, int* inside, int* maxr,
                   bool* bad) -> SimTask<> {
    for (int i = 0; i < 30; ++i) {
      co_await l.ReadLock();
      ++*inside;
      *maxr = std::max(*maxr, *inside);
      co_await eng.Delay(200);
      --*inside;
      co_await l.ReadUnlock();
      (void)bad;
    }
  };
  auto writer = [](SimEngine& eng, SimNeutralRwLock& l, int* inside,
                   bool* bad) -> SimTask<> {
    for (int i = 0; i < 10; ++i) {
      co_await l.WriteLock();
      if (*inside != 0) {
        *bad = true;
      }
      co_await eng.Delay(100);
      co_await l.WriteUnlock();
      co_await eng.Delay(500);
    }
  };
  for (int t = 0; t < 6; ++t) {
    engine.Spawn(t, reader(engine, lock, &readers_inside, &max_readers, &violated));
  }
  engine.Spawn(70, writer(engine, lock, &readers_inside, &violated));
  engine.Run(~0ull >> 1);
  EXPECT_FALSE(violated);
  EXPECT_GE(max_readers, 2);  // read sharing actually happened
}

TEST(SimLockTest, BravoFastPathAndRevocation) {
  SimEngine engine;
  SimBravoLock lock(engine, SimPolicy::Builtin());
  bool violated = false;
  int inside_writers = 0;

  auto reader = [](SimEngine& eng, SimBravoLock& l) -> SimTask<> {
    for (int i = 0; i < 50; ++i) {
      const std::uint64_t token = co_await l.ReadLock();
      co_await eng.Delay(100);
      co_await l.ReadUnlock(token);
      co_await eng.Delay(20);
    }
  };
  auto writer = [](SimEngine& eng, SimBravoLock& l, int* inside,
                   bool* bad) -> SimTask<> {
    co_await eng.Delay(2'000);
    for (int i = 0; i < 5; ++i) {
      co_await l.WriteLock();
      if (++*inside != 1) {
        *bad = true;
      }
      co_await eng.Delay(100);
      --*inside;
      co_await l.WriteUnlock();
      co_await eng.Delay(3'000);
    }
  };
  for (int t = 0; t < 8; ++t) {
    engine.Spawn(t, reader(engine, lock));
  }
  engine.Spawn(40, writer(engine, lock, &inside_writers, &violated));
  engine.Run(~0ull >> 1);
  EXPECT_FALSE(violated);
  EXPECT_GE(lock.revocations(), 1u);
}

// --- scalability-shape properties (the reason the simulator exists) ---------

TEST(SimShapeTest, TicketLockCollapsesQueueLockDoesNot) {
  Lock2Params params;
  params.duration_ns = 2'000'000;

  params.threads = 2;
  const double ticket_2 = SimLock2(Lock2Flavor::kStockTicket, params).ops_per_msec;
  const double mcs_2 = SimLock2(Lock2Flavor::kMcs, params).ops_per_msec;

  params.threads = 64;
  const double ticket_64 = SimLock2(Lock2Flavor::kStockTicket, params).ops_per_msec;
  const double mcs_64 = SimLock2(Lock2Flavor::kMcs, params).ops_per_msec;

  // Ticket collapses with waiter count; MCS stays roughly flat.
  EXPECT_LT(ticket_64, ticket_2 * 0.5);
  EXPECT_GT(mcs_64, ticket_64 * 2);
  EXPECT_GT(mcs_64, mcs_2 * 0.4);  // MCS itself does not collapse
}

TEST(SimShapeTest, ShflLockBeatsStockAtHighThreadCounts) {
  Lock2Params params;
  params.duration_ns = 2'000'000;
  params.threads = 64;
  const double stock = SimLock2(Lock2Flavor::kStockTicket, params).ops_per_msec;
  const double shfl = SimLock2(Lock2Flavor::kShflLock, params).ops_per_msec;
  EXPECT_GT(shfl, stock * 2);
}

TEST(SimShapeTest, CnaBeatsFifoAtHighThreadCounts) {
  Lock2Params params;
  params.duration_ns = 2'000'000;
  params.threads = 64;
  const double mcs = SimLock2(Lock2Flavor::kMcs, params).ops_per_msec;
  const double cna = SimLock2(Lock2Flavor::kCna, params).ops_per_msec;
  EXPECT_GT(cna, mcs * 1.2);
}

TEST(SimShapeTest, ConcordShflLockMatchesShflLock) {
  auto numa = MakeNumaGroupingPolicy();
  ASSERT_TRUE(numa.ok());
  ASSERT_TRUE(numa->spec.VerifyAll().ok());
  const Program* cmp = &numa->spec.ChainFor(HookKind::kCmpNode).programs.front();

  Lock2Params params;
  params.duration_ns = 2'000'000;
  params.threads = 40;
  params.cmp_program = cmp;
  const double shfl = SimLock2(Lock2Flavor::kShflLock, params).ops_per_msec;
  const double concord =
      SimLock2(Lock2Flavor::kConcordShflLock, params).ops_per_msec;
  // The paper's claim: negligible overhead (cmp_node runs off critical path).
  EXPECT_GT(concord, shfl * 0.9);
}

TEST(SimShapeTest, BravoScalesReadersStockDoesNot) {
  PageFaultParams params;
  params.duration_ns = 2'000'000;
  params.writes_per_1024 = 0;  // pure readers to isolate the mechanism

  params.threads = 4;
  const double stock_4 =
      SimPageFault(PageFaultFlavor::kStockNeutral, params).ops_per_msec;
  const double bravo_4 = SimPageFault(PageFaultFlavor::kBravo, params).ops_per_msec;

  params.threads = 64;
  const double stock_64 =
      SimPageFault(PageFaultFlavor::kStockNeutral, params).ops_per_msec;
  const double bravo_64 =
      SimPageFault(PageFaultFlavor::kBravo, params).ops_per_msec;

  EXPECT_GT(bravo_64, bravo_4 * 4);      // BRAVO keeps scaling
  EXPECT_LT(stock_64, stock_4 * 4);      // stock saturates on the lock line
  EXPECT_GT(bravo_64, stock_64 * 2);     // and BRAVO wins outright
}

TEST(SimShapeTest, ConcordHooksWorstCaseOverheadBounded) {
  HashParams params;
  params.duration_ns = 2'000'000;
  params.threads = 4;
  const double base = SimHashTable(HashFlavor::kShflLock, params).ops_per_msec;
  const double hooked =
      SimHashTable(HashFlavor::kConcordEmptyHooks, params).ops_per_msec;
  const double ratio = hooked / base;
  // Paper: up to ~20% worst-case slowdown with hooks attached and no
  // userspace code; must not be catastrophically worse, nor free.
  EXPECT_GT(ratio, 0.6);
  EXPECT_LT(ratio, 1.02);
}

}  // namespace
}  // namespace concord
