// Tests for the simulated will-it-scale drivers: determinism (bit-identical
// reruns), sanity of the flavour relationships, and parameter monotonicity.

#include "src/sim/workloads.h"

#include <gtest/gtest.h>

#include "src/concord/policies.h"

namespace concord {
namespace {

TEST(SimWorkloadTest, Lock2IsDeterministic) {
  Lock2Params params;
  params.threads = 12;
  params.duration_ns = 1'000'000;
  const SimRunResult a = SimLock2(Lock2Flavor::kShflLock, params);
  const SimRunResult b = SimLock2(Lock2Flavor::kShflLock, params);
  EXPECT_EQ(a.total_ops, b.total_ops);
  EXPECT_EQ(a.events, b.events);
}

TEST(SimWorkloadTest, PageFaultIsDeterministic) {
  PageFaultParams params;
  params.threads = 12;
  params.duration_ns = 1'000'000;
  const SimRunResult a = SimPageFault(PageFaultFlavor::kBravo, params);
  const SimRunResult b = SimPageFault(PageFaultFlavor::kBravo, params);
  EXPECT_EQ(a.total_ops, b.total_ops);
  EXPECT_EQ(a.events, b.events);
}

TEST(SimWorkloadTest, HashTableIsDeterministic) {
  HashParams params;
  params.threads = 8;
  params.duration_ns = 1'000'000;
  const SimRunResult a = SimHashTable(HashFlavor::kShflLock, params);
  const SimRunResult b = SimHashTable(HashFlavor::kShflLock, params);
  EXPECT_EQ(a.total_ops, b.total_ops);
}

TEST(SimWorkloadTest, SingleThreadMakesProgressOnEveryFlavor) {
  Lock2Params lock2;
  lock2.threads = 1;
  lock2.duration_ns = 500'000;
  EXPECT_GT(SimLock2(Lock2Flavor::kStockTicket, lock2).total_ops, 100u);
  EXPECT_GT(SimLock2(Lock2Flavor::kMcs, lock2).total_ops, 100u);
  EXPECT_GT(SimLock2(Lock2Flavor::kShflLock, lock2).total_ops, 100u);

  PageFaultParams pf;
  pf.threads = 1;
  pf.duration_ns = 500'000;
  EXPECT_GT(SimPageFault(PageFaultFlavor::kStockNeutral, pf).total_ops, 100u);
  EXPECT_GT(SimPageFault(PageFaultFlavor::kBravo, pf).total_ops, 100u);
  EXPECT_GT(SimPageFault(PageFaultFlavor::kBravoFixedBias, pf).total_ops, 100u);
}

TEST(SimWorkloadTest, LongerCriticalSectionsLowerThroughput) {
  Lock2Params fast;
  fast.threads = 8;
  fast.duration_ns = 1'000'000;
  fast.cs_ns = 100;
  Lock2Params slow = fast;
  slow.cs_ns = 2'000;
  EXPECT_GT(SimLock2(Lock2Flavor::kShflLock, fast).total_ops,
            SimLock2(Lock2Flavor::kShflLock, slow).total_ops);
}

TEST(SimWorkloadTest, MoreWritesLowerReadMostlyThroughput) {
  PageFaultParams read_only;
  read_only.threads = 16;
  read_only.duration_ns = 1'000'000;
  read_only.writes_per_1024 = 0;
  PageFaultParams write_heavy = read_only;
  write_heavy.writes_per_1024 = 128;
  EXPECT_GT(SimPageFault(PageFaultFlavor::kBravo, read_only).total_ops,
            SimPageFault(PageFaultFlavor::kBravo, write_heavy).total_ops);
}

TEST(SimWorkloadTest, ConcordBpfRunsTheRealProgram) {
  // The Concord flavour must still work when driven by the actual verified
  // NUMA program (not just native fallbacks).
  auto numa = MakeNumaGroupingPolicy();
  ASSERT_TRUE(numa.ok());
  ASSERT_TRUE(numa->spec.VerifyAll().ok());
  Lock2Params params;
  params.threads = 16;
  params.duration_ns = 1'000'000;
  params.cmp_program = &numa->spec.ChainFor(HookKind::kCmpNode).programs.front();
  const SimRunResult result = SimLock2(Lock2Flavor::kConcordShflLock, params);
  EXPECT_GT(result.total_ops, 100u);
}

TEST(SimWorkloadTest, EmptyHooksCostSomethingButNotEverything) {
  HashParams params;
  params.threads = 2;
  params.duration_ns = 1'000'000;
  const double base =
      static_cast<double>(SimHashTable(HashFlavor::kShflLock, params).total_ops);
  const double hooked = static_cast<double>(
      SimHashTable(HashFlavor::kConcordEmptyHooks, params).total_ops);
  EXPECT_LT(hooked, base * 1.01);
  EXPECT_GT(hooked, base * 0.6);
}

}  // namespace
}  // namespace concord
