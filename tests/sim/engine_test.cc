#include "src/sim/engine.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/sim/memory.h"
#include "src/sim/task.h"

namespace concord {
namespace {

TEST(SimEngineTest, DelayAdvancesVirtualTime) {
  SimEngine engine;
  std::uint64_t observed = 0;
  auto body = [](SimEngine& eng, std::uint64_t* out) -> SimTask<> {
    co_await eng.Delay(100);
    *out = eng.now();
    co_await eng.Delay(50);
    *out = eng.now();
  };
  engine.Spawn(0, body(engine, &observed));
  engine.Run(1'000);
  EXPECT_EQ(observed, 150u);
  EXPECT_EQ(engine.now(), 1'000u);
}

TEST(SimEngineTest, RunStopsAtTimeLimit) {
  SimEngine engine;
  std::uint64_t steps = 0;
  auto body = [](SimEngine& eng, std::uint64_t* out) -> SimTask<> {
    while (true) {
      co_await eng.Delay(10);
      ++*out;
    }
  };
  engine.Spawn(0, body(engine, &steps));
  engine.Run(100);
  EXPECT_EQ(steps, 10u);
}

TEST(SimEngineTest, VthreadsInterleaveDeterministically) {
  SimEngine engine;
  std::vector<int> order;
  auto body = [](SimEngine& eng, std::vector<int>* log, int id,
                 std::uint64_t delay) -> SimTask<> {
    co_await eng.Delay(delay);
    log->push_back(id);
  };
  engine.Spawn(0, body(engine, &order, 1, 30));
  engine.Spawn(1, body(engine, &order, 2, 10));
  engine.Spawn(2, body(engine, &order, 3, 20));
  engine.Run(100);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 2);
  EXPECT_EQ(order[1], 3);
  EXPECT_EQ(order[2], 1);
}

TEST(SimEngineTest, CurrentCpuTracksSpawnedCpu) {
  SimEngine engine;
  std::uint32_t seen_cpu = 999;
  std::uint32_t seen_socket = 999;
  auto body = [](SimEngine& eng, std::uint32_t* cpu,
                 std::uint32_t* socket) -> SimTask<> {
    co_await eng.Delay(5);
    *cpu = eng.current_cpu();
    *socket = eng.current_socket();
  };
  engine.Spawn(25, body(engine, &seen_cpu, &seen_socket));
  engine.Run(100);
  EXPECT_EQ(seen_cpu, 25u);
  EXPECT_EQ(seen_socket, 2u);  // 25 / 10 cores per socket
}

TEST(SimEngineTest, DestroyingEngineWithSuspendedVthreadsIsSafe) {
  auto engine = std::make_unique<SimEngine>();
  auto body = [](SimEngine& eng) -> SimTask<> {
    while (true) {
      co_await eng.Delay(1000);
    }
  };
  engine->Spawn(0, body(*engine));
  engine->Run(5000);
  engine.reset();  // must not leak or crash (ASan would flag leaks)
  SUCCEED();
}

TEST(SimWordTest, LoadStoreRoundTrip) {
  SimEngine engine;
  std::uint64_t loaded = 0;
  auto body = [](SimEngine&, SimWord& word, std::uint64_t* out) -> SimTask<> {
    co_await word.Store(42);
    *out = co_await word.Load();
  };
  SimWord word(engine);
  engine.Spawn(0, body(engine, word, &loaded));
  engine.Run(10'000);
  EXPECT_EQ(loaded, 42u);
  EXPECT_EQ(word.PeekValue(), 42u);
}

TEST(SimWordTest, FetchAddAndCas) {
  SimEngine engine;
  std::uint64_t old1 = 0, cas_ok = 0, cas_fail = 1;
  auto body = [](SimEngine&, SimWord& word, std::uint64_t* o1, std::uint64_t* ok,
                 std::uint64_t* fail) -> SimTask<> {
    *o1 = co_await word.FetchAdd(5);     // 0 -> 5
    *ok = co_await word.CompareExchange(5, 9);
    *fail = co_await word.CompareExchange(5, 11);
  };
  SimWord word(engine);
  engine.Spawn(0, body(engine, word, &old1, &cas_ok, &cas_fail));
  engine.Run(10'000);
  EXPECT_EQ(old1, 0u);
  EXPECT_EQ(cas_ok, 1u);
  EXPECT_EQ(cas_fail, 0u);
  EXPECT_EQ(word.PeekValue(), 9u);
}

TEST(SimWordTest, RemoteAccessCostsMoreThanLocal) {
  SimEngine engine;
  std::uint64_t local_cost = 0, remote_cost = 0;

  auto writer = [](SimEngine& eng, SimWord& word, std::uint64_t* cost) -> SimTask<> {
    co_await word.Store(1);
    const std::uint64_t t0 = eng.now();
    co_await word.Store(2);  // second store: we own the line
    *cost = eng.now() - t0;
  };
  auto remote_reader = [](SimEngine& eng, SimWord& word,
                          std::uint64_t* cost) -> SimTask<> {
    co_await eng.Delay(1000);  // after the writer owns the line
    const std::uint64_t t0 = eng.now();
    co_await word.Load();
    *cost = eng.now() - t0;
  };
  SimWord word(engine);
  engine.Spawn(0, writer(engine, word, &local_cost));
  engine.Spawn(70, remote_reader(engine, word, &remote_cost));  // socket 7
  engine.Run(100'000);
  EXPECT_EQ(local_cost, engine.config().local_hit_ns);
  EXPECT_EQ(remote_cost, engine.config().remote_ns);
}

TEST(SimWordTest, SpinUntilWakesOnMutation) {
  SimEngine engine;
  std::uint64_t woke_at = 0;
  auto waiter = [](SimEngine& eng, SimWord& word, std::uint64_t* out) -> SimTask<> {
    co_await word.SpinUntil([](std::uint64_t v) { return v == 7; });
    *out = eng.now();
  };
  auto setter = [](SimEngine& eng, SimWord& word) -> SimTask<> {
    co_await eng.Delay(500);
    co_await word.Store(7);
  };
  SimWord word(engine);
  engine.Spawn(0, waiter(engine, word, &woke_at));
  engine.Spawn(1, setter(engine, word));
  engine.Run(100'000);
  EXPECT_GT(woke_at, 500u);   // woke only after the store
  EXPECT_LT(woke_at, 2'000u); // and promptly (no polling)
}

TEST(SimWordTest, SpinWakeChargesPerWaiterLineTransfers) {
  // With k spinners on one line, the last-woken waiter pays ~k transfers —
  // the non-scalability mechanism for centralized locks.
  constexpr int kWaiters = 10;
  SimEngine engine;
  std::vector<std::uint64_t> wake_times(kWaiters, 0);
  auto waiter = [](SimEngine& eng, SimWord& word, std::uint64_t* out) -> SimTask<> {
    co_await word.SpinUntil([](std::uint64_t v) { return v == 1; });
    *out = eng.now();
  };
  auto setter = [](SimEngine& eng, SimWord& word) -> SimTask<> {
    co_await eng.Delay(100);
    co_await word.Store(1);
  };
  SimWord word(engine);
  for (int i = 0; i < kWaiters; ++i) {
    engine.Spawn(i, waiter(engine, word, &wake_times[i]));
  }
  engine.Spawn(79, setter(engine, word));
  engine.Run(1'000'000);
  std::uint64_t min_wake = ~0ull, max_wake = 0;
  for (std::uint64_t t : wake_times) {
    ASSERT_GT(t, 0u);
    min_wake = std::min(min_wake, t);
    max_wake = std::max(max_wake, t);
  }
  // The spread must cover at least (kWaiters-1) same-socket transfers.
  EXPECT_GE(max_wake - min_wake,
            (kWaiters - 1) * engine.config().same_socket_ns);
}

}  // namespace
}  // namespace concord
