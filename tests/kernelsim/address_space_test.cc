#include "src/kernelsim/address_space.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "src/sync/bravo.h"

namespace concord {
namespace {

template <typename LockType>
class AddressSpaceTest : public ::testing::Test {
 protected:
  AddressSpace<LockType> aspace_;
};

using MmapSemTypes = ::testing::Types<NeutralRwLock, PerSocketRwLock,
                                      BravoLock<NeutralRwLock>>;
TYPED_TEST_SUITE(AddressSpaceTest, MmapSemTypes);

TYPED_TEST(AddressSpaceTest, MmapCreatesVma) {
  const std::uint64_t addr = this->aspace_.Mmap(16 * kPageSize);
  EXPECT_EQ(this->aspace_.vma_count(), 1u);
  EXPECT_TRUE(this->aspace_.HasMapping(addr));
  EXPECT_TRUE(this->aspace_.HasMapping(addr + 15 * kPageSize));
  EXPECT_FALSE(this->aspace_.HasMapping(addr + 16 * kPageSize));
}

TYPED_TEST(AddressSpaceTest, FaultInstallsPageOnce) {
  const std::uint64_t addr = this->aspace_.Mmap(4 * kPageSize);
  ASSERT_TRUE(this->aspace_.HandlePageFault(addr).ok());
  EXPECT_EQ(this->aspace_.faults_served(), 1u);
  // Second touch of the same page: no new page.
  ASSERT_TRUE(this->aspace_.HandlePageFault(addr + 100).ok());
  EXPECT_EQ(this->aspace_.faults_served(), 1u);
  // Different page faults anew.
  ASSERT_TRUE(this->aspace_.HandlePageFault(addr + kPageSize).ok());
  EXPECT_EQ(this->aspace_.faults_served(), 2u);
}

TYPED_TEST(AddressSpaceTest, FaultOutsideVmaIsSegv) {
  this->aspace_.Mmap(kPageSize);
  EXPECT_EQ(this->aspace_.HandlePageFault(0x1234).code(), StatusCode::kNotFound);
}

TYPED_TEST(AddressSpaceTest, MunmapRemovesVma) {
  const std::uint64_t addr = this->aspace_.Mmap(8 * kPageSize);
  for (std::uint64_t p = 0; p < 8; ++p) {
    ASSERT_TRUE(this->aspace_.HandlePageFault(addr + p * kPageSize).ok());
  }
  ASSERT_TRUE(this->aspace_.Munmap(addr).ok());
  EXPECT_EQ(this->aspace_.vma_count(), 0u);
  EXPECT_FALSE(this->aspace_.HasMapping(addr));
  EXPECT_FALSE(this->aspace_.Munmap(addr).ok());
}

TYPED_TEST(AddressSpaceTest, PageFault2CycleLikeWillItScale) {
  // One page_fault2 iteration: mmap, touch every page, munmap.
  constexpr std::uint64_t kPages = 64;
  for (int round = 0; round < 3; ++round) {
    const std::uint64_t addr = this->aspace_.Mmap(kPages * kPageSize);
    for (std::uint64_t p = 0; p < kPages; ++p) {
      ASSERT_TRUE(this->aspace_.HandlePageFault(addr + p * kPageSize).ok());
    }
    ASSERT_TRUE(this->aspace_.Munmap(addr).ok());
  }
  EXPECT_EQ(this->aspace_.faults_served(), 3 * kPages);
}

TYPED_TEST(AddressSpaceTest, ConcurrentFaultersOnSharedVma) {
  constexpr std::uint64_t kPages = 512;
  const std::uint64_t addr = this->aspace_.Mmap(kPages * kPageSize);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([this, addr] {
      for (std::uint64_t p = 0; p < kPages; ++p) {
        ASSERT_TRUE(this->aspace_.HandlePageFault(addr + p * kPageSize).ok());
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  // Every page installed exactly once despite racing faulters.
  EXPECT_EQ(this->aspace_.faults_served(), kPages);
}

TYPED_TEST(AddressSpaceTest, ConcurrentMmapMunmapAndFaults) {
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([this] {
      for (int i = 0; i < 50; ++i) {
        const std::uint64_t addr = this->aspace_.Mmap(16 * kPageSize);
        for (std::uint64_t p = 0; p < 16; ++p) {
          ASSERT_TRUE(this->aspace_.HandlePageFault(addr + p * kPageSize).ok());
        }
        ASSERT_TRUE(this->aspace_.Munmap(addr).ok());
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(this->aspace_.vma_count(), 0u);
}

}  // namespace
}  // namespace concord
