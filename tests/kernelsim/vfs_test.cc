#include "src/kernelsim/vfs.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include <atomic>
#include <memory>

#include "src/base/rng.h"
#include "src/rcu/rcu.h"
#include "src/topology/thread_context.h"

namespace concord {
namespace {

TEST(VfsTest, CreateLookupUnlink) {
  VfsNamespace ns(4);
  ASSERT_TRUE(ns.Create(0, "a.txt", 42).ok());
  auto value = ns.Lookup(0, "a.txt");
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(*value, 42u);
  EXPECT_EQ(ns.Create(0, "a.txt", 1).code(), StatusCode::kFailedPrecondition);
  ASSERT_TRUE(ns.Unlink(0, "a.txt").ok());
  EXPECT_EQ(ns.Lookup(0, "a.txt").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(ns.Unlink(0, "a.txt").code(), StatusCode::kNotFound);
}

TEST(VfsTest, BadDirectoryIndexRejected) {
  VfsNamespace ns(2);
  EXPECT_FALSE(ns.Create(5, "x", 0).ok());
  EXPECT_FALSE(ns.Unlink(5, "x").ok());
  EXPECT_FALSE(ns.Lookup(5, "x").ok());
  EXPECT_FALSE(ns.Rename(0, "x", 5, "y").ok());
}

TEST(VfsTest, RenameWithinDirectory) {
  VfsNamespace ns(2);
  ASSERT_TRUE(ns.Create(0, "old", 7).ok());
  ASSERT_TRUE(ns.Rename(0, "old", 0, "new").ok());
  EXPECT_FALSE(ns.Lookup(0, "old").ok());
  auto value = ns.Lookup(0, "new");
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(*value, 7u);
}

TEST(VfsTest, RenameAcrossDirectories) {
  VfsNamespace ns(4);
  ASSERT_TRUE(ns.Create(2, "file", 9).ok());
  ASSERT_TRUE(ns.Rename(2, "file", 1, "moved").ok());
  EXPECT_FALSE(ns.Lookup(2, "file").ok());
  auto value = ns.Lookup(1, "moved");
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(*value, 9u);
  EXPECT_EQ(ns.total_entries(), 1u);
}

TEST(VfsTest, RenameMissingSourceFails) {
  VfsNamespace ns(2);
  EXPECT_EQ(ns.Rename(0, "ghost", 1, "x").code(), StatusCode::kNotFound);
}

TEST(VfsTest, RenameHoldsRenameLockWhileTakingDirLocks) {
  // While a renamer waits on a directory lock it must advertise
  // locks_held >= 1 (it holds the rename lock). We observe this through the
  // directory lock's hook view by installing a native cmp policy that
  // records what it sees.
  VfsNamespace ns(2);
  struct Observed {
    std::atomic<std::uint32_t> max_locks_held{0};
  } observed;

  auto hooks = std::make_unique<ShflHooks>();
  hooks->user_data = &observed;
  hooks->cmp_node = [](void* ud, const ShflWaiterView&,
                       const ShflWaiterView& curr) {
    auto* obs = static_cast<Observed*>(ud);
    std::uint32_t prev = obs->max_locks_held.load();
    while (curr.locks_held > prev &&
           !obs->max_locks_held.compare_exchange_weak(prev, curr.locks_held)) {
    }
    return false;
  };
  ns.dir_lock(0).InstallHooks(hooks.get());

  ASSERT_TRUE(ns.Create(0, "f", 1).ok());
  // Create contention on dir 0 so renamers queue there with a shuffler.
  std::vector<std::thread> threads;
  std::atomic<bool> stop{false};
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&ns, &stop, t] {
      int i = 0;
      while (!stop.load()) {
        const std::string name = "t" + std::to_string(t) + "_" + std::to_string(i++);
        if (ns.Create(0, name, 0).ok()) {
          ns.Unlink(0, name).ok();
        }
      }
    });
  }
  for (int i = 0; i < 500; ++i) {
    const std::string src = "r" + std::to_string(i);
    if (ns.Create(1, src, 0).ok()) {
      ns.Rename(1, src, 0, src + "_moved").ok();
      ns.Unlink(0, src + "_moved").ok();
    }
  }
  stop.store(true);
  for (auto& thread : threads) {
    thread.join();
  }
  ns.dir_lock(0).InstallHooks(nullptr);
  Rcu::Global().Synchronize();
  // Best-effort: under single-core scheduling the shuffler may never have
  // examined a renamer; only assert we never saw nonsense (> nesting cap).
  EXPECT_LE(observed.max_locks_held.load(), 16u);
}

TEST(VfsTest, ConcurrentRenamesAndCreatesKeepNamespaceConsistent) {
  VfsNamespace ns(8);
  constexpr int kThreads = 4;
  constexpr int kIters = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&ns, t] {
      Xoshiro256 rng(static_cast<std::uint64_t>(t) + 1);
      for (int i = 0; i < kIters; ++i) {
        const std::string name = "f" + std::to_string(t) + "_" + std::to_string(i);
        const auto src = static_cast<std::uint32_t>(rng.NextBounded(8));
        const auto dst = static_cast<std::uint32_t>(rng.NextBounded(8));
        ASSERT_TRUE(ns.Create(src, name, i).ok());
        ASSERT_TRUE(ns.Rename(src, name, dst, name + "_m").ok());
        ASSERT_TRUE(ns.Unlink(dst, name + "_m").ok());
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(ns.total_entries(), 0u);
}

}  // namespace
}  // namespace concord
