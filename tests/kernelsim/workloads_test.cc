// Tests for the proc-lock table (lock2) and global-lock hash table (fig 2c)
// substrates.

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "src/kernelsim/hashtable.h"
#include "src/kernelsim/proc_locks.h"
#include "src/sync/shfllock.h"
#include "src/sync/ticket_lock.h"

namespace concord {
namespace {

TEST(ProcLockTableTest, LockUnlockSemantics) {
  ProcLockTable<TicketLock> table(8);
  EXPECT_TRUE(table.FileLock(3, /*owner=*/1));
  EXPECT_FALSE(table.FileLock(3, /*owner=*/2));  // already held
  EXPECT_FALSE(table.FileUnlock(3, /*owner=*/2));  // wrong owner
  EXPECT_TRUE(table.FileUnlock(3, /*owner=*/1));
  EXPECT_TRUE(table.FileLock(3, /*owner=*/2));  // free again
  EXPECT_TRUE(table.FileUnlock(3, 2));
  EXPECT_EQ(table.live_locks(), 0u);
}

TEST(ProcLockTableTest, Lock2CycleUnderContention) {
  ProcLockTable<ShflLock> table(64);
  constexpr int kThreads = 4;
  constexpr int kIters = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&table, t] {
      for (int i = 0; i < kIters; ++i) {
        table.LockUnlockCycle(static_cast<std::uint32_t>(t),
                              static_cast<std::uint32_t>(t));
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(table.live_locks(), 0u);
}

TEST(HashTableTest, InsertLookupErase) {
  GlobalLockHashTable<TicketLock> table(8);
  EXPECT_TRUE(table.Insert(1, 100));
  EXPECT_FALSE(table.Insert(1, 200));  // duplicate
  std::uint64_t value = 0;
  EXPECT_TRUE(table.Lookup(1, &value));
  EXPECT_EQ(value, 100u);
  EXPECT_FALSE(table.Lookup(2, &value));
  EXPECT_TRUE(table.Erase(1));
  EXPECT_FALSE(table.Erase(1));
  EXPECT_EQ(table.Size(), 0u);
}

TEST(HashTableTest, ManyKeysAcrossBuckets) {
  GlobalLockHashTable<TicketLock> table(4);  // force chains
  for (std::uint64_t k = 0; k < 1000; ++k) {
    ASSERT_TRUE(table.Insert(k, k * 3));
  }
  EXPECT_EQ(table.Size(), 1000u);
  for (std::uint64_t k = 0; k < 1000; ++k) {
    std::uint64_t value = 0;
    ASSERT_TRUE(table.Lookup(k, &value));
    EXPECT_EQ(value, k * 3);
  }
  for (std::uint64_t k = 0; k < 1000; k += 2) {
    ASSERT_TRUE(table.Erase(k));
  }
  EXPECT_EQ(table.Size(), 500u);
}

TEST(HashTableTest, ConcurrentMixedWorkloadKeepsConsistency) {
  GlobalLockHashTable<ShflLock> table(10);
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&table, t] {
      // Disjoint key ranges per thread; interleaved ops on the shared lock.
      const std::uint64_t base = static_cast<std::uint64_t>(t) << 32;
      for (std::uint64_t i = 0; i < 2000; ++i) {
        ASSERT_TRUE(table.Insert(base + i, i));
        std::uint64_t value = 0;
        ASSERT_TRUE(table.Lookup(base + i, &value));
        ASSERT_EQ(value, i);
        if (i % 2 == 0) {
          ASSERT_TRUE(table.Erase(base + i));
        }
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(table.Size(), static_cast<std::uint64_t>(kThreads) * 1000);
}

}  // namespace
}  // namespace concord
