#include "src/concord/safety.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "src/base/time.h"
#include "src/concord/containment.h"
#include "src/concord/policies.h"
#include "src/sync/shfllock.h"

namespace concord {
namespace {

class SafetyTest : public ::testing::Test {
 protected:
  void TearDown() override { Concord::Global().ResetForTest(); }

  ShflLock lock_;
};

// Sleeps until pred or ~10s.
template <typename Pred>
bool Await(Pred pred) {
  const std::uint64_t deadline = MonotonicNowNs() + 10'000'000'000ull;
  while (!pred()) {
    if (MonotonicNowNs() > deadline) {
      return false;
    }
    timespec ts{0, 1'000'000};
    nanosleep(&ts, nullptr);
  }
  return true;
}

TEST_F(SafetyTest, WatchEnablesProfiling) {
  Concord& concord = Concord::Global();
  const std::uint64_t id = concord.RegisterShflLock(lock_, "l", "t");
  FairnessWatchdog watchdog;
  ASSERT_TRUE(watchdog.Watch(id).ok());
  EXPECT_NE(concord.Stats(id), nullptr);
}

TEST_F(SafetyTest, WatchUnknownLockFails) {
  FairnessWatchdog watchdog;
  EXPECT_EQ(watchdog.Watch(9999).code(), StatusCode::kNotFound);
}

TEST_F(SafetyTest, NoViolationUnderNormalOperation) {
  Concord& concord = Concord::Global();
  const std::uint64_t id = concord.RegisterShflLock(lock_, "l", "t");
  FairnessWatchdog watchdog;
  ASSERT_TRUE(watchdog.Watch(id).ok());
  for (int i = 0; i < 100; ++i) {
    ShflGuard guard(lock_);
  }
  EXPECT_TRUE(watchdog.CheckOnce().empty());
  EXPECT_TRUE(watchdog.violations().empty());
}

TEST_F(SafetyTest, DetectsStarvationGradeWaitAndDetaches) {
  Concord& concord = Concord::Global();
  const std::uint64_t id = concord.RegisterShflLock(lock_, "l", "t");

  // Attach some policy so there is something to auto-detach.
  auto policy = MakeNumaGroupingPolicy();
  ASSERT_TRUE(policy.ok());
  ASSERT_TRUE(concord.Attach(id, std::move(policy->spec)).ok());

  WatchdogConfig config;
  config.max_wait_ns = 10'000'000;  // 10ms counts as starvation for the test
  config.auto_detach = true;
  FairnessWatchdog watchdog(config);
  ASSERT_TRUE(watchdog.Watch(id).ok());

  // Manufacture a starved waiter: hold the lock for 30ms while one thread
  // waits; its completed acquisition lands in the wait histogram.
  std::atomic<bool> acquired{false};
  lock_.Lock();
  std::thread victim([&] {
    lock_.Lock();
    acquired.store(true);
    lock_.Unlock();
  });
  const ShardedLockProfileStats* stats = concord.Stats(id);
  ASSERT_TRUE(Await([&] { return stats->Contentions() >= 1; }));
  timespec ts{0, 30'000'000};
  nanosleep(&ts, nullptr);
  lock_.Unlock();
  victim.join();
  ASSERT_TRUE(acquired.load());

  const auto fresh = watchdog.CheckOnce();
  ASSERT_EQ(fresh.size(), 1u);
  EXPECT_EQ(fresh[0].lock_id, id);
  EXPECT_EQ(fresh[0].kind, FairnessWatchdog::ViolationKind::kMaxWaitExceeded);
  EXPECT_GE(fresh[0].observed_ns, 10'000'000u);
  EXPECT_TRUE(fresh[0].detached);

  // The policy was detached; profiling hooks remain (stats still collected).
  EXPECT_EQ(watchdog.violations().size(), 1u);
  // A second check without new starvation does not re-flag the same max.
  EXPECT_TRUE(watchdog.CheckOnce().empty());
}

TEST_F(SafetyTest, BackgroundPollerCatchesViolations) {
  Concord& concord = Concord::Global();
  const std::uint64_t id = concord.RegisterShflLock(lock_, "l", "t");
  WatchdogConfig config;
  config.max_wait_ns = 5'000'000;
  config.poll_interval_ms = 2;
  config.auto_detach = false;
  FairnessWatchdog watchdog(config);
  ASSERT_TRUE(watchdog.Watch(id).ok());
  watchdog.Start();

  std::atomic<bool> acquired{false};
  lock_.Lock();
  std::thread victim([&] {
    lock_.Lock();
    acquired.store(true);
    lock_.Unlock();
  });
  const ShardedLockProfileStats* stats = concord.Stats(id);
  ASSERT_TRUE(Await([&] { return stats->Contentions() >= 1; }));
  timespec ts{0, 20'000'000};
  nanosleep(&ts, nullptr);
  lock_.Unlock();
  victim.join();
  ASSERT_TRUE(acquired.load());

  EXPECT_TRUE(Await([&] { return !watchdog.violations().empty(); }));
  watchdog.Stop();
  ASSERT_FALSE(watchdog.violations().empty());
  EXPECT_FALSE(watchdog.violations()[0].detached);
}

TEST_F(SafetyTest, DetectsWaitSkewFromP99OverP50) {
  Concord& concord = Concord::Global();
  const std::uint64_t id = concord.RegisterShflLock(lock_, "l", "t");
  WatchdogConfig config;
  config.max_wait_ns = ~0ull;  // keep the max-wait detector out of the way
  config.p99_over_p50_limit = 4.0;
  config.auto_detach = false;
  FairnessWatchdog watchdog(config);
  ASSERT_TRUE(watchdog.Watch(id).ok());

  // Feed a bimodal wait distribution directly: ~98% short waits and a few
  // starved outliers — the shape a starving cmp_node policy produces. p50
  // lands in the 512ns bucket, p99 in the 524us bucket: skew ~1000x.
  ShardedLockProfileStats* stats = concord.MutableStats(id);
  ASSERT_NE(stats, nullptr);
  for (int i = 0; i < 120; ++i) {
    stats->ControlShard().wait_ns.Record(1'000);
  }
  stats->ControlShard().wait_ns.Record(1'000'000);
  stats->ControlShard().wait_ns.Record(1'000'000);

  const auto fresh = watchdog.CheckOnce();
  ASSERT_EQ(fresh.size(), 1u);
  EXPECT_EQ(fresh[0].kind, FairnessWatchdog::ViolationKind::kWaitSkew);
  EXPECT_GE(fresh[0].observed_ns, 100'000u);
  // The same skew is not re-flagged on the next pass.
  EXPECT_TRUE(watchdog.CheckOnce().empty());
}

TEST_F(SafetyTest, NoSkewFlagBelowSampleFloor) {
  Concord& concord = Concord::Global();
  const std::uint64_t id = concord.RegisterShflLock(lock_, "l", "t");
  WatchdogConfig config;
  config.max_wait_ns = ~0ull;
  config.p99_over_p50_limit = 4.0;
  FairnessWatchdog watchdog(config);
  ASSERT_TRUE(watchdog.Watch(id).ok());

  // Same skewed shape but under 100 samples: too little signal to act on.
  ShardedLockProfileStats* stats = concord.MutableStats(id);
  ASSERT_NE(stats, nullptr);
  for (int i = 0; i < 50; ++i) {
    stats->ControlShard().wait_ns.Record(1'000);
  }
  stats->ControlShard().wait_ns.Record(1'000'000);
  EXPECT_TRUE(watchdog.CheckOnce().empty());
}

TEST_F(SafetyTest, ViolationFeedsContainmentQuarantine) {
  Concord& concord = Concord::Global();
  const std::uint64_t id = concord.RegisterShflLock(lock_, "l", "t");
  auto policy = MakeNumaGroupingPolicy();
  ASSERT_TRUE(policy.ok());
  ASSERT_TRUE(concord.Attach(id, std::move(policy->spec)).ok());

  WatchdogConfig config;
  config.max_wait_ns = 10'000'000;
  config.auto_detach = true;
  config.use_containment = true;
  FairnessWatchdog watchdog(config);
  ASSERT_TRUE(watchdog.Watch(id).ok());

  std::atomic<bool> acquired{false};
  lock_.Lock();
  std::thread victim([&] {
    lock_.Lock();
    acquired.store(true);
    lock_.Unlock();
  });
  const ShardedLockProfileStats* stats = concord.Stats(id);
  ASSERT_TRUE(Await([&] { return stats->Contentions() >= 1; }));
  timespec ts{0, 30'000'000};
  nanosleep(&ts, nullptr);
  lock_.Unlock();
  victim.join();
  ASSERT_TRUE(acquired.load());

  ASSERT_EQ(watchdog.CheckOnce().size(), 1u);

  // auto_detach + containment = straight to quarantine: the hook table is
  // gone but the spec is parked under its name for probation re-attach.
  ContainmentRegistry& registry = ContainmentRegistry::Global();
  EXPECT_EQ(registry.HealthOf(id), PolicyHealth::kQuarantined);
  EXPECT_EQ(concord.AttachedPolicyName(id), "numa_grouping");
  bool saw_quarantine = false;
  for (const ContainmentEvent& event : registry.events()) {
    if (event.lock_id == id &&
        event.fault == ContainmentFault::kFairnessViolation &&
        event.action == ContainmentAction::kQuarantined) {
      saw_quarantine = true;
    }
  }
  EXPECT_TRUE(saw_quarantine);
  EXPECT_GE(stats->Quarantines(), 1u);
}

TEST_F(SafetyTest, LegacyDetachPathStillWorks) {
  Concord& concord = Concord::Global();
  const std::uint64_t id = concord.RegisterShflLock(lock_, "l", "t");
  auto policy = MakeNumaGroupingPolicy();
  ASSERT_TRUE(policy.ok());
  ASSERT_TRUE(concord.Attach(id, std::move(policy->spec)).ok());

  WatchdogConfig config;
  config.max_wait_ns = 10'000'000;
  config.auto_detach = true;
  config.use_containment = false;  // legacy one-shot detach
  FairnessWatchdog watchdog(config);
  ASSERT_TRUE(watchdog.Watch(id).ok());

  std::atomic<bool> acquired{false};
  lock_.Lock();
  std::thread victim([&] {
    lock_.Lock();
    acquired.store(true);
    lock_.Unlock();
  });
  const ShardedLockProfileStats* stats = concord.Stats(id);
  ASSERT_TRUE(Await([&] { return stats->Contentions() >= 1; }));
  timespec ts{0, 30'000'000};
  nanosleep(&ts, nullptr);
  lock_.Unlock();
  victim.join();
  ASSERT_TRUE(acquired.load());

  ASSERT_EQ(watchdog.CheckOnce().size(), 1u);
  // Legacy path: no parked spec, no containment state.
  EXPECT_EQ(ContainmentRegistry::Global().HealthOf(id), PolicyHealth::kActive);
  EXPECT_TRUE(concord.AttachedPolicyName(id).empty());
}

TEST_F(SafetyTest, UnwatchStopsDetection) {
  Concord& concord = Concord::Global();
  const std::uint64_t id = concord.RegisterShflLock(lock_, "l", "t");
  WatchdogConfig config;
  config.max_wait_ns = 1;  // everything is a violation
  FairnessWatchdog watchdog(config);
  ASSERT_TRUE(watchdog.Watch(id).ok());
  watchdog.Unwatch(id);

  std::atomic<bool> acquired{false};
  lock_.Lock();
  std::thread victim([&] {
    lock_.Lock();
    acquired.store(true);
    lock_.Unlock();
  });
  const ShardedLockProfileStats* stats = concord.Stats(id);
  ASSERT_TRUE(Await([&] { return stats->Contentions() >= 1; }));
  lock_.Unlock();
  victim.join();
  EXPECT_TRUE(watchdog.CheckOnce().empty());
}

}  // namespace
}  // namespace concord
