// Directive-parser coverage: `; hook:` and `; budget_ns:` scanning with
// file:line diagnostics for the malformed/unknown cases that the old ad-hoc
// parsers silently skipped.

#include <gtest/gtest.h>

#include "src/concord/policy_source.h"

namespace concord {
namespace {

TEST(PolicySourceTest, FindsDirectiveOnFirstLine) {
  SourceDirective directive;
  ASSERT_TRUE(FindHookDirective("; hook: cmp_node\n  mov r0, 0\n  exit\n",
                                &directive));
  EXPECT_EQ(directive.value, "cmp_node");
  EXPECT_EQ(directive.line, 1);
}

TEST(PolicySourceTest, FindsDirectiveBelowOtherComments) {
  const std::string source =
      "; batching policy\n"
      ";\n"
      "; hook: skip_shuffle\n"
      "  mov r0, 0\n"
      "  exit\n";
  SourceDirective directive;
  ASSERT_TRUE(FindHookDirective(source, &directive));
  EXPECT_EQ(directive.value, "skip_shuffle");
  EXPECT_EQ(directive.line, 3);

  auto kind = ResolveHookDirective(source);
  ASSERT_TRUE(kind.ok()) << kind.status().ToString();
  EXPECT_EQ(*kind, HookKind::kSkipShuffle);
}

TEST(PolicySourceTest, FindsDirectiveAfterOtherCommentText) {
  // The key may sit mid-comment; the value is the next token.
  SourceDirective directive;
  ASSERT_TRUE(FindHookDirective(
      "  mov r0, 0   ; target hook: rw_mode always\n  exit\n", &directive));
  EXPECT_EQ(directive.value, "rw_mode");
  EXPECT_EQ(directive.line, 1);
}

TEST(PolicySourceTest, AbsentDirectiveIsNotFound) {
  SourceDirective directive;
  EXPECT_FALSE(FindHookDirective("  mov r0, 0\n  exit\n", &directive));
  auto kind = ResolveHookDirective("  mov r0, 0\n  exit\n");
  ASSERT_FALSE(kind.ok());
  EXPECT_EQ(kind.status().code(), StatusCode::kNotFound);
}

TEST(PolicySourceTest, KeyOutsideCommentIsIgnored) {
  // `hook:` before any `;` on the line is not a directive (it could be a
  // label named "hook"); only the comment part is scanned.
  SourceDirective directive;
  EXPECT_FALSE(FindHookDirective("hook: cmp_node\n  exit\n", &directive));
}

TEST(PolicySourceTest, MalformedDirectiveNamesItsLine) {
  const std::string source = "; policy\n; hook:\n  exit\n";
  SourceDirective directive;
  ASSERT_TRUE(FindHookDirective(source, &directive));
  EXPECT_TRUE(directive.value.empty());
  EXPECT_EQ(directive.line, 2);

  int line = 0;
  auto kind = ResolveHookDirective(source, &line);
  ASSERT_FALSE(kind.ok());
  EXPECT_EQ(kind.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(line, 2);
  EXPECT_NE(kind.status().message().find("line 2:"), std::string::npos)
      << kind.status().message();
}

TEST(PolicySourceTest, UnknownHookNamesItselfAndItsLine) {
  auto kind = ResolveHookDirective("; hook: lock_aquire\n  exit\n");
  ASSERT_FALSE(kind.ok());
  EXPECT_EQ(kind.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(kind.status().message().find("line 1:"), std::string::npos)
      << kind.status().message();
  EXPECT_NE(kind.status().message().find("lock_aquire"), std::string::npos)
      << kind.status().message();
  // The diagnostic lists the valid names so the typo is a one-look fix.
  EXPECT_NE(kind.status().message().find("lock_acquire"), std::string::npos)
      << kind.status().message();
}

TEST(PolicySourceTest, BudgetDirectiveParses) {
  const std::string source = "; hook: lock_acquire\n; budget_ns: 2500\n  exit\n";
  std::uint64_t budget_ns = 0;
  int line = 0;
  ASSERT_TRUE(FindBudgetDirective(source, &budget_ns, &line));
  EXPECT_EQ(budget_ns, 2500u);
  EXPECT_EQ(line, 2);

  auto resolved = ResolveBudgetDirective(source);
  ASSERT_TRUE(resolved.ok());
  EXPECT_EQ(*resolved, 2500u);
}

TEST(PolicySourceTest, BudgetDirectiveAbsent) {
  std::uint64_t budget_ns = 0;
  EXPECT_FALSE(FindBudgetDirective("; hook: cmp_node\n  exit\n", &budget_ns));
  auto resolved = ResolveBudgetDirective("; hook: cmp_node\n  exit\n");
  ASSERT_FALSE(resolved.ok());
  EXPECT_EQ(resolved.status().code(), StatusCode::kNotFound);
}

TEST(PolicySourceTest, MalformedBudgetIsAnError) {
  for (const char* source :
       {"; budget_ns: soon\n  exit\n", "; budget_ns:\n  exit\n",
        "; budget_ns: 12x\n  exit\n"}) {
    auto resolved = ResolveBudgetDirective(source);
    ASSERT_FALSE(resolved.ok()) << source;
    EXPECT_EQ(resolved.status().code(), StatusCode::kInvalidArgument) << source;
    EXPECT_NE(resolved.status().message().find("line 1:"), std::string::npos)
        << resolved.status().message();
  }
}

}  // namespace
}  // namespace concord
