// Deterministic tests for the adaptive policy control plane
// (src/concord/autotune/): classifier, hysteresis, candidate registry, and
// the controller's canary state machine driven by FakeClock ticks and
// synthetic profiler feeds.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "src/base/time.h"
#include "src/concord/autotune/candidates.h"
#include "src/concord/autotune/controller.h"
#include "src/concord/autotune/regime.h"
#include "src/concord/concord.h"
#include "src/concord/containment.h"
#include "src/concord/policies.h"
#include "src/sync/shfllock.h"

namespace concord {
namespace {

// --- classifier -------------------------------------------------------------

RegimeSignals Signals() {
  RegimeSignals signals;
  signals.window_acquisitions = 1000;
  return signals;
}

TEST(RegimeClassifier, Uncontended) {
  DefaultRegimeClassifier classifier;
  RegimeSignals signals = Signals();
  signals.contention_rate = 0.01;
  EXPECT_EQ(classifier.Classify(signals), ContentionRegime::kUncontended);
}

TEST(RegimeClassifier, Moderate) {
  DefaultRegimeClassifier classifier;
  RegimeSignals signals = Signals();
  signals.contention_rate = 0.5;
  EXPECT_EQ(classifier.Classify(signals), ContentionRegime::kModerate);
}

TEST(RegimeClassifier, PathologicalByRate) {
  DefaultRegimeClassifier classifier;
  RegimeSignals signals = Signals();
  signals.contention_rate = 0.99;
  EXPECT_EQ(classifier.Classify(signals), ContentionRegime::kPathological);
}

TEST(RegimeClassifier, PathologicalByTail) {
  DefaultRegimeClassifier classifier;
  RegimeSignals signals = Signals();
  signals.contention_rate = 0.3;
  signals.wait_p99_ns = 60'000'000;  // past the 50ms starvation bar
  EXPECT_EQ(classifier.Classify(signals), ContentionRegime::kPathological);
}

TEST(RegimeClassifier, NumaSkewed) {
  DefaultRegimeClassifier classifier;
  RegimeSignals signals = Signals();
  signals.contention_rate = 0.5;
  signals.active_sockets = 2;
  signals.cross_socket_rate = 0.6;
  EXPECT_EQ(classifier.Classify(signals), ContentionRegime::kNumaSkewed);
}

TEST(RegimeClassifier, RwLockNeverNumaSkewed) {
  DefaultRegimeClassifier classifier;
  RegimeSignals signals = Signals();
  signals.contention_rate = 0.5;
  signals.active_sockets = 2;
  signals.cross_socket_rate = 0.6;
  signals.is_rw = true;
  EXPECT_EQ(classifier.Classify(signals), ContentionRegime::kModerate);
}

TEST(RegimeClassifier, ReaderHeavy) {
  DefaultRegimeClassifier classifier;
  RegimeSignals signals = Signals();
  signals.contention_rate = 0.5;
  signals.is_rw = true;
  signals.reader_fraction = 0.9;
  EXPECT_EQ(classifier.Classify(signals), ContentionRegime::kReaderHeavy);
}

TEST(RegimeClassifier, PathologicalOutranksNuma) {
  DefaultRegimeClassifier classifier;
  RegimeSignals signals = Signals();
  signals.contention_rate = 0.99;
  signals.active_sockets = 4;
  signals.cross_socket_rate = 0.9;
  EXPECT_EQ(classifier.Classify(signals), ContentionRegime::kPathological);
}

TEST(RegimeSignals, FromWindowComputesRatesAndSpread) {
  LockProfileSnapshot window;
  window.window_start_ns = 1'000'000'000;
  window.taken_at_ns = 2'000'000'000;  // 1s window
  window.acquisitions = 500;
  window.contentions = 100;
  window.cross_socket_handoffs = 40;
  window.socket_acquisitions[0] = 250;
  window.socket_acquisitions[1] = 225;
  window.socket_acquisitions[2] = 25;  // under the 10% share bar
  for (int i = 0; i < 100; ++i) {
    window.wait_ns.Record(10'000);
  }
  const RegimeSignals signals = RegimeSignals::FromWindow(window, false);
  EXPECT_DOUBLE_EQ(signals.contention_rate, 0.2);
  EXPECT_DOUBLE_EQ(signals.acquisitions_per_sec, 500.0);
  EXPECT_DOUBLE_EQ(signals.cross_socket_rate, 0.4);
  EXPECT_EQ(signals.active_sockets, 2u);
  EXPECT_GT(signals.wait_p99_ns, 0u);
  EXPECT_FALSE(signals.is_rw);
}

// --- hysteresis -------------------------------------------------------------

TEST(RegimeHysteresis, RequiresConsecutiveAgreement) {
  RegimeHysteresis hysteresis(2);
  EXPECT_EQ(hysteresis.stable(), ContentionRegime::kUncontended);
  EXPECT_EQ(hysteresis.Observe(ContentionRegime::kNumaSkewed),
            ContentionRegime::kUncontended);
  EXPECT_EQ(hysteresis.Observe(ContentionRegime::kNumaSkewed),
            ContentionRegime::kNumaSkewed);
}

TEST(RegimeHysteresis, FlipFlopNeverSwitches) {
  RegimeHysteresis hysteresis(2);
  for (int i = 0; i < 10; ++i) {
    hysteresis.Observe(ContentionRegime::kNumaSkewed);
    hysteresis.Observe(ContentionRegime::kUncontended);
  }
  EXPECT_EQ(hysteresis.stable(), ContentionRegime::kUncontended);
}

TEST(RegimeHysteresis, PendingRegimeChangeResetsOnNewVerdict) {
  RegimeHysteresis hysteresis(3);
  hysteresis.Observe(ContentionRegime::kNumaSkewed);
  hysteresis.Observe(ContentionRegime::kNumaSkewed);
  hysteresis.Observe(ContentionRegime::kPathological);  // resets the count
  hysteresis.Observe(ContentionRegime::kNumaSkewed);
  EXPECT_EQ(hysteresis.Observe(ContentionRegime::kNumaSkewed),
            ContentionRegime::kUncontended);
  EXPECT_EQ(hysteresis.Observe(ContentionRegime::kNumaSkewed),
            ContentionRegime::kNumaSkewed);
}

// --- candidate registry -----------------------------------------------------

TEST(PolicyCandidateRegistry, BuiltinsCoverActionableRegimes) {
  PolicyCandidateRegistry registry;
  registry.SeedBuiltins();
  EXPECT_EQ(registry.CandidateFor(ContentionRegime::kNumaSkewed, false).name,
            "numa_grouping");
  EXPECT_EQ(registry.CandidateFor(ContentionRegime::kPathological, false).name,
            "shuffle_fairness_guard");
  EXPECT_EQ(registry.CandidateFor(ContentionRegime::kReaderHeavy, true).name,
            "rw_reader_bias");
}

TEST(PolicyCandidateRegistry, PlainFallbackWhenNothingFits) {
  PolicyCandidateRegistry registry;
  registry.SeedBuiltins();
  // No builtin targets moderate; rw locks can't take the queue policies.
  EXPECT_TRUE(registry.CandidateFor(ContentionRegime::kModerate, false).IsPlain());
  EXPECT_TRUE(registry.CandidateFor(ContentionRegime::kNumaSkewed, true).IsPlain());
  EXPECT_TRUE(registry.CandidateFor(ContentionRegime::kUncontended, false).IsPlain());
}

TEST(PolicyCandidateRegistry, SkipListFallsBackToPlain) {
  PolicyCandidateRegistry registry;
  registry.SeedBuiltins();
  EXPECT_TRUE(registry
                  .CandidateFor(ContentionRegime::kNumaSkewed, false,
                                {"numa_grouping"})
                  .IsPlain());
}

TEST(PolicyCandidateRegistry, PlainNameIsReserved) {
  PolicyCandidateRegistry registry;
  PolicyCandidate candidate;
  candidate.name = kPlainCandidateName;
  EXPECT_FALSE(registry.Register(std::move(candidate)).ok());
}

TEST(PolicyCandidateRegistry, FindByName) {
  PolicyCandidateRegistry registry;
  registry.SeedBuiltins();
  EXPECT_TRUE(registry.FindByName("numa_grouping").ok());
  EXPECT_TRUE(registry.FindByName(kPlainCandidateName).ok());
  EXPECT_TRUE(registry.FindByName(kPlainCandidateName)->IsPlain());
  EXPECT_FALSE(registry.FindByName("no_such_policy").ok());
}

TEST(PolicyCandidateRegistry, BuiltinFactoriesProduceVerifiableSpecs) {
  PolicyCandidateRegistry registry;
  registry.SeedBuiltins();
  for (const std::string& name : registry.Names()) {
    if (name == kPlainCandidateName) {
      continue;
    }
    auto candidate = registry.FindByName(name);
    ASSERT_TRUE(candidate.ok()) << name;
    auto spec = candidate->make();
    ASSERT_TRUE(spec.ok()) << name;
    EXPECT_TRUE(spec->VerifyAll().ok()) << name;
  }
}

TEST(PolicyCandidateRegistry, SeedsFromPolicyDir) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "concord_autotune_casm_test";
  std::filesystem::create_directories(dir);
  {
    std::ofstream out(dir / "my_numa_group.casm");
    out << "; hook: cmp_node\n"
        << "  ldxw r2, [r1+16]\n"
        << "  ldxw r3, [r1+56]\n"
        << "  jeq  r2, r3, same\n"
        << "  mov  r0, 0\n"
        << "  exit\n"
        << "same:\n"
        << "  mov  r0, 1\n"
        << "  exit\n";
  }
  {
    // No regime mapping in the filename: must be skipped, not guessed.
    std::ofstream out(dir / "mystery.casm");
    out << "; hook: cmp_node\n  mov r0, 0\n  exit\n";
  }
  PolicyCandidateRegistry registry;
  EXPECT_EQ(registry.SeedFromPolicyDir(dir.string()), 1);
  const PolicyCandidate loaded =
      registry.CandidateFor(ContentionRegime::kNumaSkewed, false);
  EXPECT_EQ(loaded.name, "my_numa_group");
  auto spec = loaded.make();
  ASSERT_TRUE(spec.ok());
  EXPECT_TRUE(spec->VerifyAll().ok());
  std::filesystem::remove_all(dir);
}

// --- controller -------------------------------------------------------------

class AutotuneControllerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Concord& concord = Concord::Global();
    lock_id_ = concord.RegisterShflLock(lock_, "tuned", "test");
    AutotuneConfig config;
    config.hysteresis_windows = 1;
    config.canary_windows = 2;
    config.cooldown_windows = 0;
    config.min_window_acquisitions = 10;
    config.promote_margin = 0.05;
    ASSERT_TRUE(AutotuneController::Global().Configure(config).ok());
    ASSERT_TRUE(AutotuneController::Global().Enroll(lock_id_).ok());
  }

  void TearDown() override {
    // Also resets the autotune controller (stops any worker first).
    Concord::Global().ResetForTest();
  }

  // Writes one synthetic profiling window into the control shard and
  // advances the fake clock so the next Tick sees it as a 100ms window.
  struct Window {
    std::uint64_t acquisitions = 0;
    std::uint64_t contentions = 0;
    std::uint64_t wait_each_ns = 0;   // one wait sample per contention
    std::uint64_t cross_socket = 0;
    bool two_sockets = false;
  };
  void Feed(const Window& window) {
    LockProfileStats& shard =
        Concord::Global().MutableStats(lock_id_)->ControlShard();
    shard.acquisitions.fetch_add(window.acquisitions);
    shard.contentions.fetch_add(window.contentions);
    if (window.two_sockets) {
      shard.socket_acquisitions[0].fetch_add(window.acquisitions / 2);
      shard.socket_acquisitions[1].fetch_add(window.acquisitions -
                                             window.acquisitions / 2);
    } else {
      shard.socket_acquisitions[0].fetch_add(window.acquisitions);
    }
    shard.cross_socket_handoffs.fetch_add(window.cross_socket);
    for (std::uint64_t i = 0; i < window.contentions; ++i) {
      shard.wait_ns.Record(window.wait_each_ns);
    }
    clock_.clock().AdvanceMs(100);
  }

  // One NUMA-skewed window: 50% contention, both sockets hot, most
  // contended grants crossing sockets.
  Window NumaWindow(std::uint64_t wait_each_ns) {
    return {/*acquisitions=*/100, /*contentions=*/50, wait_each_ns,
            /*cross_socket=*/40, /*two_sockets=*/true};
  }

  std::vector<AutotuneEvent> TickEvents() {
    return AutotuneController::Global().Tick();
  }

  static bool HasEvent(const std::vector<AutotuneEvent>& events,
                       AutotuneEventKind kind) {
    for (const AutotuneEvent& event : events) {
      if (event.kind == kind) {
        return true;
      }
    }
    return false;
  }

  ScopedFakeClock clock_;
  ShflLock lock_;
  std::uint64_t lock_id_ = 0;
};

TEST_F(AutotuneControllerTest, EnrollUnknownLockFails) {
  EXPECT_FALSE(AutotuneController::Global().Enroll(9999).ok());
}

TEST_F(AutotuneControllerTest, FirstTickOnlyBaselines) {
  EXPECT_TRUE(TickEvents().empty());
  EXPECT_TRUE(Concord::Global().AttachedPolicyName(lock_id_).empty());
}

TEST_F(AutotuneControllerTest, NumaRegimeStartsCanaryAndPromotesOnWin) {
  TickEvents();  // first snapshot
  Feed(NumaWindow(/*wait_each_ns=*/64'000));
  auto events = TickEvents();
  ASSERT_TRUE(HasEvent(events, AutotuneEventKind::kRegimeChange));
  ASSERT_TRUE(HasEvent(events, AutotuneEventKind::kCanaryStart));
  EXPECT_EQ(Concord::Global().AttachedPolicyName(lock_id_), "numa_grouping");

  // Two canary windows with 8x lower waits: clear promote.
  Feed(NumaWindow(/*wait_each_ns=*/8'000));
  EXPECT_TRUE(TickEvents().empty());
  Feed(NumaWindow(/*wait_each_ns=*/8'000));
  events = TickEvents();
  ASSERT_TRUE(HasEvent(events, AutotuneEventKind::kPromote));
  EXPECT_EQ(Concord::Global().AttachedPolicyName(lock_id_), "numa_grouping");

  const std::string json = AutotuneController::Global().StatusJson();
  EXPECT_NE(json.find("\"incumbent\":\"numa_grouping\""), std::string::npos);
  EXPECT_NE(json.find("\"regime\":\"numa-skewed\""), std::string::npos);
}

TEST_F(AutotuneControllerTest, CanaryRollsBackOnP99Regression) {
  TickEvents();
  Feed(NumaWindow(/*wait_each_ns=*/8'000));
  ASSERT_TRUE(HasEvent(TickEvents(), AutotuneEventKind::kCanaryStart));

  // The canary makes the tail 16x worse: must roll back to the prior
  // (plain) configuration, and the candidate goes on the skip list.
  Feed(NumaWindow(/*wait_each_ns=*/128'000));
  TickEvents();
  Feed(NumaWindow(/*wait_each_ns=*/128'000));
  const auto events = TickEvents();
  ASSERT_TRUE(HasEvent(events, AutotuneEventKind::kRollback));
  EXPECT_TRUE(Concord::Global().AttachedPolicyName(lock_id_).empty());

  // Still NUMA-skewed, but the only candidate is skipped: no new canary.
  Feed(NumaWindow(/*wait_each_ns=*/8'000));
  EXPECT_FALSE(HasEvent(TickEvents(), AutotuneEventKind::kCanaryStart));
}

TEST_F(AutotuneControllerTest, RollbackRestoresManuallyAttachedIncumbent) {
  // Operator attached the fairness guard by hand before enrollment; the
  // registry knows it, so it becomes the incumbent to restore on rollback.
  Concord& concord = Concord::Global();
  auto guard = MakeShuffleFairnessGuard();
  ASSERT_TRUE(guard.ok());
  ASSERT_TRUE(concord.Attach(lock_id_, std::move(guard->spec)).ok());
  ASSERT_TRUE(AutotuneController::Global().Unenroll(lock_id_).ok());
  ASSERT_TRUE(AutotuneController::Global().Enroll(lock_id_).ok());

  TickEvents();
  Feed(NumaWindow(/*wait_each_ns=*/8'000));
  ASSERT_TRUE(HasEvent(TickEvents(), AutotuneEventKind::kCanaryStart));
  EXPECT_EQ(concord.AttachedPolicyName(lock_id_), "numa_grouping");

  Feed(NumaWindow(/*wait_each_ns=*/128'000));
  TickEvents();
  Feed(NumaWindow(/*wait_each_ns=*/128'000));
  ASSERT_TRUE(HasEvent(TickEvents(), AutotuneEventKind::kRollback));
  EXPECT_EQ(concord.AttachedPolicyName(lock_id_), "shuffle_fairness_guard");
}

TEST_F(AutotuneControllerTest, RevertsToPlainWhenContentionDisappears) {
  TickEvents();
  Feed(NumaWindow(/*wait_each_ns=*/64'000));
  TickEvents();
  Feed(NumaWindow(/*wait_each_ns=*/8'000));
  TickEvents();
  Feed(NumaWindow(/*wait_each_ns=*/8'000));
  ASSERT_TRUE(HasEvent(TickEvents(), AutotuneEventKind::kPromote));
  ASSERT_EQ(Concord::Global().AttachedPolicyName(lock_id_), "numa_grouping");

  // Contention vanishes: uncontended regime wants plain, which needs no
  // canary — the policy is detached directly.
  Feed({/*acquisitions=*/100, /*contentions=*/1, /*wait_each_ns=*/1'000});
  const auto events = TickEvents();
  ASSERT_TRUE(HasEvent(events, AutotuneEventKind::kPromote));
  EXPECT_TRUE(Concord::Global().AttachedPolicyName(lock_id_).empty());
}

TEST_F(AutotuneControllerTest, ContainmentSuspectRollsBackCanary) {
  TickEvents();
  Feed(NumaWindow(/*wait_each_ns=*/8'000));
  ASSERT_TRUE(HasEvent(TickEvents(), AutotuneEventKind::kCanaryStart));

  // A dispatch fault marks the canary policy suspect; the next tick must
  // roll back without waiting for the scoring verdict.
  ContainmentRegistry::Global().ReportFault(
      lock_id_, ContainmentFault::kDispatchFault, "test fault");
  Feed(NumaWindow(/*wait_each_ns=*/8'000));
  const auto events = TickEvents();
  ASSERT_TRUE(HasEvent(events, AutotuneEventKind::kRollback));
  EXPECT_TRUE(Concord::Global().AttachedPolicyName(lock_id_).empty());
}

TEST_F(AutotuneControllerTest, SparseWindowsStarveTheCanaryIntoAbort) {
  TickEvents();
  Feed(NumaWindow(/*wait_each_ns=*/8'000));
  ASSERT_TRUE(HasEvent(TickEvents(), AutotuneEventKind::kCanaryStart));

  // Windows below min_window_acquisitions never score; after
  // canary_windows * 8 total windows the canary aborts and rolls back.
  bool aborted = false;
  for (int i = 0; i < 20 && !aborted; ++i) {
    Feed({/*acquisitions=*/1, /*contentions=*/0, /*wait_each_ns=*/0});
    aborted = HasEvent(TickEvents(), AutotuneEventKind::kCanaryAbort);
  }
  EXPECT_TRUE(aborted);
  EXPECT_TRUE(Concord::Global().AttachedPolicyName(lock_id_).empty());
}

TEST_F(AutotuneControllerTest, StatusJsonListsEnrolledLockAndCandidates) {
  const std::string json = AutotuneController::Global().StatusJson();
  EXPECT_NE(json.find("\"running\":false"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"tuned\""), std::string::npos);
  EXPECT_NE(json.find("numa_grouping"), std::string::npos);
  EXPECT_NE(json.find("\"incumbent\":\"plain\""), std::string::npos);
}

TEST_F(AutotuneControllerTest, UnenrollStopsManagement) {
  ASSERT_TRUE(AutotuneController::Global().Unenroll(lock_id_).ok());
  EXPECT_TRUE(AutotuneController::Global().Enrolled().empty());
  Feed(NumaWindow(/*wait_each_ns=*/8'000));
  EXPECT_TRUE(TickEvents().empty());
}

TEST_F(AutotuneControllerTest, EnableAutotuneFacadeStartsAndStops) {
  Concord& concord = Concord::Global();
  // SetUp already configured + enrolled; the facade only needs to start.
  ASSERT_TRUE(concord.EnableAutotune("tuned").ok());
  EXPECT_TRUE(AutotuneController::Global().running());
  EXPECT_NE(concord.AutotuneStatusJson().find("\"running\":true"),
            std::string::npos);
  ASSERT_TRUE(concord.DisableAutotune().ok());
  EXPECT_FALSE(AutotuneController::Global().running());
}

TEST_F(AutotuneControllerTest, EnvKillSwitchBlocksEnable) {
  ::setenv("CONCORD_AUTOTUNE", "off", 1);
  EXPECT_FALSE(Concord::Global().EnableAutotune("tuned").ok());
  EXPECT_FALSE(AutotuneController::Global().running());
  ::unsetenv("CONCORD_AUTOTUNE");
}

}  // namespace
}  // namespace concord
