// Framing-layer tests for the control-plane RPC protocol: well-formed
// requests, the rejection matrix the server's error classification depends
// on, response round-trips, and a deterministic fuzz pass feeding the parser
// truncated, oversized, mutated and interleaved frames. The parser is the
// only code that ever touches untrusted bytes from the socket, so "never
// crashes, always classifies" is the property under test.

#include "src/concord/rpc/protocol.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

namespace concord {
namespace {

bool HasPrefix(const std::string& text, const std::string& prefix) {
  return text.compare(0, prefix.size(), prefix) == 0;
}

// --- request parsing ---------------------------------------------------------

TEST(RpcProtocolTest, ParsesMinimalRequest) {
  auto request = ParseRpcRequest(R"({"method":"status"})");
  ASSERT_TRUE(request.ok());
  EXPECT_EQ(request->method, "status");
  EXPECT_FALSE(request->has_id);
  EXPECT_TRUE(request->params.IsNull());
}

TEST(RpcProtocolTest, ParsesFullRequest) {
  auto request = ParseRpcRequest(
      R"({"id":7,"method":"faults.arm","params":{"directive":"rpc.read=1in3"}})");
  ASSERT_TRUE(request.ok());
  EXPECT_EQ(request->method, "faults.arm");
  ASSERT_TRUE(request->has_id);
  EXPECT_TRUE(request->id.IsNumber());
  EXPECT_DOUBLE_EQ(request->id.number_value, 7.0);
  ASSERT_TRUE(request->params.IsObject());
  const JsonValue* directive = request->params.Find("directive");
  ASSERT_NE(directive, nullptr);
  EXPECT_EQ(directive->string_value, "rpc.read=1in3");
}

TEST(RpcProtocolTest, AcceptsStringIdAndNullParams) {
  auto request =
      ParseRpcRequest(R"({"id":"req-1","method":"status","params":null})");
  ASSERT_TRUE(request.ok());
  EXPECT_TRUE(request->id.IsString());
  EXPECT_EQ(request->id.string_value, "req-1");
  EXPECT_TRUE(request->params.IsNull());
}

TEST(RpcProtocolTest, ClassifiesParseErrorsVsInvalidRequests) {
  // Not JSON at all -> parse_error (the server replies without an id).
  auto broken = ParseRpcRequest("{\"method\":");
  ASSERT_FALSE(broken.ok());
  EXPECT_TRUE(HasPrefix(broken.status().message(), "parse_error: "))
      << broken.status().message();

  // Valid JSON, bad envelope -> invalid_request.
  for (const char* bad : {
           R"([1,2,3])",                         // not an object
           R"({"params":{}})",                   // missing method
           R"({"method":""})",                   // empty method
           R"({"method":42})",                   // non-string method
           R"({"method":"s","id":[1]})",         // array id
           R"({"method":"s","id":true})",        // bool id
           R"({"method":"s","id":null})",        // null id
           R"({"method":"s","params":[1]})",     // array params
           R"({"method":"s","params":"x"})",     // string params
           R"({"method":"s","extra":1})",        // unknown field
       }) {
    auto request = ParseRpcRequest(bad);
    ASSERT_FALSE(request.ok()) << bad;
    EXPECT_TRUE(HasPrefix(request.status().message(), "invalid_request: "))
        << bad << " -> " << request.status().message();
  }
}

TEST(RpcProtocolTest, EnforcesMaxRequestBytes) {
  // Exactly at the cap still parses (pad with spaces, which JSON allows).
  std::string frame = R"({"method":"status"})";
  frame.resize(kRpcMaxRequestBytes, ' ');
  EXPECT_TRUE(ParseRpcRequest(frame).ok());

  frame.push_back(' ');
  auto oversized = ParseRpcRequest(frame);
  ASSERT_FALSE(oversized.ok());
  EXPECT_TRUE(HasPrefix(oversized.status().message(), "invalid_request: "));
}

TEST(RpcProtocolTest, RejectsInterleavedFrames) {
  // Line splitting is the transport's job; two frames on one line must not
  // silently parse as one request.
  EXPECT_FALSE(
      ParseRpcRequest("{\"method\":\"status\"}\n{\"method\":\"status\"}").ok());
  EXPECT_FALSE(
      ParseRpcRequest(R"({"method":"status"}{"method":"status"})").ok());
}

// --- response envelopes ------------------------------------------------------

TEST(RpcProtocolTest, OkResponseEchoesIdAndRoundTrips) {
  auto request = ParseRpcRequest(R"({"id":42,"method":"status"})");
  ASSERT_TRUE(request.ok());
  const std::string frame = BuildRpcOk(*request, R"({"pid":1})");
  EXPECT_EQ(frame, "{\"id\":42,\"ok\":true,\"result\":{\"pid\":1}}\n");

  auto response = ParseRpcResponse(frame.substr(0, frame.size() - 1));
  ASSERT_TRUE(response.ok());
  EXPECT_TRUE(response->ok);
  EXPECT_EQ(response->result, R"({"pid":1})");
}

TEST(RpcProtocolTest, OkResponseEscapesStringId) {
  auto request = ParseRpcRequest(R"({"id":"a\"b","method":"status"})");
  ASSERT_TRUE(request.ok());
  const std::string frame = BuildRpcOk(*request, "null");
  EXPECT_EQ(frame, "{\"id\":\"a\\\"b\",\"ok\":true,\"result\":null}\n");
  EXPECT_TRUE(ParseRpcResponse(frame.substr(0, frame.size() - 1)).ok());
}

TEST(RpcProtocolTest, ErrorResponseCarriesCodeMessageRetryable) {
  const std::string frame =
      BuildRpcError(nullptr, RpcErrorCode::kBusy, "work queue full", true);
  auto response = ParseRpcResponse(frame.substr(0, frame.size() - 1));
  ASSERT_TRUE(response.ok());
  EXPECT_FALSE(response->ok);
  EXPECT_EQ(response->error_code, "busy");
  EXPECT_EQ(response->error_message, "work queue full");
  EXPECT_TRUE(response->retryable);

  const std::string fatal = BuildRpcError(
      nullptr, RpcErrorCode::kPermissionDenied, "verifier: bad policy", false);
  auto parsed = ParseRpcResponse(fatal.substr(0, fatal.size() - 1));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->error_code, "permission_denied");
  EXPECT_FALSE(parsed->retryable);
}

TEST(RpcProtocolTest, ResponseParserRejectsBrokenServers) {
  for (const char* bad : {
           "",                                   // empty line
           "not json",                           // garbage
           "[1]",                                // not an object
           R"({"result":1})",                    // missing ok
           R"({"ok":"yes"})",                    // non-bool ok
           R"({"ok":true})",                     // ok without result
           R"({"ok":false})",                    // error without error object
           R"({"ok":false,"error":{"message":"x"}})",  // error without code
       }) {
    EXPECT_FALSE(ParseRpcResponse(bad).ok()) << bad;
  }
}

TEST(RpcProtocolTest, StatusMappingCoversFacadeCodes) {
  EXPECT_EQ(RpcErrorCodeForStatus(InvalidArgumentError("x")),
            RpcErrorCode::kInvalidParams);
  EXPECT_EQ(RpcErrorCodeForStatus(NotFoundError("x")), RpcErrorCode::kNotFound);
  EXPECT_EQ(RpcErrorCodeForStatus(FailedPreconditionError("x")),
            RpcErrorCode::kFailedPrecondition);
  EXPECT_EQ(RpcErrorCodeForStatus(PermissionDeniedError("x")),
            RpcErrorCode::kPermissionDenied);
  EXPECT_EQ(RpcErrorCodeForStatus(ResourceExhaustedError("x")),
            RpcErrorCode::kResourceExhausted);
  EXPECT_EQ(RpcErrorCodeForStatus(InternalError("x")), RpcErrorCode::kInternal);
}

// --- fuzz corpus -------------------------------------------------------------
//
// Deterministic (seeded) fuzzing: the parser must never crash and must
// return either a request or a classified error for every input. Coverage
// axes: every truncation point of valid frames, single-byte mutations at
// every offset, and structured junk around the size cap.

const char* const kCorpus[] = {
    R"({"method":"status"})",
    R"({"id":1,"method":"autotune.enable","params":{"selector":"class:demo"}})",
    R"({"id":"x","method":"faults.arm","params":{"directive":"rpc.read=1in3:7"}})",
    R"({"id":9007199254740993,"method":"trace.dump","params":null})",
    R"({"method":"policy.attach","params":{"selector":"hot","file":"a.casm"}})",
};

TEST(RpcProtocolFuzzTest, EveryTruncationIsHandled) {
  for (const char* seed : kCorpus) {
    const std::string frame(seed);
    for (std::size_t cut = 0; cut < frame.size(); ++cut) {
      auto request = ParseRpcRequest(frame.substr(0, cut));
      if (request.ok()) {
        // A truncation that still parses must be a strictly valid envelope.
        EXPECT_FALSE(request->method.empty());
      } else {
        EXPECT_TRUE(
            HasPrefix(request.status().message(), "parse_error: ") ||
            HasPrefix(request.status().message(), "invalid_request: "))
            << request.status().message();
      }
    }
  }
}

TEST(RpcProtocolFuzzTest, SingleByteMutationsNeverCrash) {
  // SplitMix64 stream makes the byte choices reproducible run to run.
  std::uint64_t rng = 0x9e3779b97f4a7c15ull;
  auto next = [&rng]() {
    rng += 0x9e3779b97f4a7c15ull;
    std::uint64_t x = rng;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
  };
  for (const char* seed : kCorpus) {
    const std::string frame(seed);
    for (std::size_t at = 0; at < frame.size(); ++at) {
      for (int round = 0; round < 4; ++round) {
        std::string mutated = frame;
        mutated[at] = static_cast<char>(next() & 0xff);
        auto request = ParseRpcRequest(mutated);
        if (!request.ok()) {
          EXPECT_TRUE(
              HasPrefix(request.status().message(), "parse_error: ") ||
              HasPrefix(request.status().message(), "invalid_request: "))
              << mutated;
        }
      }
    }
  }
}

TEST(RpcProtocolFuzzTest, HostileSizesAndNesting) {
  // A huge but under-cap string param parses; the same at the cap is shed.
  std::string big = R"({"method":"status","params":{"junk":")";
  big.append(kRpcMaxRequestBytes - big.size() - 3, 'a');
  big += "\"}}";
  ASSERT_EQ(big.size(), kRpcMaxRequestBytes);
  EXPECT_TRUE(ParseRpcRequest(big).ok());
  big.insert(big.size() - 3, 100, 'a');
  EXPECT_FALSE(ParseRpcRequest(big).ok());

  // Deep nesting inside params must hit the JSON depth limit, not the stack.
  std::string deep = R"({"method":"s","params":{"a":)";
  for (int i = 0; i < 5000; ++i) {
    deep += "[";
  }
  auto request = ParseRpcRequest(deep);
  ASSERT_FALSE(request.ok());
  EXPECT_TRUE(HasPrefix(request.status().message(), "parse_error: "));
}

}  // namespace
}  // namespace concord
