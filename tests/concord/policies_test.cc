// Decision-level tests for the ready-made policies: each program is
// verified under its hook's capability mask and then executed directly in
// the VM with crafted contexts.

#include "src/concord/policies.h"

#include <gtest/gtest.h>

#include "src/bpf/verifier.h"
#include "src/bpf/vm.h"
#include "src/concord/hooks.h"
#include "src/topology/thread_context.h"

namespace concord {
namespace {

// Verifies every program in the policy under its hook's rules and returns
// the single program attached at `kind`.
Program& VerifiedProgram(TunablePolicy& policy, HookKind kind) {
  Status status = policy.spec.VerifyAll();
  EXPECT_TRUE(status.ok()) << status.ToString();
  HookChain& chain = policy.spec.ChainFor(kind);
  EXPECT_EQ(chain.programs.size(), 1u);
  return chain.programs.front();
}

ShflWaiterView MakeWaiter(std::uint32_t socket, std::int32_t priority = 0,
                          std::uint32_t locks_held = 0,
                          std::uint64_t cs_ewma = 0, std::uint32_t vcpu = 0) {
  ShflWaiterView view;
  view.socket = socket;
  view.vcpu = vcpu;
  view.priority = priority;
  view.locks_held = locks_held;
  view.cs_ewma_ns = cs_ewma;
  return view;
}

TEST(PoliciesTest, NumaGroupingMatchesSameSocketOnly) {
  auto policy = MakeNumaGroupingPolicy();
  ASSERT_TRUE(policy.ok());
  Program& program = VerifiedProgram(*policy, HookKind::kCmpNode);

  CmpNodeCtx same{MakeWaiter(3), MakeWaiter(3)};
  CmpNodeCtx different{MakeWaiter(3), MakeWaiter(5)};
  EXPECT_EQ(BpfVm::Run(program, &same), 1u);
  EXPECT_EQ(BpfVm::Run(program, &different), 0u);
}

TEST(PoliciesTest, PriorityBoostRespectsThresholdKnob) {
  auto policy = MakePriorityBoostPolicy();
  ASSERT_TRUE(policy.ok());
  Program& program = VerifiedProgram(*policy, HookKind::kCmpNode);

  CmpNodeCtx low{MakeWaiter(0), MakeWaiter(1, /*priority=*/0)};
  CmpNodeCtx high{MakeWaiter(0), MakeWaiter(1, /*priority=*/5)};
  EXPECT_EQ(BpfVm::Run(program, &low), 0u);   // default threshold 1
  EXPECT_EQ(BpfVm::Run(program, &high), 1u);

  // Raise the threshold live: priority 5 no longer qualifies.
  ASSERT_TRUE(policy->SetKnob(0, 10).ok());
  EXPECT_EQ(BpfVm::Run(program, &high), 0u);
  CmpNodeCtx vip{MakeWaiter(0), MakeWaiter(1, /*priority=*/10)};
  EXPECT_EQ(BpfVm::Run(program, &vip), 1u);
}

TEST(PoliciesTest, LockInheritanceBoostsNestedAcquirers) {
  auto policy = MakeLockInheritancePolicy();
  ASSERT_TRUE(policy.ok());
  Program& program = VerifiedProgram(*policy, HookKind::kCmpNode);

  CmpNodeCtx bare{MakeWaiter(0), MakeWaiter(1, 0, /*locks_held=*/0)};
  CmpNodeCtx nested{MakeWaiter(0), MakeWaiter(1, 0, /*locks_held=*/2)};
  EXPECT_EQ(BpfVm::Run(program, &bare), 0u);
  EXPECT_EQ(BpfVm::Run(program, &nested), 1u);
}

TEST(PoliciesTest, SclBoostsShortCriticalSections) {
  auto policy = MakeSclPolicy();
  ASSERT_TRUE(policy.ok());
  Program& program = VerifiedProgram(*policy, HookKind::kCmpNode);

  // Default limit 1ms.
  CmpNodeCtx quick{MakeWaiter(0), MakeWaiter(1, 0, 0, /*cs_ewma=*/10'000)};
  CmpNodeCtx hog{MakeWaiter(0), MakeWaiter(1, 0, 0, /*cs_ewma=*/50'000'000)};
  EXPECT_EQ(BpfVm::Run(program, &quick), 1u);
  EXPECT_EQ(BpfVm::Run(program, &hog), 0u);

  ASSERT_TRUE(policy->SetKnob(0, 5'000).ok());
  EXPECT_EQ(BpfVm::Run(program, &quick), 0u);  // 10us now over the 5us limit
}

TEST(PoliciesTest, AmpPolicyPrefersFastCores) {
  auto policy = MakeAmpFastCorePolicy();
  ASSERT_TRUE(policy.ok());
  Program& program = VerifiedProgram(*policy, HookKind::kCmpNode);

  CmpNodeCtx fast{MakeWaiter(0), MakeWaiter(1, 0, 0, 0, /*vcpu=*/2)};
  CmpNodeCtx slow{MakeWaiter(0), MakeWaiter(1, 0, 0, 0, /*vcpu=*/9)};
  EXPECT_EQ(BpfVm::Run(program, &fast), 1u);  // default fast-core count 4
  EXPECT_EQ(BpfVm::Run(program, &slow), 0u);
}

TEST(PoliciesTest, VcpuPreemptionPolicyReadsLiveAnnotations) {
  auto policy = MakeVcpuPreemptionPolicy();
  ASSERT_TRUE(policy.ok());
  Program& program = VerifiedProgram(*policy, HookKind::kCmpNode);

  // Annotate the current thread (a registered task) as non-preemptible and
  // point the candidate view at it.
  ThreadContext& ctx = Self();
  ctx.preemptible.store(0, std::memory_order_relaxed);
  CmpNodeCtx pinned{MakeWaiter(0), MakeWaiter(1)};
  pinned.curr.task_id = ctx.task_id;
  EXPECT_EQ(BpfVm::Run(program, &pinned), 1u);  // boost the pinned vCPU

  ctx.preemptible.store(1, std::memory_order_relaxed);
  EXPECT_EQ(BpfVm::Run(program, &pinned), 0u);

  // Unknown task ids default to preemptible (no boost) rather than crash.
  CmpNodeCtx unknown{MakeWaiter(0), MakeWaiter(1)};
  unknown.curr.task_id = 999999;
  EXPECT_EQ(BpfVm::Run(program, &unknown), 0u);
  ctx.preemptible.store(1, std::memory_order_relaxed);
}

TEST(PoliciesTest, AdaptiveParkingUsesSpinKnob) {
  auto policy = MakeAdaptiveParkingPolicy();
  ASSERT_TRUE(policy.ok());
  Program& program = VerifiedProgram(*policy, HookKind::kScheduleWaiter);

  ScheduleWaiterCtx early{MakeWaiter(0), /*spin_iterations=*/10, 0};
  ScheduleWaiterCtx late{MakeWaiter(0), /*spin_iterations=*/1000, 0};
  EXPECT_EQ(BpfVm::Run(program, &early), 0u);  // default 256
  EXPECT_EQ(BpfVm::Run(program, &late), 1u);

  // "Never park": switch the blocking lock to rwlock-like spinning live.
  ASSERT_TRUE(policy->SetKnob(0, ~0ull).ok());
  EXPECT_EQ(BpfVm::Run(program, &late), 0u);
}

TEST(PoliciesTest, FairnessGuardSkipsForLongSufferingHead) {
  auto policy = MakeShuffleFairnessGuard();
  ASSERT_TRUE(policy.ok());
  Program& program = VerifiedProgram(*policy, HookKind::kSkipShuffle);

  SkipShuffleCtx fresh{MakeWaiter(0)};
  fresh.shuffler.wait_ns = 1'000;
  SkipShuffleCtx suffering{MakeWaiter(0)};
  suffering.shuffler.wait_ns = 100'000'000;  // 100ms > default 10ms
  EXPECT_EQ(BpfVm::Run(program, &fresh), 0u);
  EXPECT_EQ(BpfVm::Run(program, &suffering), 1u);
}

TEST(PoliciesTest, RwSwitchReturnsKnobMode) {
  auto policy = MakeRwSwitchPolicy(RwMode::kReaderBias);
  ASSERT_TRUE(policy.ok());
  Status status = policy->spec.VerifyAll();
  ASSERT_TRUE(status.ok()) << status.ToString();
  Program& program = policy->spec.ChainFor(HookKind::kRwMode).programs.front();

  RwModeCtx ctx{42};
  EXPECT_EQ(BpfVm::Run(program, &ctx),
            static_cast<std::uint64_t>(RwMode::kReaderBias));
  ASSERT_TRUE(
      policy->SetKnob(0, static_cast<std::uint64_t>(RwMode::kWriterOnly)).ok());
  EXPECT_EQ(BpfVm::Run(program, &ctx),
            static_cast<std::uint64_t>(RwMode::kWriterOnly));
}

TEST(PoliciesTest, BpfProfilerCountsTaps) {
  auto policy = MakeBpfProfilerPolicy();
  ASSERT_TRUE(policy.ok());
  Status status = policy->spec.VerifyAll();
  ASSERT_TRUE(status.ok()) << status.ToString();

  ProfileCtx ctx{1, 0, 0, 0};
  Program& acquire =
      policy->spec.ChainFor(HookKind::kLockAcquire).programs.front();
  Program& release =
      policy->spec.ChainFor(HookKind::kLockRelease).programs.front();
  for (int i = 0; i < 5; ++i) {
    BpfVm::Run(acquire, &ctx);
  }
  BpfVm::Run(release, &ctx);
  EXPECT_EQ(policy->Count(HookKind::kLockAcquire), 5u);
  EXPECT_EQ(policy->Count(HookKind::kLockRelease), 1u);
  EXPECT_EQ(policy->Count(HookKind::kLockContended), 0u);
}

TEST(PoliciesTest, LockCensusCountsPerTaskClass) {
  auto policy = MakeLockCensusPolicy();
  ASSERT_TRUE(policy.ok()) << policy.status().ToString();
  Status status = policy->spec.VerifyAll();
  ASSERT_TRUE(status.ok()) << status.ToString();

  Program& acquire =
      policy->spec.ChainFor(HookKind::kLockAcquire).programs.front();
  ProfileCtx ctx{1, 0, 0, 0};
  ThreadContext& self = Self();
  const std::uint8_t saved_class =
      self.task_class.load(std::memory_order_relaxed);

  self.task_class.store(static_cast<std::uint8_t>(TaskClass::kRealtime),
                        std::memory_order_relaxed);
  for (int i = 0; i < 3; ++i) {
    BpfVm::Run(acquire, &ctx);
  }
  self.task_class.store(static_cast<std::uint8_t>(TaskClass::kBackground),
                        std::memory_order_relaxed);
  BpfVm::Run(acquire, &ctx);
  self.task_class.store(saved_class, std::memory_order_relaxed);

  EXPECT_EQ(policy->CountForClass(
                static_cast<std::uint64_t>(TaskClass::kRealtime)),
            3u);
  EXPECT_EQ(policy->CountForClass(
                static_cast<std::uint64_t>(TaskClass::kBackground)),
            1u);
  EXPECT_EQ(policy->CountForClass(
                static_cast<std::uint64_t>(TaskClass::kLatencyCritical)),
            0u);
  // Keys are inserted lazily, one per observed class.
  EXPECT_EQ(policy->census->Size(), 2u);
}

// Property sweep: every factory policy verifies cleanly under its hook's
// capability mask (i.e. no ready-made policy depends on capabilities its
// attach point would deny).
using PolicyFactory = StatusOr<TunablePolicy> (*)();
class PolicyVerificationTest : public ::testing::TestWithParam<PolicyFactory> {};

TEST_P(PolicyVerificationTest, FactoryPolicyVerifies) {
  auto policy = GetParam()();
  ASSERT_TRUE(policy.ok()) << policy.status().ToString();
  Status status = policy->spec.VerifyAll();
  EXPECT_TRUE(status.ok()) << status.ToString();
  // Verified programs advertise their capability usage.
  for (int k = 0; k < kNumHookKinds; ++k) {
    for (const Program& program : policy->spec.chains[k].programs) {
      EXPECT_TRUE(program.verified);
      EXPECT_EQ(program.used_capabilities & ~CapabilitiesFor(static_cast<HookKind>(k)),
                0u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllFactories, PolicyVerificationTest,
                         ::testing::Values(&MakeNumaGroupingPolicy,
                                           &MakePriorityBoostPolicy,
                                           &MakeLockInheritancePolicy,
                                           &MakeSclPolicy,
                                           &MakeAmpFastCorePolicy,
                                           &MakeVcpuPreemptionPolicy,
                                           &MakeAdaptiveParkingPolicy,
                                           &MakeShuffleFairnessGuard));

}  // namespace
}  // namespace concord
