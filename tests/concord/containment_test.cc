#include "src/concord/containment.h"

#include <gtest/gtest.h>
#include <time.h>

#include <atomic>

#include "src/base/fault.h"
#include "src/base/time.h"
#include "src/bpf/jit/jit.h"
#include "src/concord/concord.h"
#include "src/concord/policies.h"
#include "src/sync/shfllock.h"

namespace concord {
namespace {

class ContainmentTest : public ::testing::Test {
 protected:
  void TearDown() override {
    Concord::Global().ResetForTest();  // also resets the containment registry
#if CONCORD_FAULT_INJECTION
    FaultRegistry::Global().DisarmAll();
#endif
  }

  std::uint64_t RegisterWithPolicy() {
    Concord& concord = Concord::Global();
    const std::uint64_t id = concord.RegisterShflLock(lock_, "l", "t");
    auto policy = MakeNumaGroupingPolicy();
    EXPECT_TRUE(policy.ok());
    EXPECT_TRUE(concord.Attach(id, std::move(policy->spec)).ok());
    return id;
  }

  static bool HasPolicy(std::uint64_t id) {
    for (const auto& info : Concord::Global().ListLocks()) {
      if (info.lock_id == id) {
        return info.has_policy;
      }
    }
    return false;
  }

  static bool HasEvent(ContainmentFault fault, ContainmentAction action) {
    for (const ContainmentEvent& event : ContainmentRegistry::Global().events()) {
      if (event.fault == fault && event.action == action) {
        return true;
      }
    }
    return false;
  }

  ShflLock lock_;
};

TEST_F(ContainmentTest, RepeatedFaultsMarkSuspectThenQuarantine) {
  ScopedFakeClock fake(1'000'000);
  const std::uint64_t id = RegisterWithPolicy();
  ContainmentRegistry& registry = ContainmentRegistry::Global();

  EXPECT_EQ(registry.HealthOf(id), PolicyHealth::kActive);
  registry.ReportFault(id, ContainmentFault::kBudgetOverrun, "first");
  EXPECT_EQ(registry.HealthOf(id), PolicyHealth::kSuspect);
  EXPECT_TRUE(HasPolicy(id));  // suspect does not detach

  registry.ReportFault(id, ContainmentFault::kBudgetOverrun, "second");
  EXPECT_EQ(registry.HealthOf(id), PolicyHealth::kQuarantined);
  // Quarantine detached the hook table but parked the spec.
  EXPECT_FALSE(HasPolicy(id));
  EXPECT_EQ(Concord::Global().AttachedPolicyName(id), "numa_grouping");

  EXPECT_TRUE(HasEvent(ContainmentFault::kBudgetOverrun,
                       ContainmentAction::kMarkedSuspect));
  EXPECT_TRUE(
      HasEvent(ContainmentFault::kBudgetOverrun, ContainmentAction::kQuarantined));
}

TEST_F(ContainmentTest, ReattachFollowsExponentialBackoffSchedule) {
  ScopedFakeClock fake(1'000'000);
  const std::uint64_t id = RegisterWithPolicy();
  ContainmentRegistry& registry = ContainmentRegistry::Global();
  ContainmentConfig config;
  config.quarantine_threshold = 1;  // quarantine on first fault
  config.initial_backoff_ns = 100'000'000;  // 100ms
  config.backoff_multiplier = 2.0;
  config.probation_success_ns = 1'000'000'000;
  registry.SetConfig(config);

  registry.ReportFault(id, ContainmentFault::kFairnessViolation, "hostile");
  ASSERT_EQ(registry.HealthOf(id), PolicyHealth::kQuarantined);
  ASSERT_EQ(registry.StatusOf(id)->backoff_ns, 100'000'000u);

  // No early re-attach: one tick before the deadline nothing happens.
  registry.Poll();
  EXPECT_EQ(registry.HealthOf(id), PolicyHealth::kQuarantined);
  fake.clock().AdvanceMs(99);
  registry.Poll();
  EXPECT_EQ(registry.HealthOf(id), PolicyHealth::kQuarantined);
  EXPECT_FALSE(HasPolicy(id));

  // At the deadline the policy goes back on the lock, on probation.
  fake.clock().AdvanceMs(1);
  registry.Poll();
  EXPECT_EQ(registry.HealthOf(id), PolicyHealth::kProbation);
  EXPECT_TRUE(HasPolicy(id));
  EXPECT_TRUE(
      HasEvent(ContainmentFault::kNone, ContainmentAction::kReattached));

  // A fault during probation re-quarantines and the backoff doubles.
  registry.ReportFault(id, ContainmentFault::kFairnessViolation, "again");
  ASSERT_EQ(registry.HealthOf(id), PolicyHealth::kQuarantined);
  EXPECT_EQ(registry.StatusOf(id)->backoff_ns, 200'000'000u);
  fake.clock().AdvanceMs(199);
  registry.Poll();
  EXPECT_EQ(registry.HealthOf(id), PolicyHealth::kQuarantined);
  fake.clock().AdvanceMs(1);
  registry.Poll();
  ASSERT_EQ(registry.HealthOf(id), PolicyHealth::kProbation);

  // A clean probation interval restores kActive and resets the counters.
  fake.clock().AdvanceMs(1'000);
  registry.Poll();
  EXPECT_EQ(registry.HealthOf(id), PolicyHealth::kActive);
  EXPECT_EQ(registry.StatusOf(id)->quarantine_count, 0u);
  EXPECT_TRUE(HasEvent(ContainmentFault::kNone, ContainmentAction::kRecovered));
}

TEST_F(ContainmentTest, BackoffIsCappedAtMax) {
  ScopedFakeClock fake(1'000'000);
  const std::uint64_t id = RegisterWithPolicy();
  ContainmentRegistry& registry = ContainmentRegistry::Global();
  ContainmentConfig config;
  config.quarantine_threshold = 1;
  config.initial_backoff_ns = 100'000'000;
  config.backoff_multiplier = 10.0;
  config.max_backoff_ns = 500'000'000;
  registry.SetConfig(config);

  registry.ReportFault(id, ContainmentFault::kBudgetOverrun, "1");
  EXPECT_EQ(registry.StatusOf(id)->backoff_ns, 100'000'000u);
  fake.clock().AdvanceMs(100);
  registry.Poll();  // probation
  registry.ReportFault(id, ContainmentFault::kBudgetOverrun, "2");
  // 100ms * 10 = 1s, capped at 500ms.
  EXPECT_EQ(registry.StatusOf(id)->backoff_ns, 500'000'000u);
}

TEST_F(ContainmentTest, BlacklistAfterMaxQuarantines) {
  ScopedFakeClock fake(1'000'000);
  const std::uint64_t id = RegisterWithPolicy();
  ContainmentRegistry& registry = ContainmentRegistry::Global();
  ContainmentConfig config;
  config.quarantine_threshold = 1;
  config.initial_backoff_ns = 1'000'000;
  config.max_quarantines = 1;
  registry.SetConfig(config);

  registry.ReportFault(id, ContainmentFault::kDispatchFault, "1");
  ASSERT_EQ(registry.HealthOf(id), PolicyHealth::kQuarantined);
  fake.clock().AdvanceMs(1);
  registry.Poll();
  ASSERT_EQ(registry.HealthOf(id), PolicyHealth::kProbation);

  registry.ReportFault(id, ContainmentFault::kDispatchFault, "2");
  EXPECT_EQ(registry.HealthOf(id), PolicyHealth::kBlacklisted);
  EXPECT_FALSE(HasPolicy(id));
  EXPECT_TRUE(
      HasEvent(ContainmentFault::kDispatchFault, ContainmentAction::kBlacklisted));

  // Blacklisted policies never come back, no matter how long we wait.
  fake.clock().AdvanceMs(100'000);
  registry.Poll();
  EXPECT_EQ(registry.HealthOf(id), PolicyHealth::kBlacklisted);
  EXPECT_FALSE(HasPolicy(id));
}

TEST_F(ContainmentTest, SuspectDecaysBackToActive) {
  ScopedFakeClock fake(1'000'000);
  const std::uint64_t id = RegisterWithPolicy();
  ContainmentRegistry& registry = ContainmentRegistry::Global();

  registry.ReportFault(id, ContainmentFault::kBudgetOverrun, "blip");
  ASSERT_EQ(registry.HealthOf(id), PolicyHealth::kSuspect);

  fake.clock().AdvanceMs(999);
  registry.Poll();
  EXPECT_EQ(registry.HealthOf(id), PolicyHealth::kSuspect);
  fake.clock().AdvanceMs(1);  // default suspect_decay_ns = 1s
  registry.Poll();
  EXPECT_EQ(registry.HealthOf(id), PolicyHealth::kActive);
  EXPECT_EQ(registry.StatusOf(id)->fault_count, 0u);
}

TEST_F(ContainmentTest, AutoReattachCanBeDisabled) {
  ScopedFakeClock fake(1'000'000);
  const std::uint64_t id = RegisterWithPolicy();
  ContainmentRegistry& registry = ContainmentRegistry::Global();
  ContainmentConfig config;
  config.quarantine_threshold = 1;
  config.initial_backoff_ns = 1'000'000;
  config.auto_reattach = false;
  registry.SetConfig(config);

  registry.ReportFault(id, ContainmentFault::kBudgetOverrun, "x");
  ASSERT_EQ(registry.HealthOf(id), PolicyHealth::kQuarantined);
  fake.clock().AdvanceMs(10'000);
  registry.Poll();
  EXPECT_EQ(registry.HealthOf(id), PolicyHealth::kQuarantined);
  EXPECT_FALSE(HasPolicy(id));
}

TEST_F(ContainmentTest, FaultOnUntrackedLockRecordsEventOnly) {
  Concord& concord = Concord::Global();
  const std::uint64_t id = concord.RegisterShflLock(lock_, "l", "t");
  ContainmentRegistry& registry = ContainmentRegistry::Global();

  registry.ReportFault(id, ContainmentFault::kFairnessViolation, "stock lock");
  EXPECT_EQ(registry.HealthOf(id), PolicyHealth::kActive);
  EXPECT_FALSE(registry.StatusOf(id).has_value());
  EXPECT_TRUE(
      HasEvent(ContainmentFault::kFairnessViolation, ContainmentAction::kNone));
}

TEST_F(ContainmentTest, ManualDetachClearsContainmentState) {
  const std::uint64_t id = RegisterWithPolicy();
  ContainmentRegistry& registry = ContainmentRegistry::Global();
  registry.ReportFault(id, ContainmentFault::kBudgetOverrun, "x");
  ASSERT_EQ(registry.HealthOf(id), PolicyHealth::kSuspect);

  ASSERT_TRUE(Concord::Global().Detach(id).ok());
  EXPECT_FALSE(registry.StatusOf(id).has_value());
  EXPECT_EQ(registry.HealthOf(id), PolicyHealth::kActive);
}

TEST_F(ContainmentTest, ManualAttachSupersedesQuarantine) {
  ScopedFakeClock fake(1'000'000);
  const std::uint64_t id = RegisterWithPolicy();
  ContainmentRegistry& registry = ContainmentRegistry::Global();
  ContainmentConfig config;
  config.quarantine_threshold = 1;
  registry.SetConfig(config);

  registry.ReportFault(id, ContainmentFault::kBudgetOverrun, "x");
  ASSERT_EQ(registry.HealthOf(id), PolicyHealth::kQuarantined);

  // The controller re-attaches a (fixed) policy by hand: state resets.
  auto policy = MakePriorityBoostPolicy();
  ASSERT_TRUE(policy.ok());
  ASSERT_TRUE(Concord::Global().Attach(id, std::move(policy->spec)).ok());
  EXPECT_EQ(registry.HealthOf(id), PolicyHealth::kActive);
  EXPECT_EQ(registry.StatusOf(id)->quarantine_count, 0u);
  EXPECT_TRUE(HasPolicy(id));
}

#if CONCORD_HOOK_BUDGETS

void SlowReleaseTap(void*, std::uint64_t) { BurnNs(100'000); }

TEST_F(ContainmentTest, BudgetOverrunsTripAndQuarantine) {
  Concord& concord = Concord::Global();
  const std::uint64_t id = concord.RegisterShflLock(lock_, "l", "t");
  ASSERT_TRUE(concord.EnableProfiling(id).ok());
  ContainmentRegistry& registry = ContainmentRegistry::Global();
  ContainmentConfig config;
  config.quarantine_threshold = 1;
  config.auto_reattach = false;
  registry.SetConfig(config);

  ShflHooks hooks;
  hooks.lock_release = SlowReleaseTap;  // ~100us per release
  hooks.hook_budget_ns = 10'000;        // budget: 10us
  hooks.hook_budget_trip = 3;
  ASSERT_TRUE(concord.AttachNative(id, hooks, "slow-release").ok());

  for (int i = 0; i < 8; ++i) {
    lock_.Lock();
    lock_.Unlock();
  }
  const HookBudgetState* budget = concord.BudgetState(id);
  ASSERT_NE(budget, nullptr);
  EXPECT_GE(budget->overruns.load(), 3u);
  EXPECT_GE(budget->max_ns.load(), 100'000u);
  EXPECT_GE(
      budget->calls[static_cast<int>(HookKind::kLockRelease)].load(), 8u);

  const auto fresh = registry.Poll();
  EXPECT_EQ(registry.HealthOf(id), PolicyHealth::kQuarantined);
  ASSERT_FALSE(fresh.empty());
  EXPECT_EQ(fresh[0].fault, ContainmentFault::kBudgetOverrun);
  EXPECT_EQ(fresh[0].policy_name, "slow-release");

  const ShardedLockProfileStats* stats = concord.Stats(id);
  ASSERT_NE(stats, nullptr);
  EXPECT_GE(stats->BudgetOverruns(), 3u);
  EXPECT_EQ(stats->Quarantines(), 1u);

  // With the hostile tap quarantined the lock is back to stock + profiling.
  lock_.Lock();
  lock_.Unlock();
}

TEST_F(ContainmentTest, FastPolicyWithinBudgetStaysActive) {
  Concord& concord = Concord::Global();
  const std::uint64_t id = concord.RegisterShflLock(lock_, "l", "t");

  ShflHooks hooks;
  hooks.lock_release = [](void*, std::uint64_t) {};
  hooks.hook_budget_ns = 10'000'000;  // 10ms: generous
  ASSERT_TRUE(concord.AttachNative(id, hooks, "fast").ok());

  for (int i = 0; i < 100; ++i) {
    lock_.Lock();
    lock_.Unlock();
  }
  ContainmentRegistry::Global().Poll();
  EXPECT_EQ(ContainmentRegistry::Global().HealthOf(id), PolicyHealth::kActive);
  const HookBudgetState* budget = concord.BudgetState(id);
  ASSERT_NE(budget, nullptr);
  EXPECT_EQ(budget->overruns.load(), 0u);
  EXPECT_EQ(budget->tripped.load(), 0u);
}

#if CONCORD_FAULT_INJECTION

TEST_F(ContainmentTest, InjectedDispatchFaultQuarantines) {
  Concord& concord = Concord::Global();
  const std::uint64_t id = concord.RegisterShflLock(lock_, "l", "t");
  ContainmentRegistry& registry = ContainmentRegistry::Global();
  ContainmentConfig config;
  config.quarantine_threshold = 1;
  config.auto_reattach = false;
  registry.SetConfig(config);

  // The BPF profiler policy's taps hit map helpers on every lock op; an
  // always-armed map_lookup fault makes each dispatch observe a fault.
  auto policy = MakeBpfProfilerPolicy();
  ASSERT_TRUE(policy.ok());
  ASSERT_TRUE(concord.Attach(id, std::move(policy->spec)).ok());

  FaultRegistry::Global().Arm("bpf.map_lookup", {});
  lock_.Lock();
  lock_.Unlock();
  FaultRegistry::Global().DisarmAll();

  const HookBudgetState* budget = concord.BudgetState(id);
  ASSERT_NE(budget, nullptr);
  ASSERT_GE(budget->dispatch_faults.load(), 1u);

  const auto fresh = registry.Poll();
  EXPECT_EQ(registry.HealthOf(id), PolicyHealth::kQuarantined);
  ASSERT_FALSE(fresh.empty());
  EXPECT_EQ(fresh[0].fault, ContainmentFault::kDispatchFault);
}

TEST_F(ContainmentTest, JitCompileFaultRecordsFallbackEvent) {
  if (!Jit::Enabled()) {
    GTEST_SKIP() << "JIT disabled in this configuration";
  }
  Concord& concord = Concord::Global();
  const std::uint64_t id = concord.RegisterShflLock(lock_, "l", "t");

  FaultRegistry::Global().Arm("jit.compile", {});
  auto policy = MakeNumaGroupingPolicy();
  ASSERT_TRUE(policy.ok());
  ASSERT_TRUE(concord.Attach(id, std::move(policy->spec)).ok());
  FaultRegistry::Global().DisarmAll();

  // The policy attached fine (interpreter tier); containment recorded the
  // fallback as an informational event, health untouched.
  EXPECT_EQ(ContainmentRegistry::Global().HealthOf(id), PolicyHealth::kActive);
  EXPECT_TRUE(HasEvent(ContainmentFault::kJitCompileFallback,
                       ContainmentAction::kNone));

  // And the policy still works: exercise the lock.
  lock_.Lock();
  lock_.Unlock();
}

#endif  // CONCORD_FAULT_INJECTION
#endif  // CONCORD_HOOK_BUDGETS

TEST_F(ContainmentTest, WorkerReattachesAfterRealBackoff) {
  const std::uint64_t id = RegisterWithPolicy();
  ContainmentRegistry& registry = ContainmentRegistry::Global();
  ContainmentConfig config;
  config.quarantine_threshold = 1;
  config.initial_backoff_ns = 5'000'000;  // 5ms real time
  config.probation_success_ns = 5'000'000;
  registry.SetConfig(config);

  registry.ReportFault(id, ContainmentFault::kFairnessViolation, "x");
  ASSERT_EQ(registry.HealthOf(id), PolicyHealth::kQuarantined);

  registry.StartWorker(1);
  const std::uint64_t deadline = MonotonicNowNs() + 10'000'000'000ull;
  while (registry.HealthOf(id) == PolicyHealth::kQuarantined &&
         MonotonicNowNs() < deadline) {
    timespec ts{0, 1'000'000};
    nanosleep(&ts, nullptr);
  }
  registry.StopWorker();
  const PolicyHealth health = registry.HealthOf(id);
  EXPECT_TRUE(health == PolicyHealth::kProbation ||
              health == PolicyHealth::kActive);
  EXPECT_TRUE(HasPolicy(id));
}

}  // namespace
}  // namespace concord
