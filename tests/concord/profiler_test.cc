#include "src/concord/profiler.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "src/base/time.h"
#include "src/concord/concord.h"
#include "src/concord/policies.h"
#include "src/sync/bravo.h"
#include "src/sync/shfllock.h"

namespace concord {
namespace {

// Locks live in the fixture so they outlive TearDown's unregistration —
// Concord requires Unregister before a registered lock is destroyed.
class ProfilerTest : public ::testing::Test {
 protected:
  void TearDown() override { Concord::Global().ResetForTest(); }

  ShflLock lock_;
  ShflLock lock2_;
  ShflLock lock3_;
  BravoLock<NeutralRwLock> rw_;
};

TEST_F(ProfilerTest, CountsUncontendedAcquisitions) {
  ShflLock& lock = lock_;
  Concord& concord = Concord::Global();
  const std::uint64_t id = concord.RegisterShflLock(lock, "l", "test");
  ASSERT_TRUE(concord.EnableProfiling(id).ok());

  for (int i = 0; i < 50; ++i) {
    ShflGuard guard(lock);
    BurnNs(10'000);
  }

  const LockProfileStats* stats = concord.Stats(id);
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->acquisitions.load(), 50u);
  EXPECT_EQ(stats->releases.load(), 50u);
  EXPECT_EQ(stats->contentions.load(), 0u);
  // Hold times around 10us must be visible in the histogram.
  EXPECT_EQ(stats->hold_ns.TotalCount(), 50u);
  EXPECT_GE(stats->hold_ns.Percentile(50), 4'000u);
}

TEST_F(ProfilerTest, RecordsContentionAndWaitTimes) {
  ShflLock& lock = lock_;
  Concord& concord = Concord::Global();
  const std::uint64_t id = concord.RegisterShflLock(lock, "l", "test");
  ASSERT_TRUE(concord.EnableProfiling(id).ok());

  std::atomic<bool> waiter_contended{false};
  lock.Lock();
  std::thread waiter([&] {
    lock.Lock();
    lock.Unlock();
  });
  // Wait until the profiler has seen the contention event.
  const LockProfileStats* stats = concord.Stats(id);
  const std::uint64_t deadline = MonotonicNowNs() + 10'000'000'000ull;
  while (stats->contentions.load() == 0 && MonotonicNowNs() < deadline) {
    timespec ts{0, 1'000'000};
    nanosleep(&ts, nullptr);
  }
  waiter_contended.store(stats->contentions.load() > 0);
  lock.Unlock();
  waiter.join();

  EXPECT_TRUE(waiter_contended.load());
  EXPECT_GE(stats->contentions.load(), 1u);
  EXPECT_GE(stats->wait_ns.TotalCount(), 1u);
  EXPECT_GT(stats->wait_ns.Max(), 0u);
}

TEST_F(ProfilerTest, PerLockGranularity) {
  // The lockstat comparison: profile ONE lock out of three.
  ShflLock& hot = lock_;
  ShflLock& cold_a = lock2_;
  ShflLock& cold_b = lock3_;
  Concord& concord = Concord::Global();
  const std::uint64_t hot_id = concord.RegisterShflLock(hot, "hot", "g");
  const std::uint64_t cold_a_id = concord.RegisterShflLock(cold_a, "cold_a", "g");
  concord.RegisterShflLock(cold_b, "cold_b", "g");

  ASSERT_TRUE(concord.EnableProfiling(hot_id).ok());
  for (int i = 0; i < 20; ++i) {
    ShflGuard g1(hot);
  }
  for (int i = 0; i < 20; ++i) {
    ShflGuard g2(cold_a);
  }
  EXPECT_EQ(concord.Stats(hot_id)->acquisitions.load(), 20u);
  EXPECT_EQ(concord.Stats(cold_a_id), nullptr);  // never enabled
  // Unprofiled locks carry no hook table at all (zero overhead).
  EXPECT_EQ(cold_a.CurrentHooks(), nullptr);
}

TEST_F(ProfilerTest, DisableStopsCounting) {
  ShflLock& lock = lock_;
  Concord& concord = Concord::Global();
  const std::uint64_t id = concord.RegisterShflLock(lock, "l", "test");
  ASSERT_TRUE(concord.EnableProfiling(id).ok());
  {
    ShflGuard guard(lock);
  }
  ASSERT_TRUE(concord.DisableProfiling(id).ok());
  const std::uint64_t before = concord.Stats(id)->acquisitions.load();
  {
    ShflGuard guard(lock);
  }
  EXPECT_EQ(concord.Stats(id)->acquisitions.load(), before);
}

TEST_F(ProfilerTest, ProfilesRwLocks) {
  BravoLock<NeutralRwLock>& lock = rw_;
  Concord& concord = Concord::Global();
  const std::uint64_t id = concord.RegisterRwLock(lock, "rw", "test");
  ASSERT_TRUE(concord.EnableProfiling(id).ok());

  for (int i = 0; i < 10; ++i) {
    lock.ReadLock();
    lock.ReadUnlock();
  }
  lock.WriteLock();
  lock.WriteUnlock();

  const LockProfileStats* stats = concord.Stats(id);
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->acquisitions.load(), 11u);
  EXPECT_EQ(stats->releases.load(), 11u);
}

TEST_F(ProfilerTest, ReportListsProfiledLocksBySelector) {
  ShflLock& a = lock_;
  ShflLock& b = lock2_;
  Concord& concord = Concord::Global();
  concord.RegisterShflLock(a, "alpha", "g1");
  concord.RegisterShflLock(b, "beta", "g2");
  ASSERT_TRUE(concord.EnableProfilingBySelector("*").ok());
  {
    ShflGuard guard(a);
  }
  const std::string all = concord.ProfileReport("*");
  EXPECT_NE(all.find("alpha"), std::string::npos);
  EXPECT_NE(all.find("beta"), std::string::npos);
  const std::string only_g1 = concord.ProfileReport("class:g1");
  EXPECT_NE(only_g1.find("alpha"), std::string::npos);
  EXPECT_EQ(only_g1.find("beta"), std::string::npos);
  EXPECT_NE(only_g1.find("acq=1"), std::string::npos);
}

TEST_F(ProfilerTest, ProfilingComposesWithPolicy) {
  // Profiling and a shuffling policy share the hook table.
  ShflLock& lock = lock_;
  Concord& concord = Concord::Global();
  const std::uint64_t id = concord.RegisterShflLock(lock, "l", "test");
  auto numa = MakeNumaGroupingPolicy();
  ASSERT_TRUE(numa.ok());
  ASSERT_TRUE(concord.Attach(id, std::move(numa->spec)).ok());
  ASSERT_TRUE(concord.EnableProfiling(id).ok());
  for (int i = 0; i < 25; ++i) {
    ShflGuard guard(lock);
  }
  EXPECT_EQ(concord.Stats(id)->acquisitions.load(), 25u);
  // Detaching the policy keeps profiling alive.
  ASSERT_TRUE(concord.Detach(id).ok());
  {
    ShflGuard guard(lock);
  }
  EXPECT_EQ(concord.Stats(id)->acquisitions.load(), 26u);
}

}  // namespace
}  // namespace concord
