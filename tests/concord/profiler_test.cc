#include "src/concord/profiler.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "src/base/time.h"
#include "src/concord/agent/shm_segment.h"
#include "src/concord/concord.h"
#include "src/concord/policies.h"
#include "src/sync/bravo.h"
#include "src/sync/shfllock.h"

namespace concord {
namespace {

// Locks live in the fixture so they outlive TearDown's unregistration —
// Concord requires Unregister before a registered lock is destroyed.
class ProfilerTest : public ::testing::Test {
 protected:
  void TearDown() override { Concord::Global().ResetForTest(); }

  ShflLock lock_;
  ShflLock lock2_;
  ShflLock lock3_;
  BravoLock<NeutralRwLock> rw_;
};

TEST_F(ProfilerTest, CountsUncontendedAcquisitions) {
  ShflLock& lock = lock_;
  Concord& concord = Concord::Global();
  const std::uint64_t id = concord.RegisterShflLock(lock, "l", "test");
  ASSERT_TRUE(concord.EnableProfiling(id).ok());

  for (int i = 0; i < 50; ++i) {
    ShflGuard guard(lock);
    BurnNs(10'000);
  }

  const ShardedLockProfileStats* stats = concord.Stats(id);
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->Acquisitions(), 50u);
  EXPECT_EQ(stats->Releases(), 50u);
  EXPECT_EQ(stats->Contentions(), 0u);
  // Hold times around 10us must be visible in the histogram.
  EXPECT_EQ(stats->HoldNs().TotalCount(), 50u);
  EXPECT_GE(stats->HoldNs().Percentile(50), 4'000u);
}

TEST_F(ProfilerTest, RecordsContentionAndWaitTimes) {
  ShflLock& lock = lock_;
  Concord& concord = Concord::Global();
  const std::uint64_t id = concord.RegisterShflLock(lock, "l", "test");
  ASSERT_TRUE(concord.EnableProfiling(id).ok());

  std::atomic<bool> waiter_contended{false};
  lock.Lock();
  std::thread waiter([&] {
    lock.Lock();
    lock.Unlock();
  });
  // Wait until the profiler has seen the contention event. The Stats pointer
  // is grabbed once and polled live while the worker records into it.
  const ShardedLockProfileStats* stats = concord.Stats(id);
  const std::uint64_t deadline = MonotonicNowNs() + 10'000'000'000ull;
  while (stats->Contentions() == 0 && MonotonicNowNs() < deadline) {
    timespec ts{0, 1'000'000};
    nanosleep(&ts, nullptr);
  }
  waiter_contended.store(stats->Contentions() > 0);
  lock.Unlock();
  waiter.join();

  EXPECT_TRUE(waiter_contended.load());
  EXPECT_GE(stats->Contentions(), 1u);
  EXPECT_GE(stats->WaitNs().TotalCount(), 1u);
  EXPECT_GT(stats->WaitNs().Max(), 0u);
}

TEST_F(ProfilerTest, PerLockGranularity) {
  // The lockstat comparison: profile ONE lock out of three.
  ShflLock& hot = lock_;
  ShflLock& cold_a = lock2_;
  ShflLock& cold_b = lock3_;
  Concord& concord = Concord::Global();
  const std::uint64_t hot_id = concord.RegisterShflLock(hot, "hot", "g");
  const std::uint64_t cold_a_id = concord.RegisterShflLock(cold_a, "cold_a", "g");
  concord.RegisterShflLock(cold_b, "cold_b", "g");

  ASSERT_TRUE(concord.EnableProfiling(hot_id).ok());
  for (int i = 0; i < 20; ++i) {
    ShflGuard g1(hot);
  }
  for (int i = 0; i < 20; ++i) {
    ShflGuard g2(cold_a);
  }
  EXPECT_EQ(concord.Stats(hot_id)->Acquisitions(), 20u);
  EXPECT_EQ(concord.Stats(cold_a_id), nullptr);  // never enabled
  // Unprofiled locks carry no hook table at all (zero overhead).
  EXPECT_EQ(cold_a.CurrentHooks(), nullptr);
}

TEST_F(ProfilerTest, DisableStopsCounting) {
  ShflLock& lock = lock_;
  Concord& concord = Concord::Global();
  const std::uint64_t id = concord.RegisterShflLock(lock, "l", "test");
  ASSERT_TRUE(concord.EnableProfiling(id).ok());
  {
    ShflGuard guard(lock);
  }
  ASSERT_TRUE(concord.DisableProfiling(id).ok());
  const std::uint64_t before = concord.Stats(id)->Acquisitions();
  {
    ShflGuard guard(lock);
  }
  EXPECT_EQ(concord.Stats(id)->Acquisitions(), before);
}

TEST_F(ProfilerTest, ProfilesRwLocks) {
  BravoLock<NeutralRwLock>& lock = rw_;
  Concord& concord = Concord::Global();
  const std::uint64_t id = concord.RegisterRwLock(lock, "rw", "test");
  ASSERT_TRUE(concord.EnableProfiling(id).ok());

  for (int i = 0; i < 10; ++i) {
    lock.ReadLock();
    lock.ReadUnlock();
  }
  lock.WriteLock();
  lock.WriteUnlock();

  const ShardedLockProfileStats* stats = concord.Stats(id);
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->Acquisitions(), 11u);
  EXPECT_EQ(stats->Releases(), 11u);
}

TEST_F(ProfilerTest, ReportListsProfiledLocksBySelector) {
  ShflLock& a = lock_;
  ShflLock& b = lock2_;
  Concord& concord = Concord::Global();
  concord.RegisterShflLock(a, "alpha", "g1");
  concord.RegisterShflLock(b, "beta", "g2");
  ASSERT_TRUE(concord.EnableProfilingBySelector("*").ok());
  {
    ShflGuard guard(a);
  }
  const std::string all = concord.ProfileReport("*");
  EXPECT_NE(all.find("alpha"), std::string::npos);
  EXPECT_NE(all.find("beta"), std::string::npos);
  const std::string only_g1 = concord.ProfileReport("class:g1");
  EXPECT_NE(only_g1.find("alpha"), std::string::npos);
  EXPECT_EQ(only_g1.find("beta"), std::string::npos);
  EXPECT_NE(only_g1.find("acq=1"), std::string::npos);
}

TEST_F(ProfilerTest, ProfilingComposesWithPolicy) {
  // Profiling and a shuffling policy share the hook table.
  ShflLock& lock = lock_;
  Concord& concord = Concord::Global();
  const std::uint64_t id = concord.RegisterShflLock(lock, "l", "test");
  auto numa = MakeNumaGroupingPolicy();
  ASSERT_TRUE(numa.ok());
  ASSERT_TRUE(concord.Attach(id, std::move(numa->spec)).ok());
  ASSERT_TRUE(concord.EnableProfiling(id).ok());
  for (int i = 0; i < 25; ++i) {
    ShflGuard guard(lock);
  }
  EXPECT_EQ(concord.Stats(id)->Acquisitions(), 25u);
  // Detaching the policy keeps profiling alive.
  ASSERT_TRUE(concord.Detach(id).ok());
  {
    ShflGuard guard(lock);
  }
  EXPECT_EQ(concord.Stats(id)->Acquisitions(), 26u);
}

// --- tap-level regression tests ----------------------------------------------
//
// These drive ProfilerTaps directly (the unit under the trampolines) with a
// FakeClock, so wait/hold samples are exact and the in-flight matching rules
// are pinned down deterministically.

TEST(ProfilerTapsTest, RecursiveSameLockMatchesNewestSlot) {
  ScopedFakeClock fake(1'000);
  ShardedLockProfileStats stats;
  const std::uint64_t id = 7;

  // Outer acquisition at t=1000, granted immediately.
  ProfilerTaps::OnAcquire(stats, id);
  ProfilerTaps::OnAcquired(stats, id);
  fake.clock().AdvanceNs(1'000);  // t=2000
  // Recursive re-acquisition of the SAME lock id, granted at t=2000,
  // released at t=3000 → inner hold exactly 1000ns.
  ProfilerTaps::OnAcquire(stats, id);
  ProfilerTaps::OnAcquired(stats, id);
  fake.clock().AdvanceNs(1'000);  // t=3000
  ProfilerTaps::OnRelease(stats, id);
  fake.clock().AdvanceNs(2'000);  // t=5000
  // Outer release at t=5000 → outer hold exactly 4000ns.
  ProfilerTaps::OnRelease(stats, id);

  // Oldest-first matching (the old bug) pairs the inner acquired/release
  // with the OUTER slot: the outer release then finds a slot that never saw
  // OnAcquired and records nothing — one sample instead of two, and the
  // 4000ns outer hold is lost.
  const Log2Histogram hold = stats.HoldNs();
  EXPECT_EQ(hold.TotalCount(), 2u);
  EXPECT_EQ(hold.Sum(), 5'000u);  // 1000 (inner) + 4000 (outer)
  EXPECT_EQ(hold.Max(), 4'000u);
  EXPECT_EQ(stats.DroppedSamples(), 0u);
}

TEST(ProfilerTapsTest, DeepNestingCountsDroppedSamples) {
  ScopedFakeClock fake(1'000);
  ShardedLockProfileStats stats;
  const std::uint64_t id = 9;
  constexpr int kDepth = 20;  // kMaxInFlight is 16: 4 drops

  for (int i = 0; i < kDepth; ++i) {
    ProfilerTaps::OnAcquire(stats, id);
    ProfilerTaps::OnAcquired(stats, id);
    fake.clock().AdvanceNs(100);
  }
  for (int i = 0; i < kDepth; ++i) {
    ProfilerTaps::OnRelease(stats, id);
  }

  EXPECT_EQ(stats.Acquisitions(), static_cast<std::uint64_t>(kDepth));
  EXPECT_EQ(stats.Releases(), static_cast<std::uint64_t>(kDepth));
  EXPECT_EQ(stats.DroppedSamples(), 4u);
  // Only the 16 tracked acquisitions produced hold samples.
  EXPECT_EQ(stats.HoldNs().TotalCount(), 16u);
  // The drop count is surfaced, not silent.
  EXPECT_NE(stats.Summary().find("dropped_samples=4"), std::string::npos);
}

TEST(ProfilerTapsTest, ReleaseWithoutSlotIsCountedButNotTimed) {
  // Profiling attached mid-critical-section: the release tap fires with no
  // matching in-flight slot. The release must count; no bogus hold sample.
  ScopedFakeClock fake(1'000);
  ShardedLockProfileStats stats;
  ProfilerTaps::OnRelease(stats, 11);
  EXPECT_EQ(stats.Releases(), 1u);
  EXPECT_EQ(stats.HoldNs().TotalCount(), 0u);
  EXPECT_EQ(stats.DroppedSamples(), 0u);
}

TEST(ProfilerTapsTest, ContendedWaitIsExactUnderFakeClock) {
  ScopedFakeClock fake(10'000);
  ShardedLockProfileStats stats;
  const std::uint64_t id = 3;

  ProfilerTaps::OnAcquire(stats, id);
  ProfilerTaps::OnContended(stats, id);
  fake.clock().AdvanceNs(6'000);  // waited 6000ns for the grant
  ProfilerTaps::OnAcquired(stats, id);
  fake.clock().AdvanceNs(500);
  ProfilerTaps::OnRelease(stats, id);

  EXPECT_EQ(stats.Contentions(), 1u);
  const Log2Histogram wait = stats.WaitNs();
  EXPECT_EQ(wait.TotalCount(), 1u);
  EXPECT_EQ(wait.Sum(), 6'000u);
  EXPECT_EQ(stats.HoldNs().Sum(), 500u);
}

TEST(ShardedStatsTest, CountersAggregateAcrossShards) {
  ShardedLockProfileStats stats;
  // Write to two distinct shards directly (ControlShard is shard 0; pick a
  // second one through MergeFrom of a standalone block).
  stats.ControlShard().acquisitions.fetch_add(3);
  stats.ControlShard().quarantines.fetch_add(1);
  LockProfileStats extra;
  extra.acquisitions.fetch_add(4);
  extra.wait_ns.Record(1'000);
  stats.ControlShard().MergeFrom(extra);

  EXPECT_EQ(stats.Acquisitions(), 7u);
  EXPECT_EQ(stats.Quarantines(), 1u);
  EXPECT_EQ(stats.WaitNs().TotalCount(), 1u);

  LockProfileStats merged;
  stats.MergeInto(merged);
  EXPECT_EQ(merged.acquisitions.load(), 7u);
  EXPECT_EQ(merged.wait_ns.TotalCount(), 1u);

  stats.Reset();
  EXPECT_EQ(stats.Acquisitions(), 0u);
  EXPECT_EQ(stats.WaitNs().TotalCount(), 0u);
}

TEST(ShardedStatsTest, ConcurrentWritersLandOnTheirOwnShards) {
  ShardedLockProfileStats stats;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10'000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&stats] {
      for (int i = 0; i < kPerThread; ++i) {
        stats.Shard().acquisitions.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  EXPECT_EQ(stats.Acquisitions(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(SnapshotTest, SnapshotMergesShardsAndStampsClock) {
  ScopedFakeClock clock(/*start_ns=*/1'000);
  ShardedLockProfileStats stats;
  stats.ControlShard().acquisitions.fetch_add(10);
  stats.ControlShard().contentions.fetch_add(4);
  stats.ControlShard().socket_acquisitions[1].fetch_add(10);
  stats.ControlShard().cross_socket_handoffs.fetch_add(2);
  stats.ControlShard().wait_ns.Record(5'000);

  const LockProfileSnapshot snapshot = stats.Snapshot();
  EXPECT_EQ(snapshot.taken_at_ns, 1'000u);
  EXPECT_EQ(snapshot.window_start_ns, 0u);  // cumulative, no window
  EXPECT_EQ(snapshot.acquisitions, 10u);
  EXPECT_EQ(snapshot.contentions, 4u);
  EXPECT_EQ(snapshot.socket_acquisitions[1], 10u);
  EXPECT_EQ(snapshot.cross_socket_handoffs, 2u);
  EXPECT_EQ(snapshot.wait_ns.TotalCount(), 1u);
  EXPECT_DOUBLE_EQ(snapshot.ContentionRate(), 0.4);
  EXPECT_DOUBLE_EQ(snapshot.AcquisitionsPerSec(), 0.0);  // cumulative
}

TEST(SnapshotTest, DeltaSinceIsolatesTheWindow) {
  ScopedFakeClock clock(/*start_ns=*/1'000);
  ShardedLockProfileStats stats;
  stats.ControlShard().acquisitions.fetch_add(100);
  stats.ControlShard().contentions.fetch_add(10);
  stats.ControlShard().wait_ns.Record(1'000);
  const LockProfileSnapshot before = stats.Snapshot();

  clock.clock().AdvanceMs(500);
  stats.ControlShard().acquisitions.fetch_add(50);
  stats.ControlShard().contentions.fetch_add(40);
  stats.ControlShard().cross_socket_handoffs.fetch_add(8);
  stats.ControlShard().wait_ns.Record(64'000);
  const LockProfileSnapshot after = stats.Snapshot();

  const LockProfileSnapshot window = after.DeltaSince(before);
  // Window boundaries come from the two snapshots' timestamps.
  EXPECT_EQ(window.window_start_ns, before.taken_at_ns);
  EXPECT_EQ(window.taken_at_ns, after.taken_at_ns);
  // Only the second burst remains.
  EXPECT_EQ(window.acquisitions, 50u);
  EXPECT_EQ(window.contentions, 40u);
  EXPECT_EQ(window.cross_socket_handoffs, 8u);
  EXPECT_EQ(window.wait_ns.TotalCount(), 1u);
  EXPECT_DOUBLE_EQ(window.ContentionRate(), 0.8);
  // 50 acquisitions over the 500ms window.
  EXPECT_DOUBLE_EQ(window.AcquisitionsPerSec(), 100.0);
}

TEST(SnapshotTest, DeltaClampsWhenCountersReset) {
  ShardedLockProfileStats stats;
  stats.ControlShard().acquisitions.fetch_add(100);
  const LockProfileSnapshot before = stats.Snapshot();
  stats.Reset();
  stats.ControlShard().acquisitions.fetch_add(5);
  const LockProfileSnapshot after = stats.Snapshot();
  // A reset between snapshots must not produce underflowed garbage.
  EXPECT_EQ(after.DeltaSince(before).acquisitions, 0u);
}

TEST(SnapshotTest, ActiveSocketsIgnoresTraceTraffic) {
  ShardedLockProfileStats stats;
  stats.ControlShard().acquisitions.fetch_add(100);
  stats.ControlShard().socket_acquisitions[0].fetch_add(60);
  stats.ControlShard().socket_acquisitions[1].fetch_add(35);
  stats.ControlShard().socket_acquisitions[2].fetch_add(5);  // below 10%
  const LockProfileSnapshot snapshot = stats.Snapshot();
  EXPECT_EQ(snapshot.ActiveSockets(), 2u);
  EXPECT_EQ(snapshot.ActiveSockets(/*min_share=*/0.01), 3u);
}

// Regression for the cross-shard field-skew bug: Snapshot() used to read
// each field with an independent pass over the shards, so a snapshot taken
// while writers were mid-operation could observe contentions > acquisitions
// (a contention counted on shard A after the acquisitions pass had moved
// on), which inflated ContentionRate() past 1.0 and poisoned regime
// classification. Snapshot() now merges once and clamps the cross-field
// invariants; this test hammers it from concurrent writers (and under TSan
// doubles as the race-freedom proof), then round-trips the same snapshots
// through the shared-memory export to cover the multi-process path.
TEST(SnapshotTest, ConcurrentSnapshotsHoldCrossFieldInvariants) {
  ShardedLockProfileStats stats;
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&stats, &stop] {
      while (!stop.load(std::memory_order_relaxed)) {
        LockProfileStats& shard = stats.Shard();
        // Every op is an acquisition+contention+release triple, recorded in
        // the order the real taps record them — so any skew the snapshot
        // pass can introduce is the bug's exact shape.
        shard.acquisitions.fetch_add(1, std::memory_order_relaxed);
        shard.contentions.fetch_add(1, std::memory_order_relaxed);
        shard.wait_ns.Record(1'000);
        shard.releases.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  const std::string shm_path = ::testing::TempDir() + "profiler_skew_" +
                               std::to_string(getpid()) + ".shm";
  std::remove(shm_path.c_str());
  auto writer = ShmSegmentWriter::Create(shm_path, /*capacity=*/2);
  ASSERT_TRUE(writer.ok());
  auto reader = ShmSegmentReader::Map(shm_path);
  ASSERT_TRUE(reader.ok());

  LockProfileSnapshot prev;
  bool have_prev = false;
  for (int i = 0; i < 2'000; ++i) {
    const LockProfileSnapshot snap = stats.Snapshot();
    ASSERT_LE(snap.contentions, snap.acquisitions);
    ASSERT_LE(snap.releases, snap.acquisitions);
    ASSERT_LE(snap.ContentionRate(), 1.0);
    if (have_prev) {
      // Each counter is monotonic across snapshots, and a delta window
      // attributes in-flight ops to exactly one side — never negative.
      ASSERT_GE(snap.acquisitions, prev.acquisitions);
      ASSERT_GE(snap.contentions, prev.contentions);
      ASSERT_GE(snap.releases, prev.releases);
      // The documented residual: an in-flight op may land its acquisition
      // in one window and its contention in the next, so the *window*
      // cross-field invariant is only "never negative, never double
      // counted" — not contentions <= acquisitions.
      const LockProfileSnapshot delta = snap.DeltaSince(prev);
      ASSERT_EQ(delta.acquisitions, snap.acquisitions - prev.acquisitions);
      ASSERT_EQ(delta.contentions, snap.contentions - prev.contentions);
    }
    prev = snap;
    have_prev = true;

    // Every 64th snapshot rides through the shm segment, the same way the
    // worker exporter publishes it, and must come back invariant-clean.
    if (i % 64 == 0) {
      ShmLockSample sample;
      sample.lock_id = 1;
      sample.name = "skew";
      sample.snapshot = snap;
      ASSERT_TRUE(
          (*writer)->Publish({sample}, static_cast<std::uint64_t>(i + 1)).ok());
      auto read_back = (*reader)->Read();
      ASSERT_TRUE(read_back.ok()) << read_back.status().ToString();
      ASSERT_EQ(read_back->locks.size(), 1u);
      const LockProfileSnapshot& exported = read_back->locks[0].snapshot;
      ASSERT_EQ(exported.acquisitions, snap.acquisitions);
      ASSERT_EQ(exported.contentions, snap.contentions);
      ASSERT_LE(exported.contentions, exported.acquisitions);
    }
  }

  stop.store(true);
  for (std::thread& writer_thread : writers) {
    writer_thread.join();
  }
  std::remove(shm_path.c_str());
}

}  // namespace
}  // namespace concord
