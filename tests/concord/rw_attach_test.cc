// Readers-writer lock attachment paths: native rw hooks, BPF rw_mode on
// both BravoLock instantiations, and registry edge cases.

#include <gtest/gtest.h>

#include <atomic>

#include "src/concord/concord.h"
#include "src/concord/policies.h"
#include "src/sync/bravo.h"

namespace concord {
namespace {

class RwAttachTest : public ::testing::Test {
 protected:
  void TearDown() override { Concord::Global().ResetForTest(); }

  BravoLock<NeutralRwLock> neutral_bravo_;
  BravoLock<PerSocketRwLock> percpu_bravo_;
  ShflLock shfl_;
};

TEST_F(RwAttachTest, NativeRwModeHookDrivesTheLock) {
  Concord& concord = Concord::Global();
  const std::uint64_t id = concord.RegisterRwLock(neutral_bravo_, "rw", "t");

  static std::atomic<std::uint32_t> mode{
      static_cast<std::uint32_t>(RwMode::kNeutral)};
  RwHooks native;
  native.rw_mode = [](void*) { return mode.load(); };
  ASSERT_TRUE(concord.AttachNativeRw(id, native).ok());

  neutral_bravo_.ReadLock();
  neutral_bravo_.ReadUnlock();
  EXPECT_EQ(neutral_bravo_.fast_reads(), 0u);

  mode.store(static_cast<std::uint32_t>(RwMode::kReaderBias));
  for (int i = 0; i < 5; ++i) {
    neutral_bravo_.ReadLock();
    neutral_bravo_.ReadUnlock();
  }
  EXPECT_GT(neutral_bravo_.fast_reads(), 0u);
  ASSERT_TRUE(concord.Detach(id).ok());
}

TEST_F(RwAttachTest, NativeRwAttachRejectedOnShflLock) {
  Concord& concord = Concord::Global();
  const std::uint64_t id = concord.RegisterShflLock(shfl_, "s", "t");
  RwHooks native;
  EXPECT_EQ(concord.AttachNativeRw(id, native).code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(RwAttachTest, NativeShflAttachRejectedOnRwLock) {
  Concord& concord = Concord::Global();
  const std::uint64_t id = concord.RegisterRwLock(neutral_bravo_, "rw", "t");
  ShflHooks native;
  EXPECT_EQ(concord.AttachNative(id, native).code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(RwAttachTest, BpfRwSwitchWorksOnPerSocketBravo) {
  Concord& concord = Concord::Global();
  const std::uint64_t id = concord.RegisterRwLock(percpu_bravo_, "rw2", "t");
  auto policy = MakeRwSwitchPolicy(RwMode::kReaderBias);
  ASSERT_TRUE(policy.ok());
  ASSERT_TRUE(concord.Attach(id, std::move(policy->spec)).ok());
  for (int i = 0; i < 10; ++i) {
    percpu_bravo_.ReadLock();
    percpu_bravo_.ReadUnlock();
  }
  EXPECT_GT(percpu_bravo_.fast_reads(), 0u);
  percpu_bravo_.WriteLock();
  percpu_bravo_.WriteUnlock();
  ASSERT_TRUE(concord.Detach(id).ok());
}

TEST_F(RwAttachTest, ReattachReplacesNativeWithBpf) {
  Concord& concord = Concord::Global();
  const std::uint64_t id = concord.RegisterRwLock(neutral_bravo_, "rw", "t");

  RwHooks native;
  native.rw_mode = [](void*) {
    return static_cast<std::uint32_t>(RwMode::kReaderBias);
  };
  ASSERT_TRUE(concord.AttachNativeRw(id, native).ok());
  neutral_bravo_.ReadLock();
  neutral_bravo_.ReadUnlock();
  const std::uint64_t fast_with_native = neutral_bravo_.fast_reads();
  EXPECT_GT(fast_with_native, 0u);

  // Replace with a BPF policy pinned to neutral: fast path stops.
  auto policy = MakeRwSwitchPolicy(RwMode::kNeutral);
  ASSERT_TRUE(policy.ok());
  ASSERT_TRUE(concord.Attach(id, std::move(policy->spec)).ok());
  for (int i = 0; i < 5; ++i) {
    neutral_bravo_.ReadLock();
    neutral_bravo_.ReadUnlock();
  }
  EXPECT_EQ(neutral_bravo_.fast_reads(), fast_with_native);
}

TEST_F(RwAttachTest, UnregisterInvalidIdsFail) {
  Concord& concord = Concord::Global();
  EXPECT_EQ(concord.Unregister(0).code(), StatusCode::kNotFound);
  EXPECT_EQ(concord.Unregister(12345).code(), StatusCode::kNotFound);
  EXPECT_EQ(concord.Detach(12345).code(), StatusCode::kNotFound);
  EXPECT_EQ(concord.EnableProfiling(12345).code(), StatusCode::kNotFound);
  EXPECT_EQ(concord.DisableProfiling(12345).code(), StatusCode::kNotFound);
  EXPECT_EQ(concord.Stats(12345), nullptr);
}

}  // namespace
}  // namespace concord
