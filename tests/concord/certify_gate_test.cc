// Attach-gate coverage: PolicySpec::VerifyAll rejects over-budget and racy
// programs with path-carrying diagnostics, and the runtime budget machinery
// honors what certification promised — a program certified at N ns can never
// trip a 2N budget, and a backwards clock step cannot fake an overrun.

#include <gtest/gtest.h>

#include <memory>
#include <utility>

#include "src/base/time.h"
#include "src/bpf/analysis/certify.h"
#include "src/bpf/builder.h"
#include "src/bpf/helpers.h"
#include "src/bpf/maps.h"
#include "src/bpf/verifier.h"
#include "src/concord/hooks.h"
#include "src/concord/policy.h"

namespace concord {
namespace {

constexpr HookKind kHook = HookKind::kLockAcquire;

// ~1000-trip ALU loop against the profiling-hook context; verifier v2 proves
// the bound, lint has no loop rule for profiling hooks, so only the WCET
// gate can reject it.
Program HotLoopProgram() {
  ProgramBuilder b("hot_loop", &DescriptorFor(kHook));
  auto loop = b.NewLabel();
  b.Mov(0, 0).Mov(2, 0).Bind(loop).Add(0, 2).Add(2, 1).JmpIf(kBpfJlt, 2, 1000,
                                                             loop);
  b.Ret();
  auto program = b.Build();
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  return std::move(*program);
}

// load/add/store counter bump through a map-value pointer into `map`.
Program RmwCounterProgram(BpfMap* map) {
  ProgramBuilder b("count_acquires", &DescriptorFor(kHook));
  const std::uint32_t idx = b.DeclareMap(map);
  auto out = b.NewLabel();
  b.StoreImm(kBpfSizeW, 10, -4, 0);
  b.Mov(1, static_cast<std::int32_t>(idx));
  b.MovR(2, 10).Add(2, -4);
  b.CallHelper(kHelperMapLookupElem);
  b.JmpIf(kBpfJeq, 0, 0, out);
  b.Load(kBpfSizeDw, 2, 0, 0).Add(2, 1).Store(kBpfSizeDw, 0, 0, 2);
  b.Bind(out).Return(0);
  auto program = b.Build();
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  return std::move(*program);
}

TEST(CertifyGateTest, OverBudgetProgramRejectedAtVerifyAll) {
  PolicySpec spec;
  spec.name = "overbudget";
  spec.hook_budget_ns = 100;
  ASSERT_TRUE(spec.AddProgram(kHook, HotLoopProgram()).ok());

  Status status = spec.VerifyAll();
  ASSERT_EQ(status.code(), StatusCode::kPermissionDenied) << status.ToString();
  // The diagnostic carries the full path: policy, hook, program, and the
  // dominant loop.
  EXPECT_NE(status.message().find("policy 'overbudget'"), std::string::npos)
      << status.message();
  EXPECT_NE(status.message().find("lock_acquire"), std::string::npos)
      << status.message();
  EXPECT_NE(status.message().find("'hot_loop'"), std::string::npos)
      << status.message();
  EXPECT_NE(status.message().find("exceeds hook budget"), std::string::npos)
      << status.message();
  EXPECT_NE(status.message().find("loop: header"), std::string::npos)
      << status.message();
}

TEST(CertifyGateTest, SameProgramCertifiesUnderRoomyBudget) {
  PolicySpec spec;
  spec.name = "roomy";
  spec.hook_budget_ns = 10'000'000;  // 10 ms: far above the loop's bound
  ASSERT_TRUE(spec.AddProgram(kHook, HotLoopProgram()).ok());
  Status status = spec.VerifyAll();
  EXPECT_TRUE(status.ok()) << status.ToString();
}

TEST(CertifyGateTest, RacyProgramRejectedEvenWithoutBudget) {
  auto counter = std::make_shared<ArrayMap>("acquires", 8, 1);
  PolicySpec spec;
  spec.name = "racy";
  spec.maps.push_back(counter);
  ASSERT_TRUE(spec.AddProgram(kHook, RmwCounterProgram(counter.get())).ok());

  Status status = spec.VerifyAll();
  ASSERT_EQ(status.code(), StatusCode::kPermissionDenied) << status.ToString();
  EXPECT_NE(status.message().find("'acquires'"), std::string::npos)
      << status.message();
  EXPECT_NE(status.message().find("shared"), std::string::npos)
      << status.message();
  // The fix-it hint names the migration target.
  EXPECT_NE(status.message().find("percpu_array"), std::string::npos)
      << status.message();
}

TEST(CertifyGateTest, PerCpuMigrationUnblocksTheSamePolicy) {
  // Applying the analyzer's own hint makes the spec attachable.
  auto counter = std::make_shared<PerCpuArrayMap>("acquires", 8, 1,
                                                  /*num_cpus=*/4);
  PolicySpec spec;
  spec.name = "percpu";
  spec.maps.push_back(counter);
  ASSERT_TRUE(spec.AddProgram(kHook, RmwCounterProgram(counter.get())).ok());
  Status status = spec.VerifyAll();
  EXPECT_TRUE(status.ok()) << status.ToString();
}

// --- runtime budget vs certified bound ---------------------------------------

TEST(CertifyGateTest, CertifiedBoundNeverTripsDoubleBudget) {
  // Certify the loop program, then replay many dispatches each taking
  // exactly the certified worst case against a budget of twice that bound.
  // AccountDispatch overruns only on elapsed > budget, so a sound bound can
  // never trip — this is the contract that makes "budget_ns: 2 * certified"
  // a safe deployment rule.
  Program program = HotLoopProgram();
  Verifier::Analysis analysis;
  ASSERT_TRUE(Verifier::Verify(program, Verifier::Options{}, &analysis).ok());
  CertificationReport cert;
  ASSERT_TRUE(CertifyProgram(program, analysis, 0, &cert).ok());
  const std::uint64_t certified = cert.wcet.certified_ns;
  ASSERT_GT(certified, 0u);

  ScopedFakeClock fake;
  HookBudgetState budget;
  budget.budget_ns = 2 * certified;
  budget.trip_overruns = 2;
  for (int i = 0; i < 64; ++i) {
    const std::uint64_t start = ClockNowNs();
    fake.clock().AdvanceNs(certified);  // dispatch runs the full worst case
    budget.AccountDispatch(kHook, ElapsedSinceNs(start), nullptr);
  }
  EXPECT_EQ(budget.overruns.load(), 0u);
  EXPECT_EQ(budget.tripped.load(), 0u);
  EXPECT_EQ(budget.TotalCalls(), 64u);
  EXPECT_EQ(budget.max_ns.load(), certified);

  // Sanity: the same replay against a budget *below* the certified bound
  // does trip, so the assertion above is not vacuous.
  HookBudgetState tight;
  tight.budget_ns = certified - 1;
  tight.trip_overruns = 2;
  for (int i = 0; i < 2; ++i) {
    const std::uint64_t start = ClockNowNs();
    fake.clock().AdvanceNs(certified);
    tight.AccountDispatch(kHook, ElapsedSinceNs(start), nullptr);
  }
  EXPECT_EQ(tight.overruns.load(), 2u);
  EXPECT_EQ(tight.tripped.load(), 1u);
}

TEST(CertifyGateTest, BackwardsClockStepCannotFakeAnOverrun) {
  ScopedFakeClock fake(/*start_ns=*/1'000);
  const std::uint64_t start = ClockNowNs();
  // Step the clock backwards (unsigned wrap); unclamped now - start would be
  // ~2^64 ns and trip any budget on the spot.
  fake.clock().AdvanceNs(static_cast<std::uint64_t>(-500));
  EXPECT_EQ(ElapsedSinceNs(start), 0u);

  HookBudgetState budget;
  budget.budget_ns = 100;
  budget.trip_overruns = 1;
  budget.AccountDispatch(kHook, ElapsedSinceNs(start), nullptr);
  EXPECT_EQ(budget.overruns.load(), 0u);
  EXPECT_EQ(budget.tripped.load(), 0u);
}

}  // namespace
}  // namespace concord
