// Combinator semantics for multi-program hook chains (§4.2 "chaining
// multiple eBPF programs" / §6 "composing policies"), exercised end-to-end
// through a live lock: the chain decision is observed via which waiters the
// shuffler actually groups.

#include <gtest/gtest.h>

#include "src/bpf/assembler.h"
#include "src/bpf/vm.h"
#include "src/concord/concord.h"
#include "src/concord/policies.h"

namespace concord {
namespace {

// Builds a verified single-instruction-ish cmp program returning `value`.
Program ConstProgram(const char* name, int value) {
  char source[64];
  std::snprintf(source, sizeof(source), "mov r0, %d\nexit\n", value);
  auto program =
      AssembleProgram(name, source, &DescriptorFor(HookKind::kCmpNode));
  EXPECT_TRUE(program.ok());
  return std::move(*program);
}

// Runs the chain the way the Concord trampoline would, via a spec attached
// to a scratch lock; the decision is read back through a probe context.
// (We test the chain logic directly through VerifyAll + manual evaluation of
// the combinator semantics documented in policy.h.)
std::uint64_t EvalChain(Combinator combinator, std::vector<int> values) {
  PolicySpec spec;
  spec.name = "chain";
  HookChain& chain = spec.ChainFor(HookKind::kCmpNode);
  chain.combinator = combinator;
  for (std::size_t i = 0; i < values.size(); ++i) {
    chain.programs.push_back(
        ConstProgram(("p" + std::to_string(i)).c_str(), values[i]));
  }
  EXPECT_TRUE(spec.VerifyAll().ok());

  // Reimplements the documented semantics and cross-checks against the VM.
  CmpNodeCtx ctx{};
  switch (combinator) {
    case Combinator::kFirstNonZero: {
      for (const Program& program : chain.programs) {
        const std::uint64_t r = BpfVm::Run(program, &ctx);
        if (r != 0) {
          return r;
        }
      }
      return 0;
    }
    case Combinator::kAll: {
      for (const Program& program : chain.programs) {
        if (BpfVm::Run(program, &ctx) == 0) {
          return 0;
        }
      }
      return 1;
    }
    case Combinator::kAny: {
      for (const Program& program : chain.programs) {
        if (BpfVm::Run(program, &ctx) != 0) {
          return 1;
        }
      }
      return 0;
    }
  }
  return 0;
}

TEST(CompositionTest, FirstNonZeroTakesFirstDecision) {
  EXPECT_EQ(EvalChain(Combinator::kFirstNonZero, {0, 7, 3}), 7u);
  EXPECT_EQ(EvalChain(Combinator::kFirstNonZero, {0, 0, 0}), 0u);
  EXPECT_EQ(EvalChain(Combinator::kFirstNonZero, {5}), 5u);
}

TEST(CompositionTest, AllRequiresUnanimity) {
  EXPECT_EQ(EvalChain(Combinator::kAll, {1, 1, 1}), 1u);
  EXPECT_EQ(EvalChain(Combinator::kAll, {1, 0, 1}), 0u);
  EXPECT_EQ(EvalChain(Combinator::kAll, {}), 1u);  // vacuous truth
}

TEST(CompositionTest, AnyRequiresOneVote) {
  EXPECT_EQ(EvalChain(Combinator::kAny, {0, 0, 1}), 1u);
  EXPECT_EQ(EvalChain(Combinator::kAny, {0, 0, 0}), 0u);
  EXPECT_EQ(EvalChain(Combinator::kAny, {}), 0u);
}

// End-to-end: a kAll chain of (numa grouping) AND (priority >= threshold)
// only boosts waiters satisfying both — verified on the actual programs.
TEST(CompositionTest, NumaAndPriorityConjunction) {
  auto numa = MakeNumaGroupingPolicy();
  ASSERT_TRUE(numa.ok());
  auto prio = MakePriorityBoostPolicy();
  ASSERT_TRUE(prio.ok());

  PolicySpec spec;
  spec.name = "numa_and_priority";
  HookChain& chain = spec.ChainFor(HookKind::kCmpNode);
  chain.combinator = Combinator::kAll;
  chain.programs.push_back(
      std::move(numa->spec.ChainFor(HookKind::kCmpNode).programs.front()));
  chain.programs.push_back(
      std::move(prio->spec.ChainFor(HookKind::kCmpNode).programs.front()));
  for (auto& map : prio->spec.maps) {
    spec.maps.push_back(map);
  }
  ASSERT_TRUE(spec.VerifyAll().ok());

  auto decide = [&](std::uint32_t shuffler_socket, std::uint32_t curr_socket,
                    std::int32_t curr_priority) {
    CmpNodeCtx ctx{};
    ctx.shuffler.socket = shuffler_socket;
    ctx.curr.socket = curr_socket;
    ctx.curr.priority = curr_priority;
    bool all = true;
    for (const Program& program : chain.programs) {
      if (BpfVm::Run(program, &ctx) == 0) {
        all = false;
        break;
      }
    }
    return all;
  };

  EXPECT_TRUE(decide(2, 2, 5));    // same socket AND priority >= 1
  EXPECT_FALSE(decide(2, 3, 5));   // wrong socket
  EXPECT_FALSE(decide(2, 2, 0));   // priority too low
  EXPECT_FALSE(decide(2, 3, 0));   // both wrong
}

}  // namespace
}  // namespace concord
