#include "src/concord/policy_lint.h"

#include <gtest/gtest.h>

#include <string>

#include "src/bpf/assembler.h"
#include "src/bpf/jit/jit.h"
#include "src/bpf/maps.h"
#include "src/bpf/vm.h"
#include "src/concord/hooks.h"

namespace concord {
namespace {

// Assembles `source` against the hook's context descriptor with the scratch
// map bound at index 0, mirroring the concord_check tool.
StatusOr<Program> Assemble(HookKind kind, const std::string& source,
                           BpfMap* map) {
  return AssembleProgram("lint_test", source, &DescriptorFor(kind), {map});
}

bool HasRule(const LintReport& report, const std::string& rule) {
  for (const auto& finding : report.findings) {
    if (finding.rule == rule) {
      return true;
    }
  }
  return false;
}

TEST(PolicyLintTest, CleanNumaCmpNodePasses) {
  const char* source = R"(
    ldxw r2, [r1+16]    ; shuffler_socket
    ldxw r3, [r1+56]    ; curr_socket
    jeq r2, r3, same
    mov r0, 0
    exit
  same:
    mov r0, 1
    exit
  )";
  ArrayMap scratch("scratch", 8, 8);
  auto program = Assemble(HookKind::kCmpNode, source, &scratch);
  ASSERT_TRUE(program.ok());
  LintReport report;
  Status s = CheckPolicyProgram(HookKind::kCmpNode, *program, &report);
  EXPECT_TRUE(s.ok()) << s.ToString();
  EXPECT_TRUE(report.ok());
}

TEST(PolicyLintTest, CmpNodeMapWriteViolatesPurity) {
  const char* source = R"(
    stw [r10-4], 0      ; key
    stdw [r10-16], 1    ; value
    mov r1, 0
    mov r2, r10
    add r2, -4
    mov r3, r10
    add r3, -16
    call map_update_elem
    mov r0, 0
    exit
  )";
  ArrayMap scratch("scratch", 8, 8);
  auto program = Assemble(HookKind::kCmpNode, source, &scratch);
  ASSERT_TRUE(program.ok());
  LintReport report;
  Status s = CheckPolicyProgram(HookKind::kCmpNode, *program, &report);
  EXPECT_EQ(s.code(), StatusCode::kPermissionDenied);
  EXPECT_NE(s.message().find("cmp_node contract"), std::string::npos);
  EXPECT_TRUE(HasRule(report, "cmp-node-pure"));
}

TEST(PolicyLintTest, CmpNodeReturnOutsideZeroOne) {
  const char* source = "mov r0, 2\nexit\n";
  ArrayMap scratch("scratch", 8, 8);
  auto program = Assemble(HookKind::kCmpNode, source, &scratch);
  ASSERT_TRUE(program.ok());
  LintReport report;
  Status s = CheckPolicyProgram(HookKind::kCmpNode, *program, &report);
  EXPECT_EQ(s.code(), StatusCode::kPermissionDenied);
  EXPECT_TRUE(HasRule(report, "return-range"));
}

TEST(PolicyLintTest, CmpNodeLoopBeyondScanCapFlagged) {
  // Bounded (the verifier accepts it) but 512 trips > kMaxShuffleScan = 128.
  const char* source = R"(
    mov r2, 0
    mov r0, 0
  loop:
    add r2, 1
    jlt r2, 512, loop
    exit
  )";
  ArrayMap scratch("scratch", 8, 8);
  auto program = Assemble(HookKind::kCmpNode, source, &scratch);
  ASSERT_TRUE(program.ok());
  LintReport report;
  Status s = CheckPolicyProgram(HookKind::kCmpNode, *program, &report);
  EXPECT_EQ(s.code(), StatusCode::kPermissionDenied);
  EXPECT_TRUE(HasRule(report, "loop-bound"));

  // The identical loop is fine for skip_shuffle, whose cap is
  // kShuffleRoundCap = 1024.
  auto program2 = Assemble(HookKind::kSkipShuffle, source, &scratch);
  ASSERT_TRUE(program2.ok());
  EXPECT_TRUE(CheckPolicyProgram(HookKind::kSkipShuffle, *program2).ok());
}

TEST(PolicyLintTest, SkipShuffleLoopBeyondRoundCapFlagged) {
  const char* source = R"(
    mov r2, 0
    mov r0, 0
  loop:
    add r2, 1
    jlt r2, 2000, loop
    exit
  )";
  ArrayMap scratch("scratch", 8, 8);
  auto program = Assemble(HookKind::kSkipShuffle, source, &scratch);
  ASSERT_TRUE(program.ok());
  LintReport report;
  Status s = CheckPolicyProgram(HookKind::kSkipShuffle, *program, &report);
  EXPECT_EQ(s.code(), StatusCode::kPermissionDenied);
  EXPECT_TRUE(HasRule(report, "loop-bound"));
  EXPECT_NE(s.message().find("1024-trip hook bound"), std::string::npos);
}

TEST(PolicyLintTest, ScheduleWaiterMustNotRetainWaiterPointer) {
  const char* source = R"(
    mov r6, r1          ; stash the waiter context pointer
    call ktime_get_ns
    ldxdw r2, [r6+0]    ; ... and read through it after the helper
    mov r0, 0
    exit
  )";
  ArrayMap scratch("scratch", 8, 8);
  auto program = Assemble(HookKind::kScheduleWaiter, source, &scratch);
  ASSERT_TRUE(program.ok());
  LintReport report;
  Status s = CheckPolicyProgram(HookKind::kScheduleWaiter, *program, &report);
  EXPECT_EQ(s.code(), StatusCode::kPermissionDenied);
  EXPECT_TRUE(HasRule(report, "waiter-ptr-across-call"));
}

TEST(PolicyLintTest, ScheduleWaiterReloadAfterCallIsFine) {
  // Reading the context before the call and keeping only scalars across it
  // satisfies the contract.
  const char* source = R"(
    ldxdw r6, [r1+0]    ; waiter_wait_ns (a scalar, not the pointer)
    call ktime_get_ns
    mov r0, 0
    jlt r6, 1000, done
    mov r0, 1
  done:
    exit
  )";
  ArrayMap scratch("scratch", 8, 8);
  auto program = Assemble(HookKind::kScheduleWaiter, source, &scratch);
  ASSERT_TRUE(program.ok());
  EXPECT_TRUE(CheckPolicyProgram(HookKind::kScheduleWaiter, *program).ok());
}

TEST(PolicyLintTest, RwModeReturnRange) {
  ArrayMap scratch("scratch", 8, 8);
  auto ok_program = Assemble(HookKind::kRwMode, "mov r0, 2\nexit\n", &scratch);
  ASSERT_TRUE(ok_program.ok());
  EXPECT_TRUE(CheckPolicyProgram(HookKind::kRwMode, *ok_program).ok());

  auto bad_program = Assemble(HookKind::kRwMode, "mov r0, 3\nexit\n", &scratch);
  ASSERT_TRUE(bad_program.ok());
  LintReport report;
  Status s = CheckPolicyProgram(HookKind::kRwMode, *bad_program, &report);
  EXPECT_EQ(s.code(), StatusCode::kPermissionDenied);
  EXPECT_TRUE(HasRule(report, "return-range"));
}

TEST(PolicyLintTest, ProfilingHooksAreLenient) {
  // Map writes and wide return values are fine on profiling taps.
  const char* source = R"(
    ldxdw r0, [r1+8]    ; now_ns, unbounded
    exit
  )";
  ArrayMap scratch("scratch", 8, 8);
  auto program = Assemble(HookKind::kLockRelease, source, &scratch);
  ASSERT_TRUE(program.ok());
  EXPECT_TRUE(CheckPolicyProgram(HookKind::kLockRelease, *program).ok());
}

// The acceptance scenario for this PR: a counter-bounded-loop policy that v1
// (no back edges) rejected outright now verifies, passes lint, and computes
// the same answer on the interpreter and the JIT.
TEST(PolicyLintTest, BoundedLoopPolicyVerifiesAndRunsOnBothTiers) {
  const char* source = R"(
    ldxdw r2, [r1+0]    ; shuffler_wait_ns
    mov r3, 0
  scan:
    jle r2, 1, done
    rsh r2, 1
    add r3, 1
    jlt r3, 64, scan
  done:
    jlt r3, 10, skip
    mov r0, 0
    exit
  skip:
    mov r0, 1
    exit
  )";
  ArrayMap scratch("scratch", 8, 8);
  auto program = Assemble(HookKind::kSkipShuffle, source, &scratch);
  ASSERT_TRUE(program.ok());
  Verifier::Analysis analysis;
  Status s = CheckPolicyProgram(HookKind::kSkipShuffle, *program, nullptr,
                                &analysis);
  ASSERT_TRUE(s.ok()) << s.ToString();
  ASSERT_EQ(analysis.loops.size(), 1u);
  EXPECT_LE(analysis.loops[0].max_trips, 63u);
  EXPECT_EQ(analysis.r0_exit.umax, 1u);

  // wait_ns = 100 -> log2 = 6 < 10 -> skip (1); wait_ns = 5000 -> log2 = 12
  // -> shuffle (0).
  SkipShuffleCtx short_wait{};
  short_wait.shuffler.wait_ns = 100;
  SkipShuffleCtx long_wait{};
  long_wait.shuffler.wait_ns = 5000;
  EXPECT_EQ(BpfVm::Run(*program, &short_wait), 1u);
  EXPECT_EQ(BpfVm::Run(*program, &long_wait), 0u);
  if (Jit::Supported()) {
    auto compiled = Jit::Compile(*program);
    ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
    EXPECT_EQ(compiled.value()->Run(*program, &short_wait), 1u);
    EXPECT_EQ(compiled.value()->Run(*program, &long_wait), 0u);
  }
}

}  // namespace
}  // namespace concord
