#include "src/concord/trace_export.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <thread>

#include "src/base/json.h"
#include "src/base/trace.h"
#include "src/concord/concord.h"
#include "src/concord/policies.h"
#include "src/sync/shfllock.h"

namespace concord {
namespace {

TraceEvent Ev(std::uint64_t ts_ns, std::uint64_t lock_id, TraceEventKind kind,
              std::uint32_t tid, std::uint64_t arg = 0) {
  TraceEvent event;
  event.ts_ns = ts_ns;
  event.lock_id = lock_id;
  event.kind = kind;
  event.tid = tid;
  event.arg = arg;
  return event;
}

TEST(SummarizeTraceTest, MatchesWaitAndHoldSpans) {
  const std::vector<TraceEvent> events = {
      Ev(100, 5, TraceEventKind::kAcquire, 1),
      Ev(120, 5, TraceEventKind::kContended, 1),
      Ev(150, 5, TraceEventKind::kAcquired, 1),
      Ev(400, 5, TraceEventKind::kRelease, 1),
  };
  const auto summaries = SummarizeTrace(events);
  ASSERT_EQ(summaries.size(), 1u);
  const TraceLockSummary& s = summaries[0];
  EXPECT_EQ(s.lock_id, 5u);
  EXPECT_EQ(s.acquisitions, 1u);
  EXPECT_EQ(s.contentions, 1u);
  EXPECT_EQ(s.releases, 1u);
  EXPECT_EQ(s.matched_waits, 1u);
  EXPECT_EQ(s.total_wait_ns, 50u);
  EXPECT_EQ(s.matched_holds, 1u);
  EXPECT_EQ(s.total_hold_ns, 250u);
  EXPECT_EQ(s.unmatched_events, 0u);
}

TEST(SummarizeTraceTest, RecursiveAcquisitionMatchesLifo) {
  // Inner acquire pairs with inner acquired/release, like the profiler.
  const std::vector<TraceEvent> events = {
      Ev(100, 5, TraceEventKind::kAcquire, 1),
      Ev(150, 5, TraceEventKind::kAcquired, 1),  // outer wait 50
      Ev(200, 5, TraceEventKind::kAcquire, 1),
      Ev(260, 5, TraceEventKind::kAcquired, 1),  // inner wait 60
      Ev(300, 5, TraceEventKind::kRelease, 1),   // inner hold 40
      Ev(400, 5, TraceEventKind::kRelease, 1),   // outer hold 250
  };
  const auto summaries = SummarizeTrace(events);
  ASSERT_EQ(summaries.size(), 1u);
  const TraceLockSummary& s = summaries[0];
  EXPECT_EQ(s.matched_waits, 2u);
  EXPECT_EQ(s.total_wait_ns, 110u);
  EXPECT_EQ(s.max_wait_ns, 60u);
  EXPECT_EQ(s.matched_holds, 2u);
  EXPECT_EQ(s.total_hold_ns, 290u);
  EXPECT_EQ(s.max_hold_ns, 250u);
  EXPECT_EQ(s.unmatched_events, 0u);
}

TEST(SummarizeTraceTest, CountsUnmatchedEvents) {
  const std::vector<TraceEvent> events = {
      // Release with no acquired (partner fell out of the ring).
      Ev(100, 3, TraceEventKind::kRelease, 1),
      // Acquire with no acquired (still in flight at snapshot time).
      Ev(200, 3, TraceEventKind::kAcquire, 1),
      // Acquired with no acquire, then held past the snapshot.
      Ev(300, 3, TraceEventKind::kAcquired, 2),
  };
  const auto summaries = SummarizeTrace(events);
  ASSERT_EQ(summaries.size(), 1u);
  // release-without-hold + acquired-without-acquire + leftover acquire +
  // leftover hold = 4.
  EXPECT_EQ(summaries[0].unmatched_events, 4u);
  EXPECT_EQ(summaries[0].matched_waits, 0u);
  EXPECT_EQ(summaries[0].matched_holds, 0u);
}

TEST(SummarizeTraceTest, SortsMostContendedFirst) {
  const std::vector<TraceEvent> events = {
      Ev(100, 1, TraceEventKind::kAcquire, 1),
      Ev(110, 1, TraceEventKind::kAcquired, 1),  // lock 1: wait 10
      Ev(200, 2, TraceEventKind::kAcquire, 1),
      Ev(900, 2, TraceEventKind::kAcquired, 1),  // lock 2: wait 700
  };
  const auto summaries = SummarizeTrace(events);
  ASSERT_EQ(summaries.size(), 2u);
  EXPECT_EQ(summaries[0].lock_id, 2u);
  EXPECT_EQ(summaries[1].lock_id, 1u);
}

TEST(SummarizeTraceTest, ThreadsDoNotCrossMatch) {
  // Thread 2's acquired must not consume thread 1's pending acquire.
  const std::vector<TraceEvent> events = {
      Ev(100, 7, TraceEventKind::kAcquire, 1),
      Ev(150, 7, TraceEventKind::kAcquired, 2),
  };
  const auto summaries = SummarizeTrace(events);
  ASSERT_EQ(summaries.size(), 1u);
  EXPECT_EQ(summaries[0].matched_waits, 0u);
  // t1's leftover acquire + t2's unmatched acquired + t2's leftover hold.
  EXPECT_EQ(summaries[0].unmatched_events, 3u);
}

TEST(ChromeTraceJsonTest, EmitsMatchedSpansAndInstants) {
  const std::vector<TraceEvent> events = {
      Ev(100, 5, TraceEventKind::kAcquire, 1),
      Ev(120, 5, TraceEventKind::kPark, 1, 64),
      Ev(150, 5, TraceEventKind::kAcquired, 1),
      Ev(400, 5, TraceEventKind::kRelease, 1),
  };
  const std::string json = ChromeTraceJson(events, {{5, "renames"}});
  auto parsed = ParseJson(json);
  ASSERT_TRUE(parsed.ok()) << json;
  const JsonValue* trace_events = parsed->Find("traceEvents");
  ASSERT_NE(trace_events, nullptr);
  ASSERT_TRUE(trace_events->IsArray());

  const JsonValue* wait = nullptr;
  const JsonValue* hold = nullptr;
  const JsonValue* park = nullptr;
  for (const JsonValue& event : trace_events->array) {
    const JsonValue* cat = event.Find("cat");
    if (cat == nullptr) {
      continue;  // thread_name metadata
    }
    if (cat->string_value == "wait") {
      wait = &event;
    } else if (cat->string_value == "hold") {
      hold = &event;
    } else if (event.Find("name")->string_value == "renames park") {
      park = &event;
    }
  }
  ASSERT_NE(wait, nullptr);
  ASSERT_NE(hold, nullptr);
  ASSERT_NE(park, nullptr);

  EXPECT_EQ(wait->Find("name")->string_value, "renames wait");
  EXPECT_EQ(wait->Find("ph")->string_value, "X");
  EXPECT_DOUBLE_EQ(wait->Find("ts")->number_value, 0.1);    // 100ns in us
  EXPECT_DOUBLE_EQ(wait->Find("dur")->number_value, 0.05);  // 50ns
  EXPECT_DOUBLE_EQ(hold->Find("ts")->number_value, 0.15);
  EXPECT_DOUBLE_EQ(hold->Find("dur")->number_value, 0.25);
  EXPECT_EQ(park->Find("ph")->string_value, "i");
  EXPECT_DOUBLE_EQ(park->Find("args")->Find("arg")->number_value, 64.0);
}

TEST(ChromeTraceJsonTest, UnnamedLocksGetNumericLabels) {
  const std::vector<TraceEvent> events = {
      Ev(10, 42, TraceEventKind::kWake, 1),
  };
  auto parsed = ParseJson(ChromeTraceJson(events));
  ASSERT_TRUE(parsed.ok());
  const auto& array = parsed->Find("traceEvents")->array;
  ASSERT_GE(array.size(), 1u);
  EXPECT_EQ(array[0].Find("name")->string_value, "lock42 wake");
}

// End-to-end: a real contended ShflLock traced through the Concord facade
// must yield a parseable Chrome trace with matched wait and hold spans.
class TraceExportE2ETest : public ::testing::Test {
 protected:
  void SetUp() override { TraceRegistry::Global().ResetForTest(); }
  void TearDown() override { Concord::Global().ResetForTest(); }

  ShflLock lock_;
};

TEST_F(TraceExportE2ETest, ContendedRunProducesMatchedSpans) {
  Concord& concord = Concord::Global();
  const std::uint64_t id = concord.RegisterShflLock(lock_, "hot", "e2e");
#if !CONCORD_TRACE
  EXPECT_FALSE(concord.EnableTracing(id).ok());
  GTEST_SKIP() << "flight recorder compiled out";
#else
  ASSERT_TRUE(concord.EnableTracing(id).ok());
  ASSERT_FALSE(concord.EnableTracing(id + 999).ok());  // unknown lock id

  lock_.Lock();
  std::thread waiter([&] {
    lock_.Lock();  // contends until the main thread releases
    lock_.Unlock();
  });
  // Hold until the recorder has seen the waiter hit the slow path, then keep
  // holding a little longer so the measured wait is clearly nonzero.
  const auto contended = [&] {
    for (const TraceEvent& event : concord.TraceEvents()) {
      if (event.kind == TraceEventKind::kContended) {
        return true;
      }
    }
    return false;
  };
  while (!contended()) {
    std::this_thread::yield();
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  lock_.Unlock();
  waiter.join();
  for (int i = 0; i < 3; ++i) {
    lock_.Lock();
    lock_.Unlock();
  }

  const std::vector<TraceEvent> events = concord.TraceEvents();
  ASSERT_FALSE(events.empty());
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].ts_ns, events[i].ts_ns) << "not ts-sorted";
  }

  const auto summaries = SummarizeTrace(events);
  ASSERT_EQ(summaries.size(), 1u);
  const TraceLockSummary& s = summaries[0];
  EXPECT_EQ(s.lock_id, id);
  EXPECT_EQ(s.acquisitions, 5u);
  EXPECT_EQ(s.releases, 5u);
  EXPECT_GE(s.contentions, 1u);
  EXPECT_EQ(s.matched_waits, 5u);
  EXPECT_EQ(s.matched_holds, 5u);
  EXPECT_EQ(s.unmatched_events, 0u);
  // The contended waiter's wait dominates: it slept behind a ~5ms hold.
  EXPECT_GE(s.max_wait_ns, 1'000'000u);

  const std::string json = concord.TraceChromeJson();
  auto parsed = ParseJson(json);
  ASSERT_TRUE(parsed.ok()) << json.substr(0, 200);
  std::size_t waits = 0;
  std::size_t holds = 0;
  for (const JsonValue& event : parsed->Find("traceEvents")->array) {
    const JsonValue* cat = event.Find("cat");
    if (cat == nullptr) {
      continue;
    }
    if (cat->string_value == "wait" || cat->string_value == "hold") {
      EXPECT_EQ(event.Find("ph")->string_value, "X");
      EXPECT_GE(event.Find("dur")->number_value, 0.0);
      EXPECT_EQ(event.Find("name")->string_value,
                cat->string_value == "wait" ? "hot wait" : "hot hold");
      waits += cat->string_value == "wait" ? 1 : 0;
      holds += cat->string_value == "hold" ? 1 : 0;
    }
  }
  EXPECT_EQ(waits, 5u);
  EXPECT_EQ(holds, 5u);
#endif
}

TEST(MapDumpJsonTest, PerCpuArrayGroupsLanesPerKey) {
  PerCpuArrayMap map("counters", sizeof(std::uint64_t), 2, /*num_cpus=*/3);
  for (std::uint32_t cpu = 0; cpu < 3; ++cpu) {
    const std::uint64_t v = cpu + 1;
    std::memcpy(map.SlotAt(cpu, 0), &v, sizeof(v));
  }
  JsonWriter writer;
  AppendMapDumpJson(writer, map);
  auto parsed = ParseJson(writer.str());
  ASSERT_TRUE(parsed.ok()) << writer.str();
  EXPECT_EQ(parsed->Find("name")->string_value, "counters");
  EXPECT_EQ(parsed->Find("type")->string_value, "percpu_array");
  EXPECT_DOUBLE_EQ(parsed->Find("num_cpus")->number_value, 3.0);
  const JsonValue* entries = parsed->Find("entries");
  ASSERT_NE(entries, nullptr);
  ASSERT_EQ(entries->array.size(), 2u);  // one object per index
  const JsonValue& first = entries->array[0];
  ASSERT_EQ(first.Find("values")->array.size(), 3u);  // one lane per CPU
  EXPECT_DOUBLE_EQ(first.Find("values")->array[0].number_value, 1.0);
  EXPECT_DOUBLE_EQ(first.Find("values")->array[2].number_value, 3.0);
  EXPECT_DOUBLE_EQ(first.Find("sum")->number_value, 6.0);
  EXPECT_DOUBLE_EQ(entries->array[1].Find("sum")->number_value, 0.0);
}

TEST(MapDumpJsonTest, NarrowValuesDumpAsHex) {
  HashMap map("small", sizeof(std::uint64_t), 4, 8);  // 4-byte values
  ASSERT_TRUE(map.UpdateTyped(std::uint64_t{1}, std::uint32_t{0xabcd}).ok());
  JsonWriter writer;
  AppendMapDumpJson(writer, map);
  auto parsed = ParseJson(writer.str());
  ASSERT_TRUE(parsed.ok()) << writer.str();
  const JsonValue* entries = parsed->Find("entries");
  ASSERT_EQ(entries->array.size(), 1u);
  const JsonValue& entry = entries->array[0];
  // Sub-8-byte values can't be summed as u64 lanes: hex strings, no sum.
  EXPECT_EQ(entry.Find("values")->array[0].string_value, "0xcdab0000");
  EXPECT_EQ(entry.Find("sum"), nullptr);
}

TEST(MapDumpJsonTest, StatsJsonCarriesPolicyMaps) {
  static ShflLock lock;
  Concord& concord = Concord::Global();
  const std::uint64_t id = concord.RegisterShflLock(lock, "dump_me", "export");
  ASSERT_TRUE(concord.EnableProfiling(id).ok());
  auto policy = MakeBpfProfilerPolicy();
  ASSERT_TRUE(policy.ok());
  ASSERT_TRUE(concord.Attach(id, std::move(policy->spec)).ok());
  for (int i = 0; i < 3; ++i) {
    lock.Lock();
    lock.Unlock();
  }

  auto parsed = ParseJson(concord.StatsJson("dump_me"));
  ASSERT_TRUE(parsed.ok());
  const JsonValue& entry = parsed->Find("locks")->array[0];
  const JsonValue* maps = entry.Find("policy_maps");
  ASSERT_NE(maps, nullptr) << "attached policy's maps must be dumped";
  ASSERT_EQ(maps->array.size(), 1u);
  EXPECT_EQ(maps->array[0].Find("name")->string_value, "tap_counters");
  // Slot 0 counts kLockAcquire taps: summed across CPUs it equals the
  // acquisitions made above.
  EXPECT_DOUBLE_EQ(
      maps->array[0].Find("entries")->array[0].Find("sum")->number_value, 3.0);

  auto dump = concord.MapDumpJson("dump_me");
  ASSERT_TRUE(dump.ok());
  auto dump_parsed = ParseJson(*dump);
  ASSERT_TRUE(dump_parsed.ok());
  const JsonValue& dumped = dump_parsed->Find("locks")->array[0];
  EXPECT_EQ(dumped.Find("policy")->string_value, "bpf_profiler");
  ASSERT_EQ(dumped.Find("maps")->array.size(), 1u);

  // Filtering by name, and the not-found contract.
  auto filtered = concord.MapDumpJson("dump_me", "no_such_map");
  ASSERT_TRUE(filtered.ok());
  auto filtered_parsed = ParseJson(*filtered);
  ASSERT_TRUE(filtered_parsed.ok());
  EXPECT_EQ(
      filtered_parsed->Find("locks")->array[0].Find("maps")->array.size(), 0u);
  EXPECT_EQ(concord.MapDumpJson("no_such_lock").status().code(),
            StatusCode::kNotFound);

  ASSERT_TRUE(concord.Unregister(id).ok());
}

}  // namespace
}  // namespace concord
