#include "src/concord/concord.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "src/base/time.h"
#include "src/bpf/assembler.h"
#include "src/concord/policies.h"
#include "src/sync/bravo.h"

namespace concord {
namespace {

// Locks live in the fixture so they outlive TearDown's unregistration —
// Concord requires Unregister before a registered lock is destroyed.
class ConcordTest : public ::testing::Test {
 protected:
  void TearDown() override { Concord::Global().ResetForTest(); }

  ShflLock lock_;
  ShflLock lock2_;
  ShflLock lock3_;
  BravoLock<NeutralRwLock> rw_;
};

TEST_F(ConcordTest, RegisterAssignsDenseIds) {
  ShflLock& a = lock_;
  ShflLock& b = lock2_;
  const std::uint64_t id_a =
      Concord::Global().RegisterShflLock(a, "lock_a", "test");
  const std::uint64_t id_b =
      Concord::Global().RegisterShflLock(b, "lock_b", "test");
  EXPECT_NE(id_a, 0u);
  EXPECT_EQ(id_b, id_a + 1);
  EXPECT_EQ(a.lock_id(), id_a);
  EXPECT_EQ(Concord::Global().NameOf(id_a), "lock_a");
}

TEST_F(ConcordTest, SelectByNameClassAndWildcard) {
  ShflLock& a = lock_;
  ShflLock& b = lock2_;
  ShflLock& c = lock3_;
  Concord& concord = Concord::Global();
  concord.RegisterShflLock(a, "mmap_sem", "vm");
  concord.RegisterShflLock(b, "page_lock", "vm");
  concord.RegisterShflLock(c, "rename_lock", "vfs");

  EXPECT_EQ(concord.Select("mmap_sem").size(), 1u);
  EXPECT_EQ(concord.Select("class:vm").size(), 2u);
  EXPECT_EQ(concord.Select("class:vfs").size(), 1u);
  EXPECT_EQ(concord.Select("*").size(), 3u);
  EXPECT_TRUE(concord.Select("nonexistent").empty());

  auto found = concord.Find("rename_lock");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(concord.NameOf(*found), "rename_lock");
  EXPECT_FALSE(concord.Find("missing").ok());
}

TEST_F(ConcordTest, AttachRejectsUnknownLock) {
  PolicySpec spec;
  spec.name = "empty";
  EXPECT_EQ(Concord::Global().Attach(9999, std::move(spec)).code(),
            StatusCode::kNotFound);
}

TEST_F(ConcordTest, AttachVerifiesPrograms) {
  ShflLock& lock = lock_;
  const std::uint64_t id =
      Concord::Global().RegisterShflLock(lock, "l", "test");

  // An unbounded-memory program must be rejected at attach, not at runtime.
  auto bad = AssembleProgram("bad", R"(
    ldxdw r0, [r10-8]   ; uninitialized stack read
    exit
  )",
                             &DescriptorFor(HookKind::kCmpNode));
  ASSERT_TRUE(bad.ok());
  PolicySpec spec;
  spec.name = "bad_policy";
  ASSERT_TRUE(spec.AddProgram(HookKind::kCmpNode, std::move(*bad)).ok());
  Status status = Concord::Global().Attach(id, std::move(spec));
  EXPECT_EQ(status.code(), StatusCode::kPermissionDenied);
  // The lock must be untouched.
  EXPECT_EQ(lock.CurrentHooks(), nullptr);
}

TEST_F(ConcordTest, AttachEnforcesHookCapabilities) {
  ShflLock& lock = lock_;
  const std::uint64_t id =
      Concord::Global().RegisterShflLock(lock, "l", "test");

  // trace_printk requires kCapTrace, which cmp_node does not grant.
  auto prog = AssembleProgram("tracer", R"(
    mov r1, 1
    mov r2, 2
    mov r3, 3
    call trace_printk
    mov r0, 0
    exit
  )",
                              &DescriptorFor(HookKind::kCmpNode));
  ASSERT_TRUE(prog.ok());
  PolicySpec spec;
  spec.name = "trace_in_cmp";
  ASSERT_TRUE(spec.AddProgram(HookKind::kCmpNode, std::move(*prog)).ok());
  Status status = Concord::Global().Attach(id, std::move(spec));
  EXPECT_EQ(status.code(), StatusCode::kPermissionDenied);
  EXPECT_NE(status.message().find("not permitted"), std::string::npos);
}

TEST_F(ConcordTest, AddProgramRejectsWrongDescriptor) {
  auto prog = AssembleProgram("p", "mov r0, 0\nexit\n",
                              &DescriptorFor(HookKind::kRwMode));
  ASSERT_TRUE(prog.ok());
  PolicySpec spec;
  Status status = spec.AddProgram(HookKind::kCmpNode, std::move(*prog));
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST_F(ConcordTest, KindMismatchRejected) {
  ShflLock& shfl = lock_;
  BravoLock<NeutralRwLock>& rw = rw_;
  Concord& concord = Concord::Global();
  const std::uint64_t shfl_id = concord.RegisterShflLock(shfl, "s", "t");
  const std::uint64_t rw_id = concord.RegisterRwLock(rw, "r", "t");

  auto rw_policy = MakeRwSwitchPolicy(RwMode::kNeutral);
  ASSERT_TRUE(rw_policy.ok());
  EXPECT_EQ(concord.Attach(shfl_id, std::move(rw_policy->spec)).code(),
            StatusCode::kFailedPrecondition);

  auto numa = MakeNumaGroupingPolicy();
  ASSERT_TRUE(numa.ok());
  EXPECT_EQ(concord.Attach(rw_id, std::move(numa->spec)).code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(ConcordTest, AttachDetachRoundTrip) {
  ShflLock& lock = lock_;
  Concord& concord = Concord::Global();
  const std::uint64_t id = concord.RegisterShflLock(lock, "l", "test");

  auto numa = MakeNumaGroupingPolicy();
  ASSERT_TRUE(numa.ok());
  ASSERT_TRUE(concord.Attach(id, std::move(numa->spec)).ok());
  EXPECT_NE(lock.CurrentHooks(), nullptr);

  // Lock remains usable with the policy attached.
  for (int i = 0; i < 100; ++i) {
    ShflGuard guard(lock);
  }

  ASSERT_TRUE(concord.Detach(id).ok());
  EXPECT_EQ(lock.CurrentHooks(), nullptr);
}

TEST_F(ConcordTest, AttachBySelectorCoversClass) {
  ShflLock& a = lock_;
  ShflLock& b = lock2_;
  Concord& concord = Concord::Global();
  concord.RegisterShflLock(a, "a", "fs");
  concord.RegisterShflLock(b, "b", "fs");
  auto numa = MakeNumaGroupingPolicy();
  ASSERT_TRUE(numa.ok());
  ASSERT_TRUE(concord.AttachBySelector("class:fs", numa->spec).ok());
  EXPECT_NE(a.CurrentHooks(), nullptr);
  EXPECT_NE(b.CurrentHooks(), nullptr);
}

TEST_F(ConcordTest, NativeAttachIsThePrecompiledPath) {
  ShflLock& lock = lock_;
  Concord& concord = Concord::Global();
  const std::uint64_t id = concord.RegisterShflLock(lock, "l", "test");

  ShflHooks native;
  native.cmp_node = [](void*, const ShflWaiterView& s, const ShflWaiterView& c) {
    return s.socket == c.socket;
  };
  ASSERT_TRUE(concord.AttachNative(id, native).ok());
  EXPECT_NE(lock.CurrentHooks(), nullptr);
  for (int i = 0; i < 100; ++i) {
    ShflGuard guard(lock);
  }
  ASSERT_TRUE(concord.Detach(id).ok());
}

TEST_F(ConcordTest, HotSwapBetweenPoliciesUnderLoad) {
  ShflLock& lock = lock_;
  Concord& concord = Concord::Global();
  const std::uint64_t id = concord.RegisterShflLock(lock, "l", "test");

  std::atomic<bool> stop{false};
  std::uint64_t counter = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        ShflGuard guard(lock);
        counter = counter + 1;
      }
    });
  }

  for (int i = 0; i < 10; ++i) {
    auto numa = MakeNumaGroupingPolicy();
    ASSERT_TRUE(numa.ok());
    ASSERT_TRUE(concord.Attach(id, std::move(numa->spec)).ok());
    auto prio = MakePriorityBoostPolicy();
    ASSERT_TRUE(prio.ok());
    ASSERT_TRUE(concord.Attach(id, std::move(prio->spec)).ok());
    ASSERT_TRUE(concord.Detach(id).ok());
  }
  stop.store(true);
  for (auto& thread : threads) {
    thread.join();
  }
  SUCCEED();
}

TEST_F(ConcordTest, UnregisterDetachesFirst) {
  ShflLock& lock = lock_;
  Concord& concord = Concord::Global();
  const std::uint64_t id = concord.RegisterShflLock(lock, "l", "test");
  auto numa = MakeNumaGroupingPolicy();
  ASSERT_TRUE(numa.ok());
  ASSERT_TRUE(concord.Attach(id, std::move(numa->spec)).ok());
  ASSERT_TRUE(concord.Unregister(id).ok());
  EXPECT_EQ(lock.CurrentHooks(), nullptr);
  EXPECT_TRUE(concord.Select("*").empty());
}

TEST_F(ConcordTest, ListLocksReportsAttachmentState) {
  Concord& concord = Concord::Global();
  const std::uint64_t shfl_id = concord.RegisterShflLock(lock_, "s", "g1");
  concord.RegisterRwLock(rw_, "r", "g2");

  auto numa = MakeNumaGroupingPolicy();
  ASSERT_TRUE(numa.ok());
  ASSERT_TRUE(concord.Attach(shfl_id, std::move(numa->spec)).ok());
  ASSERT_TRUE(concord.EnableProfiling(shfl_id).ok());

  const auto all = concord.ListLocks("*");
  ASSERT_EQ(all.size(), 2u);
  const auto& shfl_info = all[0].name == "s" ? all[0] : all[1];
  const auto& rw_info = all[0].name == "s" ? all[1] : all[0];
  EXPECT_FALSE(shfl_info.is_rw);
  EXPECT_TRUE(shfl_info.has_policy);
  EXPECT_EQ(shfl_info.policy_name, "numa_grouping");
  EXPECT_TRUE(shfl_info.profiling);
  EXPECT_TRUE(rw_info.is_rw);
  EXPECT_FALSE(rw_info.has_policy);
  EXPECT_FALSE(rw_info.profiling);

  EXPECT_EQ(concord.ListLocks("class:g2").size(), 1u);
}

TEST_F(ConcordTest, CompositionChainsRunInOrder) {
  // Two cmp programs under kAny: socket match OR priority>=100. A waiter
  // matching either condition must be boosted; verified indirectly through
  // a direct chain-decision check via attach + lock exercise (no crash,
  // policy verifies). The decision logic itself is unit-tested through the
  // policy specs in policies_test.cc; here we check multi-program attach.
  ShflLock& lock = lock_;
  Concord& concord = Concord::Global();
  const std::uint64_t id = concord.RegisterShflLock(lock, "l", "test");

  auto numa = MakeNumaGroupingPolicy();
  ASSERT_TRUE(numa.ok());
  auto prio = MakePriorityBoostPolicy();
  ASSERT_TRUE(prio.ok());

  PolicySpec combined;
  combined.name = "numa_or_priority";
  combined.ChainFor(HookKind::kCmpNode).combinator = Combinator::kAny;
  for (auto& program : numa->spec.ChainFor(HookKind::kCmpNode).programs) {
    combined.ChainFor(HookKind::kCmpNode).programs.push_back(std::move(program));
  }
  for (auto& program : prio->spec.ChainFor(HookKind::kCmpNode).programs) {
    combined.ChainFor(HookKind::kCmpNode).programs.push_back(std::move(program));
  }
  for (auto& map : prio->spec.maps) {
    combined.maps.push_back(map);
  }
  ASSERT_TRUE(concord.Attach(id, std::move(combined)).ok());
  for (int i = 0; i < 100; ++i) {
    ShflGuard guard(lock);
  }
  ASSERT_TRUE(concord.Detach(id).ok());
}

}  // namespace
}  // namespace concord
