// End-to-end tests for the control-plane RPC server over a real unix socket:
// verb round-trips through RpcClient, the policy.attach static-analysis
// gate, and the robustness machinery — malformed input, oversized frames,
// pipelining, load shedding, idle-client timeouts and graceful shutdown.

#include "src/concord/rpc/server.h"

#include <gtest/gtest.h>

#include <errno.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <time.h>
#include <unistd.h>

#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <utility>

#include "src/base/fault.h"
#include "src/base/json.h"
#include "src/concord/concord.h"
#include "src/concord/rpc/client.h"
#include "src/sync/shfllock.h"
#include "src/topology/topology.h"

namespace concord {
namespace {

void SleepMs(std::uint64_t ms) {
  timespec ts;
  ts.tv_sec = static_cast<time_t>(ms / 1000);
  ts.tv_nsec = static_cast<long>((ms % 1000) * 1'000'000);
  nanosleep(&ts, nullptr);
}

// The flagship NUMA policy, inline so the test has no file dependencies.
constexpr char kGoodPolicy[] =
    "; hook: cmp_node\n"
    "  ldxw r2, [r1+16]\n"
    "  ldxw r3, [r1+56]\n"
    "  jeq  r2, r3, same\n"
    "  mov  r0, 0\n"
    "  exit\n"
    "same:\n"
    "  mov  r0, 1\n"
    "  exit\n";

// Assembles fine but returns 2 — the cmp_node lint contract (return 0 or 1)
// must reject it before it ever reaches a lock.
constexpr char kBadPolicy[] =
    "; hook: cmp_node\n"
    "  mov r0, 2\n"
    "  exit\n";

class RpcServerTest : public ::testing::Test {
 protected:
  void TearDown() override {
    if (server_ != nullptr) {
      server_->Stop();
    }
    Concord::Global().ResetForTest();
#if CONCORD_FAULT_INJECTION
    FaultRegistry::Global().DisarmAll();
#endif
  }

  std::string SocketPath() const {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    return "/tmp/concord_rpc_" + std::to_string(getpid()) + "_" + info->name() +
           ".sock";
  }

  void StartServer(RpcServerOptions options) {
    options.socket_path = SocketPath();
    server_ = std::make_unique<RpcServer>(std::move(options));
    ASSERT_TRUE(server_->Start().ok());
  }

  RpcClient MakeClient() {
    RpcClientOptions options;
    options.socket_path = SocketPath();
    options.timeout_ms = 5'000;
    return RpcClient(options);
  }

  // Raw-socket helpers for the malformed-input tests (RpcClient only ever
  // sends valid frames).
  int RawConnect() {
    const int fd = socket(AF_UNIX, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_un addr;
    memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    const std::string path = SocketPath();
    memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    EXPECT_EQ(connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0)
        << strerror(errno);
    return fd;
  }

  static void RawSend(int fd, const std::string& bytes) {
    ASSERT_EQ(send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(bytes.size()));
  }

  // Reads one newline-terminated frame, or "" on EOF/timeout.
  static std::string RawReadLine(int fd, int timeout_ms = 5'000) {
    std::string line;
    char c;
    while (true) {
      pollfd pfd{fd, POLLIN, 0};
      if (poll(&pfd, 1, timeout_ms) <= 0) {
        return "";
      }
      const ssize_t got = recv(fd, &c, 1, 0);
      if (got <= 0) {
        return "";
      }
      if (c == '\n') {
        return line;
      }
      line.push_back(c);
    }
  }

  std::unique_ptr<RpcServer> server_;
  ShflLock lock_;
};

TEST_F(RpcServerTest, StatusRoundTripsWithServerCounters) {
  const std::uint64_t id =
      Concord::Global().RegisterShflLock(lock_, "hot", "demo");
  StartServer({});
  RpcClient client = MakeClient();

  auto response = client.Call("status", "", /*idempotent=*/true);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  ASSERT_TRUE(response->ok) << response->error_message;

  auto parsed = ParseJson(response->result);
  ASSERT_TRUE(parsed.ok());
  EXPECT_DOUBLE_EQ(parsed->Find("pid")->number_value,
                   static_cast<double>(getpid()));
  const JsonValue* locks = parsed->Find("locks");
  ASSERT_NE(locks, nullptr);
  ASSERT_EQ(locks->array.size(), 1u);
  EXPECT_EQ(locks->array[0].Find("name")->string_value, "hot");
  const JsonValue* rpc = parsed->Find("rpc");
  ASSERT_NE(rpc, nullptr) << "server must inject its counters into status";
  EXPECT_EQ(rpc->Find("socket")->string_value, SocketPath());
  EXPECT_GE(rpc->Find("accepted")->number_value, 1.0);
  EXPECT_DOUBLE_EQ(rpc->Find("shed")->number_value, 0.0);

  (void)Concord::Global().Unregister(id);
}

TEST_F(RpcServerTest, AutotuneLifecycleOverSocket) {
  const std::uint64_t id =
      Concord::Global().RegisterShflLock(lock_, "hot", "demo");
  StartServer({});
  RpcClient client = MakeClient();

  auto enabled = client.Call("autotune.enable", R"({"selector":"class:demo"})",
                             /*idempotent=*/false);
  ASSERT_TRUE(enabled.ok());
  ASSERT_TRUE(enabled->ok) << enabled->error_message;

  auto status = client.Call("autotune.status", "", /*idempotent=*/true);
  ASSERT_TRUE(status.ok());
  ASSERT_TRUE(status->ok);
  auto parsed = ParseJson(status->result);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->Find("running")->bool_value);

  auto disabled = client.Call("autotune.disable", "", /*idempotent=*/false);
  ASSERT_TRUE(disabled.ok());
  EXPECT_TRUE(disabled->ok) << disabled->error_message;

  (void)Concord::Global().Unregister(id);
}

TEST_F(RpcServerTest, PolicyAttachRunsTheStaticAnalysisGate) {
  const std::uint64_t id =
      Concord::Global().RegisterShflLock(lock_, "hot", "demo");
  StartServer({});
  RpcClient client = MakeClient();

  // The lint gate kills a policy that returns an illegal value; the error is
  // structured, not a dropped connection.
  JsonWriter bad;
  bad.BeginObject();
  bad.Field("selector", "hot");
  bad.Field("source", kBadPolicy);
  bad.Field("name", "bad_policy");
  bad.EndObject();
  auto rejected =
      client.Call("policy.attach", bad.str(), /*idempotent=*/false);
  ASSERT_TRUE(rejected.ok()) << rejected.status().ToString();
  ASSERT_FALSE(rejected->ok);
  EXPECT_TRUE(rejected->error_code == "permission_denied" ||
              rejected->error_code == "invalid_params")
      << rejected->error_code << ": " << rejected->error_message;

  JsonWriter good;
  good.BeginObject();
  good.Field("selector", "hot");
  good.Field("source", kGoodPolicy);
  good.Field("name", "numa_rpc");
  good.EndObject();
  auto attached =
      client.Call("policy.attach", good.str(), /*idempotent=*/false);
  ASSERT_TRUE(attached.ok());
  ASSERT_TRUE(attached->ok) << attached->error_code << ": "
                            << attached->error_message;
  auto result = ParseJson(attached->result);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->Find("attached")->string_value, "numa_rpc");
  EXPECT_EQ(result->Find("hook")->string_value, "cmp_node");

  // Visible through status, and detachable.
  auto status = client.Call("status", R"({"selector":"hot"})",
                            /*idempotent=*/true);
  ASSERT_TRUE(status.ok() && status->ok);
  auto snapshot = ParseJson(status->result);
  ASSERT_TRUE(snapshot.ok());
  EXPECT_TRUE(snapshot->Find("locks")->array[0].Find("has_policy")->bool_value);

  auto detached = client.Call("policy.detach", R"({"selector":"hot"})",
                              /*idempotent=*/false);
  ASSERT_TRUE(detached.ok());
  ASSERT_TRUE(detached->ok);
  auto count = ParseJson(detached->result);
  ASSERT_TRUE(count.ok());
  EXPECT_DOUBLE_EQ(count->Find("detached")->number_value, 1.0);

  (void)Concord::Global().Unregister(id);
}

TEST_F(RpcServerTest, PolicyAttachRunsTheCertificationGate) {
  const std::uint64_t id =
      Concord::Global().RegisterShflLock(lock_, "hot", "demo");
  StartServer({});
  RpcClient client = MakeClient();

  // Over-budget: the source declares a 100 ns budget its 4096-trip loop
  // cannot meet on any tier. The WCET gate rejects before any lock sees it,
  // and the diagnostic survives the socket round-trip.
  constexpr char kOverBudgetPolicy[] =
      "; hook: lock_acquire\n"
      "; budget_ns: 100\n"
      "  mov r3, 0\n"
      "  mov r0, 0\n"
      "spin:\n"
      "  add r0, 1\n"
      "  add r3, 1\n"
      "  jlt r3, 4096, spin\n"
      "  and r0, 0\n"
      "  exit\n";
  JsonWriter slow;
  slow.BeginObject();
  slow.Field("selector", "hot");
  slow.Field("source", kOverBudgetPolicy);
  slow.Field("name", "slow_policy");
  slow.EndObject();
  auto rejected = client.Call("policy.attach", slow.str(),
                              /*idempotent=*/false);
  ASSERT_TRUE(rejected.ok()) << rejected.status().ToString();
  ASSERT_FALSE(rejected->ok) << "over-budget policy must not attach";
  EXPECT_EQ(rejected->error_code, "permission_denied")
      << rejected->error_code << ": " << rejected->error_message;
  EXPECT_NE(rejected->error_message.find("exceeds hook budget"),
            std::string::npos)
      << rejected->error_message;
  EXPECT_NE(rejected->error_message.find("dominated by insn"),
            std::string::npos)
      << rejected->error_message;

  // Racy: non-atomic read-modify-write of a shared array map.
  constexpr char kRacyPolicy[] =
      "; hook: lock_acquire\n"
      ".map counts, array, 8, 1\n"
      "  stw [r10-4], 0\n"
      "  mov r1, 0\n"
      "  mov r2, r10\n"
      "  add r2, -4\n"
      "  call map_lookup_elem\n"
      "  jeq r0, 0, out\n"
      "  ldxdw r2, [r0+0]\n"
      "  add r2, 1\n"
      "  stxdw [r0+0], r2\n"
      "out:\n"
      "  mov r0, 0\n"
      "  exit\n";
  JsonWriter racy;
  racy.BeginObject();
  racy.Field("selector", "hot");
  racy.Field("source", kRacyPolicy);
  racy.Field("name", "racy_policy");
  racy.EndObject();
  auto raced = client.Call("policy.attach", racy.str(), /*idempotent=*/false);
  ASSERT_TRUE(raced.ok()) << raced.status().ToString();
  ASSERT_FALSE(raced->ok) << "racy policy must not attach";
  EXPECT_EQ(raced->error_code, "permission_denied")
      << raced->error_code << ": " << raced->error_message;
  EXPECT_NE(raced->error_message.find("'counts'"), std::string::npos)
      << raced->error_message;
  EXPECT_NE(raced->error_message.find("percpu_array"), std::string::npos)
      << raced->error_message;

  // Nothing attached: both rejections happened before any registry change.
  auto status = client.Call("status", R"({"selector":"hot"})",
                            /*idempotent=*/true);
  ASSERT_TRUE(status.ok() && status->ok);
  auto snapshot = ParseJson(status->result);
  ASSERT_TRUE(snapshot.ok());
  EXPECT_FALSE(
      snapshot->Find("locks")->array[0].Find("has_policy")->bool_value);

  // The atomic rewrite of the racy counter certifies under an explicit
  // budget_ns param, and the response reports the certified bound.
  constexpr char kAtomicPolicy[] =
      "; hook: lock_acquire\n"
      ".map counts, array, 8, 1\n"
      "  stw [r10-4], 0\n"
      "  mov r1, 0\n"
      "  mov r2, r10\n"
      "  add r2, -4\n"
      "  call map_lookup_elem\n"
      "  jeq r0, 0, out\n"
      "  mov r2, 1\n"
      "  xadddw [r0+0], r2\n"
      "out:\n"
      "  mov r0, 0\n"
      "  exit\n";
  JsonWriter good;
  good.BeginObject();
  good.Field("selector", "hot");
  good.Field("source", kAtomicPolicy);
  good.Field("name", "atomic_counter");
  good.NumberField("budget_ns", 1'000'000);
  good.EndObject();
  auto attached = client.Call("policy.attach", good.str(),
                              /*idempotent=*/false);
  ASSERT_TRUE(attached.ok()) << attached.status().ToString();
  ASSERT_TRUE(attached->ok) << attached->error_code << ": "
                            << attached->error_message;
  auto result = ParseJson(attached->result);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->Find("attached")->string_value, "atomic_counter");
  const JsonValue* wcet = result->Find("certified_wcet_ns");
  ASSERT_NE(wcet, nullptr) << attached->result;
  EXPECT_GT(wcet->number_value, 0.0);
  EXPECT_LT(wcet->number_value, 1'000'000.0);
  const JsonValue* budget = result->Find("budget_ns");
  ASSERT_NE(budget, nullptr) << attached->result;
  EXPECT_DOUBLE_EQ(budget->number_value, 1'000'000.0);

  auto detached = client.Call("policy.detach", R"({"selector":"hot"})",
                              /*idempotent=*/false);
  ASSERT_TRUE(detached.ok() && detached->ok);
  (void)Concord::Global().Unregister(id);
}

TEST_F(RpcServerTest, MapDumpRoundTripsDeclaredPerCpuMap) {
  const std::uint64_t id =
      Concord::Global().RegisterShflLock(lock_, "hot", "demo");
  StartServer({});
  RpcClient client = MakeClient();

  // A counter policy whose per-CPU map is declared in the source itself —
  // the whole loop (declare, attach, count, dump) over the socket.
  constexpr char kCounterPolicy[] =
      "; hook: lock_acquire\n"
      ".map counters, percpu_array, 8, 1\n"
      "  stw [r10-4], 0\n"
      "  mov r1, 0\n"
      "  mov r2, r10\n"
      "  add r2, -4\n"
      "  call map_lookup_elem\n"
      "  jeq r0, 0, out\n"
      "  mov r2, 1\n"
      "  xadddw [r0+0], r2\n"
      "out:\n"
      "  mov r0, 0\n"
      "  exit\n";
  JsonWriter attach;
  attach.BeginObject();
  attach.Field("selector", "hot");
  attach.Field("source", kCounterPolicy);
  attach.Field("name", "percpu_counter");
  attach.EndObject();
  auto attached =
      client.Call("policy.attach", attach.str(), /*idempotent=*/false);
  ASSERT_TRUE(attached.ok()) << attached.status().ToString();
  ASSERT_TRUE(attached->ok) << attached->error_code << ": "
                            << attached->error_message;

  constexpr int kAcquisitions = 5;
  for (int i = 0; i < kAcquisitions; ++i) {
    lock_.Lock();
    lock_.Unlock();
  }

  auto dump = client.Call("map.dump", R"({"selector":"hot","map":"counters"})",
                          /*idempotent=*/true);
  ASSERT_TRUE(dump.ok()) << dump.status().ToString();
  ASSERT_TRUE(dump->ok) << dump->error_code << ": " << dump->error_message;
  auto parsed = ParseJson(dump->result);
  ASSERT_TRUE(parsed.ok()) << dump->result;
  const JsonValue* locks = parsed->Find("locks");
  ASSERT_NE(locks, nullptr);
  ASSERT_EQ(locks->array.size(), 1u);
  EXPECT_EQ(locks->array[0].Find("policy")->string_value, "percpu_counter");
  const JsonValue* maps = locks->array[0].Find("maps");
  ASSERT_NE(maps, nullptr);
  ASSERT_EQ(maps->array.size(), 1u);
  const JsonValue& map = maps->array[0];
  EXPECT_EQ(map.Find("name")->string_value, "counters");
  EXPECT_EQ(map.Find("type")->string_value, "percpu_array");
  const JsonValue* entries = map.Find("entries");
  ASSERT_NE(entries, nullptr);
  ASSERT_EQ(entries->array.size(), 1u);
  // Cross-CPU sum over the lanes equals the acquisitions we made.
  EXPECT_DOUBLE_EQ(entries->array[0].Find("sum")->number_value,
                   static_cast<double>(kAcquisitions));
  EXPECT_EQ(entries->array[0].Find("values")->array.size(),
            static_cast<std::size_t>(
                MachineTopology::Global().total_cpus()));

  // Unknown selectors are a structured not_found, not an empty dump.
  auto missing = client.Call("map.dump", R"({"selector":"nope"})",
                             /*idempotent=*/true);
  ASSERT_TRUE(missing.ok());
  ASSERT_FALSE(missing->ok);
  EXPECT_EQ(missing->error_code, "not_found");

  (void)Concord::Global().Unregister(id);
}

TEST_F(RpcServerTest, MalformedFramesGetStructuredErrorsAndConnectionSurvives) {
  StartServer({});
  const int fd = RawConnect();

  RawSend(fd, "this is not json\n");
  auto reply = ParseRpcResponse(RawReadLine(fd));
  ASSERT_TRUE(reply.ok());
  EXPECT_FALSE(reply->ok);
  EXPECT_EQ(reply->error_code, "parse_error");

  RawSend(fd, "{\"method\":\"\"}\n");
  reply = ParseRpcResponse(RawReadLine(fd));
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->error_code, "invalid_request");

  RawSend(fd, "{\"method\":\"no.such.verb\",\"id\":3}\n");
  reply = ParseRpcResponse(RawReadLine(fd));
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->error_code, "unknown_method");

  // The connection is still good for a valid request afterwards.
  RawSend(fd, "{\"method\":\"status\",\"id\":4}\n");
  reply = ParseRpcResponse(RawReadLine(fd));
  ASSERT_TRUE(reply.ok());
  EXPECT_TRUE(reply->ok);
  close(fd);
}

TEST_F(RpcServerTest, OversizedFrameIsShedWithoutParsing) {
  RpcServerOptions options;
  options.max_request_bytes = 1'024;
  StartServer(options);
  const int fd = RawConnect();

  // No newline: the frame can never complete, so the server must reject it
  // as soon as the buffer outgrows the limit, then drop the connection.
  RawSend(fd, std::string(5'000, 'x'));
  auto reply = ParseRpcResponse(RawReadLine(fd));
  ASSERT_TRUE(reply.ok());
  EXPECT_FALSE(reply->ok);
  EXPECT_EQ(reply->error_code, "invalid_request");
  EXPECT_EQ(RawReadLine(fd, 1'000), "");  // closed
  close(fd);

  EXPECT_GE(server_->stats().oversized, 1u);
}

TEST_F(RpcServerTest, PipelinedFramesAnswerInOrder) {
  StartServer({});
  const int fd = RawConnect();

  RawSend(fd,
          "{\"id\":1,\"method\":\"status\"}\n"
          "{\"id\":2,\"method\":\"faults.list\"}\n"
          "{\"id\":3,\"method\":\"containment.status\"}\n");
  for (int expected = 1; expected <= 3; ++expected) {
    const std::string line = RawReadLine(fd);
    ASSERT_FALSE(line.empty()) << "no reply for id " << expected;
    auto parsed = ParseJson(line);
    ASSERT_TRUE(parsed.ok());
    EXPECT_DOUBLE_EQ(parsed->Find("id")->number_value,
                     static_cast<double>(expected));
    EXPECT_TRUE(parsed->Find("ok")->bool_value);
  }
  close(fd);
}

TEST_F(RpcServerTest, FullQueueShedsWithBusyReply) {
  RpcServerOptions options;
  options.workers = 1;
  options.max_pending = 1;
  StartServer(options);

  // Occupy the single worker: a served request leaves the worker blocked in
  // recv on this connection until we close it.
  const int busy_fd = RawConnect();
  RawSend(busy_fd, "{\"method\":\"status\"}\n");
  ASSERT_FALSE(RawReadLine(busy_fd).empty());

  // Fills the one queue slot.
  const int queued_fd = RawConnect();
  SleepMs(200);  // let the accept loop enqueue it

  // Over capacity: 503-style structured shed, marked retryable.
  const int shed_fd = RawConnect();
  auto reply = ParseRpcResponse(RawReadLine(shed_fd));
  ASSERT_TRUE(reply.ok());
  EXPECT_FALSE(reply->ok);
  EXPECT_EQ(reply->error_code, "busy");
  EXPECT_TRUE(reply->retryable);
  close(shed_fd);

  // Freeing the worker lets the queued connection get real service.
  close(busy_fd);
  RawSend(queued_fd, "{\"method\":\"status\"}\n");
  auto served = ParseRpcResponse(RawReadLine(queued_fd));
  ASSERT_TRUE(served.ok());
  EXPECT_TRUE(served->ok);
  close(queued_fd);

  EXPECT_GE(server_->stats().shed, 1u);
}

TEST_F(RpcServerTest, IdleClientIsDisconnectedByReadTimeout) {
  RpcServerOptions options;
  options.read_timeout_ms = 100;
  StartServer(options);

  const int fd = RawConnect();
  // Send nothing: the worker's recv must time out and drop us, not pin the
  // worker forever.
  EXPECT_EQ(RawReadLine(fd, 2'000), "");
  close(fd);
  EXPECT_GE(server_->stats().read_timeouts, 1u);
}

TEST_F(RpcServerTest, GracefulShutdownAnswersQueuedConnections) {
  RpcServerOptions options;
  options.workers = 1;
  options.max_pending = 4;
  options.read_timeout_ms = 200;  // bounds how long Stop() waits on the worker
  StartServer(options);

  // Worker pinned on this connection until its read times out.
  const int busy_fd = RawConnect();
  RawSend(busy_fd, "{\"method\":\"status\"}\n");
  ASSERT_FALSE(RawReadLine(busy_fd).empty());

  const int queued_fd = RawConnect();
  SleepMs(100);  // ensure it is queued before the drain starts

  server_->Stop();

  // The queued-but-unserved connection got a structured drain reply.
  auto reply = ParseRpcResponse(RawReadLine(queued_fd, 1'000));
  ASSERT_TRUE(reply.ok());
  EXPECT_FALSE(reply->ok);
  EXPECT_EQ(reply->error_code, "unavailable");
  EXPECT_TRUE(reply->retryable);
  close(queued_fd);
  close(busy_fd);

  // The socket file is gone and Stop is idempotent.
  EXPECT_NE(access(SocketPath().c_str(), F_OK), 0);
  server_->Stop();
}

TEST_F(RpcServerTest, ClientRetriesAreBoundedOnDeadSocket) {
  // No server at all: an idempotent call must fail after max_attempts, not
  // camp forever.
  RpcClientOptions options;
  options.socket_path = SocketPath();
  options.max_attempts = 3;
  options.backoff_initial_ms = 1;
  options.backoff_max_ms = 4;
  RpcClient client(options);
  auto response = client.Call("status", "", /*idempotent=*/true);
  EXPECT_FALSE(response.ok());
}

// A hand-rolled one-shot "server" for the connection-loss tests: accepts one
// connection, reads the request, writes `reply_bytes` (possibly a partial
// frame), then closes — the wire shape of a server killed mid-reply.
class HalfReplyServer {
 public:
  explicit HalfReplyServer(const std::string& path, std::string reply_bytes)
      : path_(path), reply_bytes_(std::move(reply_bytes)) {
    listen_fd_ = socket(AF_UNIX, SOCK_STREAM, 0);
    EXPECT_GE(listen_fd_, 0);
    sockaddr_un addr;
    memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    unlink(path.c_str());
    EXPECT_EQ(bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                   sizeof(addr)),
              0)
        << strerror(errno);
    EXPECT_EQ(listen(listen_fd_, 1), 0);
    thread_ = std::thread([this] { ServeOne(); });
  }

  ~HalfReplyServer() {
    thread_.join();
    close(listen_fd_);
    unlink(path_.c_str());
  }

 private:
  void ServeOne() {
    const int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      return;
    }
    // Drain the request frame (one line) before replying, as a live server
    // would.
    char c;
    while (recv(fd, &c, 1, 0) == 1 && c != '\n') {
    }
    if (!reply_bytes_.empty()) {
      (void)send(fd, reply_bytes_.data(), reply_bytes_.size(), MSG_NOSIGNAL);
    }
    close(fd);  // dies mid-reply
  }

  std::string path_;
  std::string reply_bytes_;
  int listen_fd_ = -1;
  std::thread thread_;
};

// Regression: a server killed after writing half a response frame used to
// surface as a stale, misleading error. The client must now report a clean
// "connection lost" naming the partial frame, and concordctl turns that
// Status into a nonzero exit.
TEST_F(RpcServerTest, ServerKilledMidReplyYieldsConnectionLostError) {
  // Half of a valid response frame, no terminating newline.
  HalfReplyServer server(SocketPath(), "{\"id\":1,\"ok\":true,\"res");
  RpcClientOptions options;
  options.socket_path = SocketPath();
  options.timeout_ms = 5'000;
  options.max_attempts = 1;
  RpcClient client(options);
  auto response = client.CallOnce("status", "");
  ASSERT_FALSE(response.ok());
  EXPECT_NE(response.status().message().find("connection lost mid-reply"),
            std::string::npos)
      << response.status().ToString();
}

TEST_F(RpcServerTest, ServerKilledBeforeReplyYieldsCleanError) {
  HalfReplyServer server(SocketPath(), "");
  RpcClientOptions options;
  options.socket_path = SocketPath();
  options.timeout_ms = 5'000;
  options.max_attempts = 1;
  RpcClient client(options);
  auto response = client.CallOnce("status", "");
  ASSERT_FALSE(response.ok());
  EXPECT_NE(response.status().message().find("closed before any response"),
            std::string::npos)
      << response.status().ToString();
}

}  // namespace
}  // namespace concord
