// Shared-memory profiler segment tests (src/concord/agent/shm_segment.h):
// round-trips, geometry/version gating, truncation handling, and the fuzz
// contract the multi-process agent depends on — random byte flips anywhere in
// the mapped region must never crash the reader, read out of bounds, or
// produce a snapshot that passes the seqlock+checksum gate while differing
// from what the writer published.

#include <gtest/gtest.h>

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cstddef>
#include <cstdio>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/base/rng.h"
#include "src/concord/agent/shm_segment.h"

namespace concord {
namespace {

class ShmSegmentTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "shm_segment_test_" +
            std::to_string(getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() +
            ".shm";
    std::remove(path_.c_str());
  }

  void TearDown() override { std::remove(path_.c_str()); }

  static ShmLockSample MakeSample(std::uint64_t lock_id,
                                  const std::string& name,
                                  std::uint64_t scale) {
    ShmLockSample sample;
    sample.lock_id = lock_id;
    sample.name = name;
    sample.snapshot.acquisitions = 100 * scale;
    sample.snapshot.contentions = 40 * scale;
    sample.snapshot.releases = 99 * scale;
    sample.snapshot.socket_acquisitions[0] = 60 * scale;
    sample.snapshot.socket_acquisitions[1] = 40 * scale;
    sample.snapshot.cross_socket_handoffs = 25 * scale;
    sample.snapshot.dropped_samples = scale;
    sample.snapshot.budget_overruns = 2 * scale;
    sample.snapshot.quarantines = scale / 2;
    for (std::uint64_t i = 0; i < 40 * scale; ++i) {
      sample.snapshot.wait_ns.Record(1'000 + (i % 7) * 900);
      sample.snapshot.hold_ns.Record(200 + (i % 3) * 150);
    }
    return sample;
  }

  static void ExpectSamplesEqual(const ShmSegmentSample& got,
                                 const ShmSegmentSample& want) {
    ASSERT_EQ(got.locks.size(), want.locks.size());
    EXPECT_EQ(got.pid, want.pid);
    EXPECT_EQ(got.published_ns, want.published_ns);
    EXPECT_EQ(got.publish_count, want.publish_count);
    for (std::size_t i = 0; i < want.locks.size(); ++i) {
      const ShmLockSample& g = got.locks[i];
      const ShmLockSample& w = want.locks[i];
      EXPECT_EQ(g.lock_id, w.lock_id);
      EXPECT_EQ(g.name, w.name);
      EXPECT_EQ(g.snapshot.acquisitions, w.snapshot.acquisitions);
      EXPECT_EQ(g.snapshot.contentions, w.snapshot.contentions);
      EXPECT_EQ(g.snapshot.releases, w.snapshot.releases);
      EXPECT_EQ(g.snapshot.cross_socket_handoffs,
                w.snapshot.cross_socket_handoffs);
      EXPECT_EQ(g.snapshot.dropped_samples, w.snapshot.dropped_samples);
      EXPECT_EQ(g.snapshot.budget_overruns, w.snapshot.budget_overruns);
      EXPECT_EQ(g.snapshot.quarantines, w.snapshot.quarantines);
      for (std::size_t s = 0; s < kProfilerSocketSlots; ++s) {
        EXPECT_EQ(g.snapshot.socket_acquisitions[s],
                  w.snapshot.socket_acquisitions[s]);
      }
      for (int b = 0; b < Log2Histogram::kBuckets; ++b) {
        EXPECT_EQ(g.snapshot.wait_ns.BucketCount(b),
                  w.snapshot.wait_ns.BucketCount(b));
        EXPECT_EQ(g.snapshot.hold_ns.BucketCount(b),
                  w.snapshot.hold_ns.BucketCount(b));
      }
      EXPECT_EQ(g.snapshot.wait_ns.Sum(), w.snapshot.wait_ns.Sum());
      EXPECT_EQ(g.snapshot.wait_ns.Max(), w.snapshot.wait_ns.Max());
      EXPECT_EQ(g.snapshot.hold_ns.Sum(), w.snapshot.hold_ns.Sum());
      EXPECT_EQ(g.snapshot.hold_ns.Max(), w.snapshot.hold_ns.Max());
    }
  }

  std::string path_;
};

TEST_F(ShmSegmentTest, RoundTripsSamplesThroughTheSegment) {
  auto writer = ShmSegmentWriter::Create(path_, /*capacity=*/8);
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();

  std::vector<ShmLockSample> published;
  published.push_back(MakeSample(7, "hot", 3));
  published.push_back(MakeSample(9, "cold1", 1));
  ASSERT_TRUE((*writer)->Publish(published, /*published_ns=*/12345).ok());

  auto reader = ShmSegmentReader::Map(path_);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  auto sample = (*reader)->Read();
  ASSERT_TRUE(sample.ok()) << sample.status().ToString();

  ShmSegmentSample want;
  want.pid = static_cast<std::uint64_t>(getpid());
  want.published_ns = 12345;
  want.publish_count = 2;  // Create() publishes an empty initial state
  want.locks = published;
  // Decoded snapshots carry the segment's publish stamp.
  ExpectSamplesEqual(*sample, want);
  EXPECT_EQ(sample->locks[0].snapshot.taken_at_ns, 12345u);
}

TEST_F(ShmSegmentTest, FreshSegmentReadsBackEmpty) {
  auto writer = ShmSegmentWriter::Create(path_, /*capacity=*/4);
  ASSERT_TRUE(writer.ok());
  auto reader = ShmSegmentReader::Map(path_);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  auto sample = (*reader)->Read();
  ASSERT_TRUE(sample.ok()) << sample.status().ToString();
  EXPECT_TRUE(sample->locks.empty());
  EXPECT_EQ(sample->publish_count, 1u);
}

TEST_F(ShmSegmentTest, PublishCountAdvancesPerPublish) {
  auto writer = ShmSegmentWriter::Create(path_, /*capacity=*/4);
  ASSERT_TRUE(writer.ok());
  auto reader = ShmSegmentReader::Map(path_);
  ASSERT_TRUE(reader.ok());
  for (std::uint64_t i = 0; i < 5; ++i) {
    ASSERT_TRUE((*writer)->Publish({MakeSample(1, "hot", i + 1)}, i).ok());
    auto sample = (*reader)->Read();
    ASSERT_TRUE(sample.ok());
    EXPECT_EQ(sample->publish_count, i + 2);
  }
}

TEST_F(ShmSegmentTest, RejectsMoreLocksThanCapacity) {
  auto writer = ShmSegmentWriter::Create(path_, /*capacity=*/2);
  ASSERT_TRUE(writer.ok());
  std::vector<ShmLockSample> too_many = {MakeSample(1, "a", 1),
                                         MakeSample(2, "b", 1),
                                         MakeSample(3, "c", 1)};
  EXPECT_FALSE((*writer)->Publish(too_many, 1).ok());
}

TEST_F(ShmSegmentTest, TruncatesOverlongLockNames) {
  auto writer = ShmSegmentWriter::Create(path_, /*capacity=*/2);
  ASSERT_TRUE(writer.ok());
  const std::string long_name(kShmMaxLockName + 20, 'x');
  ASSERT_TRUE((*writer)->Publish({MakeSample(1, long_name, 1)}, 1).ok());
  auto reader = ShmSegmentReader::Map(path_);
  ASSERT_TRUE(reader.ok());
  auto sample = (*reader)->Read();
  ASSERT_TRUE(sample.ok());
  ASSERT_EQ(sample->locks.size(), 1u);
  // NUL-terminated within the fixed record field.
  EXPECT_EQ(sample->locks[0].name, long_name.substr(0, kShmMaxLockName - 1));
}

TEST_F(ShmSegmentTest, VersionMismatchIsPermanentlyRejected) {
  auto writer = ShmSegmentWriter::Create(path_);
  ASSERT_TRUE(writer.ok());
  auto reader = ShmSegmentReader::Map(path_);
  ASSERT_TRUE(reader.ok());

  const int fd = open(path_.c_str(), O_RDWR);
  ASSERT_GE(fd, 0);
  const std::uint64_t bad_version = kShmSegmentVersion + 1;
  ASSERT_EQ(pwrite(fd, &bad_version, sizeof(bad_version),
                   offsetof(ShmSegmentHeader, version)),
            static_cast<ssize_t>(sizeof(bad_version)));
  close(fd);

  auto sample = (*reader)->Read();
  ASSERT_FALSE(sample.ok());
  EXPECT_EQ(sample.status().code(), StatusCode::kInvalidArgument);
  // A fresh Map must refuse the segment outright.
  EXPECT_FALSE(ShmSegmentReader::Map(path_).ok());
}

TEST_F(ShmSegmentTest, TruncatedSegmentIsPermanentlyRejected) {
  auto writer = ShmSegmentWriter::Create(path_, /*capacity=*/8);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->Publish({MakeSample(1, "hot", 2)}, 1).ok());
  auto reader = ShmSegmentReader::Map(path_);
  ASSERT_TRUE(reader.ok());
  ASSERT_TRUE((*reader)->Read().ok());

  ASSERT_EQ(truncate(path_.c_str(),
                     static_cast<off_t>(ShmSegmentBytes(8) / 2)),
            0);
  auto sample = (*reader)->Read();
  ASSERT_FALSE(sample.ok());
  EXPECT_EQ(sample.status().code(), StatusCode::kInvalidArgument);
}

// The fuzz contract. Fixed seed; every iteration flips a few random bytes in
// the file (headers and records alike), reads, and requires one of exactly
// two outcomes: a clean Status error, or a sample bit-identical to what was
// published (flips landing beyond the live record region are invisible by
// design — they are outside the checksummed area). Anything else — a crash,
// an OOB access under sanitizers, or a "valid" sample with corrupt contents —
// fails the test.
TEST_F(ShmSegmentTest, FuzzedByteFlipsNeverYieldACorruptValidSample) {
  constexpr std::uint32_t kCapacity = 4;
  auto writer = ShmSegmentWriter::Create(path_, kCapacity);
  ASSERT_TRUE(writer.ok());
  std::vector<ShmLockSample> published = {MakeSample(3, "fuzzed", 5),
                                          MakeSample(4, "other", 2)};
  ASSERT_TRUE((*writer)->Publish(published, /*published_ns=*/777).ok());

  auto reader = ShmSegmentReader::Map(path_);
  ASSERT_TRUE(reader.ok());
  auto baseline = (*reader)->Read();
  ASSERT_TRUE(baseline.ok());

  const int fd = open(path_.c_str(), O_RDWR);
  ASSERT_GE(fd, 0);
  const std::size_t bytes = ShmSegmentBytes(kCapacity);

  Xoshiro256 rng(0xC0FFEE5EED);
  int rejected = 0;
  for (int iter = 0; iter < 2000; ++iter) {
    // Flip 1..8 bytes.
    const int flips = 1 + static_cast<int>(rng.NextBounded(8));
    std::vector<std::pair<std::size_t, unsigned char>> undo;
    for (int f = 0; f < flips; ++f) {
      const std::size_t pos = rng.NextBounded(bytes);
      const unsigned char mask =
          static_cast<unsigned char>(1 + rng.NextBounded(255));
      unsigned char byte = 0;
      ASSERT_EQ(pread(fd, &byte, 1, static_cast<off_t>(pos)), 1);
      const unsigned char flipped = byte ^ mask;
      ASSERT_EQ(pwrite(fd, &flipped, 1, static_cast<off_t>(pos)), 1);
      undo.emplace_back(pos, byte);
    }

    auto sample = (*reader)->Read();
    if (sample.ok()) {
      // The gate passed: the sample must be indistinguishable from the
      // published state (the flips only touched dead bytes).
      ExpectSamplesEqual(*sample, *baseline);
    } else {
      ++rejected;
    }

    for (auto it = undo.rbegin(); it != undo.rend(); ++it) {
      ASSERT_EQ(pwrite(fd, &it->second, 1, static_cast<off_t>(it->first)), 1);
    }
    // Restored: the segment must read clean again.
    auto restored = (*reader)->Read();
    ASSERT_TRUE(restored.ok())
        << "iteration " << iter
        << " did not restore cleanly: " << restored.status().ToString();
  }
  close(fd);
  // Sanity on the fuzzer itself: most flips land in the checksummed live
  // region of this small segment and must have been rejected.
  EXPECT_GT(rejected, 500);
}

// The writer keeps publishing while a reader in another thread hammers
// Read(): every successful read parses as a full publish (no torn mixes),
// and under TSan this doubles as the data-race proof for the relaxed-word
// copy protocol.
TEST_F(ShmSegmentTest, ConcurrentPublishAndReadStayTornFree) {
  auto writer = ShmSegmentWriter::Create(path_, /*capacity=*/2);
  ASSERT_TRUE(writer.ok());
  auto reader = ShmSegmentReader::Map(path_);
  ASSERT_TRUE(reader.ok());

  std::atomic<bool> stop{false};
  std::atomic<int> ok_reads{0};
  std::thread read_thread([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      auto sample = (*reader)->Read();
      if (!sample.ok()) {
        // Transient only: the writer is live, so nothing is ever permanent.
        EXPECT_EQ(sample.status().code(), StatusCode::kFailedPrecondition);
        continue;
      }
      ok_reads.fetch_add(1, std::memory_order_relaxed);
      if (sample->locks.empty()) {
        continue;
      }
      // Scale ties every field of a publish together; a torn mix of two
      // publishes cannot keep these ratios.
      const LockProfileSnapshot& snap = sample->locks[0].snapshot;
      ASSERT_EQ(snap.acquisitions % 100, 0u);
      const std::uint64_t scale = snap.acquisitions / 100;
      ASSERT_EQ(snap.contentions, 40 * scale);
      ASSERT_EQ(snap.releases, 99 * scale);
      ASSERT_EQ(snap.wait_ns.TotalCount(), 40 * scale);
    }
  });

  for (std::uint64_t i = 1; i <= 400; ++i) {
    ASSERT_TRUE((*writer)->Publish({MakeSample(1, "hot", i)}, i).ok());
  }
  stop.store(true);
  read_thread.join();
  EXPECT_GT(ok_reads.load(), 0);
}

}  // namespace
}  // namespace concord
