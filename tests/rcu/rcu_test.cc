#include "src/rcu/rcu.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "src/base/time.h"

namespace concord {
namespace {

TEST(RcuTest, ReadSectionNestingTracked) {
  Rcu& rcu = Rcu::Global();
  EXPECT_FALSE(rcu.InReadSection());
  rcu.ReadLock();
  EXPECT_TRUE(rcu.InReadSection());
  rcu.ReadLock();
  EXPECT_TRUE(rcu.InReadSection());
  rcu.ReadUnlock();
  EXPECT_TRUE(rcu.InReadSection());
  rcu.ReadUnlock();
  EXPECT_FALSE(rcu.InReadSection());
}

TEST(RcuTest, GuardIsRaii) {
  Rcu& rcu = Rcu::Global();
  {
    RcuReadGuard guard;
    EXPECT_TRUE(rcu.InReadSection());
  }
  EXPECT_FALSE(rcu.InReadSection());
}

TEST(RcuTest, SynchronizeWithNoReadersReturns) {
  Rcu::Global().Synchronize();
  SUCCEED();
}

TEST(RcuTest, SynchronizeWaitsForActiveReader) {
  std::atomic<bool> reader_in{false};
  std::atomic<bool> reader_release{false};
  std::atomic<bool> sync_done{false};

  std::thread reader([&] {
    Rcu::Global().ReadLock();
    reader_in.store(true);
    while (!reader_release.load()) {
      std::this_thread::yield();
    }
    // Synchronize must not have completed while we were inside.
    EXPECT_FALSE(sync_done.load());
    Rcu::Global().ReadUnlock();
  });

  while (!reader_in.load()) {
    std::this_thread::yield();
  }

  std::thread writer([&] {
    Rcu::Global().Synchronize();
    sync_done.store(true);
  });

  // Give the writer a moment: it must be blocked on the reader.
  BurnNs(5'000'000);
  EXPECT_FALSE(sync_done.load());

  reader_release.store(true);
  writer.join();
  reader.join();
  EXPECT_TRUE(sync_done.load());
}

TEST(RcuTest, SynchronizeDoesNotWaitForNewReaders) {
  // A reader that starts after Synchronize begins must not block it forever;
  // this is the two-flip property. We approximate by hammering short read
  // sections while a writer synchronizes repeatedly.
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load()) {
      RcuReadGuard guard;
    }
  });
  for (int i = 0; i < 50; ++i) {
    Rcu::Global().Synchronize();
  }
  stop.store(true);
  reader.join();
  SUCCEED();  // termination is the assertion
}

TEST(RcuTest, CallRcuDeferredUntilFlush) {
  Rcu& rcu = Rcu::Global();
  std::atomic<int> ran{0};
  rcu.CallRcu([&ran] { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 0);
  EXPECT_GE(rcu.pending_callbacks(), 1u);
  rcu.FlushDeferred();
  EXPECT_EQ(ran.load(), 1);
  EXPECT_EQ(rcu.pending_callbacks(), 0u);
}

TEST(RcuTest, RcuPointerSwapPublishes) {
  RcuPointer<int> ptr(new int(1));
  int* old = nullptr;
  {
    RcuReadGuard guard;
    EXPECT_EQ(*ptr.Read(), 1);
  }
  old = ptr.Swap(new int(2));
  EXPECT_EQ(*old, 1);
  Rcu::Global().Synchronize();
  delete old;
  {
    RcuReadGuard guard;
    EXPECT_EQ(*ptr.Read(), 2);
  }
  delete ptr.Swap(nullptr);
}

TEST(RcuTest, ReadersNeverObserveFreedObject) {
  // Stress: writers continually replace an object; readers dereference it
  // under RCU. A use-after-free would be caught by the generation check
  // (and by ASan when enabled).
  struct Node {
    explicit Node(std::uint64_t g) : generation(g), alive(0xa11fed) {}
    std::uint64_t generation;
    std::uint64_t alive;
  };
  RcuPointer<Node> ptr(new Node(0));
  std::atomic<bool> stop{false};

  std::vector<std::thread> readers;
  for (int i = 0; i < 3; ++i) {
    readers.emplace_back([&] {
      while (!stop.load()) {
        RcuReadGuard guard;
        Node* node = ptr.Read();
        ASSERT_NE(node, nullptr);
        ASSERT_EQ(node->alive, 0xa11fedull);
      }
    });
  }

  for (std::uint64_t gen = 1; gen <= 200; ++gen) {
    Node* old = ptr.Swap(new Node(gen));
    Rcu::Global().Synchronize();
    old->alive = 0xdead;  // poison before freeing
    delete old;
  }
  stop.store(true);
  for (auto& t : readers) {
    t.join();
  }
  delete ptr.Swap(nullptr);
}

}  // namespace
}  // namespace concord
