// Chaos coverage for the autotune control plane: the "autotune.decide" fault
// point (src/base/fault.h) wedges the controller's decision step, and the
// test proves a wedged controller loses decisions — never attachment-state
// consistency — then recovers the moment the fault is disarmed. Also drives
// the containment-triggered rollback path under an injected policy fault.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/base/fault.h"
#include "src/base/time.h"
#include "src/concord/autotune/controller.h"
#include "src/concord/concord.h"
#include "src/concord/containment.h"
#include "src/sync/shfllock.h"

namespace concord {
namespace {

#if CONCORD_FAULT_INJECTION

class AutotuneChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    lock_id_ = Concord::Global().RegisterShflLock(lock_, "chaos_tuned", "chaos");
    AutotuneConfig config;
    config.hysteresis_windows = 1;
    config.canary_windows = 2;
    config.cooldown_windows = 0;
    config.min_window_acquisitions = 10;
    ASSERT_TRUE(AutotuneController::Global().Configure(config).ok());
    ASSERT_TRUE(AutotuneController::Global().Enroll(lock_id_).ok());
  }

  void TearDown() override {
    Concord::Global().ResetForTest();
    FaultRegistry::Global().DisarmAll();
  }

  // One synthetic NUMA-skewed window written straight into the control
  // shard, then the clock advances so the next Tick sees a fresh window.
  void FeedNumaWindow(std::uint64_t wait_each_ns) {
    LockProfileStats& shard =
        Concord::Global().MutableStats(lock_id_)->ControlShard();
    shard.acquisitions.fetch_add(100);
    shard.contentions.fetch_add(50);
    shard.socket_acquisitions[0].fetch_add(50);
    shard.socket_acquisitions[1].fetch_add(50);
    shard.cross_socket_handoffs.fetch_add(40);
    for (int i = 0; i < 50; ++i) {
      shard.wait_ns.Record(wait_each_ns);
    }
    clock_.clock().AdvanceMs(100);
  }

  static bool HasEvent(const std::vector<AutotuneEvent>& events,
                       AutotuneEventKind kind) {
    for (const AutotuneEvent& event : events) {
      if (event.kind == kind) {
        return true;
      }
    }
    return false;
  }

  ScopedFakeClock clock_;
  ShflLock lock_;
  std::uint64_t lock_id_ = 0;
};

// An armed decide fault must freeze the decision loop: regime-worthy
// windows keep arriving, yet no events are emitted and nothing is ever
// attached. Disarming resumes decisions on the very next tick.
TEST_F(AutotuneChaosTest, WedgedDecideStepMakesNoDecisions) {
  auto& controller = AutotuneController::Global();
  controller.Tick();  // first snapshot

  FaultRegistry::Global().Arm("autotune.decide", {});
  const std::uint64_t evaluations_before =
      FaultRegistry::Global().Evaluations("autotune.decide");
  for (int i = 0; i < 5; ++i) {
    FeedNumaWindow(/*wait_each_ns=*/64'000);
    EXPECT_TRUE(controller.Tick().empty());
    EXPECT_TRUE(Concord::Global().AttachedPolicyName(lock_id_).empty());
  }
  // The fault point really sat on the decision path every tick.
  EXPECT_GE(FaultRegistry::Global().Evaluations("autotune.decide") -
                evaluations_before,
            5u);
  EXPECT_GE(FaultRegistry::Global().Fires("autotune.decide"), 5u);

  FaultRegistry::Global().Disarm("autotune.decide");
  FeedNumaWindow(/*wait_each_ns=*/64'000);
  const auto events = controller.Tick();
  EXPECT_TRUE(HasEvent(events, AutotuneEventKind::kRegimeChange));
  EXPECT_TRUE(HasEvent(events, AutotuneEventKind::kCanaryStart));
  EXPECT_EQ(Concord::Global().AttachedPolicyName(lock_id_), "numa_grouping");
}

// A fault that wedges the controller mid-canary must not strand the canary
// policy: sampling continues, and when the controller comes back the canary
// is scored against the pre-canary baseline as if nothing happened.
TEST_F(AutotuneChaosTest, WedgeDuringCanaryResumesScoringCleanly) {
  auto& controller = AutotuneController::Global();
  controller.Tick();
  FeedNumaWindow(/*wait_each_ns=*/64'000);
  ASSERT_TRUE(HasEvent(controller.Tick(), AutotuneEventKind::kCanaryStart));

  FaultRegistry::Global().Arm("autotune.decide", {});
  for (int i = 0; i < 3; ++i) {
    FeedNumaWindow(/*wait_each_ns=*/8'000);
    EXPECT_TRUE(controller.Tick().empty());
    // The canary stays attached the whole time the controller is wedged.
    EXPECT_EQ(Concord::Global().AttachedPolicyName(lock_id_), "numa_grouping");
  }
  FaultRegistry::Global().Disarm("autotune.decide");

  FeedNumaWindow(/*wait_each_ns=*/8'000);
  controller.Tick();
  FeedNumaWindow(/*wait_each_ns=*/8'000);
  EXPECT_TRUE(HasEvent(controller.Tick(), AutotuneEventKind::kPromote));
  EXPECT_EQ(Concord::Global().AttachedPolicyName(lock_id_), "numa_grouping");
}

// Containment outranks the wedge: a canary whose policy is reported faulty
// is rolled back on the next tick even while "autotune.decide" is armed,
// because the containment check runs before the fault point.
TEST_F(AutotuneChaosTest, ContainmentRollbackFiresEvenWhileWedged) {
  auto& controller = AutotuneController::Global();
  controller.Tick();
  FeedNumaWindow(/*wait_each_ns=*/64'000);
  ASSERT_TRUE(HasEvent(controller.Tick(), AutotuneEventKind::kCanaryStart));
  ASSERT_EQ(Concord::Global().AttachedPolicyName(lock_id_), "numa_grouping");

  FaultRegistry::Global().Arm("autotune.decide", {});
  ContainmentRegistry::Global().ReportFault(
      lock_id_, ContainmentFault::kDispatchFault, "chaos-injected fault");
  FeedNumaWindow(/*wait_each_ns=*/8'000);
  const auto events = controller.Tick();
  EXPECT_TRUE(HasEvent(events, AutotuneEventKind::kRollback));
  EXPECT_TRUE(Concord::Global().AttachedPolicyName(lock_id_).empty());
}

#endif  // CONCORD_FAULT_INJECTION

}  // namespace
}  // namespace concord
