// Chaos/soak harness: hostile policies and injected faults under real
// contention. The containment pipeline (src/concord/containment.h) must
// quarantine the offender, the lock must keep making progress (zero lost
// wakeups), and throughput must recover once the policy is off the lock.

#include <gtest/gtest.h>
#include <time.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "src/base/fault.h"
#include "src/base/time.h"
#include "src/concord/concord.h"
#include "src/concord/containment.h"
#include "src/concord/policies.h"
#include "src/concord/safety.h"
#include "src/sync/shfllock.h"

namespace concord {
namespace {

class ChaosTest : public ::testing::Test {
 protected:
  void TearDown() override {
    Concord::Global().ResetForTest();
#if CONCORD_FAULT_INJECTION
    FaultRegistry::Global().DisarmAll();
#endif
  }

  ShflLock lock_;
};

void SleepMs(std::uint64_t ms) {
  timespec ts;
  ts.tv_sec = static_cast<time_t>(ms / 1000);
  ts.tv_nsec = static_cast<long>((ms % 1000) * 1'000'000);
  nanosleep(&ts, nullptr);
}

// Sleeps until pred or ~10s.
template <typename Pred>
bool Await(Pred pred) {
  const std::uint64_t deadline = MonotonicNowNs() + 10'000'000'000ull;
  while (!pred()) {
    if (MonotonicNowNs() > deadline) {
      return false;
    }
    SleepMs(1);
  }
  return true;
}

// Single-threaded fixed-op throughput. Multi-thread timed windows are
// bimodal on a single-core host (whole quanta of uncontended fast-path vs
// handoff thrash, a ~5x spread between back-to-back runs), so the
// stock-vs-recovered comparison uses this deterministic shape; the hostile
// phase still runs real multi-thread contention.
double OpsPerSec(ShflLock& lock) {
  constexpr int kOps = 200'000;
  const std::uint64_t start = MonotonicNowNs();
  for (int i = 0; i < kOps; ++i) {
    lock.Lock();
    lock.Unlock();
  }
  const std::uint64_t elapsed = MonotonicNowNs() - start;
  return static_cast<double>(kOps) * 1e9 / static_cast<double>(elapsed);
}

double BestOf5(ShflLock& lock) {
  double best = 0.0;
  for (int i = 0; i < 5; ++i) {
    best = std::max(best, OpsPerSec(lock));
  }
  return best;
}

#if CONCORD_HOOK_BUDGETS

// Hostile profiling tap: ~150us burned inside every lock release, inflating
// the critical section two orders of magnitude past its budget.
void HostileSlowReleaseTap(void*, std::uint64_t) { BurnNs(150'000); }

TEST_F(ChaosTest, SlowReleaseTapQuarantinedAndThroughputRecovers) {
  Concord& concord = Concord::Global();
  const std::uint64_t id = concord.RegisterShflLock(lock_, "chaos", "t");
  ASSERT_TRUE(concord.EnableProfiling(id).ok());
  ContainmentRegistry& registry = ContainmentRegistry::Global();
  ContainmentConfig config;
  config.quarantine_threshold = 1;
  config.auto_reattach = false;  // keep the hostile policy off once contained
  registry.SetConfig(config);

  constexpr int kThreads = 4;
  const double stock = BestOf5(lock_);
  ASSERT_GT(stock, 0.0);

  ShflHooks hooks;
  hooks.lock_release = HostileSlowReleaseTap;
  hooks.hook_budget_ns = 20'000;  // 20us budget vs ~150us actual
  hooks.hook_budget_trip = 8;
  ASSERT_TRUE(concord.AttachNative(id, hooks, "hostile-slow-release").ok());

  // Hammer under the hostile tap until containment quarantines it.
  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        lock_.Lock();
        lock_.Unlock();
      }
    });
  }
  const bool quarantined = Await([&] {
    registry.Poll();
    return registry.HealthOf(id) == PolicyHealth::kQuarantined;
  });
  stop.store(true);
  for (std::thread& worker : workers) {
    worker.join();
  }
  ASSERT_TRUE(quarantined);

  const ShardedLockProfileStats* stats = concord.Stats(id);
  ASSERT_NE(stats, nullptr);
  EXPECT_GE(stats->BudgetOverruns(), 8u);
  EXPECT_GE(stats->Quarantines(), 1u);

  // With the tap off the lock, throughput returns to >= 90% of stock. The
  // post-quarantine hook table is identical to the pre-attach one
  // (profiling-only), so a containment failure shows up as a ~50x gap (the
  // 150us tap still firing), not a near-miss; values near the bar are
  // single-core sampling noise, so let the recovered side take extra
  // samples to converge on its true max.
  double recovered = BestOf5(lock_);
  for (int i = 0; i < 10 && recovered < stock * 0.9; ++i) {
    recovered = std::max(recovered, OpsPerSec(lock_));
  }
  EXPECT_GE(recovered, stock * 0.9)
      << "stock=" << stock << " ops/s, recovered=" << recovered << " ops/s";
}

// Hostile parking decision: burns time on every consult and never lets a
// waiter park, defeating the blocking lock's whole point.
bool HostileNeverPark(void*, const ShflWaiterView&, std::uint32_t) {
  BurnNs(30'000);
  return false;
}

TEST_F(ChaosTest, NeverParkScheduleWaiterContainedWithZeroLostWakeups) {
  Concord& concord = Concord::Global();
  lock_.SetBlocking(true);
  const std::uint64_t id = concord.RegisterShflLock(lock_, "chaos", "t");
  ContainmentRegistry& registry = ContainmentRegistry::Global();
  ContainmentConfig config;
  config.quarantine_threshold = 1;
  config.auto_reattach = false;
  registry.SetConfig(config);

  ShflHooks hooks;
  hooks.schedule_waiter = HostileNeverPark;
  hooks.hook_budget_ns = 5'000;
  hooks.hook_budget_trip = 4;
  ASSERT_TRUE(concord.AttachNative(id, hooks, "hostile-never-park").ok());

  // Hammer with ~10us critical sections (so the queue stays populated and
  // waiters consult schedule_waiter) until containment pulls the hook. Every
  // join below doubles as the zero-lost-wakeups assertion — a waiter left
  // parked forever would hang the join and trip the Await deadline first.
  constexpr int kThreads = 4;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> completed{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        lock_.Lock();
        BurnNs(10'000);
        lock_.Unlock();
        completed.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  const bool quarantined = Await([&] {
    registry.Poll();
    return registry.HealthOf(id) == PolicyHealth::kQuarantined;
  });
  stop.store(true);
  for (std::thread& worker : workers) {
    worker.join();
  }
  ASSERT_TRUE(quarantined);
  EXPECT_GT(completed.load(), 0u);  // progress through the hostile hook
  // The blocking regime still works after containment: park/unpark cycles
  // complete with the stock spin-then-park decision.
  for (int i = 0; i < 100; ++i) {
    ShflGuard guard(lock_);
  }
}

#endif  // CONCORD_HOOK_BUDGETS

// Hostile (in intent) grouping decision: boosts only a task class nobody
// runs with, so the policy never helps anyone — and under the manufactured
// starvation below, the watchdog quarantines it via containment.
bool StarvingCmpNode(void*, const ShflWaiterView&, const ShflWaiterView& curr) {
  return curr.task_class == 1;
}

TEST_F(ChaosTest, StarvingCmpNodeQuarantinedByWatchdogWithBackoff) {
  Concord& concord = Concord::Global();
  const std::uint64_t id = concord.RegisterShflLock(lock_, "chaos", "t");
  ContainmentRegistry& registry = ContainmentRegistry::Global();
  ContainmentConfig config;
  config.quarantine_threshold = 1;
  config.initial_backoff_ns = 50'000'000;  // 50ms, real clock
  config.probation_success_ns = 50'000'000;
  registry.SetConfig(config);

  ShflHooks hooks;
  hooks.cmp_node = StarvingCmpNode;
  ASSERT_TRUE(concord.AttachNative(id, hooks, "starving-cmp-node").ok());

  WatchdogConfig wconfig;
  wconfig.max_wait_ns = 10'000'000;  // 10ms is starvation-grade here
  wconfig.auto_detach = true;
  wconfig.use_containment = true;
  FairnessWatchdog watchdog(wconfig);
  ASSERT_TRUE(watchdog.Watch(id).ok());

  // Manufacture a starved waiter deterministically: hold the lock for 30ms
  // while one victim waits.
  std::atomic<bool> acquired{false};
  lock_.Lock();
  std::thread victim([&] {
    lock_.Lock();
    acquired.store(true);
    lock_.Unlock();
  });
  const ShardedLockProfileStats* stats = concord.Stats(id);
  ASSERT_TRUE(Await([&] { return stats->Contentions() >= 1; }));
  SleepMs(30);
  lock_.Unlock();
  victim.join();
  ASSERT_TRUE(acquired.load());

  ASSERT_FALSE(watchdog.CheckOnce().empty());
  ASSERT_EQ(registry.HealthOf(id), PolicyHealth::kQuarantined);
  bool saw_violation = false;
  for (const ContainmentEvent& event : registry.events()) {
    if (event.lock_id == id &&
        event.fault == ContainmentFault::kFairnessViolation &&
        event.action == ContainmentAction::kQuarantined) {
      saw_violation = true;
    }
  }
  EXPECT_TRUE(saw_violation);

  // Backoff discipline on the real clock: no re-attach before the 50ms
  // backoff elapses, probation after it.
  registry.Poll();
  EXPECT_EQ(registry.HealthOf(id), PolicyHealth::kQuarantined);
  EXPECT_TRUE(Await([&] {
    registry.Poll();
    return registry.HealthOf(id) != PolicyHealth::kQuarantined;
  }));
  const PolicyHealth after = registry.HealthOf(id);
  EXPECT_TRUE(after == PolicyHealth::kProbation || after == PolicyHealth::kActive);
  // The policy really is back on the lock.
  bool has_policy = false;
  for (const auto& info : concord.ListLocks()) {
    if (info.lock_id == id) {
      has_policy = info.has_policy;
    }
  }
  EXPECT_TRUE(has_policy);
}

#if CONCORD_FAULT_INJECTION

// Benign parking policy that parks every waiter on first consult — makes
// park/unpark traffic deterministic regardless of core count (organic
// spin-then-park escalation is timing-dependent on a single-core host).
bool AlwaysPark(void*, const ShflWaiterView&, std::uint32_t) { return true; }

TEST_F(ChaosTest, DelayedWakeupFaultDelaysButNeverLosesWakeups) {
  Concord& concord = Concord::Global();
  lock_.SetBlocking(true);
  const std::uint64_t id = concord.RegisterShflLock(lock_, "chaos", "t");
  ShflHooks hooks;
  hooks.schedule_waiter = AlwaysPark;
  ASSERT_TRUE(concord.AttachNative(id, hooks, "always-park").ok());

  // Every unpark stalls 2ms before delivering: wakeups arrive late, but
  // they must all arrive.
  ASSERT_TRUE(
      FaultRegistry::Global().ArmFromDirective("park.delayed_wake=always@2000000"));

  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 25;
  std::atomic<std::uint64_t> completed{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        lock_.Lock();
        // Sleep while holding the lock: on a single-core host this is the
        // only reliable way to force other threads to arrive, queue, and
        // park while the lock is held.
        timespec hold{0, 300'000};
        nanosleep(&hold, nullptr);
        completed.fetch_add(1, std::memory_order_relaxed);
        lock_.Unlock();
      }
    });
  }
  for (std::thread& worker : workers) {
    worker.join();
  }
  EXPECT_EQ(completed.load(),
            static_cast<std::uint64_t>(kThreads) * kOpsPerThread);
  EXPECT_GT(lock_.parks(), 0u);
  EXPECT_GT(FaultRegistry::Global().Fires("park.delayed_wake"), 0u);
  FaultRegistry::Global().DisarmAll();
}

TEST_F(ChaosTest, HelperFaultStormUnderContentionIsContained) {
  Concord& concord = Concord::Global();
  const std::uint64_t id = concord.RegisterShflLock(lock_, "chaos", "t");
  ContainmentRegistry& registry = ContainmentRegistry::Global();
  ContainmentConfig config;
  config.quarantine_threshold = 2;  // SUSPECT first, then quarantine
  config.auto_reattach = false;
  registry.SetConfig(config);

  // A real BPF policy whose taps hit map helpers on every lock op, with a
  // 1-in-4 seeded map-lookup fault storm underneath it.
  auto policy = MakeBpfProfilerPolicy();
  ASSERT_TRUE(policy.ok());
  ASSERT_TRUE(concord.Attach(id, std::move(policy->spec)).ok());
  ASSERT_TRUE(FaultRegistry::Global().ArmFromDirective("bpf.map_lookup=1in4:7"));

  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 200;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        lock_.Lock();
        lock_.Unlock();
      }
    });
  }
  for (std::thread& worker : workers) {
    worker.join();
  }
  FaultRegistry::Global().DisarmAll();

  // Every op completed despite the storm, and the harvested dispatch faults
  // moved the policy off kActive (one trip harvest = one fault = SUSPECT
  // with the default-style threshold of 2; a continuing storm would finish
  // the job on the next harvest).
  registry.Poll();
#if CONCORD_HOOK_BUDGETS
  EXPECT_NE(registry.HealthOf(id), PolicyHealth::kActive);
#endif
}

#endif  // CONCORD_FAULT_INJECTION

}  // namespace
}  // namespace concord
