// End-to-end scenarios: kernel-sim subsystems + Concord policies together,
// including adversarial policies that try to break fairness/liveness and a
// full Table-1 attachment (programs on every hook at once).

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "src/base/rng.h"
#include "src/base/time.h"
#include "src/bpf/assembler.h"
#include "src/concord/concord.h"
#include "src/concord/policies.h"
#include "src/kernelsim/address_space.h"
#include "src/kernelsim/vfs.h"
#include "src/sync/bravo.h"

namespace concord {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  void TearDown() override { Concord::Global().ResetForTest(); }
};

TEST_F(IntegrationTest, VfsRenameWithInheritancePolicyOnDirClass) {
  static VfsNamespace ns(4);
  Concord& concord = Concord::Global();
  for (std::uint32_t d = 0; d < ns.num_dirs(); ++d) {
    concord.RegisterShflLock(ns.dir_lock(d), "dir" + std::to_string(d), "vfs_dir");
  }
  concord.RegisterShflLock(ns.rename_lock(), "rename_lock", "vfs");

  auto policy = MakeLockInheritancePolicy();
  ASSERT_TRUE(policy.ok());
  ASSERT_TRUE(concord.AttachBySelector("class:vfs_dir", policy->spec).ok());

  constexpr int kThreads = 4;
  constexpr int kIters = 400;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      Xoshiro256 rng(t + 11);
      for (int i = 0; i < kIters; ++i) {
        const std::string name = "x" + std::to_string(t) + "_" + std::to_string(i);
        const auto src = static_cast<std::uint32_t>(rng.NextBounded(4));
        const auto dst = static_cast<std::uint32_t>(rng.NextBounded(4));
        ASSERT_TRUE(ns.Create(src, name, i).ok());
        ASSERT_TRUE(ns.Rename(src, name, dst, name + "_m").ok());
        ASSERT_TRUE(ns.Unlink(dst, name + "_m").ok());
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(ns.total_entries(), 0u);
  for (std::uint32_t d = 0; d < ns.num_dirs(); ++d) {
    EXPECT_NE(ns.dir_lock(d).CurrentHooks(), nullptr);
  }
}

TEST_F(IntegrationTest, AddressSpaceWithLiveRwModeSwitching) {
  static AddressSpace<BravoLock<NeutralRwLock>> aspace;
  Concord& concord = Concord::Global();
  const std::uint64_t id =
      concord.RegisterRwLock(aspace.mmap_sem(), "mmap_sem", "vm");
  auto policy = MakeRwSwitchPolicy(RwMode::kNeutral);
  ASSERT_TRUE(policy.ok());
  auto knob = policy->knobs;
  ASSERT_TRUE(concord.Attach(id, std::move(policy->spec)).ok());

  auto run_faults = [&] {
    const std::uint64_t addr = aspace.Mmap(64 * kPageSize);
    std::vector<std::thread> threads;
    for (int t = 0; t < 3; ++t) {
      threads.emplace_back([&aspace2 = aspace, addr] {
        for (std::uint64_t p = 0; p < 64; ++p) {
          ASSERT_TRUE(aspace2.HandlePageFault(addr + p * kPageSize).ok());
        }
      });
    }
    for (auto& thread : threads) {
      thread.join();
    }
    ASSERT_TRUE(aspace.Munmap(addr).ok());
  };

  // Phase 1: neutral.
  run_faults();
  const std::uint64_t fast_before = aspace.mmap_sem().fast_reads();
  EXPECT_EQ(fast_before, 0u);

  // Phase 2: reader bias — fault path must hit the BRAVO fast path.
  ASSERT_TRUE(knob->UpdateTyped(std::uint32_t{0},
                                static_cast<std::uint64_t>(RwMode::kReaderBias))
                  .ok());
  run_faults();
  EXPECT_GT(aspace.mmap_sem().fast_reads(), 0u);

  // Phase 3: writer-only — still correct, zero new fast reads.
  const std::uint64_t fast_mid = aspace.mmap_sem().fast_reads();
  ASSERT_TRUE(knob->UpdateTyped(std::uint32_t{0},
                                static_cast<std::uint64_t>(RwMode::kWriterOnly))
                  .ok());
  run_faults();
  EXPECT_EQ(aspace.mmap_sem().fast_reads(), fast_mid);
}

// --- adversarial policies ---------------------------------------------------

TEST_F(IntegrationTest, AlwaysBoostPolicyCannotBreakLiveness) {
  // cmp_node returning 1 for everyone: maximal reordering pressure. The
  // shuffle-round budget and queue-integrity checks must keep the lock live
  // and exact.
  static ShflLock lock;
  Concord& concord = Concord::Global();
  const std::uint64_t id = concord.RegisterShflLock(lock, "adv", "t");

  auto program = AssembleProgram("always_yes", "mov r0, 1\nexit\n",
                                 &DescriptorFor(HookKind::kCmpNode));
  ASSERT_TRUE(program.ok());
  PolicySpec spec;
  spec.name = "always_boost";
  spec.max_shuffle_rounds = 4;  // tight starvation bound
  ASSERT_TRUE(spec.AddProgram(HookKind::kCmpNode, std::move(*program)).ok());
  ASSERT_TRUE(concord.Attach(id, std::move(spec)).ok());

  std::uint64_t counter = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 4000; ++i) {
        ShflGuard guard(lock);
        counter = counter + 1;
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(counter, 16'000u);
}

TEST_F(IntegrationTest, AlwaysParkPolicyStillMakesProgress) {
  static ShflLock lock;
  lock.SetBlocking(true);
  Concord& concord = Concord::Global();
  const std::uint64_t id = concord.RegisterShflLock(lock, "park", "t");

  auto program = AssembleProgram("always_park", "mov r0, 1\nexit\n",
                                 &DescriptorFor(HookKind::kScheduleWaiter));
  ASSERT_TRUE(program.ok());
  PolicySpec spec;
  spec.name = "always_park";
  ASSERT_TRUE(spec.AddProgram(HookKind::kScheduleWaiter, std::move(*program)).ok());
  ASSERT_TRUE(concord.Attach(id, std::move(spec)).ok());

  std::uint64_t counter = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 1500; ++i) {
        ShflGuard guard(lock);
        counter = counter + 1;
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(counter, 6'000u);
  lock.SetBlocking(false);
}

TEST_F(IntegrationTest, Table1FullAttachmentAllHooksLive) {
  // Programs on every Table-1 hook at once: cmp_node + skip_shuffle +
  // schedule_waiter + the four profiling taps counting into a per-CPU map.
  static ShflLock lock;
  lock.SetBlocking(true);
  Concord& concord = Concord::Global();
  const std::uint64_t id = concord.RegisterShflLock(lock, "full", "t");

  auto numa = MakeNumaGroupingPolicy();
  ASSERT_TRUE(numa.ok());
  auto guard_policy = MakeShuffleFairnessGuard();
  ASSERT_TRUE(guard_policy.ok());
  auto parking = MakeAdaptiveParkingPolicy();
  ASSERT_TRUE(parking.ok());
  auto profiler = MakeBpfProfilerPolicy();
  ASSERT_TRUE(profiler.ok());
  auto counters = profiler->counters;

  PolicySpec all;
  all.name = "table1_full";
  auto merge = [&all](PolicySpec& from) {
    for (int k = 0; k < kNumHookKinds; ++k) {
      for (Program& program : from.chains[k].programs) {
        all.chains[k].programs.push_back(std::move(program));
      }
    }
    for (auto& map : from.maps) {
      all.maps.push_back(map);
    }
  };
  merge(numa->spec);
  merge(guard_policy->spec);
  merge(parking->spec);
  merge(profiler->spec);
  ASSERT_TRUE(concord.Attach(id, std::move(all)).ok());

  std::uint64_t counter = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 2000; ++i) {
        ShflGuard guard(lock);
        counter = counter + 1;
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(counter, 8'000u);
  // The BPF taps counted every acquisition and release.
  EXPECT_EQ(counters->SumU64(0), 8'000u);  // lock_acquire
  EXPECT_EQ(counters->SumU64(3), 8'000u);  // lock_release
  EXPECT_EQ(counters->SumU64(2), 8'000u);  // lock_acquired
  lock.SetBlocking(false);
}

}  // namespace
}  // namespace concord
