// Cross-process harness glue for the multi-process fleet-agent tests.
//
// The multiproc test binary is its own worker image: main() checks
// CONCORD_MP_WORKER before InitGoogleTest and, when set, runs
// RunWorkerMain() instead of the test suite. SpawnWorker() re-execs
// /proc/self/exe with the worker env vars set, so every worker is a real
// forked process with its own Concord facade, profiler, control-plane
// socket, and shm exporter — no test state is shared across the fork.
//
// The worker's load is synthetic but steered by its *real* attachment
// state, which is what makes fleet convergence observable end-to-end:
//
//   no policy attached            -> pathological windows, 4ms waits
//   fleet policy attached         -> same contention shape, 500us waits
//   attached + degrade file exists -> 64ms waits (a policy that certifies
//                                     clean but is catastrophic in
//                                     production — the rollback trigger)
//
// Alongside the steered lock the worker runs a real kernelsim
// GlobalLockHashTable workload on a second profiled lock, so the exported
// segments always carry more than one lock name and the agent's per-name
// merge is exercised by genuinely uncontended traffic too.

#ifndef TESTS_INTEGRATION_MULTIPROC_UTIL_H_
#define TESTS_INTEGRATION_MULTIPROC_UTIL_H_

#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "src/base/json.h"
#include "src/base/rng.h"
#include "src/base/status.h"
#include "src/concord/agent/worker_export.h"
#include "src/concord/concord.h"
#include "src/concord/rpc/client.h"
#include "src/concord/rpc/server.h"
#include "src/kernelsim/hashtable.h"
#include "src/sync/shfllock.h"

namespace concord {
namespace multiproc {

// Worker-mode environment contract (set by SpawnWorker, read by main()).
inline constexpr char kEnvWorker[] = "CONCORD_MP_WORKER";
inline constexpr char kEnvShm[] = "CONCORD_MP_SHM";
inline constexpr char kEnvSocket[] = "CONCORD_MP_SOCKET";
inline constexpr char kEnvAgent[] = "CONCORD_MP_AGENT";
inline constexpr char kEnvDegrade[] = "CONCORD_MP_DEGRADE";
inline constexpr char kEnvSeed[] = "CONCORD_MP_SEED";

// The steered lock every worker profiles (the fleet key the tests assert
// on) and the kernelsim-workload lock that rides along.
inline constexpr char kHotLockName[] = "mp_hot";
inline constexpr char kTableLockName[] = "mp_table";

// Wait-time steering (see file comment). The plain/improved gap is 8x so
// the canary verdict clears the promote margin even if the first canary
// window mixes in a few pre-attachment samples; the degraded value is 16x
// *worse* than plain so a regression can never score as noise.
inline constexpr std::uint64_t kPlainWaitNs = 4'000'000;
inline constexpr std::uint64_t kDegradedWaitNs = 64'000'000;
inline constexpr std::uint64_t kImprovedWaitNs = 500'000;

// Workers self-destruct after this long even if the parent dies without
// delivering SIGTERM, so a crashed test run cannot leak spinning processes.
inline constexpr std::chrono::seconds kWorkerSelfDestruct{120};

inline volatile std::sig_atomic_t g_worker_stop = 0;
inline void WorkerStopHandler(int) { g_worker_stop = 1; }

inline bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

// The forked worker's whole life: profile two locks, serve a control
// socket, export to shm, register with the agent, then pump steered
// windows until told to stop. Exit codes: 2 = setup failure, 3 = could not
// register with the agent.
inline int RunWorkerMain() {
  const char* shm = std::getenv(kEnvShm);
  const char* socket = std::getenv(kEnvSocket);
  const char* agent = std::getenv(kEnvAgent);
  const char* degrade = std::getenv(kEnvDegrade);
  const char* seed_text = std::getenv(kEnvSeed);
  if (shm == nullptr || socket == nullptr || agent == nullptr) {
    std::fprintf(stderr, "multiproc worker: missing CONCORD_MP_* env\n");
    return 2;
  }
  std::signal(SIGTERM, WorkerStopHandler);
  std::signal(SIGINT, WorkerStopHandler);

  Concord& concord = Concord::Global();
  static ShflLock hot_lock;
  const std::uint64_t hot_id =
      concord.RegisterShflLock(hot_lock, kHotLockName, "mp");
  if (!concord.EnableProfiling(hot_id).ok()) {
    return 2;
  }
  GlobalLockHashTable<ShflLock> table(/*bucket_bits=*/8);
  const std::uint64_t table_id =
      concord.RegisterShflLock(table.global_lock(), kTableLockName, "mp");
  if (!concord.EnableProfiling(table_id).ok()) {
    return 2;
  }

  RpcServerOptions server_options;
  server_options.socket_path = socket;
  RpcServer server(server_options);
  if (!server.Start().ok()) {
    return 2;
  }

  ShmExporterOptions exporter_options;
  exporter_options.shm_path = shm;
  auto exporter = ShmExporter::Create(exporter_options);
  if (!exporter.ok() || !(*exporter)->Start().ok()) {
    server.Stop();
    return 2;
  }

  const Status registered = RegisterWithAgent(
      agent, static_cast<std::uint64_t>(getpid()), shm, socket);
  if (!registered.ok()) {
    std::fprintf(stderr, "multiproc worker: register failed: %s\n",
                 registered.ToString().c_str());
    (*exporter)->Stop();
    server.Stop();
    return 3;
  }

  Xoshiro256 rng(seed_text != nullptr
                     ? std::strtoull(seed_text, nullptr, 10)
                     : 1);
  LockProfileStats& shard = concord.MutableStats(hot_id)->ControlShard();
  const auto deadline = std::chrono::steady_clock::now() + kWorkerSelfDestruct;
  while (g_worker_stop == 0 && std::chrono::steady_clock::now() < deadline) {
    // One synthetic pathological window slice on mp_hot, wait times steered
    // by what the agent actually attached to *this process*.
    std::uint64_t wait_ns = kPlainWaitNs;
    if (!concord.AttachedPolicyName(hot_id).empty()) {
      wait_ns = (degrade != nullptr && FileExists(degrade)) ? kDegradedWaitNs
                                                            : kImprovedWaitNs;
    }
    shard.acquisitions.fetch_add(100, std::memory_order_relaxed);
    shard.contentions.fetch_add(96, std::memory_order_relaxed);
    for (int i = 0; i < 96; ++i) {
      shard.wait_ns.Record(wait_ns);
    }
    // Real (uncontended) kernelsim traffic on mp_table.
    for (int i = 0; i < 16; ++i) {
      const std::uint64_t key = rng.NextBounded(512);
      table.Insert(key, key * 2);
      std::uint64_t value = 0;
      table.Lookup(key, &value);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }

  LeaveAgent(agent, static_cast<std::uint64_t>(getpid()));
  (*exporter)->Stop();
  server.Stop();
  return 0;
}

struct WorkerSpec {
  std::string shm_path;
  std::string control_socket;
  std::string agent_socket;
  std::string degrade_path;  // "" = no degrade trigger
  std::uint64_t seed = 1;
};

// fork + re-exec this binary in worker mode. Returns the child pid (or -1).
inline pid_t SpawnWorker(const WorkerSpec& spec) {
  const pid_t pid = ::fork();
  if (pid != 0) {
    return pid;
  }
  ::setenv(kEnvWorker, "1", 1);
  ::setenv(kEnvShm, spec.shm_path.c_str(), 1);
  ::setenv(kEnvSocket, spec.control_socket.c_str(), 1);
  ::setenv(kEnvAgent, spec.agent_socket.c_str(), 1);
  if (!spec.degrade_path.empty()) {
    ::setenv(kEnvDegrade, spec.degrade_path.c_str(), 1);
  }
  ::setenv(kEnvSeed, std::to_string(spec.seed).c_str(), 1);
  ::execl("/proc/self/exe", "multiproc_worker", static_cast<char*>(nullptr));
  ::_exit(127);
}

// Asks a worker (over its own control socket) which policy it holds on
// `lock_name`; "" when nothing is attached.
inline StatusOr<std::string> QueryAttachedPolicy(
    const std::string& control_socket, const std::string& lock_name) {
  RpcClientOptions options;
  options.socket_path = control_socket;
  options.timeout_ms = 2'000;
  RpcClient client(options);
  auto response = client.Call("status", "", /*idempotent=*/true);
  if (!response.ok()) {
    return response.status();
  }
  if (!response->ok) {
    return InternalError("worker status rejected: " + response->error_message);
  }
  auto doc = ParseJson(response->result);
  if (!doc.ok()) {
    return doc.status();
  }
  const JsonValue* locks = doc->Find("locks");
  if (locks == nullptr || !locks->IsArray()) {
    return InternalError("worker status: no locks array");
  }
  for (const JsonValue& lock : locks->array) {
    const JsonValue* name = lock.Find("name");
    if (name == nullptr || !name->IsString() ||
        name->string_value != lock_name) {
      continue;
    }
    const JsonValue* policy = lock.Find("policy");
    if (policy != nullptr && policy->IsString()) {
      return policy->string_value;
    }
    return std::string();
  }
  return NotFoundError("lock not in worker status: " + lock_name);
}

}  // namespace multiproc
}  // namespace concord

#endif  // TESTS_INTEGRATION_MULTIPROC_UTIL_H_
