// RpcChaos: the control-plane socket under hostile conditions. The contract
// being proven is the robustness story of docs/OPERATIONS.md — every rpc.*
// fault point armed at once, hanging clients, killed clients and connection
// floods must leave (a) every client call terminating with a clean result or
// error, (b) the server answering fresh requests afterwards, and (c) the
// lock data path making normal progress throughout (bench/a12_rpc measures
// the p99 shift precisely; here the guard is that throughput does not
// collapse).

#include <gtest/gtest.h>

#include <errno.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <time.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "src/base/fault.h"
#include "src/base/time.h"
#include "src/concord/concord.h"
#include "src/concord/rpc/client.h"
#include "src/concord/rpc/server.h"
#include "src/sync/shfllock.h"

namespace concord {
namespace {

void SleepMs(std::uint64_t ms) {
  timespec ts;
  ts.tv_sec = static_cast<time_t>(ms / 1000);
  ts.tv_nsec = static_cast<long>((ms % 1000) * 1'000'000);
  nanosleep(&ts, nullptr);
}

class RpcChaosTest : public ::testing::Test {
 protected:
  void TearDown() override {
    Concord::Global().ResetForTest();
#if CONCORD_FAULT_INJECTION
    FaultRegistry::Global().DisarmAll();
#endif
  }

  std::string SocketPath() const {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    return "/tmp/concord_rpcchaos_" + std::to_string(getpid()) + "_" +
           info->name() + ".sock";
  }

  RpcClientOptions FastClientOptions() const {
    RpcClientOptions options;
    options.socket_path = SocketPath();
    options.timeout_ms = 1'000;
    options.max_attempts = 5;
    options.backoff_initial_ms = 2;
    options.backoff_max_ms = 20;
    return options;
  }

  // Raw connect for misbehaving-client roles.
  int RawConnect() {
    const int fd = socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
      return -1;
    }
    sockaddr_un addr;
    memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    const std::string path = SocketPath();
    memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      close(fd);
      return -1;
    }
    return fd;
  }

  ShflLock lock_;
};

// Contended workload on one ShflLock; returns acquisitions completed.
std::uint64_t RunContendedWindow(ShflLock& lock, int threads,
                                 std::uint64_t window_ms) {
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> acquisitions{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        lock.Lock();
        BurnNs(1'000);
        lock.Unlock();
        acquisitions.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  SleepMs(window_ms);
  stop.store(true);
  for (auto& worker : workers) {
    worker.join();
  }
  return acquisitions.load();
}

#if CONCORD_FAULT_INJECTION

TEST_F(RpcChaosTest, EveryRpcFaultArmedClientsAlwaysTerminate) {
  FaultRegistry& faults = FaultRegistry::Global();
  ASSERT_TRUE(faults.ArmFromDirective("rpc.accept=1in3:7"));
  ASSERT_TRUE(faults.ArmFromDirective("rpc.read=1in4:9"));
  ASSERT_TRUE(faults.ArmFromDirective("rpc.write=1in5:11"));
  ASSERT_TRUE(faults.ArmFromDirective("rpc.handler=1in3:13"));

  RpcServerOptions options;
  options.socket_path = SocketPath();
  options.read_timeout_ms = 300;
  RpcServer server(options);
  ASSERT_TRUE(server.Start().ok());

  // Under a ~1/3 accept-drop and random read/write/handler failures, retried
  // idempotent calls still terminate — many succeed, none hang, and a
  // failure is a classified status, never a crash.
  RpcClient client(FastClientOptions());
  int successes = 0;
  int clean_failures = 0;
  for (int i = 0; i < 60; ++i) {
    auto response = client.Call("status", "", /*idempotent=*/true);
    if (response.ok() && response->ok) {
      ++successes;
    } else {
      ++clean_failures;
      if (!response.ok()) {
        EXPECT_FALSE(response.status().ok());
      } else {
        // Server-side handler fault surfaces as the internal wire code.
        EXPECT_EQ(response->error_code, "internal");
      }
    }
  }
  EXPECT_GT(successes, 0) << "retries should ride out injected faults";
  EXPECT_GT(server.stats().faults_injected, 0u);

  // With faults disarmed the path is clean again — same server, no restart.
  faults.DisarmAll();
  auto healthy = client.Call("status", "", /*idempotent=*/true);
  ASSERT_TRUE(healthy.ok()) << healthy.status().ToString();
  EXPECT_TRUE(healthy->ok);

  server.Stop();
}

TEST_F(RpcChaosTest, FaultsCanBeArmedOverTheSocketItself) {
  RpcServerOptions options;
  options.socket_path = SocketPath();
  RpcServer server(options);
  ASSERT_TRUE(server.Start().ok());

  RpcClient client(FastClientOptions());
  auto armed = client.Call("faults.arm", R"({"directive":"rpc.handler=nth1"})",
                           /*idempotent=*/false);
  ASSERT_TRUE(armed.ok());
  ASSERT_TRUE(armed->ok) << armed->error_message;

  // Arming resets the point's counters, so the very next dispatched request
  // is evaluation 1 and hits the nth1 handler fault.
  auto hit = client.CallOnce("status", "");
  ASSERT_TRUE(hit.ok());
  EXPECT_FALSE(hit->ok);
  EXPECT_EQ(hit->error_code, "internal");

  auto after = client.CallOnce("status", "");
  ASSERT_TRUE(after.ok());
  EXPECT_TRUE(after->ok);

  server.Stop();
}

#endif  // CONCORD_FAULT_INJECTION

TEST_F(RpcChaosTest, HangingKilledAndGarbageClientsDontWedgeTheServer) {
  RpcServerOptions options;
  options.socket_path = SocketPath();
  options.workers = 2;
  options.read_timeout_ms = 150;
  RpcServer server(options);
  ASSERT_TRUE(server.Start().ok());

  // A rogue's gallery: connect-and-hang, partial frame then hang, garbage,
  // and kill-mid-request.
  std::vector<int> hangers;
  for (int i = 0; i < 3; ++i) {
    const int fd = RawConnect();
    ASSERT_GE(fd, 0);
    hangers.push_back(fd);
  }
  const int partial = RawConnect();
  ASSERT_GE(partial, 0);
  (void)send(partial, "{\"method\":\"stat", 15, MSG_NOSIGNAL);
  const int garbage = RawConnect();
  ASSERT_GE(garbage, 0);
  (void)send(garbage, "\x00\xff\x13garbage\n", 11, MSG_NOSIGNAL);
  const int killed = RawConnect();
  ASSERT_GE(killed, 0);
  (void)send(killed, "{\"method\":\"status\"}", 19, MSG_NOSIGNAL);
  close(killed);  // dies before finishing the frame

  // Give the timeouts a chance to reap the hangers, then demand service.
  SleepMs(400);
  RpcClient client(FastClientOptions());
  auto response = client.Call("status", "", /*idempotent=*/true);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_TRUE(response->ok) << response->error_code;

  for (const int fd : hangers) {
    close(fd);
  }
  close(partial);
  close(garbage);
  server.Stop();
}

TEST_F(RpcChaosTest, ConnectionFloodShedsAndRecovers) {
  RpcServerOptions options;
  options.socket_path = SocketPath();
  options.workers = 1;
  options.max_pending = 2;
  options.read_timeout_ms = 150;
  RpcServer server(options);
  ASSERT_TRUE(server.Start().ok());

  // Flood far past capacity from several threads at once. Every call must
  // terminate; outcomes are success, a retryable `busy` shed, or a transport
  // error from a connection the server dropped — never a hang.
  std::atomic<int> successes{0};
  std::atomic<int> sheds{0};
  std::atomic<int> transport_errors{0};
  std::vector<std::thread> flooders;
  for (int t = 0; t < 4; ++t) {
    flooders.emplace_back([&, t] {
      RpcClientOptions client_options = FastClientOptions();
      client_options.max_attempts = 1;  // raw pressure, no polite backoff
      client_options.jitter_seed = static_cast<std::uint64_t>(t + 1);
      RpcClient client(client_options);
      for (int i = 0; i < 25; ++i) {
        auto response = client.CallOnce("status", "");
        if (!response.ok()) {
          transport_errors.fetch_add(1);
        } else if (response->ok) {
          successes.fetch_add(1);
        } else if (response->error_code == "busy") {
          EXPECT_TRUE(response->retryable);
          sheds.fetch_add(1);
        }
      }
    });
  }
  for (auto& flooder : flooders) {
    flooder.join();
  }
  EXPECT_EQ(successes.load() + sheds.load() + transport_errors.load(), 100);
  EXPECT_GT(successes.load(), 0);

  // After the flood the server is healthy and the counters saw the shed.
  RpcClient client(FastClientOptions());
  auto response = client.Call("status", "", /*idempotent=*/true);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_TRUE(response->ok);
  server.Stop();
}

TEST_F(RpcChaosTest, DataPathKeepsProgressUnderRpcChaos) {
  const std::uint64_t id =
      Concord::Global().RegisterShflLock(lock_, "hot", "demo");
  constexpr int kThreads = 4;
  constexpr std::uint64_t kWindowMs = 400;

  // Baseline window: no RPC server at all.
  const std::uint64_t baseline =
      RunContendedWindow(lock_, kThreads, kWindowMs);
  ASSERT_GT(baseline, 0u);

  // Chaos window: server up, every rpc.* fault armed, a status-polling
  // client and a misbehaving client hammering the socket the whole time.
  RpcServerOptions options;
  options.socket_path = SocketPath();
  options.read_timeout_ms = 100;
  RpcServer server(options);
  ASSERT_TRUE(server.Start().ok());
#if CONCORD_FAULT_INJECTION
  ASSERT_TRUE(FaultRegistry::Global().ArmFromDirective("rpc.accept=1in4:3"));
  ASSERT_TRUE(FaultRegistry::Global().ArmFromDirective("rpc.read=1in4:5"));
  ASSERT_TRUE(FaultRegistry::Global().ArmFromDirective("rpc.write=1in4:7"));
  ASSERT_TRUE(FaultRegistry::Global().ArmFromDirective("rpc.handler=1in4:9"));
#endif

  std::atomic<bool> stop_clients{false};
  std::thread poller([&] {
    RpcClient client(FastClientOptions());
    while (!stop_clients.load(std::memory_order_relaxed)) {
      (void)client.CallOnce("status", "");
      SleepMs(5);
    }
  });
  std::thread misbehaver([&] {
    while (!stop_clients.load(std::memory_order_relaxed)) {
      const int fd = RawConnect();
      if (fd >= 0) {
        (void)send(fd, "][[[not a frame\n", 16, MSG_NOSIGNAL);
        close(fd);
      }
      SleepMs(3);
    }
  });

  const std::uint64_t under_chaos =
      RunContendedWindow(lock_, kThreads, kWindowMs);
  stop_clients.store(true);
  poller.join();
  misbehaver.join();
  server.Stop();

  // Control-plane chaos must not collapse data-path throughput. The precise
  // p99 bound lives in bench/a12_rpc (2% criterion); here the guard is
  // coarse enough to be CI-stable while still catching real isolation
  // failures (a worker taking a lock's queue mutex would crater this).
  EXPECT_GT(under_chaos, baseline / 2)
      << "baseline=" << baseline << " under_chaos=" << under_chaos;

  (void)Concord::Global().Unregister(id);
}

}  // namespace
}  // namespace concord
