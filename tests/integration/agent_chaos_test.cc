// Chaos coverage for the multi-process fleet agent (src/concord/agent/
// fleet.h), driven entirely in-process for determinism: a real worker-side
// RPC server and shm exporter feed a manually-ticked FleetAgent, and every
// degradation the tentpole promises — dead pid, stale segment, corrupt or
// truncated segment, injected agent.shm_map / agent.merge faults — must end
// in a clean eviction or a lost tick, never a crash, a wedged loop, or a
// half-applied fleet policy.

#include <gtest/gtest.h>

#include <fcntl.h>
#include <unistd.h>

#include <cstddef>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "src/base/fault.h"
#include "src/base/time.h"
#include "src/concord/agent/fleet.h"
#include "src/concord/agent/shm_segment.h"
#include "src/concord/agent/worker_export.h"
#include "src/concord/concord.h"
#include "src/concord/rpc/server.h"
#include "src/sync/shfllock.h"

namespace concord {
namespace {

// The pathological-regime candidate pushed during canaries: the shipped
// log2-backoff skip_shuffle policy, inlined so the test has no file
// dependencies.
constexpr char kBackoffPolicy[] =
    "; hook: skip_shuffle\n"
    "  ldxdw r2, [r1+0]\n"
    "  mov   r3, 0\n"
    "scan:\n"
    "  jle   r2, 1, done\n"
    "  rsh   r2, 1\n"
    "  add   r3, 1\n"
    "  jlt   r3, 64, scan\n"
    "done:\n"
    "  jlt   r3, 10, skip\n"
    "  mov   r0, 0\n"
    "  exit\n"
    "skip:\n"
    "  mov   r0, 1\n"
    "  exit\n";

class AgentChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FleetAgent::Global().ResetForTest();
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    const std::string stem = ::testing::TempDir() + "agent_chaos_" +
                             std::to_string(getpid()) + "_" + info->name();
    shm_path_ = stem + ".shm";
    socket_path_ = "/tmp/agent_chaos_" + std::to_string(getpid()) + "_" +
                   info->name() + ".sock";
    std::remove(shm_path_.c_str());

    FleetAgentConfig config;
    config.hysteresis_windows = 1;
    config.canary_windows = 2;
    config.min_window_acquisitions = 10;
    config.cooldown_windows = 0;
    config.evict_after_stale_ticks = 3;
    ASSERT_TRUE(FleetAgent::Global().Configure(config).ok());
  }

  void TearDown() override {
    FleetAgent::Global().ResetForTest();
    if (server_ != nullptr) {
      server_->Stop();
    }
    exporter_.reset();
    Concord::Global().ResetForTest();
#if CONCORD_FAULT_INJECTION
    FaultRegistry::Global().DisarmAll();
#endif
    std::remove(shm_path_.c_str());
  }

  // A full in-process worker: one profiled lock, a control-plane RPC server
  // the agent can push policies to, and an shm exporter the agent samples.
  void StartWorker() {
    lock_id_ = Concord::Global().RegisterShflLock(lock_, "fleet_hot", "fleet");
    ASSERT_TRUE(Concord::Global().EnableProfiling(lock_id_).ok());

    RpcServerOptions server_options;
    server_options.socket_path = socket_path_;
    server_ = std::make_unique<RpcServer>(server_options);
    ASSERT_TRUE(server_->Start().ok());

    ShmExporterOptions exporter_options;
    exporter_options.shm_path = shm_path_;
    auto exporter = ShmExporter::Create(exporter_options);
    ASSERT_TRUE(exporter.ok()) << exporter.status().ToString();
    exporter_ = std::move(*exporter);

    ASSERT_TRUE(FleetAgent::Global()
                    .RegisterWorker(static_cast<std::uint64_t>(getpid()),
                                    shm_path_, socket_path_)
                    .ok());
  }

  // One synthetic pathological window (96% contention) written straight
  // into the worker's control shard, exported to the segment.
  void FeedPathologicalWindow(std::uint64_t wait_each_ns) {
    LockProfileStats& shard =
        Concord::Global().MutableStats(lock_id_)->ControlShard();
    shard.acquisitions.fetch_add(100);
    shard.contentions.fetch_add(96);
    for (int i = 0; i < 96; ++i) {
      shard.wait_ns.Record(wait_each_ns);
    }
    clock_.clock().AdvanceMs(100);
    ASSERT_TRUE(exporter_->ExportOnce().ok());
  }

  static bool HasEvent(const std::vector<FleetEvent>& events,
                       FleetEventKind kind, std::string* detail = nullptr) {
    for (const FleetEvent& event : events) {
      if (event.kind == kind) {
        if (detail != nullptr) {
          *detail = event.detail;
        }
        return true;
      }
    }
    return false;
  }

  ScopedFakeClock clock_;
  std::string shm_path_;
  std::string socket_path_;
  ShflLock lock_;
  std::uint64_t lock_id_ = 0;
  std::unique_ptr<RpcServer> server_;
  std::unique_ptr<ShmExporter> exporter_;
};

// A registered pid that no longer exists is evicted on the very next tick —
// before any segment access.
TEST_F(AgentChaosTest, DeadPidIsEvictedImmediately) {
  auto writer = ShmSegmentWriter::Create(shm_path_);
  ASSERT_TRUE(writer.ok());
  // PID far above any live process (pid_max on test systems is < 2^22).
  ASSERT_TRUE(
      FleetAgent::Global().RegisterWorker(999'999'999, shm_path_, "/nope").ok());
  ASSERT_EQ(FleetAgent::Global().WorkerCount(), 1u);

  std::string detail;
  const auto events = FleetAgent::Global().Tick();
  EXPECT_TRUE(HasEvent(events, FleetEventKind::kWorkerEvict, &detail));
  EXPECT_EQ(detail, "process exited");
  EXPECT_EQ(FleetAgent::Global().WorkerCount(), 0u);
}

// A worker whose exporter stops publishing is evicted after the configured
// number of progress-free ticks; the loop itself keeps running.
TEST_F(AgentChaosTest, StaleSegmentIsEvictedAfterThreshold) {
  auto writer = ShmSegmentWriter::Create(shm_path_);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->Publish({}, 1).ok());
  ASSERT_TRUE(FleetAgent::Global()
                  .RegisterWorker(static_cast<std::uint64_t>(getpid()),
                                  shm_path_, "/nope")
                  .ok());

  EXPECT_TRUE(FleetAgent::Global().Tick().empty());  // baseline read
  EXPECT_EQ(FleetAgent::Global().WorkerCount(), 1u);
  // No publishes from here on: three progress-free ticks evict.
  EXPECT_TRUE(FleetAgent::Global().Tick().empty());
  EXPECT_TRUE(FleetAgent::Global().Tick().empty());
  std::string detail;
  const auto events = FleetAgent::Global().Tick();
  ASSERT_TRUE(HasEvent(events, FleetEventKind::kWorkerEvict, &detail));
  EXPECT_NE(detail.find("stale segment"), std::string::npos);
  EXPECT_EQ(FleetAgent::Global().WorkerCount(), 0u);

  // The agent keeps ticking cleanly with an empty fleet.
  EXPECT_TRUE(FleetAgent::Global().Tick().empty());
}

// A version-mismatched header is permanent damage: evicted on first contact,
// no retries.
TEST_F(AgentChaosTest, CorruptVersionIsEvictedImmediately) {
  auto writer = ShmSegmentWriter::Create(shm_path_);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->Publish({}, 1).ok());

  const int fd = open(shm_path_.c_str(), O_RDWR);
  ASSERT_GE(fd, 0);
  const std::uint64_t bad_version = kShmSegmentVersion + 7;
  ASSERT_EQ(pwrite(fd, &bad_version, sizeof(bad_version),
                   offsetof(ShmSegmentHeader, version)),
            static_cast<ssize_t>(sizeof(bad_version)));
  close(fd);

  ASSERT_TRUE(FleetAgent::Global()
                  .RegisterWorker(static_cast<std::uint64_t>(getpid()),
                                  shm_path_, "/nope")
                  .ok());
  const auto events = FleetAgent::Global().Tick();
  EXPECT_TRUE(HasEvent(events, FleetEventKind::kWorkerEvict));
  EXPECT_EQ(FleetAgent::Global().WorkerCount(), 0u);
}

// A segment truncated under a live mapping (worker died, file reused) is
// detected by the pre-read size check and evicted immediately — not SIGBUS.
TEST_F(AgentChaosTest, TruncatedSegmentIsEvictedImmediately) {
  {
    auto writer = ShmSegmentWriter::Create(shm_path_, /*capacity=*/8);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->Publish({}, 1).ok());
  }  // writer unmapped before the file shrinks
  ASSERT_TRUE(FleetAgent::Global()
                  .RegisterWorker(static_cast<std::uint64_t>(getpid()),
                                  shm_path_, "/nope")
                  .ok());
  EXPECT_TRUE(FleetAgent::Global().Tick().empty());  // mapped + baseline read

  ASSERT_EQ(truncate(shm_path_.c_str(),
                     static_cast<off_t>(ShmSegmentBytes(8) / 4)),
            0);
  const auto events = FleetAgent::Global().Tick();
  EXPECT_TRUE(HasEvent(events, FleetEventKind::kWorkerEvict));
  EXPECT_EQ(FleetAgent::Global().WorkerCount(), 0u);
}

// The full in-process control loop: pathological windows classify, the
// candidate canaries across the (one-worker) fleet, improved waits promote
// it, and the worker really holds the attached policy.
TEST_F(AgentChaosTest, FleetCanaryPromotesOnImprovedWaits) {
  StartWorker();
  ASSERT_TRUE(FleetAgent::Global()
                  .AddCandidate({"test_backoff", ContentionRegime::kPathological,
                                 /*for_rw=*/false, kBackoffPolicy})
                  .ok());

  // Baseline read, then one pathological window: classify, set baseline,
  // start the canary.
  FeedPathologicalWindow(/*wait_each_ns=*/4'000'000);
  FleetAgent::Global().Tick();  // baseline segment read
  FeedPathologicalWindow(/*wait_each_ns=*/4'000'000);
  auto events = FleetAgent::Global().Tick();
  ASSERT_TRUE(HasEvent(events, FleetEventKind::kRegimeChange));
  ASSERT_TRUE(HasEvent(events, FleetEventKind::kCanaryStart));
  EXPECT_EQ(Concord::Global().AttachedPolicyName(lock_id_), "test_backoff");

  // Two qualifying canary windows with 8x better waits: promote.
  for (int i = 0; i < 2; ++i) {
    FeedPathologicalWindow(/*wait_each_ns=*/500'000);
    events = FleetAgent::Global().Tick();
  }
  std::string detail;
  ASSERT_TRUE(HasEvent(events, FleetEventKind::kPromote, &detail))
      << FleetAgent::Global().StatusJson();
  EXPECT_NE(detail.find("p99"), std::string::npos);
  EXPECT_EQ(Concord::Global().AttachedPolicyName(lock_id_), "test_backoff");
}

// Worse canary waits roll the fleet back: the candidate is detached from the
// worker and backed off from immediate retry.
TEST_F(AgentChaosTest, FleetCanaryRollsBackOnRegression) {
  StartWorker();
  ASSERT_TRUE(FleetAgent::Global()
                  .AddCandidate({"test_backoff", ContentionRegime::kPathological,
                                 /*for_rw=*/false, kBackoffPolicy})
                  .ok());

  FeedPathologicalWindow(/*wait_each_ns=*/1'000'000);
  FleetAgent::Global().Tick();  // baseline segment read
  FeedPathologicalWindow(/*wait_each_ns=*/1'000'000);
  auto events = FleetAgent::Global().Tick();
  ASSERT_TRUE(HasEvent(events, FleetEventKind::kCanaryStart));
  ASSERT_EQ(Concord::Global().AttachedPolicyName(lock_id_), "test_backoff");

  // 16x worse under the canary: roll back.
  for (int i = 0; i < 2; ++i) {
    FeedPathologicalWindow(/*wait_each_ns=*/16'000'000);
    events = FleetAgent::Global().Tick();
  }
  ASSERT_TRUE(HasEvent(events, FleetEventKind::kRollback))
      << FleetAgent::Global().StatusJson();
  // The rollback pushed a detach: the worker is back to plain.
  EXPECT_TRUE(Concord::Global().AttachedPolicyName(lock_id_).empty());

  // The failed candidate is skipped while backed off — the next pathological
  // window must NOT restart the same canary.
  FeedPathologicalWindow(/*wait_each_ns=*/1'000'000);
  events = FleetAgent::Global().Tick();
  EXPECT_FALSE(HasEvent(events, FleetEventKind::kCanaryStart));
}

#if CONCORD_FAULT_INJECTION

// A transient burst of agent.shm_map failures (fewer than the eviction
// threshold) must not evict: the worker recovers as soon as mapping works.
TEST_F(AgentChaosTest, ShmMapFaultBelowThresholdRecovers) {
  auto writer = ShmSegmentWriter::Create(shm_path_);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->Publish({}, 1).ok());
  ASSERT_TRUE(FleetAgent::Global()
                  .RegisterWorker(static_cast<std::uint64_t>(getpid()),
                                  shm_path_, "/nope")
                  .ok());
  EXPECT_TRUE(FleetAgent::Global().Tick().empty());  // baseline

  FaultRegistry::Global().Arm(
      "agent.shm_map", {FaultRegistry::Mode::kFirstN, /*n=*/2});
  EXPECT_TRUE(FleetAgent::Global().Tick().empty());
  EXPECT_TRUE(FleetAgent::Global().Tick().empty());
  EXPECT_EQ(FleetAgent::Global().WorkerCount(), 1u);  // 2 < threshold 3

  // Fault exhausted; fresh publish progress clears the stale count.
  ASSERT_TRUE((*writer)->Publish({}, 2).ok());
  EXPECT_TRUE(FleetAgent::Global().Tick().empty());
  EXPECT_EQ(FleetAgent::Global().WorkerCount(), 1u);
  ASSERT_TRUE((*writer)->Publish({}, 3).ok());
  EXPECT_TRUE(FleetAgent::Global().Tick().empty());
  EXPECT_EQ(FleetAgent::Global().WorkerCount(), 1u);
}

// A persistent agent.shm_map fault walks the worker to the eviction
// threshold; the agent survives and keeps ticking.
TEST_F(AgentChaosTest, PersistentShmMapFaultEvicts) {
  auto writer = ShmSegmentWriter::Create(shm_path_);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->Publish({}, 1).ok());
  ASSERT_TRUE(FleetAgent::Global()
                  .RegisterWorker(static_cast<std::uint64_t>(getpid()),
                                  shm_path_, "/nope")
                  .ok());

  FaultRegistry::Global().Arm("agent.shm_map", {});
  EXPECT_TRUE(FleetAgent::Global().Tick().empty());
  EXPECT_TRUE(FleetAgent::Global().Tick().empty());
  std::string detail;
  const auto events = FleetAgent::Global().Tick();
  ASSERT_TRUE(HasEvent(events, FleetEventKind::kWorkerEvict, &detail));
  EXPECT_NE(detail.find("agent.shm_map"), std::string::npos);
  EXPECT_EQ(FleetAgent::Global().WorkerCount(), 0u);
  EXPECT_TRUE(FleetAgent::Global().Tick().empty());
}

// agent.merge wedges only the decision step: membership and sampling stay
// live, and the first un-wedged tick decides from fresh state.
TEST_F(AgentChaosTest, MergeFaultLosesDecisionsNeverConsistency) {
  StartWorker();
  ASSERT_TRUE(FleetAgent::Global()
                  .AddCandidate({"test_backoff", ContentionRegime::kPathological,
                                 /*for_rw=*/false, kBackoffPolicy})
                  .ok());
  FeedPathologicalWindow(/*wait_each_ns=*/1'000'000);
  FleetAgent::Global().Tick();  // baseline

  FaultRegistry::Global().Arm("agent.merge", {});
  for (int i = 0; i < 4; ++i) {
    FeedPathologicalWindow(/*wait_each_ns=*/1'000'000);
    EXPECT_TRUE(FleetAgent::Global().Tick().empty());
    // Wedged decisions never touch the worker's attachment state.
    EXPECT_TRUE(Concord::Global().AttachedPolicyName(lock_id_).empty());
  }
  EXPECT_EQ(FleetAgent::Global().WorkerCount(), 1u);
  EXPECT_GE(FaultRegistry::Global().Fires("agent.merge"), 4u);

  FaultRegistry::Global().Disarm("agent.merge");
  FeedPathologicalWindow(/*wait_each_ns=*/1'000'000);
  const auto events = FleetAgent::Global().Tick();
  EXPECT_TRUE(HasEvent(events, FleetEventKind::kCanaryStart));
  EXPECT_EQ(Concord::Global().AttachedPolicyName(lock_id_), "test_backoff");
}

#endif  // CONCORD_FAULT_INJECTION

}  // namespace
}  // namespace concord
