// Cross-process fleet-agent tests: three REAL forked worker processes
// (each with its own Concord facade, profiler, shm exporter, and control
// socket) register with a fleet agent over a unix-socket RPC server running
// in this process, and the fleet must converge on one attached policy.
//
// The agent loop is ticked manually, so decisions are driven by merged
// window counts rather than wall-clock; worker load is seeded Xoshiro256
// traffic plus attachment-steered synthetic waits (multiproc_util.h), which
// is what keeps the canary verdicts deterministic across machines. Sleeps
// only pace sampling — every assertion is reached by polling a condition,
// never by assuming a schedule.
//
// Covered here (the pieces that NEED process isolation — everything that
// can run single-process lives in agent_chaos_test.cc):
//   - three workers converge on the same promoted policy, verified by
//     querying each worker's own status verb over its socket
//   - kill -9 of one worker mid-canary: evicted, survivors promote
//   - a policy that regresses in production rolls the whole fleet back

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "src/concord/agent/fleet.h"
#include "src/concord/rpc/server.h"
#include "tests/integration/multiproc_util.h"

namespace concord {
namespace {

using multiproc::QueryAttachedPolicy;
using multiproc::SpawnWorker;
using multiproc::WorkerSpec;

// The pathological-regime candidate the fleet converges on — the shipped
// log2-backoff skip_shuffle policy, inlined (same source as the agent chaos
// suite) so the test has no file dependencies.
constexpr char kBackoffPolicy[] =
    "; hook: skip_shuffle\n"
    "  ldxdw r2, [r1+0]\n"
    "  mov   r3, 0\n"
    "scan:\n"
    "  jle   r2, 1, done\n"
    "  rsh   r2, 1\n"
    "  add   r3, 1\n"
    "  jlt   r3, 64, scan\n"
    "done:\n"
    "  jlt   r3, 10, skip\n"
    "  mov   r0, 0\n"
    "  exit\n"
    "skip:\n"
    "  mov   r0, 1\n"
    "  exit\n";

constexpr char kCandidateName[] = "test_backoff";

class MultiprocTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FleetAgent::Global().ResetForTest();
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    stem_ = ::testing::TempDir() + "mp_" + std::to_string(getpid()) + "_" +
            info->name();
    // Sockets live in /tmp directly: sun_path is ~108 bytes.
    socket_stem_ =
        "/tmp/mp_" + std::to_string(getpid()) + "_" + info->name();
    agent_socket_ = socket_stem_ + "_agent.sock";
    degrade_path_ = stem_ + ".degrade";
    std::remove(degrade_path_.c_str());

    FleetAgentConfig config;
    config.hysteresis_windows = 1;
    config.canary_windows = 2;
    config.min_window_acquisitions = 10;
    config.cooldown_windows = 0;
    // Workers publish every 5ms and we tick every ~100ms, so any healthy
    // worker shows progress each tick; 10 tolerates heavy CI scheduling
    // noise without masking a genuinely dead exporter.
    config.evict_after_stale_ticks = 10;
    // Long enough that "the canary does not restart after rollback" cannot
    // expire mid-assertion.
    config.failed_candidate_backoff_windows = 1'000;
    ASSERT_TRUE(FleetAgent::Global().Configure(config).ok());
    ASSERT_TRUE(FleetAgent::Global()
                    .AddCandidate({kCandidateName,
                                   ContentionRegime::kPathological,
                                   /*for_rw=*/false, kBackoffPolicy})
                    .ok());

    RpcServerOptions server_options;
    server_options.socket_path = agent_socket_;
    agent_server_ = std::make_unique<RpcServer>(server_options);
    ASSERT_TRUE(agent_server_->Start().ok());
  }

  void TearDown() override {
    for (std::size_t i = 0; i < workers_.size(); ++i) {
      StopWorker(i, SIGTERM);
    }
    if (agent_server_ != nullptr) {
      agent_server_->Stop();
    }
    FleetAgent::Global().ResetForTest();
    std::remove(degrade_path_.c_str());
    for (const WorkerSpec& spec : specs_) {
      std::remove(spec.shm_path.c_str());
    }
  }

  // Forks one worker in re-exec mode; paths derive from the test name so
  // parallel ctest shards never collide.
  void Spawn(int index, bool with_degrade = false) {
    WorkerSpec spec;
    spec.shm_path = stem_ + "_w" + std::to_string(index) + ".shm";
    spec.control_socket =
        socket_stem_ + "_w" + std::to_string(index) + ".sock";
    spec.agent_socket = agent_socket_;
    if (with_degrade) {
      spec.degrade_path = degrade_path_;
    }
    spec.seed = 1'000 + static_cast<std::uint64_t>(index);
    std::remove(spec.shm_path.c_str());
    const pid_t pid = SpawnWorker(spec);
    ASSERT_GT(pid, 0);
    specs_.push_back(spec);
    workers_.push_back(pid);
    reaped_.push_back(false);
  }

  // Signal + reap. After this returns the pid is gone (kill(pid,0) is
  // ESRCH), which is what lets the agent's liveness probe see the death.
  void StopWorker(std::size_t index, int signo) {
    if (reaped_[index]) {
      return;
    }
    ::kill(workers_[index], signo);
    int status = 0;
    ::waitpid(workers_[index], &status, 0);
    reaped_[index] = true;
  }

  // Polls `condition` without ticking (e.g. registration, which arrives on
  // the agent server's RPC thread).
  template <typename Condition>
  bool WaitFor(Condition&& condition, std::chrono::milliseconds timeout) {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    while (std::chrono::steady_clock::now() < deadline) {
      if (condition()) {
        return true;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return false;
  }

  // Drives the agent loop manually until an event of `kind` shows up.
  // Every event from every tick is appended to *all for later assertions.
  bool TickUntil(FleetEventKind kind, std::chrono::milliseconds timeout,
                 std::vector<FleetEvent>* all) {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    while (std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
      const auto events = FleetAgent::Global().Tick();
      all->insert(all->end(), events.begin(), events.end());
      for (const FleetEvent& event : events) {
        if (event.kind == kind) {
          return true;
        }
      }
    }
    return false;
  }

  static bool HasKind(const std::vector<FleetEvent>& events,
                      FleetEventKind kind) {
    for (const FleetEvent& event : events) {
      if (event.kind == kind) {
        return true;
      }
    }
    return false;
  }

  // The attached-policy name a worker reports for mp_hot over its own
  // control socket; "<error: ...>" keeps failures readable in EXPECT_EQ.
  std::string WorkerPolicy(std::size_t index) {
    auto policy =
        QueryAttachedPolicy(specs_[index].control_socket,
                            multiproc::kHotLockName);
    if (!policy.ok()) {
      return "<error: " + policy.status().ToString() + ">";
    }
    return *policy;
  }

  std::string stem_;
  std::string socket_stem_;
  std::string agent_socket_;
  std::string degrade_path_;
  std::unique_ptr<RpcServer> agent_server_;
  std::vector<WorkerSpec> specs_;
  std::vector<pid_t> workers_;
  std::vector<bool> reaped_;
};

// Three real processes register, their pathological windows merge into one
// fleet-wide signal, a canary runs across all of them, and every worker
// ends up holding the same promoted policy.
TEST_F(MultiprocTest, FleetConvergesAcrossThreeWorkers) {
  for (int i = 0; i < 3; ++i) {
    Spawn(i);
  }
  ASSERT_TRUE(WaitFor([] { return FleetAgent::Global().WorkerCount() == 3; },
                      std::chrono::seconds(10)))
      << FleetAgent::Global().StatusJson();

  std::vector<FleetEvent> all;
  ASSERT_TRUE(
      TickUntil(FleetEventKind::kPromote, std::chrono::seconds(30), &all))
      << FleetAgent::Global().StatusJson();
  EXPECT_TRUE(HasKind(all, FleetEventKind::kRegimeChange));
  EXPECT_TRUE(HasKind(all, FleetEventKind::kCanaryStart));
  EXPECT_FALSE(HasKind(all, FleetEventKind::kRollback));
  EXPECT_EQ(FleetAgent::Global().WorkerCount(), 3u);

  // Convergence means every worker — asked directly over its own socket —
  // reports the same attached policy.
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(WorkerPolicy(i), kCandidateName) << "worker " << i;
  }
}

// kill -9 of one worker mid-canary must not wedge or roll back the fleet:
// the dead worker is evicted and the survivors' merged windows still carry
// the canary to promotion.
TEST_F(MultiprocTest, KilledWorkerMidCanaryIsEvictedWhileSurvivorsPromote) {
  for (int i = 0; i < 3; ++i) {
    Spawn(i);
  }
  ASSERT_TRUE(WaitFor([] { return FleetAgent::Global().WorkerCount() == 3; },
                      std::chrono::seconds(10)))
      << FleetAgent::Global().StatusJson();

  std::vector<FleetEvent> all;
  ASSERT_TRUE(
      TickUntil(FleetEventKind::kCanaryStart, std::chrono::seconds(20), &all))
      << FleetAgent::Global().StatusJson();

  // Mid-canary: SIGKILL worker 2 and reap it so the pid truly disappears.
  const pid_t killed = workers_[2];
  StopWorker(2, SIGKILL);

  ASSERT_TRUE(
      TickUntil(FleetEventKind::kPromote, std::chrono::seconds(30), &all))
      << FleetAgent::Global().StatusJson();
  EXPECT_FALSE(HasKind(all, FleetEventKind::kRollback));

  // The kill produced exactly one eviction — the killed pid, seen dead.
  bool evicted = false;
  for (const FleetEvent& event : all) {
    if (event.kind == FleetEventKind::kWorkerEvict) {
      EXPECT_EQ(event.worker_pid, static_cast<std::uint64_t>(killed));
      EXPECT_EQ(event.detail, "process exited");
      evicted = true;
    }
  }
  EXPECT_TRUE(evicted);
  EXPECT_EQ(FleetAgent::Global().WorkerCount(), 2u);

  // Both survivors hold the promoted policy.
  EXPECT_EQ(WorkerPolicy(0), kCandidateName);
  EXPECT_EQ(WorkerPolicy(1), kCandidateName);
}

// A candidate that certifies clean but regresses in production: the degrade
// file makes every worker's waits collapse the moment the policy attaches,
// so the canary verdict must roll the whole fleet back — every worker
// detached, nobody evicted, and the candidate backed off from retry.
TEST_F(MultiprocTest, FleetRollsBackOnInjectedRegression) {
  { std::ofstream touch(degrade_path_); }
  for (int i = 0; i < 3; ++i) {
    Spawn(i, /*with_degrade=*/true);
  }
  ASSERT_TRUE(WaitFor([] { return FleetAgent::Global().WorkerCount() == 3; },
                      std::chrono::seconds(10)))
      << FleetAgent::Global().StatusJson();

  std::vector<FleetEvent> all;
  ASSERT_TRUE(
      TickUntil(FleetEventKind::kRollback, std::chrono::seconds(30), &all))
      << FleetAgent::Global().StatusJson();
  EXPECT_TRUE(HasKind(all, FleetEventKind::kCanaryStart));
  EXPECT_FALSE(HasKind(all, FleetEventKind::kPromote));
  EXPECT_FALSE(HasKind(all, FleetEventKind::kWorkerEvict));
  EXPECT_EQ(FleetAgent::Global().WorkerCount(), 3u);

  // The rollback detached the canary from every worker.
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(WorkerPolicy(i), "") << "worker " << i;
  }

  // The failed candidate is backed off: the still-pathological fleet signal
  // must not immediately restart the same canary.
  std::vector<FleetEvent> after;
  EXPECT_FALSE(TickUntil(FleetEventKind::kCanaryStart,
                         std::chrono::seconds(1), &after))
      << FleetAgent::Global().StatusJson();
}

}  // namespace
}  // namespace concord

// Worker mode first: when SpawnWorker re-execs this binary with the worker
// env set, it must never reach gtest.
int main(int argc, char** argv) {
  if (std::getenv(concord::multiproc::kEnvWorker) != nullptr) {
    return concord::multiproc::RunWorkerMain();
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
