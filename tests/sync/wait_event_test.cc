#include "src/sync/wait_event.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "src/base/time.h"

namespace concord {
namespace {

TEST(WaitEventTest, ReturnsImmediatelyWhenPredicateHolds) {
  WaitEvent event;
  event.WaitUntil([] { return true; });
  SUCCEED();
}

TEST(WaitEventTest, WakeAllReleasesWaiter) {
  WaitEvent event;
  std::atomic<bool> flag{false};
  std::atomic<bool> woke{false};
  std::thread waiter([&] {
    event.WaitUntil([&] { return flag.load(); });
    woke.store(true);
  });
  BurnNs(5'000'000);
  EXPECT_FALSE(woke.load());
  flag.store(true);
  event.WakeAll();
  waiter.join();
  EXPECT_TRUE(woke.load());
}

TEST(WaitEventTest, SpuriousWakesAreAbsorbed) {
  WaitEvent event;
  std::atomic<bool> flag{false};
  std::atomic<bool> woke{false};
  std::thread waiter([&] {
    event.WaitUntil([&] { return flag.load(); });
    woke.store(true);
  });
  // Wakes without making the predicate true must not release the waiter.
  for (int i = 0; i < 5; ++i) {
    event.WakeAll();
    BurnNs(1'000'000);
  }
  EXPECT_FALSE(woke.load());
  flag.store(true);
  event.WakeAll();
  waiter.join();
  EXPECT_TRUE(woke.load());
}

TEST(WaitEventTest, TimeoutExpiresWithFalsePredicate) {
  WaitEvent event;
  const std::uint64_t start = MonotonicNowNs();
  const bool result =
      event.WaitUntilFor([] { return false; }, /*timeout_ns=*/10'000'000);
  EXPECT_FALSE(result);
  EXPECT_GE(MonotonicNowNs() - start, 9'000'000u);
}

TEST(WaitEventTest, TimeoutReturnsTrueIfPredicateBecomesTrue) {
  WaitEvent event;
  std::atomic<bool> flag{false};
  std::thread setter([&] {
    BurnNs(3'000'000);
    flag.store(true);
    event.WakeAll();
  });
  const bool result =
      event.WaitUntilFor([&] { return flag.load(); }, 10'000'000'000ull);
  EXPECT_TRUE(result);
  setter.join();
}

TEST(WaitEventTest, ManyWaitersAllReleased) {
  WaitEvent event;
  std::atomic<int> released{0};
  std::atomic<int> gate{0};
  std::vector<std::thread> waiters;
  for (int i = 0; i < 6; ++i) {
    waiters.emplace_back([&] {
      event.WaitUntil([&] { return gate.load() != 0; });
      released.fetch_add(1);
    });
  }
  BurnNs(5'000'000);
  EXPECT_EQ(released.load(), 0);
  gate.store(1);
  event.WakeAll();
  for (auto& waiter : waiters) {
    waiter.join();
  }
  EXPECT_EQ(released.load(), 6);
}

TEST(WaitEventTest, ProducerConsumerQueueDrainsCompletely) {
  // The Btrfs-style pattern: a non-blocking structure + wait events.
  WaitEvent not_empty;
  std::atomic<int> queue{0};
  std::atomic<int> consumed{0};
  constexpr int kItems = 5'000;

  std::thread consumer([&] {
    while (consumed.load() < kItems) {
      not_empty.WaitUntil(
          [&] { return queue.load() > 0 || consumed.load() >= kItems; });
      int current = queue.load();
      while (current > 0 &&
             !queue.compare_exchange_weak(current, current - 1)) {
      }
      if (current > 0) {
        consumed.fetch_add(1);
      }
    }
  });
  std::thread producer([&] {
    for (int i = 0; i < kItems; ++i) {
      queue.fetch_add(1);
      not_empty.WakeOne();
    }
  });
  producer.join();
  // Keep nudging the consumer until it drains (WakeOne may have raced the
  // final increments).
  while (consumed.load() < kItems) {
    not_empty.WakeAll();
    std::this_thread::yield();
  }
  consumer.join();
  EXPECT_EQ(consumed.load(), kItems);
  EXPECT_EQ(queue.load(), 0);
}

}  // namespace
}  // namespace concord
