// Property tests shared by all readers-writer locks, plus flavour-specific
// checks for the distributed per-socket lock.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "src/base/time.h"
#include "src/sync/bravo.h"
#include "src/sync/lock.h"
#include "src/sync/rw_lock.h"

namespace concord {
namespace {

template <typename LockType>
class RwPropertyTest : public ::testing::Test {
 protected:
  LockType lock_;
};

using RwTypes =
    ::testing::Types<NeutralRwLock, PerSocketRwLock, BravoLock<NeutralRwLock>,
                     BravoLock<PerSocketRwLock>>;
TYPED_TEST_SUITE(RwPropertyTest, RwTypes);

TYPED_TEST(RwPropertyTest, UncontendedReadAndWrite) {
  this->lock_.ReadLock();
  this->lock_.ReadUnlock();
  this->lock_.WriteLock();
  this->lock_.WriteUnlock();
}

TYPED_TEST(RwPropertyTest, ParallelReadersDoNotExclude) {
  // Rendezvous: reader A holds the read lock until B has also acquired it
  // (or a liveness timeout fires so a buggy exclusive reader cannot deadlock
  // the test). Overlap is the assertion.
  std::atomic<bool> a_in{false};
  std::atomic<bool> b_in{false};
  std::atomic<bool> a_released{false};
  std::atomic<bool> overlapped{false};

  std::thread reader_a([this, &a_in, &b_in, &a_released] {
    this->lock_.ReadLock();
    a_in.store(true);
    const std::uint64_t deadline = MonotonicNowNs() + 10'000'000'000ull;
    while (!b_in.load() && MonotonicNowNs() < deadline) {
      timespec ts{0, 1'000'000};
      nanosleep(&ts, nullptr);
    }
    a_released.store(true);
    this->lock_.ReadUnlock();
  });
  std::thread reader_b([this, &a_in, &b_in, &a_released, &overlapped] {
    while (!a_in.load()) {
      std::this_thread::yield();
    }
    this->lock_.ReadLock();
    if (!a_released.load()) {
      overlapped.store(true);  // both readers inside simultaneously
    }
    b_in.store(true);
    this->lock_.ReadUnlock();
  });
  reader_a.join();
  reader_b.join();
  EXPECT_TRUE(overlapped.load());
}

TYPED_TEST(RwPropertyTest, WriterExcludesReadersAndWriters) {
  std::atomic<int> readers_inside{0};
  std::atomic<int> writers_inside{0};
  std::atomic<bool> violated{false};
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([this, &readers_inside, &writers_inside, &violated, t] {
      for (int i = 0; i < 1500; ++i) {
        if ((t + i) % 4 == 0) {
          this->lock_.WriteLock();
          if (writers_inside.fetch_add(1) != 0 || readers_inside.load() != 0) {
            violated.store(true);
          }
          writers_inside.fetch_sub(1);
          this->lock_.WriteUnlock();
        } else {
          this->lock_.ReadLock();
          readers_inside.fetch_add(1);
          if (writers_inside.load() != 0) {
            violated.store(true);
          }
          readers_inside.fetch_sub(1);
          this->lock_.ReadUnlock();
        }
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_FALSE(violated.load());
}

TYPED_TEST(RwPropertyTest, WriteProtectedCounterHasNoLostUpdates) {
  std::uint64_t counter = 0;
  constexpr int kThreads = 4;
  constexpr int kIters = 4000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([this, &counter] {
      for (int i = 0; i < kIters; ++i) {
        this->lock_.WriteLock();
        counter = counter + 1;
        this->lock_.WriteUnlock();
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(counter, static_cast<std::uint64_t>(kThreads) * kIters);
}

TEST(NeutralRwLockTest, TryVariants) {
  NeutralRwLock lock;
  ASSERT_TRUE(lock.TryReadLock());
  EXPECT_TRUE(lock.TryReadLock());  // readers share
  EXPECT_FALSE(lock.TryWriteLock());
  lock.ReadUnlock();
  lock.ReadUnlock();
  ASSERT_TRUE(lock.TryWriteLock());
  EXPECT_FALSE(lock.TryReadLock());
  EXPECT_FALSE(lock.TryWriteLock());
  lock.WriteUnlock();
}

TEST(NeutralRwLockTest, ReaderCountIntrospection) {
  NeutralRwLock lock;
  lock.ReadLock();
  lock.ReadLock();
  EXPECT_EQ(lock.reader_count(), 2);
  EXPECT_FALSE(lock.write_locked());
  lock.ReadUnlock();
  lock.ReadUnlock();
  lock.WriteLock();
  EXPECT_TRUE(lock.write_locked());
  lock.WriteUnlock();
}

TEST(PerSocketRwLockTest, UsesConfiguredSocketCount) {
  PerSocketRwLock lock;
  EXPECT_EQ(lock.num_sockets(), MachineTopology::Global().num_sockets());
}

}  // namespace
}  // namespace concord
