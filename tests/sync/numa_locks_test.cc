// Flavour-specific behaviour of the NUMA-aware locks (CNA secondary queue,
// cohort handoff accounting). Mutual-exclusion properties are covered by the
// typed suite in mutual_exclusion_test.cc.

#include <gtest/gtest.h>

#include <barrier>
#include <thread>
#include <vector>

#include "src/sync/cna_lock.h"
#include "src/sync/cohort_lock.h"
#include "src/topology/thread_context.h"

namespace concord {
namespace {

TEST(CnaLockTest, UncontendedFastPathDoesNotTouchSecondary) {
  CnaLock lock;
  CnaQNode node;
  lock.Lock(node);
  lock.Unlock(node);
  EXPECT_EQ(lock.secondary_moves(), 0u);
  EXPECT_EQ(lock.splices(), 0u);
}

TEST(CnaLockTest, CrossSocketContentionPopulatesSecondaryQueue) {
  // Deterministic scenario: the main thread (socket 0) holds the lock while
  // six waiters enqueue sequentially with alternating sockets
  // (S1,S0,S1,S0,S1,S0). At unlock, CNA must skip the leading socket-1
  // waiter(s) to reach a socket-0 waiter, detaching the skipped ones to the
  // secondary queue; when the local chain drains, the secondary is spliced
  // back so everyone finishes.
  MachineTopology::Global().ResetForTest();
  ThreadRegistry::Global().DetachCurrentForTest();
  ThreadRegistry::Global().RegisterCurrent(0);  // main on socket 0

  CnaLock lock;
  CnaQNode main_node;
  lock.Lock(main_node);

  constexpr int kWaiters = 6;
  std::atomic<int> enqueued{0};
  std::uint64_t counter = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < kWaiters; ++t) {
    // Alternate: odd positions socket 1 first so the head is remote.
    const std::uint32_t vcpu = (t % 2 == 0) ? 10 + t / 2 : 1 + t / 2;
    threads.emplace_back([&, vcpu] {
      ThreadRegistry::Global().RegisterCurrent(vcpu);
      enqueued.fetch_add(1);
      CnaQNode node;
      lock.Lock(node);
      counter = counter + 1;
      lock.Unlock(node);
    });
    // Serialize arrival: wait for the flag, then sleep so the (runnable)
    // thread completes its tail-exchange before the next one starts.
    while (enqueued.load() != t + 1) {
      std::this_thread::yield();
    }
    timespec ts{0, 2'000'000};
    nanosleep(&ts, nullptr);
  }

  lock.Unlock(main_node);
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(counter, static_cast<std::uint64_t>(kWaiters));
  // The socket-0 holder skipped remote waiters at least once...
  EXPECT_GT(lock.secondary_moves(), 0u);
  // ...and the stranded remote waiters were eventually spliced back.
  EXPECT_GT(lock.splices(), 0u);
}

TEST(CnaLockTest, TryLockOnlySucceedsWhenEmpty) {
  CnaLock lock;
  CnaQNode a;
  ASSERT_TRUE(lock.TryLock(a));
  std::thread other([&lock] {
    CnaQNode b;
    EXPECT_FALSE(lock.TryLock(b));
  });
  other.join();
  lock.Unlock(a);
}

TEST(CohortLockTest, ReentryAfterFullCycle) {
  CohortLock lock;
  for (int i = 0; i < 100; ++i) {
    lock.Lock();
    lock.Unlock();
  }
  SUCCEED();
}

TEST(CohortLockTest, TryLockRespectsHolders) {
  CohortLock lock;
  ASSERT_TRUE(lock.TryLock());
  std::thread other([&lock] { EXPECT_FALSE(lock.TryLock()); });
  other.join();
  lock.Unlock();
  ASSERT_TRUE(lock.TryLock());
  lock.Unlock();
}

TEST(CohortLockTest, CohortHandoffKeepsExclusion) {
  // Same-socket threads exercise the in-cohort handoff path specifically.
  MachineTopology::Global().ResetForTest();
  CohortLock lock;
  constexpr int kThreads = 4;
  constexpr int kIters = 5000;
  std::uint64_t counter = 0;
  std::barrier sync_point(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ThreadRegistry::Global().RegisterCurrent(static_cast<std::uint32_t>(t));
      sync_point.arrive_and_wait();
      for (int i = 0; i < kIters; ++i) {
        lock.Lock();
        counter = counter + 1;
        lock.Unlock();
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(counter, static_cast<std::uint64_t>(kThreads) * kIters);
}

}  // namespace
}  // namespace concord
