#include "src/sync/bravo.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "src/base/time.h"
#include "src/rcu/rcu.h"

namespace concord {
namespace {

TEST(BravoTest, NeutralModeNeverUsesFastPath) {
  BravoLock<NeutralRwLock> lock;  // default mode is kNeutral
  for (int i = 0; i < 100; ++i) {
    lock.ReadLock();
    lock.ReadUnlock();
  }
  EXPECT_EQ(lock.fast_reads(), 0u);
  EXPECT_EQ(lock.slow_reads(), 100u);
}

TEST(BravoTest, ReaderBiasEngagesFastPath) {
  BravoLock<NeutralRwLock> lock;
  lock.SetDefaultMode(RwMode::kReaderBias);
  for (int i = 0; i < 100; ++i) {
    lock.ReadLock();
    lock.ReadUnlock();
  }
  EXPECT_GT(lock.fast_reads(), 0u);
  EXPECT_TRUE(lock.bias_active());
}

TEST(BravoTest, WriterRevokesBias) {
  BravoLock<NeutralRwLock> lock;
  lock.SetDefaultMode(RwMode::kReaderBias);
  lock.ReadLock();
  lock.ReadUnlock();
  ASSERT_TRUE(lock.bias_active());

  lock.WriteLock();
  lock.WriteUnlock();
  EXPECT_FALSE(lock.bias_active());
  EXPECT_EQ(lock.revocations(), 1u);
}

TEST(BravoTest, BiasReenablesAfterInhibitWindow) {
  BravoLock<NeutralRwLock> lock;
  lock.SetDefaultMode(RwMode::kReaderBias);
  lock.ReadLock();
  lock.ReadUnlock();
  lock.WriteLock();
  lock.WriteUnlock();
  ASSERT_FALSE(lock.bias_active());
  // The inhibit window is proportional to the (tiny) revocation cost; after
  // a generous sleep a read re-arms the bias.
  BurnNs(5'000'000);
  lock.ReadLock();
  lock.ReadUnlock();
  EXPECT_TRUE(lock.bias_active());
}

TEST(BravoTest, WriterOnlyModeSerializesReaders) {
  BravoLock<NeutralRwLock> lock;
  lock.SetDefaultMode(RwMode::kWriterOnly);
  std::atomic<int> inside{0};
  std::atomic<bool> overlapped{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 300; ++i) {
        lock.ReadLock();  // takes the write path in this mode
        if (inside.fetch_add(1) != 0) {
          overlapped.store(true);
        }
        inside.fetch_sub(1);
        lock.ReadUnlock();
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_FALSE(overlapped.load());
}

TEST(BravoTest, RwModeHookSwitchesRegimesLive) {
  BravoLock<NeutralRwLock> lock;
  static std::atomic<std::uint32_t> mode{
      static_cast<std::uint32_t>(RwMode::kNeutral)};
  auto hooks = std::make_unique<RwHooks>();
  hooks->rw_mode = [](void*) { return mode.load(); };
  lock.InstallHooks(hooks.get());

  lock.ReadLock();
  lock.ReadUnlock();
  EXPECT_EQ(lock.fast_reads(), 0u);

  mode.store(static_cast<std::uint32_t>(RwMode::kReaderBias));
  for (int i = 0; i < 10; ++i) {
    lock.ReadLock();
    lock.ReadUnlock();
  }
  EXPECT_GT(lock.fast_reads(), 0u);

  lock.InstallHooks(nullptr);
  Rcu::Global().Synchronize();
}

TEST(BravoTest, FastReadersBlockWriterUntilDrained) {
  BravoLock<NeutralRwLock> lock;
  lock.SetDefaultMode(RwMode::kReaderBias);
  // Arm bias.
  lock.ReadLock();
  lock.ReadUnlock();

  std::atomic<bool> reader_in{false};
  std::atomic<bool> release_reader{false};
  std::atomic<bool> writer_done{false};

  std::thread reader([&] {
    lock.ReadLock();
    reader_in.store(true);
    while (!release_reader.load()) {
      std::this_thread::yield();
    }
    EXPECT_FALSE(writer_done.load());  // writer must not finish while we read
    lock.ReadUnlock();
  });
  while (!reader_in.load()) {
    std::this_thread::yield();
  }

  std::thread writer([&] {
    lock.WriteLock();
    writer_done.store(true);
    lock.WriteUnlock();
  });
  BurnNs(5'000'000);
  EXPECT_FALSE(writer_done.load());
  release_reader.store(true);
  writer.join();
  reader.join();
  EXPECT_TRUE(writer_done.load());
}

TEST(BravoTest, MixedFastSlowReadersKeepCorrectness) {
  BravoLock<NeutralRwLock> lock;
  lock.SetDefaultMode(RwMode::kReaderBias);
  std::uint64_t value = 0;
  std::atomic<bool> torn{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 2000; ++i) {
        if (t == 0 && i % 10 == 0) {
          lock.WriteLock();
          value += 1;  // only writer mutates
          lock.WriteUnlock();
        } else {
          lock.ReadLock();
          const std::uint64_t v1 = value;
          const std::uint64_t v2 = value;
          if (v1 != v2) {
            torn.store(true);
          }
          lock.ReadUnlock();
        }
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_FALSE(torn.load());
}

}  // namespace
}  // namespace concord
