#include "src/sync/seqlock.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace concord {
namespace {

TEST(SeqLockTest, SequenceEvenWhenIdle) {
  SeqLock lock;
  EXPECT_EQ(lock.sequence() % 2, 0u);
  const std::uint32_t snap = lock.ReadBegin();
  EXPECT_FALSE(lock.ReadRetry(snap));
}

TEST(SeqLockTest, WriteBumpsSequenceTwice) {
  SeqLock lock;
  const std::uint32_t before = lock.sequence();
  lock.WriteLock();
  EXPECT_EQ(lock.sequence(), before + 1);  // odd: in progress
  lock.WriteUnlock();
  EXPECT_EQ(lock.sequence(), before + 2);  // even: stable
}

TEST(SeqLockTest, ReadDuringWriteRetries) {
  SeqLock lock;
  const std::uint32_t snap = lock.ReadBegin();
  lock.WriteLock();
  lock.WriteUnlock();
  EXPECT_TRUE(lock.ReadRetry(snap));
}

TEST(SeqLockTest, TryWriteLockRespectsWriters) {
  SeqLock lock;
  ASSERT_TRUE(lock.TryWriteLock());
  std::thread other([&lock] { EXPECT_FALSE(lock.TryWriteLock()); });
  other.join();
  lock.WriteUnlock();
}

TEST(SeqCountTest, ReadReturnsLastWrite) {
  SeqCount<std::uint64_t> value(5);
  EXPECT_EQ(value.Read(), 5u);
  value.Write(9);
  EXPECT_EQ(value.Read(), 9u);
  value.Update([](std::uint64_t& v) { v *= 2; });
  EXPECT_EQ(value.Read(), 18u);
}

TEST(SeqCountTest, ReadersNeverObserveTornMultiWordValues) {
  // The classic seqlock victory condition: a two-word value whose halves
  // must always match. Writers keep them consistent; any torn read would
  // produce mismatched halves.
  struct Pair {
    std::uint64_t a;
    std::uint64_t b;  // invariant: b == a * 3
  };
  SeqCount<Pair> value(Pair{0, 0});
  std::atomic<bool> stop{false};
  std::atomic<bool> torn{false};

  std::vector<std::thread> readers;
  for (int i = 0; i < 3; ++i) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        const Pair p = value.Read();
        if (p.b != p.a * 3) {
          torn.store(true);
        }
      }
    });
  }
  std::thread writer([&] {
    for (std::uint64_t i = 1; i <= 20'000; ++i) {
      value.Write(Pair{i, i * 3});
    }
    stop.store(true);
  });
  writer.join();
  for (auto& reader : readers) {
    reader.join();
  }
  EXPECT_FALSE(torn.load());
  const Pair final = value.Read();
  EXPECT_EQ(final.a, 20'000u);
}

TEST(SeqLockTest, WritersAreMutuallyExclusive) {
  SeqLock lock;
  std::uint64_t counter = 0;
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&] {
      for (int i = 0; i < 10'000; ++i) {
        lock.WriteLock();
        counter = counter + 1;
        lock.WriteUnlock();
      }
    });
  }
  for (auto& writer : writers) {
    writer.join();
  }
  EXPECT_EQ(counter, 40'000u);
  EXPECT_EQ(lock.sequence(), 80'000u);  // two bumps per write
}

}  // namespace
}  // namespace concord
