// Property test: mutual exclusion and lost-update freedom for every mutex-
// style lock in the library, exercised through one typed harness.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "src/sync/cna_lock.h"
#include "src/sync/cohort_lock.h"
#include "src/sync/lock.h"
#include "src/sync/mcs_lock.h"
#include "src/sync/shfllock.h"
#include "src/sync/tas_lock.h"
#include "src/sync/ticket_lock.h"

namespace concord {
namespace {

// Adapters give every lock the implicit Lock()/Unlock() interface.
struct CnaAdapter {
  CnaLock lock;
  void Lock() { lock.Lock(Node()); }
  void Unlock() { lock.Unlock(Node()); }
  bool TryLock() { return lock.TryLock(Node()); }

 private:
  static CnaQNode& Node() {
    thread_local CnaQNode node;
    return node;
  }
};

struct BlockingShflAdapter {
  BlockingShflAdapter() { lock.SetBlocking(true); }
  ShflLock lock;
  void Lock() { lock.Lock(); }
  void Unlock() { lock.Unlock(); }
  bool TryLock() { return lock.TryLock(); }
};

template <typename LockType>
class MutexPropertyTest : public ::testing::Test {
 protected:
  LockType lock_;
};

using MutexTypes = ::testing::Types<TasLock, TtasLock, TicketLock, McsLock,
                                    ShflLock, BlockingShflAdapter, CnaAdapter,
                                    CohortLock>;
TYPED_TEST_SUITE(MutexPropertyTest, MutexTypes);

TYPED_TEST(MutexPropertyTest, UncontendedLockUnlock) {
  this->lock_.Lock();
  this->lock_.Unlock();
  this->lock_.Lock();
  this->lock_.Unlock();
}

TYPED_TEST(MutexPropertyTest, TryLockSucceedsWhenFree) {
  ASSERT_TRUE(this->lock_.TryLock());
  this->lock_.Unlock();
}

TYPED_TEST(MutexPropertyTest, TryLockFailsWhenHeld) {
  this->lock_.Lock();
  std::thread other([&] { EXPECT_FALSE(this->lock_.TryLock()); });
  other.join();
  this->lock_.Unlock();
}

TYPED_TEST(MutexPropertyTest, NoLostUpdates) {
  constexpr int kThreads = 4;
  constexpr int kIters = 20000;
  std::uint64_t counter = 0;  // deliberately non-atomic

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([this, &counter] {
      for (int i = 0; i < kIters; ++i) {
        this->lock_.Lock();
        counter = counter + 1;
        this->lock_.Unlock();
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(counter, static_cast<std::uint64_t>(kThreads) * kIters);
}

TYPED_TEST(MutexPropertyTest, MutualExclusionInvariantNeverViolated) {
  constexpr int kThreads = 4;
  constexpr int kIters = 5000;
  std::atomic<int> inside{0};
  std::atomic<bool> violated{false};

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([this, &inside, &violated] {
      for (int i = 0; i < kIters; ++i) {
        this->lock_.Lock();
        if (inside.fetch_add(1, std::memory_order_acq_rel) != 0) {
          violated.store(true);
        }
        inside.fetch_sub(1, std::memory_order_acq_rel);
        this->lock_.Unlock();
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_FALSE(violated.load());
}

TYPED_TEST(MutexPropertyTest, HandoffChainOfDependentWork) {
  // Each thread appends to a shared vector; total order must contain every
  // element exactly once (checks handoff does not skip/duplicate grants).
  constexpr int kThreads = 3;
  constexpr int kIters = 2000;
  std::vector<int> log;
  log.reserve(kThreads * kIters);

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([this, &log, t] {
      for (int i = 0; i < kIters; ++i) {
        this->lock_.Lock();
        log.push_back(t);
        this->lock_.Unlock();
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  ASSERT_EQ(log.size(), static_cast<std::size_t>(kThreads) * kIters);
  int counts[kThreads] = {};
  for (int t : log) {
    ++counts[t];
  }
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(counts[t], kIters);
  }
}

}  // namespace
}  // namespace concord
