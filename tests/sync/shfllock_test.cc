#include "src/sync/shfllock.h"

#include <gtest/gtest.h>

#include <atomic>
#include <barrier>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "src/base/time.h"
#include "src/rcu/rcu.h"

namespace concord {
namespace {

// NUMA-grouping policy: group waiters from the shuffler's socket.
bool SameSocketCmp(void*, const ShflWaiterView& shuffler,
                   const ShflWaiterView& curr) {
  return shuffler.socket == curr.socket;
}

TEST(ShflLockTest, HooksInstallAndRevert) {
  ShflLock lock;
  EXPECT_EQ(lock.CurrentHooks(), nullptr);
  auto hooks = std::make_unique<ShflHooks>();
  hooks->cmp_node = SameSocketCmp;
  EXPECT_EQ(lock.InstallHooks(hooks.get()), nullptr);
  EXPECT_EQ(lock.CurrentHooks(), hooks.get());
  EXPECT_EQ(lock.InstallHooks(nullptr), hooks.get());
  Rcu::Global().Synchronize();
}

TEST(ShflLockTest, AcquisitionCountTracks) {
  ShflLock lock;
  const std::uint64_t before = lock.acquisitions();
  for (int i = 0; i < 10; ++i) {
    ShflGuard guard(lock);
  }
  EXPECT_EQ(lock.acquisitions(), before + 10);
}

TEST(ShflLockTest, HoldTimeFeedsContextEwma) {
  // Hold-time accounting is policy food: it only runs while a hook table is
  // installed (so unpatched locks pay no clock reads).
  ShflLock lock;
  auto hooks = std::make_unique<ShflHooks>();
  hooks->track_hold_time = true;  // hold accounting is opt-in via the table
  lock.InstallHooks(hooks.get());
  ThreadContext& ctx = Self();
  const std::uint64_t before_total =
      ctx.lock_hold_total_ns.load(std::memory_order_relaxed);
  {
    ShflGuard guard(lock);
    BurnNs(200'000);
  }
  EXPECT_GE(ctx.lock_hold_total_ns.load(std::memory_order_relaxed),
            before_total + 200'000);
  lock.InstallHooks(nullptr);
  Rcu::Global().Synchronize();

  // And without hooks, the accounting stays off.
  ShflLock plain;
  const std::uint64_t before_plain =
      ctx.lock_hold_total_ns.load(std::memory_order_relaxed);
  {
    ShflGuard guard(plain);
    BurnNs(100'000);
  }
  EXPECT_EQ(ctx.lock_hold_total_ns.load(std::memory_order_relaxed), before_plain);
}

TEST(ShflLockTest, ProfilingTapsFireInOrder) {
  ShflLock lock;
  lock.SetLockId(77);
  struct TapLog {
    std::mutex mu;
    std::vector<std::pair<std::string, std::uint64_t>> events;
    void Add(const char* name, std::uint64_t id) {
      std::lock_guard<std::mutex> guard(mu);
      events.emplace_back(name, id);
    }
  } log;

  auto hooks = std::make_unique<ShflHooks>();
  hooks->user_data = &log;
  hooks->lock_acquire = [](void* ud, std::uint64_t id) {
    static_cast<TapLog*>(ud)->Add("acquire", id);
  };
  hooks->lock_acquired = [](void* ud, std::uint64_t id) {
    static_cast<TapLog*>(ud)->Add("acquired", id);
  };
  hooks->lock_release = [](void* ud, std::uint64_t id) {
    static_cast<TapLog*>(ud)->Add("release", id);
  };
  lock.InstallHooks(hooks.get());

  {
    ShflGuard guard(lock);
  }
  lock.InstallHooks(nullptr);
  Rcu::Global().Synchronize();

  ASSERT_EQ(log.events.size(), 3u);
  EXPECT_EQ(log.events[0].first, "acquire");
  EXPECT_EQ(log.events[1].first, "acquired");
  EXPECT_EQ(log.events[2].first, "release");
  for (const auto& [name, id] : log.events) {
    EXPECT_EQ(id, 77u);
  }
}

// Sleeps (so other threads get the CPU even on a 1-core host) until `pred`
// holds or ~10s elapse. Returns whether the predicate held.
template <typename Pred>
bool AwaitCondition(Pred pred) {
  const std::uint64_t deadline = MonotonicNowNs() + 10'000'000'000ull;
  while (!pred()) {
    if (MonotonicNowNs() > deadline) {
      return false;
    }
    timespec ts{0, 1'000'000};  // 1ms
    nanosleep(&ts, nullptr);
  }
  return true;
}

TEST(ShflLockTest, ContendedTapFiresOnSlowPath) {
  ShflLock lock;
  std::atomic<int> contended{0};
  auto hooks = std::make_unique<ShflHooks>();
  hooks->user_data = &contended;
  hooks->lock_contended = [](void* ud, std::uint64_t) {
    static_cast<std::atomic<int>*>(ud)->fetch_add(1);
  };
  lock.InstallHooks(hooks.get());

  lock.Lock();
  std::thread waiter([&lock] {
    lock.Lock();
    lock.Unlock();
  });
  EXPECT_TRUE(AwaitCondition([&] { return contended.load() >= 1; }));
  lock.Unlock();
  waiter.join();
  lock.InstallHooks(nullptr);
  Rcu::Global().Synchronize();
  EXPECT_GE(contended.load(), 1);
}

TEST(ShflLockTest, ShuffleGroupsSameSocketWaiters) {
  // Deterministic shuffling scenario: the main thread holds the lock while
  // six waiters enqueue one at a time with alternating virtual sockets, so
  // the queue is S0,S1,S0,S1,S0,S1. The queue-head waiter (socket 0) must
  // pull the later socket-0 waiters forward past the socket-1 ones while the
  // main thread still holds the lock.
  MachineTopology::Global().ResetForTest();  // reset the round-robin cursor

  ShflLock lock;
  std::atomic<int> contended{0};
  auto hooks = std::make_unique<ShflHooks>();
  hooks->user_data = &contended;
  hooks->cmp_node = SameSocketCmp;
  hooks->lock_contended = [](void* ud, std::uint64_t) {
    static_cast<std::atomic<int>*>(ud)->fetch_add(1);
  };
  lock.InstallHooks(hooks.get());

  lock.Lock();
  constexpr int kWaiters = 6;
  std::uint64_t counter = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < kWaiters; ++t) {
    // Alternate sockets 0 and 1 in arrival order.
    const std::uint32_t vcpu = (t % 2 == 0) ? t / 2 : 10 + t / 2;
    threads.emplace_back([&, vcpu] {
      ThreadRegistry::Global().RegisterCurrent(vcpu);
      lock.Lock();
      counter = counter + 1;
      lock.Unlock();
    });
    // Serialize arrival order.
    ASSERT_TRUE(AwaitCondition([&] { return contended.load() == t + 1; }));
    timespec ts{0, 2'000'000};
    nanosleep(&ts, nullptr);  // let the tap-ed thread finish enqueueing
  }
  // Give the queue head time to run shuffle rounds while we hold the lock;
  // with S0 waiters parked behind S1 ones, grouping requires actual moves.
  ASSERT_TRUE(AwaitCondition([&] { return lock.shuffle_moves() > 0; }));
  lock.Unlock();
  for (auto& thread : threads) {
    thread.join();
  }
  lock.InstallHooks(nullptr);
  Rcu::Global().Synchronize();

  EXPECT_EQ(counter, static_cast<std::uint64_t>(kWaiters));
  EXPECT_GT(lock.shuffle_rounds(), 0u);
  // Socket-0 waiters sat behind socket-1 waiters, so grouping required moves.
  EXPECT_GT(lock.shuffle_moves(), 0u);
}

TEST(ShflLockTest, SkipShuffleSuppressesShuffling) {
  ShflLock lock;
  auto hooks = std::make_unique<ShflHooks>();
  hooks->cmp_node = SameSocketCmp;
  hooks->skip_shuffle = [](void*, const ShflWaiterView&) { return true; };
  lock.InstallHooks(hooks.get());

  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 2000; ++i) {
        ShflGuard guard(lock);
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  lock.InstallHooks(nullptr);
  Rcu::Global().Synchronize();
  EXPECT_EQ(lock.shuffle_moves(), 0u);
}

TEST(ShflLockTest, BlockingModeParksWaiters) {
  ShflLock lock;
  lock.SetBlocking(true);
  lock.Lock();
  std::atomic<bool> acquired{false};
  std::thread waiter([&] {
    lock.Lock();
    acquired.store(true);
    lock.Unlock();
  });
  // Wait (sleeping, so the waiter gets CPU) until it has parked.
  EXPECT_TRUE(AwaitCondition([&] { return lock.parks() >= 1; }));
  EXPECT_FALSE(acquired.load());
  lock.Unlock();
  waiter.join();
  EXPECT_TRUE(acquired.load());
  EXPECT_GE(lock.parks(), 1u);
}

TEST(ShflLockTest, ScheduleWaiterHookControlsParking) {
  ShflLock lock;
  lock.SetBlocking(true);
  std::atomic<int> contended{0};
  auto hooks = std::make_unique<ShflHooks>();
  hooks->user_data = &contended;
  // Never park, regardless of spin count.
  hooks->schedule_waiter = [](void*, const ShflWaiterView&, std::uint32_t) {
    return false;
  };
  hooks->lock_contended = [](void* ud, std::uint64_t) {
    static_cast<std::atomic<int>*>(ud)->fetch_add(1);
  };
  lock.InstallHooks(hooks.get());

  lock.Lock();
  std::thread waiter([&] {
    lock.Lock();
    lock.Unlock();
  });
  // Let the waiter reach the slow path and spin well past the default park
  // threshold; the hook must keep it off the futex.
  ASSERT_TRUE(AwaitCondition([&] { return contended.load() >= 1; }));
  timespec ts{0, 20'000'000};
  nanosleep(&ts, nullptr);
  EXPECT_EQ(lock.parks(), 0u);
  lock.Unlock();
  waiter.join();
  lock.InstallHooks(nullptr);
  Rcu::Global().Synchronize();
  EXPECT_EQ(lock.parks(), 0u);
}

TEST(ShflLockTest, HotSwapPolicyUnderContention) {
  // Swap policies repeatedly while threads hammer the lock; the lock must
  // stay correct and the old hook tables must be safely reclaimable.
  ShflLock lock;
  std::atomic<bool> stop{false};
  std::uint64_t counter = 0;
  constexpr int kThreads = 4;

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        lock.Lock();
        counter = counter + 1;
        lock.Unlock();
      }
    });
  }

  for (int swap = 0; swap < 30; ++swap) {
    auto* hooks = new ShflHooks();
    hooks->cmp_node = SameSocketCmp;
    const ShflHooks* old = lock.InstallHooks(hooks);
    Rcu::Global().Synchronize();
    delete old;
  }
  const ShflHooks* last = lock.InstallHooks(nullptr);
  Rcu::Global().Synchronize();
  delete last;

  stop.store(true);
  for (auto& thread : threads) {
    thread.join();
  }
  SUCCEED();
}

// Adversarial policy boosting socket-0 waiters over everyone else; the
// per-waiter bypass bound must cap how often the socket-1 victim is
// overtaken.
TEST(ShflLockTest, BypassBoundProtectsVictimFromAdversarialPolicy) {
  MachineTopology::Global().ResetForTest();

  auto run_scenario = [&](std::uint32_t bypass_bound) -> std::size_t {
    ShflLock lock;
    std::atomic<int> contended{0};
    auto hooks = std::make_unique<ShflHooks>();
    hooks->user_data = &contended;
    hooks->cmp_node = [](void*, const ShflWaiterView&,
                         const ShflWaiterView& curr) {
      return curr.socket == 0;  // boost socket 0 unconditionally
    };
    hooks->lock_contended = [](void* ud, std::uint64_t) {
      static_cast<std::atomic<int>*>(ud)->fetch_add(1);
    };
    hooks->max_waiter_bypasses = bypass_bound;
    lock.InstallHooks(hooks.get());

    std::vector<std::string> order;
    std::mutex order_mu;
    lock.Lock();
    std::vector<std::thread> threads;
    int expected = 0;
    auto spawn = [&](const char* group, std::uint32_t vcpu) {
      threads.emplace_back([&, group, vcpu] {
        ThreadRegistry::Global().RegisterCurrent(vcpu);
        lock.Lock();
        {
          std::lock_guard<std::mutex> guard(order_mu);
          order.push_back(group);
        }
        lock.Unlock();
      });
      ++expected;
      EXPECT_TRUE(AwaitCondition([&] { return contended.load() >= expected; }));
      timespec ts{0, 2'000'000};
      nanosleep(&ts, nullptr);
    };

    spawn("head", 0);     // socket 0, queue head (never bypassed)
    spawn("victim", 10);  // socket 1
    for (int i = 0; i < 6; ++i) {
      spawn("boosted", static_cast<std::uint32_t>(1 + i));  // socket 0
    }
    // Let the head shuffle the fully-formed queue.
    timespec ts{0, 50'000'000};
    nanosleep(&ts, nullptr);
    lock.Unlock();
    for (auto& thread : threads) {
      thread.join();
    }
    lock.InstallHooks(nullptr);
    Rcu::Global().Synchronize();

    for (std::size_t i = 0; i < order.size(); ++i) {
      if (order[i] == "victim") {
        return i + 1;  // 1-based grant position
      }
    }
    return 0;
  };

  // Unbounded (effectively): the victim is overtaken by every boosted waiter.
  const std::size_t unbounded_pos = run_scenario(ShflLock::kBypassCap);
  EXPECT_GE(unbounded_pos, 7u);
  // Bound of 2: at most two waiters may move past the victim.
  const std::size_t bounded_pos = run_scenario(2);
  EXPECT_LE(bounded_pos, 4u);
  EXPECT_GE(bounded_pos, 2u);  // head still runs first
}

TEST(ShflLockTest, MaxShuffleRoundsBoundsWork) {
  ShflLock lock;
  auto hooks = std::make_unique<ShflHooks>();
  hooks->cmp_node = SameSocketCmp;
  hooks->max_shuffle_rounds = ShflLock::kShuffleRoundCap + 1000;  // over cap
  lock.InstallHooks(hooks.get());
  // The clamp is internal; just exercise contention and ensure no livelock.
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 1000; ++i) {
        ShflGuard guard(lock);
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  lock.InstallHooks(nullptr);
  Rcu::Global().Synchronize();
  SUCCEED();
}

}  // namespace
}  // namespace concord
