// Lock torture — the kernel locktorture analogue.
//
// Mixed random operations (lock, trylock, nested other-lock acquisition,
// variable hold/think times) against every mutex-style lock, with a shared
// non-atomic invariant structure that any exclusion bug corrupts. The
// ShflLock variant additionally churns policies, blocking mode and profiling
// while the torture runs — the harshest realistic use of the Concord control
// plane.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "src/base/rng.h"
#include "src/base/time.h"
#include "src/concord/concord.h"
#include "src/concord/policies.h"
#include "src/sync/cna_lock.h"
#include "src/sync/cohort_lock.h"
#include "src/sync/mcs_lock.h"
#include "src/sync/shfllock.h"
#include "src/sync/tas_lock.h"
#include "src/sync/ticket_lock.h"

namespace concord {
namespace {

// Invariant payload: all fields must stay consistent under the lock.
struct TorturePayload {
  std::uint64_t a = 0;
  std::uint64_t b = 0;  // invariant: b == a * 2
  std::uint64_t c = 1;  // invariant: c == a + 1

  void Mutate() {
    a += 1;
    b = a * 2;
    c = a + 1;
  }
  bool Consistent() const { return b == a * 2 && c == a + 1; }
};

template <typename LockT>
void TortureMutex(LockT& lock, int threads, int iters_per_thread) {
  TorturePayload payload;
  std::atomic<bool> violated{false};
  std::atomic<std::uint64_t> completed{0};

  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      Xoshiro256 rng(t * 7919 + 1);
      for (int i = 0; i < iters_per_thread; ++i) {
        const std::uint64_t dice = rng.NextBounded(100);
        if (dice < 10) {
          // Trylock path: mutate only on success.
          if (lock.TryLock()) {
            if (!payload.Consistent()) {
              violated.store(true);
            }
            payload.Mutate();
            if (dice < 3) {
              BurnNs(rng.NextBounded(2'000));
            }
            lock.Unlock();
            completed.fetch_add(1, std::memory_order_relaxed);
          }
        } else {
          lock.Lock();
          if (!payload.Consistent()) {
            violated.store(true);
          }
          payload.Mutate();
          if (dice < 15) {
            BurnNs(rng.NextBounded(3'000));  // occasional long hold
          }
          lock.Unlock();
          completed.fetch_add(1, std::memory_order_relaxed);
        }
        if (dice >= 97) {
          BurnNs(rng.NextBounded(5'000));  // think time
        }
      }
    });
  }
  for (auto& worker : workers) {
    worker.join();
  }
  EXPECT_FALSE(violated.load());
  EXPECT_TRUE(payload.Consistent());
  EXPECT_EQ(payload.a, completed.load());
}

TEST(LockTortureTest, TasLock) {
  TasLock lock;
  TortureMutex(lock, 4, 8000);
}

TEST(LockTortureTest, TtasLock) {
  TtasLock lock;
  TortureMutex(lock, 4, 8000);
}

TEST(LockTortureTest, TicketLock) {
  TicketLock lock;
  TortureMutex(lock, 4, 8000);
}

TEST(LockTortureTest, McsLock) {
  McsLock lock;
  TortureMutex(lock, 4, 8000);
}

TEST(LockTortureTest, CohortLock) {
  CohortLock lock;
  TortureMutex(lock, 4, 8000);
}

TEST(LockTortureTest, ShflLockSpin) {
  ShflLock lock;
  TortureMutex(lock, 4, 8000);
}

TEST(LockTortureTest, ShflLockBlocking) {
  ShflLock lock;
  lock.SetBlocking(true);
  TortureMutex(lock, 4, 8000);
}

TEST(LockTortureTest, CnaLock) {
  struct Adapter {
    CnaLock lock;
    void Lock() { lock.Lock(Node()); }
    void Unlock() { lock.Unlock(Node()); }
    bool TryLock() { return lock.TryLock(Node()); }
    static CnaQNode& Node() {
      thread_local CnaQNode node;
      return node;
    }
  } adapter;
  TortureMutex(adapter, 4, 8000);
}

TEST(LockTortureTest, ShflLockUnderFullControlPlaneChurn) {
  // Torture the lock while the Concord control plane continuously attaches,
  // retunes, profiles and detaches policies, and toggles blocking mode.
  static ShflLock lock;
  Concord& concord = Concord::Global();
  const std::uint64_t id = concord.RegisterShflLock(lock, "torture", "t");

  TorturePayload payload;
  std::atomic<bool> violated{false};
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> completed{0};

  std::vector<std::thread> workers;
  for (int t = 0; t < 3; ++t) {
    workers.emplace_back([&, t] {
      Xoshiro256 rng(t + 1);
      while (!stop.load(std::memory_order_relaxed)) {
        lock.Lock();
        if (!payload.Consistent()) {
          violated.store(true);
        }
        payload.Mutate();
        lock.Unlock();
        completed.fetch_add(1, std::memory_order_relaxed);
        if (rng.NextBounded(64) == 0) {
          BurnNs(rng.NextBounded(2'000));
        }
      }
    });
  }

  Xoshiro256 churn_rng(42);
  for (int round = 0; round < 40; ++round) {
    switch (churn_rng.NextBounded(6)) {
      case 0: {
        auto policy = MakeNumaGroupingPolicy();
        ASSERT_TRUE(policy.ok());
        ASSERT_TRUE(concord.Attach(id, std::move(policy->spec)).ok());
        break;
      }
      case 1: {
        auto policy = MakePriorityBoostPolicy();
        ASSERT_TRUE(policy.ok());
        ASSERT_TRUE(policy->SetKnob(0, churn_rng.NextBounded(20)).ok());
        ASSERT_TRUE(concord.Attach(id, std::move(policy->spec)).ok());
        break;
      }
      case 2:
        ASSERT_TRUE(concord.Detach(id).ok());
        break;
      case 3:
        ASSERT_TRUE(concord.EnableProfiling(id).ok());
        break;
      case 4:
        ASSERT_TRUE(concord.DisableProfiling(id).ok());
        break;
      case 5:
        lock.SetBlocking(churn_rng.NextBounded(2) == 0);
        break;
    }
    timespec ts{0, 2'000'000};
    nanosleep(&ts, nullptr);
  }

  stop.store(true);
  for (auto& worker : workers) {
    worker.join();
  }
  ASSERT_TRUE(concord.Unregister(id).ok());

  EXPECT_FALSE(violated.load());
  EXPECT_TRUE(payload.Consistent());
  EXPECT_EQ(payload.a, completed.load());
  EXPECT_GT(completed.load(), 0u);
}

}  // namespace
}  // namespace concord
