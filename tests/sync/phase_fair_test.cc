#include "src/sync/phase_fair.h"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/base/time.h"

namespace concord {
namespace {

TEST(PhaseFairTest, UncontendedReadAndWrite) {
  PhaseFairRwLock lock;
  lock.ReadLock();
  lock.ReadUnlock();
  lock.WriteLock();
  lock.WriteUnlock();
  lock.ReadLock();
  lock.ReadUnlock();
}

TEST(PhaseFairTest, ReadersShare) {
  PhaseFairRwLock lock;
  lock.ReadLock();
  std::atomic<bool> second_entered{false};
  std::thread other([&] {
    lock.ReadLock();
    second_entered.store(true);
    lock.ReadUnlock();
  });
  other.join();  // must complete while we still hold our read lock
  EXPECT_TRUE(second_entered.load());
  lock.ReadUnlock();
}

TEST(PhaseFairTest, WriterExcludesEveryone) {
  PhaseFairRwLock lock;
  std::atomic<int> inside{0};
  std::atomic<bool> violated{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 2000; ++i) {
        if ((t + i) % 3 == 0) {
          lock.WriteLock();
          if (inside.fetch_add(1) != 0) {
            violated.store(true);
          }
          inside.fetch_sub(1);
          lock.WriteUnlock();
        } else {
          lock.ReadLock();
          if (inside.load() != 0) {
            violated.store(true);  // reader overlapping a writer
          }
          lock.ReadUnlock();
        }
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_FALSE(violated.load());
}

TEST(PhaseFairTest, WriteProtectedCounterExact) {
  PhaseFairRwLock lock;
  std::uint64_t counter = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 5000; ++i) {
        lock.WriteLock();
        counter = counter + 1;
        lock.WriteUnlock();
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(counter, 20'000u);
}

TEST(PhaseFairTest, LateReaderDoesNotOvertakeWaitingWriter) {
  // The phase-fair property's writer half: once a writer is waiting, readers
  // arriving afterwards must not slip in ahead of it.
  PhaseFairRwLock lock;
  std::atomic<bool> writer_done{false};
  std::atomic<bool> late_reader_entered{false};

  lock.ReadLock();  // hold a read phase open

  std::thread writer([&] {
    lock.WriteLock();
    writer_done.store(true);
    lock.WriteUnlock();
  });
  // Wait until the writer has published its presence bits.
  const std::uint64_t deadline = MonotonicNowNs() + 10'000'000'000ull;
  while (!lock.writer_present() && MonotonicNowNs() < deadline) {
    std::this_thread::yield();
  }
  ASSERT_TRUE(lock.writer_present());

  std::thread late_reader([&] {
    lock.ReadLock();
    // By phase fairness the writer ran first.
    EXPECT_TRUE(writer_done.load());
    late_reader_entered.store(true);
    lock.ReadUnlock();
  });

  BurnNs(5'000'000);
  EXPECT_FALSE(late_reader_entered.load());  // blocked behind the writer
  EXPECT_FALSE(writer_done.load());          // writer blocked on us

  lock.ReadUnlock();
  writer.join();
  late_reader.join();
  EXPECT_TRUE(late_reader_entered.load());
}

TEST(PhaseFairTest, ReaderPhaseSeparatesConsecutiveWriters) {
  // The reader half: a reader that arrived while writer A was active (or
  // waiting) enters before writer B that queued behind A — consecutive
  // writers cannot monopolize the lock.
  PhaseFairRwLock lock;
  std::vector<std::string> order;
  std::mutex order_mu;
  auto log = [&](const char* who) {
    std::lock_guard<std::mutex> guard(order_mu);
    order.push_back(who);
  };

  lock.WriteLock();  // writer A active

  // Sleeping poll so the other threads get CPU even on a 1-core host.
  auto await = [&](auto pred) {
    const std::uint64_t deadline = MonotonicNowNs() + 10'000'000'000ull;
    while (!pred() && MonotonicNowNs() < deadline) {
      timespec ts{0, 1'000'000};
      nanosleep(&ts, nullptr);
    }
    ASSERT_TRUE(pred());
  };

  std::thread reader([&] {
    lock.ReadLock();
    log("reader");
    lock.ReadUnlock();
  });
  await([&] { return lock.readers_arrived() == 1; });

  std::thread writer_b([&] {
    lock.WriteLock();
    log("writerB");
    lock.WriteUnlock();
  });
  await([&] { return lock.writers_arrived() == 2; });

  lock.WriteUnlock();  // end writer A's phase
  reader.join();
  writer_b.join();

  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], "reader");  // reader phase between the two writers
  EXPECT_EQ(order[1], "writerB");
}

}  // namespace
}  // namespace concord
