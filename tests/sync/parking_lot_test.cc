#include "src/sync/parking_lot.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "src/base/time.h"

namespace concord {
namespace {

TEST(ParkingLotTest, ParkReturnsImmediatelyOnValueMismatch) {
  std::atomic<std::uint32_t> word{5};
  const std::uint64_t start = MonotonicNowNs();
  ParkingLot::Park(&word, 4);  // expected != actual => no sleep
  EXPECT_LT(MonotonicNowNs() - start, 100'000'000ull);
}

TEST(ParkingLotTest, UnparkOneWakesParkedThread) {
  std::atomic<std::uint32_t> word{1};
  std::atomic<bool> woke{false};
  std::thread sleeper([&] {
    while (word.load() == 1) {
      ParkingLot::Park(&word, 1);
    }
    woke.store(true);
  });
  BurnNs(5'000'000);
  EXPECT_FALSE(woke.load());
  word.store(0);
  ParkingLot::UnparkOne(&word);
  sleeper.join();
  EXPECT_TRUE(woke.load());
}

TEST(ParkingLotTest, UnparkAllWakesEveryone) {
  std::atomic<std::uint32_t> word{1};
  std::atomic<int> woke{0};
  std::thread sleepers[3];
  for (auto& t : sleepers) {
    t = std::thread([&] {
      while (word.load() == 1) {
        ParkingLot::Park(&word, 1);
      }
      woke.fetch_add(1);
    });
  }
  BurnNs(10'000'000);
  word.store(0);
  ParkingLot::UnparkAll(&word);
  for (auto& t : sleepers) {
    t.join();
  }
  EXPECT_EQ(woke.load(), 3);
}

TEST(ParkingLotTest, TimeoutExpires) {
  std::atomic<std::uint32_t> word{1};
  const std::uint64_t start = MonotonicNowNs();
  ParkingLot::Park(&word, 1, /*timeout_ns=*/5'000'000);  // 5ms
  const std::uint64_t elapsed = MonotonicNowNs() - start;
  EXPECT_GE(elapsed, 4'000'000ull);
  EXPECT_LT(elapsed, 5'000'000'000ull);
}

}  // namespace
}  // namespace concord
