#include "src/base/time.h"

#include <gtest/gtest.h>

#include <thread>

namespace concord {
namespace {

TEST(ClockTest, DefaultsToRealMonotonicClock) {
  const std::uint64_t before = MonotonicNowNs();
  const std::uint64_t now = ClockNowNs();
  const std::uint64_t after = MonotonicNowNs();
  EXPECT_GE(now, before);
  EXPECT_LE(now, after);
}

TEST(ClockTest, FakeClockStartsAtConfiguredTimeAndAdvances) {
  FakeClock clock(1'000);
  EXPECT_EQ(clock.NowNs(), 1'000u);
  clock.AdvanceNs(500);
  EXPECT_EQ(clock.NowNs(), 1'500u);
  clock.AdvanceMs(2);
  EXPECT_EQ(clock.NowNs(), 2'001'500u);
}

TEST(ClockTest, OverrideRedirectsClockNowNs) {
  FakeClock clock(42);
  ClockInterface* prev = SetClockOverrideForTest(&clock);
  EXPECT_EQ(prev, nullptr);
  EXPECT_EQ(ClockNowNs(), 42u);
  clock.AdvanceNs(8);
  EXPECT_EQ(ClockNowNs(), 50u);
  SetClockOverrideForTest(nullptr);
  EXPECT_GT(ClockNowNs(), 50u);  // real clock again
}

TEST(ClockTest, ScopedFakeClockInstallsAndRestores) {
  {
    ScopedFakeClock scoped(7);
    EXPECT_EQ(ClockNowNs(), 7u);
    scoped.clock().AdvanceMs(1);
    EXPECT_EQ(ClockNowNs(), 1'000'007u);
  }
  EXPECT_GT(ClockNowNs(), 1'000'007u);  // restored to the real clock
}

TEST(ClockTest, FakeClockReadableAcrossThreads) {
  ScopedFakeClock scoped(1);
  std::uint64_t seen = 0;
  std::thread reader([&] { seen = ClockNowNs(); });
  reader.join();
  EXPECT_GE(seen, 1u);
}

}  // namespace
}  // namespace concord
