#include "src/base/histogram.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace concord {
namespace {

TEST(Log2HistogramTest, EmptyHistogram) {
  Log2Histogram h;
  EXPECT_EQ(h.TotalCount(), 0u);
  EXPECT_EQ(h.Sum(), 0u);
  EXPECT_EQ(h.Max(), 0u);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
  EXPECT_EQ(h.Percentile(50), 0u);
}

TEST(Log2HistogramTest, SingleSampleLandsInCorrectBucket) {
  Log2Histogram h;
  h.Record(1000);  // floor(log2(1000)) = 9 -> bucket 9: [512, 1024)
  EXPECT_EQ(h.TotalCount(), 1u);
  EXPECT_EQ(h.BucketCount(9), 1u);
  EXPECT_EQ(h.Sum(), 1000u);
  EXPECT_EQ(h.Max(), 1000u);
}

TEST(Log2HistogramTest, ZeroGoesToBucketZero) {
  Log2Histogram h;
  h.Record(0);
  EXPECT_EQ(h.BucketCount(0), 1u);
}

TEST(Log2HistogramTest, PowerOfTwoBoundaries) {
  Log2Histogram h;
  h.Record(1);    // bucket 0: [0,2)
  h.Record(2);    // bucket 1: [2,4)
  h.Record(3);    // bucket 1
  h.Record(4);    // bucket 2: [4,8)
  EXPECT_EQ(h.BucketCount(0), 1u);
  EXPECT_EQ(h.BucketCount(1), 2u);
  EXPECT_EQ(h.BucketCount(2), 1u);
}

TEST(Log2HistogramTest, BucketForCoversEveryBoundary) {
  // Exact floor(log2): 2^k-1 stays in bucket k-1, 2^k starts bucket k.
  EXPECT_EQ(Log2Histogram::BucketFor(0), 0);
  EXPECT_EQ(Log2Histogram::BucketFor(1), 0);
  EXPECT_EQ(Log2Histogram::BucketFor(2), 1);
  for (int k = 2; k < 64; ++k) {
    EXPECT_EQ(Log2Histogram::BucketFor((1ull << k) - 1), k - 1) << "k=" << k;
    EXPECT_EQ(Log2Histogram::BucketFor(1ull << k), k) << "k=" << k;
  }
  EXPECT_EQ(Log2Histogram::BucketFor(UINT64_MAX), 63);
}

TEST(Log2HistogramTest, TopBucketIsHonestOverflowBucket) {
  // Regression: values >= 2^63 used to be clamped into the bucket labeled
  // [2^62, 2^63), under-reporting tail percentiles by up to 2x. Bucket 63
  // must report them with lower bound 2^63.
  Log2Histogram h;
  h.Record(1ull << 63);
  h.Record(UINT64_MAX);
  EXPECT_EQ(h.BucketCount(63), 2u);
  EXPECT_EQ(h.BucketCount(62), 0u);
  EXPECT_EQ(Log2Histogram::BucketLowerBound(63), 1ull << 63);
  EXPECT_EQ(h.Percentile(50), 1ull << 63);
  // The biggest representable value is still one bucket away from 2^62.
  h.Record((1ull << 62));
  EXPECT_EQ(h.BucketCount(62), 1u);
}

TEST(Log2HistogramTest, PercentileEdgeCases) {
  Log2Histogram h;
  for (int i = 0; i < 90; ++i) {
    h.Record(100);  // bucket 6: [64,128)
  }
  for (int i = 0; i < 10; ++i) {
    h.Record(10'000);  // bucket 13: [8192,16384)
  }
  EXPECT_EQ(h.Percentile(0), 64u);
  EXPECT_EQ(h.Percentile(50), 64u);
  // p100 resolves to the recorded maximum, not a bucket bound.
  EXPECT_EQ(h.Percentile(100), 10'000u);
  // Out-of-range p is clamped.
  EXPECT_EQ(h.Percentile(-5), h.Percentile(0));
  EXPECT_EQ(h.Percentile(250), h.Percentile(100));
}

TEST(Log2HistogramTest, MeanMatchesArithmetic) {
  Log2Histogram h;
  h.Record(10);
  h.Record(20);
  h.Record(30);
  EXPECT_DOUBLE_EQ(h.Mean(), 20.0);
}

TEST(Log2HistogramTest, PercentileBracketsMedian) {
  Log2Histogram h;
  for (int i = 0; i < 100; ++i) {
    h.Record(16);  // bucket 5: [16,32)
  }
  for (int i = 0; i < 10; ++i) {
    h.Record(1 << 20);
  }
  // Median must resolve to bucket 5's lower bound.
  EXPECT_EQ(h.Percentile(50), 16u);
  // p99+ reaches the outlier bucket.
  EXPECT_GE(h.Percentile(99.5), 1u << 19);
}

TEST(Log2HistogramTest, ResetClearsEverything) {
  Log2Histogram h;
  h.Record(123);
  h.Reset();
  EXPECT_EQ(h.TotalCount(), 0u);
  EXPECT_EQ(h.Sum(), 0u);
  EXPECT_EQ(h.Max(), 0u);
}

TEST(Log2HistogramTest, MergeCombinesCountsSumAndMax) {
  Log2Histogram a;
  Log2Histogram b;
  a.Record(10);
  b.Record(1000);
  b.Record(5);
  a.MergeFrom(b);
  EXPECT_EQ(a.TotalCount(), 3u);
  EXPECT_EQ(a.Sum(), 1015u);
  EXPECT_EQ(a.Max(), 1000u);
}

TEST(Log2HistogramTest, SnapshotCopyIsIndependent) {
  Log2Histogram a;
  a.Record(100);
  Log2Histogram copy = a;  // snapshot copy ctor
  a.Record(100);
  EXPECT_EQ(copy.TotalCount(), 1u);
  EXPECT_EQ(a.TotalCount(), 2u);
  copy = a;
  EXPECT_EQ(copy.TotalCount(), 2u);
  EXPECT_EQ(copy.Sum(), 200u);
  EXPECT_EQ(copy.Max(), 100u);
}

TEST(Log2HistogramTest, ToStringListsNonEmptyBuckets) {
  Log2Histogram h;
  h.Record(100);
  const std::string s = h.ToString();
  EXPECT_NE(s.find("64"), std::string::npos);  // bucket [64,128)
}

TEST(Log2HistogramTest, ConcurrentRecordsAreNotLost) {
  Log2Histogram h;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (int i = 0; i < kPerThread; ++i) {
        h.Record(42);
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(h.TotalCount(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(h.Sum(), static_cast<std::uint64_t>(kThreads) * kPerThread * 42);
}

}  // namespace
}  // namespace concord
