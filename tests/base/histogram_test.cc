#include "src/base/histogram.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace concord {
namespace {

TEST(Log2HistogramTest, EmptyHistogram) {
  Log2Histogram h;
  EXPECT_EQ(h.TotalCount(), 0u);
  EXPECT_EQ(h.Sum(), 0u);
  EXPECT_EQ(h.Max(), 0u);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
  EXPECT_EQ(h.Percentile(50), 0u);
}

TEST(Log2HistogramTest, SingleSampleLandsInCorrectBucket) {
  Log2Histogram h;
  h.Record(1000);  // 2^9 < 1000 < 2^10 -> bucket 10
  EXPECT_EQ(h.TotalCount(), 1u);
  EXPECT_EQ(h.BucketCount(10), 1u);
  EXPECT_EQ(h.Sum(), 1000u);
  EXPECT_EQ(h.Max(), 1000u);
}

TEST(Log2HistogramTest, ZeroGoesToBucketZero) {
  Log2Histogram h;
  h.Record(0);
  EXPECT_EQ(h.BucketCount(0), 1u);
}

TEST(Log2HistogramTest, PowerOfTwoBoundaries) {
  Log2Histogram h;
  h.Record(1);    // bucket 1: [1,2)
  h.Record(2);    // bucket 2: [2,4)
  h.Record(3);    // bucket 2
  h.Record(4);    // bucket 3: [4,8)
  EXPECT_EQ(h.BucketCount(1), 1u);
  EXPECT_EQ(h.BucketCount(2), 2u);
  EXPECT_EQ(h.BucketCount(3), 1u);
}

TEST(Log2HistogramTest, MeanMatchesArithmetic) {
  Log2Histogram h;
  h.Record(10);
  h.Record(20);
  h.Record(30);
  EXPECT_DOUBLE_EQ(h.Mean(), 20.0);
}

TEST(Log2HistogramTest, PercentileBracketsMedian) {
  Log2Histogram h;
  for (int i = 0; i < 100; ++i) {
    h.Record(16);  // bucket 5: [16,32)
  }
  for (int i = 0; i < 10; ++i) {
    h.Record(1 << 20);
  }
  // Median must resolve to bucket 5's lower bound.
  EXPECT_EQ(h.Percentile(50), 16u);
  // p99+ reaches the outlier bucket.
  EXPECT_GE(h.Percentile(99.5), 1u << 19);
}

TEST(Log2HistogramTest, ResetClearsEverything) {
  Log2Histogram h;
  h.Record(123);
  h.Reset();
  EXPECT_EQ(h.TotalCount(), 0u);
  EXPECT_EQ(h.Sum(), 0u);
  EXPECT_EQ(h.Max(), 0u);
}

TEST(Log2HistogramTest, MergeCombinesCountsSumAndMax) {
  Log2Histogram a;
  Log2Histogram b;
  a.Record(10);
  b.Record(1000);
  b.Record(5);
  a.MergeFrom(b);
  EXPECT_EQ(a.TotalCount(), 3u);
  EXPECT_EQ(a.Sum(), 1015u);
  EXPECT_EQ(a.Max(), 1000u);
}

TEST(Log2HistogramTest, ToStringListsNonEmptyBuckets) {
  Log2Histogram h;
  h.Record(100);
  const std::string s = h.ToString();
  EXPECT_NE(s.find("64"), std::string::npos);  // bucket [64,128)
}

TEST(Log2HistogramTest, ConcurrentRecordsAreNotLost) {
  Log2Histogram h;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (int i = 0; i < kPerThread; ++i) {
        h.Record(42);
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(h.TotalCount(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(h.Sum(), static_cast<std::uint64_t>(kThreads) * kPerThread * 42);
}

}  // namespace
}  // namespace concord
