#include "src/base/json.h"

#include <gtest/gtest.h>

#include <cstdint>

namespace concord {
namespace {

// --- writer -------------------------------------------------------------------

TEST(JsonWriterTest, EmptyObjectAndArray) {
  JsonWriter w;
  w.BeginObject();
  w.EndObject();
  EXPECT_EQ(w.str(), "{}");

  JsonWriter a;
  a.BeginArray();
  a.EndArray();
  EXPECT_EQ(a.str(), "[]");
}

TEST(JsonWriterTest, FieldsAndCommas) {
  JsonWriter w;
  w.BeginObject();
  w.Field("name", "shfl");
  w.NumberField("id", std::uint64_t{7});
  w.Key("flags").BeginArray();
  w.Bool(true);
  w.Bool(false);
  w.Null();
  w.EndArray();
  w.EndObject();
  EXPECT_EQ(w.str(), R"({"name":"shfl","id":7,"flags":[true,false,null]})");
}

TEST(JsonWriterTest, EscapesStrings) {
  JsonWriter w;
  w.String("a\"b\\c\n\t\x01");
  EXPECT_EQ(w.str(), "\"a\\\"b\\\\c\\n\\t\\u0001\"");
}

TEST(JsonWriterTest, LargeU64RoundTripsExactly) {
  // Doubles lose precision past 2^53; u64 counters must be emitted as
  // integers verbatim.
  JsonWriter w;
  w.Number(UINT64_MAX);
  EXPECT_EQ(w.str(), "18446744073709551615");
}

TEST(JsonWriterTest, NestedObjects) {
  JsonWriter w;
  w.BeginObject();
  w.Key("outer").BeginObject();
  w.NumberField("x", 1);
  w.EndObject();
  w.NumberField("y", 2);
  w.EndObject();
  EXPECT_EQ(w.str(), R"({"outer":{"x":1},"y":2})");
}

// --- parser -------------------------------------------------------------------

TEST(JsonParserTest, ParsesScalars) {
  auto v = ParseJson("42");
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->IsNumber());
  EXPECT_DOUBLE_EQ(v->number_value, 42.0);

  v = ParseJson("-1.5e2");
  ASSERT_TRUE(v.ok());
  EXPECT_DOUBLE_EQ(v->number_value, -150.0);

  v = ParseJson("true");
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->IsBool());
  EXPECT_TRUE(v->bool_value);

  v = ParseJson("null");
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->IsNull());

  v = ParseJson(R"("hi\nthere")");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->string_value, "hi\nthere");
}

TEST(JsonParserTest, ParsesNestedStructure) {
  auto v = ParseJson(R"({"a":[1,2,{"b":"c"}],"d":{"e":false}})");
  ASSERT_TRUE(v.ok());
  ASSERT_TRUE(v->IsObject());
  const JsonValue* a = v->Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->IsArray());
  ASSERT_EQ(a->array.size(), 3u);
  EXPECT_DOUBLE_EQ(a->array[0].number_value, 1.0);
  const JsonValue* b = a->array[2].Find("b");
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->string_value, "c");
  const JsonValue* d = v->Find("d");
  ASSERT_NE(d, nullptr);
  const JsonValue* e = d->Find("e");
  ASSERT_NE(e, nullptr);
  EXPECT_FALSE(e->bool_value);
}

TEST(JsonParserTest, ParsesUnicodeEscapes) {
  auto v = ParseJson(R"("Aé")");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->string_value, "A\xc3\xa9");  // "Aé" in UTF-8
}

TEST(JsonParserTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseJson("").ok());
  EXPECT_FALSE(ParseJson("{").ok());
  EXPECT_FALSE(ParseJson("[1,]").ok());
  EXPECT_FALSE(ParseJson("{\"a\":}").ok());
  EXPECT_FALSE(ParseJson("tru").ok());
  EXPECT_FALSE(ParseJson("1 2").ok());  // trailing garbage
  EXPECT_FALSE(ParseJson("\"unterminated").ok());
}

TEST(JsonParserTest, RejectsRunawayNesting) {
  std::string deep;
  for (int i = 0; i < 100; ++i) {
    deep += "[";
  }
  EXPECT_FALSE(ParseJson(deep).ok());
}

// Regression: control characters, quotes and non-ASCII bytes must all escape
// to output the parser accepts — names fed to the writer come from operator
// input (lock names, policy files, RPC params), not a trusted vocabulary.
TEST(JsonWriterTest, EscapesAllControlCharacters) {
  for (int c = 0; c < 0x20; ++c) {
    JsonWriter w;
    w.String(std::string(1, static_cast<char>(c)));
    auto parsed = ParseJson(w.str());
    ASSERT_TRUE(parsed.ok()) << "control char " << c << " -> " << w.str();
    EXPECT_EQ(parsed->string_value, std::string(1, static_cast<char>(c)))
        << "control char " << c;
    // \u00XX escapes (or the short forms) only — never a raw control byte.
    for (char raw : w.str()) {
      EXPECT_GE(static_cast<unsigned char>(raw), 0x20u);
    }
  }
}

TEST(JsonWriterTest, EscapesBackspaceAndFormFeedShortForms) {
  JsonWriter w;
  w.String("\b\f");
  EXPECT_EQ(w.str(), "\"\\b\\f\"");
}

TEST(JsonWriterTest, PassesThroughValidUtf8) {
  // 2-, 3- and 4-byte sequences survive verbatim and round-trip.
  const std::string text = "caf\xc3\xa9 \xe6\xbc\xa2 \xf0\x9f\x94\x92";
  JsonWriter w;
  w.String(text);
  auto parsed = ParseJson(w.str());
  ASSERT_TRUE(parsed.ok()) << w.str();
  EXPECT_EQ(parsed->string_value, text);
}

TEST(JsonWriterTest, ReplacesInvalidUtf8WithReplacementChar) {
  // Lone continuation byte, truncated lead, overlong encoding of '/', UTF-16
  // surrogate half, codepoint past U+10FFFF: each must become � (never
  // raw bytes that would make the emitted document unparseable).
  const char* cases[] = {
      "\x80",              // bare continuation
      "\xc3",              // truncated 2-byte lead at end of string
      "\xc0\xaf",          // overlong '/'
      "\xed\xa0\x80",      // UTF-16 high surrogate D800
      "\xf4\x90\x80\x80",  // U+110000, out of range
  };
  for (const char* bad : cases) {
    JsonWriter w;
    w.String(std::string("x") + bad + "y");
    auto parsed = ParseJson(w.str());
    ASSERT_TRUE(parsed.ok()) << "input escaped to unparseable: " << w.str();
    EXPECT_NE(w.str().find("\\ufffd"), std::string::npos) << w.str();
    // The good neighbours survive.
    EXPECT_EQ(parsed->string_value.front(), 'x');
    EXPECT_EQ(parsed->string_value.back(), 'y');
  }
}

TEST(JsonRoundTripTest, WriterOutputParses) {
  JsonWriter w;
  w.BeginObject();
  w.Field("bench", "fig2b");
  w.NumberField("ops", 123456.75);
  w.Key("threads").BeginArray();
  for (int t : {1, 2, 4, 8}) {
    w.Number(t);
  }
  w.EndArray();
  w.EndObject();

  auto v = ParseJson(w.str());
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->Find("bench")->string_value, "fig2b");
  EXPECT_DOUBLE_EQ(v->Find("ops")->number_value, 123456.75);
  EXPECT_EQ(v->Find("threads")->array.size(), 4u);
}

}  // namespace
}  // namespace concord
