#include "src/base/json.h"

#include <gtest/gtest.h>

#include <cstdint>

namespace concord {
namespace {

// --- writer -------------------------------------------------------------------

TEST(JsonWriterTest, EmptyObjectAndArray) {
  JsonWriter w;
  w.BeginObject();
  w.EndObject();
  EXPECT_EQ(w.str(), "{}");

  JsonWriter a;
  a.BeginArray();
  a.EndArray();
  EXPECT_EQ(a.str(), "[]");
}

TEST(JsonWriterTest, FieldsAndCommas) {
  JsonWriter w;
  w.BeginObject();
  w.Field("name", "shfl");
  w.NumberField("id", std::uint64_t{7});
  w.Key("flags").BeginArray();
  w.Bool(true);
  w.Bool(false);
  w.Null();
  w.EndArray();
  w.EndObject();
  EXPECT_EQ(w.str(), R"({"name":"shfl","id":7,"flags":[true,false,null]})");
}

TEST(JsonWriterTest, EscapesStrings) {
  JsonWriter w;
  w.String("a\"b\\c\n\t\x01");
  EXPECT_EQ(w.str(), "\"a\\\"b\\\\c\\n\\t\\u0001\"");
}

TEST(JsonWriterTest, LargeU64RoundTripsExactly) {
  // Doubles lose precision past 2^53; u64 counters must be emitted as
  // integers verbatim.
  JsonWriter w;
  w.Number(UINT64_MAX);
  EXPECT_EQ(w.str(), "18446744073709551615");
}

TEST(JsonWriterTest, NestedObjects) {
  JsonWriter w;
  w.BeginObject();
  w.Key("outer").BeginObject();
  w.NumberField("x", 1);
  w.EndObject();
  w.NumberField("y", 2);
  w.EndObject();
  EXPECT_EQ(w.str(), R"({"outer":{"x":1},"y":2})");
}

// --- parser -------------------------------------------------------------------

TEST(JsonParserTest, ParsesScalars) {
  auto v = ParseJson("42");
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->IsNumber());
  EXPECT_DOUBLE_EQ(v->number_value, 42.0);

  v = ParseJson("-1.5e2");
  ASSERT_TRUE(v.ok());
  EXPECT_DOUBLE_EQ(v->number_value, -150.0);

  v = ParseJson("true");
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->IsBool());
  EXPECT_TRUE(v->bool_value);

  v = ParseJson("null");
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->IsNull());

  v = ParseJson(R"("hi\nthere")");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->string_value, "hi\nthere");
}

TEST(JsonParserTest, ParsesNestedStructure) {
  auto v = ParseJson(R"({"a":[1,2,{"b":"c"}],"d":{"e":false}})");
  ASSERT_TRUE(v.ok());
  ASSERT_TRUE(v->IsObject());
  const JsonValue* a = v->Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->IsArray());
  ASSERT_EQ(a->array.size(), 3u);
  EXPECT_DOUBLE_EQ(a->array[0].number_value, 1.0);
  const JsonValue* b = a->array[2].Find("b");
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->string_value, "c");
  const JsonValue* d = v->Find("d");
  ASSERT_NE(d, nullptr);
  const JsonValue* e = d->Find("e");
  ASSERT_NE(e, nullptr);
  EXPECT_FALSE(e->bool_value);
}

TEST(JsonParserTest, ParsesUnicodeEscapes) {
  auto v = ParseJson(R"("Aé")");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->string_value, "A\xc3\xa9");  // "Aé" in UTF-8
}

TEST(JsonParserTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseJson("").ok());
  EXPECT_FALSE(ParseJson("{").ok());
  EXPECT_FALSE(ParseJson("[1,]").ok());
  EXPECT_FALSE(ParseJson("{\"a\":}").ok());
  EXPECT_FALSE(ParseJson("tru").ok());
  EXPECT_FALSE(ParseJson("1 2").ok());  // trailing garbage
  EXPECT_FALSE(ParseJson("\"unterminated").ok());
}

TEST(JsonParserTest, RejectsRunawayNesting) {
  std::string deep;
  for (int i = 0; i < 100; ++i) {
    deep += "[";
  }
  EXPECT_FALSE(ParseJson(deep).ok());
}

TEST(JsonRoundTripTest, WriterOutputParses) {
  JsonWriter w;
  w.BeginObject();
  w.Field("bench", "fig2b");
  w.NumberField("ops", 123456.75);
  w.Key("threads").BeginArray();
  for (int t : {1, 2, 4, 8}) {
    w.Number(t);
  }
  w.EndArray();
  w.EndObject();

  auto v = ParseJson(w.str());
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->Find("bench")->string_value, "fig2b");
  EXPECT_DOUBLE_EQ(v->Find("ops")->number_value, 123456.75);
  EXPECT_EQ(v->Find("threads")->array.size(), 4u);
}

}  // namespace
}  // namespace concord
