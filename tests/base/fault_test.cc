#include "src/base/fault.h"

#include <gtest/gtest.h>

#include <vector>

namespace concord {
namespace {

#if CONCORD_FAULT_INJECTION

class FaultTest : public ::testing::Test {
 protected:
  void TearDown() override { FaultRegistry::Global().DisarmAll(); }
};

TEST_F(FaultTest, UnarmedPointNeverFires) {
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(CONCORD_FAULT_POINT("fault_test.unarmed"));
  }
  EXPECT_EQ(FaultRegistry::Global().Evaluations("fault_test.unarmed"), 0u);
}

TEST_F(FaultTest, AlwaysModeFiresEveryEvaluation) {
  FaultRegistry::Global().Arm("fault_test.always", {});
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(CONCORD_FAULT_POINT("fault_test.always"));
  }
  EXPECT_EQ(FaultRegistry::Global().Evaluations("fault_test.always"), 10u);
  EXPECT_EQ(FaultRegistry::Global().Fires("fault_test.always"), 10u);
}

TEST_F(FaultTest, NthModeFiresExactlyOnce) {
  FaultRegistry::Spec spec;
  spec.mode = FaultRegistry::Mode::kNth;
  spec.n = 3;
  FaultRegistry::Global().Arm("fault_test.nth", spec);
  EXPECT_FALSE(CONCORD_FAULT_POINT("fault_test.nth"));
  EXPECT_FALSE(CONCORD_FAULT_POINT("fault_test.nth"));
  EXPECT_TRUE(CONCORD_FAULT_POINT("fault_test.nth"));
  EXPECT_FALSE(CONCORD_FAULT_POINT("fault_test.nth"));
  EXPECT_EQ(FaultRegistry::Global().Fires("fault_test.nth"), 1u);
}

TEST_F(FaultTest, FirstNModeFiresThenStops) {
  FaultRegistry::Spec spec;
  spec.mode = FaultRegistry::Mode::kFirstN;
  spec.n = 2;
  FaultRegistry::Global().Arm("fault_test.firstn", spec);
  EXPECT_TRUE(CONCORD_FAULT_POINT("fault_test.firstn"));
  EXPECT_TRUE(CONCORD_FAULT_POINT("fault_test.firstn"));
  EXPECT_FALSE(CONCORD_FAULT_POINT("fault_test.firstn"));
  EXPECT_EQ(FaultRegistry::Global().Fires("fault_test.firstn"), 2u);
}

TEST_F(FaultTest, OneInModeIsSeededAndDeterministic) {
  FaultRegistry::Spec spec;
  spec.mode = FaultRegistry::Mode::kOneIn;
  spec.n = 4;
  spec.seed = 99;
  FaultRegistry::Global().Arm("fault_test.onein", spec);
  std::vector<bool> first_run;
  for (int i = 0; i < 64; ++i) {
    first_run.push_back(CONCORD_FAULT_POINT("fault_test.onein"));
  }
  const std::uint64_t fires = FaultRegistry::Global().Fires("fault_test.onein");
  // Pseudo-random at rate ~1/4: somewhere well inside (0, 64).
  EXPECT_GT(fires, 2u);
  EXPECT_LT(fires, 40u);

  // Re-arming with the same seed replays the exact schedule.
  FaultRegistry::Global().Arm("fault_test.onein", spec);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(CONCORD_FAULT_POINT("fault_test.onein"), first_run[i]) << i;
  }
}

TEST_F(FaultTest, DisarmStopsFiring) {
  FaultRegistry::Global().Arm("fault_test.disarm", {});
  EXPECT_TRUE(CONCORD_FAULT_POINT("fault_test.disarm"));
  FaultRegistry::Global().Disarm("fault_test.disarm");
  EXPECT_FALSE(CONCORD_FAULT_POINT("fault_test.disarm"));
}

TEST_F(FaultTest, DirectiveParsing) {
  FaultRegistry& registry = FaultRegistry::Global();
  EXPECT_TRUE(registry.ArmFromDirective("p.a=always"));
  EXPECT_TRUE(registry.ArmFromDirective("p.b=1in8"));
  EXPECT_TRUE(registry.ArmFromDirective("p.c=1in8:42"));
  EXPECT_TRUE(registry.ArmFromDirective("p.d=nth5"));
  EXPECT_TRUE(registry.ArmFromDirective("p.e=first3"));
  EXPECT_TRUE(registry.ArmFromDirective("p.f=always@1000000"));

  EXPECT_FALSE(registry.ArmFromDirective(""));
  EXPECT_FALSE(registry.ArmFromDirective("noequals"));
  EXPECT_FALSE(registry.ArmFromDirective("p.g="));
  EXPECT_FALSE(registry.ArmFromDirective("p.g=bogus"));
  EXPECT_FALSE(registry.ArmFromDirective("p.g=1in0"));
  EXPECT_FALSE(registry.ArmFromDirective("p.g=nthx"));
  EXPECT_FALSE(registry.ArmFromDirective("p.g=always@"));
  EXPECT_FALSE(registry.ArmFromDirective("p.g=always@abc"));

  EXPECT_TRUE(CONCORD_FAULT_POINT("p.a"));
  EXPECT_EQ(CONCORD_FAULT_DELAY_NS("p.f"), 1'000'000u);
}

TEST_F(FaultTest, DelayOnlyReturnsWhenArmedWithDelay) {
  EXPECT_EQ(CONCORD_FAULT_DELAY_NS("fault_test.nodelay"), 0u);
  FaultRegistry::Spec spec;
  spec.delay_ns = 777;
  FaultRegistry::Global().Arm("fault_test.delay", spec);
  EXPECT_EQ(CONCORD_FAULT_DELAY_NS("fault_test.delay"), 777u);
}

TEST_F(FaultTest, ThreadFiresCountsThisThreadsFires) {
  const std::uint64_t before = FaultRegistry::ThreadFires();
  FaultRegistry::Global().Arm("fault_test.tls", {});
  CONCORD_FAULT_POINT("fault_test.tls");
  CONCORD_FAULT_POINT("fault_test.tls");
  EXPECT_EQ(FaultRegistry::ThreadFires(), before + 2);
}

TEST_F(FaultTest, ListPointsCoversKnownSitesAndArmedState) {
  const auto find = [](const std::vector<FaultRegistry::PointInfo>& points,
                       const std::string& name)
      -> const FaultRegistry::PointInfo* {
    for (const auto& point : points) {
      if (point.name == name) {
        return &point;
      }
    }
    return nullptr;
  };

  // Every compiled-in site is listed with a description even when unarmed.
  auto points = FaultRegistry::Global().ListPoints();
  for (const char* known :
       {"bpf.map_lookup", "bpf.helper", "jit.compile", "park.delayed_wake",
        "autotune.decide", "rpc.accept", "rpc.read", "rpc.write",
        "rpc.handler"}) {
    const auto* info = find(points, known);
    ASSERT_NE(info, nullptr) << known;
    EXPECT_FALSE(info->armed) << known;
    EXPECT_FALSE(info->description.empty()) << known;
  }

  // Arming shows up with a directive that round-trips through the parser,
  // and ad-hoc (unknown) points appear too.
  ASSERT_TRUE(FaultRegistry::Global().ArmFromDirective("rpc.read=1in8:42"));
  ASSERT_TRUE(FaultRegistry::Global().ArmFromDirective("fault_test.adhoc=nth3"));
  CONCORD_FAULT_POINT("rpc.read");
  points = FaultRegistry::Global().ListPoints();

  const auto* read = find(points, "rpc.read");
  ASSERT_NE(read, nullptr);
  EXPECT_TRUE(read->armed);
  EXPECT_EQ(read->directive, "1in8:42");
  EXPECT_EQ(read->evaluations, 1u);

  const auto* adhoc = find(points, "fault_test.adhoc");
  ASSERT_NE(adhoc, nullptr);
  EXPECT_TRUE(adhoc->armed);
  EXPECT_EQ(adhoc->directive, "nth3");
}

#else  // !CONCORD_FAULT_INJECTION

TEST(FaultTest, MacrosCompileOutToConstants) {
  EXPECT_FALSE(CONCORD_FAULT_POINT("anything"));
  EXPECT_EQ(CONCORD_FAULT_DELAY_NS("anything"), 0u);
}

#endif  // CONCORD_FAULT_INJECTION

}  // namespace
}  // namespace concord
