#include "src/base/rng.h"

#include <gtest/gtest.h>

#include <set>

namespace concord {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Xoshiro256 a(7);
  Xoshiro256 b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Xoshiro256 a(1);
  Xoshiro256 b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) {
      ++same;
    }
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, BoundedStaysInRange) {
  Xoshiro256 rng(42);
  for (std::uint64_t bound : {1ull, 2ull, 7ull, 100ull, 1ull << 40}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(RngTest, BoundedZeroReturnsZero) {
  Xoshiro256 rng(42);
  EXPECT_EQ(rng.NextBounded(0), 0u);
}

TEST(RngTest, BoundedCoversAllResidues) {
  Xoshiro256 rng(99);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    seen.insert(rng.NextBounded(8));
  }
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, DoubleInUnitInterval) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliRespectsProbabilityRoughly) {
  Xoshiro256 rng(11);
  int hits = 0;
  constexpr int kTrials = 100000;
  for (int i = 0; i < kTrials; ++i) {
    hits += rng.Bernoulli(0.25) ? 1 : 0;
  }
  const double rate = static_cast<double>(hits) / kTrials;
  EXPECT_NEAR(rate, 0.25, 0.02);
}

TEST(RngTest, SplitMixAdvancesState) {
  std::uint64_t state = 0;
  const std::uint64_t a = SplitMix64(state);
  const std::uint64_t b = SplitMix64(state);
  EXPECT_NE(a, b);
  EXPECT_NE(state, 0u);
}

}  // namespace
}  // namespace concord
