#include "src/base/spinwait.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "src/base/time.h"

namespace concord {
namespace {

TEST(SpinWaitTest, IterationsCountUp) {
  SpinWait spin;
  EXPECT_EQ(spin.iterations(), 0u);
  spin.Once();
  spin.Once();
  EXPECT_EQ(spin.iterations(), 2u);
}

TEST(SpinWaitTest, ResetRestartsEscalation) {
  SpinWait spin;
  for (int i = 0; i < 100; ++i) {
    spin.Once();
  }
  spin.Reset();
  EXPECT_EQ(spin.iterations(), 0u);
}

TEST(SpinWaitTest, MakesProgressUnderOversubscription) {
  // A waiter must observe a flag set by another thread even when the host
  // has a single core: SpinWait's yield/sleep escalation is what guarantees
  // the setter gets CPU time.
  std::atomic<bool> flag{false};
  std::thread setter([&flag] {
    BurnNs(2'000'000);  // 2ms of work before setting
    flag.store(true, std::memory_order_release);
  });
  SpinWait spin;
  const std::uint64_t start = MonotonicNowNs();
  while (!flag.load(std::memory_order_acquire)) {
    spin.Once();
    ASSERT_LT(MonotonicNowNs() - start, 10'000'000'000ull) << "livelock";
  }
  setter.join();
  SUCCEED();
}

TEST(TimeTest, BurnNsBurnsAtLeastRequested) {
  const std::uint64_t start = MonotonicNowNs();
  BurnNs(1'000'000);
  EXPECT_GE(MonotonicNowNs() - start, 1'000'000u);
}

TEST(TimeTest, MonotonicNowAdvances) {
  const std::uint64_t a = MonotonicNowNs();
  const std::uint64_t b = MonotonicNowNs();
  EXPECT_GE(b, a);
}

}  // namespace
}  // namespace concord
