#include "src/base/status.h"

#include <gtest/gtest.h>

#include <memory>

namespace concord {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = InvalidArgumentError("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad input");
}

TEST(StatusTest, AllErrorConstructorsSetCodes) {
  EXPECT_EQ(FailedPreconditionError("x").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(NotFoundError("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(PermissionDeniedError("x").code(), StatusCode::kPermissionDenied);
  EXPECT_EQ(ResourceExhaustedError("x").code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(InternalError("x").code(), StatusCode::kInternal);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_TRUE(v.status().ok());
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = NotFoundError("missing");
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOnlyValueWorks) {
  StatusOr<std::unique_ptr<int>> v = std::make_unique<int>(7);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(**v, 7);
}

Status FailsFast() {
  CONCORD_RETURN_IF_ERROR(InternalError("inner"));
  return Status::Ok();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  Status s = FailsFast();
  EXPECT_EQ(s.code(), StatusCode::kInternal);
  EXPECT_EQ(s.message(), "inner");
}

}  // namespace
}  // namespace concord
