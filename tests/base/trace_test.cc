#include "src/base/trace.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "src/base/time.h"

namespace concord {
namespace {

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
#if !CONCORD_TRACE
    GTEST_SKIP() << "flight recorder compiled out (CONCORD_ENABLE_TRACE=OFF)";
#endif
    TraceRegistry::Global().ResetForTest();
  }
  void TearDown() override { TraceRegistry::Global().ResetForTest(); }
};

TEST_F(TraceTest, DisabledByDefault) {
  EXPECT_FALSE(TraceEnabled(1));
  TraceRecord(1, TraceEventKind::kAcquire);
  EXPECT_TRUE(TraceRegistry::Global().Collect().empty());
}

TEST_F(TraceTest, PerLockEnableGates) {
  TraceRegistry& registry = TraceRegistry::Global();
  registry.EnableLock(2);
  EXPECT_TRUE(TraceEnabled(2));
  EXPECT_FALSE(TraceEnabled(3));

  TraceRecord(2, TraceEventKind::kAcquire);
  TraceRecord(3, TraceEventKind::kAcquire);  // not enabled: dropped
  const auto events = registry.Collect();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].lock_id, 2u);
  EXPECT_EQ(events[0].kind, TraceEventKind::kAcquire);

  registry.DisableLock(2);
  EXPECT_FALSE(TraceEnabled(2));
}

TEST_F(TraceTest, LockIdZeroAndOutOfRangeNeverTrace) {
  TraceRegistry& registry = TraceRegistry::Global();
  registry.EnableLock(0);
  registry.EnableLock(trace_internal::kMaxTraceLocks + 5);
  EXPECT_FALSE(TraceEnabled(0));
  EXPECT_FALSE(TraceEnabled(trace_internal::kMaxTraceLocks + 5));
}

TEST_F(TraceTest, RecordsTimestampedEventsInOrder) {
  ScopedFakeClock fake(100);
  TraceRegistry& registry = TraceRegistry::Global();
  registry.EnableLock(5);

  TraceRecord(5, TraceEventKind::kAcquire);
  fake.clock().AdvanceNs(50);
  TraceRecord(5, TraceEventKind::kContended);
  fake.clock().AdvanceNs(50);
  TraceRecord(5, TraceEventKind::kAcquired);
  fake.clock().AdvanceNs(25);
  TraceRecord(5, TraceEventKind::kRelease);

  const auto events = registry.Collect();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].ts_ns, 100u);
  EXPECT_EQ(events[0].kind, TraceEventKind::kAcquire);
  EXPECT_EQ(events[1].kind, TraceEventKind::kContended);
  EXPECT_EQ(events[2].kind, TraceEventKind::kAcquired);
  EXPECT_EQ(events[3].ts_ns, 225u);
  EXPECT_EQ(events[3].kind, TraceEventKind::kRelease);
}

TEST_F(TraceTest, ArgCarriesPayload) {
  TraceRegistry& registry = TraceRegistry::Global();
  registry.EnableLock(6);
  TraceRecord(6, TraceEventKind::kShuffleRound, 3);
  TraceRecord(6, TraceEventKind::kPark, 129);
  const auto events = registry.Collect();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].arg, 3u);
  EXPECT_EQ(events[1].arg, 129u);
}

TEST_F(TraceTest, RingOverwritesOldestWhenFull) {
  TraceRegistry& registry = TraceRegistry::Global();
  registry.EnableLock(7);
  const std::size_t total = TraceRing::kCapacity + 100;
  for (std::size_t i = 0; i < total; ++i) {
    TraceRecord(7, TraceEventKind::kAcquire, i);
  }
  const auto events = registry.Collect();
  // This thread's ring holds exactly kCapacity events: the newest ones.
  std::size_t mine = 0;
  std::uint64_t min_arg = ~0ull;
  std::uint64_t max_arg = 0;
  for (const TraceEvent& event : events) {
    if (event.lock_id == 7) {
      ++mine;
      min_arg = std::min(min_arg, event.arg);
      max_arg = std::max(max_arg, event.arg);
    }
  }
  EXPECT_EQ(mine, TraceRing::kCapacity);
  EXPECT_EQ(max_arg, total - 1);
  EXPECT_EQ(min_arg, total - TraceRing::kCapacity);
}

TEST_F(TraceTest, PerThreadRingsMergeWithDistinctTids) {
  TraceRegistry& registry = TraceRegistry::Global();
  registry.EnableLock(8);
  TraceRecord(8, TraceEventKind::kAcquire);
  std::thread other([] { TraceRecord(8, TraceEventKind::kRelease); });
  other.join();
  const auto events = registry.Collect();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_NE(events[0].tid, events[1].tid);
}

TEST_F(TraceTest, ClearEventsKeepsEnableBits) {
  TraceRegistry& registry = TraceRegistry::Global();
  registry.EnableLock(9);
  TraceRecord(9, TraceEventKind::kAcquire);
  registry.ClearEvents();
  EXPECT_TRUE(registry.Collect().empty());
  EXPECT_TRUE(TraceEnabled(9));
}

TEST_F(TraceTest, ConcurrentRecordAndCollectIsSafe) {
  // Snapshots race live writers by design; they must never crash or return
  // garbage kinds, and every collected event must be well-formed.
  TraceRegistry& registry = TraceRegistry::Global();
  registry.EnableLock(10);
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    std::uint64_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      TraceRecord(10, TraceEventKind::kAcquire, i++);
      TraceRecord(10, TraceEventKind::kRelease, i++);
    }
  });
  while (registry.Collect().empty()) {
    std::this_thread::yield();  // wait for the writer's first event
  }
  for (int i = 0; i < 200; ++i) {
    const auto events = registry.Collect();
    for (const TraceEvent& event : events) {
      EXPECT_EQ(event.lock_id, 10u);
      EXPECT_LE(static_cast<int>(event.kind), kNumTraceEventKinds);
    }
  }
  stop.store(true);
  writer.join();
  EXPECT_FALSE(registry.Collect().empty());
}

TEST_F(TraceTest, EventKindNamesAreStable) {
  EXPECT_STREQ(TraceEventKindName(TraceEventKind::kAcquire), "acquire");
  EXPECT_STREQ(TraceEventKindName(TraceEventKind::kQuarantine), "quarantine");
  EXPECT_STREQ(TraceEventKindName(TraceEventKind::kPolicyDispatch),
               "policy_dispatch");
}

}  // namespace
}  // namespace concord
