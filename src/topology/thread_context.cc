#include "src/topology/thread_context.h"

namespace concord {
namespace {

thread_local ThreadContext* tls_context = nullptr;

}  // namespace

ThreadRegistry& ThreadRegistry::Global() {
  static ThreadRegistry* registry = new ThreadRegistry();  // intentionally leaked
  return *registry;
}

ThreadContext& ThreadRegistry::Current() {
  if (tls_context == nullptr) {
    return RegisterOn(MachineTopology::Global().AssignNextCpu());
  }
  return *tls_context;
}

ThreadContext& ThreadRegistry::RegisterCurrent(std::uint32_t vcpu) {
  CONCORD_CHECK(tls_context == nullptr);
  CONCORD_CHECK(vcpu < MachineTopology::Global().total_cpus());
  return RegisterOn(vcpu);
}

bool ThreadRegistry::IsCurrentRegistered() const { return tls_context != nullptr; }

ThreadContext& ThreadRegistry::Get(std::uint32_t task_id) {
  CONCORD_CHECK(task_id < next_id_.load(std::memory_order_acquire));
  return slots_[task_id];
}

void ThreadRegistry::DetachCurrentForTest() { tls_context = nullptr; }

ThreadContext& ThreadRegistry::RegisterOn(std::uint32_t vcpu) {
  const std::uint32_t id = next_id_.fetch_add(1, std::memory_order_acq_rel);
  CONCORD_CHECK(id < kMaxThreads);
  ThreadContext& ctx = slots_[id];
  ctx.task_id = id;
  ctx.vcpu = vcpu;
  ctx.socket = MachineTopology::Global().SocketOfCpu(vcpu);
  tls_context = &ctx;
  return ctx;
}

}  // namespace concord
