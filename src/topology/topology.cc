#include "src/topology/topology.h"

namespace concord {

MachineTopology& MachineTopology::Global() {
  static MachineTopology topology;
  return topology;
}

void MachineTopology::Configure(const TopologyConfig& config) {
  CONCORD_CHECK(!attached_.load(std::memory_order_relaxed));
  CONCORD_CHECK(config.num_sockets > 0);
  CONCORD_CHECK(config.cores_per_socket > 0);
  config_ = config;
  next_cpu_.store(0, std::memory_order_relaxed);
}

void MachineTopology::ResetForTest() {
  attached_.store(false, std::memory_order_relaxed);
  next_cpu_.store(0, std::memory_order_relaxed);
}

}  // namespace concord
