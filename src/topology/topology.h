// Virtual machine topology.
//
// The paper evaluates on an eight-socket, 80-core machine. This repository
// may run on anything from a laptop to a single-core CI container, so NUMA
// structure is *virtualized*: threads register with a MachineTopology and are
// assigned a virtual CPU (vCPU), which determines their virtual socket. All
// NUMA-aware policies (ShflLock socket grouping, per-socket reader counters,
// CNA secondary queue) key off the virtual socket, so the grouping logic they
// exercise is identical to what would run on real hardware — only the
// latency consequences are simulated (see src/sim for the cost model).

#ifndef SRC_TOPOLOGY_TOPOLOGY_H_
#define SRC_TOPOLOGY_TOPOLOGY_H_

#include <atomic>
#include <cstdint>

#include "src/base/check.h"

namespace concord {

struct TopologyConfig {
  std::uint32_t num_sockets = 8;
  std::uint32_t cores_per_socket = 10;

  std::uint32_t TotalCpus() const { return num_sockets * cores_per_socket; }
};

// Process-global topology. Immutable after the first thread registers
// (changing socket arithmetic under live locks would corrupt per-socket
// state); tests that need different shapes call Reset* between scenarios.
class MachineTopology {
 public:
  static MachineTopology& Global();

  // Configure the virtual machine shape. Must be called before any thread
  // attaches (enforced with a CHECK).
  void Configure(const TopologyConfig& config);

  const TopologyConfig& config() const { return config_; }
  std::uint32_t num_sockets() const { return config_.num_sockets; }
  std::uint32_t total_cpus() const { return config_.TotalCpus(); }

  std::uint32_t SocketOfCpu(std::uint32_t vcpu) const {
    return (vcpu / config_.cores_per_socket) % config_.num_sockets;
  }
  std::uint32_t CoreInSocket(std::uint32_t vcpu) const {
    return vcpu % config_.cores_per_socket;
  }

  // Assigns the next vCPU round-robin across the virtual machine. Sockets
  // fill sequentially (cpu 0..9 = socket 0, 10..19 = socket 1, ...), matching
  // how will-it-scale pins threads in the paper's evaluation.
  std::uint32_t AssignNextCpu() {
    attached_.store(true, std::memory_order_relaxed);
    return next_cpu_.fetch_add(1, std::memory_order_relaxed) % config_.TotalCpus();
  }

  // Test-only: forgets attachment state so Configure can be called again.
  // Caller must guarantee no registered threads are still running.
  void ResetForTest();

 private:
  MachineTopology() = default;

  TopologyConfig config_{};
  std::atomic<std::uint32_t> next_cpu_{0};
  std::atomic<bool> attached_{false};
};

}  // namespace concord

#endif  // SRC_TOPOLOGY_TOPOLOGY_H_
