// Per-thread context block — the "context" in Contextual Concurrency Control.
//
// C3's core observation is that kernel locks cannot see application context:
// which thread matters, what it already holds, how long its critical sections
// run, whether its (v)CPU is about to be scheduled out. ThreadContext is the
// carrier for that information. Applications (or the runtime) annotate it;
// lock policies — native or BPF — read it through the policy context structs
// in src/concord/hooks.h and the BPF helpers in src/concord/helpers.cc.

#ifndef SRC_TOPOLOGY_THREAD_CONTEXT_H_
#define SRC_TOPOLOGY_THREAD_CONTEXT_H_

#include <atomic>
#include <cstdint>

#include "src/base/cacheline.h"
#include "src/topology/topology.h"

namespace concord {

// Scheduling class mirroring what a kernel would know about the task.
enum class TaskClass : std::uint8_t {
  kBackground = 0,  // e.g. compaction, writeback
  kNormal = 1,
  kLatencyCritical = 2,  // e.g. foreground request threads
  kRealtime = 3,
};

struct CONCORD_CACHE_ALIGNED ThreadContext {
  // --- identity, fixed at registration -----------------------------------
  std::uint32_t task_id = 0;     // dense id, assigned at registration
  std::uint32_t vcpu = 0;        // virtual CPU this thread is "pinned" to
  std::uint32_t socket = 0;      // virtual socket of vcpu
  std::uint32_t core_speed = 100;  // relative speed (percent); <100 = AMP slow core

  // --- application-provided context (the C3 annotations) -----------------
  std::atomic<std::uint8_t> task_class{static_cast<std::uint8_t>(TaskClass::kNormal)};
  std::atomic<std::int32_t> priority{0};       // higher = more important
  std::atomic<std::uint64_t> time_quota_ns{0};  // vCPU remaining quota (double-scheduling)
  std::atomic<std::uint32_t> preemptible{1};    // 0 => vCPU known-runnable (hypervisor hint)

  // --- runtime-maintained lock context ------------------------------------
  std::atomic<std::uint32_t> locks_held{0};     // nesting depth across all locks
  std::atomic<std::uint64_t> cs_length_ewma_ns{0};  // critical-section length estimate
  std::atomic<std::uint64_t> lock_hold_total_ns{0}; // cumulative hold time (SCL accounting)
  std::atomic<std::uint64_t> last_acquire_ns{0};

  TaskClass Class() const {
    return static_cast<TaskClass>(task_class.load(std::memory_order_relaxed));
  }

  void UpdateCsEwma(std::uint64_t sample_ns) {
    // EWMA with alpha = 1/8, matching kernel-style fixed-point averaging.
    std::uint64_t old_value = cs_length_ewma_ns.load(std::memory_order_relaxed);
    std::uint64_t new_value = old_value - old_value / 8 + sample_ns / 8;
    cs_length_ewma_ns.store(new_value, std::memory_order_relaxed);
  }
};

// Registry of all thread contexts. Contexts live for the process lifetime
// (slots are never freed) so lock queues and BPF programs may hold raw
// pointers without lifetime hazards.
class ThreadRegistry {
 public:
  static constexpr std::uint32_t kMaxThreads = 4096;

  static ThreadRegistry& Global();

  // Returns the calling thread's context, registering it on first use.
  // Registration assigns the next round-robin vCPU from the global topology.
  ThreadContext& Current();

  // Registers the calling thread on an explicit vCPU (benchmark drivers use
  // this to emulate will-it-scale pinning). CHECK-fails if already registered.
  ThreadContext& RegisterCurrent(std::uint32_t vcpu);

  // True if the calling thread has already registered.
  bool IsCurrentRegistered() const;

  std::uint32_t num_registered() const {
    return next_id_.load(std::memory_order_acquire);
  }

  // Indexed access for monitors/profilers; id < num_registered().
  ThreadContext& Get(std::uint32_t task_id);

  // Test-only: detaches the calling thread so it can re-register (e.g. with a
  // different explicit vCPU). Slot is leaked by design.
  void DetachCurrentForTest();

 private:
  ThreadRegistry() = default;

  ThreadContext& RegisterOn(std::uint32_t vcpu);

  std::atomic<std::uint32_t> next_id_{0};
  ThreadContext slots_[kMaxThreads];
};

// Convenience accessor used throughout the lock slow paths.
inline ThreadContext& Self() { return ThreadRegistry::Global().Current(); }

}  // namespace concord

#endif  // SRC_TOPOLOGY_THREAD_CONTEXT_H_
