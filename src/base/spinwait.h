// Adaptive spin-wait primitive.
//
// All busy-wait loops in this repository go through SpinWait rather than a
// bare `while (...) {}`. This matters for two reasons:
//  1. On hosts with fewer physical cores than contending threads (including
//     the single-core CI machine this repo is developed on), a waiter that
//     never yields can deadlock-by-livelock against a preempted lock holder.
//     SpinWait escalates: PAUSE -> sched_yield -> short sleep.
//  2. It centralizes the architecture-specific relax instruction.

#ifndef SRC_BASE_SPINWAIT_H_
#define SRC_BASE_SPINWAIT_H_

#include <cstdint>

namespace concord {

// Hint to the CPU that we are in a spin loop (PAUSE on x86, YIELD on arm).
inline void CpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  asm volatile("" ::: "memory");
#endif
}

// Escalating waiter. Typical use:
//
//   SpinWait spin;
//   while (!flag.load(std::memory_order_acquire)) {
//     spin.Once();
//   }
class SpinWait {
 public:
  SpinWait() = default;

  // One wait step; escalates as `Once` is called repeatedly.
  void Once();

  // Resets the escalation state (call after making progress).
  void Reset() { iteration_ = 0; }

  // Number of wait steps taken since construction/Reset.
  std::uint32_t iterations() const { return iteration_; }

 private:
  static constexpr std::uint32_t kSpinLimit = 64;    // pure PAUSE below this
  static constexpr std::uint32_t kYieldLimit = 512;  // sched_yield below this

  std::uint32_t iteration_ = 0;
};

}  // namespace concord

#endif  // SRC_BASE_SPINWAIT_H_
