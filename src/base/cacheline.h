// Cache-line geometry and alignment helpers.
//
// Lock algorithms in this repository are extremely sensitive to false
// sharing: a single mis-placed field can turn an O(1)-cache-miss queue lock
// into a line-bouncing one. Every shared structure below uses these helpers
// rather than hard-coding `64`.

#ifndef SRC_BASE_CACHELINE_H_
#define SRC_BASE_CACHELINE_H_

#include <cstddef>
#include <new>

namespace concord {

// Size of the destructive-interference unit. Pinned to 64 rather than
// `std::hardware_destructive_interference_size`: the standard constant varies
// with -mtune (GCC warns about exactly this), and ABI stability of padded
// structs matters more here than the rare 128-byte-line machine.
inline constexpr std::size_t kCacheLineSize = 64;

#define CONCORD_CACHE_ALIGNED alignas(::concord::kCacheLineSize)

// Pads `T` out to a whole number of cache lines so that adjacent array
// elements (e.g. per-CPU counters) never share a line.
template <typename T>
struct CONCORD_CACHE_ALIGNED CacheLinePadded {
  T value{};

  T* operator->() { return &value; }
  const T* operator->() const { return &value; }
  T& operator*() { return value; }
  const T& operator*() const { return value; }
};

}  // namespace concord

#endif  // SRC_BASE_CACHELINE_H_
