// Deterministic fault injection (robustness harness).
//
// The containment story (docs/SAFETY.md) claims the framework degrades
// gracefully when things fail *underneath* a verified policy: a helper
// returning an error, a map lookup missing, the JIT refusing to compile, a
// parking-lot wakeup arriving late. Those failures are rare in production and
// impossible to schedule from a test — so this header plants named fault
// points at each of those sites and lets tests (or the CONCORD_FAULTS
// environment variable, for the CI chaos job) arm them with a seeded,
// deterministic firing schedule.
//
// Fault points compile out entirely when CONCORD_FAULT_INJECTION is 0 (the
// default for Release builds; see the top-level CMakeLists.txt): the macros
// below become constants and every `if` guarding a fault folds away. When
// compiled in but nothing is armed, the cost per site is one relaxed atomic
// load.
//
// Registered sites (discoverable at runtime via FaultRegistry::ListPoints(),
// the `faults.list` RPC verb, or a `CONCORD_FAULTS=list` startup dump):
//   bpf.map_lookup     map_lookup_elem helper returns null      (helpers.cc)
//   bpf.helper         map_update/map_delete helpers return -1  (helpers.cc)
//   jit.compile        Jit::Compile fails -> interpreter tier   (jit/jit.cc)
//   park.delayed_wake  UnparkOne/UnparkAll delayed by delay_ns  (parking_lot.cc)
//   autotune.decide    autotune controller decision step aborts (autotune/controller.cc)
//   rpc.accept         accepted control-plane connection dropped (rpc/server.cc)
//   rpc.read           request read fails mid-connection         (rpc/server.cc)
//   rpc.write          response write fails / client vanishes    (rpc/server.cc)
//   rpc.handler        verb handler aborts with internal error   (rpc/dispatch.cc)
//   agent.shm_map      agent shm segment (re)map fails           (agent/fleet.cc)
//   agent.merge        agent merged decision step skipped        (agent/fleet.cc)

#ifndef SRC_BASE_FAULT_H_
#define SRC_BASE_FAULT_H_

#include <cstdint>

#ifndef CONCORD_FAULT_INJECTION
#define CONCORD_FAULT_INJECTION 0
#endif

#if CONCORD_FAULT_INJECTION

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace concord {

class FaultRegistry {
 public:
  enum class Mode : std::uint8_t {
    kAlways,  // every evaluation fires
    kOneIn,   // fires pseudo-randomly at rate 1/n (seeded, deterministic)
    kNth,     // fires exactly on the n-th evaluation (1-based), once
    kFirstN,  // fires on the first n evaluations, then never again
  };

  struct Spec {
    Mode mode = Mode::kAlways;
    std::uint64_t n = 1;
    std::uint64_t seed = 0;
    // For delay-style sites (FireDelayNs): how long the injected stall lasts.
    std::uint64_t delay_ns = 0;
  };

  static FaultRegistry& Global();

  // Arms `point` (replacing any previous arming; evaluation/fire counters
  // reset).
  void Arm(const std::string& point, Spec spec);

  // Parses one `point=modespec[@delay_ns]` directive, where modespec is
  // `always`, `1inN[:seed]`, `nthN` or `firstN`. Returns false (and arms
  // nothing) on a malformed directive.
  bool ArmFromDirective(const std::string& directive);

  void Disarm(const std::string& point);
  void DisarmAll();

  // Hot-path check: true when the armed fault at `point` fires on this
  // evaluation. Unarmed points never fire and cost one relaxed load.
  bool ShouldFire(const char* point);

  // Delay-site variant: the armed delay_ns when the fault fires, 0 otherwise.
  std::uint64_t FireDelayNs(const char* point);

  // Introspection for tests and the chaos harness.
  std::uint64_t Evaluations(const std::string& point) const;
  std::uint64_t Fires(const std::string& point) const;

  // One row per discoverable fault point: every site compiled into the
  // binary (the table in fault.cc) plus anything armed ad hoc (tests may arm
  // names with no compiled site). Operators reach this through the
  // `faults.list` RPC verb or CONCORD_FAULTS=list instead of grepping.
  struct PointInfo {
    std::string name;
    std::string description;  // "" for ad-hoc points with no compiled site
    bool armed = false;
    std::string directive;  // armed spec as a modespec[@delay] string
    std::uint64_t evaluations = 0;
    std::uint64_t fires = 0;
  };
  std::vector<PointInfo> ListPoints() const;

  // Total fires observed on the calling thread, ever. Dispatch-path code
  // samples this around a policy run to attribute injected faults to the
  // policy that hit them (see src/concord/concord.cc).
  static std::uint64_t ThreadFires();

  // Address of the armed-point count, for code that wants to branch around
  // an inlined fast path while any fault is armed (the JIT emits a
  // `cmp [armed],0; jne slow_path` against this). Zero iff nothing is armed.
  const std::atomic<int>* armed_flag() const { return &armed_; }

 private:
  struct Point {
    std::string name;
    Spec spec;
    std::uint64_t evaluations = 0;
    std::uint64_t fires = 0;
  };

  FaultRegistry();

  Point* FindLocked(const char* point);
  void LoadFromEnv();

  std::atomic<int> armed_{0};
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Point>> points_;
};

}  // namespace concord

#define CONCORD_FAULT_POINT(name) (::concord::FaultRegistry::Global().ShouldFire(name))
#define CONCORD_FAULT_DELAY_NS(name) \
  (::concord::FaultRegistry::Global().FireDelayNs(name))

#else  // !CONCORD_FAULT_INJECTION

#define CONCORD_FAULT_POINT(name) (false)
#define CONCORD_FAULT_DELAY_NS(name) (std::uint64_t{0})

#endif  // CONCORD_FAULT_INJECTION

#endif  // SRC_BASE_FAULT_H_
