#include "src/base/histogram.h"

#include <cinttypes>
#include <cstdio>

namespace concord {

std::uint64_t Log2Histogram::TotalCount() const {
  std::uint64_t total = 0;
  for (const auto& b : buckets_) {
    total += b.load(std::memory_order_relaxed);
  }
  return total;
}

double Log2Histogram::Mean() const {
  const std::uint64_t n = TotalCount();
  return n == 0 ? 0.0 : static_cast<double>(Sum()) / static_cast<double>(n);
}

std::uint64_t Log2Histogram::Percentile(double p) const {
  const std::uint64_t total = TotalCount();
  if (total == 0) {
    return 0;
  }
  if (p < 0) {
    p = 0;
  }
  if (p > 100) {
    p = 100;
  }
  const auto target =
      static_cast<std::uint64_t>(static_cast<double>(total) * p / 100.0);
  std::uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += buckets_[i].load(std::memory_order_relaxed);
    if (seen > target) {
      // Bucket i holds values in [2^(i-1), 2^i); report the lower bound.
      return i == 0 ? 0 : (1ull << (i - 1));
    }
  }
  return Max();
}

void Log2Histogram::Reset() {
  for (auto& b : buckets_) {
    b.store(0, std::memory_order_relaxed);
  }
  sum_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

void Log2Histogram::MergeFrom(const Log2Histogram& other) {
  for (int i = 0; i < kBuckets; ++i) {
    buckets_[i].fetch_add(other.buckets_[i].load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
  }
  sum_.fetch_add(other.sum_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
  std::uint64_t other_max = other.max_.load(std::memory_order_relaxed);
  std::uint64_t prev = max_.load(std::memory_order_relaxed);
  while (other_max > prev &&
         !max_.compare_exchange_weak(prev, other_max, std::memory_order_relaxed)) {
  }
}

std::string Log2Histogram::ToString() const {
  std::string out;
  char line[128];
  const std::uint64_t total = TotalCount();
  for (int i = 0; i < kBuckets; ++i) {
    const std::uint64_t count = buckets_[i].load(std::memory_order_relaxed);
    if (count == 0) {
      continue;
    }
    const std::uint64_t lo = i == 0 ? 0 : (1ull << (i - 1));
    const std::uint64_t hi = (i >= 63) ? ~0ull : (1ull << i);
    const double pct =
        total == 0 ? 0.0 : 100.0 * static_cast<double>(count) / static_cast<double>(total);
    std::snprintf(line, sizeof(line), "[%12" PRIu64 ", %12" PRIu64 ") %10" PRIu64 "  %5.1f%%\n",
                  lo, hi, count, pct);
    out += line;
  }
  return out;
}

}  // namespace concord
