#include "src/base/histogram.h"

#include <cinttypes>
#include <cstdio>

#include "src/base/json.h"

namespace concord {

std::uint64_t Log2Histogram::TotalCount() const {
  std::uint64_t total = 0;
  for (const auto& b : buckets_) {
    total += b.load(std::memory_order_relaxed);
  }
  return total;
}

double Log2Histogram::Mean() const {
  const std::uint64_t n = TotalCount();
  return n == 0 ? 0.0 : static_cast<double>(Sum()) / static_cast<double>(n);
}

std::uint64_t Log2Histogram::Percentile(double p) const {
  const std::uint64_t total = TotalCount();
  if (total == 0) {
    return 0;
  }
  if (p < 0) {
    p = 0;
  }
  if (p > 100) {
    p = 100;
  }
  const auto target =
      static_cast<std::uint64_t>(static_cast<double>(total) * p / 100.0);
  std::uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += buckets_[i].load(std::memory_order_relaxed);
    if (seen > target) {
      return BucketLowerBound(i);
    }
  }
  return Max();
}

void Log2Histogram::Reset() {
  for (auto& b : buckets_) {
    b.store(0, std::memory_order_relaxed);
  }
  sum_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

Log2Histogram Log2Histogram::DeltaSince(const Log2Histogram& earlier) const {
  Log2Histogram delta;
  std::uint64_t sum_now = 0;
  std::uint64_t sum_then = 0;
  for (int i = 0; i < kBuckets; ++i) {
    const std::uint64_t now = buckets_[i].load(std::memory_order_relaxed);
    const std::uint64_t then = earlier.buckets_[i].load(std::memory_order_relaxed);
    delta.buckets_[i].store(now > then ? now - then : 0,
                            std::memory_order_relaxed);
  }
  sum_now = sum_.load(std::memory_order_relaxed);
  sum_then = earlier.sum_.load(std::memory_order_relaxed);
  delta.sum_.store(sum_now > sum_then ? sum_now - sum_then : 0,
                   std::memory_order_relaxed);
  delta.max_.store(max_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
  return delta;
}

void Log2Histogram::MergeFrom(const Log2Histogram& other) {
  for (int i = 0; i < kBuckets; ++i) {
    buckets_[i].fetch_add(other.buckets_[i].load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
  }
  sum_.fetch_add(other.sum_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
  std::uint64_t other_max = other.max_.load(std::memory_order_relaxed);
  std::uint64_t prev = max_.load(std::memory_order_relaxed);
  while (other_max > prev &&
         !max_.compare_exchange_weak(prev, other_max, std::memory_order_relaxed)) {
  }
}

std::string Log2Histogram::ToString() const {
  std::string out;
  char line[128];
  const std::uint64_t total = TotalCount();
  for (int i = 0; i < kBuckets; ++i) {
    const std::uint64_t count = buckets_[i].load(std::memory_order_relaxed);
    if (count == 0) {
      continue;
    }
    const std::uint64_t lo = BucketLowerBound(i);
    const double pct =
        total == 0 ? 0.0 : 100.0 * static_cast<double>(count) / static_cast<double>(total);
    if (i == kBuckets - 1) {
      // 2^64 does not fit in a u64; the top bucket's upper bound is open.
      std::snprintf(line, sizeof(line),
                    "[%12" PRIu64 ", %12s) %10" PRIu64 "  %5.1f%%\n", lo, "inf",
                    count, pct);
    } else {
      std::snprintf(line, sizeof(line),
                    "[%12" PRIu64 ", %12" PRIu64 ") %10" PRIu64 "  %5.1f%%\n",
                    lo, 1ull << (i + 1), count, pct);
    }
    out += line;
  }
  return out;
}

void Log2Histogram::AppendJson(JsonWriter& writer) const {
  writer.BeginObject();
  writer.NumberField("count", TotalCount());
  writer.NumberField("sum", Sum());
  writer.NumberField("mean", Mean());
  writer.NumberField("max", Max());
  writer.NumberField("p50", Percentile(50));
  writer.NumberField("p90", Percentile(90));
  writer.NumberField("p99", Percentile(99));
  writer.Key("buckets").BeginArray();
  for (int i = 0; i < kBuckets; ++i) {
    const std::uint64_t count = buckets_[i].load(std::memory_order_relaxed);
    if (count == 0) {
      continue;
    }
    writer.BeginObject();
    writer.NumberField("lo", BucketLowerBound(i));
    writer.NumberField("count", count);
    writer.EndObject();
  }
  writer.EndArray();
  writer.EndObject();
}

}  // namespace concord
