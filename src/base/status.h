// Minimal Status / StatusOr types.
//
// The BPF verifier and the Concord attach pipeline report rich, user-facing
// rejection reasons; exceptions are not used in this codebase (os-systems
// style), so fallible interfaces return Status / StatusOr<T>.

#ifndef SRC_BASE_STATUS_H_
#define SRC_BASE_STATUS_H_

#include <string>
#include <utility>
#include <variant>

#include "src/base/check.h"

namespace concord {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   // malformed input (bad bytecode, bad config)
  kFailedPrecondition,// operation not legal in current state
  kNotFound,          // lookup misses (registry, map)
  kPermissionDenied,  // verifier rejection
  kResourceExhausted, // capacity limits (map full, program too long)
  kInternal,          // bug in this library
};

const char* StatusCodeName(StatusCode code);

class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) {
      return "OK";
    }
    return std::string(StatusCodeName(code_)) + ": " + message_;
  }

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline Status InvalidArgumentError(std::string msg) {
  return Status(StatusCode::kInvalidArgument, std::move(msg));
}
inline Status FailedPreconditionError(std::string msg) {
  return Status(StatusCode::kFailedPrecondition, std::move(msg));
}
inline Status NotFoundError(std::string msg) {
  return Status(StatusCode::kNotFound, std::move(msg));
}
inline Status PermissionDeniedError(std::string msg) {
  return Status(StatusCode::kPermissionDenied, std::move(msg));
}
inline Status ResourceExhaustedError(std::string msg) {
  return Status(StatusCode::kResourceExhausted, std::move(msg));
}
inline Status InternalError(std::string msg) {
  return Status(StatusCode::kInternal, std::move(msg));
}

// Holds either a value or a non-OK status.
template <typename T>
class StatusOr {
 public:
  StatusOr(T value) : repr_(std::move(value)) {}        // NOLINT(runtime/explicit)
  StatusOr(Status status) : repr_(std::move(status)) {  // NOLINT(runtime/explicit)
    CONCORD_CHECK(!std::get<Status>(repr_).ok());
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  const Status& status() const {
    static const Status kOkStatus;
    if (ok()) {
      return kOkStatus;
    }
    return std::get<Status>(repr_);
  }

  T& value() {
    CONCORD_CHECK(ok());
    return std::get<T>(repr_);
  }
  const T& value() const {
    CONCORD_CHECK(ok());
    return std::get<T>(repr_);
  }

  T& operator*() { return value(); }
  const T& operator*() const { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<T, Status> repr_;
};

#define CONCORD_RETURN_IF_ERROR(expr)       \
  do {                                      \
    ::concord::Status status_ = (expr);     \
    if (!status_.ok()) {                    \
      return status_;                       \
    }                                       \
  } while (0)

}  // namespace concord

#endif  // SRC_BASE_STATUS_H_
