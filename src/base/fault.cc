#include "src/base/fault.h"

#if CONCORD_FAULT_INJECTION

#include <cstdio>
#include <cstdlib>

namespace concord {
namespace {

thread_local std::uint64_t tls_fires = 0;

// Every fault site compiled into the binary. Keep in sync with the header
// comment and the CONCORD_FAULT_POINT / CONCORD_FAULT_DELAY_NS call sites —
// this table is what operators discover through ListPoints() instead of
// grepping the source.
constexpr struct {
  const char* name;
  const char* description;
} kKnownPoints[] = {
    {"bpf.map_lookup", "map_lookup_elem helper returns null"},
    {"bpf.helper", "map_update/map_delete helpers return -1"},
    {"jit.compile", "Jit::Compile fails; program falls back to interpreter"},
    {"park.delayed_wake", "UnparkOne/UnparkAll delayed by @delay_ns"},
    {"autotune.decide", "autotune controller skips the lock's decision step"},
    {"rpc.accept", "accepted control-plane connection dropped immediately"},
    {"rpc.read", "control-plane request read fails mid-connection"},
    {"rpc.write", "control-plane response write fails (client vanishes)"},
    {"rpc.handler", "RPC verb handler aborts with an internal error"},
    {"agent.shm_map", "fleet agent fails to (re)map a worker's shm segment"},
    {"agent.merge", "fleet agent skips the merged decision step for the tick"},
};

// SplitMix64 — tiny, seedable, and good enough to spread 1/n firing evenly.
std::uint64_t SplitMix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

FaultRegistry& FaultRegistry::Global() {
  static FaultRegistry* registry = new FaultRegistry();
  return *registry;
}

FaultRegistry::FaultRegistry() { LoadFromEnv(); }

void FaultRegistry::LoadFromEnv() {
  const char* env = std::getenv("CONCORD_FAULTS");
  if (env == nullptr || env[0] == '\0') {
    return;
  }
  if (std::string(env) == "list") {
    std::fprintf(stderr, "CONCORD_FAULTS: known fault points:\n");
    for (const auto& point : kKnownPoints) {
      std::fprintf(stderr, "  %-18s %s\n", point.name, point.description);
    }
    return;
  }
  std::string directives(env);
  std::size_t start = 0;
  while (start <= directives.size()) {
    std::size_t end = directives.find(';', start);
    if (end == std::string::npos) {
      end = directives.size();
    }
    const std::string directive = directives.substr(start, end - start);
    if (!directive.empty() && !ArmFromDirective(directive)) {
      std::fprintf(stderr, "CONCORD_FAULTS: ignoring malformed directive '%s'\n",
                   directive.c_str());
    }
    start = end + 1;
  }
}

void FaultRegistry::Arm(const std::string& point, Spec spec) {
  std::lock_guard<std::mutex> guard(mu_);
  for (auto& existing : points_) {
    if (existing->name == point) {
      existing->spec = spec;
      existing->evaluations = 0;
      existing->fires = 0;
      return;
    }
  }
  auto fresh = std::make_unique<Point>();
  fresh->name = point;
  fresh->spec = spec;
  points_.push_back(std::move(fresh));
  armed_.fetch_add(1, std::memory_order_release);
}

bool FaultRegistry::ArmFromDirective(const std::string& directive) {
  const std::size_t eq = directive.find('=');
  if (eq == std::string::npos || eq == 0 || eq + 1 >= directive.size()) {
    return false;
  }
  const std::string point = directive.substr(0, eq);
  std::string modespec = directive.substr(eq + 1);

  Spec spec;
  const std::size_t at = modespec.find('@');
  if (at != std::string::npos) {
    const std::string delay = modespec.substr(at + 1);
    if (delay.empty() || delay.find_first_not_of("0123456789") != std::string::npos) {
      return false;
    }
    spec.delay_ns = std::strtoull(delay.c_str(), nullptr, 10);
    modespec = modespec.substr(0, at);
  }

  auto parse_u64 = [](const std::string& s, std::uint64_t* out) {
    if (s.empty() || s.find_first_not_of("0123456789") != std::string::npos) {
      return false;
    }
    *out = std::strtoull(s.c_str(), nullptr, 10);
    return true;
  };

  if (modespec == "always") {
    spec.mode = Mode::kAlways;
  } else if (modespec.rfind("1in", 0) == 0) {
    spec.mode = Mode::kOneIn;
    std::string rest = modespec.substr(3);
    const std::size_t colon = rest.find(':');
    if (colon != std::string::npos) {
      if (!parse_u64(rest.substr(colon + 1), &spec.seed)) {
        return false;
      }
      rest = rest.substr(0, colon);
    }
    if (!parse_u64(rest, &spec.n) || spec.n == 0) {
      return false;
    }
  } else if (modespec.rfind("nth", 0) == 0) {
    spec.mode = Mode::kNth;
    if (!parse_u64(modespec.substr(3), &spec.n) || spec.n == 0) {
      return false;
    }
  } else if (modespec.rfind("first", 0) == 0) {
    spec.mode = Mode::kFirstN;
    if (!parse_u64(modespec.substr(5), &spec.n)) {
      return false;
    }
  } else {
    return false;
  }

  Arm(point, spec);
  return true;
}

void FaultRegistry::Disarm(const std::string& point) {
  std::lock_guard<std::mutex> guard(mu_);
  for (auto it = points_.begin(); it != points_.end(); ++it) {
    if ((*it)->name == point) {
      points_.erase(it);
      armed_.fetch_sub(1, std::memory_order_release);
      return;
    }
  }
}

void FaultRegistry::DisarmAll() {
  std::lock_guard<std::mutex> guard(mu_);
  armed_.fetch_sub(static_cast<int>(points_.size()), std::memory_order_release);
  points_.clear();
}

FaultRegistry::Point* FaultRegistry::FindLocked(const char* point) {
  for (auto& candidate : points_) {
    if (candidate->name == point) {
      return candidate.get();
    }
  }
  return nullptr;
}

bool FaultRegistry::ShouldFire(const char* point) {
  if (armed_.load(std::memory_order_relaxed) == 0) {
    return false;
  }
  std::lock_guard<std::mutex> guard(mu_);
  Point* p = FindLocked(point);
  if (p == nullptr) {
    return false;
  }
  const std::uint64_t eval = p->evaluations++;
  bool fire = false;
  switch (p->spec.mode) {
    case Mode::kAlways:
      fire = true;
      break;
    case Mode::kOneIn:
      fire = SplitMix64(p->spec.seed ^ (eval * 0x2545f4914f6cdd1dull)) %
                 p->spec.n ==
             0;
      break;
    case Mode::kNth:
      fire = (eval + 1) == p->spec.n;
      break;
    case Mode::kFirstN:
      fire = eval < p->spec.n;
      break;
  }
  if (fire) {
    ++p->fires;
    ++tls_fires;
  }
  return fire;
}

std::uint64_t FaultRegistry::FireDelayNs(const char* point) {
  if (armed_.load(std::memory_order_relaxed) == 0) {
    return 0;
  }
  std::uint64_t delay = 0;
  {
    std::lock_guard<std::mutex> guard(mu_);
    Point* p = FindLocked(point);
    if (p != nullptr) {
      delay = p->spec.delay_ns;
    }
  }
  if (delay == 0) {
    return 0;
  }
  return ShouldFire(point) ? delay : 0;
}

std::uint64_t FaultRegistry::Evaluations(const std::string& point) const {
  std::lock_guard<std::mutex> guard(mu_);
  for (const auto& candidate : points_) {
    if (candidate->name == point) {
      return candidate->evaluations;
    }
  }
  return 0;
}

std::uint64_t FaultRegistry::Fires(const std::string& point) const {
  std::lock_guard<std::mutex> guard(mu_);
  for (const auto& candidate : points_) {
    if (candidate->name == point) {
      return candidate->fires;
    }
  }
  return 0;
}

namespace {

std::string RenderSpec(const FaultRegistry::Spec& spec) {
  std::string out;
  switch (spec.mode) {
    case FaultRegistry::Mode::kAlways:
      out = "always";
      break;
    case FaultRegistry::Mode::kOneIn:
      out = "1in" + std::to_string(spec.n);
      if (spec.seed != 0) {
        out += ":" + std::to_string(spec.seed);
      }
      break;
    case FaultRegistry::Mode::kNth:
      out = "nth" + std::to_string(spec.n);
      break;
    case FaultRegistry::Mode::kFirstN:
      out = "first" + std::to_string(spec.n);
      break;
  }
  if (spec.delay_ns != 0) {
    out += "@" + std::to_string(spec.delay_ns);
  }
  return out;
}

}  // namespace

std::vector<FaultRegistry::PointInfo> FaultRegistry::ListPoints() const {
  std::vector<PointInfo> out;
  std::lock_guard<std::mutex> guard(mu_);
  for (const auto& known : kKnownPoints) {
    PointInfo info;
    info.name = known.name;
    info.description = known.description;
    out.push_back(std::move(info));
  }
  for (const auto& armed : points_) {
    PointInfo* row = nullptr;
    for (PointInfo& existing : out) {
      if (existing.name == armed->name) {
        row = &existing;
        break;
      }
    }
    if (row == nullptr) {
      out.emplace_back();
      row = &out.back();
      row->name = armed->name;
    }
    row->armed = true;
    row->directive = RenderSpec(armed->spec);
    row->evaluations = armed->evaluations;
    row->fires = armed->fires;
  }
  return out;
}

std::uint64_t FaultRegistry::ThreadFires() { return tls_fires; }

}  // namespace concord

#endif  // CONCORD_FAULT_INJECTION
