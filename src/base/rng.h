// Small deterministic PRNGs for workload generation.
//
// Benchmarks and the discrete-event simulator need fast, seedable,
// reproducible randomness; <random> engines are heavier than needed and their
// distributions are not bit-stable across library versions, so we keep our
// own xoshiro/splitmix implementations.

#ifndef SRC_BASE_RNG_H_
#define SRC_BASE_RNG_H_

#include <cstdint>

namespace concord {

// SplitMix64: used for seeding and as a cheap one-shot hash.
inline std::uint64_t SplitMix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

// xoshiro256**: the main workhorse generator.
class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed = 0x1234567890abcdefull) {
    std::uint64_t sm = seed;
    for (auto& word : state_) {
      word = SplitMix64(sm);
    }
  }

  std::uint64_t Next() {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, bound). Uses the widening-multiply trick (Lemire).
  std::uint64_t NextBounded(std::uint64_t bound) {
    if (bound == 0) {
      return 0;
    }
    return static_cast<std::uint64_t>(
        (static_cast<__uint128_t>(Next()) * bound) >> 64);
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  // True with probability `p`.
  bool Bernoulli(double p) { return NextDouble() < p; }

 private:
  static std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace concord

#endif  // SRC_BASE_RNG_H_
