#include "src/base/status.h"

namespace concord {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kPermissionDenied:
      return "PERMISSION_DENIED";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kInternal:
      return "INTERNAL";
  }
  return "UNKNOWN";
}

}  // namespace concord
