// Lock-event flight recorder.
//
// Always-on-capable concurrency event tracing in the style of kernel eBPF
// tracing tools: every participating thread owns a fixed-size ring buffer of
// timestamped lock events (acquire/contended/acquired/release, park/wake,
// shuffle rounds, policy dispatches, budget trips, quarantines). Recording is
// wait-free and lock-free — one relaxed-atomic bitmap test when tracing is
// off, four relaxed stores plus a release increment when on — so the hooks
// in src/sync and src/concord can call TraceRecord() unconditionally.
//
// Two gates:
//   - compile time: -DCONCORD_ENABLE_TRACE=OFF defines CONCORD_TRACE=0 and
//     TraceRecord() compiles to nothing;
//   - runtime: a per-lock-id enable bitmap (TraceRegistry::EnableLock), so a
//     production build can carry the recorder and light it up for exactly
//     one suspect lock instance — the same granularity argument as the
//     dynamic lock profiler (§3.2).
//
// Snapshots merge all rings into one time-sorted event list. Readers never
// stop writers: a ring slot concurrently overwritten during a snapshot is
// detected via the writer's position counter and dropped.

#ifndef SRC_BASE_TRACE_H_
#define SRC_BASE_TRACE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "src/base/cacheline.h"

#ifndef CONCORD_TRACE
#define CONCORD_TRACE 1
#endif

namespace concord {

enum class TraceEventKind : std::uint16_t {
  kAcquire = 0,     // lock requested
  kContended,       // slow path entered
  kAcquired,        // lock granted
  kRelease,         // lock released
  kPark,            // waiter about to park          (arg: spin iterations)
  kWake,            // holder/shuffler woke a waiter
  kShuffleRound,    // one shuffle round ran         (arg: waiters moved)
  kPolicyDispatch,  // policy hook invoked           (arg: HookKind)
  kBudgetTrip,      // hook budget trip harvested    (arg: total overruns)
  kQuarantine,      // containment quarantined the lock's policy
};
inline constexpr int kNumTraceEventKinds = 10;

const char* TraceEventKindName(TraceEventKind kind);

struct TraceEvent {
  std::uint64_t ts_ns = 0;
  std::uint64_t lock_id = 0;
  std::uint64_t arg = 0;
  std::uint32_t tid = 0;  // recorder-assigned dense thread id (stable per thread)
  TraceEventKind kind = TraceEventKind::kAcquire;
};

// Per-thread ring. Single writer (the owning thread); concurrent snapshot
// readers. Slots are stored as individually-atomic words so a racing reader
// sees torn *events* at worst, never undefined behaviour; torn candidates
// are discarded by the position-counter check in Snapshot().
class TraceRing {
 public:
  static constexpr std::size_t kCapacity = 2048;  // events; power of two
  static_assert((kCapacity & (kCapacity - 1)) == 0);

  void Append(std::uint64_t ts_ns, std::uint64_t lock_id, TraceEventKind kind,
              std::uint64_t arg) {
    const std::uint64_t pos = pos_.load(std::memory_order_relaxed);
    Slot& slot = slots_[pos & (kCapacity - 1)];
    slot.ts_ns.store(ts_ns, std::memory_order_relaxed);
    slot.lock_id.store(lock_id, std::memory_order_relaxed);
    slot.kind_arg.store(
        (static_cast<std::uint64_t>(kind) << 48) | (arg & 0xFFFFFFFFFFFFull),
        std::memory_order_relaxed);
    // Publish: an event is only readable once the position advances past it.
    pos_.store(pos + 1, std::memory_order_release);
  }

  // Appends this ring's events (oldest first) to `out`. Events the writer
  // may have been overwriting during the copy are dropped.
  void Snapshot(std::uint32_t tid, std::vector<TraceEvent>& out) const;

  // Single-snapshot event drop: resets the read window (writer-racy; test
  // and control-plane use only).
  void Clear() { pos_.store(0, std::memory_order_release); }

 private:
  struct Slot {
    std::atomic<std::uint64_t> ts_ns{0};
    std::atomic<std::uint64_t> lock_id{0};
    std::atomic<std::uint64_t> kind_arg{0};
  };

  std::atomic<std::uint64_t> pos_{0};  // total events ever appended
  Slot slots_[kCapacity];
};

namespace trace_internal {

// Per-lock runtime enable bitmap. Sized to the Concord registry cap
// (Concord::kMaxLocks); lock id 0 (unregistered locks) is never traced.
inline constexpr std::uint64_t kMaxTraceLocks = 4096;
extern std::atomic<std::uint64_t> g_lock_bits[kMaxTraceLocks / 64];
// Number of enabled locks: lets the disabled hot path be one load + branch.
extern std::atomic<std::uint32_t> g_enabled_locks;

}  // namespace trace_internal

// True if events for `lock_id` should be recorded right now.
inline bool TraceEnabled(std::uint64_t lock_id) {
#if CONCORD_TRACE
  if (trace_internal::g_enabled_locks.load(std::memory_order_relaxed) == 0) {
    return false;
  }
  if (lock_id == 0 || lock_id >= trace_internal::kMaxTraceLocks) {
    return false;
  }
  return (trace_internal::g_lock_bits[lock_id / 64].load(
              std::memory_order_relaxed) &
          (1ull << (lock_id % 64))) != 0;
#else
  (void)lock_id;
  return false;
#endif
}

class TraceRegistry {
 public:
  static TraceRegistry& Global();

  // Runtime per-lock gates. Enable/Disable are idempotent.
  void EnableLock(std::uint64_t lock_id);
  void DisableLock(std::uint64_t lock_id);
  void DisableAll();
  bool Enabled(std::uint64_t lock_id) const { return TraceEnabled(lock_id); }

  // The calling thread's ring (created and registered on first use; rings
  // outlive their threads so post-mortem snapshots keep late events).
  TraceRing& ThisThreadRing();

  // Merged, ts-sorted view of every ring.
  std::vector<TraceEvent> Collect() const;

  // Drops recorded events (not the enable bits). Threads recording
  // concurrently may keep a handful of in-flight events.
  void ClearEvents();

  // Test-only: ClearEvents + DisableAll.
  void ResetForTest();

 private:
  TraceRegistry() = default;

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<TraceRing>> rings_;  // index = tid - 1
};

// Records one event into the calling thread's ring iff tracing is compiled
// in and enabled for `lock_id`. This is THE hot-path entry point: when
// tracing is off it costs the TraceEnabled() branch and nothing else — the
// timestamp is only read once the gate passes. Out-of-line so the disabled
// branch stays small at every call site.
#if CONCORD_TRACE
void TraceRecordSlow(std::uint64_t lock_id, TraceEventKind kind,
                     std::uint64_t arg);
#endif

inline void TraceRecord(std::uint64_t lock_id, TraceEventKind kind,
                        std::uint64_t arg = 0) {
#if CONCORD_TRACE
  if (!TraceEnabled(lock_id)) {
    return;
  }
  TraceRecordSlow(lock_id, kind, arg);
#else
  (void)lock_id;
  (void)kind;
  (void)arg;
#endif
}

}  // namespace concord

#endif  // SRC_BASE_TRACE_H_
