#include "src/base/time.h"

namespace concord {

namespace detail {
std::atomic<ClockInterface*> g_clock_override{nullptr};
}  // namespace detail

ClockInterface* SetClockOverrideForTest(ClockInterface* clock) {
  return detail::g_clock_override.exchange(clock, std::memory_order_acq_rel);
}

void BurnNs(std::uint64_t ns) {
  if (ns == 0) {
    return;
  }
  const std::uint64_t start = MonotonicNowNs();
  // Mix in some ALU work so the loop is not a pure clock_gettime storm.
  volatile std::uint64_t sink = 0;
  while (MonotonicNowNs() - start < ns) {
    for (int i = 0; i < 32; ++i) {
      sink = sink * 6364136223846793005ull + 1442695040888963407ull;
    }
  }
}

}  // namespace concord
