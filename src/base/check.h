// Invariant-checking macros.
//
// CONCORD_CHECK is always on (even in release builds): this library's whole
// purpose is letting untrusted policies near a lock's waiter queue, so
// queue-integrity violations must abort loudly rather than corrupt silently.
// CONCORD_DCHECK compiles out in NDEBUG builds and is for hot-path checks.

#ifndef SRC_BASE_CHECK_H_
#define SRC_BASE_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace concord {

[[noreturn]] inline void CheckFailed(const char* file, int line, const char* expr) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}

}  // namespace concord

#define CONCORD_CHECK(expr)                                \
  do {                                                     \
    if (__builtin_expect(!(expr), 0)) {                    \
      ::concord::CheckFailed(__FILE__, __LINE__, #expr);   \
    }                                                      \
  } while (0)

#ifdef NDEBUG
#define CONCORD_DCHECK(expr) \
  do {                       \
  } while (0)
#else
#define CONCORD_DCHECK(expr) CONCORD_CHECK(expr)
#endif

#endif  // SRC_BASE_CHECK_H_
