#include "src/base/json.h"

#include <cctype>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "src/base/check.h"

namespace concord {

// --- writer ------------------------------------------------------------------

void JsonWriter::AppendEscaped(std::string& out, std::string_view text) {
  out.push_back('"');
  const std::size_t size = text.size();
  for (std::size_t i = 0; i < size; ++i) {
    const unsigned char c = static_cast<unsigned char>(text[i]);
    switch (c) {
      case '"':
        out += "\\\"";
        continue;
      case '\\':
        out += "\\\\";
        continue;
      case '\b':
        out += "\\b";
        continue;
      case '\f':
        out += "\\f";
        continue;
      case '\n':
        out += "\\n";
        continue;
      case '\r':
        out += "\\r";
        continue;
      case '\t':
        out += "\\t";
        continue;
      default:
        break;
    }
    if (c < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", static_cast<unsigned>(c));
      out += buf;
      continue;
    }
    if (c < 0x80) {
      out.push_back(static_cast<char>(c));
      continue;
    }
    // Non-ASCII: pass through only complete, well-formed UTF-8 sequences.
    // Lock and policy names are caller-supplied and reach these emitters over
    // the control-plane RPC socket — one raw invalid byte would make the
    // whole response undecodable for a strict client, so invalid or
    // truncated sequences become U+FFFD and emission resynchronizes on the
    // next byte.
    std::size_t len = 0;
    std::uint32_t code = 0;
    if ((c & 0xE0) == 0xC0) {
      len = 2;
      code = c & 0x1Fu;
    } else if ((c & 0xF0) == 0xE0) {
      len = 3;
      code = c & 0x0Fu;
    } else if ((c & 0xF8) == 0xF0) {
      len = 4;
      code = c & 0x07u;
    }
    bool valid = len != 0 && i + len <= size;
    if (valid) {
      for (std::size_t k = 1; k < len; ++k) {
        const unsigned char cont = static_cast<unsigned char>(text[i + k]);
        if ((cont & 0xC0) != 0x80) {
          valid = false;
          break;
        }
        code = (code << 6) | (cont & 0x3Fu);
      }
    }
    if (valid) {
      static constexpr std::uint32_t kMinForLen[5] = {0, 0, 0x80, 0x800,
                                                      0x10000};
      if (code < kMinForLen[len] || code > 0x10FFFF ||
          (code >= 0xD800 && code <= 0xDFFF)) {
        valid = false;  // overlong encoding, surrogate, or out of range
      }
    }
    if (!valid) {
      out += "\\ufffd";
      continue;
    }
    out.append(text.data() + i, len);
    i += len - 1;
  }
  out.push_back('"');
}

void JsonWriter::BeforeValue() {
  if (pending_key_) {
    pending_key_ = false;
    return;
  }
  if (!wrote_element_.empty()) {
    if (wrote_element_.back()) {
      out_.push_back(',');
    }
    wrote_element_.back() = true;
  }
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  out_.push_back('{');
  wrote_element_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  CONCORD_CHECK(!wrote_element_.empty());
  wrote_element_.pop_back();
  out_.push_back('}');
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  out_.push_back('[');
  wrote_element_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  CONCORD_CHECK(!wrote_element_.empty());
  wrote_element_.pop_back();
  out_.push_back(']');
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view key) {
  CONCORD_CHECK(!wrote_element_.empty());
  if (wrote_element_.back()) {
    out_.push_back(',');
  }
  wrote_element_.back() = true;
  AppendEscaped(out_, key);
  out_.push_back(':');
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(std::string_view value) {
  BeforeValue();
  AppendEscaped(out_, value);
  return *this;
}

JsonWriter& JsonWriter::Number(double value) {
  BeforeValue();
  if (!std::isfinite(value)) {
    // JSON has no Inf/NaN; null is the conventional stand-in.
    out_ += "null";
    return *this;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::Number(std::uint64_t value) {
  BeforeValue();
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::Number(std::int64_t value) {
  BeforeValue();
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRId64, value);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::Bool(bool value) {
  BeforeValue();
  out_ += value ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Null() {
  BeforeValue();
  out_ += "null";
  return *this;
}

// --- parser ------------------------------------------------------------------

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (!IsObject()) {
    return nullptr;
  }
  const JsonValue* found = nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) {
      found = &v;
    }
  }
  return found;
}

namespace {

constexpr int kMaxParseDepth = 64;

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  StatusOr<JsonValue> Parse() {
    JsonValue value;
    CONCORD_RETURN_IF_ERROR(ParseValue(value, 0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return value;
  }

 private:
  Status Error(const std::string& what) const {
    return InvalidArgumentError(what + " at offset " + std::to_string(pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ParseValue(JsonValue& out, int depth) {
    if (depth > kMaxParseDepth) {
      return Error("nesting too deep");
    }
    SkipWhitespace();
    if (pos_ >= text_.size()) {
      return Error("unexpected end of input");
    }
    switch (text_[pos_]) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"':
        out.type = JsonValue::Type::kString;
        return ParseString(out.string_value);
      case 't':
      case 'f':
        return ParseKeyword(out);
      case 'n':
        return ParseKeyword(out);
      default:
        return ParseNumber(out);
    }
  }

  Status ParseKeyword(JsonValue& out) {
    auto match = [&](std::string_view word) {
      if (text_.substr(pos_, word.size()) == word) {
        pos_ += word.size();
        return true;
      }
      return false;
    };
    if (match("true")) {
      out.type = JsonValue::Type::kBool;
      out.bool_value = true;
      return Status::Ok();
    }
    if (match("false")) {
      out.type = JsonValue::Type::kBool;
      out.bool_value = false;
      return Status::Ok();
    }
    if (match("null")) {
      out.type = JsonValue::Type::kNull;
      return Status::Ok();
    }
    return Error("invalid literal");
  }

  Status ParseNumber(JsonValue& out) {
    const std::size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) {
      return Error("invalid value");
    }
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      return Error("malformed number '" + token + "'");
    }
    out.type = JsonValue::Type::kNumber;
    out.number_value = value;
    return Status::Ok();
  }

  Status ParseString(std::string& out) {
    if (!Consume('"')) {
      return Error("expected '\"'");
    }
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') {
        return Status::Ok();
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) {
        break;
      }
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return Error("truncated \\u escape");
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Error("invalid \\u escape");
            }
          }
          // Encode as UTF-8; surrogate pairs are not needed by any producer
          // in this repo and decode to replacement-style two-unit output.
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Error("invalid escape");
      }
    }
    return Error("unterminated string");
  }

  Status ParseObject(JsonValue& out, int depth) {
    CONCORD_CHECK(Consume('{'));
    out.type = JsonValue::Type::kObject;
    SkipWhitespace();
    if (Consume('}')) {
      return Status::Ok();
    }
    while (true) {
      SkipWhitespace();
      std::string key;
      CONCORD_RETURN_IF_ERROR(ParseString(key));
      SkipWhitespace();
      if (!Consume(':')) {
        return Error("expected ':'");
      }
      JsonValue value;
      CONCORD_RETURN_IF_ERROR(ParseValue(value, depth + 1));
      out.object.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume(',')) {
        continue;
      }
      if (Consume('}')) {
        return Status::Ok();
      }
      return Error("expected ',' or '}'");
    }
  }

  Status ParseArray(JsonValue& out, int depth) {
    CONCORD_CHECK(Consume('['));
    out.type = JsonValue::Type::kArray;
    SkipWhitespace();
    if (Consume(']')) {
      return Status::Ok();
    }
    while (true) {
      JsonValue value;
      CONCORD_RETURN_IF_ERROR(ParseValue(value, depth + 1));
      out.array.push_back(std::move(value));
      SkipWhitespace();
      if (Consume(',')) {
        continue;
      }
      if (Consume(']')) {
        return Status::Ok();
      }
      return Error("expected ',' or ']'");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

StatusOr<JsonValue> ParseJson(std::string_view text) {
  return Parser(text).Parse();
}

}  // namespace concord
