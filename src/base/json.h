// Dependency-free JSON emission and parsing.
//
// The observability layer exports machine-readable artifacts — Chrome
// trace-event files, per-lock stats dumps, BENCH_*.json results — and the
// schema checker in tools/ must read them back. Both directions live here so
// every producer and consumer agrees on one implementation, with no external
// library (the container bakes in only the C++ toolchain).

#ifndef SRC_BASE_JSON_H_
#define SRC_BASE_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/base/status.h"

namespace concord {

// --- writer ------------------------------------------------------------------
//
// Streaming writer with automatic comma placement. Keys and values must be
// emitted in a legal order (Key() inside objects, values inside arrays or
// after a Key()); the writer CHECKs nesting depth underflow but otherwise
// trusts the caller — it is an internal producer API, not a validator.

class JsonWriter {
 public:
  JsonWriter() = default;

  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  JsonWriter& Key(std::string_view key);
  JsonWriter& String(std::string_view value);
  JsonWriter& Number(double value);
  JsonWriter& Number(std::uint64_t value);
  JsonWriter& Number(std::int64_t value);
  JsonWriter& Number(int value) { return Number(static_cast<std::int64_t>(value)); }
  JsonWriter& Number(unsigned value) {
    return Number(static_cast<std::uint64_t>(value));
  }
  JsonWriter& Bool(bool value);
  JsonWriter& Null();

  // Convenience for the common `"key": value` pairs.
  JsonWriter& Field(std::string_view key, std::string_view value) {
    return Key(key).String(value);
  }
  template <typename T>
  JsonWriter& NumberField(std::string_view key, T value) {
    return Key(key).Number(value);
  }

  const std::string& str() const { return out_; }
  std::string TakeString() { return std::move(out_); }

  static void AppendEscaped(std::string& out, std::string_view text);

 private:
  void BeforeValue();

  std::string out_;
  // One entry per open container: true once the first element was written
  // (the next element needs a leading comma).
  std::vector<bool> wrote_element_;
  bool pending_key_ = false;
};

// --- parser ------------------------------------------------------------------

class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool bool_value = false;
  double number_value = 0.0;
  std::string string_value;
  std::vector<JsonValue> array;
  // Insertion-ordered; duplicate keys keep the last occurrence on lookup.
  std::vector<std::pair<std::string, JsonValue>> object;

  bool IsNull() const { return type == Type::kNull; }
  bool IsBool() const { return type == Type::kBool; }
  bool IsNumber() const { return type == Type::kNumber; }
  bool IsString() const { return type == Type::kString; }
  bool IsArray() const { return type == Type::kArray; }
  bool IsObject() const { return type == Type::kObject; }

  // Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(std::string_view key) const;
};

// Parses one JSON document (trailing whitespace allowed, trailing garbage is
// an error). Depth-limited to keep malicious inputs from overflowing the
// stack — this parser reads tool output, not untrusted network data, but the
// checker binary feeds it arbitrary files.
StatusOr<JsonValue> ParseJson(std::string_view text);

}  // namespace concord

#endif  // SRC_BASE_JSON_H_
