#include "src/base/spinwait.h"

#include <sched.h>
#include <time.h>

namespace concord {

void SpinWait::Once() {
  ++iteration_;
  if (iteration_ < kSpinLimit) {
    // Short exponential burst of PAUSEs: 1, 2, 4, ... capped.
    std::uint32_t reps = 1u << (iteration_ < 6 ? iteration_ : 6);
    for (std::uint32_t i = 0; i < reps; ++i) {
      CpuRelax();
    }
    return;
  }
  if (iteration_ < kYieldLimit) {
    sched_yield();
    return;
  }
  // Long-term waiter: sleep 50us so a preempted holder can run even under
  // heavy oversubscription. Waiters that reach this point are already far
  // off the throughput fast path.
  timespec ts{0, 50'000};
  nanosleep(&ts, nullptr);
}

}  // namespace concord
