#include "src/base/trace.h"

#include <algorithm>

#include "src/base/time.h"

namespace concord {

namespace trace_internal {
std::atomic<std::uint64_t> g_lock_bits[kMaxTraceLocks / 64] = {};
std::atomic<std::uint32_t> g_enabled_locks{0};
}  // namespace trace_internal

const char* TraceEventKindName(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kAcquire:
      return "acquire";
    case TraceEventKind::kContended:
      return "contended";
    case TraceEventKind::kAcquired:
      return "acquired";
    case TraceEventKind::kRelease:
      return "release";
    case TraceEventKind::kPark:
      return "park";
    case TraceEventKind::kWake:
      return "wake";
    case TraceEventKind::kShuffleRound:
      return "shuffle_round";
    case TraceEventKind::kPolicyDispatch:
      return "policy_dispatch";
    case TraceEventKind::kBudgetTrip:
      return "budget_trip";
    case TraceEventKind::kQuarantine:
      return "quarantine";
  }
  return "unknown";
}

void TraceRing::Snapshot(std::uint32_t tid, std::vector<TraceEvent>& out) const {
  const std::uint64_t end = pos_.load(std::memory_order_acquire);
  const std::uint64_t count = end < kCapacity ? end : kCapacity;
  const std::uint64_t begin = end - count;
  const std::size_t first = out.size();
  for (std::uint64_t i = begin; i < end; ++i) {
    const Slot& slot = slots_[i & (kCapacity - 1)];
    TraceEvent event;
    event.ts_ns = slot.ts_ns.load(std::memory_order_relaxed);
    event.lock_id = slot.lock_id.load(std::memory_order_relaxed);
    const std::uint64_t kind_arg = slot.kind_arg.load(std::memory_order_relaxed);
    event.kind = static_cast<TraceEventKind>(kind_arg >> 48);
    event.arg = kind_arg & 0xFFFFFFFFFFFFull;
    event.tid = tid;
    out.push_back(event);
  }
  // Overwrite detection: any slot whose logical index fell behind the
  // writer's current window may have been clobbered mid-copy. Keep only
  // events still provably intact.
  const std::uint64_t end2 = pos_.load(std::memory_order_acquire);
  const std::uint64_t safe_begin = end2 < kCapacity ? 0 : end2 - kCapacity;
  if (safe_begin > begin) {
    const std::uint64_t drop = std::min<std::uint64_t>(safe_begin - begin, count);
    out.erase(out.begin() + static_cast<std::ptrdiff_t>(first),
              out.begin() + static_cast<std::ptrdiff_t>(first + drop));
  }
}

TraceRegistry& TraceRegistry::Global() {
  static TraceRegistry* instance = new TraceRegistry();
  return *instance;
}

void TraceRegistry::EnableLock(std::uint64_t lock_id) {
  using trace_internal::g_enabled_locks;
  using trace_internal::g_lock_bits;
  using trace_internal::kMaxTraceLocks;
  if (lock_id == 0 || lock_id >= kMaxTraceLocks) {
    return;
  }
  const std::uint64_t bit = 1ull << (lock_id % 64);
  const std::uint64_t prev =
      g_lock_bits[lock_id / 64].fetch_or(bit, std::memory_order_relaxed);
  if ((prev & bit) == 0) {
    g_enabled_locks.fetch_add(1, std::memory_order_relaxed);
  }
}

void TraceRegistry::DisableLock(std::uint64_t lock_id) {
  using trace_internal::g_enabled_locks;
  using trace_internal::g_lock_bits;
  using trace_internal::kMaxTraceLocks;
  if (lock_id == 0 || lock_id >= kMaxTraceLocks) {
    return;
  }
  const std::uint64_t bit = 1ull << (lock_id % 64);
  const std::uint64_t prev =
      g_lock_bits[lock_id / 64].fetch_and(~bit, std::memory_order_relaxed);
  if ((prev & bit) != 0) {
    g_enabled_locks.fetch_sub(1, std::memory_order_relaxed);
  }
}

void TraceRegistry::DisableAll() {
  using trace_internal::kMaxTraceLocks;
  for (std::uint64_t word = 0; word < kMaxTraceLocks / 64; ++word) {
    const std::uint64_t prev = trace_internal::g_lock_bits[word].exchange(
        0, std::memory_order_relaxed);
    if (prev != 0) {
      trace_internal::g_enabled_locks.fetch_sub(
          static_cast<std::uint32_t>(__builtin_popcountll(prev)),
          std::memory_order_relaxed);
    }
  }
}

TraceRing& TraceRegistry::ThisThreadRing() {
  thread_local TraceRing* ring = nullptr;
  if (ring == nullptr) {
    std::lock_guard<std::mutex> guard(mu_);
    rings_.push_back(std::make_unique<TraceRing>());
    ring = rings_.back().get();
  }
  return *ring;
}

std::vector<TraceEvent> TraceRegistry::Collect() const {
  std::vector<TraceEvent> events;
  {
    std::lock_guard<std::mutex> guard(mu_);
    for (std::size_t i = 0; i < rings_.size(); ++i) {
      rings_[i]->Snapshot(static_cast<std::uint32_t>(i + 1), events);
    }
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts_ns < b.ts_ns;
                   });
  return events;
}

void TraceRegistry::ClearEvents() {
  std::lock_guard<std::mutex> guard(mu_);
  for (auto& ring : rings_) {
    ring->Clear();
  }
}

void TraceRegistry::ResetForTest() {
  DisableAll();
  ClearEvents();
}

#if CONCORD_TRACE
void TraceRecordSlow(std::uint64_t lock_id, TraceEventKind kind,
                     std::uint64_t arg) {
  TraceRegistry::Global().ThisThreadRing().Append(ClockNowNs(), lock_id, kind,
                                                  arg);
}
#endif

}  // namespace concord
