// Monotonic time helpers used by the profiler and benchmarks, plus an
// injectable clock for control-plane logic (watchdog, containment backoff,
// hook budgets) so those paths are testable without real sleeps.

#ifndef SRC_BASE_TIME_H_
#define SRC_BASE_TIME_H_

#include <time.h>

#include <atomic>
#include <cstdint>

namespace concord {

// Monotonic nanoseconds. Not wall-clock; suitable only for durations.
inline std::uint64_t MonotonicNowNs() {
  timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

// Cheap serializing-free cycle counter, used where the profiler wants minimal
// probe cost and only needs relative ordering on one CPU.
inline std::uint64_t CycleCount() {
#if defined(__x86_64__)
  std::uint32_t lo, hi;
  asm volatile("rdtsc" : "=a"(lo), "=d"(hi));
  return (static_cast<std::uint64_t>(hi) << 32) | lo;
#else
  return MonotonicNowNs();
#endif
}

// Busy-burn roughly `ns` nanoseconds of CPU work; models a critical-section
// body of known length in benchmarks (does not yield; use only for short ns).
void BurnNs(std::uint64_t ns);

// --- injectable clock --------------------------------------------------------
//
// Control-plane time (watchdog polling baselines, containment backoff
// schedules, hook-budget timing) and sampled observability paths (the
// dynamic lock profiler's wait/hold stamps, flight-recorder events) go
// through ClockNowNs() so tests can install a FakeClock and drive them
// deterministically — the override check is a single relaxed load that
// predicts perfectly, and these paths already pay a clock read. Hot paths
// that feed raw statistics on every operation (waiter views, hold-time
// EWMA) keep calling MonotonicNowNs() directly: they never make timeout
// decisions and run even with no observer attached.

class ClockInterface {
 public:
  virtual ~ClockInterface() = default;
  virtual std::uint64_t NowNs() = 0;
};

namespace detail {
extern std::atomic<ClockInterface*> g_clock_override;
}  // namespace detail

// Monotonic nanoseconds from the installed override, or the real clock when
// none is installed (the production configuration).
inline std::uint64_t ClockNowNs() {
  ClockInterface* clock = detail::g_clock_override.load(std::memory_order_acquire);
  return clock == nullptr ? MonotonicNowNs() : clock->NowNs();
}

// Installs `clock` as the process-wide time source for ClockNowNs();
// nullptr restores the real clock. Test-only; not synchronized against
// concurrent ClockNowNs() callers beyond the atomic swap itself, so install
// before starting threads that read the clock.
ClockInterface* SetClockOverrideForTest(ClockInterface* clock);

// A manually-advanced clock. Thread-safe: workers may read NowNs() while the
// test thread advances it.
class FakeClock : public ClockInterface {
 public:
  explicit FakeClock(std::uint64_t start_ns = 1) : now_ns_(start_ns) {}

  std::uint64_t NowNs() override { return now_ns_.load(std::memory_order_acquire); }

  void AdvanceNs(std::uint64_t delta_ns) {
    now_ns_.fetch_add(delta_ns, std::memory_order_acq_rel);
  }
  void AdvanceMs(std::uint64_t delta_ms) { AdvanceNs(delta_ms * 1'000'000ull); }

 private:
  std::atomic<std::uint64_t> now_ns_;
};

// RAII install/uninstall of a FakeClock for a test scope.
class ScopedFakeClock {
 public:
  explicit ScopedFakeClock(std::uint64_t start_ns = 1)
      : clock_(start_ns), prev_(SetClockOverrideForTest(&clock_)) {}
  ~ScopedFakeClock() { SetClockOverrideForTest(prev_); }
  ScopedFakeClock(const ScopedFakeClock&) = delete;
  ScopedFakeClock& operator=(const ScopedFakeClock&) = delete;

  FakeClock& clock() { return clock_; }

 private:
  FakeClock clock_;
  ClockInterface* prev_;
};

}  // namespace concord

#endif  // SRC_BASE_TIME_H_
