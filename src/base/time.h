// Monotonic time helpers used by the profiler and benchmarks.

#ifndef SRC_BASE_TIME_H_
#define SRC_BASE_TIME_H_

#include <time.h>

#include <cstdint>

namespace concord {

// Monotonic nanoseconds. Not wall-clock; suitable only for durations.
inline std::uint64_t MonotonicNowNs() {
  timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

// Cheap serializing-free cycle counter, used where the profiler wants minimal
// probe cost and only needs relative ordering on one CPU.
inline std::uint64_t CycleCount() {
#if defined(__x86_64__)
  std::uint32_t lo, hi;
  asm volatile("rdtsc" : "=a"(lo), "=d"(hi));
  return (static_cast<std::uint64_t>(hi) << 32) | lo;
#else
  return MonotonicNowNs();
#endif
}

// Busy-burn roughly `ns` nanoseconds of CPU work; models a critical-section
// body of known length in benchmarks (does not yield; use only for short ns).
void BurnNs(std::uint64_t ns);

}  // namespace concord

#endif  // SRC_BASE_TIME_H_
