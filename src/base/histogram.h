// Lock-free log2 latency histogram.
//
// The dynamic lock profiler records one sample per hook invocation on the
// lock slow path, so recording must be a handful of instructions and must not
// itself take a lock. We bucket by floor(log2(value)) — coarse, but exactly
// what kernel lockstat-style tooling reports, and sufficient to distinguish
// "ns", "us" and "ms" regimes.

#ifndef SRC_BASE_HISTOGRAM_H_
#define SRC_BASE_HISTOGRAM_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "src/base/cacheline.h"

namespace concord {

class Log2Histogram {
 public:
  static constexpr int kBuckets = 64;

  Log2Histogram() = default;

  // Snapshot copy: relaxed loads of another histogram's live counters.
  // Buckets copied concurrently with writers are each individually
  // consistent; the copy as a whole is a statistical snapshot, which is all
  // any reader of this type gets anyway.
  Log2Histogram(const Log2Histogram& other) { CopyFrom(other); }
  Log2Histogram& operator=(const Log2Histogram& other) {
    CopyFrom(other);
    return *this;
  }

  // Bucket b holds values v with floor(log2(v)) == b, i.e. [2^b, 2^(b+1)),
  // with 0 joining 1 in bucket 0. Every u64 has exactly one bucket: the top
  // bucket 63 covers [2^63, UINT64_MAX] and is reported with that honest
  // lower bound (values that large used to be conflated into the [2^62,2^63)
  // bucket, under-reporting tail percentiles by up to 2x).
  static int BucketFor(std::uint64_t value) {
    return value < 2 ? 0 : 63 - __builtin_clzll(value);
  }

  // Inclusive lower bound of `bucket`.
  static std::uint64_t BucketLowerBound(int bucket) {
    return bucket == 0 ? 0 : (1ull << bucket);
  }

  // Thread-safe; relaxed ordering is fine because readers only want
  // statistically consistent totals.
  void Record(std::uint64_t value) {
    buckets_[BucketFor(value)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    // Max: racy CAS loop, bounded retries unnecessary — contention is rare.
    std::uint64_t prev = max_.load(std::memory_order_relaxed);
    while (value > prev &&
           !max_.compare_exchange_weak(prev, value, std::memory_order_relaxed)) {
    }
  }

  std::uint64_t TotalCount() const;
  std::uint64_t Sum() const { return sum_.load(std::memory_order_relaxed); }
  std::uint64_t Max() const { return max_.load(std::memory_order_relaxed); }
  std::uint64_t BucketCount(int bucket) const {
    return buckets_[bucket].load(std::memory_order_relaxed);
  }
  double Mean() const;

  // Approximate p-th percentile (p in [0,100]), resolved to bucket lower
  // bound. Good to within 2x, which is the histogram's native resolution.
  std::uint64_t Percentile(double p) const;

  void Reset();

  // Merges `other` into this histogram (used to aggregate per-CPU shards).
  void MergeFrom(const Log2Histogram& other);

  // --- import-side mutators --------------------------------------------------
  // Rebuild a histogram from an external serialized form (shared-memory
  // profiler segments carry raw bucket counts, not samples). Thread-safe,
  // same relaxed ordering as Record().
  void AddBucketCount(int bucket, std::uint64_t count) {
    buckets_[bucket].fetch_add(count, std::memory_order_relaxed);
  }
  void AddSum(std::uint64_t delta) {
    sum_.fetch_add(delta, std::memory_order_relaxed);
  }
  void ObserveMax(std::uint64_t value) {
    std::uint64_t prev = max_.load(std::memory_order_relaxed);
    while (value > prev &&
           !max_.compare_exchange_weak(prev, value, std::memory_order_relaxed)) {
    }
  }

  // Windowed view: the samples recorded since `earlier`, an older snapshot of
  // this same histogram. Buckets and sum are monotonic, so the bucket-wise
  // difference is exact (clamped at 0 against mismatched snapshots); max is
  // not windowable from two cumulative snapshots, so the delta keeps this
  // histogram's cumulative max as an upper bound.
  Log2Histogram DeltaSince(const Log2Histogram& earlier) const;

  // Human-readable ASCII rendering (one line per non-empty bucket).
  std::string ToString() const;

  // Machine-readable form: {"count","sum","mean","max","p50","p90","p99",
  // "buckets":[{"lo","count"}...]} appended to `writer` as one JSON object.
  void AppendJson(class JsonWriter& writer) const;

 private:
  void CopyFrom(const Log2Histogram& other) {
    for (int i = 0; i < kBuckets; ++i) {
      buckets_[i].store(other.buckets_[i].load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
    }
    sum_.store(other.sum_.load(std::memory_order_relaxed),
               std::memory_order_relaxed);
    max_.store(other.max_.load(std::memory_order_relaxed),
               std::memory_order_relaxed);
  }

  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
};

}  // namespace concord

#endif  // SRC_BASE_HISTOGRAM_H_
