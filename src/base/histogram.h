// Lock-free log2 latency histogram.
//
// The dynamic lock profiler records one sample per hook invocation on the
// lock slow path, so recording must be a handful of instructions and must not
// itself take a lock. We bucket by floor(log2(value)) — coarse, but exactly
// what kernel lockstat-style tooling reports, and sufficient to distinguish
// "ns", "us" and "ms" regimes.

#ifndef SRC_BASE_HISTOGRAM_H_
#define SRC_BASE_HISTOGRAM_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "src/base/cacheline.h"

namespace concord {

class Log2Histogram {
 public:
  static constexpr int kBuckets = 64;

  Log2Histogram() = default;

  // Thread-safe; relaxed ordering is fine because readers only want
  // statistically consistent totals.
  void Record(std::uint64_t value) {
    int bucket = value == 0 ? 0 : 64 - __builtin_clzll(value);
    if (bucket >= kBuckets) {
      bucket = kBuckets - 1;
    }
    buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    // Max: racy CAS loop, bounded retries unnecessary — contention is rare.
    std::uint64_t prev = max_.load(std::memory_order_relaxed);
    while (value > prev &&
           !max_.compare_exchange_weak(prev, value, std::memory_order_relaxed)) {
    }
  }

  std::uint64_t TotalCount() const;
  std::uint64_t Sum() const { return sum_.load(std::memory_order_relaxed); }
  std::uint64_t Max() const { return max_.load(std::memory_order_relaxed); }
  std::uint64_t BucketCount(int bucket) const {
    return buckets_[bucket].load(std::memory_order_relaxed);
  }
  double Mean() const;

  // Approximate p-th percentile (p in [0,100]), resolved to bucket lower
  // bound. Good to within 2x, which is the histogram's native resolution.
  std::uint64_t Percentile(double p) const;

  void Reset();

  // Merges `other` into this histogram (used to aggregate per-CPU shards).
  void MergeFrom(const Log2Histogram& other);

  // Human-readable ASCII rendering (one line per non-empty bucket).
  std::string ToString() const;

 private:
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
};

}  // namespace concord

#endif  // SRC_BASE_HISTOGRAM_H_
