#include "src/rcu/rcu.h"

#include "src/base/check.h"
#include "src/base/spinwait.h"

namespace concord {
namespace {

thread_local std::atomic<std::uint64_t>* tls_reader_ctr = nullptr;

}  // namespace

Rcu& Rcu::Global() {
  static Rcu* rcu = new Rcu();  // intentionally leaked: slots outlive threads
  return *rcu;
}

void Rcu::ReadLock() {
  if (tls_reader_ctr == nullptr) {
    const std::uint32_t slot = next_slot_.fetch_add(1, std::memory_order_acq_rel);
    CONCORD_CHECK(slot < kMaxThreads);
    tls_reader_ctr = &slots_[slot].ctr;
  }
  const std::uint64_t current = tls_reader_ctr->load(std::memory_order_relaxed);
  if ((current & kNestMask) == 0) {
    // Outermost section: snapshot the global counter (phase bit included).
    tls_reader_ctr->store(gp_ctr_.load(std::memory_order_seq_cst),
                          std::memory_order_seq_cst);
  } else {
    tls_reader_ctr->store(current + 1, std::memory_order_relaxed);
  }
}

void Rcu::ReadUnlock() {
  CONCORD_DCHECK(tls_reader_ctr != nullptr);
  const std::uint64_t current = tls_reader_ctr->load(std::memory_order_relaxed);
  CONCORD_DCHECK((current & kNestMask) != 0);
  tls_reader_ctr->store(current - 1, std::memory_order_seq_cst);
}

bool Rcu::InReadSection() const {
  return tls_reader_ctr != nullptr &&
         (tls_reader_ctr->load(std::memory_order_relaxed) & kNestMask) != 0;
}

void Rcu::WaitForReaders() {
  const std::uint64_t gp = gp_ctr_.load(std::memory_order_seq_cst);
  const std::uint32_t nslots = next_slot_.load(std::memory_order_acquire);
  for (std::uint32_t i = 0; i < nslots; ++i) {
    SpinWait spin;
    while (true) {
      const std::uint64_t v = slots_[i].ctr.load(std::memory_order_seq_cst);
      const bool active = (v & kNestMask) != 0;
      const bool old_phase = ((v ^ gp) & kPhase) != 0;
      if (!active || !old_phase) {
        break;
      }
      spin.Once();
    }
  }
}

void Rcu::Synchronize() {
  CONCORD_CHECK(!InReadSection());
  std::lock_guard<std::mutex> guard(writer_mu_);
  // Two phase flips: the first catches readers that snapshotted before the
  // flip; the second catches a reader that raced the first flip by starting
  // a new section between our flip and our scan.
  for (int round = 0; round < 2; ++round) {
    gp_ctr_.fetch_xor(kPhase, std::memory_order_seq_cst);
    WaitForReaders();
  }
}

void Rcu::CallRcu(std::function<void()> callback) {
  std::lock_guard<std::mutex> guard(deferred_mu_);
  deferred_.push_back(std::move(callback));
}

void Rcu::FlushDeferred() {
  std::vector<std::function<void()>> to_run;
  {
    std::lock_guard<std::mutex> guard(deferred_mu_);
    to_run.swap(deferred_);
  }
  if (to_run.empty()) {
    return;
  }
  Synchronize();
  for (auto& callback : to_run) {
    callback();
  }
}

std::size_t Rcu::pending_callbacks() const {
  std::lock_guard<std::mutex> guard(const_cast<std::mutex&>(deferred_mu_));
  return deferred_.size();
}

}  // namespace concord
