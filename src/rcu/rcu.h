// Userspace read-copy-update (RCU), memory-barrier flavour.
//
// This is the stand-in for the kernel livepatch machinery the paper uses:
// Concord swaps a lock's policy table by publishing a new pointer and
// reclaiming the old table after a grace period, so lock slow paths never
// take a lock or reference count to read their policies.
//
// The algorithm is the classic two-phase-flip urcu-mb scheme (Desnoyers et
// al.): each reader thread keeps a counter word combining a nesting count and
// a phase bit snapshot; writers flip the global phase and wait, twice, until
// every active reader is observed on the new phase. All accesses use
// sequentially consistent atomics, trading a fence on the read side for not
// needing sys_membarrier — read sections here wrap a handful of loads, so
// the fence is noise compared to the lock slow paths they sit in.

#ifndef SRC_RCU_RCU_H_
#define SRC_RCU_RCU_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

#include "src/base/cacheline.h"

namespace concord {

class Rcu {
 public:
  static constexpr std::uint32_t kMaxThreads = 4096;

  static Rcu& Global();

  // Marks the calling thread as inside an RCU read-side critical section.
  // Re-entrant (nesting supported). Never blocks.
  void ReadLock();
  void ReadUnlock();

  // True iff the calling thread is inside a read-side section. Used by
  // CHECKs in code that must only run under RCU protection.
  bool InReadSection() const;

  // Blocks until every read-side critical section that started before this
  // call has finished. Must NOT be called from within a read-side section.
  void Synchronize();

  // Defers `callback` until after a grace period. Callbacks run inside the
  // next Synchronize()/FlushDeferred() on the *calling* thread of that
  // function — there is no background reclaimer thread, so a process that
  // only ever enqueues must eventually call FlushDeferred().
  void CallRcu(std::function<void()> callback);

  // Runs Synchronize() if there are pending callbacks, then executes them.
  void FlushDeferred();

  std::size_t pending_callbacks() const;

 private:
  Rcu() = default;

  struct CONCORD_CACHE_ALIGNED ReaderSlot {
    std::atomic<std::uint64_t> ctr{0};
  };

  static constexpr std::uint64_t kNestMask = 0xffffull;
  static constexpr std::uint64_t kPhase = 1ull << 16;

  // Waits until no reader is active on the phase opposite to gp_ctr_.
  void WaitForReaders();

  std::atomic<std::uint64_t> gp_ctr_{1};  // low bits form a non-zero nest seed
  std::atomic<std::uint32_t> next_slot_{0};
  ReaderSlot slots_[kMaxThreads];

  std::mutex writer_mu_;
  std::mutex deferred_mu_;
  std::vector<std::function<void()>> deferred_;
};

// RAII read-side critical section.
class RcuReadGuard {
 public:
  RcuReadGuard() { Rcu::Global().ReadLock(); }
  ~RcuReadGuard() { Rcu::Global().ReadUnlock(); }

  RcuReadGuard(const RcuReadGuard&) = delete;
  RcuReadGuard& operator=(const RcuReadGuard&) = delete;
};

// An RCU-protected pointer. Readers call Read() under an RcuReadGuard;
// writers call Swap()/Store() and dispose of the old value after a grace
// period (Swap leaves that to the caller, UpdateAndReclaim does it for you).
template <typename T>
class RcuPointer {
 public:
  explicit RcuPointer(T* initial = nullptr) : ptr_(initial) {}

  // Caller must hold an RCU read guard for the returned pointer to remain
  // valid after the call.
  T* Read() const { return ptr_.load(std::memory_order_acquire); }

  T* Swap(T* replacement) {
    return ptr_.exchange(replacement, std::memory_order_acq_rel);
  }

  // Publishes `replacement` and deletes the previous value after a grace
  // period (synchronously — blocks for the grace period).
  void UpdateAndReclaim(T* replacement) {
    T* old = Swap(replacement);
    if (old != nullptr) {
      Rcu::Global().Synchronize();
      delete old;
    }
  }

 private:
  std::atomic<T*> ptr_;
};

}  // namespace concord

#endif  // SRC_RCU_RCU_H_
