// Tracked numbers ("tnums"): the known-bits abstract domain.
//
// A Tnum represents the set of 64-bit values { value | x : x & ~mask == 0 }:
// bits where `mask` is 0 are known to equal the corresponding bit of `value`;
// bits where `mask` is 1 are unknown. This is the same domain the kernel
// eBPF verifier uses (Gershuni et al., PLDI '19 describe why intervals alone
// are not enough: alignment proofs need bit-level knowledge that survives
// shifts and masks, which intervals lose immediately).
//
// The transfer functions below are ports of the standard kernel algorithms
// (tnum_add's carry analysis, the shift-and-add multiplier) restated for this
// codebase. All are sound over-approximations: the result set always contains
// every value the concrete operation can produce from operands in the input
// sets.

#ifndef SRC_BPF_TNUM_H_
#define SRC_BPF_TNUM_H_

#include <cstdint>

namespace concord {

struct Tnum {
  std::uint64_t value = 0;
  std::uint64_t mask = ~0ull;  // default: fully unknown

  static constexpr Tnum Unknown() { return Tnum{0, ~0ull}; }
  static constexpr Tnum Const(std::uint64_t v) { return Tnum{v, 0}; }

  bool IsConst() const { return mask == 0; }
  // Smallest / largest value in the represented set.
  std::uint64_t Min() const { return value; }
  std::uint64_t Max() const { return value | mask; }

  bool operator==(const Tnum& other) const {
    return value == other.value && mask == other.mask;
  }
};

// True iff every value representable by `b` is representable by `a`.
inline bool TnumIn(const Tnum& a, const Tnum& b) {
  if ((b.mask & ~a.mask) != 0) {
    return false;
  }
  return (b.value & ~a.mask) == a.value;
}

inline Tnum TnumAdd(Tnum a, Tnum b) {
  const std::uint64_t sm = a.mask + b.mask;
  const std::uint64_t sv = a.value + b.value;
  const std::uint64_t sigma = sm + sv;
  const std::uint64_t chi = sigma ^ sv;
  const std::uint64_t mu = chi | a.mask | b.mask;
  return Tnum{sv & ~mu, mu};
}

inline Tnum TnumSub(Tnum a, Tnum b) {
  const std::uint64_t dv = a.value - b.value;
  const std::uint64_t alpha = dv + a.mask;
  const std::uint64_t beta = dv - b.mask;
  const std::uint64_t chi = alpha ^ beta;
  const std::uint64_t mu = chi | a.mask | b.mask;
  return Tnum{dv & ~mu, mu};
}

inline Tnum TnumAnd(Tnum a, Tnum b) {
  const std::uint64_t alpha = a.value | a.mask;
  const std::uint64_t beta = b.value | b.mask;
  const std::uint64_t v = a.value & b.value;
  return Tnum{v, alpha & beta & ~v};
}

inline Tnum TnumOr(Tnum a, Tnum b) {
  const std::uint64_t v = a.value | b.value;
  const std::uint64_t mu = a.mask | b.mask;
  return Tnum{v, mu & ~v};
}

inline Tnum TnumXor(Tnum a, Tnum b) {
  const std::uint64_t v = a.value ^ b.value;
  const std::uint64_t mu = a.mask | b.mask;
  return Tnum{v & ~mu, mu};
}

inline Tnum TnumLshift(Tnum a, std::uint8_t shift) {
  return Tnum{a.value << shift, a.mask << shift};
}

inline Tnum TnumRshift(Tnum a, std::uint8_t shift) {
  return Tnum{a.value >> shift, a.mask >> shift};
}

inline Tnum TnumArshift(Tnum a, std::uint8_t shift) {
  return Tnum{
      static_cast<std::uint64_t>(static_cast<std::int64_t>(a.value) >> shift),
      static_cast<std::uint64_t>(static_cast<std::int64_t>(a.mask) >> shift)};
}

// Shift-and-add multiplication: for each (possibly unknown) bit of `a`,
// accumulate the correspondingly shifted `b` into an unknown-accumulator.
inline Tnum TnumMul(Tnum a, Tnum b) {
  const std::uint64_t acc_v = a.value * b.value;
  Tnum acc_m{0, 0};
  while (a.value != 0 || a.mask != 0) {
    if ((a.value & 1) != 0) {
      acc_m = TnumAdd(acc_m, Tnum{0, b.mask});
    } else if ((a.mask & 1) != 0) {
      acc_m = TnumAdd(acc_m, Tnum{0, b.value | b.mask});
    }
    a = TnumRshift(a, 1);
    b = TnumLshift(b, 1);
  }
  return TnumAdd(Tnum{acc_v, 0}, acc_m);
}

// Intersection of the two sets. Only meaningful when the sets overlap (the
// caller detects contradictions through the interval bounds instead).
inline Tnum TnumIntersect(Tnum a, Tnum b) {
  const std::uint64_t v = a.value | b.value;
  const std::uint64_t mu = a.mask & b.mask;
  return Tnum{v & ~mu, mu};
}

// Union (join) of the two sets.
inline Tnum TnumUnion(Tnum a, Tnum b) {
  const std::uint64_t v = a.value & b.value;
  const std::uint64_t mu = a.mask | b.mask | (a.value ^ b.value);
  return Tnum{v & ~mu, mu};
}

// The coarsest tnum containing every value in [min, max].
inline Tnum TnumRange(std::uint64_t min, std::uint64_t max) {
  const std::uint64_t chi = min ^ max;
  if (chi == 0) {
    return Tnum::Const(min);
  }
  int bits = 64;
  while (bits > 0 && (chi & (1ull << (bits - 1))) == 0) {
    --bits;
  }
  if (bits > 63) {
    return Tnum::Unknown();
  }
  const std::uint64_t delta = (1ull << bits) - 1;
  return Tnum{min & ~delta, delta};
}

// Truncation to the low 32 bits (the ALU32 / zero-extension view).
inline Tnum TnumCast32(Tnum a) {
  return Tnum{a.value & 0xffffffffull, a.mask & 0xffffffffull};
}

}  // namespace concord

#endif  // SRC_BPF_TNUM_H_
