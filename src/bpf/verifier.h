// Static verifier for policy programs.
//
// Models the kernel eBPF verifier's guarantees at the scale this project
// needs. A program that passes Verify() cannot, at runtime:
//   - execute forever (no back edges => every path is <= |insns| steps),
//   - read or write outside its context struct, its 512-byte stack frame, or
//     a map value it null-checked,
//   - read uninitialized registers or stack bytes,
//   - call a helper the attach point does not allow, or with ill-typed
//     arguments,
//   - return a pointer (R0 must hold a scalar at exit).
//
// Analysis is a depth-first exploration of the (acyclic) CFG carrying
// per-register abstract states: UNINIT, SCALAR (with optional known constant
// value), PTR_TO_CTX, PTR_TO_STACK, PTR_TO_MAP_VALUE and MAP_VALUE_OR_NULL.
// Branches on `reg == 0` / `reg != 0` refine MAP_VALUE_OR_NULL into the null
// and non-null arms, which is the one flow-sensitive refinement policies
// need in practice.
//
// Deliberate simplifications vs. the kernel (all *stricter*, never weaker):
//   - no bounded loops (pre-5.3 rule: any back edge is rejected),
//   - pointer arithmetic only with compile-time-constant offsets,
//   - no pointer spills to the stack,
//   - map indices must be compile-time constants,
//   - 32-bit ALU on pointers is rejected outright.

#ifndef SRC_BPF_VERIFIER_H_
#define SRC_BPF_VERIFIER_H_

#include <cstdint>

#include "src/base/status.h"
#include "src/bpf/program.h"

namespace concord {

class Verifier {
 public:
  struct Options {
    // Capability mask granted by the attach point; a helper requiring bits
    // outside this mask is rejected. Default: everything.
    std::uint32_t allowed_capabilities = ~0u;

    // Abstract-state budget; exceeding it rejects the program as too complex
    // (kernel behaviour). Generous relative to kMaxProgramInsns.
    std::size_t max_states = 1u << 17;
  };

  // On success marks program.verified = true and fills in
  // program.used_capabilities. On failure the program is left unverified and
  // the status message pinpoints the offending instruction.
  static Status Verify(Program& program, const Options& options);
  static Status Verify(Program& program) { return Verify(program, Options{}); }
};

}  // namespace concord

#endif  // SRC_BPF_VERIFIER_H_
