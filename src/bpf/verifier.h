// Static verifier for policy programs (v2: range-tracking abstract
// interpretation).
//
// Models the kernel eBPF verifier's guarantees at the scale this project
// needs. A program that passes Verify() cannot, at runtime:
//   - execute forever (back edges are admitted only while the abstract state
//     keeps making progress; a state that repeats at a loop header is
//     rejected as an infinite loop, and every back edge carries a trip
//     budget),
//   - read or write outside its context struct, its 512-byte stack frame, or
//     a map value it null-checked,
//   - read uninitialized registers or stack bytes,
//   - call a helper the attach point does not allow, or with ill-typed
//     arguments,
//   - return a pointer (R0 must hold a scalar at exit).
//
// Analysis is a depth-first exploration of the CFG carrying per-register
// abstract states: UNINIT, SCALAR, PTR_TO_CTX, PTR_TO_STACK,
// PTR_TO_MAP_VALUE and MAP_VALUE_OR_NULL. Scalars (and the variable part of
// stack / map-value pointer offsets) track an unsigned interval, a signed
// interval and a tnum (known bits) — see src/bpf/verifier_state.h. Branches
// refine both arms' ranges, which is what terminates counter-bounded loops:
// each abstract iteration narrows the counter until the loop branch
// constant-folds (kernel-5.3-style bounded loops, no widening). States are
// checkpointed at loop headers; a header state equal to an in-progress
// ancestor is an infinite loop, and a header state covered by an already
// fully-explored checkpoint is pruned.
//
// Deliberate simplifications vs. the kernel (all *stricter*, never weaker):
//   - context pointer offsets must still be compile-time constants,
//   - variable pointer subtraction is rejected (add a negative range
//     instead),
//   - no pointer spills to the stack,
//   - map indices must be compile-time constants,
//   - 32-bit ALU on pointers is rejected outright.
//
// Every rejection message carries the abstract path (the sequence of basic
// block entry pcs) that led to it: "... [path: 0 -> 3 -> 7]".

#ifndef SRC_BPF_VERIFIER_H_
#define SRC_BPF_VERIFIER_H_

#include <cstdint>
#include <vector>

#include "src/base/status.h"
#include "src/bpf/program.h"
#include "src/bpf/verifier_state.h"

namespace concord {

class Verifier {
 public:
  struct Options {
    // Capability mask granted by the attach point; a helper requiring bits
    // outside this mask is rejected. Default: everything.
    std::uint32_t allowed_capabilities = ~0u;

    // Abstract-state budget; exceeding it rejects the program as too complex
    // (kernel behaviour). Generous relative to kMaxProgramInsns.
    std::size_t max_states = 1u << 17;

    // Per-path budget of trips through any single back edge. Bounds the
    // runtime of every admitted loop (and, transitively, of the whole
    // program: concrete executions follow an explored abstract path).
    // Comfortably above kShuffleRoundCap so the paper's shuffling policies
    // fit.
    std::uint64_t max_loop_trips = 1u << 13;
  };

  // Facts the exploration proved about the program, for consumers beyond
  // admission itself (the lock-policy lint layer, `concord_check`,
  // `concord_asm --verify`). Only filled in when verification succeeds.
  struct LoopReport {
    std::size_t back_edge_pc = 0;
    std::size_t header_pc = 0;
    std::uint64_t max_trips = 0;  // worst trips on any explored path
  };
  // A direct memory access through a null-checked map-value pointer. The
  // shared-map race analyzer (src/bpf/analysis/race.h) classifies these;
  // helper-mediated accesses (map_update_elem etc.) are synchronized by the
  // map implementation and are not recorded here.
  struct MapAccessSite {
    enum class Kind : std::uint8_t { kLoad, kStore, kAtomicAdd };
    std::size_t pc = 0;
    std::uint32_t map_index = 0;
    Kind kind = Kind::kLoad;
  };
  struct Analysis {
    std::size_t states_processed = 0;
    std::vector<LoopReport> loops;

    // Union of R0 over every exit instruction reached.
    bool has_exit = false;
    ScalarValue r0_exit;

    // Helper ids actually called (deduplicated, first-call order).
    std::vector<std::uint32_t> helpers_called;
    bool writes_map = false;  // calls a helper with kCapMapWrite
    bool writes_ctx = false;  // stores through the context pointer

    // Call sites where a callee-saved register (r6-r9) held a context
    // pointer across the helper call — the lint layer's "retained waiter
    // pointer" signal.
    std::vector<std::size_t> ctx_ptr_across_call_pcs;

    // Map-value memory accesses on any explored path, deduplicated by
    // (pc, map_index, kind). One pc may carry several entries when different
    // paths reach it with pointers into different maps.
    std::vector<MapAccessSite> map_access_sites;
  };

  // On success marks program.verified = true, fills in
  // program.used_capabilities and, if `analysis` is non-null, the proven
  // facts above. On failure the program is left unverified and the status
  // message pinpoints the offending instruction and the abstract path that
  // reached it.
  static Status Verify(Program& program, const Options& options,
                       Analysis* analysis);
  static Status Verify(Program& program, const Options& options) {
    return Verify(program, options, nullptr);
  }
  static Status Verify(Program& program) { return Verify(program, Options{}); }
};

}  // namespace concord

#endif  // SRC_BPF_VERIFIER_H_
