// Textual assembler for policy programs.
//
// This is the "C-style code" surface of the paper made concrete: users write
// a policy as text, the assembler produces bytecode, and the verifier decides
// whether it may attach. Grammar (one instruction per line):
//
//   line      := [label ':'] [insn] [';' comment]
//   insn      := alu | mem | jmp | 'call' name_or_id | 'exit'
//   alu       := op reg ',' (reg | imm)          ; op in mov add sub mul div
//                                                 ; or and xor lsh rsh arsh
//                                                 ; mod neg  (neg takes 1 op)
//                 op may carry a '32' suffix for 32-bit ALU, e.g. 'add32'
//   mem       := 'ldx'sz reg ',' '[' reg sign off ']'
//              | 'stx'sz '[' reg sign off ']' ',' reg
//              | 'st'sz  '[' reg sign off ']' ',' imm
//              | 'lddw' reg ',' imm64
//   sz        := 'b' | 'h' | 'w' | 'dw'
//   jmp       := 'ja' target
//              | jop reg ',' (reg | imm) ',' target
//   jop       := jeq jne jgt jge jlt jle jsgt jsge jslt jsle jset
//   target    := label name
//   reg       := 'r0' .. 'r10'
//
// Example — a NUMA-grouping cmp_node policy:
//
//     ldxw r2, [r1+0]      ; shuffler socket
//     ldxw r3, [r1+4]      ; candidate socket
//     jeq  r2, r3, same
//     mov  r0, 0
//     exit
//   same:
//     mov  r0, 1
//     exit

#ifndef SRC_BPF_ASSEMBLER_H_
#define SRC_BPF_ASSEMBLER_H_

#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/bpf/program.h"

namespace concord {

// Assembles `source` into a program named `name` against `ctx_desc`.
// `maps` become the program's declared map table (referenced by index from
// helper calls). The result is NOT verified; run Verifier::Verify next.
StatusOr<Program> AssembleProgram(const std::string& name,
                                  const std::string& source,
                                  const ContextDescriptor* ctx_desc,
                                  std::vector<BpfMap*> maps = {});

}  // namespace concord

#endif  // SRC_BPF_ASSEMBLER_H_
