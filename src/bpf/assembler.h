// Textual assembler for policy programs.
//
// This is the "C-style code" surface of the paper made concrete: users write
// a policy as text, the assembler produces bytecode, and the verifier decides
// whether it may attach. Grammar (one instruction per line):
//
//   line      := [label ':'] [insn] [';' comment]
//   insn      := alu | mem | jmp | 'call' name_or_id | 'exit'
//   alu       := op reg ',' (reg | imm)          ; op in mov add sub mul div
//                                                 ; or and xor lsh rsh arsh
//                                                 ; mod neg  (neg takes 1 op)
//                 op may carry a '32' suffix for 32-bit ALU, e.g. 'add32'
//   mem       := 'ldx'sz reg ',' '[' reg sign off ']'
//              | 'stx'sz '[' reg sign off ']' ',' reg
//              | 'st'sz  '[' reg sign off ']' ',' imm
//              | 'lddw' reg ',' imm64
//   sz        := 'b' | 'h' | 'w' | 'dw'
//   jmp       := 'ja' target
//              | jop reg ',' (reg | imm) ',' target
//   jop       := jeq jne jgt jge jlt jle jsgt jsge jslt jsle jset
//   target    := label name
//   reg       := 'r0' .. 'r10'
//
// Map declarations (`.map` directives) let a policy source carry its own
// state instead of relying on maps the host passes in:
//
//   .map name, array,        value_size, max_entries
//   .map name, percpu_array, value_size, max_entries
//   .map name, hash,         key_size, value_size, max_entries
//   .map name, percpu_hash,  key_size, value_size, max_entries
//
// Declared maps are appended to the program's map table after any maps the
// caller passed, in declaration order; per-CPU kinds size themselves to the
// machine topology. Ownership lands in the caller's `declared_maps` sink —
// sources using `.map` are rejected when the caller passes none.
//
// Example — a NUMA-grouping cmp_node policy:
//
//     ldxw r2, [r1+0]      ; shuffler socket
//     ldxw r3, [r1+4]      ; candidate socket
//     jeq  r2, r3, same
//     mov  r0, 0
//     exit
//   same:
//     mov  r0, 1
//     exit

#ifndef SRC_BPF_ASSEMBLER_H_
#define SRC_BPF_ASSEMBLER_H_

#include <memory>
#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/bpf/program.h"

namespace concord {

// Assembles `source` into a program named `name` against `ctx_desc`.
// `maps` become the head of the program's map table (referenced by index
// from helper calls); maps created by `.map` directives follow them and
// their ownership is appended to `*declared_maps` (the caller must keep
// them alive as long as the program — PolicySpec::maps is the usual home).
// The result is NOT verified; run Verifier::Verify next.
StatusOr<Program> AssembleProgram(
    const std::string& name, const std::string& source,
    const ContextDescriptor* ctx_desc, std::vector<BpfMap*> maps = {},
    std::vector<std::shared_ptr<BpfMap>>* declared_maps = nullptr);

// True when `source` carries `.map` directives. Hosts that inject a default
// map for legacy sources (the RPC attach path, the CLIs) must skip the
// injection for such sources — the author laid out the map table themselves,
// and their indices start at 0.
bool SourceDeclaresMaps(const std::string& source);

}  // namespace concord

#endif  // SRC_BPF_ASSEMBLER_H_
