// Attach-time certification: the gate that runs after Verifier v2 and before
// any program reaches a hook.
//
// Certification composes the two analyses in this directory:
//   1. WCET (wcet.h): the statically certified worst-case nanoseconds
//      (max over execution tiers) must fit the hook budget when one is set.
//   2. Races (race.h): plain stores into shared maps are rejected outright,
//      budget or not.
//
// Everything here runs at attach time in the control plane; the lock hot
// path gains zero instructions from certification — an admitted program runs
// exactly as before, and a rejected one never runs at all.
//
// Rejection diagnostics name the offending instruction (disassembled), the
// execution-count bound that drives it, and the loop whose trip budget
// produced that bound, mirroring the verifier's path-carrying messages.

#ifndef SRC_BPF_ANALYSIS_CERTIFY_H_
#define SRC_BPF_ANALYSIS_CERTIFY_H_

#include <cstdint>

#include "src/base/status.h"
#include "src/bpf/analysis/race.h"
#include "src/bpf/analysis/wcet.h"
#include "src/bpf/program.h"
#include "src/bpf/verifier.h"

namespace concord {

struct CertificationReport {
  WcetReport wcet;
  RaceReport races;
  std::uint64_t budget_ns = 0;  // the budget certified against (0 = none)
  bool certified = false;
};

// Certifies `program` (which must have passed Verifier::Verify producing
// `analysis`) against `budget_ns`. budget_ns == 0 means "no timing budget":
// the WCET is still computed and reported but not gated on. The race gate
// always applies. On rejection returns kPermissionDenied with the full
// diagnostic; `report` (optional) is filled either way so callers can
// surface the numbers.
Status CertifyProgram(const Program& program,
                      const Verifier::Analysis& analysis,
                      std::uint64_t budget_ns,
                      CertificationReport* report = nullptr);

}  // namespace concord

#endif  // SRC_BPF_ANALYSIS_CERTIFY_H_
