// Static worst-case execution time bounds for verified policy programs.
//
// Composes the per-instruction cost model (cost_model.h) with the loop trip
// bounds the verifier proved (Verifier::Analysis::loops) into a certified
// worst-case bound per program and tier. The composition rests on one
// counting argument over the verifier's back edges:
//
//   executions(pc) <= 1 + sum over back edges e with
//                         header_pc(e) <= pc <= back_edge_pc(e) of max_trips(e)
//
// Between two executions of `pc`, control must return from some pc' >= pc to
// some pc'' <= pc; in this instruction set every backward control transfer
// is a tracked back edge, and the first transfer that re-reaches pc departs
// from >= pc (everything executed since pc was above it) and lands at <= pc
// — i.e. its [header, back-edge] interval contains pc. Each such return is
// one counted trip, and the verifier proved at most max_trips(e) trips of
// edge e on any explored path (trip counts are cumulative per path, so
// nested loops charge their inner edges across all outer iterations).
// Concrete executions follow explored abstract paths, so summing
// cost(insn) * multiplier(pc) over the program is a sound bound.
//
// The same multiplier bounds the executed instruction count, which the
// interpreter-vs-JIT differential fuzz checks against measured runs
// (BpfVm::Run's steps_out) — the empirical guard that keeps this model
// honest.

#ifndef SRC_BPF_ANALYSIS_WCET_H_
#define SRC_BPF_ANALYSIS_WCET_H_

#include <cstdint>

#include "src/bpf/analysis/cost_model.h"
#include "src/bpf/program.h"
#include "src/bpf/verifier.h"

namespace concord {

struct WcetReport {
  std::uint64_t interp_ns = 0;  // interpreter-tier bound
  std::uint64_t jit_ns = 0;     // JIT-tier bound

  // The bound certification gates on: max of the two tiers. The JIT is a
  // pure acceleration that may fall back to the interpreter per program
  // (PolicySpec::JitCompileAll), so the runtime tier is not guaranteed.
  std::uint64_t certified_ns = 0;

  // Bound on executed instructions (an lddw pair counts once, matching the
  // interpreter's step counter).
  std::uint64_t max_insns = 0;

  // Dominant instruction by interpreter-tier contribution, for diagnostics:
  // "dominated by insn 7 x 8192 executions".
  std::size_t hottest_pc = 0;
  std::uint64_t hottest_pc_ns = 0;       // total contribution of hottest_pc
  std::uint64_t hottest_multiplier = 1;  // its execution-count bound
};

// Computes the bound for `program`. `analysis` must come from a successful
// Verifier::Verify of this program (loop reports and map_lookup_sites are
// consumed; map-kind-dependent helper costs read program.maps).
WcetReport ComputeWcet(const Program& program,
                       const Verifier::Analysis& analysis);

}  // namespace concord

#endif  // SRC_BPF_ANALYSIS_WCET_H_
