#include "src/bpf/analysis/cost_model.h"

#include "src/bpf/helpers.h"

namespace concord {
namespace {

// Baseline per-operation costs (ns). The interpreter figures include the
// dispatch-loop overhead (fetch, class switch, bounds CHECKs); the JIT
// figures are the native instruction sequences the backend emits.
struct TierCosts {
  std::uint64_t alu;
  std::uint64_t mem;     // LDX / STX / ST through a verified pointer
  std::uint64_t atomic;  // lock xadd — dominated by the cache-line RMW
  std::uint64_t jmp;     // conditional or unconditional branch, exit
  std::uint64_t call;    // helper call overhead (spill/dispatch), not the body
  std::uint64_t lddw;    // two-slot immediate load, charged once
};

constexpr TierCosts kInterpCosts = {4, 7, 44, 5, 14, 5};
constexpr TierCosts kJitCosts = {1, 3, 40, 2, 6, 1};

// Helper bodies. Map costs split by kind: array lookups are an index check
// plus an add; hash lookups hash the key and probe buckets under the bucket
// spinlock; per-CPU variants add the CPU-slot indirection but avoid
// cross-CPU traffic. Updates/deletes pay the write path. Unknown helpers
// (Concord extensions registered at runtime) get a flat pessimistic charge.
constexpr std::uint64_t kCostClockRead = 30;
constexpr std::uint64_t kCostIdGetter = 10;
constexpr std::uint64_t kCostTaskStat = 16;
constexpr std::uint64_t kCostArrayLookup = 12;
constexpr std::uint64_t kCostHashLookup = 90;
constexpr std::uint64_t kCostArrayUpdate = 24;
constexpr std::uint64_t kCostHashUpdate = 140;
constexpr std::uint64_t kCostHashDelete = 120;
constexpr std::uint64_t kCostTracePrintk = 400;
constexpr std::uint64_t kCostUnknownHelper = 150;

bool IsHashKind(const BpfMap* map) {
  return map == nullptr || map->type() == MapType::kHash ||
         map->type() == MapType::kPerCpuHash;
}

}  // namespace

std::uint64_t InsnCostNs(const Insn& insn, ExecTier tier) {
  const TierCosts& costs =
      tier == ExecTier::kInterpreter ? kInterpCosts : kJitCosts;
  switch (insn.Class()) {
    case kBpfClassAlu64:
    case kBpfClassAlu32:
      return costs.alu;
    case kBpfClassLdx:
    case kBpfClassSt:
      return costs.mem;
    case kBpfClassStx:
      return insn.Mode() == kBpfModeAtomic ? costs.atomic : costs.mem;
    case kBpfClassLd:
      return costs.lddw;
    case kBpfClassJmp:
    case kBpfClassJmp32:
      return insn.JmpOp() == kBpfCall ? costs.call : costs.jmp;
    default:
      return costs.mem;  // unreachable for verified programs; stay pessimistic
  }
}

std::uint64_t HelperCostNs(std::uint32_t helper_id, const BpfMap* map) {
  switch (helper_id) {
    case kHelperKtimeGetNs:
      return kCostClockRead;
    case kHelperGetSmpProcessorId:
    case kHelperGetNumaNodeId:
    case kHelperGetCurrentTaskId:
    case kHelperGetTaskPriority:
    case kHelperGetTaskClass:
    case kHelperGetLocksHeld:
      return kCostIdGetter;
    case kHelperGetCsEwmaNs:
    case kHelperGetTaskQuotaNs:
    case kHelperGetTaskPreemptible:
      return kCostTaskStat;
    case kHelperMapLookupElem:
      return IsHashKind(map) ? kCostHashLookup : kCostArrayLookup;
    case kHelperMapUpdateElem:
      return IsHashKind(map) ? kCostHashUpdate : kCostArrayUpdate;
    case kHelperMapDeleteElem:
      return kCostHashDelete;
    case kHelperTracePrintk:
      return kCostTracePrintk;
    default:
      return kCostUnknownHelper;
  }
}

}  // namespace concord
