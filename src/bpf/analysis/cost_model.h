// Per-instruction cost model for policy programs.
//
// The certification pass (src/bpf/analysis/wcet.h) needs a worst-case cost
// for every instruction a verified program can execute, on both execution
// tiers: the interpreter (src/bpf/vm.h) pays a dispatch loop per
// instruction; the x86-64 JIT (src/bpf/jit/jit.h) compiles most instructions
// to one or two native ops. Costs are expressed in nanoseconds on a
// deliberately pessimistic baseline — a 1 GHz-class core with unwarmed
// caches — so the bound errs toward rejecting a borderline policy rather
// than admitting one that trips its runtime budget.
//
// Helper bodies are costed separately (HelperCostNs): a map helper's cost
// depends on the map kind it resolves to (array index vs hash probe under
// the bucket lock), which the caller knows from Program::map_lookup_sites.
//
// The model intentionally excludes waiting time: a hash-map bucket lock can
// be contended and an atomic add can bounce a cache line for longer than any
// constant here. Those delays are bounded operationally by the runtime
// budget machinery (HookBudgetState); the static bound certifies the
// instruction path itself. docs/ANALYSIS.md spells out this contract.

#ifndef SRC_BPF_ANALYSIS_COST_MODEL_H_
#define SRC_BPF_ANALYSIS_COST_MODEL_H_

#include <cstdint>

#include "src/bpf/insn.h"
#include "src/bpf/maps.h"

namespace concord {

enum class ExecTier : std::uint8_t {
  kInterpreter,  // BpfVm::Run — the fallback tier, always available
  kJit,          // native code from Jit::Compile
};

// Worst-case nanoseconds to execute `insn` once on `tier`, excluding any
// helper body (a kBpfCall insn is charged only its call/dispatch overhead
// here). An lddw pair is charged once, on its first slot.
std::uint64_t InsnCostNs(const Insn& insn, ExecTier tier);

// Worst-case nanoseconds for one invocation of helper `helper_id`'s body
// (tier-independent: both tiers call the same C++ helper). For map helpers,
// `map` is the map the call site resolves to, or nullptr when the site is
// polymorphic/unknown — the model then assumes the most expensive kind.
std::uint64_t HelperCostNs(std::uint32_t helper_id, const BpfMap* map);

}  // namespace concord

#endif  // SRC_BPF_ANALYSIS_COST_MODEL_H_
