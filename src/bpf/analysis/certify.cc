#include "src/bpf/analysis/certify.h"

#include <sstream>

namespace concord {
namespace {

// The loop (if any) whose trip budget inflates `pc`'s execution count, for
// the over-budget diagnostic. Picks the covering edge with the largest
// max_trips — the dominant contributor to the multiplier.
const Verifier::LoopReport* DominantLoop(const Verifier::Analysis& analysis,
                                         std::size_t pc) {
  const Verifier::LoopReport* best = nullptr;
  for (const auto& loop : analysis.loops) {
    if (loop.header_pc <= pc && pc <= loop.back_edge_pc &&
        (best == nullptr || loop.max_trips > best->max_trips)) {
      best = &loop;
    }
  }
  return best;
}

}  // namespace

Status CertifyProgram(const Program& program,
                      const Verifier::Analysis& analysis,
                      std::uint64_t budget_ns, CertificationReport* report) {
  CertificationReport local;
  CertificationReport& cert = report != nullptr ? *report : local;
  cert.wcet = ComputeWcet(program, analysis);
  cert.races = AnalyzeRaces(program, analysis);
  cert.budget_ns = budget_ns;
  cert.certified = false;

  if (!cert.races.ok()) {
    return PermissionDeniedError("shared-map race analysis rejected program '" +
                                 program.name + "': " + cert.races.ToString());
  }

  if (budget_ns != 0 && cert.wcet.certified_ns > budget_ns) {
    std::ostringstream msg;
    msg << "certified worst case " << cert.wcet.certified_ns
        << " ns exceeds hook budget " << budget_ns << " ns for program '"
        << program.name << "'; dominated by insn " << cert.wcet.hottest_pc
        << " (`" << DisassembleInsn(program.insns[cert.wcet.hottest_pc])
        << "`) x " << cert.wcet.hottest_multiplier << " executions";
    if (const Verifier::LoopReport* loop =
            DominantLoop(analysis, cert.wcet.hottest_pc)) {
      msg << " [loop: header " << loop->header_pc << " -> back edge "
          << loop->back_edge_pc << ", <= " << loop->max_trips << " trips]";
    }
    msg << "; tighten the loop bound or raise budget_ns";
    return PermissionDeniedError(msg.str());
  }

  cert.certified = true;
  return Status::Ok();
}

}  // namespace concord
