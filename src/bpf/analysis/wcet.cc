#include "src/bpf/analysis/wcet.h"

#include "src/bpf/helpers.h"

namespace concord {
namespace {

// Execution-count bound for `pc`: initial arrival plus one per counted trip
// of every back edge whose [header, back-edge] interval contains it. Trip
// budgets are cumulative per path, so nested loops are handled by this sum.
std::uint64_t Multiplier(const Verifier::Analysis& analysis, std::size_t pc) {
  std::uint64_t mult = 1;
  for (const auto& loop : analysis.loops) {
    if (loop.header_pc <= pc && pc <= loop.back_edge_pc) {
      mult += loop.max_trips;
    }
  }
  return mult;
}

// The map a helper call site should be costed against. Lookup sites with a
// constant map index (the common case — the verifier requires constant
// indices) resolve exactly; anything else is charged the most expensive kind
// among the program's declared maps, or the unknown-map worst case when a
// hash map is present or no maps are declared.
const BpfMap* ResolveMapForCall(const Program& program, std::size_t pc,
                                std::uint32_t helper_id) {
  if (helper_id == kHelperMapLookupElem &&
      pc < program.map_lookup_sites.size() &&
      program.map_lookup_sites[pc] >= 0) {
    const auto site = static_cast<std::size_t>(program.map_lookup_sites[pc]);
    if (site < program.maps.size()) {
      return program.maps[site];
    }
  }
  const BpfMap* worst = nullptr;
  for (BpfMap* map : program.maps) {
    if (map == nullptr || map->type() == MapType::kHash ||
        map->type() == MapType::kPerCpuHash) {
      return nullptr;  // hash kinds are the ceiling; nullptr means exactly that
    }
    worst = map;
  }
  return worst;  // all-array programs get array costs; empty -> nullptr
}

}  // namespace

WcetReport ComputeWcet(const Program& program,
                       const Verifier::Analysis& analysis) {
  WcetReport report;
  const std::size_t count = program.insns.size();
  for (std::size_t pc = 0; pc < count; ++pc) {
    const Insn& insn = program.insns[pc];
    const std::uint64_t mult = Multiplier(analysis, pc);

    std::uint64_t interp = InsnCostNs(insn, ExecTier::kInterpreter);
    std::uint64_t jit = InsnCostNs(insn, ExecTier::kJit);
    if (insn.Class() == kBpfClassJmp && insn.JmpOp() == kBpfCall) {
      const auto helper_id = static_cast<std::uint32_t>(insn.imm);
      const std::uint64_t body =
          HelperCostNs(helper_id, ResolveMapForCall(program, pc, helper_id));
      interp += body;
      jit += body;
    }

    // Totals fit comfortably in u64: <= 4096 insns x (1 + edges * 2^13)
    // trips x ~400 ns/insn stays below 2^48 even with every insn inside
    // every loop.
    report.max_insns += mult;
    report.interp_ns += interp * mult;
    report.jit_ns += jit * mult;
    if (interp * mult > report.hottest_pc_ns) {
      report.hottest_pc = pc;
      report.hottest_pc_ns = interp * mult;
      report.hottest_multiplier = mult;
    }

    if (insn.Class() == kBpfClassLd) {
      ++pc;  // lddw second slot: charged once, on the first slot
    }
  }
  report.certified_ns =
      report.interp_ns > report.jit_ns ? report.interp_ns : report.jit_ns;
  return report;
}

}  // namespace concord
