// Shared-map race analyzer for policy programs.
//
// Every hook a policy attaches to can fire concurrently on every CPU —
// AttachBySelector deliberately shares one PolicySpec's maps across all
// selected locks — so a non-atomic read-modify-write through a pointer into
// a *shared* (non-per-CPU) map is a lost-update race: two CPUs load the same
// counter, both add, one increment vanishes. The kernel verifier admits this
// (it only proves memory safety); this pass closes the gap at attach time.
//
// Classification, per map, from the verifier's recorded access sites
// (Verifier::Analysis::map_access_sites):
//
//   kReadOnly  only loads through map-value pointers
//   kAtomic    stores happen, but every one is an atomic add (xadd)
//   kMutates   at least one plain store through a map-value pointer
//
// The gate: kMutates on a shared map is rejected. Per-CPU maps may mutate
// freely — each CPU owns its slot. Atomic adds are fine on any map kind.
// Helper-mediated writes (map_update_elem / map_delete_elem) are serialized
// by the map implementation itself and are out of scope here; they never
// appear in map_access_sites.

#ifndef SRC_BPF_ANALYSIS_RACE_H_
#define SRC_BPF_ANALYSIS_RACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/bpf/program.h"
#include "src/bpf/verifier.h"

namespace concord {

enum class MapAccessClass : std::uint8_t {
  kNone,      // no direct value-pointer accesses observed
  kReadOnly,  // loads only
  kAtomic,    // mutated, but only via atomic adds
  kMutates,   // at least one plain store
};

const char* MapAccessClassName(MapAccessClass access_class);

struct RaceFinding {
  std::string rule;  // stable id, currently always "shared-map-rmw"
  std::size_t pc = 0;
  std::uint32_t map_index = 0;
  std::string message;  // names the insn, the map, and the fix
};

struct RaceReport {
  // Indexed like Program::maps.
  std::vector<MapAccessClass> map_classes;
  std::vector<RaceFinding> findings;

  bool ok() const { return findings.empty(); }
  // All finding messages, newline-joined (empty when ok).
  std::string ToString() const;
};

// Classifies every map access site and flags plain stores into shared maps.
// `analysis` must come from a successful Verifier::Verify of `program`.
RaceReport AnalyzeRaces(const Program& program,
                        const Verifier::Analysis& analysis);

}  // namespace concord

#endif  // SRC_BPF_ANALYSIS_RACE_H_
