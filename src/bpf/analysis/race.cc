#include "src/bpf/analysis/race.h"

#include <sstream>

namespace concord {

const char* MapAccessClassName(MapAccessClass access_class) {
  switch (access_class) {
    case MapAccessClass::kNone:
      return "none";
    case MapAccessClass::kReadOnly:
      return "read-only";
    case MapAccessClass::kAtomic:
      return "atomic";
    case MapAccessClass::kMutates:
      return "mutates";
  }
  return "?";
}

RaceReport AnalyzeRaces(const Program& program,
                        const Verifier::Analysis& analysis) {
  RaceReport report;
  report.map_classes.assign(program.maps.size(), MapAccessClass::kNone);

  // First pass: per-map classification (a load never downgrades a map that
  // also has stores; kMutates dominates kAtomic dominates kReadOnly).
  for (const auto& site : analysis.map_access_sites) {
    if (site.map_index >= report.map_classes.size()) {
      continue;  // defensive: stale analysis against a different program
    }
    MapAccessClass& cls = report.map_classes[site.map_index];
    switch (site.kind) {
      case Verifier::MapAccessSite::Kind::kLoad:
        if (cls == MapAccessClass::kNone) {
          cls = MapAccessClass::kReadOnly;
        }
        break;
      case Verifier::MapAccessSite::Kind::kAtomicAdd:
        if (cls != MapAccessClass::kMutates) {
          cls = MapAccessClass::kAtomic;
        }
        break;
      case Verifier::MapAccessSite::Kind::kStore:
        cls = MapAccessClass::kMutates;
        break;
    }
  }

  // Second pass: one finding per plain store into a shared map. The message
  // distinguishes a read-modify-write (the map is also loaded, so this is a
  // classic lost-update) from a blind store (last-writer-wins, still a race
  // worth surfacing) and always carries the fix-it hint.
  for (const auto& site : analysis.map_access_sites) {
    if (site.kind != Verifier::MapAccessSite::Kind::kStore) {
      continue;
    }
    if (site.map_index >= program.maps.size()) {
      continue;
    }
    const BpfMap* map = program.maps[site.map_index];
    if (map == nullptr || map->is_per_cpu()) {
      continue;
    }
    bool also_loads = false;
    for (const auto& other : analysis.map_access_sites) {
      if (other.map_index == site.map_index &&
          other.kind == Verifier::MapAccessSite::Kind::kLoad) {
        also_loads = true;
        break;
      }
    }
    RaceFinding finding;
    finding.rule = "shared-map-rmw";
    finding.pc = site.pc;
    finding.map_index = site.map_index;
    std::ostringstream msg;
    msg << "insn " << site.pc << " (`"
        << DisassembleInsn(program.insns[site.pc]) << "`): non-atomic "
        << (also_loads ? "read-modify-write of" : "store into") << " shared "
        << MapTypeName(map->type()) << " map '" << map->name()
        << "' races with concurrent hook invocations; use an atomic add "
           "(xadddw/xaddw) or migrate the map to "
        << (map->type() == MapType::kHash ? "percpu_hash" : "percpu_array");
    finding.message = msg.str();
    report.findings.push_back(std::move(finding));
  }
  return report;
}

std::string RaceReport::ToString() const {
  std::string out;
  for (const auto& finding : findings) {
    if (!out.empty()) {
      out += '\n';
    }
    out += finding.message;
  }
  return out;
}

}  // namespace concord
