#include "src/bpf/assembler.h"

#include <cctype>
#include <cstdlib>
#include <map>
#include <optional>
#include <sstream>

#include "src/bpf/helpers.h"
#include "src/bpf/insn.h"
#include "src/topology/topology.h"

namespace concord {
namespace {

struct Token {
  std::string text;
};

// Splits a line into tokens; separators are whitespace and commas; brackets,
// colons, plus and minus are returned as their own tokens when structural.
std::vector<std::string> Tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::string current;
  auto flush = [&] {
    if (!current.empty()) {
      tokens.push_back(current);
      current.clear();
    }
  };
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (c == ';') {
      break;  // comment
    }
    if (std::isspace(static_cast<unsigned char>(c)) || c == ',') {
      flush();
      continue;
    }
    if (c == '[' || c == ']' || c == ':') {
      flush();
      tokens.push_back(std::string(1, c));
      continue;
    }
    current.push_back(c);
  }
  flush();
  return tokens;
}

bool ParseReg(const std::string& token, std::uint8_t* out) {
  if (token.size() < 2 || token[0] != 'r') {
    return false;
  }
  char* end = nullptr;
  const long v = std::strtol(token.c_str() + 1, &end, 10);
  if (end == nullptr || *end != '\0' || v < 0 || v >= kBpfNumRegs) {
    return false;
  }
  *out = static_cast<std::uint8_t>(v);
  return true;
}

bool ParseImm(const std::string& token, std::int64_t* out) {
  if (token.empty()) {
    return false;
  }
  char* end = nullptr;
  const long long v = std::strtoll(token.c_str(), &end, 0);
  if (end == nullptr || *end != '\0') {
    return false;
  }
  *out = v;
  return true;
}

std::optional<std::uint8_t> AluOpFromName(const std::string& base) {
  if (base == "mov") return kBpfMov;
  if (base == "add") return kBpfAdd;
  if (base == "sub") return kBpfSub;
  if (base == "mul") return kBpfMul;
  if (base == "div") return kBpfDiv;
  if (base == "or") return kBpfOr;
  if (base == "and") return kBpfAnd;
  if (base == "xor") return kBpfXor;
  if (base == "lsh") return kBpfLsh;
  if (base == "rsh") return kBpfRsh;
  if (base == "arsh") return kBpfArsh;
  if (base == "mod") return kBpfMod;
  if (base == "neg") return kBpfNeg;
  return std::nullopt;
}

std::optional<std::uint8_t> JmpOpFromName(const std::string& name) {
  if (name == "jeq") return kBpfJeq;
  if (name == "jne") return kBpfJne;
  if (name == "jgt") return kBpfJgt;
  if (name == "jge") return kBpfJge;
  if (name == "jlt") return kBpfJlt;
  if (name == "jle") return kBpfJle;
  if (name == "jsgt") return kBpfJsgt;
  if (name == "jsge") return kBpfJsge;
  if (name == "jslt") return kBpfJslt;
  if (name == "jsle") return kBpfJsle;
  if (name == "jset") return kBpfJset;
  return std::nullopt;
}

std::optional<std::uint8_t> SizeFromSuffix(const std::string& suffix) {
  if (suffix == "b") return kBpfSizeB;
  if (suffix == "h") return kBpfSizeH;
  if (suffix == "w") return kBpfSizeW;
  if (suffix == "dw") return kBpfSizeDw;
  return std::nullopt;
}

struct PendingJump {
  std::size_t pc;
  std::string label;
  int line_no;
};

class Assembler {
 public:
  Assembler(const std::string& name, const ContextDescriptor* ctx_desc,
            std::vector<BpfMap*> maps,
            std::vector<std::shared_ptr<BpfMap>>* declared_maps)
      : name_(name),
        ctx_desc_(ctx_desc),
        maps_(std::move(maps)),
        declared_maps_(declared_maps) {}

  StatusOr<Program> Assemble(const std::string& source) {
    std::size_t pos = 0;
    int line_no = 0;
    while (pos <= source.size()) {
      const std::size_t eol = source.find('\n', pos);
      const std::string line = source.substr(
          pos, eol == std::string::npos ? std::string::npos : eol - pos);
      ++line_no;
      Status status = HandleLine(line, line_no);
      if (!status.ok()) {
        return status;
      }
      if (eol == std::string::npos) {
        break;
      }
      pos = eol + 1;
    }

    for (const auto& pending : pending_jumps_) {
      auto it = labels_.find(pending.label);
      if (it == labels_.end()) {
        return InvalidArgumentError("line " + std::to_string(pending.line_no) +
                                    ": undefined label '" + pending.label + "'");
      }
      const std::int64_t delta = static_cast<std::int64_t>(it->second) -
                                 static_cast<std::int64_t>(pending.pc) - 1;
      if (delta < INT16_MIN || delta > INT16_MAX) {
        return InvalidArgumentError("jump to '" + pending.label + "' overflows");
      }
      insns_[pending.pc].off = static_cast<std::int16_t>(delta);
    }

    Program program;
    program.name = name_;
    program.insns = std::move(insns_);
    program.maps = std::move(maps_);
    program.ctx_desc = ctx_desc_;
    return program;
  }

 private:
  Status Err(int line_no, const std::string& msg) const {
    return InvalidArgumentError("line " + std::to_string(line_no) + ": " + msg);
  }

  Status HandleLine(const std::string& line, int line_no) {
    std::vector<std::string> tokens = Tokenize(line);
    if (tokens.empty()) {
      return Status::Ok();
    }
    // Leading label: `name :`
    if (tokens.size() >= 2 && tokens[1] == ":") {
      if (labels_.count(tokens[0]) != 0) {
        return Err(line_no, "duplicate label '" + tokens[0] + "'");
      }
      labels_[tokens[0]] = insns_.size();
      tokens.erase(tokens.begin(), tokens.begin() + 2);
      if (tokens.empty()) {
        return Status::Ok();
      }
    }
    return HandleInsn(tokens, line_no);
  }

  Status HandleInsn(const std::vector<std::string>& t, int line_no) {
    const std::string& mnemonic = t[0];

    if (mnemonic == ".map") {
      return HandleMapDirective(t, line_no);
    }

    if (mnemonic == "exit") {
      insns_.push_back(Exit());
      return Status::Ok();
    }

    if (mnemonic == "call") {
      if (t.size() != 2) {
        return Err(line_no, "call takes one operand");
      }
      std::int64_t id;
      if (ParseImm(t[1], &id)) {
        insns_.push_back(Call(static_cast<std::int32_t>(id)));
        return Status::Ok();
      }
      const HelperDef* helper = HelperRegistry::Global().FindByName(t[1]);
      if (helper == nullptr) {
        return Err(line_no, "unknown helper '" + t[1] + "'");
      }
      insns_.push_back(Call(static_cast<std::int32_t>(helper->id)));
      return Status::Ok();
    }

    if (mnemonic == "ja") {
      if (t.size() != 2) {
        return Err(line_no, "ja takes one operand");
      }
      pending_jumps_.push_back({insns_.size(), t[1], line_no});
      insns_.push_back(Jump(0));
      return Status::Ok();
    }

    {
      std::string jmp_base = mnemonic;
      bool jmp64 = true;
      if (jmp_base.size() > 2 && jmp_base.substr(jmp_base.size() - 2) == "32") {
        jmp64 = false;
        jmp_base = jmp_base.substr(0, jmp_base.size() - 2);
      }
      if (auto jop = JmpOpFromName(jmp_base)) {
        // jcc[32] reg, reg_or_imm, label
        if (t.size() != 4) {
          return Err(line_no, mnemonic + " takes: reg, reg|imm, label");
        }
        std::uint8_t dst;
        if (!ParseReg(t[1], &dst)) {
          return Err(line_no, "bad register '" + t[1] + "'");
        }
        pending_jumps_.push_back({insns_.size(), t[3], line_no});
        std::uint8_t src;
        std::int64_t imm;
        if (ParseReg(t[2], &src)) {
          insns_.push_back(JmpReg(*jop, dst, src, 0, jmp64));
        } else if (ParseImm(t[2], &imm)) {
          insns_.push_back(
              JmpImm(*jop, dst, static_cast<std::int32_t>(imm), 0, jmp64));
        } else {
          return Err(line_no, "bad operand '" + t[2] + "'");
        }
        return Status::Ok();
      }
    }

    if (mnemonic == "lddw") {
      if (t.size() != 3) {
        return Err(line_no, "lddw takes: reg, imm64");
      }
      std::uint8_t dst;
      std::int64_t imm;
      if (!ParseReg(t[1], &dst) || !ParseImm(t[2], &imm)) {
        return Err(line_no, "bad lddw operands");
      }
      const auto value = static_cast<std::uint64_t>(imm);
      insns_.push_back(LoadImm64First(dst, value));
      insns_.push_back(LoadImm64Second(value));
      return Status::Ok();
    }

    if (mnemonic.rfind("ldx", 0) == 0) {
      auto size = SizeFromSuffix(mnemonic.substr(3));
      if (!size) {
        return Err(line_no, "bad load size in '" + mnemonic + "'");
      }
      // ldxSZ reg, [ reg+off ]    tokens: mn reg [ base ]  (off folded in base)
      return ParseMemForm(t, line_no, /*is_load=*/true, *size);
    }
    if (mnemonic.rfind("xadd", 0) == 0) {
      auto size = SizeFromSuffix(mnemonic.substr(4));
      if (!size || (*size != kBpfSizeW && *size != kBpfSizeDw)) {
        return Err(line_no, "xadd supports w/dw only");
      }
      // xaddSZ [base+off], reg
      if (t.size() != 5 || t[1] != "[" || t[3] != "]") {
        return Err(line_no, "expected: " + mnemonic + " [base+off], reg");
      }
      std::uint8_t base, src;
      std::int16_t off;
      CONCORD_RETURN_IF_ERROR(ParseBasePlusOff(t[2], line_no, &base, &off));
      if (!ParseReg(t[4], &src)) {
        return Err(line_no, "bad register '" + t[4] + "'");
      }
      insns_.push_back(AtomicAdd(*size, base, src, off));
      return Status::Ok();
    }

    if (mnemonic.rfind("stx", 0) == 0) {
      auto size = SizeFromSuffix(mnemonic.substr(3));
      if (!size) {
        return Err(line_no, "bad store size in '" + mnemonic + "'");
      }
      return ParseMemForm(t, line_no, /*is_load=*/false, *size);
    }
    if (mnemonic.rfind("st", 0) == 0 && mnemonic != "sub") {
      auto size = SizeFromSuffix(mnemonic.substr(2));
      if (size) {
        return ParseStImmForm(t, line_no, *size);
      }
    }

    // ALU, possibly with '32' suffix.
    std::string base = mnemonic;
    bool is64 = true;
    if (base.size() > 2 && base.substr(base.size() - 2) == "32") {
      is64 = false;
      base = base.substr(0, base.size() - 2);
    }
    if (auto aop = AluOpFromName(base)) {
      if (*aop == kBpfNeg) {
        if (t.size() != 2) {
          return Err(line_no, "neg takes one register");
        }
        std::uint8_t dst;
        if (!ParseReg(t[1], &dst)) {
          return Err(line_no, "bad register '" + t[1] + "'");
        }
        insns_.push_back(AluImm(kBpfNeg, dst, 0, is64));
        return Status::Ok();
      }
      if (t.size() != 3) {
        return Err(line_no, mnemonic + " takes: reg, reg|imm");
      }
      std::uint8_t dst;
      if (!ParseReg(t[1], &dst)) {
        return Err(line_no, "bad register '" + t[1] + "'");
      }
      std::uint8_t src;
      std::int64_t imm;
      if (ParseReg(t[2], &src)) {
        insns_.push_back(AluReg(*aop, dst, src, is64));
      } else if (ParseImm(t[2], &imm)) {
        if (imm < INT32_MIN || imm > INT32_MAX) {
          return Err(line_no, "immediate does not fit in 32 bits (use lddw)");
        }
        insns_.push_back(AluImm(*aop, dst, static_cast<std::int32_t>(imm), is64));
      } else {
        return Err(line_no, "bad operand '" + t[2] + "'");
      }
      return Status::Ok();
    }

    return Err(line_no, "unknown mnemonic '" + mnemonic + "'");
  }

  // `.map name, type, [key_size,] value_size, max_entries` — see the header
  // comment. Hash kinds take key_size; array kinds have a fixed u32 key.
  Status HandleMapDirective(const std::vector<std::string>& t, int line_no) {
    if (declared_maps_ == nullptr) {
      return Err(line_no,
                 ".map declarations are not accepted in this context");
    }
    if (t.size() < 3) {
      return Err(line_no, ".map takes: name, type, sizes...");
    }
    const std::string& map_name = t[1];
    MapType type;
    if (!MapTypeFromName(t[2], &type)) {
      return Err(line_no, "unknown map type '" + t[2] + "'");
    }
    const bool is_hash =
        type == MapType::kHash || type == MapType::kPerCpuHash;
    const std::size_t expected_tokens = is_hash ? 6 : 5;
    if (t.size() != expected_tokens) {
      return Err(line_no, is_hash ? ".map " + t[2] +
                                        " takes: name, type, key_size, "
                                        "value_size, max_entries"
                                  : ".map " + t[2] +
                                        " takes: name, type, value_size, "
                                        "max_entries");
    }
    std::uint32_t dims[3] = {sizeof(std::uint32_t), 0, 0};  // key, value, max
    for (std::size_t i = 3; i < t.size(); ++i) {
      std::int64_t v;
      if (!ParseImm(t[i], &v) || v <= 0 || v > UINT32_MAX) {
        return Err(line_no, "bad map dimension '" + t[i] + "'");
      }
      dims[i - (is_hash ? 3 : 2)] = static_cast<std::uint32_t>(v);
    }
    for (BpfMap* existing : maps_) {
      if (existing->name() == map_name) {
        return Err(line_no, "duplicate map name '" + map_name + "'");
      }
    }
    auto map = CreateMap(type, map_name, dims[0], dims[1], dims[2],
                         MachineTopology::Global().total_cpus());
    if (!map.ok()) {
      return Err(line_no, map.status().message());
    }
    std::shared_ptr<BpfMap> owned = std::move(map.value());
    maps_.push_back(owned.get());
    declared_maps_->push_back(std::move(owned));
    return Status::Ok();
  }

  // Parses `reg+off` or `reg-off` or bare `reg` inside brackets.
  Status ParseBasePlusOff(const std::string& token, int line_no, std::uint8_t* base,
                          std::int16_t* off) {
    std::size_t split = token.find_first_of("+-", 1);
    std::string reg_part =
        split == std::string::npos ? token : token.substr(0, split);
    if (!ParseReg(reg_part, base)) {
      return Err(line_no, "bad base register '" + reg_part + "'");
    }
    *off = 0;
    if (split != std::string::npos) {
      std::int64_t v;
      if (!ParseImm(token.substr(split), &v) || v < INT16_MIN || v > INT16_MAX) {
        return Err(line_no, "bad offset in '" + token + "'");
      }
      *off = static_cast<std::int16_t>(v);
    }
    return Status::Ok();
  }

  // ldx: mn reg [ base ] ; stx: mn [ base ] reg
  Status ParseMemForm(const std::vector<std::string>& t, int line_no, bool is_load,
                      std::uint8_t size) {
    if (is_load) {
      if (t.size() != 5 || t[2] != "[" || t[4] != "]") {
        return Err(line_no, "expected: " + t[0] + " reg, [base+off]");
      }
      std::uint8_t dst, base;
      std::int16_t off;
      if (!ParseReg(t[1], &dst)) {
        return Err(line_no, "bad register '" + t[1] + "'");
      }
      CONCORD_RETURN_IF_ERROR(ParseBasePlusOff(t[3], line_no, &base, &off));
      insns_.push_back(LoadMem(size, dst, base, off));
      return Status::Ok();
    }
    if (t.size() != 5 || t[1] != "[" || t[3] != "]") {
      return Err(line_no, "expected: " + t[0] + " [base+off], reg");
    }
    std::uint8_t base, src;
    std::int16_t off;
    CONCORD_RETURN_IF_ERROR(ParseBasePlusOff(t[2], line_no, &base, &off));
    if (!ParseReg(t[4], &src)) {
      return Err(line_no, "bad register '" + t[4] + "'");
    }
    insns_.push_back(StoreMemReg(size, base, src, off));
    return Status::Ok();
  }

  Status ParseStImmForm(const std::vector<std::string>& t, int line_no,
                        std::uint8_t size) {
    if (t.size() != 5 || t[1] != "[" || t[3] != "]") {
      return Err(line_no, "expected: " + t[0] + " [base+off], imm");
    }
    std::uint8_t base;
    std::int16_t off;
    std::int64_t imm;
    CONCORD_RETURN_IF_ERROR(ParseBasePlusOff(t[2], line_no, &base, &off));
    if (!ParseImm(t[4], &imm) || imm < INT32_MIN || imm > INT32_MAX) {
      return Err(line_no, "bad immediate '" + t[4] + "'");
    }
    insns_.push_back(StoreMemImm(size, base, off, static_cast<std::int32_t>(imm)));
    return Status::Ok();
  }

  std::string name_;
  const ContextDescriptor* ctx_desc_;
  std::vector<BpfMap*> maps_;
  std::vector<std::shared_ptr<BpfMap>>* declared_maps_;
  std::vector<Insn> insns_;
  std::map<std::string, std::size_t> labels_;
  std::vector<PendingJump> pending_jumps_;
};

}  // namespace

StatusOr<Program> AssembleProgram(
    const std::string& name, const std::string& source,
    const ContextDescriptor* ctx_desc, std::vector<BpfMap*> maps,
    std::vector<std::shared_ptr<BpfMap>>* declared_maps) {
  Assembler assembler(name, ctx_desc, std::move(maps), declared_maps);
  return assembler.Assemble(source);
}

bool SourceDeclaresMaps(const std::string& source) {
  std::istringstream lines(source);
  std::string line;
  while (std::getline(lines, line)) {
    const std::size_t pos = line.find_first_not_of(" \t");
    if (pos != std::string::npos && line.compare(pos, 4, ".map") == 0) {
      return true;
    }
  }
  return false;
}

}  // namespace concord
