// Fluent program builder with label-based control flow.
//
// Policies in examples and tests are written either in the textual assembly
// (src/bpf/assembler.h) or with this builder, which resolves forward labels
// and catches operand mistakes at Build() time rather than at verification.

#ifndef SRC_BPF_BUILDER_H_
#define SRC_BPF_BUILDER_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/base/status.h"
#include "src/bpf/helpers.h"
#include "src/bpf/insn.h"
#include "src/bpf/program.h"

namespace concord {

class ProgramBuilder {
 public:
  using Label = std::size_t;

  ProgramBuilder(std::string name, const ContextDescriptor* ctx_desc)
      : name_(std::move(name)), ctx_desc_(ctx_desc) {}

  // --- maps -----------------------------------------------------------------
  // Declares a map and returns its index for kConstMapIndex arguments.
  std::uint32_t DeclareMap(BpfMap* map) {
    maps_.push_back(map);
    return static_cast<std::uint32_t>(maps_.size() - 1);
  }

  // --- labels -----------------------------------------------------------------
  Label NewLabel() {
    labels_.push_back(kUnbound);
    return labels_.size() - 1;
  }
  ProgramBuilder& Bind(Label label) {
    labels_[label] = insns_.size();
    return *this;
  }

  // --- ALU --------------------------------------------------------------------
  ProgramBuilder& Mov(std::uint8_t dst, std::int32_t imm) {
    return Emit(MovImm(dst, imm));
  }
  ProgramBuilder& MovR(std::uint8_t dst, std::uint8_t src) {
    return Emit(MovReg(dst, src));
  }
  ProgramBuilder& Mov64(std::uint8_t dst, std::uint64_t value) {
    Emit(LoadImm64First(dst, value));
    return Emit(LoadImm64Second(value));
  }
  ProgramBuilder& Alu(std::uint8_t op, std::uint8_t dst, std::int32_t imm) {
    return Emit(AluImm(op, dst, imm));
  }
  ProgramBuilder& AluR(std::uint8_t op, std::uint8_t dst, std::uint8_t src) {
    return Emit(AluReg(op, dst, src));
  }
  ProgramBuilder& Add(std::uint8_t dst, std::int32_t imm) {
    return Alu(kBpfAdd, dst, imm);
  }
  ProgramBuilder& AddR(std::uint8_t dst, std::uint8_t src) {
    return AluR(kBpfAdd, dst, src);
  }
  ProgramBuilder& Sub(std::uint8_t dst, std::int32_t imm) {
    return Alu(kBpfSub, dst, imm);
  }
  ProgramBuilder& And(std::uint8_t dst, std::int32_t imm) {
    return Alu(kBpfAnd, dst, imm);
  }

  // --- memory --------------------------------------------------------------
  ProgramBuilder& Load(std::uint8_t size, std::uint8_t dst, std::uint8_t base,
                       std::int16_t off) {
    return Emit(LoadMem(size, dst, base, off));
  }
  ProgramBuilder& Store(std::uint8_t size, std::uint8_t base, std::int16_t off,
                        std::uint8_t src) {
    return Emit(StoreMemReg(size, base, src, off));
  }
  ProgramBuilder& StoreImm(std::uint8_t size, std::uint8_t base, std::int16_t off,
                           std::int32_t imm) {
    return Emit(StoreMemImm(size, base, off, imm));
  }

  // --- control flow ----------------------------------------------------------
  ProgramBuilder& Jmp(Label label) {
    pending_.push_back({insns_.size(), label});
    return Emit(Jump(0));
  }
  ProgramBuilder& JmpIf(std::uint8_t op, std::uint8_t dst, std::int32_t imm,
                        Label label) {
    pending_.push_back({insns_.size(), label});
    return Emit(JmpImm(op, dst, imm, 0));
  }
  ProgramBuilder& JmpIfR(std::uint8_t op, std::uint8_t dst, std::uint8_t src,
                         Label label) {
    pending_.push_back({insns_.size(), label});
    return Emit(JmpReg(op, dst, src, 0));
  }
  ProgramBuilder& CallHelper(std::uint32_t helper_id) {
    return Emit(Call(static_cast<std::int32_t>(helper_id)));
  }
  // Call by registered helper name; unresolved names fail at Build().
  ProgramBuilder& CallByName(const std::string& helper_name) {
    const HelperDef* helper = HelperRegistry::Global().FindByName(helper_name);
    if (helper == nullptr) {
      build_error_ = "unknown helper '" + helper_name + "'";
      return Emit(Call(-1));
    }
    return CallHelper(helper->id);
  }
  ProgramBuilder& Ret() { return Emit(Insn(Exit())); }
  // `Return(imm)` = mov r0, imm; exit.
  ProgramBuilder& Return(std::int32_t imm) {
    Mov(kBpfReg0, imm);
    return Ret();
  }

  ProgramBuilder& Emit(Insn insn) {
    insns_.push_back(insn);
    return *this;
  }

  // Resolves labels and produces the (unverified) program.
  StatusOr<Program> Build() {
    if (!build_error_.empty()) {
      return InvalidArgumentError(build_error_);
    }
    for (const auto& [pc, label] : pending_) {
      if (labels_[label] == kUnbound) {
        return InvalidArgumentError("unbound label in program '" + name_ + "'");
      }
      const std::int64_t delta = static_cast<std::int64_t>(labels_[label]) -
                                 static_cast<std::int64_t>(pc) - 1;
      if (delta < INT16_MIN || delta > INT16_MAX) {
        return InvalidArgumentError("jump displacement overflow");
      }
      insns_[pc].off = static_cast<std::int16_t>(delta);
    }
    Program program;
    program.name = name_;
    program.insns = insns_;
    program.maps = maps_;
    program.ctx_desc = ctx_desc_;
    return program;
  }

 private:
  static constexpr std::size_t kUnbound = static_cast<std::size_t>(-1);

  std::string name_;
  const ContextDescriptor* ctx_desc_;
  std::vector<Insn> insns_;
  std::vector<BpfMap*> maps_;
  std::vector<std::size_t> labels_;
  std::vector<std::pair<std::size_t, Label>> pending_;  // (insn pc, label)
  std::string build_error_;
};

}  // namespace concord

#endif  // SRC_BPF_BUILDER_H_
