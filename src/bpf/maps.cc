#include "src/bpf/maps.h"

#include <cstdlib>
#include <cstring>

#include "src/base/cacheline.h"
#include "src/base/spinwait.h"
#include "src/topology/thread_context.h"

namespace concord {

const char* MapTypeName(MapType type) {
  switch (type) {
    case MapType::kArray:
      return "array";
    case MapType::kHash:
      return "hash";
    case MapType::kPerCpuArray:
      return "percpu_array";
  }
  return "unknown";
}

// --- ArrayMap ----------------------------------------------------------------

ArrayMap::ArrayMap(std::string name, std::uint32_t value_size,
                   std::uint32_t max_entries)
    : BpfMap(MapType::kArray, std::move(name), sizeof(std::uint32_t), value_size,
             max_entries),
      storage_(static_cast<std::size_t>(value_size) * max_entries, 0) {}

void* ArrayMap::Lookup(const void* key) {
  std::uint32_t index;
  std::memcpy(&index, key, sizeof(index));
  if (index >= max_entries_) {
    return nullptr;
  }
  return storage_.data() + static_cast<std::size_t>(index) * value_size_;
}

Status ArrayMap::Update(const void* key, const void* value) {
  void* slot = Lookup(key);
  if (slot == nullptr) {
    return InvalidArgumentError("array map index out of range");
  }
  std::memcpy(slot, value, value_size_);
  return Status::Ok();
}

Status ArrayMap::Delete(const void* key) {
  void* slot = Lookup(key);
  if (slot == nullptr) {
    return InvalidArgumentError("array map index out of range");
  }
  std::memset(slot, 0, value_size_);
  return Status::Ok();
}

void ArrayMap::ForEach(const EntryVisitor& visit) {
  for (std::uint32_t i = 0; i < max_entries_; ++i) {
    visit(&i, storage_.data() + static_cast<std::size_t>(i) * value_size_);
  }
}

void* ArrayMap::SlotAt(std::uint32_t index) {
  CONCORD_CHECK(index < max_entries_);
  return storage_.data() + static_cast<std::size_t>(index) * value_size_;
}

// --- PerCpuArrayMap ------------------------------------------------------------

namespace {

std::uint32_t RoundUpToCacheLine(std::uint32_t n) {
  return static_cast<std::uint32_t>((n + kCacheLineSize - 1) / kCacheLineSize *
                                    kCacheLineSize);
}

}  // namespace

PerCpuArrayMap::PerCpuArrayMap(std::string name, std::uint32_t value_size,
                               std::uint32_t max_entries, std::uint32_t num_cpus)
    : BpfMap(MapType::kPerCpuArray, std::move(name), sizeof(std::uint32_t),
             value_size, max_entries),
      num_cpus_(num_cpus),
      stride_(RoundUpToCacheLine(value_size)),
      storage_(static_cast<std::size_t>(stride_) * max_entries * num_cpus, 0) {}

void* PerCpuArrayMap::Lookup(const void* key) {
  std::uint32_t index;
  std::memcpy(&index, key, sizeof(index));
  if (index >= max_entries_) {
    return nullptr;
  }
  const std::uint32_t cpu = Self().vcpu % num_cpus_;
  return SlotAt(cpu, index);
}

Status PerCpuArrayMap::Update(const void* key, const void* value) {
  void* slot = Lookup(key);
  if (slot == nullptr) {
    return InvalidArgumentError("percpu array map index out of range");
  }
  std::memcpy(slot, value, value_size_);
  return Status::Ok();
}

Status PerCpuArrayMap::Delete(const void* key) {
  void* slot = Lookup(key);
  if (slot == nullptr) {
    return InvalidArgumentError("percpu array map index out of range");
  }
  std::memset(slot, 0, value_size_);
  return Status::Ok();
}

void PerCpuArrayMap::ForEach(const EntryVisitor& visit) {
  for (std::uint32_t i = 0; i < max_entries_; ++i) {
    visit(&i, SlotAt(0, i));
  }
}

void* PerCpuArrayMap::SlotAt(std::uint32_t cpu, std::uint32_t index) {
  CONCORD_CHECK(cpu < num_cpus_);
  CONCORD_CHECK(index < max_entries_);
  const std::size_t offset =
      (static_cast<std::size_t>(cpu) * max_entries_ + index) * stride_;
  return storage_.data() + offset;
}

std::uint64_t PerCpuArrayMap::SumU64(std::uint32_t index) {
  CONCORD_CHECK(value_size_ >= sizeof(std::uint64_t));
  std::uint64_t total = 0;
  for (std::uint32_t cpu = 0; cpu < num_cpus_; ++cpu) {
    std::uint64_t v;
    std::memcpy(&v, SlotAt(cpu, index), sizeof(v));
    total += v;
  }
  return total;
}

// --- HashMap -------------------------------------------------------------------

namespace {

std::uint32_t NextPowerOfTwo(std::uint32_t n) {
  std::uint32_t p = 1;
  while (p < n) {
    p <<= 1;
  }
  return p;
}

}  // namespace

HashMap::HashMap(std::string name, std::uint32_t key_size, std::uint32_t value_size,
                 std::uint32_t max_entries)
    : BpfMap(MapType::kHash, std::move(name), key_size, value_size, max_entries),
      num_buckets_(NextPowerOfTwo(max_entries < 8 ? 8 : max_entries)),
      buckets_(num_buckets_, nullptr) {
  // Preallocate the whole entry pool: pointer stability requirement.
  const std::size_t entry_bytes = sizeof(Entry) + key_size_ + value_size_;
  for (std::uint32_t i = 0; i < max_entries_; ++i) {
    void* raw = std::calloc(1, entry_bytes);
    CONCORD_CHECK(raw != nullptr);
    pool_allocations_.push_back(raw);
    auto* entry = static_cast<Entry*>(raw);
    entry->next = free_list_;
    free_list_ = entry;
  }
}

HashMap::~HashMap() {
  for (void* raw : pool_allocations_) {
    std::free(raw);
  }
}

HashMap::Entry* HashMap::AllocEntry() {
  Entry* entry = free_list_;
  if (entry != nullptr) {
    free_list_ = entry->next;
    entry->next = nullptr;
  }
  return entry;
}

void HashMap::FreeEntry(Entry* entry) {
  entry->next = free_list_;
  free_list_ = entry;
}

std::uint64_t HashMap::HashKey(const void* key) const {
  // FNV-1a over the key bytes; adequate distribution for policy-sized maps.
  const auto* bytes = static_cast<const std::uint8_t*>(key);
  std::uint64_t hash = 14695981039346656037ull;
  for (std::uint32_t i = 0; i < key_size_; ++i) {
    hash ^= bytes[i];
    hash *= 1099511628211ull;
  }
  return hash;
}

void HashMap::Lock() {
  SpinWait spin;
  while (lock_.test_and_set(std::memory_order_acquire)) {
    spin.Once();
  }
}

void HashMap::Unlock() { lock_.clear(std::memory_order_release); }

void* HashMap::Lookup(const void* key) {
  const std::uint64_t hash = HashKey(key);
  Lock();
  Entry* entry = buckets_[hash & (num_buckets_ - 1)];
  while (entry != nullptr) {
    if (entry->hash == hash && std::memcmp(KeyOf(entry), key, key_size_) == 0) {
      Unlock();
      return ValueOf(entry);
    }
    entry = entry->next;
  }
  Unlock();
  return nullptr;
}

Status HashMap::Update(const void* key, const void* value) {
  const std::uint64_t hash = HashKey(key);
  Lock();
  Entry** bucket = &buckets_[hash & (num_buckets_ - 1)];
  for (Entry* entry = *bucket; entry != nullptr; entry = entry->next) {
    if (entry->hash == hash && std::memcmp(KeyOf(entry), key, key_size_) == 0) {
      std::memcpy(ValueOf(entry), value, value_size_);
      Unlock();
      return Status::Ok();
    }
  }
  Entry* entry = AllocEntry();
  if (entry == nullptr) {
    Unlock();
    return ResourceExhaustedError("hash map '" + name_ + "' is full");
  }
  entry->hash = hash;
  std::memcpy(KeyOf(entry), key, key_size_);
  std::memcpy(ValueOf(entry), value, value_size_);
  entry->next = *bucket;
  *bucket = entry;
  live_.fetch_add(1, std::memory_order_relaxed);
  Unlock();
  return Status::Ok();
}

Status HashMap::Delete(const void* key) {
  const std::uint64_t hash = HashKey(key);
  Lock();
  Entry** link = &buckets_[hash & (num_buckets_ - 1)];
  while (*link != nullptr) {
    Entry* entry = *link;
    if (entry->hash == hash && std::memcmp(KeyOf(entry), key, key_size_) == 0) {
      *link = entry->next;
      FreeEntry(entry);
      live_.fetch_sub(1, std::memory_order_relaxed);
      Unlock();
      return Status::Ok();
    }
    link = &entry->next;
  }
  Unlock();
  return NotFoundError("key not present in hash map '" + name_ + "'");
}

void HashMap::ForEach(const EntryVisitor& visit) {
  Lock();
  for (Entry* bucket : buckets_) {
    for (Entry* entry = bucket; entry != nullptr; entry = entry->next) {
      visit(KeyOf(entry), ValueOf(entry));
    }
  }
  Unlock();
}

// --- factory ---------------------------------------------------------------------

StatusOr<std::unique_ptr<BpfMap>> CreateMap(MapType type, std::string name,
                                            std::uint32_t key_size,
                                            std::uint32_t value_size,
                                            std::uint32_t max_entries,
                                            std::uint32_t num_cpus) {
  if (value_size == 0 || max_entries == 0) {
    return InvalidArgumentError("map value_size and max_entries must be non-zero");
  }
  if (value_size > 64 * 1024 || max_entries > 1 << 20) {
    return ResourceExhaustedError("map dimensions exceed limits");
  }
  switch (type) {
    case MapType::kArray:
      if (key_size != sizeof(std::uint32_t)) {
        return InvalidArgumentError("array map key must be 4 bytes");
      }
      return std::unique_ptr<BpfMap>(
          new ArrayMap(std::move(name), value_size, max_entries));
    case MapType::kPerCpuArray:
      if (key_size != sizeof(std::uint32_t)) {
        return InvalidArgumentError("percpu array map key must be 4 bytes");
      }
      if (num_cpus == 0) {
        return InvalidArgumentError("percpu map needs num_cpus > 0");
      }
      return std::unique_ptr<BpfMap>(
          new PerCpuArrayMap(std::move(name), value_size, max_entries, num_cpus));
    case MapType::kHash:
      if (key_size == 0 || key_size > 512) {
        return InvalidArgumentError("hash map key size out of range");
      }
      return std::unique_ptr<BpfMap>(
          new HashMap(std::move(name), key_size, value_size, max_entries));
  }
  return InvalidArgumentError("unknown map type");
}

}  // namespace concord
