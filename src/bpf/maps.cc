#include "src/bpf/maps.h"

#include <cstdlib>
#include <cstring>

#include "src/base/cacheline.h"
#include "src/base/spinwait.h"
#include "src/topology/thread_context.h"

namespace concord {

const char* MapTypeName(MapType type) {
  switch (type) {
    case MapType::kArray:
      return "array";
    case MapType::kHash:
      return "hash";
    case MapType::kPerCpuArray:
      return "percpu_array";
    case MapType::kPerCpuHash:
      return "percpu_hash";
  }
  return "unknown";
}

bool MapTypeFromName(const std::string& name, MapType* out) {
  if (name == "array") {
    *out = MapType::kArray;
  } else if (name == "hash") {
    *out = MapType::kHash;
  } else if (name == "percpu_array") {
    *out = MapType::kPerCpuArray;
  } else if (name == "percpu_hash") {
    *out = MapType::kPerCpuHash;
  } else {
    return false;
  }
  return true;
}

namespace {

std::uint32_t RoundUpToCacheLine(std::uint32_t n) {
  return static_cast<std::uint32_t>((n + kCacheLineSize - 1) / kCacheLineSize *
                                    kCacheLineSize);
}

std::uint32_t RoundUpTo8(std::uint32_t n) { return (n + 7u) & ~7u; }

// Copies `size` bytes into an 8-aligned map value slot. Whole u64 lanes go
// through relaxed atomic stores so concurrent aggregating readers (and TSan)
// never see a torn lane; a non-multiple-of-8 tail is plain bytes — such
// values are not u64 counters and are never aggregated.
void AtomicSlotStore(void* dst, const void* src, std::uint32_t size) {
  auto* d = static_cast<std::uint8_t*>(dst);
  const auto* s = static_cast<const std::uint8_t*>(src);
  std::uint32_t i = 0;
  for (; i + 8 <= size; i += 8) {
    std::uint64_t lane;
    std::memcpy(&lane, s + i, sizeof(lane));
    __atomic_store_n(reinterpret_cast<std::uint64_t*>(d + i), lane,
                     __ATOMIC_RELAXED);
  }
  if (i < size) {
    std::memcpy(d + i, s + i, size - i);
  }
}

void AtomicSlotZero(void* dst, std::uint32_t size) {
  auto* d = static_cast<std::uint8_t*>(dst);
  std::uint32_t i = 0;
  for (; i + 8 <= size; i += 8) {
    __atomic_store_n(reinterpret_cast<std::uint64_t*>(d + i), std::uint64_t{0},
                     __ATOMIC_RELAXED);
  }
  if (i < size) {
    std::memset(d + i, 0, size - i);
  }
}

std::uint64_t AtomicLoadU64(const void* p) {
  return __atomic_load_n(reinterpret_cast<const std::uint64_t*>(p),
                         __ATOMIC_RELAXED);
}

}  // namespace

// --- ArrayMap ----------------------------------------------------------------

ArrayMap::ArrayMap(std::string name, std::uint32_t value_size,
                   std::uint32_t max_entries)
    : BpfMap(MapType::kArray, std::move(name), sizeof(std::uint32_t), value_size,
             max_entries),
      storage_(static_cast<std::size_t>(value_size) * max_entries, 0) {}

void* ArrayMap::Lookup(const void* key) {
  std::uint32_t index;
  std::memcpy(&index, key, sizeof(index));
  if (index >= max_entries_) {
    return nullptr;
  }
  return storage_.data() + static_cast<std::size_t>(index) * value_size_;
}

Status ArrayMap::Update(const void* key, const void* value) {
  void* slot = Lookup(key);
  if (slot == nullptr) {
    return InvalidArgumentError("array map index out of range");
  }
  std::memcpy(slot, value, value_size_);
  return Status::Ok();
}

Status ArrayMap::Delete(const void* key) {
  void* slot = Lookup(key);
  if (slot == nullptr) {
    return InvalidArgumentError("array map index out of range");
  }
  std::memset(slot, 0, value_size_);
  return Status::Ok();
}

void ArrayMap::ForEach(const EntryVisitor& visit) {
  for (std::uint32_t i = 0; i < max_entries_; ++i) {
    visit(&i, storage_.data() + static_cast<std::size_t>(i) * value_size_);
  }
}

void* ArrayMap::SlotAt(std::uint32_t index) {
  CONCORD_CHECK(index < max_entries_);
  return storage_.data() + static_cast<std::size_t>(index) * value_size_;
}

// --- PerCpuArrayMap ------------------------------------------------------------

PerCpuArrayMap::PerCpuArrayMap(std::string name, std::uint32_t value_size,
                               std::uint32_t max_entries, std::uint32_t num_cpus)
    : BpfMap(MapType::kPerCpuArray, std::move(name), sizeof(std::uint32_t),
             value_size, max_entries),
      num_cpus_(num_cpus),
      stride_(RoundUpToCacheLine(value_size)),
      storage_(static_cast<std::size_t>(stride_) * max_entries * num_cpus, 0) {}

void* PerCpuArrayMap::Lookup(const void* key) {
  std::uint32_t index;
  std::memcpy(&index, key, sizeof(index));
  if (index >= max_entries_) {
    return nullptr;
  }
  const std::uint32_t cpu = Self().vcpu % num_cpus_;
  return SlotAt(cpu, index);
}

Status PerCpuArrayMap::Update(const void* key, const void* value) {
  std::uint32_t index;
  std::memcpy(&index, key, sizeof(index));
  if (index >= max_entries_) {
    return InvalidArgumentError("percpu array map index out of range");
  }
  // Control-plane semantics: the value reaches every CPU's slot.
  for (std::uint32_t cpu = 0; cpu < num_cpus_; ++cpu) {
    AtomicSlotStore(SlotAt(cpu, index), value, value_size_);
  }
  return Status::Ok();
}

Status PerCpuArrayMap::UpdateThisCpu(const void* key, const void* value) {
  void* slot = Lookup(key);
  if (slot == nullptr) {
    return InvalidArgumentError("percpu array map index out of range");
  }
  AtomicSlotStore(slot, value, value_size_);
  return Status::Ok();
}

Status PerCpuArrayMap::Delete(const void* key) {
  std::uint32_t index;
  std::memcpy(&index, key, sizeof(index));
  if (index >= max_entries_) {
    return InvalidArgumentError("percpu array map index out of range");
  }
  for (std::uint32_t cpu = 0; cpu < num_cpus_; ++cpu) {
    AtomicSlotZero(SlotAt(cpu, index), value_size_);
  }
  return Status::Ok();
}

void PerCpuArrayMap::ForEach(const EntryVisitor& visit) {
  for (std::uint32_t i = 0; i < max_entries_; ++i) {
    for (std::uint32_t cpu = 0; cpu < num_cpus_; ++cpu) {
      visit(&i, SlotAt(cpu, i));
    }
  }
}

void* PerCpuArrayMap::SlotAt(std::uint32_t cpu, std::uint32_t index) {
  CONCORD_CHECK(cpu < num_cpus_);
  CONCORD_CHECK(index < max_entries_);
  const std::size_t offset =
      (static_cast<std::size_t>(cpu) * max_entries_ + index) * stride_;
  return storage_.data() + offset;
}

std::uint64_t PerCpuArrayMap::AggregateU64(std::uint32_t index) {
  CONCORD_CHECK(value_size_ >= sizeof(std::uint64_t));
  std::uint64_t total = 0;
  for (std::uint32_t cpu = 0; cpu < num_cpus_; ++cpu) {
    total += AtomicLoadU64(SlotAt(cpu, index));
  }
  return total;
}

void PerCpuArrayMap::DumpAllCpus(std::uint32_t index, const CpuVisitor& visit) {
  for (std::uint32_t cpu = 0; cpu < num_cpus_; ++cpu) {
    visit(cpu, SlotAt(cpu, index));
  }
}

// --- HashMapBase -------------------------------------------------------------

namespace {

std::uint32_t NextPowerOfTwo(std::uint32_t n) {
  std::uint32_t p = 1;
  while (p < n) {
    p <<= 1;
  }
  return p;
}

}  // namespace

HashMapBase::HashMapBase(MapType type, std::string name, std::uint32_t key_size,
                         std::uint32_t value_size, std::uint32_t max_entries,
                         std::uint32_t value_slots, std::uint32_t value_stride)
    : BpfMap(type, std::move(name), key_size, value_size, max_entries),
      value_offset_(RoundUpTo8(key_size)),
      value_stride_(value_stride),
      value_slots_(value_slots),
      num_buckets_(NextPowerOfTwo(max_entries < 8 ? 8 : max_entries)),
      buckets_(num_buckets_, nullptr) {
  // Preallocate the whole entry pool: pointer stability requirement. The
  // key region is rounded up to 8 bytes (value_offset_) so every value slot
  // stays u64-aligned no matter the key size.
  const std::size_t entry_bytes =
      sizeof(Entry) + value_offset_ +
      static_cast<std::size_t>(value_slots_) * value_stride_;
  for (std::uint32_t i = 0; i < max_entries_; ++i) {
    void* raw = std::calloc(1, entry_bytes);
    CONCORD_CHECK(raw != nullptr);
    pool_allocations_.push_back(raw);
    auto* entry = static_cast<Entry*>(raw);
    entry->next = free_list_;
    free_list_ = entry;
  }
}

HashMapBase::~HashMapBase() {
  for (void* raw : pool_allocations_) {
    std::free(raw);
  }
}

HashMapBase::Entry* HashMapBase::AllocEntry() {
  Entry* entry = free_list_;
  if (entry != nullptr) {
    free_list_ = entry->next;
    entry->next = nullptr;
  }
  return entry;
}

void HashMapBase::FreeEntry(Entry* entry) {
  entry->next = free_list_;
  free_list_ = entry;
}

std::uint64_t HashMapBase::HashKey(const void* key) const {
  // FNV-1a over the key bytes; adequate distribution for policy-sized maps.
  const auto* bytes = static_cast<const std::uint8_t*>(key);
  std::uint64_t hash = 14695981039346656037ull;
  for (std::uint32_t i = 0; i < key_size_; ++i) {
    hash ^= bytes[i];
    hash *= 1099511628211ull;
  }
  return hash;
}

void HashMapBase::Lock() {
  SpinWait spin;
  while (lock_.test_and_set(std::memory_order_acquire)) {
    spin.Once();
  }
}

void HashMapBase::Unlock() { lock_.clear(std::memory_order_release); }

HashMapBase::Entry* HashMapBase::FindLocked(const void* key,
                                            std::uint64_t hash) {
  Entry* entry = buckets_[hash & (num_buckets_ - 1)];
  while (entry != nullptr) {
    if (entry->hash == hash && std::memcmp(KeyOf(entry), key, key_size_) == 0) {
      return entry;
    }
    entry = entry->next;
  }
  return nullptr;
}

HashMapBase::Entry* HashMapBase::InsertLocked(const void* key,
                                              std::uint64_t hash) {
  Entry* entry = AllocEntry();
  if (entry == nullptr) {
    return nullptr;
  }
  entry->hash = hash;
  std::memcpy(KeyOf(entry), key, key_size_);
  // Pooled entries are recycled: zero every value slot so a reused entry
  // does not resurrect a prior key's per-CPU counts.
  for (std::uint32_t slot = 0; slot < value_slots_; ++slot) {
    AtomicSlotZero(ValueOf(entry, slot), value_size_);
  }
  Entry** bucket = &buckets_[hash & (num_buckets_ - 1)];
  entry->next = *bucket;
  *bucket = entry;
  live_.fetch_add(1, std::memory_order_relaxed);
  return entry;
}

// --- HashMap -------------------------------------------------------------------

HashMap::HashMap(std::string name, std::uint32_t key_size,
                 std::uint32_t value_size, std::uint32_t max_entries)
    : HashMapBase(MapType::kHash, std::move(name), key_size, value_size,
                  max_entries, /*value_slots=*/1, /*value_stride=*/value_size) {}

void* HashMap::Lookup(const void* key) {
  const std::uint64_t hash = HashKey(key);
  Lock();
  Entry* entry = FindLocked(key, hash);
  Unlock();
  return entry == nullptr ? nullptr : ValueOf(entry);
}

Status HashMap::Update(const void* key, const void* value) {
  const std::uint64_t hash = HashKey(key);
  Lock();
  Entry* entry = FindLocked(key, hash);
  if (entry == nullptr) {
    entry = InsertLocked(key, hash);
  }
  if (entry == nullptr) {
    Unlock();
    return ResourceExhaustedError("hash map '" + name_ + "' is full");
  }
  AtomicSlotStore(ValueOf(entry), value, value_size_);
  Unlock();
  return Status::Ok();
}

Status HashMap::Delete(const void* key) {
  const std::uint64_t hash = HashKey(key);
  Lock();
  Entry** link = &buckets_[hash & (num_buckets_ - 1)];
  while (*link != nullptr) {
    Entry* entry = *link;
    if (entry->hash == hash && std::memcmp(KeyOf(entry), key, key_size_) == 0) {
      *link = entry->next;
      FreeEntry(entry);
      live_.fetch_sub(1, std::memory_order_relaxed);
      Unlock();
      return Status::Ok();
    }
    link = &entry->next;
  }
  Unlock();
  return NotFoundError("key not present in hash map '" + name_ + "'");
}

void HashMap::ForEach(const EntryVisitor& visit) {
  Lock();
  for (Entry* bucket : buckets_) {
    for (Entry* entry = bucket; entry != nullptr; entry = entry->next) {
      visit(KeyOf(entry), ValueOf(entry));
    }
  }
  Unlock();
}

// --- PerCpuHashMap -----------------------------------------------------------

PerCpuHashMap::PerCpuHashMap(std::string name, std::uint32_t key_size,
                             std::uint32_t value_size, std::uint32_t max_entries,
                             std::uint32_t num_cpus)
    : HashMapBase(MapType::kPerCpuHash, std::move(name), key_size, value_size,
                  max_entries, /*value_slots=*/num_cpus,
                  // Cache-line stride keeps CPUs off each other's lines when
                  // they count into the same key.
                  /*value_stride=*/RoundUpToCacheLine(value_size)),
      num_cpus_(num_cpus) {}

std::uint32_t PerCpuHashMap::ThisCpu() const {
  return Self().vcpu % num_cpus_;
}

void* PerCpuHashMap::Lookup(const void* key) {
  const std::uint64_t hash = HashKey(key);
  Lock();
  Entry* entry = FindLocked(key, hash);
  Unlock();
  return entry == nullptr ? nullptr : ValueOf(entry, ThisCpu());
}

Status PerCpuHashMap::Update(const void* key, const void* value) {
  const std::uint64_t hash = HashKey(key);
  Lock();
  Entry* entry = FindLocked(key, hash);
  if (entry == nullptr) {
    entry = InsertLocked(key, hash);
  }
  if (entry == nullptr) {
    Unlock();
    return ResourceExhaustedError("percpu hash map '" + name_ + "' is full");
  }
  // Control-plane semantics: the value reaches every CPU's slot.
  for (std::uint32_t cpu = 0; cpu < num_cpus_; ++cpu) {
    AtomicSlotStore(ValueOf(entry, cpu), value, value_size_);
  }
  Unlock();
  return Status::Ok();
}

Status PerCpuHashMap::UpdateThisCpu(const void* key, const void* value) {
  const std::uint64_t hash = HashKey(key);
  Lock();
  Entry* entry = FindLocked(key, hash);
  if (entry == nullptr) {
    entry = InsertLocked(key, hash);
  }
  if (entry == nullptr) {
    Unlock();
    return ResourceExhaustedError("percpu hash map '" + name_ + "' is full");
  }
  AtomicSlotStore(ValueOf(entry, ThisCpu()), value, value_size_);
  Unlock();
  return Status::Ok();
}

Status PerCpuHashMap::Delete(const void* key) {
  const std::uint64_t hash = HashKey(key);
  Lock();
  Entry** link = &buckets_[hash & (num_buckets_ - 1)];
  while (*link != nullptr) {
    Entry* entry = *link;
    if (entry->hash == hash && std::memcmp(KeyOf(entry), key, key_size_) == 0) {
      *link = entry->next;
      FreeEntry(entry);
      live_.fetch_sub(1, std::memory_order_relaxed);
      Unlock();
      return Status::Ok();
    }
    link = &entry->next;
  }
  Unlock();
  return NotFoundError("key not present in percpu hash map '" + name_ + "'");
}

void PerCpuHashMap::ForEach(const EntryVisitor& visit) {
  Lock();
  for (Entry* bucket : buckets_) {
    for (Entry* entry = bucket; entry != nullptr; entry = entry->next) {
      for (std::uint32_t cpu = 0; cpu < num_cpus_; ++cpu) {
        visit(KeyOf(entry), ValueOf(entry, cpu));
      }
    }
  }
  Unlock();
}

std::uint64_t PerCpuHashMap::AggregateU64(const void* key) {
  CONCORD_CHECK(value_size_ >= sizeof(std::uint64_t));
  const std::uint64_t hash = HashKey(key);
  Lock();
  Entry* entry = FindLocked(key, hash);
  std::uint64_t total = 0;
  if (entry != nullptr) {
    for (std::uint32_t cpu = 0; cpu < num_cpus_; ++cpu) {
      total += AtomicLoadU64(ValueOf(entry, cpu));
    }
  }
  Unlock();
  return total;
}

bool PerCpuHashMap::DumpAllCpus(const void* key, const CpuVisitor& visit) {
  const std::uint64_t hash = HashKey(key);
  Lock();
  Entry* entry = FindLocked(key, hash);
  if (entry != nullptr) {
    for (std::uint32_t cpu = 0; cpu < num_cpus_; ++cpu) {
      visit(cpu, ValueOf(entry, cpu));
    }
  }
  Unlock();
  return entry != nullptr;
}

// --- factory ---------------------------------------------------------------------

StatusOr<std::unique_ptr<BpfMap>> CreateMap(MapType type, std::string name,
                                            std::uint32_t key_size,
                                            std::uint32_t value_size,
                                            std::uint32_t max_entries,
                                            std::uint32_t num_cpus) {
  if (value_size == 0 || max_entries == 0) {
    return InvalidArgumentError("map value_size and max_entries must be non-zero");
  }
  if (value_size > 64 * 1024 || max_entries > 1 << 20) {
    return ResourceExhaustedError("map dimensions exceed limits");
  }
  switch (type) {
    case MapType::kArray:
      if (key_size != sizeof(std::uint32_t)) {
        return InvalidArgumentError("array map key must be 4 bytes");
      }
      return std::unique_ptr<BpfMap>(
          new ArrayMap(std::move(name), value_size, max_entries));
    case MapType::kPerCpuArray:
      if (key_size != sizeof(std::uint32_t)) {
        return InvalidArgumentError("percpu array map key must be 4 bytes");
      }
      if (num_cpus == 0) {
        return InvalidArgumentError("percpu map needs num_cpus > 0");
      }
      return std::unique_ptr<BpfMap>(
          new PerCpuArrayMap(std::move(name), value_size, max_entries, num_cpus));
    case MapType::kHash:
      if (key_size == 0 || key_size > 512) {
        return InvalidArgumentError("hash map key size out of range");
      }
      return std::unique_ptr<BpfMap>(
          new HashMap(std::move(name), key_size, value_size, max_entries));
    case MapType::kPerCpuHash:
      if (key_size == 0 || key_size > 512) {
        return InvalidArgumentError("percpu hash map key size out of range");
      }
      if (num_cpus == 0) {
        return InvalidArgumentError("percpu map needs num_cpus > 0");
      }
      return std::unique_ptr<BpfMap>(new PerCpuHashMap(
          std::move(name), key_size, value_size, max_entries, num_cpus));
  }
  return InvalidArgumentError("unknown map type");
}

}  // namespace concord
