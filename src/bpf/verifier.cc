#include "src/bpf/verifier.h"

#include <bitset>
#include <string>
#include <vector>

#include "src/bpf/helpers.h"
#include "src/bpf/insn.h"

namespace concord {
namespace {

enum class RegType : std::uint8_t {
  kUninit,
  kScalar,
  kPtrToCtx,
  kPtrToStack,      // offset relative to the frame pointer (<= 0)
  kPtrToMapValue,   // null-checked map value pointer
  kMapValueOrNull,  // map_lookup_elem result before the null check
};

struct RegState {
  RegType type = RegType::kUninit;
  bool known = false;        // scalar holds a known constant
  std::uint64_t value = 0;   // the constant, if known
  std::int64_t off = 0;      // pointer offset from its base
  std::uint32_t map_index = 0;

  static RegState Uninit() { return RegState{}; }
  static RegState Scalar() { return RegState{RegType::kScalar, false, 0, 0, 0}; }
  static RegState Known(std::uint64_t v) {
    return RegState{RegType::kScalar, true, v, 0, 0};
  }
  bool IsPointer() const {
    return type == RegType::kPtrToCtx || type == RegType::kPtrToStack ||
           type == RegType::kPtrToMapValue || type == RegType::kMapValueOrNull;
  }
};

struct AbstractState {
  std::size_t pc = 0;
  RegState regs[kBpfNumRegs];
  std::bitset<kBpfStackSize> stack_init;
};

std::string At(std::size_t pc, const Insn& insn, const std::string& msg) {
  return "insn " + std::to_string(pc) + " (" + DisassembleInsn(insn) + "): " + msg;
}

class VerifierImpl {
 public:
  VerifierImpl(Program& program, const Verifier::Options& options)
      : program_(program), options_(options) {}

  Status Run() {
    CONCORD_RETURN_IF_ERROR(StructuralChecks());
    return Explore();
  }

  std::uint32_t used_capabilities() const { return used_capabilities_; }

 private:
  // ---- pass 1: instruction-local validity, jump targets, no back edges ----
  Status StructuralChecks() {
    const auto& insns = program_.insns;
    if (insns.empty()) {
      return InvalidArgumentError("empty program");
    }
    if (insns.size() > kMaxProgramInsns) {
      return ResourceExhaustedError("program exceeds " +
                                    std::to_string(kMaxProgramInsns) +
                                    " instructions");
    }
    if (program_.ctx_desc == nullptr) {
      return InvalidArgumentError("program has no context descriptor");
    }

    imm64_second_.assign(insns.size(), false);
    for (std::size_t pc = 0; pc < insns.size(); ++pc) {
      if (imm64_second_[pc]) {
        continue;  // pseudo slot, validated with its first half
      }
      const Insn& insn = insns[pc];
      CONCORD_RETURN_IF_ERROR(CheckInsnShape(pc, insn));
      if (insn.Class() == kBpfClassLd) {
        if (pc + 1 >= insns.size()) {
          return InvalidArgumentError(At(pc, insn, "truncated lddw"));
        }
        const Insn& second = insns[pc + 1];
        if (second.opcode != 0 || second.dst != 0 || second.src != 0 ||
            second.off != 0) {
          return InvalidArgumentError(At(pc, insn, "malformed lddw second slot"));
        }
        imm64_second_[pc + 1] = true;
      }
    }

    // Jump-target validation, including the no-back-edge (termination) rule.
    for (std::size_t pc = 0; pc < insns.size(); ++pc) {
      if (imm64_second_[pc]) {
        continue;
      }
      const Insn& insn = insns[pc];
      if (insn.Class() != kBpfClassJmp && insn.Class() != kBpfClassJmp32) {
        continue;
      }
      const std::uint8_t op = insn.JmpOp();
      if (op == kBpfExit || op == kBpfCall) {
        continue;
      }
      const std::int64_t target =
          static_cast<std::int64_t>(pc) + 1 + static_cast<std::int64_t>(insn.off);
      if (target < 0 || target >= static_cast<std::int64_t>(insns.size())) {
        return InvalidArgumentError(At(pc, insn, "jump out of bounds"));
      }
      if (target <= static_cast<std::int64_t>(pc)) {
        return PermissionDeniedError(
            At(pc, insn, "back edge (loops are not permitted)"));
      }
      if (imm64_second_[static_cast<std::size_t>(target)]) {
        return InvalidArgumentError(
            At(pc, insn, "jump into the middle of a lddw"));
      }
    }
    return Status::Ok();
  }

  Status CheckInsnShape(std::size_t pc, const Insn& insn) {
    if (insn.dst >= kBpfNumRegs || insn.src >= kBpfNumRegs) {
      return InvalidArgumentError(At(pc, insn, "register out of range"));
    }
    switch (insn.Class()) {
      case kBpfClassAlu64:
      case kBpfClassAlu32: {
        switch (insn.AluOp()) {
          case kBpfAdd:
          case kBpfSub:
          case kBpfMul:
          case kBpfDiv:
          case kBpfOr:
          case kBpfAnd:
          case kBpfLsh:
          case kBpfRsh:
          case kBpfNeg:
          case kBpfMod:
          case kBpfXor:
          case kBpfMov:
          case kBpfArsh:
            break;
          default:
            return InvalidArgumentError(At(pc, insn, "unknown ALU op"));
        }
        if ((insn.AluOp() == kBpfDiv || insn.AluOp() == kBpfMod) &&
            !insn.UsesSrcReg() && insn.imm == 0) {
          return InvalidArgumentError(At(pc, insn, "division by constant zero"));
        }
        if (insn.dst == kBpfReg10) {
          return PermissionDeniedError(At(pc, insn, "write to frame pointer r10"));
        }
        return Status::Ok();
      }
      case kBpfClassJmp:
      case kBpfClassJmp32: {
        switch (insn.JmpOp()) {
          case kBpfJeq:
          case kBpfJgt:
          case kBpfJge:
          case kBpfJset:
          case kBpfJne:
          case kBpfJsgt:
          case kBpfJsge:
          case kBpfJlt:
          case kBpfJle:
          case kBpfJslt:
          case kBpfJsle:
            return Status::Ok();
          case kBpfJa:
          case kBpfCall:
          case kBpfExit:
            if (insn.Class() == kBpfClassJmp32) {
              return InvalidArgumentError(
                  At(pc, insn, "ja/call/exit are not valid in the JMP32 class"));
            }
            return Status::Ok();
          default:
            return InvalidArgumentError(At(pc, insn, "unknown JMP op"));
        }
      }
      case kBpfClassLdx:
      case kBpfClassSt:
        if (insn.Mode() != kBpfModeMem) {
          return InvalidArgumentError(At(pc, insn, "unsupported memory mode"));
        }
        if (ByteWidth(insn.Size()) == 0) {
          return InvalidArgumentError(At(pc, insn, "bad access size"));
        }
        return Status::Ok();
      case kBpfClassStx:
        if (insn.Mode() != kBpfModeMem && insn.Mode() != kBpfModeAtomic) {
          return InvalidArgumentError(At(pc, insn, "unsupported memory mode"));
        }
        if (ByteWidth(insn.Size()) == 0) {
          return InvalidArgumentError(At(pc, insn, "bad access size"));
        }
        if (insn.Mode() == kBpfModeAtomic && ByteWidth(insn.Size()) < 4) {
          return InvalidArgumentError(
              At(pc, insn, "atomic add requires word or dword size"));
        }
        return Status::Ok();
      case kBpfClassLd:
        if (insn.Mode() != kBpfModeImm || insn.Size() != kBpfSizeDw) {
          return InvalidArgumentError(At(pc, insn, "only lddw is supported in class LD"));
        }
        if (insn.dst == kBpfReg10) {
          return PermissionDeniedError(At(pc, insn, "write to frame pointer r10"));
        }
        return Status::Ok();
      default:
        return InvalidArgumentError(At(pc, insn, "unknown instruction class"));
    }
  }

  // ---- pass 2: abstract interpretation over all paths ----------------------
  Status Explore() {
    AbstractState initial;
    initial.pc = 0;
    initial.regs[kBpfReg1] = RegState{RegType::kPtrToCtx, false, 0, 0, 0};
    initial.regs[kBpfReg10] = RegState{RegType::kPtrToStack, false, 0, 0, 0};

    std::vector<AbstractState> worklist;
    worklist.push_back(initial);
    std::size_t states_processed = 0;

    while (!worklist.empty()) {
      AbstractState state = std::move(worklist.back());
      worklist.pop_back();
      if (++states_processed > options_.max_states) {
        return ResourceExhaustedError("program too complex to verify");
      }
      CONCORD_RETURN_IF_ERROR(Step(std::move(state), worklist));
    }
    return Status::Ok();
  }

  // Executes states until the path exits or forks; forked states go to
  // `worklist`.
  Status Step(AbstractState state, std::vector<AbstractState>& worklist) {
    const auto& insns = program_.insns;
    while (true) {
      if (state.pc >= insns.size()) {
        return PermissionDeniedError("control falls off the end of the program");
      }
      const std::size_t pc = state.pc;
      const Insn& insn = insns[pc];
      switch (insn.Class()) {
        case kBpfClassAlu64:
        case kBpfClassAlu32:
          CONCORD_RETURN_IF_ERROR(StepAlu(pc, insn, state));
          state.pc = pc + 1;
          break;
        case kBpfClassLdx:
          CONCORD_RETURN_IF_ERROR(StepLoad(pc, insn, state));
          state.pc = pc + 1;
          break;
        case kBpfClassStx:
        case kBpfClassSt:
          CONCORD_RETURN_IF_ERROR(StepStore(pc, insn, state));
          state.pc = pc + 1;
          break;
        case kBpfClassLd: {
          const std::uint64_t lo = static_cast<std::uint32_t>(insn.imm);
          const std::uint64_t hi =
              static_cast<std::uint32_t>(insns[pc + 1].imm);
          state.regs[insn.dst] = RegState::Known(lo | (hi << 32));
          state.pc = pc + 2;
          break;
        }
        case kBpfClassJmp32:
          CONCORD_RETURN_IF_ERROR(StepCondJmp(pc, insn, state, worklist));
          break;
        case kBpfClassJmp: {
          const std::uint8_t op = insn.JmpOp();
          if (op == kBpfExit) {
            const RegState& r0 = state.regs[kBpfReg0];
            if (r0.type == RegType::kUninit) {
              return PermissionDeniedError(At(pc, insn, "exit with uninitialized r0"));
            }
            if (r0.IsPointer()) {
              return PermissionDeniedError(At(pc, insn, "exit would leak a pointer in r0"));
            }
            return Status::Ok();  // path done
          }
          if (op == kBpfCall) {
            CONCORD_RETURN_IF_ERROR(StepCall(pc, insn, state));
            state.pc = pc + 1;
            break;
          }
          if (op == kBpfJa) {
            state.pc = pc + 1 + insn.off;
            break;
          }
          CONCORD_RETURN_IF_ERROR(StepCondJmp(pc, insn, state, worklist));
          // StepCondJmp set state.pc to the fall-through and queued the
          // taken branch (or vice versa for refinement cases).
          break;
        }
        default:
          return InternalError(At(pc, insn, "class escaped structural checks"));
      }
    }
  }

  Status StepAlu(std::size_t pc, const Insn& insn, AbstractState& state) {
    RegState& dst = state.regs[insn.dst];
    const bool is64 = insn.Class() == kBpfClassAlu64;
    const std::uint8_t op = insn.AluOp();

    RegState src = insn.UsesSrcReg() ? state.regs[insn.src]
                                     : RegState::Known(static_cast<std::uint64_t>(
                                           static_cast<std::int64_t>(insn.imm)));
    if (insn.UsesSrcReg() && src.type == RegType::kUninit) {
      return PermissionDeniedError(At(pc, insn, "read of uninitialized register"));
    }

    if (op == kBpfMov) {
      if (!is64 && src.IsPointer()) {
        return PermissionDeniedError(At(pc, insn, "32-bit mov of a pointer"));
      }
      dst = src;
      if (!is64 && dst.known) {
        dst.value &= 0xffffffffull;
      }
      if (!is64 && !dst.known) {
        dst = RegState::Scalar();
      }
      return Status::Ok();
    }

    if (op == kBpfNeg) {
      if (dst.type == RegType::kUninit) {
        return PermissionDeniedError(At(pc, insn, "neg of uninitialized register"));
      }
      if (dst.IsPointer()) {
        return PermissionDeniedError(At(pc, insn, "arithmetic on pointer"));
      }
      if (dst.known) {
        dst.value = static_cast<std::uint64_t>(-static_cast<std::int64_t>(dst.value));
        if (!is64) {
          dst.value &= 0xffffffffull;
        }
      }
      return Status::Ok();
    }

    if (dst.type == RegType::kUninit) {
      return PermissionDeniedError(At(pc, insn, "ALU on uninitialized register"));
    }

    // Pointer arithmetic: only ptr ADD/SUB constant-scalar, 64-bit.
    if (dst.IsPointer()) {
      if (!is64) {
        return PermissionDeniedError(At(pc, insn, "32-bit ALU on pointer"));
      }
      if (op != kBpfAdd && op != kBpfSub) {
        return PermissionDeniedError(At(pc, insn, "only +/- allowed on pointers"));
      }
      if (dst.type == RegType::kMapValueOrNull) {
        return PermissionDeniedError(
            At(pc, insn, "arithmetic on possibly-null map value (null-check first)"));
      }
      if (src.IsPointer()) {
        return PermissionDeniedError(At(pc, insn, "pointer +/- pointer"));
      }
      if (!src.known) {
        return PermissionDeniedError(
            At(pc, insn, "pointer offset must be a compile-time constant"));
      }
      const std::int64_t delta = static_cast<std::int64_t>(src.value);
      dst.off += (op == kBpfAdd) ? delta : -delta;
      return Status::Ok();
    }

    if (src.IsPointer()) {
      return PermissionDeniedError(At(pc, insn, "pointer used as scalar operand"));
    }

    // scalar op scalar
    if (dst.known && src.known) {
      dst.value = EvalAlu(op, dst.value, src.value, is64);
    } else {
      dst = RegState::Scalar();
    }
    return Status::Ok();
  }

  static std::uint64_t EvalAlu(std::uint8_t op, std::uint64_t a, std::uint64_t b,
                               bool is64) {
    if (!is64) {
      a &= 0xffffffffull;
      b &= 0xffffffffull;
    }
    std::uint64_t r = 0;
    switch (op) {
      case kBpfAdd:
        r = a + b;
        break;
      case kBpfSub:
        r = a - b;
        break;
      case kBpfMul:
        r = a * b;
        break;
      case kBpfDiv:
        r = b == 0 ? 0 : a / b;
        break;
      case kBpfOr:
        r = a | b;
        break;
      case kBpfAnd:
        r = a & b;
        break;
      case kBpfLsh:
        r = a << (b & (is64 ? 63 : 31));
        break;
      case kBpfRsh:
        r = a >> (b & (is64 ? 63 : 31));
        break;
      case kBpfMod:
        r = b == 0 ? a : a % b;
        break;
      case kBpfXor:
        r = a ^ b;
        break;
      case kBpfArsh:
        if (is64) {
          r = static_cast<std::uint64_t>(static_cast<std::int64_t>(a) >> (b & 63));
        } else {
          r = static_cast<std::uint64_t>(static_cast<std::uint32_t>(
              static_cast<std::int32_t>(a) >> (b & 31)));
        }
        break;
      default:
        r = 0;
        break;
    }
    return is64 ? r : (r & 0xffffffffull);
  }

  Status CheckStackRange(std::size_t pc, const Insn& insn, std::int64_t fp_off,
                         int width, bool must_be_init,
                         const AbstractState& state) const {
    const std::int64_t lo = fp_off;
    const std::int64_t hi = fp_off + width;
    if (lo < -kBpfStackSize || hi > 0) {
      return PermissionDeniedError(At(pc, insn, "stack access out of bounds"));
    }
    if (must_be_init) {
      for (std::int64_t b = lo; b < hi; ++b) {
        if (!state.stack_init[static_cast<std::size_t>(b + kBpfStackSize)]) {
          return PermissionDeniedError(
              At(pc, insn, "read of uninitialized stack byte"));
        }
      }
    }
    return Status::Ok();
  }

  Status StepLoad(std::size_t pc, const Insn& insn, AbstractState& state) {
    const RegState& base = state.regs[insn.src];
    const int width = ByteWidth(insn.Size());
    const std::int64_t off = base.off + insn.off;

    switch (base.type) {
      case RegType::kPtrToCtx: {
        if (off < 0 || (off % width) != 0) {
          return PermissionDeniedError(At(pc, insn, "misaligned context access"));
        }
        const ContextField* field = program_.ctx_desc->FindField(
            static_cast<std::uint32_t>(off), static_cast<std::uint32_t>(width));
        if (field == nullptr) {
          return PermissionDeniedError(
              At(pc, insn, "context load does not match any declared field"));
        }
        state.regs[insn.dst] = RegState::Scalar();
        return Status::Ok();
      }
      case RegType::kPtrToStack: {
        if ((off % width) != 0) {
          return PermissionDeniedError(At(pc, insn, "misaligned stack access"));
        }
        CONCORD_RETURN_IF_ERROR(CheckStackRange(pc, insn, off, width, true, state));
        state.regs[insn.dst] = RegState::Scalar();
        return Status::Ok();
      }
      case RegType::kPtrToMapValue: {
        BpfMap* map = program_.maps[base.map_index];
        if (off < 0 || off + width > static_cast<std::int64_t>(map->value_size()) ||
            (off % width) != 0) {
          return PermissionDeniedError(At(pc, insn, "map value access out of bounds"));
        }
        state.regs[insn.dst] = RegState::Scalar();
        return Status::Ok();
      }
      case RegType::kMapValueOrNull:
        return PermissionDeniedError(
            At(pc, insn, "dereference of possibly-null map value (null-check first)"));
      case RegType::kScalar:
      case RegType::kUninit:
        return PermissionDeniedError(At(pc, insn, "load from non-pointer"));
    }
    return InternalError("unreachable");
  }

  Status StepStore(std::size_t pc, const Insn& insn, AbstractState& state) {
    const RegState& base = state.regs[insn.dst];
    const int width = ByteWidth(insn.Size());
    const std::int64_t off = base.off + insn.off;

    if (insn.Class() == kBpfClassStx) {
      const RegState& src = state.regs[insn.src];
      if (src.type == RegType::kUninit) {
        return PermissionDeniedError(At(pc, insn, "store of uninitialized register"));
      }
      if (src.IsPointer()) {
        return PermissionDeniedError(
            At(pc, insn, "pointer spill to memory is not supported"));
      }
    }

    const bool is_atomic =
        insn.Class() == kBpfClassStx && insn.Mode() == kBpfModeAtomic;
    switch (base.type) {
      case RegType::kPtrToCtx: {
        if (is_atomic) {
          return PermissionDeniedError(
              At(pc, insn, "atomic add to context is not allowed"));
        }
        if (off < 0 || (off % width) != 0) {
          return PermissionDeniedError(At(pc, insn, "misaligned context access"));
        }
        const ContextField* field = program_.ctx_desc->FindField(
            static_cast<std::uint32_t>(off), static_cast<std::uint32_t>(width));
        if (field == nullptr) {
          return PermissionDeniedError(
              At(pc, insn, "context store does not match any declared field"));
        }
        if (!field->writable) {
          return PermissionDeniedError(
              At(pc, insn, "store to read-only context field '" + field->name + "'"));
        }
        return Status::Ok();
      }
      case RegType::kPtrToStack: {
        if ((off % width) != 0) {
          return PermissionDeniedError(At(pc, insn, "misaligned stack access"));
        }
        // Atomic add reads before writing: the bytes must already be
        // initialized. A plain store initializes them.
        CONCORD_RETURN_IF_ERROR(
            CheckStackRange(pc, insn, off, width, /*must_be_init=*/is_atomic,
                            state));
        for (std::int64_t b = off; b < off + width; ++b) {
          state.stack_init[static_cast<std::size_t>(b + kBpfStackSize)] = true;
        }
        return Status::Ok();
      }
      case RegType::kPtrToMapValue: {
        BpfMap* map = program_.maps[base.map_index];
        if (off < 0 || off + width > static_cast<std::int64_t>(map->value_size()) ||
            (off % width) != 0) {
          return PermissionDeniedError(At(pc, insn, "map value access out of bounds"));
        }
        return Status::Ok();
      }
      case RegType::kMapValueOrNull:
        return PermissionDeniedError(
            At(pc, insn, "store through possibly-null map value (null-check first)"));
      case RegType::kScalar:
      case RegType::kUninit:
        return PermissionDeniedError(At(pc, insn, "store to non-pointer"));
    }
    return InternalError("unreachable");
  }

  Status StepCall(std::size_t pc, const Insn& insn, AbstractState& state) {
    const HelperDef* helper =
        HelperRegistry::Global().Find(static_cast<std::uint32_t>(insn.imm));
    if (helper == nullptr) {
      return PermissionDeniedError(At(pc, insn, "unknown helper"));
    }
    if ((helper->capabilities & ~options_.allowed_capabilities) != 0) {
      return PermissionDeniedError(
          At(pc, insn,
             "helper '" + helper->name + "' is not permitted at this attach point"));
    }

    std::uint32_t pending_map_index = 0;
    bool have_map_index = false;
    for (int i = 0; i < 5; ++i) {
      const RegState& arg = state.regs[i + 1];
      switch (helper->args[i]) {
        case HelperArgKind::kNone:
          break;
        case HelperArgKind::kScalar:
          if (arg.type != RegType::kScalar) {
            return PermissionDeniedError(
                At(pc, insn, "helper arg " + std::to_string(i + 1) +
                                 " must be an initialized scalar"));
          }
          break;
        case HelperArgKind::kConstMapIndex: {
          if (arg.type != RegType::kScalar || !arg.known) {
            return PermissionDeniedError(
                At(pc, insn, "map index argument must be a compile-time constant"));
          }
          if (arg.value >= program_.maps.size()) {
            return PermissionDeniedError(
                At(pc, insn, "map index " + std::to_string(arg.value) +
                                 " out of range (program declares " +
                                 std::to_string(program_.maps.size()) + " maps)"));
          }
          pending_map_index = static_cast<std::uint32_t>(arg.value);
          have_map_index = true;
          break;
        }
        case HelperArgKind::kStackKeyPtr:
        case HelperArgKind::kStackValuePtr: {
          if (!have_map_index) {
            return InternalError(
                At(pc, insn, "helper signature: stack ptr without map index"));
          }
          if (arg.type != RegType::kPtrToStack) {
            return PermissionDeniedError(
                At(pc, insn, "helper arg " + std::to_string(i + 1) +
                                 " must point into the stack"));
          }
          BpfMap* map = program_.maps[pending_map_index];
          const int size = static_cast<int>(
              helper->args[i] == HelperArgKind::kStackKeyPtr ? map->key_size()
                                                             : map->value_size());
          CONCORD_RETURN_IF_ERROR(
              CheckStackRange(pc, insn, arg.off, size, true, state));
          break;
        }
      }
    }

    used_capabilities_ |= helper->capabilities;

    // Call clobbers r1-r5; r0 takes the helper's return type.
    for (int r = 1; r <= 5; ++r) {
      state.regs[r] = RegState::Uninit();
    }
    if (helper->ret == HelperRetKind::kMapValueOrNull) {
      RegState r0;
      r0.type = RegType::kMapValueOrNull;
      r0.map_index = pending_map_index;
      state.regs[kBpfReg0] = r0;
    } else {
      state.regs[kBpfReg0] = RegState::Scalar();
    }
    return Status::Ok();
  }

  Status StepCondJmp(std::size_t pc, const Insn& insn, AbstractState& state,
                     std::vector<AbstractState>& worklist) {
    const std::uint8_t op = insn.JmpOp();
    const RegState& dst = state.regs[insn.dst];
    if (dst.type == RegType::kUninit) {
      return PermissionDeniedError(At(pc, insn, "branch on uninitialized register"));
    }
    RegState src = insn.UsesSrcReg() ? state.regs[insn.src]
                                     : RegState::Known(static_cast<std::uint64_t>(
                                           static_cast<std::int64_t>(insn.imm)));
    if (insn.UsesSrcReg() && src.type == RegType::kUninit) {
      return PermissionDeniedError(At(pc, insn, "branch on uninitialized register"));
    }

    const std::size_t taken_pc = pc + 1 + insn.off;
    const std::size_t fall_pc = pc + 1;
    const bool is32 = insn.Class() == kBpfClassJmp32;

    // Null-check refinement for MAP_VALUE_OR_NULL. Only the 64-bit compare
    // counts: a 32-bit view of a pointer being zero proves nothing.
    const bool null_test = !is32 && (op == kBpfJeq || op == kBpfJne) &&
                           !insn.UsesSrcReg() && insn.imm == 0 &&
                           dst.type == RegType::kMapValueOrNull;
    if (null_test) {
      RegState non_null;
      non_null.type = RegType::kPtrToMapValue;
      non_null.map_index = dst.map_index;
      non_null.off = 0;

      AbstractState taken = state;
      taken.pc = taken_pc;
      AbstractState fall = std::move(state);
      fall.pc = fall_pc;
      if (op == kBpfJeq) {  // taken => null
        taken.regs[insn.dst] = RegState::Known(0);
        fall.regs[insn.dst] = non_null;
      } else {  // JNE: taken => non-null
        taken.regs[insn.dst] = non_null;
        fall.regs[insn.dst] = RegState::Known(0);
      }
      worklist.push_back(std::move(taken));
      state = std::move(fall);
      return Status::Ok();
    }

    // General comparisons: only between scalars, or pointer-vs-pointer
    // equality of the same base is rejected for simplicity.
    if (dst.IsPointer() || src.IsPointer()) {
      return PermissionDeniedError(
          At(pc, insn, "comparisons involving pointers are not allowed"));
    }

    // Constant-fold fully known comparisons to prune dead branches; this is
    // what lets builders emit `if constant { ... }` guards cheaply.
    if (dst.known && src.known) {
      std::uint64_t a = dst.value;
      std::uint64_t b = src.value;
      if (is32) {
        const bool is_signed = op == kBpfJsgt || op == kBpfJsge ||
                               op == kBpfJslt || op == kBpfJsle;
        if (is_signed) {
          a = static_cast<std::uint64_t>(
              static_cast<std::int64_t>(static_cast<std::int32_t>(a)));
          b = static_cast<std::uint64_t>(
              static_cast<std::int64_t>(static_cast<std::int32_t>(b)));
        } else {
          a &= 0xffffffffull;
          b &= 0xffffffffull;
        }
      }
      const bool taken = EvalJmp(op, a, b);
      state.pc = taken ? taken_pc : fall_pc;
      return Status::Ok();
    }

    AbstractState taken = state;
    taken.pc = taken_pc;
    worklist.push_back(std::move(taken));
    state.pc = fall_pc;
    return Status::Ok();
  }

  static bool EvalJmp(std::uint8_t op, std::uint64_t a, std::uint64_t b) {
    const auto sa = static_cast<std::int64_t>(a);
    const auto sb = static_cast<std::int64_t>(b);
    switch (op) {
      case kBpfJeq:
        return a == b;
      case kBpfJgt:
        return a > b;
      case kBpfJge:
        return a >= b;
      case kBpfJset:
        return (a & b) != 0;
      case kBpfJne:
        return a != b;
      case kBpfJsgt:
        return sa > sb;
      case kBpfJsge:
        return sa >= sb;
      case kBpfJlt:
        return a < b;
      case kBpfJle:
        return a <= b;
      case kBpfJslt:
        return sa < sb;
      case kBpfJsle:
        return sa <= sb;
      default:
        return false;
    }
  }

  Program& program_;
  const Verifier::Options& options_;
  std::vector<bool> imm64_second_;
  std::uint32_t used_capabilities_ = 0;
};

}  // namespace

Status Verifier::Verify(Program& program, const Options& options) {
  program.verified = false;
  program.used_capabilities = 0;
  VerifierImpl impl(program, options);
  CONCORD_RETURN_IF_ERROR(impl.Run());
  program.used_capabilities = impl.used_capabilities();
  program.verified = true;
  return Status::Ok();
}

}  // namespace concord
